package koko

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/corpus"
)

func TestBuildPlacement(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}

	p := BuildPlacement(4, nodes, 2)
	want := [][]string{
		{"http://a", "http://b"},
		{"http://b", "http://c"},
		{"http://c", "http://a"},
		{"http://a", "http://b"},
	}
	if !reflect.DeepEqual(p.Replicas, want) {
		t.Fatalf("round-robin placement = %v, want %v", p.Replicas, want)
	}
	if p.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", p.NumShards())
	}
	if err := p.Validate(4); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
	if err := p.Validate(3); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	if err := (Placement{Replicas: [][]string{{"http://a"}, nil}}).Validate(2); err == nil {
		t.Fatal("empty replica list accepted")
	}

	// Replication factor clamps to [1, len(nodes)].
	if got := BuildPlacement(2, nodes, 0).Replicas[0]; len(got) != 1 {
		t.Errorf("replicas=0 clamped to %d nodes, want 1", len(got))
	}
	if got := BuildPlacement(2, nodes, 9).Replicas[0]; len(got) != len(nodes) {
		t.Errorf("replicas=9 clamped to %d nodes, want %d", len(got), len(nodes))
	}
}

func TestPlacementManifestRoundTrip(t *testing.T) {
	c := WrapCorpus(corpus.GenCafes(corpus.BaristaMagConfig(5)).Corpus)
	path := filepath.Join(t.TempDir(), "cafes.koko")
	if err := NewShardedEngine(c, 3, nil).Save(path); err != nil {
		t.Fatal(err)
	}

	// A freshly saved manifest carries no placement.
	if _, ok, err := LoadPlacement(path); err != nil || ok {
		t.Fatalf("LoadPlacement on bare manifest: ok=%v err=%v, want absent", ok, err)
	}

	p := BuildPlacement(3, []string{"http://a:7700", "http://b:7700"}, 2)
	if err := SavePlacement(path, p); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadPlacement(path)
	if err != nil || !ok {
		t.Fatalf("LoadPlacement: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round-trip placement = %v, want %v", got, p)
	}

	// Overwrite replaces, not appends: the manifest keeps exactly one
	// placement and the engine underneath still loads.
	p2 := BuildPlacement(3, []string{"http://solo:7700"}, 1)
	if err := SavePlacement(path, p2); err != nil {
		t.Fatal(err)
	}
	got2, ok, err := LoadPlacement(path)
	if err != nil || !ok {
		t.Fatalf("LoadPlacement after overwrite: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got2, p2) {
		t.Fatalf("overwritten placement = %v, want %v", got2, p2)
	}
	eng, err := LoadSharded(path, nil)
	if err != nil {
		t.Fatalf("manifest unreadable after placement writes: %v", err)
	}
	if eng.NumShards() != 3 {
		t.Fatalf("reloaded engine has %d shards, want 3", eng.NumShards())
	}

	// Placement that does not match the manifest's shard count is rejected.
	if err := SavePlacement(path, BuildPlacement(2, []string{"http://a"}, 1)); err == nil {
		t.Fatal("shard-count mismatch saved into manifest")
	}
	// Plain (unsharded) stores cannot carry placements.
	plain := filepath.Join(t.TempDir(), "plain.koko")
	if err := NewEngine(c, nil).Save(plain); err != nil {
		t.Fatal(err)
	}
	if err := SavePlacement(plain, p2); err == nil {
		t.Fatal("placement saved into a non-sharded store")
	}
}
