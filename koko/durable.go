package koko

// Durable corpora: a Mutable whose mutations survive restarts.
//
// On-disk layout, one directory per corpus:
//
//	<dir>/MANIFEST          versioned manifest: shard files + specs
//	                        (SHARDS table) and {generation, wal_applied}
//	                        (DURABLE table)
//	<dir>/gen<G>.shard<I>   one stand-alone store per base shard, named by
//	                        the generation that wrote it
//	<dir>/wal.log           append-only log of adds and tombstones since
//	                        the last compaction swap
//
// Every mutation is logged before it is applied (write-ahead), so the state
// any query ever observed is reconstructible: OpenDurable loads the
// manifest's shard set, then replays WAL records with Seq > wal_applied
// into a fresh delta — the post-restart snapshot is identical to the
// pre-crash one.
//
// Compaction is incremental and crash-safe: base shards untouched by
// tombstones keep their engines and files (the new manifest simply
// references the old-generation file, so the bytes and mtime never change);
// shards with deleted documents are rebuilt to new-generation files; the
// cut delta becomes one appended shard. The manifest swap is
// write-temp + fsync + rename + fsync-dir, and only after the swap is the
// WAL prefix truncated — a crash at any point recovers to exactly the old
// or the new generation, never a torn mix. Orphaned new-generation files
// from a crashed compaction are swept on the next open.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/koko/index"
	"repro/internal/koko/index/blockstore"
	"repro/internal/koko/wal"
	"repro/internal/store"
)

const (
	manifestName = "MANIFEST"
	walName      = "wal.log"
)

func shardGenFile(gen uint64, i int) string {
	return fmt.Sprintf("gen%d.shard%d", gen, i)
}

// DurableConfig configures OpenDurable.
type DurableConfig struct {
	// Dir is the corpus's durable directory (created if missing).
	Dir string
	// Sync is the WAL fsync policy (zero value: batched group commit).
	Sync wal.SyncPolicy
	// Opts configures the query engines, as with NewMutable.
	Opts *Options
}

// HasDurableState reports whether dir already holds a durable corpus (its
// manifest exists) — callers then know a seed engine would be ignored.
func HasDurableState(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// OpenDurable opens (or creates) the durable corpus in cfg.Dir. With no
// existing state, seed becomes generation 1 of the persisted shard set
// (seed may be nil for an empty corpus); with a manifest present, seed is
// ignored and the shard set loads from disk. The WAL then replays every
// un-compacted mutation into a fresh delta, so the returned Mutable's
// snapshot matches the pre-restart state exactly. Recovery counters are
// reported by Durability.
func OpenDurable(seed Querier, cfg DurableConfig) (*Mutable, error) {
	t0 := time.Now()
	dir := cfg.Dir
	if dir == "" {
		return nil, errors.New("koko: durable corpus needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var (
		base  *ShardedEngine
		files []string
		gen   uint64
		appl  uint64
		err   error
	)
	if HasDurableState(dir) {
		base, files, gen, appl, err = openDurableBase(dir, cfg.Opts)
	} else {
		base, files, gen, err = persistSeed(dir, seed, cfg.Opts)
	}
	if err != nil {
		return nil, err
	}
	sweepOrphans(dir, files)

	m := NewMutable(base, cfg.Opts)
	m.dir = dir
	m.baseFiles = files
	m.storeGen = gen
	m.appliedSeq = appl

	log, err := wal.Open(filepath.Join(dir, walName), cfg.Sync, func(rec *wal.Record) error {
		if rec.Seq <= appl {
			return nil // already folded into the shard set
		}
		switch rec.Kind {
		case wal.KindAdd:
			m.addLocked(rec.Name, rec.Sents)
			m.replayedDocs++
		case wal.KindTombstone:
			if _, err := m.tombstoneLocked(rec.Name); err != nil {
				// A tombstone for a name with no live document means the
				// delete already took effect in the shard set; replay is
				// idempotent about it.
				if errors.Is(err, ErrNoDocument) {
					return nil
				}
				return err
			}
			m.replayedTombs++
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("koko: open wal in %s: %w", dir, err)
	}
	m.mu.Lock()
	m.wal = log
	m.recovery = time.Since(t0)
	m.sealLocked()
	m.mu.Unlock()
	return m, nil
}

// openDurableBase loads the manifest's shard set.
func openDurableBase(dir string, opts *Options) (*ShardedEngine, []string, uint64, uint64, error) {
	db, err := store.Load(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, nil, 0, 0, fmt.Errorf("koko: load durable manifest in %s: %w", dir, err)
	}
	files, formats, specs, err := index.LoadShardManifest(db)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	gen, appl, err := index.LoadDurableMeta(db)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	shards, err := loadShardEngines(dir, files, formats, specs, opts, filepath.Join(dir, manifestName))
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return newSharded(shards, specs), files, gen, appl, nil
}

// persistSeed writes seed (nil = empty corpus) as generation 1: one store
// file per shard plus the manifest. A crash partway leaves no manifest, so
// the next open re-persists from the same seed and sweeps the leftovers.
func persistSeed(dir string, seed Querier, opts *Options) (*ShardedEngine, []string, uint64, error) {
	const gen = 1
	var engines []*Engine
	var specs []index.ShardSpec
	switch e := seed.(type) {
	case nil:
		engines = []*Engine{NewEngine(&Corpus{c: &index.Corpus{}}, opts)}
		specs = []index.ShardSpec{{}}
	case *Engine:
		engines = []*Engine{e}
		specs = []index.ShardSpec{singleSpec(e.corpus.c)}
	case *ShardedEngine:
		engines = e.shards
		specs = e.specs
	default:
		return nil, nil, 0, fmt.Errorf("koko: cannot persist a seed engine of type %T", seed)
	}
	files := make([]string, len(engines))
	for i, eng := range engines {
		files[i] = shardGenFile(gen, i)
		if err := saveStoreDurable(eng, filepath.Join(dir, files[i])); err != nil {
			return nil, nil, 0, fmt.Errorf("koko: persist seed shard %d: %w", i, err)
		}
	}
	if err := writeManifest(dir, files, specs, gen, 0); err != nil {
		return nil, nil, 0, err
	}
	return newSharded(engines, specs), files, gen, nil
}

func singleSpec(c *index.Corpus) index.ShardSpec {
	return index.ShardSpec{
		LoDoc: 0, HiDoc: c.NumDocs(),
		FirstSID: 0, NumSents: c.NumSentences(),
		Tokens: countTokens(c),
	}
}

func countTokens(c *index.Corpus) int {
	n := 0
	for i := range c.Sentences {
		n += len(c.Sentences[i].Tokens)
	}
	return n
}

// saveStoreDurable persists one shard engine's store and fsyncs it — the
// file must be on disk before a manifest referencing it is swapped in.
func saveStoreDurable(eng *Engine, path string) error {
	if err := eng.Save(path); err != nil {
		return err
	}
	return fsyncFile(path)
}

// writeManifest atomically installs the manifest: write to a temp file,
// fsync, rename over MANIFEST, fsync the directory. Readers see either the
// old manifest or the new one, never a partial write. The manifest mixes
// carried-over shard files with freshly compacted ones, so each file's store
// format is read back from its magic rather than assumed.
func writeManifest(dir string, files []string, specs []index.ShardSpec, gen, applied uint64) error {
	formats := make([]string, len(files))
	for i, f := range files {
		formats[i] = index.FormatNameRow
		if blockstore.IsBlockStore(filepath.Join(dir, f)) {
			formats[i] = index.FormatNameBlock
		}
	}
	db := store.NewDB()
	index.SaveShardManifest(db, files, formats, specs)
	index.SaveDurableMeta(db, gen, applied)
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := db.Save(tmp); err != nil {
		return err
	}
	if err := fsyncFile(tmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return fsyncDir(dir)
}

// sweepOrphans removes generation shard files and temp files a crashed
// compaction (or seed persist) left behind — anything matching the
// generated name patterns that the live manifest does not reference. The
// manifest and WAL are never candidates.
func sweepOrphans(dir string, live []string) {
	ref := make(map[string]bool, len(live))
	for _, f := range live {
		ref[f] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || ref[name] || name == manifestName || name == walName {
			continue
		}
		genFile, _ := filepath.Match("gen*.shard*", name)
		tmpFile, _ := filepath.Match("*.tmp", name)
		if genFile || tmpFile {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

func fsyncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

func fsyncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// fail runs the test-injected failpoint at a named durable-compaction
// stage; a non-nil return simulates a crash there (the caller abandons the
// compaction mid-flight, exactly like a killed process).
func (m *Mutable) fail(stage string) error {
	if m.failpoint == nil {
		return nil
	}
	if err := m.failpoint(stage); err != nil {
		return fmt.Errorf("koko: durable compaction aborted at %s: %w", stage, err)
	}
	return nil
}

// compactDurable is Compact for a durable corpus: fold the cut delta and
// every live tombstone into the persisted shard set, incrementally and
// crash-safely. Caller holds compactMu.
func (m *Mutable) compactDurable() (CompactionStats, error) {
	t0 := time.Now()

	// Cut under the writer lock: the delta prefix, the tombstones to fold,
	// and the WAL horizon. Appends happen under the same lock, so every
	// record with Seq <= cutSeq is exactly the state being folded.
	m.mu.Lock()
	n := m.delta.NumDocs()
	cutTombs := m.tombs
	if n == 0 && cutTombs.numDocs() == 0 {
		m.mu.Unlock()
		return CompactionStats{}, nil
	}
	base, ok := m.base.(*ShardedEngine)
	if !ok {
		m.mu.Unlock()
		return CompactionStats{}, fmt.Errorf("koko: durable base is %T, want *ShardedEngine", m.base)
	}
	rawBase := base.NumDocuments()
	sp := m.shardParallel
	cut := &index.Corpus{}
	m.delta.AppendTo(cut, 0, n)
	cutSeq := m.wal.LastSeq()
	gen := m.storeGen + 1
	oldFiles := append([]string(nil), m.baseFiles...)
	m.mu.Unlock()

	// Merge, shard by shard. A base shard with no tombstones in its doc
	// range is reused outright — same engine, same file, only its spec's
	// global offsets shift — so untouched shard files are never rewritten.
	var (
		engines  []*Engine
		specs    []index.ShardSpec
		files    []string
		obsolete []string // old files superseded by this generation
	)
	docOff, sidOff := 0, 0
	firstWrite := true
	writeShard := func(c *index.Corpus, slot int) error {
		eng := NewEngine(&Corpus{c: c}, m.opts)
		file := shardGenFile(gen, slot)
		// Compaction rewrites shards in the block format: the rewritten
		// shard pages lazily on the next open while untouched row-format
		// shards ride along unchanged (the manifest records each file's
		// format), so a durable corpus migrates one compaction at a time.
		path := filepath.Join(m.dir, file)
		if err := eng.SaveAs(path, FormatBlock); err != nil {
			return err
		}
		if err := fsyncFile(path); err != nil {
			return err
		}
		if firstWrite {
			firstWrite = false
			if err := m.fail("mid-shard-write"); err != nil {
				return err
			}
		}
		engines = append(engines, eng)
		specs = append(specs, index.ShardSpec{
			LoDoc: docOff, HiDoc: docOff + c.NumDocs(),
			FirstSID: sidOff, NumSents: c.NumSentences(),
			Tokens: countTokens(c),
		})
		files = append(files, file)
		docOff += c.NumDocs()
		sidOff += c.NumSentences()
		return nil
	}
	for si, spec := range base.specs {
		dead := cutTombs.docsBefore(spec.HiDoc) - cutTombs.docsBefore(spec.LoDoc)
		if dead == 0 {
			specs = append(specs, index.ShardSpec{
				LoDoc: docOff, HiDoc: docOff + spec.NumDocs(),
				FirstSID: sidOff, NumSents: spec.NumSents,
				Tokens: spec.Tokens,
			})
			engines = append(engines, base.shards[si])
			files = append(files, oldFiles[si])
			docOff += spec.NumDocs()
			sidOff += spec.NumSents
			continue
		}
		obsolete = append(obsolete, oldFiles[si])
		src := base.shards[si].corpus.c
		c := &index.Corpus{}
		appendLiveRange(c, src, 0, src.NumDocs(), cutTombs, spec.LoDoc)
		if c.NumDocs() == 0 {
			continue // every document died; the shard vanishes
		}
		if err := writeShard(c, si); err != nil {
			return CompactionStats{}, err
		}
	}
	dc := &index.Corpus{}
	appendLiveRange(dc, cut, 0, cut.NumDocs(), cutTombs, rawBase)
	if dc.NumDocs() > 0 {
		if err := writeShard(dc, len(base.specs)); err != nil {
			return CompactionStats{}, err
		}
	}
	if len(engines) == 0 {
		// Everything was deleted. The manifest format requires at least one
		// shard, so persist a single empty one.
		if err := writeShard(&index.Corpus{}, 0); err != nil {
			return CompactionStats{}, err
		}
	}

	if err := m.fail("pre-manifest-swap"); err != nil {
		return CompactionStats{}, err
	}
	if err := writeManifest(m.dir, files, specs, gen, cutSeq); err != nil {
		return CompactionStats{}, err
	}
	if err := m.fail("post-manifest-swap"); err != nil {
		return CompactionStats{}, err
	}

	newBase := newSharded(engines, specs)
	if sp > 0 {
		newBase.SetParallelism(sp)
	}
	m.mu.Lock()
	m.base = newBase
	m.delta = m.delta.Rebase(n)
	m.tombs = renumberTombs(m.tombs, cutTombs)
	renumberNames(m.names, cutTombs)
	m.baseFiles = files
	m.storeGen = gen
	m.appliedSeq = cutSeq
	m.compactions++
	m.swaps++
	m.sealLocked()
	m.mu.Unlock()
	stats := CompactionStats{
		Docs:       n,
		Sentences:  cut.NumSentences(),
		Tombstones: cutTombs.numDocs(),
		Shards:     newBase.NumShards(),
		Elapsed:    time.Since(t0),
	}

	if err := m.fail("pre-wal-truncate"); err != nil {
		return stats, err
	}
	// Both cleanups are safe to lose to a crash: replay filters the stale
	// WAL prefix by wal_applied, and the next open sweeps unreferenced
	// generation files.
	if err := m.wal.TruncatePrefix(cutSeq); err != nil {
		return stats, fmt.Errorf("koko: truncate wal after compaction: %w", err)
	}
	for _, f := range obsolete {
		os.Remove(filepath.Join(m.dir, f))
	}
	return stats, nil
}

// DurabilityStats reports a durable corpus's WAL, tombstone, and recovery
// counters (the zero value, with Durable false, for memory-only corpora —
// except TombstonesLive, which every Mutable tracks).
type DurabilityStats struct {
	Durable        bool
	Generation     uint64
	WALAppends     uint64
	WALBytes       int64
	ReplayedDocs   uint64
	ReplayedTombs  uint64
	TombstonesLive int
	Swaps          uint64
	Recovery       time.Duration
}

// Durability reports the corpus's durability counters.
func (m *Mutable) Durability() DurabilityStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	ds := DurabilityStats{TombstonesLive: m.tombs.numDocs()}
	if m.wal == nil {
		return ds
	}
	ds.Durable = true
	ds.Generation = m.storeGen
	ds.WALAppends = m.wal.Appends()
	ds.WALBytes = m.wal.Size()
	ds.ReplayedDocs = m.replayedDocs
	ds.ReplayedTombs = m.replayedTombs
	ds.Swaps = m.swaps
	ds.Recovery = m.recovery
	return ds
}

// Dir returns the corpus's durable directory ("" for memory-only corpora).
func (m *Mutable) Dir() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dir
}

// Close releases the WAL handle and stops its sync loop (memory-only
// corpora no-op). Mutations after Close fail; snapshots already handed out
// keep working.
func (m *Mutable) Close() error {
	m.mu.Lock()
	w := m.wal
	m.wal = nil
	if w != nil {
		// Keep mutation paths failing cleanly rather than silently becoming
		// memory-only: with dir set but wal nil, durable writes are refused.
		m.closed = true
	}
	m.mu.Unlock()
	if w == nil {
		return nil
	}
	return w.Close()
}
