package koko

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/koko/index"
	"repro/internal/store"
)

// Querier is the query surface shared by Engine and ShardedEngine: a
// registry (or any caller) can hold either behind one type and route
// queries without knowing whether the corpus is partitioned.
//
// The three context-taking methods are the async surface: RunParsedCtx is a
// cancellable whole-query evaluation, RunShard evaluates exactly one shard
// (the progress unit of the server's job executor), and RunParsedEach
// delivers per-shard partials in shard order as their doc ranges complete
// (the flush unit of streaming responses).
type Querier interface {
	Query(src string) (*Result, error)
	QueryWith(src string, qo *QueryOptions) (*Result, error)
	RunParsed(p *ParsedQuery, qo *QueryOptions) (*Result, error)
	RunParsedCtx(ctx context.Context, p *ParsedQuery, qo *QueryOptions) (*Result, error)
	RunShard(ctx context.Context, shard int, p *ParsedQuery, qo *QueryOptions) (Partial, error)
	RunParsedEach(ctx context.Context, p *ParsedQuery, qo *QueryOptions, each func(shard int, part Partial) error) error
	Stats() IndexStats
	ShardStats() []ShardStat
	Save(path string) error
	NumDocuments() int
	NumSentences() int
	NumShards() int
	DocumentName(i int) string
}

var (
	_ Querier = (*Engine)(nil)
	_ Querier = (*ShardedEngine)(nil)
)

// ShardStat describes one shard of a corpus: its size and index shape.
type ShardStat struct {
	Shard     int        `json:"shard"`
	Documents int        `json:"documents"`
	Sentences int        `json:"sentences"`
	Tokens    int        `json:"tokens,omitempty"`
	Index     IndexStats `json:"index"`
	// Delta marks a mutable corpus's sealed delta riding along as the last
	// shard (see Snapshot.ShardStats).
	Delta bool `json:"delta,omitempty"`
}

// Partial is one shard's contribution to a query: a complete Result in
// shard-local document and sentence coordinates, plus the offsets that
// rebase it into the global corpus. Merging partials in shard order yields
// exactly the single-engine result.
type Partial struct {
	Res *Result
	// DocOffset / SentOffset rebase the shard-local Tuple.Document and
	// Tuple.SentenceID to corpus-global values.
	DocOffset  int
	SentOffset int
}

// MergePartials concatenates shard partials in the order given, rebasing
// tuple attribution to global ids. Shards cover ascending doc ranges and
// each shard emits tuples in document order, so concatenation preserves
// global document order. Phase times and Elapsed are summed across shards
// (CPU time, as with Workers > 1); callers that want fan-out wall time
// overwrite Elapsed afterwards.
func MergePartials(parts []Partial) *Result {
	out := &Result{}
	for _, p := range parts {
		if p.Res == nil {
			continue
		}
		for _, t := range p.Res.Tuples {
			t.SentenceID += p.SentOffset
			t.Document += p.DocOffset
			out.Tuples = append(out.Tuples, t)
		}
		out.Candidates += p.Res.Candidates
		out.Matched += p.Res.Matched
		out.Elapsed += p.Res.Elapsed
		out.Phases.Normalize += p.Res.Phases.Normalize
		out.Phases.DPLI += p.Res.Phases.DPLI
		out.Phases.Plan += p.Res.Phases.Plan
		out.Phases.LoadArticle += p.Res.Phases.LoadArticle
		out.Phases.GSP += p.Res.Phases.GSP
		out.Phases.Extract += p.Res.Phases.Extract
		out.Phases.Satisfying += p.Res.Phases.Satisfying
		mergePlanInfo(out, p.Res.Plan)
	}
	return out
}

// mergePlanInfo folds one shard's plan report into the merged result: the
// first shard with a plan sets the step order (every shard plans the same
// canonical query over per-shard statistics, so orders can differ — the
// merged view keys steps by variable), then estimated and actual binding
// counts sum per variable and Reordered ORs across shards.
func mergePlanInfo(out *Result, p *PlanInfo) {
	if p == nil {
		return
	}
	if out.Plan == nil {
		pi := &PlanInfo{Reordered: p.Reordered, Steps: append([]PlanStep(nil), p.Steps...)}
		out.Plan = pi
		return
	}
	out.Plan.Reordered = out.Plan.Reordered || p.Reordered
	byVar := make(map[string]int, len(out.Plan.Steps))
	for i, st := range out.Plan.Steps {
		byVar[st.Var] = i
	}
	for _, st := range p.Steps {
		if i, ok := byVar[st.Var]; ok {
			out.Plan.Steps[i].Estimated += st.Estimated
			out.Plan.Steps[i].Actual += st.Actual
		} else {
			out.Plan.Steps = append(out.Plan.Steps, st)
		}
	}
}

// ShardedEngine partitions a corpus into doc-range shards, each with its own
// multi-index and engine, and evaluates queries by fanning the parsed query
// out to every shard on a bounded worker pool, then merging the partial
// results back in global document order. Results are byte-identical to a
// single Engine over the unpartitioned corpus (modulo timing fields).
//
// Like Engine, a ShardedEngine is safe for concurrent use.
type ShardedEngine struct {
	shards []*Engine
	specs  []index.ShardSpec
	// parallel bounds how many shards evaluate at once for one query;
	// atomic so SetParallelism can retune a served engine mid-flight.
	parallel atomic.Int32
}

// NewShardedEngine partitions c into (at most) k token-balanced doc-range
// shards and builds a per-shard engine over each. opts may be nil and is
// applied to every shard. Corpora with fewer than k documents get one shard
// per document.
func NewShardedEngine(c *Corpus, k int, opts *Options) *ShardedEngine {
	specs := index.PartitionDocs(c.c, k)
	shards := make([]*Engine, len(specs))
	// Shards are independent, so their indices build concurrently (bounded
	// by GOMAXPROCS) — this is what keeps registry load/reload latency flat
	// as the shard count grows.
	sem := make(chan struct{}, buildParallelism(len(specs)))
	var wg sync.WaitGroup
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp index.ShardSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			shards[i] = NewEngine(&Corpus{c: index.ShardCorpus(c.c, sp)}, opts)
		}(i, sp)
	}
	wg.Wait()
	return newSharded(shards, specs)
}

func buildParallelism(n int) int {
	if max := runtime.GOMAXPROCS(0); n > max {
		n = max
	}
	if n < 1 {
		n = 1
	}
	return n
}

func newSharded(shards []*Engine, specs []index.ShardSpec) *ShardedEngine {
	e := &ShardedEngine{shards: shards, specs: specs}
	e.parallel.Store(int32(buildParallelism(len(shards))))
	return e
}

// SetParallelism bounds how many shards evaluate concurrently per query
// (default: min(shards, GOMAXPROCS)). n < 1 means sequential. Safe to call
// while queries are in flight; in-flight fan-outs keep the bound they read.
func (e *ShardedEngine) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	e.parallel.Store(int32(n))
}

// Parallelism reports the current per-query shard fan-out bound.
func (e *ShardedEngine) Parallelism() int { return int(e.parallel.Load()) }

// NumShards returns the shard count.
func (e *ShardedEngine) NumShards() int { return len(e.shards) }

// Shard returns shard i's engine (for inspection and tests).
func (e *ShardedEngine) Shard(i int) *Engine { return e.shards[i] }

// Spec returns shard i's doc-range spec.
func (e *ShardedEngine) Spec(i int) index.ShardSpec { return e.specs[i] }

// NumDocuments sums document counts across shards.
func (e *ShardedEngine) NumDocuments() int {
	n := 0
	for _, s := range e.shards {
		n += s.NumDocuments()
	}
	return n
}

// NumSentences sums sentence counts across shards.
func (e *ShardedEngine) NumSentences() int {
	n := 0
	for _, s := range e.shards {
		n += s.NumSentences()
	}
	return n
}

// DocumentName resolves a global document index to its name ("" if out of
// range).
func (e *ShardedEngine) DocumentName(i int) string {
	for si, sp := range e.specs {
		if i >= sp.LoDoc && i < sp.HiDoc {
			return e.shards[si].DocumentName(i - sp.LoDoc)
		}
	}
	return ""
}

// Query parses and evaluates a KOKO query across all shards.
func (e *ShardedEngine) Query(src string) (*Result, error) {
	return e.QueryWith(src, nil)
}

// QueryWith parses and evaluates with per-query overrides (qo may be nil).
// Workers applies within each shard; shard fan-out is bounded separately by
// SetParallelism.
func (e *ShardedEngine) QueryWith(src string, qo *QueryOptions) (*Result, error) {
	p, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return e.RunParsed(p, qo)
}

// RunParsed fans an already-parsed query out to every shard on a bounded
// pool and merges the partials in document order. Phases report summed CPU
// time across shards; Elapsed reports the fan-out's wall time. Safe for
// concurrent use.
func (e *ShardedEngine) RunParsed(p *ParsedQuery, qo *QueryOptions) (*Result, error) {
	return e.RunParsedCtx(context.Background(), p, qo)
}

// RunParsedCtx fans out like RunParsed but honors ctx: shards not yet
// started are skipped and in-flight shard evaluations stop between
// documents; the call then returns ctx.Err() (possibly wrapped with the
// failing shard's number). It is RunParsedEach with a collect-everything
// consumer — one fan-out implementation serves both surfaces.
func (e *ShardedEngine) RunParsedCtx(ctx context.Context, p *ParsedQuery, qo *QueryOptions) (*Result, error) {
	t0 := time.Now()
	parts := make([]Partial, len(e.shards))
	err := e.RunParsedEach(ctx, p, qo, func(i int, part Partial) error {
		parts[i] = part
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := MergePartials(parts)
	out.Elapsed = time.Since(t0)
	return out, nil
}

// RunShard evaluates shard i only, returning its Partial with the offsets
// that rebase it into the global corpus. It is the unit of progress for
// callers that schedule a query shard-at-a-time (the server's job executor):
// K calls in shard order, each individually cancellable, whose accumulated
// prefix is always mergeable with MergePartials.
func (e *ShardedEngine) RunShard(ctx context.Context, shard int, p *ParsedQuery, qo *QueryOptions) (Partial, error) {
	if shard < 0 || shard >= len(e.shards) {
		return Partial{}, fmt.Errorf("koko: shard %d out of range (engine has %d)", shard, len(e.shards))
	}
	res, err := e.shards[shard].RunParsedCtx(ctx, p, qo)
	if err != nil {
		return Partial{}, err
	}
	return Partial{Res: res, DocOffset: e.specs[shard].LoDoc, SentOffset: e.specs[shard].FirstSID}, nil
}

// RunParsedEach fans the query out across shards (bounded by the engine's
// parallelism) and delivers each shard's Partial to each in strict shard
// order as its doc range completes — shard i is delivered only after shards
// 0..i-1, so the stream of partials concatenates into the exact merged
// result. A shard that finishes early is buffered until its turn. A shard
// error cancels the rest of the fan-out immediately (shards not yet started
// are skipped) and is the returned error regardless of which shard index
// the in-order delivery stops at. If each returns an error (e.g. a
// disconnected client), remaining shard evaluations are likewise cancelled
// and the error is returned; all fan-out goroutines have exited by the time
// RunParsedEach returns.
func (e *ShardedEngine) RunParsedEach(ctx context.Context, p *ParsedQuery, qo *QueryOptions, each func(shard int, part Partial) error) error {
	ready := make([]chan struct{}, len(e.shards))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	parts := make([]Partial, len(e.shards))
	errs := make([]error, len(e.shards))
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// record notes the first real failure; skipped and later-failing shards
	// resolve to it, so the consumer loop below reports the root cause even
	// when a lower-indexed shard was merely cancelled in its wake.
	var mu sync.Mutex
	var firstErr error
	record := func(err error) error {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
		return firstErr
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.parallel.Load())
	for i := range e.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer close(ready[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := cctx.Err(); err != nil {
				errs[i] = record(err)
				return
			}
			part, err := e.RunShard(cctx, i, p, qo)
			if err != nil {
				errs[i] = record(fmt.Errorf("shard %d: %w", i, err))
				cancel() // fast-fail: don't start shards whose result is already moot
				return
			}
			parts[i] = part
		}(i)
	}
	var err error
	for i := range e.shards {
		<-ready[i]
		if err = errs[i]; err != nil {
			break
		}
		if err = each(i, parts[i]); err != nil {
			break
		}
	}
	// Cancel whatever is still running (no-op on clean completion) and wait:
	// no shard goroutine may outlive the call.
	cancel()
	wg.Wait()
	return err
}

// Stats sums index statistics across shards. Counts are per-shard sizes
// added up: a word indexed in every shard contributes once per shard, so
// the sum reflects total index footprint rather than distinct terms.
// Compression ratios are averaged weighted by node count.
func (e *ShardedEngine) Stats() IndexStats {
	return MergeShardStats(e.ShardStats())
}

// MergeShardStats aggregates per-shard index statistics into one summary
// (summed sizes, node-count-weighted compression ratios). Callers that
// already hold a ShardStats slice should aggregate it with this instead of
// calling Stats again — each per-shard stat costs a full index walk.
func MergeShardStats(ss []ShardStat) IndexStats {
	var out IndexStats
	var plW, posW float64
	for _, s := range ss {
		st := s.Index
		out.Words += st.Words
		out.Entities += st.Entities
		out.PLNodes += st.PLNodes
		out.POSNodes += st.POSNodes
		plW += st.PLCompression * float64(st.PLNodes)
		posW += st.POSCompression * float64(st.POSNodes)
	}
	if out.PLNodes > 0 {
		out.PLCompression = plW / float64(out.PLNodes)
	}
	if out.POSNodes > 0 {
		out.POSCompression = posW / float64(out.POSNodes)
	}
	return out
}

// ShardStats reports per-shard sizes and index shapes in shard order.
func (e *ShardedEngine) ShardStats() []ShardStat {
	out := make([]ShardStat, len(e.shards))
	for i, s := range e.shards {
		out[i] = ShardStat{
			Shard:     i,
			Documents: s.NumDocuments(),
			Sentences: s.NumSentences(),
			Tokens:    e.specs[i].Tokens,
			Index:     s.Stats(),
		}
	}
	return out
}

// shardFileName names shard i's store relative to the manifest. The suffix
// deliberately does not end in ".koko" so directory scans for *.koko pick
// up only the manifest.
func shardFileName(base string, i int) string {
	return fmt.Sprintf("%s.shard%d", base, i)
}

// Save persists the sharded layout: path becomes a small manifest store and
// each shard writes a complete stand-alone store next to it as
// path.shard<i>. Load the set back with Open or LoadSharded on the manifest
// path.
func (e *ShardedEngine) Save(path string) error {
	base := filepath.Base(path)
	files := make([]string, len(e.shards))
	for i, s := range e.shards {
		files[i] = shardFileName(base, i)
		if err := s.Save(filepath.Join(filepath.Dir(path), files[i])); err != nil {
			return fmt.Errorf("koko: save shard %d: %w", i, err)
		}
	}
	db := store.NewDB()
	index.SaveShardManifest(db, files, e.specs)
	return db.Save(path)
}

// LoadSharded reopens a sharded engine from a manifest written by Save.
// opts (may be nil) applies to every shard.
func LoadSharded(path string, opts *Options) (*ShardedEngine, error) {
	db, err := store.Load(path)
	if err != nil {
		return nil, err
	}
	return loadShardedFromDB(db, path, opts)
}

func loadShardedFromDB(db *store.DB, path string, opts *Options) (*ShardedEngine, error) {
	files, specs, err := index.LoadShardManifest(db)
	if err != nil {
		return nil, err
	}
	shards, err := loadShardEngines(filepath.Dir(path), files, specs, opts, path)
	if err != nil {
		return nil, err
	}
	return newSharded(shards, specs), nil
}

// loadShardEngines loads each named shard store (relative to dir) in
// parallel and validates it against its spec; label names the manifest in
// errors. Shared by the manifest and durable open paths.
func loadShardEngines(dir string, files []string, specs []index.ShardSpec, opts *Options, label string) ([]*Engine, error) {
	shards := make([]*Engine, len(files))
	sem := make(chan struct{}, buildParallelism(len(files)))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, f := range files {
		wg.Add(1)
		go func(i int, f string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s, err := Load(filepath.Join(dir, f), opts)
			if err == nil {
				// A shard file that disagrees with its manifest spec would
				// silently rebase tuples onto the wrong global ids; refuse it.
				if s.NumDocuments() != specs[i].NumDocs() || s.NumSentences() != specs[i].NumSents {
					err = fmt.Errorf("shard file %s has %d docs/%d sents, manifest expects %d/%d",
						f, s.NumDocuments(), s.NumSentences(), specs[i].NumDocs(), specs[i].NumSents)
				}
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("koko: load shard %d of %s: %w", i, label, err)
				}
				mu.Unlock()
				return
			}
			shards[i] = s
		}(i, f)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return shards, nil
}
