package koko

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/koko/index"
	"repro/internal/koko/index/blockstore"
	"repro/internal/store"
)

// Querier is the query surface shared by Engine, ShardedEngine, Snapshot,
// and remote.Engine: a registry (or any caller) can hold any of them behind
// one type and route queries without knowing whether the corpus is
// partitioned, mutable, or distributed.
//
// Run is the canonical evaluation method: context-first, returning a lazy
// TupleSeq whose memory is bounded by batching rather than result size.
// Every other evaluation surface is defined in terms of it — buffered
// results are Run + TupleSeq.Collect, per-shard Partial delivery is Run
// regrouped on ShardEnd markers. StreamShard is the per-shard unit beneath
// Run: exactly one shard evaluated as a stream of bounded batches (the
// progress unit of the server's job executor and the chunked remote
// protocol). RunShard is its buffered sibling.
//
// The RunParsed* family and QueryWith predate Run and remain as thin
// wrappers for compatibility.
type Querier interface {
	Query(src string) (*Result, error)
	// Run evaluates an already-parsed query as a single-use lazy stream of
	// tuples in global document order with per-shard end markers. qo may be
	// nil. A non-nil error means the query never started (parse-adjacent
	// failures, pre-cancelled ctx); errors during evaluation surface
	// through TupleSeq.Err after iteration.
	Run(ctx context.Context, p *ParsedQuery, qo *QueryOptions) (*TupleSeq, error)
	// StreamShard evaluates exactly one shard, delivering tuples through
	// emit in bounded batches already rebased to global coordinates, and
	// returns the shard's counters-only summary.
	StreamShard(ctx context.Context, shard int, p *ParsedQuery, qo *QueryOptions, emit func(tuples []Tuple) error) (*Result, error)
	RunShard(ctx context.Context, shard int, p *ParsedQuery, qo *QueryOptions) (Partial, error)

	// Deprecated: parse with ParseQuery and use Run.
	QueryWith(src string, qo *QueryOptions) (*Result, error)
	// Deprecated: use Run with TupleSeq.Collect.
	RunParsed(p *ParsedQuery, qo *QueryOptions) (*Result, error)
	// Deprecated: use Run with TupleSeq.Collect.
	RunParsedCtx(ctx context.Context, p *ParsedQuery, qo *QueryOptions) (*Result, error)
	// Deprecated: use Run; ShardEnd events mark the per-shard boundaries.
	RunParsedEach(ctx context.Context, p *ParsedQuery, qo *QueryOptions, each func(shard int, part Partial) error) error

	Stats() IndexStats
	ShardStats() []ShardStat
	Save(path string) error
	NumDocuments() int
	NumSentences() int
	NumShards() int
	DocumentName(i int) string
}

var (
	_ Querier = (*Engine)(nil)
	_ Querier = (*ShardedEngine)(nil)
)

// ShardStat describes one shard of a corpus: its size and index shape.
type ShardStat struct {
	Shard     int        `json:"shard"`
	Documents int        `json:"documents"`
	Sentences int        `json:"sentences"`
	Tokens    int        `json:"tokens,omitempty"`
	Index     IndexStats `json:"index"`
	// Delta marks a mutable corpus's sealed delta riding along as the last
	// shard (see Snapshot.ShardStats).
	Delta bool `json:"delta,omitempty"`
}

// Partial is one shard's contribution to a query: a complete Result in
// shard-local document and sentence coordinates, plus the offsets that
// rebase it into the global corpus. Merging partials in shard order yields
// exactly the single-engine result.
type Partial struct {
	Res *Result
	// DocOffset / SentOffset rebase the shard-local Tuple.Document and
	// Tuple.SentenceID to corpus-global values.
	DocOffset  int
	SentOffset int
}

// MergePartials concatenates shard partials in the order given, rebasing
// tuple attribution to global ids. Shards cover ascending doc ranges and
// each shard emits tuples in document order, so concatenation preserves
// global document order. Phase times and Elapsed are summed across shards
// (CPU time, as with Workers > 1); callers that want fan-out wall time
// overwrite Elapsed afterwards.
func MergePartials(parts []Partial) *Result {
	out := &Result{}
	for _, p := range parts {
		if p.Res == nil {
			continue
		}
		for _, t := range p.Res.Tuples {
			t.SentenceID += p.SentOffset
			t.Document += p.DocOffset
			out.Tuples = append(out.Tuples, t)
		}
		mergeResultInto(out, p.Res)
	}
	return out
}

// mergePlanInfo folds one shard's plan report into the merged result: the
// first shard with a plan sets the step order (every shard plans the same
// canonical query over per-shard statistics, so orders can differ — the
// merged view keys steps by variable), then estimated and actual binding
// counts sum per variable and Reordered ORs across shards.
func mergePlanInfo(out *Result, p *PlanInfo) {
	if p == nil {
		return
	}
	if out.Plan == nil {
		pi := &PlanInfo{Reordered: p.Reordered, Steps: append([]PlanStep(nil), p.Steps...)}
		out.Plan = pi
		return
	}
	out.Plan.Reordered = out.Plan.Reordered || p.Reordered
	byVar := make(map[string]int, len(out.Plan.Steps))
	for i, st := range out.Plan.Steps {
		byVar[st.Var] = i
	}
	for _, st := range p.Steps {
		if i, ok := byVar[st.Var]; ok {
			out.Plan.Steps[i].Estimated += st.Estimated
			out.Plan.Steps[i].Actual += st.Actual
		} else {
			out.Plan.Steps = append(out.Plan.Steps, st)
		}
	}
}

// ShardedEngine partitions a corpus into doc-range shards, each with its own
// multi-index and engine, and evaluates queries by fanning the parsed query
// out to every shard on a bounded worker pool, then merging the partial
// results back in global document order. Results are byte-identical to a
// single Engine over the unpartitioned corpus (modulo timing fields).
//
// Like Engine, a ShardedEngine is safe for concurrent use.
type ShardedEngine struct {
	shards []*Engine
	specs  []index.ShardSpec
	// parallel bounds how many shards evaluate at once for one query;
	// atomic so SetParallelism can retune a served engine mid-flight.
	parallel atomic.Int32
}

// NewShardedEngine partitions c into (at most) k token-balanced doc-range
// shards and builds a per-shard engine over each. opts may be nil and is
// applied to every shard. Corpora with fewer than k documents get one shard
// per document.
func NewShardedEngine(c *Corpus, k int, opts *Options) *ShardedEngine {
	specs := index.PartitionDocs(c.c, k)
	shards := make([]*Engine, len(specs))
	// Shards are independent, so their indices build concurrently (bounded
	// by GOMAXPROCS) — this is what keeps registry load/reload latency flat
	// as the shard count grows.
	sem := make(chan struct{}, buildParallelism(len(specs)))
	var wg sync.WaitGroup
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp index.ShardSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			shards[i] = NewEngine(&Corpus{c: index.ShardCorpus(c.c, sp)}, opts)
		}(i, sp)
	}
	wg.Wait()
	return newSharded(shards, specs)
}

func buildParallelism(n int) int {
	if max := runtime.GOMAXPROCS(0); n > max {
		n = max
	}
	if n < 1 {
		n = 1
	}
	return n
}

func newSharded(shards []*Engine, specs []index.ShardSpec) *ShardedEngine {
	e := &ShardedEngine{shards: shards, specs: specs}
	e.parallel.Store(int32(buildParallelism(len(shards))))
	return e
}

// SetParallelism bounds how many shards evaluate concurrently per query
// (default: min(shards, GOMAXPROCS)). n < 1 means sequential. Safe to call
// while queries are in flight; in-flight fan-outs keep the bound they read.
func (e *ShardedEngine) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	e.parallel.Store(int32(n))
}

// Parallelism reports the current per-query shard fan-out bound.
func (e *ShardedEngine) Parallelism() int { return int(e.parallel.Load()) }

// NumShards returns the shard count.
func (e *ShardedEngine) NumShards() int { return len(e.shards) }

// Shard returns shard i's engine (for inspection and tests).
func (e *ShardedEngine) Shard(i int) *Engine { return e.shards[i] }

// Spec returns shard i's doc-range spec.
func (e *ShardedEngine) Spec(i int) index.ShardSpec { return e.specs[i] }

// NumDocuments sums document counts across shards.
func (e *ShardedEngine) NumDocuments() int {
	n := 0
	for _, s := range e.shards {
		n += s.NumDocuments()
	}
	return n
}

// NumSentences sums sentence counts across shards.
func (e *ShardedEngine) NumSentences() int {
	n := 0
	for _, s := range e.shards {
		n += s.NumSentences()
	}
	return n
}

// DocumentName resolves a global document index to its name ("" if out of
// range).
func (e *ShardedEngine) DocumentName(i int) string {
	for si, sp := range e.specs {
		if i >= sp.LoDoc && i < sp.HiDoc {
			return e.shards[si].DocumentName(i - sp.LoDoc)
		}
	}
	return ""
}

// Query parses and evaluates a KOKO query across all shards.
func (e *ShardedEngine) Query(src string) (*Result, error) {
	return e.QueryWith(src, nil)
}

// QueryWith parses and evaluates with per-query overrides (qo may be nil).
// Workers applies within each shard; shard fan-out is bounded separately by
// SetParallelism.
//
// Deprecated: parse with ParseQuery and evaluate with Run.
func (e *ShardedEngine) QueryWith(src string, qo *QueryOptions) (*Result, error) {
	p, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return e.RunParsed(p, qo)
}

// Run fans an already-parsed query out across shards (bounded by the
// engine's parallelism) as a lazy stream: each shard delivers bounded
// batches into the K-way ordered merge, so tuples yield in global document
// order — the first shard's first documents stream out while later shards
// are still evaluating — and memory stays bounded regardless of result
// size. Safe for concurrent use; each call returns an independent
// single-use stream.
func (e *ShardedEngine) Run(ctx context.Context, p *ParsedQuery, qo *QueryOptions) (*TupleSeq, error) {
	return StreamShards(ctx, len(e.shards), int(e.parallel.Load()),
		func(ctx context.Context, shard int, emit func([]Tuple) error) (*Result, error) {
			return e.StreamShard(ctx, shard, p, qo, emit)
		}, false), nil
}

// StreamShard evaluates shard i only, delivering its tuples through emit in
// bounded batches already rebased to global document and sentence ids, and
// returns the shard's counters-only summary. The unit beneath Run's fan-out
// and the chunked delivery of remote workers.
func (e *ShardedEngine) StreamShard(ctx context.Context, shard int, p *ParsedQuery, qo *QueryOptions, emit func(tuples []Tuple) error) (*Result, error) {
	if shard < 0 || shard >= len(e.shards) {
		return nil, fmt.Errorf("koko: shard %d out of range (engine has %d)", shard, len(e.shards))
	}
	docOff, sentOff := e.specs[shard].LoDoc, e.specs[shard].FirstSID
	return e.shards[shard].StreamShard(ctx, 0, p, qo, func(ts []Tuple) error {
		for k := range ts {
			ts[k].Document += docOff
			ts[k].SentenceID += sentOff
		}
		return emit(ts)
	})
}

// RunParsed fans an already-parsed query out to every shard on a bounded
// pool and merges the partials in document order. Phases report summed CPU
// time across shards; Elapsed reports the fan-out's wall time. Safe for
// concurrent use.
//
// Deprecated: use Run with TupleSeq.Collect.
func (e *ShardedEngine) RunParsed(p *ParsedQuery, qo *QueryOptions) (*Result, error) {
	return e.RunParsedCtx(context.Background(), p, qo)
}

// RunParsedCtx fans out like RunParsed but honors ctx: shards not yet
// started are skipped and in-flight shard evaluations stop between
// documents; the call then returns ctx.Err() (possibly wrapped with the
// failing shard's number).
//
// Deprecated: use Run with TupleSeq.Collect.
func (e *ShardedEngine) RunParsedCtx(ctx context.Context, p *ParsedQuery, qo *QueryOptions) (*Result, error) {
	seq, err := e.Run(ctx, p, qo)
	if err != nil {
		return nil, err
	}
	return seq.Collect()
}

// RunShard evaluates shard i only, returning its Partial with the offsets
// that rebase it into the global corpus. It is the buffered sibling of
// StreamShard: K calls in shard order, each individually cancellable, whose
// accumulated prefix is always mergeable with MergePartials.
func (e *ShardedEngine) RunShard(ctx context.Context, shard int, p *ParsedQuery, qo *QueryOptions) (Partial, error) {
	if shard < 0 || shard >= len(e.shards) {
		return Partial{}, fmt.Errorf("koko: shard %d out of range (engine has %d)", shard, len(e.shards))
	}
	seq, err := e.shards[shard].Run(ctx, p, qo)
	if err != nil {
		return Partial{}, err
	}
	res, err := seq.Collect()
	if err != nil {
		return Partial{}, err
	}
	return Partial{Res: res, DocOffset: e.specs[shard].LoDoc, SentOffset: e.specs[shard].FirstSID}, nil
}

// RunParsedEach fans the query out and delivers each shard's Partial to
// each in strict shard order, already rebased to global coordinates (zero
// offsets). A shard error cancels the rest of the fan-out; an error from
// each cancels remaining shard evaluations and is returned. All fan-out
// goroutines have exited by the time RunParsedEach returns.
//
// Deprecated: use Run; ShardEnd events mark the per-shard boundaries, and
// tuples stream instead of buffering per shard.
func (e *ShardedEngine) RunParsedEach(ctx context.Context, p *ParsedQuery, qo *QueryOptions, each func(shard int, part Partial) error) error {
	return runParsedEachVia(e, ctx, p, qo, each)
}

// Stats sums index statistics across shards. Counts are per-shard sizes
// added up: a word indexed in every shard contributes once per shard, so
// the sum reflects total index footprint rather than distinct terms.
// Compression ratios are averaged weighted by node count.
func (e *ShardedEngine) Stats() IndexStats {
	return MergeShardStats(e.ShardStats())
}

// MergeShardStats aggregates per-shard index statistics into one summary
// (summed sizes, node-count-weighted compression ratios). Callers that
// already hold a ShardStats slice should aggregate it with this instead of
// calling Stats again — each per-shard stat costs a full index walk.
func MergeShardStats(ss []ShardStat) IndexStats {
	var out IndexStats
	var plW, posW float64
	for _, s := range ss {
		st := s.Index
		out.Words += st.Words
		out.Entities += st.Entities
		out.PLNodes += st.PLNodes
		out.POSNodes += st.POSNodes
		plW += st.PLCompression * float64(st.PLNodes)
		posW += st.POSCompression * float64(st.POSNodes)
	}
	if out.PLNodes > 0 {
		out.PLCompression = plW / float64(out.PLNodes)
	}
	if out.POSNodes > 0 {
		out.POSCompression = posW / float64(out.POSNodes)
	}
	return out
}

// ShardStats reports per-shard sizes and index shapes in shard order.
func (e *ShardedEngine) ShardStats() []ShardStat {
	out := make([]ShardStat, len(e.shards))
	for i, s := range e.shards {
		out[i] = ShardStat{
			Shard:     i,
			Documents: s.NumDocuments(),
			Sentences: s.NumSentences(),
			Tokens:    e.specs[i].Tokens,
			Index:     s.Stats(),
		}
	}
	return out
}

// shardFileName names shard i's store relative to the manifest. The suffix
// deliberately does not end in ".koko" so directory scans for *.koko pick
// up only the manifest.
func shardFileName(base string, i int) string {
	return fmt.Sprintf("%s.shard%d", base, i)
}

// Save persists the sharded layout: path becomes a small manifest store and
// each shard writes a complete stand-alone store next to it as
// path.shard<i>. Load the set back with Open or LoadSharded on the manifest
// path.
func (e *ShardedEngine) Save(path string) error {
	return e.SaveAs(path, FormatRow)
}

// SaveAs persists the sharded layout like Save with every shard written in
// the chosen store format. The manifest records each shard's format, so
// mixed-format sets written by incremental compaction load the same way.
func (e *ShardedEngine) SaveAs(path string, format StoreFormat) error {
	base := filepath.Base(path)
	files := make([]string, len(e.shards))
	formats := make([]string, len(e.shards))
	for i, s := range e.shards {
		files[i] = shardFileName(base, i)
		formats[i] = format.String()
		if err := s.SaveAs(filepath.Join(filepath.Dir(path), files[i]), format); err != nil {
			return fmt.Errorf("koko: save shard %d: %w", i, err)
		}
	}
	db := store.NewDB()
	index.SaveShardManifest(db, files, formats, e.specs)
	return db.Save(path)
}

// LoadSharded reopens a sharded engine from a manifest written by Save.
// opts (may be nil) applies to every shard.
func LoadSharded(path string, opts *Options) (*ShardedEngine, error) {
	db, err := store.Load(path)
	if err != nil {
		return nil, err
	}
	return loadShardedFromDB(db, path, opts)
}

func loadShardedFromDB(db *store.DB, path string, opts *Options) (*ShardedEngine, error) {
	files, formats, specs, err := index.LoadShardManifest(db)
	if err != nil {
		return nil, err
	}
	shards, err := loadShardEngines(filepath.Dir(path), files, formats, specs, opts, path)
	if err != nil {
		return nil, err
	}
	return newSharded(shards, specs), nil
}

// loadShardEngines loads each named shard store (relative to dir) in
// parallel and validates it against its spec; label names the manifest in
// errors. formats holds the manifest's declared store format per shard ("" =
// unchecked); Load auto-detects the actual format either way, the
// declaration only guards against a shard file swapped behind the manifest.
// Shared by the manifest and durable open paths.
func loadShardEngines(dir string, files []string, formats []string, specs []index.ShardSpec, opts *Options, label string) ([]*Engine, error) {
	shards := make([]*Engine, len(files))
	sem := make(chan struct{}, buildParallelism(len(files)))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, f := range files {
		wg.Add(1)
		go func(i int, f string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			full := filepath.Join(dir, f)
			var err error
			if i < len(formats) && formats[i] != "" {
				actual := index.FormatNameRow
				if blockstore.IsBlockStore(full) {
					actual = index.FormatNameBlock
				}
				if actual != formats[i] {
					err = fmt.Errorf("shard file %s is %s format, manifest declares %s", f, actual, formats[i])
				}
			}
			var s *Engine
			if err == nil {
				s, err = Load(full, opts)
			}
			if err == nil {
				// A shard file that disagrees with its manifest spec would
				// silently rebase tuples onto the wrong global ids; refuse it.
				if s.NumDocuments() != specs[i].NumDocs() || s.NumSentences() != specs[i].NumSents {
					err = fmt.Errorf("shard file %s has %d docs/%d sents, manifest expects %d/%d",
						f, s.NumDocuments(), s.NumSentences(), specs[i].NumDocs(), specs[i].NumSents)
				}
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("koko: load shard %d of %s: %w", i, label, err)
				}
				mu.Unlock()
				return
			}
			shards[i] = s
		}(i, f)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return shards, nil
}
