package koko

import "sort"

// docSpan records one tombstoned document in raw global coordinates — the
// (base + delta) numbering at the moment the tombstone was applied, before
// any masking. firstSID/nSents pin the document's sentence range so reads
// can renumber surviving sentences without consulting the dead document.
type docSpan struct {
	doc      int
	firstSID int
	nSents   int
}

// tombSet is an immutable sorted set of tombstoned documents. Snapshots
// hold a tombSet and mask its documents out of every read; compaction folds
// the set away and installs a renumbered successor for tombstones that
// arrived mid-rebuild. All methods are nil-receiver safe (nil = empty), and
// add copies — a set handed to a sealed snapshot never changes under it.
type tombSet struct {
	spans []docSpan // sorted by doc (and therefore by firstSID)
	// cumSents[i] = total sentences of spans[:i]; cumSents[len(spans)] is
	// the set's sentence total.
	cumSents []int
}

func newTombSet(spans []docSpan) *tombSet {
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].doc < spans[j].doc })
	cum := make([]int, len(spans)+1)
	for i, sp := range spans {
		cum[i+1] = cum[i] + sp.nSents
	}
	return &tombSet{spans: spans, cumSents: cum}
}

// add returns a new set with the extra spans (the receiver is unchanged).
func (t *tombSet) add(spans ...docSpan) *tombSet {
	if len(spans) == 0 {
		return t
	}
	all := make([]docSpan, 0, t.numDocs()+len(spans))
	if t != nil {
		all = append(all, t.spans...)
	}
	all = append(all, spans...)
	return newTombSet(all)
}

func (t *tombSet) numDocs() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

func (t *tombSet) numSents() int {
	if t == nil {
		return 0
	}
	return t.cumSents[len(t.spans)]
}

// contains reports whether raw global document doc is tombstoned.
func (t *tombSet) contains(doc int) bool {
	if t == nil {
		return false
	}
	i := sort.Search(len(t.spans), func(i int) bool { return t.spans[i].doc >= doc })
	return i < len(t.spans) && t.spans[i].doc == doc
}

// docsBefore counts tombstoned documents with raw index < doc — the shift a
// live document at raw index doc moves down by under masking.
func (t *tombSet) docsBefore(doc int) int {
	if t == nil {
		return 0
	}
	return sort.Search(len(t.spans), func(i int) bool { return t.spans[i].doc >= doc })
}

// sentsBefore sums the sentences of tombstoned documents whose ranges lie
// entirely before raw global sentence sid. A live sentence is never inside
// a tombstoned span, so this is the exact masking shift for sid.
func (t *tombSet) sentsBefore(sid int) int {
	if t == nil {
		return 0
	}
	i := sort.Search(len(t.spans), func(i int) bool { return t.spans[i].firstSID >= sid })
	return t.cumSents[i]
}

// rawDoc maps a masked document index back to its raw global index: the
// masked-th live document, skipping tombstoned ones.
func (t *tombSet) rawDoc(masked int) int {
	raw := masked
	if t == nil {
		return raw
	}
	for _, sp := range t.spans {
		if sp.doc <= raw {
			raw++
		} else {
			break
		}
	}
	return raw
}

// renumberTombs rebuilds the live tombstone set after a compaction folded
// the documents of cut away: spans that were folded vanish, and spans that
// arrived mid-rebuild (deletes racing the compaction) are renumbered into
// the new base's raw coordinates — every folded document before them moves
// them down.
func renumberTombs(cur, cut *tombSet) *tombSet {
	if cur.numDocs() == 0 {
		return nil
	}
	var out []docSpan
	for _, sp := range cur.spans {
		if cut.contains(sp.doc) {
			continue
		}
		out = append(out, docSpan{
			doc:      sp.doc - cut.docsBefore(sp.doc),
			firstSID: sp.firstSID - cut.sentsBefore(sp.firstSID),
			nSents:   sp.nSents,
		})
	}
	return newTombSet(out)
}
