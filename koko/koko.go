// Package koko is the public API of the KOKO reproduction: a declarative
// information-extraction engine over text (Wang et al., "Scalable Semantic
// Querying of Text", VLDB 2018).
//
// KOKO queries combine three kinds of conditions in one declarative
// language: regular-expression-style conditions on the surface text,
// XPath-like conditions on the dependency parse trees of sentences, and
// semantic-similarity conditions whose evidence is aggregated across a whole
// document. A minimal session:
//
//	c := koko.NewCorpus(nil, []string{"I ate a chocolate ice cream, which was delicious."})
//	eng := koko.NewEngine(c, nil)
//	res, err := eng.Query(`
//	    extract e:Entity, d:Str from input.txt if
//	    (/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))`)
//
// The engine indexes the corpus with the paper's multi-indexing scheme
// (word + entity inverted indices, parse-label and POS-tag hierarchy
// indices) and evaluates queries through the Normalize → DPLI → GSP →
// Aggregate pipeline.
package koko

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/embed"
	"repro/internal/koko/engine"
	"repro/internal/koko/index"
	"repro/internal/koko/index/blockstore"
	"repro/internal/koko/lang"
	"repro/internal/nlp"
	"repro/internal/store"
)

// Corpus is a parsed, sentence-id'd text corpus.
type Corpus struct {
	c *index.Corpus
}

// NewCorpus parses raw document texts into a corpus. names may be nil.
func NewCorpus(names []string, texts []string) *Corpus {
	return &Corpus{c: index.NewCorpus(names, texts)}
}

// WrapCorpus adopts an already-parsed internal corpus without re-running the
// NLP pipeline. It is the bridge the experiment harness and corpus
// generators use; regular callers should use NewCorpus.
func WrapCorpus(c *index.Corpus) *Corpus { return &Corpus{c: c} }

// NumDocuments returns the number of documents.
func (c *Corpus) NumDocuments() int { return c.c.NumDocs() }

// NumSentences returns the number of sentences.
func (c *Corpus) NumSentences() int { return c.c.NumSentences() }

// DocumentName returns the name of document i ("" if out of range).
func (c *Corpus) DocumentName(i int) string {
	if i < 0 || i >= len(c.c.Docs) {
		return ""
	}
	return c.c.Docs[i].Name
}

// Sentence renders sentence sid as text.
func (c *Corpus) Sentence(sid int) string { return c.c.Sentence(sid).String() }

// Options configures an Engine.
type Options struct {
	// Dicts supplies dictionaries for dict(...) conditions; values are
	// matched case-insensitively.
	Dicts map[string][]string
	// Ontology extends descriptor expansion with domain terms
	// ("coffee" -> cappuccino, macchiato, ...).
	Ontology map[string][]string
	// DisableSkipPlan turns off the GSP optimization (for ablations).
	DisableSkipPlan bool
	// ExpansionLimit bounds descriptor expansion (0 = default).
	ExpansionLimit int
	// Workers evaluates candidate documents concurrently when > 1; results
	// are deterministic regardless.
	Workers int
	// Explain attaches per-condition evidence to every tuple — the
	// debuggability the paper contrasts with opaque learned extractors.
	Explain bool
	// DisablePlan turns off the statistics-free query planner: conditions
	// evaluate in written order instead of selectivity order (the
	// differential baseline for the planner, and an ablation knob).
	DisablePlan bool
}

// Engine indexes a corpus and evaluates KOKO queries against it.
//
// An Engine is safe for concurrent use: Query and QueryWith may be called
// from multiple goroutines sharing one Engine (the cross-run regexp and
// score caches are internally synchronized). Save is also read-only with
// respect to query state.
type Engine struct {
	corpus *Corpus
	ix     *index.Index
	model  *embed.Model
	eng    *engine.Engine
	// optExplain / optWorkers / optNoPlan retain the Options defaults so
	// QueryWith can fall back to them per field.
	optExplain bool
	optWorkers int
	optNoPlan  bool
}

// Corpus returns the corpus the engine was built over.
func (e *Engine) Corpus() *Corpus { return e.corpus }

// NumDocuments returns the number of documents in the engine's corpus.
func (e *Engine) NumDocuments() int { return e.corpus.NumDocuments() }

// NumSentences returns the number of sentences in the engine's corpus.
func (e *Engine) NumSentences() int { return e.corpus.NumSentences() }

// DocumentName returns the name of document i ("" if out of range).
func (e *Engine) DocumentName(i int) string { return e.corpus.DocumentName(i) }

// NumShards reports 1: a plain Engine is a single shard. The method makes
// Engine and ShardedEngine interchangeable behind Querier.
func (e *Engine) NumShards() int { return 1 }

// ShardStats describes the engine as a one-shard set (shard 0 covering the
// whole corpus), mirroring ShardedEngine.ShardStats.
func (e *Engine) ShardStats() []ShardStat {
	return []ShardStat{{
		Shard:     0,
		Documents: e.corpus.NumDocuments(),
		Sentences: e.corpus.NumSentences(),
		Index:     e.Stats(),
	}}
}

// NewEngine builds the multi-index over the corpus and returns an engine.
// opts may be nil.
func NewEngine(c *Corpus, opts *Options) *Engine {
	if opts == nil {
		opts = &Options{}
	}
	model, dicts := deriveModelDicts(opts)
	return assembleEngine(c, index.Build(c.c), model, dicts, opts)
}

// deriveModelDicts materializes the similarity model and lowercased
// dictionaries an Options describes. Both are read-only once built, so one
// derivation can be shared across engines (the mutable layer reuses them
// for every sealed delta engine).
func deriveModelDicts(opts *Options) (*embed.Model, map[string]map[string]bool) {
	model := embed.NewModel()
	for term, rel := range opts.Ontology {
		model.AddOntology(term, rel)
	}
	dicts := map[string]map[string]bool{}
	for name, vals := range opts.Dicts {
		m := map[string]bool{}
		for _, v := range vals {
			m[strings.ToLower(v)] = true
		}
		dicts[name] = m
	}
	return model, dicts
}

// assembleEngine wires an already-built index and corpus into an Engine —
// the one constructor behind NewEngine, store loading, and sealed delta
// views.
func assembleEngine(c *Corpus, ix *index.Index, model *embed.Model, dicts map[string]map[string]bool, opts *Options) *Engine {
	e := &Engine{corpus: c, ix: ix, model: model,
		optExplain: opts.Explain, optWorkers: opts.Workers, optNoPlan: opts.DisablePlan}
	e.eng = engine.New(c.c, ix, model, engine.Options{
		DisableSkipPlan: opts.DisableSkipPlan,
		DisablePlan:     opts.DisablePlan,
		ExpansionLimit:  opts.ExpansionLimit,
		Dicts:           dicts,
		Workers:         opts.Workers,
		Explain:         opts.Explain,
	})
	return e
}

// Evidence is one row of an extraction explanation: a satisfying condition
// with its confidence, weight, and contribution to the final score.
type Evidence struct {
	Variable     string
	Condition    string
	Weight       float64
	Confidence   float64
	Contribution float64
}

// Tuple is one output row of a query.
type Tuple struct {
	// SentenceID is the corpus-global id of the sentence the extraction
	// came from; Document is the document index.
	SentenceID int
	Document   int
	// Values holds the output columns in declaration order.
	Values []string
	// Scores holds satisfying-clause scores per satisfying variable.
	Scores map[string]float64
	// Evidence explains the scores when Options.Explain is set.
	Evidence []Evidence
}

// PhaseTimes is the per-phase execution breakdown of a query (the paper's
// Table 2 columns, plus the planner's own phase).
type PhaseTimes struct {
	Normalize   time.Duration
	DPLI        time.Duration
	Plan        time.Duration
	LoadArticle time.Duration
	GSP         time.Duration
	Extract     time.Duration
	Satisfying  time.Duration
}

// PlanStep is one step of the planner's chosen evaluation order: the
// condition variable, its kind, the DPLI binding estimate that ranked it,
// and the actual candidate bindings observed during evaluation.
type PlanStep struct {
	Var       string `json:"var"`
	Kind      string `json:"kind"`
	Estimated int64  `json:"estimated"`
	Actual    int64  `json:"actual"`
}

// PlanInfo reports the statistics-free planner's decision for a query:
// the condition evaluation order (smallest estimated binding set first,
// respecting variable-binding dependencies) and whether that order differs
// from the written order.
type PlanInfo struct {
	Steps     []PlanStep `json:"steps"`
	Reordered bool       `json:"reordered"`
}

// Result is the outcome of a query.
type Result struct {
	Tuples []Tuple
	// Candidates / Matched report index pruning: how many sentences
	// survived the index lookup and how many produced extractions.
	Candidates int
	Matched    int
	// Elapsed is the total evaluation time.
	Elapsed time.Duration
	// Phases breaks Elapsed into the pipeline's phases. With Workers > 1
	// the per-document phases report summed CPU time across workers.
	Phases PhaseTimes
	// Plan reports the planner's chosen condition order and estimated vs
	// actual bindings. Nil when planning is disabled or the query
	// short-circuited before extraction.
	Plan *PlanInfo
}

// QueryOptions overrides per-query evaluation knobs; the zero value falls
// back to the engine's Options for each field.
type QueryOptions struct {
	// Explain attaches per-condition evidence to this query's tuples.
	Explain bool
	// Workers > 1 evaluates candidate documents concurrently for this query.
	Workers int
	// Plan overrides the engine's planner setting for this query:
	// "on" forces selectivity-ordered evaluation, "off" forces written
	// order, "" inherits the engine default.
	Plan string
	// Degraded lets an engine with failure domains (remote.Engine) answer
	// from whatever shards survive: a failed shard is skipped and reported
	// through TupleSeq.FailedShards instead of failing the query. Engines
	// whose shards cannot fail independently ignore it.
	Degraded bool
}

// ParsedQuery is a parsed, reusable KOKO query. Parsing once and running
// many times avoids re-parsing on hot paths (the server does this to share
// one parse between cache keying and evaluation).
type ParsedQuery struct {
	q     *lang.Query
	canon string
}

// ParseQuery parses a KOKO query without running it. The parsed AST is
// canonicalized (order-independent clauses sorted into a canonical order,
// see lang.Query.Canonicalize), so two queries differing only in the order
// of independent conditions parse to the same canonical text and evaluate
// identically — result caches keyed on Canonical() are plan-invariant.
func ParseQuery(src string) (*ParsedQuery, error) {
	q, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	q = q.Canonicalize()
	return &ParsedQuery{q: q, canon: q.String()}, nil
}

// Canonical returns the query's canonical rendering: two queries differing
// only in whitespace or formatting canonicalize identically.
func (p *ParsedQuery) Canonical() string { return p.canon }

// Query parses and evaluates a KOKO query with the engine's options.
func (e *Engine) Query(src string) (*Result, error) {
	return e.QueryWith(src, nil)
}

// QueryWith parses and evaluates a KOKO query with per-query overrides.
// qo may be nil (engine defaults).
//
// Deprecated: parse with ParseQuery and evaluate with Run (or its Collect
// for a buffered Result).
func (e *Engine) QueryWith(src string, qo *QueryOptions) (*Result, error) {
	p, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return e.RunParsed(p, qo)
}

// runOptions resolves per-query overrides against the engine's defaults —
// the one translation from the public QueryOptions to the internal run knobs.
func (e *Engine) runOptions(ctx context.Context, qo *QueryOptions) engine.RunOptions {
	ro := engine.RunOptions{Explain: e.optExplain, Workers: e.optWorkers, NoPlan: e.optNoPlan, Ctx: ctx}
	if qo != nil {
		if qo.Explain {
			ro.Explain = true
		}
		if qo.Workers > 0 {
			ro.Workers = qo.Workers
		}
		switch qo.Plan {
		case "on":
			ro.NoPlan = false
		case "off":
			ro.NoPlan = true
		}
	}
	return ro
}

// Run evaluates an already-parsed query as a lazy stream: tuples yield in
// document order as candidate documents are evaluated, followed by a single
// shard-0 end marker carrying the run's counters. A done ctx stops the
// evaluation between documents and surfaces through TupleSeq.Err. qo may be
// nil (engine defaults). Safe for concurrent use; each call returns an
// independent single-use stream.
func (e *Engine) Run(ctx context.Context, p *ParsedQuery, qo *QueryOptions) (*TupleSeq, error) {
	st, err := e.eng.Stream(p.q, e.runOptions(ctx, qo))
	if err != nil {
		return nil, err
	}
	seq := &TupleSeq{shards: 1}
	seq.produce = func(yield func(Event) bool) error {
		n := 0
		for batch := range st.Docs() {
			ts := tuplesFromEngine(batch)
			for k := range ts {
				if !yield(Event{Tuple: &ts[k]}) {
					return nil
				}
				n++
			}
		}
		if err := st.Err(); err != nil {
			return err
		}
		yield(Event{Shard: &ShardEnd{Shard: 0, Tuples: n, Summary: summaryFromEngine(st.Result())}})
		return nil
	}
	return seq, nil
}

// StreamShard evaluates one shard of the corpus, delivering tuples through
// emit in bounded batches (document order, global coordinates — a plain
// Engine is a single shard, so no rebasing applies) and returning the
// shard's counters-only summary. Each emitted slice is freshly allocated
// and owned by the receiver. An emit error stops the evaluation and is
// returned as-is.
func (e *Engine) StreamShard(ctx context.Context, shard int, p *ParsedQuery, qo *QueryOptions, emit func(tuples []Tuple) error) (*Result, error) {
	if shard != 0 {
		return nil, fmt.Errorf("koko: shard %d out of range (plain engine has 1 shard)", shard)
	}
	st, err := e.eng.Stream(p.q, e.runOptions(ctx, qo))
	if err != nil {
		return nil, err
	}
	var batch []Tuple
	limit := streamFirstBatchTuples
	for docTuples := range st.Docs() {
		batch = append(batch, tuplesFromEngine(docTuples)...)
		if len(batch) >= limit {
			if err := emit(batch); err != nil {
				return nil, err
			}
			batch = nil
			limit = streamBatchTuples
		}
	}
	if err := st.Err(); err != nil {
		return nil, err
	}
	if len(batch) > 0 {
		if err := emit(batch); err != nil {
			return nil, err
		}
	}
	return summaryFromEngine(st.Result()), nil
}

// RunParsed evaluates an already-parsed query with per-query overrides.
// qo may be nil (engine defaults). Safe for concurrent use.
//
// Deprecated: use Run and collect the stream (Run + TupleSeq.Collect is the
// buffered mode).
func (e *Engine) RunParsed(p *ParsedQuery, qo *QueryOptions) (*Result, error) {
	return e.RunParsedCtx(context.Background(), p, qo)
}

// RunParsedCtx evaluates like RunParsed but honors ctx: a done context stops
// the evaluation between documents and the call returns ctx.Err(). This is
// the cancellation point the server's jobs and streaming modes rely on — a
// deleted job or disconnected client stops consuming CPU mid-run.
//
// Deprecated: use Run and collect the stream with TupleSeq.Collect.
func (e *Engine) RunParsedCtx(ctx context.Context, p *ParsedQuery, qo *QueryOptions) (*Result, error) {
	seq, err := e.Run(ctx, p, qo)
	if err != nil {
		return nil, err
	}
	return seq.Collect()
}

// RunShard evaluates one shard of the corpus. A plain Engine is a single
// shard, so only shard 0 is valid and the returned Partial has zero offsets.
// The method makes Engine and ShardedEngine interchangeable for callers —
// like the server's job executor — that schedule work shard-at-a-time.
func (e *Engine) RunShard(ctx context.Context, shard int, p *ParsedQuery, qo *QueryOptions) (Partial, error) {
	if shard != 0 {
		return Partial{}, fmt.Errorf("koko: shard %d out of range (plain engine has 1 shard)", shard)
	}
	res, err := e.RunParsedCtx(ctx, p, qo)
	if err != nil {
		return Partial{}, err
	}
	return Partial{Res: res}, nil
}

// RunParsedEach evaluates the query and delivers the result as a single
// shard-0 Partial through each — the one-shard form of
// ShardedEngine.RunParsedEach, so streaming callers handle plain and sharded
// corpora identically.
//
// Deprecated: use Run; ShardEnd events mark the per-shard boundaries a
// Partial consumer regrouped on.
func (e *Engine) RunParsedEach(ctx context.Context, p *ParsedQuery, qo *QueryOptions, each func(shard int, part Partial) error) error {
	return runParsedEachVia(e, ctx, p, qo, each)
}

// summaryFromEngine converts the internal engine result's counters, phase
// times, and plan report to the public form — everything but the tuple
// table, which the streaming path has already delivered.
func summaryFromEngine(res *engine.Result) *Result {
	out := &Result{
		Candidates: res.CandidateSentences,
		Matched:    res.MatchedSentences,
		Elapsed:    res.Times.Total(),
		Phases: PhaseTimes{
			Normalize:   res.Times.Normalize,
			DPLI:        res.Times.DPLI,
			Plan:        res.Times.Plan,
			LoadArticle: res.Times.LoadArticle,
			GSP:         res.Times.GSP,
			Extract:     res.Times.Extract,
			Satisfying:  res.Times.Satisfying,
		},
	}
	if res.Plan != nil {
		pi := &PlanInfo{Reordered: res.Plan.Reordered, Steps: make([]PlanStep, len(res.Plan.Steps))}
		for i, st := range res.Plan.Steps {
			pi.Steps[i] = PlanStep{Var: st.Var, Kind: st.Kind, Estimated: st.Estimated, Actual: st.Actual}
		}
		out.Plan = pi
	}
	return out
}

// tuplesFromEngine converts a batch of internal engine tuples to the public
// form, preserving order.
func tuplesFromEngine(ts []engine.Tuple) []Tuple {
	if len(ts) == 0 {
		return nil
	}
	out := make([]Tuple, 0, len(ts))
	for _, t := range ts {
		tp := Tuple{
			SentenceID: t.Sid,
			Document:   t.Doc,
			Values:     t.Values,
			Scores:     t.Scores,
		}
		for _, ev := range t.Evidence {
			tp.Evidence = append(tp.Evidence, Evidence{
				Variable:     ev.Var,
				Condition:    ev.Condition,
				Weight:       ev.Weight,
				Confidence:   ev.Confidence,
				Contribution: ev.Contribution,
			})
		}
		out = append(out, tp)
	}
	return out
}

// Validate parses a query without running it, returning a descriptive error
// for malformed input.
func Validate(src string) error {
	_, err := lang.Parse(src)
	return err
}

// Canonical parses a query and renders it back in canonical form: two
// queries differing only in whitespace, comments, or clause formatting
// canonicalize identically. Result caches key on this text.
func Canonical(src string) (string, error) {
	p, err := ParseQuery(src)
	if err != nil {
		return "", err
	}
	return p.Canonical(), nil
}

// IndexStats summarizes the built multi-index.
type IndexStats struct {
	Words          int
	Entities       int
	PLNodes        int
	POSNodes       int
	PLCompression  float64 // fraction of tree nodes merged away
	POSCompression float64
}

// Stats reports index shape.
func (e *Engine) Stats() IndexStats {
	st := e.ix.Stats()
	return IndexStats{
		Words: st.Words, Entities: st.Entities,
		PLNodes: st.PLNodes, POSNodes: st.POSNodes,
		PLCompression: st.PLCompression, POSCompression: st.POSCompression,
	}
}

// StoreFormat selects the on-disk layout used by SaveAs. Both formats hold
// the same corpus and indices and auto-detect on Load/Open, so a store can
// be rewritten in either direction by a Load + SaveAs round trip.
type StoreFormat int

const (
	// FormatRow is the original KOKODB1 table store: simple, decoded in
	// full at load time.
	FormatRow StoreFormat = iota
	// FormatBlock is the KOKOBS1 block store: posting lists laid out as
	// sorted fixed-size blocks, mmap'd at load time and decoded lazily
	// into a budgeted shared cache. Use it when the corpus may exceed RAM.
	FormatBlock
)

// String names the format as recorded in shard manifests.
func (f StoreFormat) String() string {
	if f == FormatBlock {
		return index.FormatNameBlock
	}
	return index.FormatNameRow
}

// Save persists the parsed corpus and all indices to path (the paper's
// offline index construction; see Load) in the row format.
func (e *Engine) Save(path string) error {
	return e.SaveAs(path, FormatRow)
}

// SaveAs persists the engine to path in the chosen store format. A
// block-backed engine (one opened from a block store) has no heap-resident
// posting lists; both paths rebuild the index from the corpus in that case,
// so SaveAs also converts between formats.
func (e *Engine) SaveAs(path string, format StoreFormat) error {
	ix := e.ix
	if ix.Source() != nil {
		ix = index.Build(e.corpus.c)
	}
	if format == FormatBlock {
		return blockstore.Write(path, e.corpus.c, ix)
	}
	db := store.NewDB()
	if err := e.corpus.c.SaveParsed(db); err != nil {
		return err
	}
	if err := ix.Save(db); err != nil {
		return err
	}
	return db.Save(path)
}

// Load reopens an engine from a file written by Engine.Save or SaveAs (the
// store format is auto-detected from the file magic). For a file that may be
// either a plain store or a sharded manifest, use Open.
func Load(path string, opts *Options) (*Engine, error) {
	if blockstore.IsBlockStore(path) {
		return loadBlockEngine(path, opts)
	}
	db, err := store.Load(path)
	if err != nil {
		return nil, err
	}
	if index.IsShardManifest(db) {
		return nil, fmt.Errorf("koko: %s is a sharded store manifest; use Open or LoadSharded", path)
	}
	return engineFromDB(db, opts)
}

// loadBlockEngine opens a KOKOBS1 block store: the corpus is decoded into
// memory (query evaluation walks sentences freely) but posting lists stay on
// disk behind the mmap reader, decoded block-by-block into the shared cache
// as queries touch them.
func loadBlockEngine(path string, opts *Options) (*Engine, error) {
	r, err := blockstore.Open(path)
	if err != nil {
		return nil, err
	}
	if opts == nil {
		opts = &Options{}
	}
	model, dicts := deriveModelDicts(opts)
	return assembleEngine(&Corpus{c: r.Corpus()}, r.NewIndex(), model, dicts, opts), nil
}

// Open reopens any persisted store: a plain .koko file yields an *Engine, a
// sharded manifest (written by ShardedEngine.Save) yields a *ShardedEngine.
func Open(path string, opts *Options) (Querier, error) {
	return OpenWithShards(path, opts, 1)
}

// OpenWithShards reopens a persisted store like Open but, for k > 1,
// re-partitions a plain store into k doc-range shards. Only the parsed
// corpus is read in that case — the plain store's single index is never
// assembled just to be thrown away; the per-shard indices are built
// directly. A sharded manifest keeps its on-disk shard count regardless
// of k.
func OpenWithShards(path string, opts *Options, k int) (Querier, error) {
	if blockstore.IsBlockStore(path) {
		if k > 1 {
			// Re-sharding rebuilds per-shard indices from the corpus, so
			// only the corpus is needed; close the reader immediately
			// (decoded corpus strings are heap-owned, not mmap-backed).
			r, err := blockstore.Open(path)
			if err != nil {
				return nil, err
			}
			c := r.Corpus()
			r.Close()
			return NewShardedEngine(&Corpus{c: c}, k, opts), nil
		}
		return loadBlockEngine(path, opts)
	}
	db, err := store.Load(path)
	if err != nil {
		return nil, err
	}
	if index.IsShardManifest(db) {
		return loadShardedFromDB(db, path, opts)
	}
	if k > 1 {
		c, err := loadCorpus(db)
		if err != nil {
			return nil, err
		}
		return NewShardedEngine(&Corpus{c: c}, k, opts), nil
	}
	return engineFromDB(db, opts)
}

// engineFromDB assembles an Engine from an in-memory store image.
func engineFromDB(db *store.DB, opts *Options) (*Engine, error) {
	ix, err := index.LoadIndex(db)
	if err != nil {
		return nil, err
	}
	c, err := loadCorpus(db)
	if err != nil {
		return nil, err
	}
	if opts == nil {
		opts = &Options{}
	}
	model, dicts := deriveModelDicts(opts)
	return assembleEngine(&Corpus{c: c}, ix, model, dicts, opts), nil
}

func loadCorpus(db *store.DB) (*index.Corpus, error) {
	d := db.Table("D")
	if d == nil {
		return nil, fmt.Errorf("koko: corpus tables missing")
	}
	c := &index.Corpus{}
	var fail error
	d.Scan(func(rid int, row []store.Value) bool {
		name := row[0].S
		first, nsents := int(row[1].I), int(row[2].I)
		sents := make([]nlp.Sentence, 0, nsents)
		for sid := first; sid < first+nsents; sid++ {
			s, err := index.LoadSentence(db, sid)
			if err != nil {
				fail = err
				return false
			}
			sents = append(sents, *s)
		}
		c.AppendDoc(name, sents)
		return true
	})
	if fail != nil {
		return nil, fail
	}
	return c, nil
}
