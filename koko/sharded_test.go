package koko

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/corpus"
)

// The differential suite: for every corpus generator and every shard count,
// ShardedEngine must produce byte-identical results to a single Engine over
// the unpartitioned corpus — tuples, values, scores, evidence, and global
// document/sentence attribution — with Workers > 1 inside every shard (so
// `go test -race` also exercises the nested parallelism).

var diffShardCounts = []int{1, 2, 3, 7}

type diffCase struct {
	name    string
	corpus  func() *Corpus
	queries []string
}

func diffCases() []diffCase {
	return []diffCase{
		{
			name:   "cafes",
			corpus: func() *Corpus { return WrapCorpus(corpus.GenCafes(corpus.BaristaMagConfig(11)).Corpus) },
			queries: []string{
				`extract x:Entity from "blogs" if ()
				 satisfying x
				 (str(x) contains "Cafe" {0.6}) or
				 (x [["serves coffee"]] {0.3}) or
				 (x [["hired barista"]] {0.3})
				 with threshold 0.5
				 excluding (str(x) matches "[a-z 0-9.]+")`,
				`extract x:Entity from "blogs" if () satisfying x (x near "espresso" {1}) with threshold 0.4`,
			},
		},
		{
			name:   "tweets",
			corpus: func() *Corpus { return WrapCorpus(corpus.GenWNUT(corpus.WNUTConfig{Tweets: 150, Seed: 7}).Corpus) },
			queries: []string{
				`extract x:Entity from "tweets" if ()
				 satisfying x
				 (x "vs" {0.9}) or ("vs" x {0.9}) or ("go" x {0.9})
				 with threshold 0.5`,
				`extract x:Entity from "tweets" if ()
				 satisfying x ("at" x {1}) with threshold 0.5
				 excluding (str(x) contains "pm")`,
			},
		},
		{
			name:   "happydb",
			corpus: func() *Corpus { return WrapCorpus(corpus.GenHappyDB(300, 3)) },
			queries: []string{
				`extract e:Entity, d:Str from "moments" if
				 (/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))`,
				`extract x:Str from "moments" if
				 (/ROOT:{ a = //"ate", b = a/dobj, x = (b.subtree) } (b) eq (b))`,
				`extract o:Str from "moments" if (
				 /ROOT:{ v = //verb, b = v/dobj, o = (b.subtree) })
				 satisfying o ("ate" o {0.7}) or (o near "delicious" {1}) with threshold 0.2`,
			},
		},
	}
}

func mustRun(t *testing.T, q Querier, src string, qo *QueryOptions) *Result {
	t.Helper()
	res, err := q.QueryWith(src, qo)
	if err != nil {
		t.Fatalf("query failed: %v\n%s", err, src)
	}
	return res
}

// sameResults compares everything except timing.
func sameResults(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if want.Candidates != got.Candidates || want.Matched != got.Matched {
		t.Errorf("%s: candidates/matched = %d/%d, want %d/%d",
			label, got.Candidates, got.Matched, want.Candidates, want.Matched)
	}
	if len(want.Tuples) != len(got.Tuples) {
		t.Fatalf("%s: %d tuples, want %d", label, len(got.Tuples), len(want.Tuples))
	}
	for i := range want.Tuples {
		if !reflect.DeepEqual(want.Tuples[i], got.Tuples[i]) {
			t.Fatalf("%s: tuple %d differs:\n got %+v\nwant %+v", label, i, got.Tuples[i], want.Tuples[i])
		}
	}
}

// TestShardedDifferential: K ∈ {1,2,3,7} shards over three generators, each
// query run plain and with Explain, per-shard Workers=2.
func TestShardedDifferential(t *testing.T) {
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.corpus()
			ref := NewEngine(c, nil)
			refTuples := 0
			for _, src := range tc.queries {
				refTuples += len(mustRun(t, ref, src, nil).Tuples)
			}
			if refTuples == 0 {
				t.Fatal("workload produces no tuples; differential test is vacuous")
			}
			for _, k := range diffShardCounts {
				sharded := NewShardedEngine(c, k, nil)
				if k <= c.NumDocuments() && sharded.NumShards() != k {
					t.Fatalf("k=%d: got %d shards", k, sharded.NumShards())
				}
				if sharded.NumDocuments() != c.NumDocuments() || sharded.NumSentences() != c.NumSentences() {
					t.Fatalf("k=%d: sharded corpus %d docs/%d sents, want %d/%d", k,
						sharded.NumDocuments(), sharded.NumSentences(), c.NumDocuments(), c.NumSentences())
				}
				for qi, src := range tc.queries {
					for _, explain := range []bool{false, true} {
						qo := &QueryOptions{Workers: 2, Explain: explain}
						label := fmt.Sprintf("k=%d q=%d explain=%t", k, qi, explain)
						sameResults(t, label, mustRun(t, ref, src, qo), mustRun(t, sharded, src, qo))
					}
				}
			}
		})
	}
}

// TestShardedDocumentAttribution: rebased tuple document ids must resolve
// to the same document names the single engine reports, and DocumentName
// must agree across the whole doc space.
func TestShardedDocumentAttribution(t *testing.T) {
	c := WrapCorpus(corpus.GenHappyDB(120, 5))
	ref := NewEngine(c, nil)
	sharded := NewShardedEngine(c, 3, nil)
	for d := -1; d <= c.NumDocuments(); d++ {
		if got, want := sharded.DocumentName(d), c.DocumentName(d); got != want {
			t.Fatalf("DocumentName(%d) = %q, want %q", d, got, want)
		}
	}
	src := `extract x:Str from "moments" if (/ROOT:{ a = //"ate", b = a/dobj, x = (b.subtree) })`
	want := mustRun(t, ref, src, nil)
	got := mustRun(t, sharded, src, nil)
	if len(want.Tuples) == 0 {
		t.Fatal("workload produced no tuples")
	}
	for i := range want.Tuples {
		if want.Tuples[i].Document != got.Tuples[i].Document ||
			want.Tuples[i].SentenceID != got.Tuples[i].SentenceID {
			t.Fatalf("tuple %d attribution: got doc=%d sid=%d, want doc=%d sid=%d",
				i, got.Tuples[i].Document, got.Tuples[i].SentenceID,
				want.Tuples[i].Document, want.Tuples[i].SentenceID)
		}
	}
}

// TestShardedSaveLoadRoundtrip: Save writes a manifest + per-shard stores;
// LoadSharded and Open both reopen the set and reproduce the in-memory
// sharded engine's results exactly.
func TestShardedSaveLoadRoundtrip(t *testing.T) {
	texts := []string{
		"Anna ate some delicious cheesecake that she bought at a grocery store.",
		"I ate a chocolate ice cream, which was delicious, and also ate a pie.",
		"Cafe Vita serves smooth espresso daily. The barista pulled a perfect shot.",
		"Cafe Umbria opened a second location near the waterfront park.",
	}
	c := NewCorpus(nil, texts)
	mem := NewShardedEngine(c, 2, nil)
	if mem.NumShards() != 2 {
		t.Fatalf("shards = %d", mem.NumShards())
	}
	path := filepath.Join(t.TempDir(), "corpus.koko")
	if err := mem.Save(path); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadSharded(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := opened.(*ShardedEngine); !ok {
		t.Fatalf("Open returned %T, want *ShardedEngine", opened)
	}
	// Load on a manifest must refuse with a helpful error.
	if _, err := Load(path, nil); err == nil {
		t.Fatal("Load accepted a sharded manifest")
	}

	src := `extract x:Str from f if (/ROOT:{ x = //verb/dobj })`
	want := mustRun(t, mem, src, nil)
	for _, q := range []Querier{loaded, opened} {
		got := mustRun(t, q, src, nil)
		sameResults(t, "roundtrip", want, got)
	}
	if loaded.NumShards() != 2 || loaded.NumDocuments() != len(texts) {
		t.Fatalf("loaded shape: %d shards, %d docs", loaded.NumShards(), loaded.NumDocuments())
	}

	// Open on a plain store still yields a plain engine.
	plainPath := filepath.Join(t.TempDir(), "plain.koko")
	if err := NewEngine(c, nil).Save(plainPath); err != nil {
		t.Fatal(err)
	}
	q, err := Open(plainPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.(*Engine); !ok {
		t.Fatalf("Open(plain) returned %T, want *Engine", q)
	}
}

// TestShardedLoadMismatch: a shard file whose shape disagrees with the
// manifest spec is refused at load — accepting it would silently rebase
// tuples onto the wrong global document/sentence ids.
func TestShardedLoadMismatch(t *testing.T) {
	dir := t.TempDir()
	c := NewCorpus(nil, []string{
		"Cafe Vita serves espresso.", "Cafe Umbria opened.", "Cafe Ladro debuts.",
	})
	path := filepath.Join(dir, "a.koko")
	if err := NewShardedEngine(c, 2, nil).Save(path); err != nil {
		t.Fatal(err)
	}
	// Swap shard 1 for a store of a different shape (stale file scenario).
	other := NewEngine(NewCorpus(nil, []string{"One thing. Two things. Three things. Four things."}), nil)
	if err := other.Save(path + ".shard1"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSharded(path, nil); err == nil {
		t.Fatal("mismatched shard file accepted")
	}
}

// TestShardedStats: merged stats sum per-shard sizes and ShardStats lines
// up with the specs.
func TestShardedStats(t *testing.T) {
	c := WrapCorpus(corpus.GenHappyDB(60, 9))
	e := NewShardedEngine(c, 3, nil)
	ss := e.ShardStats()
	if len(ss) != e.NumShards() {
		t.Fatalf("ShardStats len %d, shards %d", len(ss), e.NumShards())
	}
	docs, sents, words := 0, 0, 0
	for i, s := range ss {
		if s.Shard != i {
			t.Errorf("shard stat %d has Shard=%d", i, s.Shard)
		}
		if s.Documents == 0 || s.Sentences == 0 || s.Index.Words == 0 {
			t.Errorf("shard %d stats empty: %+v", i, s)
		}
		docs += s.Documents
		sents += s.Sentences
		words += s.Index.Words
	}
	if docs != c.NumDocuments() || sents != c.NumSentences() {
		t.Errorf("shard stats cover %d docs/%d sents, want %d/%d", docs, sents, c.NumDocuments(), c.NumSentences())
	}
	if got := e.Stats(); got.Words != words {
		t.Errorf("merged Words = %d, want per-shard sum %d", got.Words, words)
	}
	// A plain engine's ShardStats is a one-element view of itself.
	plain := NewEngine(c, nil)
	ps := plain.ShardStats()
	if len(ps) != 1 || ps[0].Documents != c.NumDocuments() || ps[0].Index.Words != plain.Stats().Words {
		t.Errorf("plain ShardStats = %+v", ps)
	}
}

// TestShardedConcurrentQueries: one ShardedEngine shared by goroutines with
// mixed options must stay deterministic (run under -race).
func TestShardedConcurrentQueries(t *testing.T) {
	c := WrapCorpus(corpus.GenHappyDB(150, 13))
	e := NewShardedEngine(c, 4, nil)
	src := `extract o:Str from "moments" if (
		/ROOT:{ v = //verb, b = v/dobj, o = (b.subtree) })
		satisfying o ("ate" o {0.7}) or (o near "delicious" {1}) with threshold 0.2`
	want := mustRun(t, e, src, nil)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 4; i++ {
				res, err := e.QueryWith(src, &QueryOptions{Workers: 1 + g%3})
				if err != nil {
					done <- err
					return
				}
				if len(res.Tuples) != len(want.Tuples) {
					done <- fmt.Errorf("goroutine %d: %d tuples, want %d", g, len(res.Tuples), len(want.Tuples))
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedQueryError: a parse-stage failure inside the shards propagates
// as one error, not a panic or partial result.
func TestShardedQueryError(t *testing.T) {
	c := NewCorpus(nil, []string{"Cafe Vita serves espresso.", "Cafe Umbria opened."})
	e := NewShardedEngine(c, 2, nil)
	if _, err := e.Query(`select * from nope`); err == nil {
		t.Fatal("malformed query accepted")
	}
}
