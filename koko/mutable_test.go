package koko

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/koko/index"
	"repro/internal/nlp"
)

// The ingestion differential suite: a mutable corpus built by ingesting
// documents one at a time — before and after compaction — must produce
// query results byte-identical to an engine rebuilt from scratch over the
// same documents, across the three corpus generators and K ∈ {1, 3} base
// shards, with queries racing ingestion and compaction under -race.

// prefixCorpus materializes documents [0, n) of c as a standalone corpus.
func prefixCorpus(c *Corpus, n int) *Corpus {
	out := &index.Corpus{}
	out.AppendDocsFrom(c.c, 0, n)
	return &Corpus{c: out}
}

// docSents copies document d's sentences out of c for re-ingestion.
func docSents(c *Corpus, d int) (string, []nlp.Sentence) {
	first, end := c.c.DocSentences(d)
	sents := make([]nlp.Sentence, end-first)
	copy(sents, c.c.Sentences[first:end])
	return c.c.Docs[d].Name, sents
}

func baseEngine(c *Corpus, k int) Querier {
	if k > 1 {
		return NewShardedEngine(c, k, nil)
	}
	return NewEngine(c, nil)
}

// TestMutableIngestDifferential: for every generator and K, start from a
// base over the first half of the documents, ingest the rest one at a time
// (holding the last one back until after compaction), and compare against
// from-scratch engines at every lifecycle stage: live delta, compacted
// base, and post-compaction delta.
func TestMutableIngestDifferential(t *testing.T) {
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			full := tc.corpus()
			nd := full.NumDocuments()
			if nd < 4 {
				t.Fatalf("generator yields only %d docs", nd)
			}
			ref := NewEngine(full, nil)
			refButLast := NewEngine(prefixCorpus(full, nd-1), nil)
			half := nd / 2
			for _, k := range []int{1, 3} {
				mut := NewMutable(baseEngine(prefixCorpus(full, half), k), nil)

				// Ingest all but the last document one at a time.
				for d := half; d < nd-1; d++ {
					name, sents := docSents(full, d)
					if _, err := mut.AddParsedDocument(name, sents); err != nil {
						t.Fatalf("k=%d ingest doc %d: %v", k, d, err)
					}
				}
				snap := mut.Snapshot()
				if snap.NumDocuments() != nd-1 || snap.DeltaDocs() != nd-1-half {
					t.Fatalf("k=%d snapshot shape docs=%d delta=%d", k, snap.NumDocuments(), snap.DeltaDocs())
				}
				for qi, src := range tc.queries {
					for _, explain := range []bool{false, true} {
						qo := &QueryOptions{Workers: 2, Explain: explain}
						label := fmt.Sprintf("k=%d live-delta q=%d explain=%t", k, qi, explain)
						sameResults(t, label, mustRun(t, refButLast, src, qo), mustRun(t, snap, src, qo))
					}
				}

				// Compact: the delta folds into re-partitioned base shards.
				st, err := mut.Compact()
				if err != nil {
					t.Fatalf("k=%d compact: %v", k, err)
				}
				if st.Docs != nd-1-half {
					t.Fatalf("k=%d compacted %d docs, want %d", k, st.Docs, nd-1-half)
				}
				snap = mut.Snapshot()
				if snap.DeltaDocs() != 0 {
					t.Fatalf("k=%d delta not empty after compact: %d", k, snap.DeltaDocs())
				}
				if k <= snap.NumDocuments() && snap.NumShards() != k {
					t.Fatalf("k=%d compacted into %d shards", k, snap.NumShards())
				}
				for qi, src := range tc.queries {
					qo := &QueryOptions{Workers: 2, Explain: true}
					label := fmt.Sprintf("k=%d compacted q=%d", k, qi)
					sameResults(t, label, mustRun(t, refButLast, src, qo), mustRun(t, snap, src, qo))
				}

				// Ingest the held-back document into the fresh delta.
				name, sents := docSents(full, nd-1)
				if _, err := mut.AddParsedDocument(name, sents); err != nil {
					t.Fatalf("k=%d ingest last doc: %v", k, err)
				}
				snap = mut.Snapshot()
				if snap.NumDocuments() != nd || snap.DeltaDocs() != 1 {
					t.Fatalf("k=%d post-compact snapshot docs=%d delta=%d", k, snap.NumDocuments(), snap.DeltaDocs())
				}
				for qi, src := range tc.queries {
					qo := &QueryOptions{Workers: 2, Explain: true}
					label := fmt.Sprintf("k=%d post-compact-delta q=%d", k, qi)
					sameResults(t, label, mustRun(t, ref, src, qo), mustRun(t, snap, src, qo))
				}

				// Shard-at-a-time execution (the job executor's path): the
				// merged RunShard prefix equals the whole-query result.
				p, err := ParseQuery(tc.queries[0])
				if err != nil {
					t.Fatal(err)
				}
				parts := make([]Partial, 0, snap.NumShards())
				for si := 0; si < snap.NumShards(); si++ {
					part, err := snap.RunShard(context.Background(), si, p, nil)
					if err != nil {
						t.Fatalf("k=%d RunShard(%d): %v", k, si, err)
					}
					parts = append(parts, part)
				}
				sameResults(t, fmt.Sprintf("k=%d shard-merge", k),
					mustRun(t, ref, tc.queries[0], nil), MergePartials(parts))
			}
		})
	}
}

// TestMutableSnapshotPinning: a snapshot resolved before an ingest is
// permanently pinned to the corpus state it saw — the semantics that let a
// running job survive any number of ingests, compactions, and reloads.
func TestMutableSnapshotPinning(t *testing.T) {
	full := WrapCorpus(corpus.GenHappyDB(120, 3))
	nd := full.NumDocuments()
	src := `extract x:Str from "moments" if
		(/ROOT:{ a = //"ate", b = a/dobj, x = (b.subtree) } (b) eq (b))`

	mut := NewMutable(baseEngine(prefixCorpus(full, nd-2), 2), nil)
	pinned := mut.Snapshot()
	want := mustRun(t, pinned, src, nil)

	for d := nd - 2; d < nd; d++ {
		name, sents := docSents(full, d)
		if _, err := mut.AddParsedDocument(name, sents); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mut.Compact(); err != nil {
		t.Fatal(err)
	}
	// The pinned snapshot still answers from the pre-ingest corpus.
	sameResults(t, "pinned", want, mustRun(t, pinned, src, nil))
	if pinned.NumDocuments() != nd-2 {
		t.Fatalf("pinned snapshot grew to %d docs", pinned.NumDocuments())
	}
	// A fresh snapshot sees everything.
	cur := mut.Snapshot()
	if cur.NumDocuments() != nd {
		t.Fatalf("current snapshot has %d docs, want %d", cur.NumDocuments(), nd)
	}
	sameResults(t, "current", mustRun(t, NewEngine(full, nil), src, nil), mustRun(t, cur, src, nil))
}

// TestMutableConcurrentIngestCompactQuery: queries proceed on their
// snapshots while ingestion and compaction run concurrently (-race is the
// point). Each reader verifies its own snapshot is internally deterministic
// and its document count matches one of the states the writer produced.
func TestMutableConcurrentIngestCompactQuery(t *testing.T) {
	full := WrapCorpus(corpus.GenHappyDB(100, 7))
	nd := full.NumDocuments()
	half := nd / 2
	src := `extract o:Str from "moments" if (
		/ROOT:{ v = //verb, b = v/dobj, o = (b.subtree) })
		satisfying o ("ate" o {0.7}) or (o near "delicious" {1}) with threshold 0.2`

	mut := NewMutable(baseEngine(prefixCorpus(full, half), 2), nil)
	var wg sync.WaitGroup
	ingestDone := make(chan struct{})
	wg.Add(1)
	go func() { // ingester
		defer wg.Done()
		defer close(ingestDone)
		for d := half; d < nd; d++ {
			name, sents := docSents(full, d)
			if _, err := mut.AddParsedDocument(name, sents); err != nil {
				panic(err)
			}
		}
	}()
	wg.Add(1)
	go func() { // compactor races the ingester
		defer wg.Done()
		for {
			select {
			case <-ingestDone:
				return
			default:
			}
			if _, err := mut.Compact(); err != nil {
				panic(err)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() { // readers
			defer wg.Done()
			for {
				select {
				case <-ingestDone:
					return
				default:
				}
				snap := mut.Snapshot()
				a := mustRun(t, snap, src, &QueryOptions{Workers: 2})
				b := mustRun(t, snap, src, &QueryOptions{Workers: 2})
				if len(a.Tuples) != len(b.Tuples) {
					panic(fmt.Sprintf("snapshot nondeterministic: %d vs %d tuples", len(a.Tuples), len(b.Tuples)))
				}
				if n := snap.NumDocuments(); n < half || n > nd {
					panic(fmt.Sprintf("snapshot has %d docs outside [%d, %d]", n, half, nd))
				}
			}
		}()
	}
	wg.Wait()

	// Quiesced: one final compact, then the differential must hold exactly.
	if _, err := mut.Compact(); err != nil {
		t.Fatal(err)
	}
	snap := mut.Snapshot()
	if snap.NumDocuments() != nd || snap.DeltaDocs() != 0 {
		t.Fatalf("final snapshot docs=%d delta=%d", snap.NumDocuments(), snap.DeltaDocs())
	}
	sameResults(t, "final", mustRun(t, NewEngine(full, nil), src, nil), mustRun(t, snap, src, nil))
}

// TestMutableDocumentNames: global document attribution spans base and
// delta seamlessly.
func TestMutableDocumentNames(t *testing.T) {
	full := WrapCorpus(corpus.GenHappyDB(40, 11))
	nd := full.NumDocuments()
	mut := NewMutable(baseEngine(prefixCorpus(full, nd-2), 2), nil)
	for d := nd - 2; d < nd; d++ {
		name, sents := docSents(full, d)
		if _, err := mut.AddParsedDocument(name, sents); err != nil {
			t.Fatal(err)
		}
	}
	snap := mut.Snapshot()
	for d := -1; d <= nd; d++ {
		if got, want := snap.DocumentName(d), full.DocumentName(d); got != want {
			t.Fatalf("DocumentName(%d) = %q, want %q", d, got, want)
		}
	}
	if snap.NumSentences() != full.NumSentences() {
		t.Fatalf("snapshot sentences %d, want %d", snap.NumSentences(), full.NumSentences())
	}
	ss := snap.ShardStats()
	last := ss[len(ss)-1]
	if !last.Delta || last.Documents != 2 {
		t.Fatalf("last shard stat should be the 2-doc delta: %+v", last)
	}
}

// TestMutableEmptyDocument: unparseable input is refused with the
// sentinel, and an unnamed document gets the positional default.
func TestMutableEmptyDocument(t *testing.T) {
	mut := NewMutable(NewEngine(NewCorpus(nil, []string{"Cafe Vita serves espresso."}), nil), nil)
	if _, err := mut.AddDocument("empty.txt", ""); !errors.Is(err, ErrEmptyDocument) {
		t.Fatalf("err = %v, want ErrEmptyDocument", err)
	}
	snap, err := mut.AddDocument("", "Cafe Umbria opened a second location.")
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.DocumentName(1); got != "doc1" {
		t.Fatalf("default name = %q, want doc1", got)
	}
}

// TestMutableSnapshotSave: a snapshot with live delta documents refuses to
// persist; after compaction it saves and round-trips.
func TestMutableSnapshotSave(t *testing.T) {
	mut := NewMutable(NewEngine(NewCorpus(nil, []string{"Cafe Vita serves espresso daily."}), nil), nil)
	if _, err := mut.AddDocument("new.txt", "Cafe Umbria opened a second location."); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mut.koko")
	if err := mut.Snapshot().Save(path); err == nil {
		t.Fatal("snapshot with delta docs saved")
	}
	if _, err := mut.Compact(); err != nil {
		t.Fatal(err)
	}
	snap := mut.Snapshot()
	if err := snap.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := `extract x:Entity from "blogs" if () satisfying x (str(x) contains "Cafe" {1.0}) with threshold 0.5`
	sameResults(t, "roundtrip", mustRun(t, snap, src, nil), mustRun(t, loaded, src, nil))
}
