package koko

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/embed"
	"repro/internal/koko/index"
	"repro/internal/nlp"
)

// ErrEmptyDocument marks an ingested document that parses to no sentences.
var ErrEmptyDocument = errors.New("koko: document has no sentences")

// Mutable turns an immutable base engine into a live corpus: documents are
// ingested one at a time into a small delta index (LSM-style) while every
// query evaluates against an immutable Snapshot of (base shards + sealed
// delta). Writers never block readers: ingestion appends to the delta and
// seals a new snapshot; a compaction folds the sealed delta into the base
// by re-partitioning the combined corpus, with only two brief critical
// sections around the (slow) shard rebuild. After any sequence of
// single-document ingests — before or after compaction — query results are
// byte-identical to an engine rebuilt from scratch over the same documents.
//
// All methods are safe for concurrent use. Writers (AddDocument, Compact)
// serialize against each other; readers hold whatever Snapshot they
// resolved and are never invalidated.
type Mutable struct {
	opts  *Options
	model *embed.Model
	dicts map[string]map[string]bool

	// compactMu serializes compactions (held across the whole rebuild);
	// mu guards the fields below and is held only for short sections.
	compactMu sync.Mutex
	mu        sync.Mutex
	base      Querier
	delta     *index.Delta
	cur       *Snapshot
	seq       uint64
	// compactShards is the target shard count compaction re-partitions
	// into (defaults to the base's shard count at wrap time).
	compactShards int
	// shardParallel, when > 0, bounds the per-query shard fan-out applied
	// to rebuilt sharded bases (mirrors Registry.SetShardParallelism).
	shardParallel int
	ingests       uint64
	compactions   uint64
}

// NewMutable wraps base (an Engine or ShardedEngine, typically fresh from
// NewEngine/Open) as a mutable corpus with an empty delta. opts may be nil
// and should match the options base was built with — sealed delta engines
// are built from it.
func NewMutable(base Querier, opts *Options) *Mutable {
	if opts == nil {
		opts = &Options{}
	}
	model, dicts := deriveModelDicts(opts)
	m := &Mutable{
		opts:          opts,
		model:         model,
		dicts:         dicts,
		base:          base,
		delta:         index.NewDelta(),
		compactShards: base.NumShards(),
	}
	m.mu.Lock()
	m.sealLocked()
	m.mu.Unlock()
	return m
}

// SetCompactShards overrides how many doc-range shards a compaction
// re-partitions the merged corpus into (the default is the base's shard
// count when the Mutable was created). k <= 1 compacts to a single plain
// engine.
func (m *Mutable) SetCompactShards(k int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if k < 1 {
		k = 1
	}
	m.compactShards = k
}

// SetShardParallelism bounds the per-query shard fan-out applied to every
// sharded base a compaction rebuilds (n <= 0 leaves the engine default).
// The current base is retuned immediately as well.
func (m *Mutable) SetShardParallelism(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shardParallel = n
	if se, ok := m.base.(*ShardedEngine); ok && n > 0 {
		se.SetParallelism(n)
	}
}

// Snapshot returns the current immutable read view. The returned value
// never changes under the caller; later ingests and compactions install new
// snapshots without touching ones already handed out — this is what pins a
// running job or streaming query to the corpus state it started on.
func (m *Mutable) Snapshot() *Snapshot {
	s, _ := m.Current()
	return s
}

// Current returns the current snapshot and its seal sequence number. The
// sequence increases with every installed snapshot, so callers mirroring
// the snapshot elsewhere (the server registry) can discard stale installs.
func (m *Mutable) Current() (*Snapshot, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur, m.seq
}

// DeltaDocs reports how many ingested documents await compaction.
func (m *Mutable) DeltaDocs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delta.NumDocs()
}

// Ingests reports the lifetime count of ingested documents.
func (m *Mutable) Ingests() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ingests
}

// Compactions reports the lifetime count of completed compactions.
func (m *Mutable) Compactions() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.compactions
}

// AddDocument parses text with the NLP pipeline and appends it to the
// delta, sealing a new snapshot in which the document is visible as the
// corpus's last document. Concurrent queries on earlier snapshots are
// untouched.
func (m *Mutable) AddDocument(name, text string) (*Snapshot, error) {
	doc := nlp.NewPipeline().Annotate(0, name, text, 0)
	return m.AddParsedDocument(name, doc.Sentences)
}

// AddParsedDocument ingests an already-parsed document (the bridge corpus
// generators and differential tests use, mirroring WrapCorpus). An empty
// name defaults positionally to "doc<global index>", matching NewCorpus.
// The sentence structs are copied before renumbering, so the caller's
// slice is never mutated.
func (m *Mutable) AddParsedDocument(name string, sents []nlp.Sentence) (*Snapshot, error) {
	if len(sents) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrEmptyDocument, name)
	}
	own := make([]nlp.Sentence, len(sents))
	copy(own, sents)
	m.mu.Lock()
	defer m.mu.Unlock()
	if name == "" {
		name = fmt.Sprintf("doc%d", m.base.NumDocuments()+m.delta.NumDocs())
	}
	m.delta.AddDocument(name, own)
	m.ingests++
	m.sealLocked()
	return m.cur, nil
}

// sealLocked installs a fresh snapshot of (base, sealed delta). Caller
// holds m.mu.
func (m *Mutable) sealLocked() {
	m.seq++
	snap := &Snapshot{
		base:       m.base,
		baseShards: m.base.NumShards(),
		baseDocs:   m.base.NumDocuments(),
		baseSents:  m.base.NumSentences(),
		seq:        m.seq,
	}
	if m.delta.NumDocs() > 0 {
		c, ix := m.delta.Seal()
		snap.delta = assembleEngine(&Corpus{c: c}, ix, m.model, m.dicts, m.opts)
	}
	m.cur = snap
}

// CompactionStats reports what one compaction did.
type CompactionStats struct {
	// Docs / Sentences are how many delta documents were folded into the
	// base (0 means the delta was empty and nothing changed).
	Docs      int
	Sentences int
	// Shards is the rebuilt base's shard count.
	Shards int
	// Elapsed is the rebuild wall time.
	Elapsed time.Duration
}

// Compact folds the current sealed delta into the base: the base corpus and
// the delta's documents are merged in ingestion order and re-partitioned
// into the target shard count, exactly as a from-scratch build over the
// same documents would be. Queries keep evaluating on their snapshots
// throughout; documents ingested while the rebuild runs stay in the delta
// and become the new delta afterwards. Compactions serialize; a concurrent
// Compact blocks and then likely no-ops on an empty delta.
func (m *Mutable) Compact() (CompactionStats, error) {
	m.compactMu.Lock()
	defer m.compactMu.Unlock()
	t0 := time.Now()

	// Cut: everything in the delta right now gets folded in. Copying the
	// cut is O(delta), tiny next to the rebuild, and the only part that
	// needs the writer lock — ingestion resumes while the shards rebuild.
	m.mu.Lock()
	n := m.delta.NumDocs()
	if n == 0 {
		m.mu.Unlock()
		return CompactionStats{}, nil
	}
	base := m.base
	k := m.compactShards
	sp := m.shardParallel
	cut := &index.Corpus{}
	m.delta.AppendTo(cut, 0, n)
	m.mu.Unlock()

	combined := &index.Corpus{}
	if err := appendQuerierDocs(combined, base); err != nil {
		return CompactionStats{}, err
	}
	combined.AppendDocsFrom(cut, 0, cut.NumDocs())
	var newBase Querier
	if k > 1 {
		se := NewShardedEngine(&Corpus{c: combined}, k, m.opts)
		if sp > 0 {
			se.SetParallelism(sp)
		}
		newBase = se
	} else {
		newBase = NewEngine(&Corpus{c: combined}, m.opts)
	}

	m.mu.Lock()
	m.base = newBase
	m.delta = m.delta.Rebase(n)
	m.compactions++
	m.sealLocked()
	m.mu.Unlock()
	return CompactionStats{
		Docs:      cut.NumDocs(),
		Sentences: cut.NumSentences(),
		Shards:    newBase.NumShards(),
		Elapsed:   time.Since(t0),
	}, nil
}

// appendQuerierDocs flattens an immutable base engine's corpus onto dst in
// global document order. Only the engine shapes the registry installs are
// supported; anything else cannot be compacted.
func appendQuerierDocs(dst *index.Corpus, q Querier) error {
	switch e := q.(type) {
	case *Engine:
		dst.AppendDocsFrom(e.corpus.c, 0, e.corpus.c.NumDocs())
	case *ShardedEngine:
		for _, s := range e.shards {
			dst.AppendDocsFrom(s.corpus.c, 0, s.corpus.c.NumDocs())
		}
	default:
		return fmt.Errorf("koko: cannot compact a base engine of type %T", q)
	}
	return nil
}

// Snapshot is an immutable read view of a mutable corpus: the base engine
// (one or more doc-range shards) plus, when documents await compaction, a
// sealed delta engine served as one extra shard after the base's. It
// implements Querier, so queries, NDJSON streams, and shard-at-a-time jobs
// all evaluate against it exactly as against a ShardedEngine — with results
// byte-identical to a from-scratch engine over the same documents, delta
// doc and sentence ids rebased into global order after the base's.
type Snapshot struct {
	base  Querier
	delta *Engine // nil when the delta is empty
	seq   uint64

	baseShards, baseDocs, baseSents int
}

var _ Querier = (*Snapshot)(nil)

// Seq returns the snapshot's seal sequence (monotonic per Mutable).
func (s *Snapshot) Seq() uint64 { return s.seq }

// Base returns the underlying immutable base engine (for stats and tests).
func (s *Snapshot) Base() Querier { return s.base }

// DeltaDocs reports how many documents the sealed delta holds.
func (s *Snapshot) DeltaDocs() int {
	if s.delta == nil {
		return 0
	}
	return s.delta.NumDocuments()
}

// DeltaSentences reports the sealed delta's sentence count.
func (s *Snapshot) DeltaSentences() int {
	if s.delta == nil {
		return 0
	}
	return s.delta.NumSentences()
}

// NumShards counts the base shards plus the delta (when non-empty).
func (s *Snapshot) NumShards() int {
	if s.delta == nil {
		return s.baseShards
	}
	return s.baseShards + 1
}

// NumDocuments sums base and delta document counts.
func (s *Snapshot) NumDocuments() int { return s.baseDocs + s.DeltaDocs() }

// NumSentences sums base and delta sentence counts.
func (s *Snapshot) NumSentences() int { return s.baseSents + s.DeltaSentences() }

// DocumentName resolves a global document index across base and delta.
func (s *Snapshot) DocumentName(i int) string {
	if i < s.baseDocs {
		return s.base.DocumentName(i)
	}
	if s.delta != nil {
		return s.delta.DocumentName(i - s.baseDocs)
	}
	return ""
}

// Fanout reports how many shard evaluations one query effectively runs
// concurrently: the base's fan-out. The delta does evaluate alongside the
// base, but it is bounded by the compaction threshold and tiny next to the
// base shards, so it is not charged a fan-out slot — charging it one would
// halve a single-shard corpus's intra-shard worker budget for as long as
// any ingested document awaits compaction.
func (s *Snapshot) Fanout() int {
	if se, ok := s.base.(*ShardedEngine); ok {
		return se.Parallelism()
	}
	return 1
}

// Query parses and evaluates a KOKO query against the snapshot.
func (s *Snapshot) Query(src string) (*Result, error) { return s.QueryWith(src, nil) }

// QueryWith parses and evaluates with per-query overrides (qo may be nil).
func (s *Snapshot) QueryWith(src string, qo *QueryOptions) (*Result, error) {
	p, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return s.RunParsed(p, qo)
}

// RunParsed evaluates an already-parsed query across base and delta.
func (s *Snapshot) RunParsed(p *ParsedQuery, qo *QueryOptions) (*Result, error) {
	return s.RunParsedCtx(context.Background(), p, qo)
}

// RunParsedCtx evaluates like RunParsed but honors ctx between documents.
// Phases report summed CPU time; Elapsed reports wall time (as with the
// sharded fan-out).
func (s *Snapshot) RunParsedCtx(ctx context.Context, p *ParsedQuery, qo *QueryOptions) (*Result, error) {
	t0 := time.Now()
	parts := make([]Partial, 0, s.NumShards())
	err := s.RunParsedEach(ctx, p, qo, func(_ int, part Partial) error {
		parts = append(parts, part)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := MergePartials(parts)
	out.Elapsed = time.Since(t0)
	return out, nil
}

// RunShard evaluates one shard: base shards keep their indices, and the
// sealed delta is addressable as the last shard, its Partial carrying the
// offsets that rebase delta-local ids after the base. This is the progress
// unit the server's job executor schedules — a job submitted against a
// snapshot stays pinned to it however many ingests happen meanwhile.
func (s *Snapshot) RunShard(ctx context.Context, shard int, p *ParsedQuery, qo *QueryOptions) (Partial, error) {
	if shard >= 0 && shard < s.baseShards {
		return s.base.RunShard(ctx, shard, p, qo)
	}
	if s.delta != nil && shard == s.baseShards {
		res, err := s.delta.RunParsedCtx(ctx, p, qo)
		if err != nil {
			return Partial{}, err
		}
		return Partial{Res: res, DocOffset: s.baseDocs, SentOffset: s.baseSents}, nil
	}
	return Partial{}, fmt.Errorf("koko: shard %d out of range (snapshot has %d)", shard, s.NumShards())
}

// RunParsedEach fans out like ShardedEngine.RunParsedEach: base partials
// arrive in shard order, then the delta's partial last — global document
// order, so the stream concatenates into the exact merged result. The delta
// evaluates concurrently with the base fan-out but is delivered only after
// every base shard. An each error or shard failure cancels the rest; no
// goroutine outlives the call.
func (s *Snapshot) RunParsedEach(ctx context.Context, p *ParsedQuery, qo *QueryOptions, each func(shard int, part Partial) error) error {
	if s.delta == nil {
		return s.base.RunParsedEach(ctx, p, qo, each)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type deltaRes struct {
		part Partial
		err  error
	}
	ch := make(chan deltaRes, 1)
	go func() {
		part, err := s.RunShard(cctx, s.baseShards, p, qo)
		if err != nil {
			err = fmt.Errorf("delta shard: %w", err)
		}
		ch <- deltaRes{part, err}
	}()
	if err := s.base.RunParsedEach(cctx, p, qo, each); err != nil {
		cancel()
		<-ch
		return err
	}
	d := <-ch
	if d.err != nil {
		return d.err
	}
	return each(s.baseShards, d.part)
}

// Stats aggregates index statistics across base shards and delta.
func (s *Snapshot) Stats() IndexStats { return MergeShardStats(s.ShardStats()) }

// ShardStats reports the base shards followed by the sealed delta (marked
// Delta) when one rides along.
func (s *Snapshot) ShardStats() []ShardStat {
	out := s.base.ShardStats()
	if s.delta != nil {
		out = append(out, ShardStat{
			Shard:     s.baseShards,
			Documents: s.delta.NumDocuments(),
			Sentences: s.delta.NumSentences(),
			Index:     s.delta.Stats(),
			Delta:     true,
		})
	}
	return out
}

// Save persists the snapshot only when no delta documents ride along (the
// base is then the whole corpus). With a live delta there is no on-disk
// form for the combined state — compact first, then save.
func (s *Snapshot) Save(path string) error {
	if s.delta != nil {
		return fmt.Errorf("koko: snapshot has %d uncompacted delta documents; compact before saving", s.DeltaDocs())
	}
	return s.base.Save(path)
}
