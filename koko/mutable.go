package koko

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/embed"
	"repro/internal/koko/index"
	"repro/internal/koko/wal"
	"repro/internal/nlp"
)

// ErrEmptyDocument marks an ingested document that parses to no sentences.
var ErrEmptyDocument = errors.New("koko: document has no sentences")

// ErrNoDocument marks a delete of a document name with no live document.
var ErrNoDocument = errors.New("koko: no such document")

// Mutable turns an immutable base engine into a live corpus: documents are
// ingested one at a time into a small delta index (LSM-style) while every
// query evaluates against an immutable Snapshot of (base shards + sealed
// delta). Writers never block readers: ingestion appends to the delta and
// seals a new snapshot; a compaction folds the sealed delta into the base
// by re-partitioning the combined corpus, with only two brief critical
// sections around the (slow) shard rebuild. After any sequence of
// single-document ingests — before or after compaction — query results are
// byte-identical to an engine rebuilt from scratch over the same documents.
//
// All methods are safe for concurrent use. Writers (AddDocument, Compact)
// serialize against each other; readers hold whatever Snapshot they
// resolved and are never invalidated.
type Mutable struct {
	opts  *Options
	model *embed.Model
	dicts map[string]map[string]bool

	// compactMu serializes compactions (held across the whole rebuild);
	// mu guards the fields below and is held only for short sections.
	compactMu sync.Mutex
	mu        sync.Mutex
	base      Querier
	delta     *index.Delta
	cur       *Snapshot
	seq       uint64
	// compactShards is the target shard count compaction re-partitions
	// into (defaults to the base's shard count at wrap time).
	compactShards int
	// shardParallel, when > 0, bounds the per-query shard fan-out applied
	// to rebuilt sharded bases (mirrors Registry.SetShardParallelism).
	shardParallel int
	ingests       uint64
	compactions   uint64

	// name labels the corpus in errors and durability metadata.
	name string
	// tombs is the immutable set of tombstoned documents awaiting
	// compaction (copy-on-write: sealed snapshots keep the set they saw).
	tombs *tombSet
	// names maps each live document name to its raw global indices
	// (tombstoned documents are removed as they die).
	names   map[string][]int
	deletes uint64

	// Durable state — nil/zero for memory-only corpora (see durable.go).
	wal           *wal.Log
	dir           string
	baseFiles     []string
	storeGen      uint64
	appliedSeq    uint64
	replayedDocs  uint64
	replayedTombs uint64
	recovery      time.Duration
	swaps         uint64
	closed        bool
	// failpoint, when set by tests, runs at named durable-compaction stages;
	// a non-nil return simulates a crash at that point.
	failpoint func(stage string) error
}

// ErrClosed marks a mutation attempted after Close released the corpus's
// durable resources.
var ErrClosed = errors.New("koko: corpus is closed")

// NewMutable wraps base (an Engine or ShardedEngine, typically fresh from
// NewEngine/Open) as a mutable corpus with an empty delta. opts may be nil
// and should match the options base was built with — sealed delta engines
// are built from it.
func NewMutable(base Querier, opts *Options) *Mutable {
	if opts == nil {
		opts = &Options{}
	}
	model, dicts := deriveModelDicts(opts)
	m := &Mutable{
		opts:          opts,
		model:         model,
		dicts:         dicts,
		base:          base,
		delta:         index.NewDelta(),
		compactShards: base.NumShards(),
		names:         namesOf(base),
	}
	m.mu.Lock()
	m.sealLocked()
	m.mu.Unlock()
	return m
}

// namesOf indexes a base engine's live documents by name.
func namesOf(base Querier) map[string][]int {
	names := make(map[string][]int, base.NumDocuments())
	for i := 0; i < base.NumDocuments(); i++ {
		n := base.DocumentName(i)
		names[n] = append(names[n], i)
	}
	return names
}

// SetName labels the corpus for error messages and stats; the registry sets
// it to the corpus's registered name.
func (m *Mutable) SetName(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.name = name
	m.sealLocked()
}

// Name returns the corpus label set with SetName.
func (m *Mutable) Name() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.name
}

// SetCompactShards overrides how many doc-range shards a compaction
// re-partitions the merged corpus into (the default is the base's shard
// count when the Mutable was created). k <= 1 compacts to a single plain
// engine.
func (m *Mutable) SetCompactShards(k int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if k < 1 {
		k = 1
	}
	m.compactShards = k
}

// SetShardParallelism bounds the per-query shard fan-out applied to every
// sharded base a compaction rebuilds (n <= 0 leaves the engine default).
// The current base is retuned immediately as well.
func (m *Mutable) SetShardParallelism(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shardParallel = n
	if se, ok := m.base.(*ShardedEngine); ok && n > 0 {
		se.SetParallelism(n)
	}
}

// Snapshot returns the current immutable read view. The returned value
// never changes under the caller; later ingests and compactions install new
// snapshots without touching ones already handed out — this is what pins a
// running job or streaming query to the corpus state it started on.
func (m *Mutable) Snapshot() *Snapshot {
	s, _ := m.Current()
	return s
}

// Current returns the current snapshot and its seal sequence number. The
// sequence increases with every installed snapshot, so callers mirroring
// the snapshot elsewhere (the server registry) can discard stale installs.
func (m *Mutable) Current() (*Snapshot, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur, m.seq
}

// DeltaDocs reports how many ingested documents await compaction.
func (m *Mutable) DeltaDocs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delta.NumDocs()
}

// Ingests reports the lifetime count of ingested documents.
func (m *Mutable) Ingests() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ingests
}

// Compactions reports the lifetime count of completed compactions.
func (m *Mutable) Compactions() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.compactions
}

// Tombstones reports how many tombstoned documents await compaction.
func (m *Mutable) Tombstones() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tombs.numDocs()
}

// Deletes reports the lifetime count of delete/update tombstone operations.
func (m *Mutable) Deletes() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.deletes
}

// AddDocument parses text with the NLP pipeline and appends it to the
// delta, sealing a new snapshot in which the document is visible as the
// corpus's last document. Concurrent queries on earlier snapshots are
// untouched.
func (m *Mutable) AddDocument(name, text string) (*Snapshot, error) {
	doc := nlp.NewPipeline().Annotate(0, name, text, 0)
	return m.AddParsedDocument(name, doc.Sentences)
}

// AddParsedDocument ingests an already-parsed document (the bridge corpus
// generators and differential tests use, mirroring WrapCorpus). An empty
// name defaults positionally to "doc<global index>", matching NewCorpus.
// The sentence structs are copied before renumbering, so the caller's
// slice is never mutated.
func (m *Mutable) AddParsedDocument(name string, sents []nlp.Sentence) (*Snapshot, error) {
	if len(sents) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrEmptyDocument, name)
	}
	own := make([]nlp.Sentence, len(sents))
	copy(own, sents)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if name == "" {
		name = fmt.Sprintf("doc%d", m.base.NumDocuments()+m.delta.NumDocs())
	}
	// Write-ahead: a durable corpus logs the document before applying it, so
	// anything visible to a query is replayable after a crash.
	if m.wal != nil {
		if _, err := m.wal.Append(wal.Record{Kind: wal.KindAdd, Name: name, Sents: own}); err != nil {
			return nil, fmt.Errorf("koko: %s: wal append: %w", m.labelLocked(), err)
		}
	}
	m.addLocked(name, own)
	m.ingests++
	m.sealLocked()
	return m.cur, nil
}

// addLocked appends an owned, parsed document to the delta and indexes its
// name. Caller holds m.mu and has already logged the document if durable.
func (m *Mutable) addLocked(name string, own []nlp.Sentence) {
	id := m.base.NumDocuments() + m.delta.NumDocs()
	m.delta.AddDocument(name, own)
	m.names[name] = append(m.names[name], id)
}

// tombstoneLocked tombstones every live document named name and returns how
// many died. Caller holds m.mu and has already logged the tombstone if
// durable.
func (m *Mutable) tombstoneLocked(name string) (int, error) {
	ids := m.names[name]
	if len(ids) == 0 {
		return 0, fmt.Errorf("%w: %q", ErrNoDocument, name)
	}
	spans := make([]docSpan, 0, len(ids))
	for _, id := range ids {
		sp, err := m.docSpanLocked(id)
		if err != nil {
			return 0, err
		}
		spans = append(spans, sp)
	}
	m.tombs = m.tombs.add(spans...)
	delete(m.names, name)
	return len(spans), nil
}

// docSpanLocked resolves a raw global document index to its sentence span.
// Caller holds m.mu.
func (m *Mutable) docSpanLocked(id int) (docSpan, error) {
	rawBase := m.base.NumDocuments()
	if id >= rawBase {
		first, n := m.delta.DocSpan(id - rawBase)
		return docSpan{doc: id, firstSID: m.base.NumSentences() + first, nSents: n}, nil
	}
	switch e := m.base.(type) {
	case *Engine:
		d := e.corpus.c.Docs[id]
		return docSpan{doc: id, firstSID: d.FirstSID, nSents: d.NumSents}, nil
	case *ShardedEngine:
		for si, sp := range e.specs {
			if id >= sp.LoDoc && id < sp.HiDoc {
				d := e.shards[si].corpus.c.Docs[id-sp.LoDoc]
				return docSpan{doc: id, firstSID: sp.FirstSID + d.FirstSID, nSents: d.NumSents}, nil
			}
		}
		return docSpan{}, fmt.Errorf("koko: document %d outside every shard range", id)
	default:
		return docSpan{}, fmt.Errorf("koko: cannot tombstone on a base engine of type %T", m.base)
	}
}

// labelLocked names the corpus for error messages. Caller holds m.mu.
func (m *Mutable) labelLocked() string {
	if m.name == "" {
		return "corpus"
	}
	return fmt.Sprintf("corpus %q", m.name)
}

// DeleteDocument tombstones every live document named name. The documents
// stay physically present in base and delta, but the returned snapshot (and
// every later one) masks them out of all reads; the next compaction folds
// them away. Returns how many documents died; ErrNoDocument if none were
// live.
func (m *Mutable) DeleteDocument(name string) (*Snapshot, int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, 0, ErrClosed
	}
	if len(m.names[name]) == 0 {
		return nil, 0, fmt.Errorf("%w: %q", ErrNoDocument, name)
	}
	if m.wal != nil {
		if _, err := m.wal.Append(wal.Record{Kind: wal.KindTombstone, Name: name}); err != nil {
			return nil, 0, fmt.Errorf("koko: %s: wal append: %w", m.labelLocked(), err)
		}
	}
	n, err := m.tombstoneLocked(name)
	if err != nil {
		return nil, 0, err
	}
	m.deletes++
	m.sealLocked()
	return m.cur, n, nil
}

// PutDocument parses text and upserts it under name: any live documents
// with that name are tombstoned and the new content ingested in their
// place, atomically (a durable corpus writes tombstone and add as one WAL
// batch, so a crash replays both or neither). With no existing document
// this is a plain add; an empty name always adds positionally. Reports
// whether an existing document was replaced.
func (m *Mutable) PutDocument(name, text string) (*Snapshot, bool, error) {
	doc := nlp.NewPipeline().Annotate(0, name, text, 0)
	return m.PutParsedDocument(name, doc.Sentences)
}

// PutParsedDocument upserts an already-parsed document (see PutDocument).
func (m *Mutable) PutParsedDocument(name string, sents []nlp.Sentence) (*Snapshot, bool, error) {
	if name == "" {
		snap, err := m.AddParsedDocument(name, sents)
		return snap, false, err
	}
	if len(sents) == 0 {
		return nil, false, fmt.Errorf("%w: %q", ErrEmptyDocument, name)
	}
	own := make([]nlp.Sentence, len(sents))
	copy(own, sents)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, ErrClosed
	}
	replacing := len(m.names[name]) > 0
	if m.wal != nil {
		recs := make([]wal.Record, 0, 2)
		if replacing {
			recs = append(recs, wal.Record{Kind: wal.KindTombstone, Name: name})
		}
		recs = append(recs, wal.Record{Kind: wal.KindAdd, Name: name, Sents: own})
		if _, err := m.wal.Append(recs...); err != nil {
			return nil, false, fmt.Errorf("koko: %s: wal append: %w", m.labelLocked(), err)
		}
	}
	if replacing {
		if _, err := m.tombstoneLocked(name); err != nil {
			return nil, false, err
		}
		m.deletes++
	}
	m.addLocked(name, own)
	m.ingests++
	m.sealLocked()
	return m.cur, replacing, nil
}

// sealLocked installs a fresh snapshot of (base, sealed delta). Caller
// holds m.mu.
func (m *Mutable) sealLocked() {
	m.seq++
	snap := &Snapshot{
		base:       m.base,
		tombs:      m.tombs,
		name:       m.name,
		baseShards: m.base.NumShards(),
		baseDocs:   m.base.NumDocuments(),
		baseSents:  m.base.NumSentences(),
		seq:        m.seq,
	}
	if m.delta.NumDocs() > 0 {
		c, ix := m.delta.Seal()
		snap.delta = assembleEngine(&Corpus{c: c}, ix, m.model, m.dicts, m.opts)
	}
	m.cur = snap
}

// CompactionStats reports what one compaction did.
type CompactionStats struct {
	// Docs / Sentences are how many delta documents were folded into the
	// base (0 means the delta was empty and nothing changed).
	Docs      int
	Sentences int
	// Tombstones is how many tombstoned documents the compaction removed
	// for good.
	Tombstones int
	// Shards is the rebuilt base's shard count.
	Shards int
	// Elapsed is the rebuild wall time.
	Elapsed time.Duration
}

// Compact folds the current sealed delta into the base: the base corpus and
// the delta's documents are merged in ingestion order and re-partitioned
// into the target shard count, exactly as a from-scratch build over the
// same documents would be. Queries keep evaluating on their snapshots
// throughout; documents ingested while the rebuild runs stay in the delta
// and become the new delta afterwards. Compactions serialize; a concurrent
// Compact blocks and then likely no-ops on an empty delta.
func (m *Mutable) Compact() (CompactionStats, error) {
	m.compactMu.Lock()
	defer m.compactMu.Unlock()
	m.mu.Lock()
	closed, durable := m.closed, m.wal != nil
	m.mu.Unlock()
	if closed {
		return CompactionStats{}, ErrClosed
	}
	if durable {
		return m.compactDurable()
	}
	t0 := time.Now()

	// Cut: everything in the delta right now gets folded in, and every
	// tombstone taken so far folds away. Copying the cut is O(delta), tiny
	// next to the rebuild, and the only part that needs the writer lock —
	// ingestion resumes while the shards rebuild.
	m.mu.Lock()
	n := m.delta.NumDocs()
	cutTombs := m.tombs
	if n == 0 && cutTombs.numDocs() == 0 {
		m.mu.Unlock()
		return CompactionStats{}, nil
	}
	base := m.base
	rawBase := base.NumDocuments()
	k := m.compactShards
	sp := m.shardParallel
	cut := &index.Corpus{}
	m.delta.AppendTo(cut, 0, n)
	m.mu.Unlock()

	combined := &index.Corpus{}
	if err := appendLiveDocs(combined, base, cutTombs); err != nil {
		return CompactionStats{}, err
	}
	appendLiveRange(combined, cut, 0, cut.NumDocs(), cutTombs, rawBase)
	var newBase Querier
	if k > 1 {
		se := NewShardedEngine(&Corpus{c: combined}, k, m.opts)
		if sp > 0 {
			se.SetParallelism(sp)
		}
		newBase = se
	} else {
		newBase = NewEngine(&Corpus{c: combined}, m.opts)
	}

	m.mu.Lock()
	m.base = newBase
	m.delta = m.delta.Rebase(n)
	// Tombstones taken while the rebuild ran still mask the new base; their
	// raw coordinates just shift down by the documents folded away.
	m.tombs = renumberTombs(m.tombs, cutTombs)
	renumberNames(m.names, cutTombs)
	m.compactions++
	m.sealLocked()
	m.mu.Unlock()
	return CompactionStats{
		Docs:       n,
		Sentences:  cut.NumSentences(),
		Tombstones: cutTombs.numDocs(),
		Shards:     newBase.NumShards(),
		Elapsed:    time.Since(t0),
	}, nil
}

// appendLiveDocs flattens an immutable base engine's corpus onto dst in
// global document order, skipping tombstoned documents. Only the engine
// shapes the registry installs are supported; anything else cannot be
// compacted.
func appendLiveDocs(dst *index.Corpus, q Querier, tombs *tombSet) error {
	switch e := q.(type) {
	case *Engine:
		appendLiveRange(dst, e.corpus.c, 0, e.corpus.c.NumDocs(), tombs, 0)
	case *ShardedEngine:
		for si, s := range e.shards {
			appendLiveRange(dst, s.corpus.c, 0, s.corpus.c.NumDocs(), tombs, e.specs[si].LoDoc)
		}
	default:
		return fmt.Errorf("koko: cannot compact a base engine of type %T", q)
	}
	return nil
}

// appendLiveRange copies src documents [lo, hi) onto dst in maximal
// contiguous live runs, skipping any document tombstoned at raw global
// index off + local index.
func appendLiveRange(dst, src *index.Corpus, lo, hi int, tombs *tombSet, off int) {
	run := lo
	for i := lo; i <= hi; i++ {
		if i == hi || tombs.contains(off+i) {
			if i > run {
				dst.AppendDocsFrom(src, run, i)
			}
			run = i + 1
		}
	}
}

// renumberNames shifts every live name-map entry down by the tombstoned
// documents a compaction folded away before it.
func renumberNames(names map[string][]int, cut *tombSet) {
	if cut.numDocs() == 0 {
		return
	}
	for _, ids := range names {
		for i, id := range ids {
			ids[i] = id - cut.docsBefore(id)
		}
	}
}

// Snapshot is an immutable read view of a mutable corpus: the base engine
// (one or more doc-range shards) plus, when documents await compaction, a
// sealed delta engine served as one extra shard after the base's. It
// implements Querier, so queries, NDJSON streams, and shard-at-a-time jobs
// all evaluate against it exactly as against a ShardedEngine — with results
// byte-identical to a from-scratch engine over the same documents, delta
// doc and sentence ids rebased into global order after the base's.
type Snapshot struct {
	base  Querier
	delta *Engine // nil when the delta is empty
	// tombs masks deleted documents out of every read until a compaction
	// folds them away (nil when none are live).
	tombs *tombSet
	name  string
	seq   uint64

	baseShards, baseDocs, baseSents int
}

var _ Querier = (*Snapshot)(nil)

// Seq returns the snapshot's seal sequence (monotonic per Mutable).
func (s *Snapshot) Seq() uint64 { return s.seq }

// Base returns the underlying immutable base engine (for stats and tests).
func (s *Snapshot) Base() Querier { return s.base }

// DeltaDocs reports how many documents the sealed delta holds.
func (s *Snapshot) DeltaDocs() int {
	if s.delta == nil {
		return 0
	}
	return s.delta.NumDocuments()
}

// DeltaSentences reports the sealed delta's sentence count.
func (s *Snapshot) DeltaSentences() int {
	if s.delta == nil {
		return 0
	}
	return s.delta.NumSentences()
}

// Tombstones reports how many tombstoned documents the snapshot masks.
func (s *Snapshot) Tombstones() int { return s.tombs.numDocs() }

// NumShards counts the base shards plus the delta (when non-empty).
func (s *Snapshot) NumShards() int {
	if s.delta == nil {
		return s.baseShards
	}
	return s.baseShards + 1
}

// NumDocuments counts live documents: base plus delta, minus tombstones.
func (s *Snapshot) NumDocuments() int { return s.baseDocs + s.DeltaDocs() - s.tombs.numDocs() }

// NumSentences counts live sentences: base plus delta, minus tombstones.
func (s *Snapshot) NumSentences() int { return s.baseSents + s.DeltaSentences() - s.tombs.numSents() }

// DocumentName resolves a masked global document index across base and
// delta, skipping tombstoned documents.
func (s *Snapshot) DocumentName(i int) string {
	i = s.tombs.rawDoc(i)
	if i < s.baseDocs {
		return s.base.DocumentName(i)
	}
	if s.delta != nil {
		return s.delta.DocumentName(i - s.baseDocs)
	}
	return ""
}

// Fanout reports how many shard evaluations one query effectively runs
// concurrently: the base's fan-out. The delta does evaluate alongside the
// base, but it is bounded by the compaction threshold and tiny next to the
// base shards, so it is not charged a fan-out slot — charging it one would
// halve a single-shard corpus's intra-shard worker budget for as long as
// any ingested document awaits compaction.
func (s *Snapshot) Fanout() int {
	if se, ok := s.base.(*ShardedEngine); ok {
		return se.Parallelism()
	}
	return 1
}

// Query parses and evaluates a KOKO query against the snapshot.
func (s *Snapshot) Query(src string) (*Result, error) { return s.QueryWith(src, nil) }

// QueryWith parses and evaluates with per-query overrides (qo may be nil).
//
// Deprecated: parse with ParseQuery and evaluate with Run.
func (s *Snapshot) QueryWith(src string, qo *QueryOptions) (*Result, error) {
	p, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return s.RunParsed(p, qo)
}

// Run evaluates an already-parsed query across base shards and the sealed
// delta as a lazy stream: base shards deliver first in shard order, the
// delta's tuples (rebased after the base's) last — global document order,
// with tombstoned documents masked out batch by batch. The delta's start
// gate is closed up front (eager admission, see StreamShardsEager), so it
// evaluates concurrently with the base fan-out from the first moment
// without charging a fan-out slot (see Fanout); its output parks in the
// delta shard's bounded buffer until the ordered merge reaches it. Safe
// for concurrent use.
func (s *Snapshot) Run(ctx context.Context, p *ParsedQuery, qo *QueryOptions) (*TupleSeq, error) {
	var eager []int
	if s.delta != nil {
		eager = []int{s.baseShards} // the delta is the last shard
	}
	return StreamShardsEager(ctx, s.NumShards(), s.Fanout(), eager,
		func(ctx context.Context, shard int, emit func([]Tuple) error) (*Result, error) {
			return s.StreamShard(ctx, shard, p, qo, emit)
		}, false), nil
}

// StreamShard evaluates one shard of the snapshot as a stream: base shards
// keep their indices, and the sealed delta is addressable as the last
// shard, its tuples rebased after the base's. Tombstoned documents are
// masked out of every batch and the returned summary (the streaming form of
// maskPartial), so emitted tuples are already in masked global coordinates.
func (s *Snapshot) StreamShard(ctx context.Context, shard int, p *ParsedQuery, qo *QueryOptions, emit func(tuples []Tuple) error) (*Result, error) {
	dropped := map[int]bool{}
	masked := s.maskEmit(emit, dropped)
	switch {
	case shard >= 0 && shard < s.baseShards:
		sum, err := s.base.StreamShard(ctx, shard, p, qo, masked)
		if err != nil {
			return nil, err
		}
		return s.maskSummary(sum, dropped), nil
	case s.delta != nil && shard == s.baseShards:
		sum, err := s.delta.StreamShard(ctx, 0, p, qo, func(ts []Tuple) error {
			for k := range ts {
				ts[k].Document += s.baseDocs
				ts[k].SentenceID += s.baseSents
			}
			return masked(ts)
		})
		if err != nil {
			return nil, err
		}
		return s.maskSummary(sum, dropped), nil
	}
	return nil, fmt.Errorf("koko: shard %d out of range (snapshot has %d)", shard, s.NumShards())
}

// maskEmit wraps a batch consumer with tombstone masking in raw global
// coordinates: tuples of tombstoned documents are dropped (their distinct
// sentences recorded in dropped for the Matched adjustment), survivors
// renumbered to masked global ids in place.
func (s *Snapshot) maskEmit(emit func([]Tuple) error, dropped map[int]bool) func([]Tuple) error {
	if s.tombs.numDocs() == 0 {
		return emit
	}
	return func(ts []Tuple) error {
		out := ts[:0]
		for _, t := range ts {
			if s.tombs.contains(t.Document) {
				dropped[t.SentenceID] = true
				continue
			}
			t.Document -= s.tombs.docsBefore(t.Document)
			t.SentenceID -= s.tombs.sentsBefore(t.SentenceID)
			out = append(out, t)
		}
		if len(out) == 0 {
			return nil
		}
		return emit(out)
	}
}

// maskSummary applies maskPartial's counter semantics to a streamed shard's
// summary: Candidates keeps the raw pre-mask count, Matched drops by the
// distinct tombstoned sentences whose tuples were masked.
func (s *Snapshot) maskSummary(sum *Result, dropped map[int]bool) *Result {
	if s.tombs.numDocs() == 0 {
		return sum
	}
	return &Result{
		Candidates: sum.Candidates,
		Matched:    sum.Matched - len(dropped),
		Elapsed:    sum.Elapsed,
		Phases:     sum.Phases,
	}
}

// RunParsed evaluates an already-parsed query across base and delta.
//
// Deprecated: use Run with TupleSeq.Collect.
func (s *Snapshot) RunParsed(p *ParsedQuery, qo *QueryOptions) (*Result, error) {
	return s.RunParsedCtx(context.Background(), p, qo)
}

// RunParsedCtx evaluates like RunParsed but honors ctx between documents.
// Phases report summed CPU time; Elapsed reports wall time (as with the
// sharded fan-out).
//
// Deprecated: use Run with TupleSeq.Collect.
func (s *Snapshot) RunParsedCtx(ctx context.Context, p *ParsedQuery, qo *QueryOptions) (*Result, error) {
	seq, err := s.Run(ctx, p, qo)
	if err != nil {
		return nil, err
	}
	return seq.Collect()
}

// RunShard evaluates one shard: base shards keep their indices, and the
// sealed delta is addressable as the last shard, its Partial carrying the
// offsets that rebase delta-local ids after the base. This is the progress
// unit the server's job executor schedules — a job submitted against a
// snapshot stays pinned to it however many ingests happen meanwhile.
func (s *Snapshot) RunShard(ctx context.Context, shard int, p *ParsedQuery, qo *QueryOptions) (Partial, error) {
	if shard >= 0 && shard < s.baseShards {
		part, err := s.base.RunShard(ctx, shard, p, qo)
		if err != nil {
			return Partial{}, err
		}
		return s.maskPartial(part), nil
	}
	if s.delta != nil && shard == s.baseShards {
		seq, err := s.delta.Run(ctx, p, qo)
		if err != nil {
			return Partial{}, err
		}
		res, err := seq.Collect()
		if err != nil {
			return Partial{}, err
		}
		return s.maskPartial(Partial{Res: res, DocOffset: s.baseDocs, SentOffset: s.baseSents}), nil
	}
	return Partial{}, fmt.Errorf("koko: shard %d out of range (snapshot has %d)", shard, s.NumShards())
}

// maskPartial filters tombstoned documents out of one shard's partial and
// renumbers the survivors to masked global coordinates. The returned
// partial carries zero offsets — its tuples are already global — which
// keeps MergePartials, the NDJSON stream renderer, and the job executor
// (all of which apply the offsets downstream) exact without knowing about
// tombstones. Matched and Candidates are pruning diagnostics, not visible
// rows: Candidates keeps the raw pre-mask count (the index did scan those
// sentences), and Matched drops by the distinct tombstoned sentences whose
// tuples were masked here — a tombstoned sentence whose extractions the
// satisfying clause already filtered stays counted, so Matched can exceed a
// from-scratch rebuild's by those sentences.
func (s *Snapshot) maskPartial(p Partial) Partial {
	if s.tombs.numDocs() == 0 || p.Res == nil {
		return p
	}
	res := p.Res
	out := &Result{
		Tuples:     make([]Tuple, 0, len(res.Tuples)),
		Candidates: res.Candidates,
		Matched:    res.Matched,
		Elapsed:    res.Elapsed,
		Phases:     res.Phases,
	}
	dropped := map[int]bool{}
	for _, t := range res.Tuples {
		gd := t.Document + p.DocOffset
		gs := t.SentenceID + p.SentOffset
		if s.tombs.contains(gd) {
			dropped[gs] = true
			continue
		}
		t.Document = gd - s.tombs.docsBefore(gd)
		t.SentenceID = gs - s.tombs.sentsBefore(gs)
		out.Tuples = append(out.Tuples, t)
	}
	out.Matched -= len(dropped)
	return Partial{Res: out}
}

// RunParsedEach delivers per-shard Partials in shard order — base shards
// first, the delta's last — already in masked global coordinates (zero
// offsets), so the stream of partials concatenates into the exact merged
// result.
//
// Deprecated: use Run; ShardEnd events mark the per-shard boundaries.
func (s *Snapshot) RunParsedEach(ctx context.Context, p *ParsedQuery, qo *QueryOptions, each func(shard int, part Partial) error) error {
	return runParsedEachVia(s, ctx, p, qo, each)
}

// Stats aggregates index statistics across base shards and delta.
func (s *Snapshot) Stats() IndexStats { return MergeShardStats(s.ShardStats()) }

// ShardStats reports the base shards followed by the sealed delta (marked
// Delta) when one rides along.
func (s *Snapshot) ShardStats() []ShardStat {
	out := s.base.ShardStats()
	if s.delta != nil {
		out = append(out, ShardStat{
			Shard:     s.baseShards,
			Documents: s.delta.NumDocuments(),
			Sentences: s.delta.NumSentences(),
			Index:     s.delta.Stats(),
			Delta:     true,
		})
	}
	return out
}

// Save persists the snapshot only when no delta documents or tombstones
// ride along (the base is then the whole corpus). With a live delta or
// pending deletes there is no on-disk form for the combined state — compact
// first, then save; after an explicit Compact, Save always succeeds.
func (s *Snapshot) Save(path string) error {
	if s.delta != nil || s.tombs.numDocs() > 0 {
		label := "snapshot"
		if s.name != "" {
			label = fmt.Sprintf("corpus %q", s.name)
		}
		return fmt.Errorf("koko: %s has %d uncompacted delta documents and %d live tombstones; compact before saving", label, s.DeltaDocs(), s.tombs.numDocs())
	}
	return s.base.Save(path)
}

// Save persists the Mutable's current snapshot (see Snapshot.Save): it
// fails while delta documents or tombstones await compaction, and succeeds
// right after an explicit Compact.
func (m *Mutable) Save(path string) error { return m.Snapshot().Save(path) }

// Run evaluates an already-parsed query against the current snapshot (see
// Snapshot.Run). The stream stays pinned to that snapshot however many
// ingests, deletes, or compactions happen while it drains.
func (m *Mutable) Run(ctx context.Context, p *ParsedQuery, qo *QueryOptions) (*TupleSeq, error) {
	return m.Snapshot().Run(ctx, p, qo)
}
