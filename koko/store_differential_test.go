package koko

import (
	"path/filepath"
	"testing"
)

// TestBlockStoreDifferential: the block store must be invisible to query
// semantics. Three generators × K ∈ {1,3} shards × planner on/off, each
// query answered by a heap engine (the reference) and by the same corpus
// persisted in block format and reopened — lazily decoding postings from
// the mmap'd store — with results compared field by field.
func TestBlockStoreDifferential(t *testing.T) {
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.corpus()
			dir := t.TempDir()

			heap1 := NewEngine(c, nil)
			p1 := filepath.Join(dir, "k1.koko")
			if err := heap1.SaveAs(p1, FormatBlock); err != nil {
				t.Fatalf("SaveAs(FormatBlock): %v", err)
			}
			blk1, err := Load(p1, nil)
			if err != nil {
				t.Fatalf("Load block store: %v", err)
			}
			if blk1.ix.Source() == nil {
				t.Fatal("reloaded engine is not block-backed")
			}

			heap3 := NewShardedEngine(c, 3, nil)
			p3 := filepath.Join(dir, "k3.koko")
			if err := heap3.SaveAs(p3, FormatBlock); err != nil {
				t.Fatalf("ShardedEngine.SaveAs(FormatBlock): %v", err)
			}
			blk3, err := Open(p3, nil)
			if err != nil {
				t.Fatalf("Open block manifest: %v", err)
			}
			se, ok := blk3.(*ShardedEngine)
			if !ok {
				t.Fatalf("Open returned %T, want *ShardedEngine", blk3)
			}
			for i, s := range se.shards {
				if s.ix.Source() == nil {
					t.Fatalf("reloaded shard %d is not block-backed", i)
				}
			}

			for qi, src := range tc.queries {
				for _, plan := range []string{"on", "off"} {
					qo := &QueryOptions{Plan: plan}
					want1 := mustRun(t, heap1, src, qo)
					sameResults(t, tc.name+"/k1/plan-"+plan, want1, mustRun(t, blk1, src, qo))
					want3 := mustRun(t, heap3, src, qo)
					sameResults(t, tc.name+"/k3/plan-"+plan, want3, mustRun(t, blk3, src, qo))
					_ = qi
				}
			}
		})
	}
}

// TestStoreFormatConversion: row → block → row via Load + SaveAs preserves
// query results in both directions.
func TestStoreFormatConversion(t *testing.T) {
	tc := diffCases()[0]
	c := tc.corpus()
	ref := NewEngine(c, nil)
	src := tc.queries[0]
	want := mustRun(t, ref, src, nil)

	dir := t.TempDir()
	row1 := filepath.Join(dir, "a.koko")
	if err := ref.Save(row1); err != nil {
		t.Fatal(err)
	}
	e1, err := Load(row1, nil)
	if err != nil {
		t.Fatal(err)
	}
	blk := filepath.Join(dir, "b.koko")
	if err := e1.SaveAs(blk, FormatBlock); err != nil {
		t.Fatal(err)
	}
	e2, err := Load(blk, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "row->block", want, mustRun(t, e2, src, nil))

	// Block-backed engines rebuild a heap index to save row-wise.
	row2 := filepath.Join(dir, "c.koko")
	if err := e2.SaveAs(row2, FormatRow); err != nil {
		t.Fatal(err)
	}
	e3, err := Load(row2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e3.ix.Source() != nil {
		t.Fatal("row store reloaded as block-backed")
	}
	sameResults(t, "block->row", want, mustRun(t, e3, src, nil))
}
