package koko

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// The streaming differential suite: draining a TupleSeq event by event must
// reconstruct exactly the buffered Result — same tuples in the same order,
// same counters — for every corpus generator, shard count, and planner
// setting. Run under -race: per-shard Workers=2 exercises the nested
// parallelism, and the fan-out's producer goroutines run against the
// consumer's pull loop.

// drainEvents consumes a stream by hand, rebuilding a buffered Result from
// the raw events and checking the stream's structural invariants along the
// way: ShardEnd markers arrive in strictly ascending shard order, each
// shard's Tuples count matches the tuples yielded since the previous marker,
// and every tuple precedes its shard's marker.
func drainEvents(t *testing.T, seq *TupleSeq) *Result {
	t.Helper()
	var tuples []Tuple
	sinceMarker := 0
	lastShard := -1
	for ev := range seq.Events() {
		if tu := ev.Tuple; tu != nil {
			tuples = append(tuples, *tu) // pointer is yield-scoped; copy out
			sinceMarker++
			continue
		}
		sh := ev.Shard
		if sh == nil {
			t.Fatal("event with neither tuple nor shard marker")
		}
		if sh.Shard <= lastShard {
			t.Fatalf("shard markers out of order: %d after %d", sh.Shard, lastShard)
		}
		lastShard = sh.Shard
		if sh.Failed {
			t.Fatalf("shard %d failed: %v", sh.Shard, sh.Err)
		}
		if sh.Tuples != sinceMarker {
			t.Fatalf("shard %d marker claims %d tuples, %d were yielded", sh.Shard, sh.Tuples, sinceMarker)
		}
		sinceMarker = 0
	}
	if err := seq.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if sinceMarker != 0 {
		t.Fatalf("%d tuples after the last shard marker", sinceMarker)
	}
	res := seq.Summary()
	res.Tuples = tuples
	return res
}

// TestStreamDifferential: streamed drain vs buffered Collect vs the
// unsharded reference, over three generators, K ∈ {1,3}, planner on and off.
func TestStreamDifferential(t *testing.T) {
	for _, tc := range diffCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := tc.corpus()
			ref := NewEngine(c, nil)
			engines := []struct {
				name string
				q    Querier
			}{
				{"k=1", NewEngine(c, nil)},
				{"k=3", NewShardedEngine(c, 3, nil)},
			}
			total := 0
			for _, eng := range engines {
				for qi, src := range tc.queries {
					p, err := ParseQuery(src)
					if err != nil {
						t.Fatalf("parse: %v", err)
					}
					for _, plan := range []string{"off", "on"} {
						qo := &QueryOptions{Workers: 2, Plan: plan}
						label := fmt.Sprintf("%s q=%d plan=%s", eng.name, qi, plan)
						want := mustRun(t, ref, src, qo)

						seq, err := eng.q.Run(context.Background(), p, qo)
						if err != nil {
							t.Fatalf("%s: Run: %v", label, err)
						}
						streamed := drainEvents(t, seq)
						sameResults(t, label+" streamed", want, streamed)

						seq2, err := eng.q.Run(context.Background(), p, qo)
						if err != nil {
							t.Fatalf("%s: Run: %v", label, err)
						}
						collected, err := seq2.Collect()
						if err != nil {
							t.Fatalf("%s: Collect: %v", label, err)
						}
						sameResults(t, label+" collected", want, collected)
						total += len(streamed.Tuples)
					}
				}
			}
			if total == 0 {
				t.Fatal("workload produces no tuples; differential test is vacuous")
			}
		})
	}
}

// syntheticShards returns a ShardStreamFunc yielding batches tuples per
// batch, batches batches per shard, each tuple carrying payload bytes of
// value data, in ascending global coordinates.
func syntheticShards(perBatch, batches, payload int) ShardStreamFunc {
	return func(ctx context.Context, shard int, emit func([]Tuple) error) (*Result, error) {
		base := shard * perBatch * batches
		for b := 0; b < batches; b++ {
			ts := make([]Tuple, perBatch)
			for i := range ts {
				id := base + b*perBatch + i
				ts[i] = Tuple{
					SentenceID: id,
					Document:   shard,
					Values:     []string{string(make([]byte, payload))},
				}
			}
			if err := emit(ts); err != nil {
				return nil, err
			}
		}
		return &Result{Candidates: perBatch * batches, Matched: perBatch * batches}, nil
	}
}

// TestStreamBoundedMemory: draining a stream whose total tuple volume far
// exceeds the fan-out's buffer must not materialize the result. The producer
// side generates ~64 MB of tuple payload across 16 shards; the consumer
// discards tuples as they arrive, and the heap growth over the drain must
// stay well under the produced volume (the bound is shards × buffer ×
// batch, plus allocator slack — not the result size).
func TestStreamBoundedMemory(t *testing.T) {
	const (
		shards   = 16
		perBatch = 64
		batches  = 64
		payload  = 1024 // 1 KiB per tuple => 64 MiB total
	)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	seq := StreamShards(context.Background(), shards, 4, syntheticShards(perBatch, batches, payload), false)
	n := 0
	peak := uint64(0)
	var ms runtime.MemStats
	for ev := range seq.Events() {
		if ev.Tuple != nil {
			n++
			if n%(perBatch*batches) == 0 { // sample once per shard's volume
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}
	if err := seq.Err(); err != nil {
		t.Fatal(err)
	}
	if want := shards * perBatch * batches; n != want {
		t.Fatalf("drained %d tuples, want %d", n, want)
	}
	total := uint64(shards * perBatch * batches * payload)
	growth := uint64(0)
	if peak > before.HeapAlloc {
		growth = peak - before.HeapAlloc
	}
	// The materialized result is ~64 MiB; a streaming drain must stay far
	// under it. 16 MiB leaves generous room for allocator slack and the GC's
	// lazy reclaim of discarded batches while still failing hard if the
	// stream ever buffers the result.
	if limit := total / 4; growth > limit {
		t.Fatalf("heap grew %d bytes during drain (limit %d, result volume %d): stream is materializing", growth, limit, total)
	}
}

// TestStreamFirstTupleLatency: the first tuple must reach the consumer while
// later shards have not finished — time-to-first-tuple tracks the first
// shard's first batch, not the whole evaluation. Shard 1 blocks on a gate
// the consumer only opens after it has the first tuple, so completion of
// this test is itself the proof.
func TestStreamFirstTupleLatency(t *testing.T) {
	gate := make(chan struct{})
	run := func(ctx context.Context, shard int, emit func([]Tuple) error) (*Result, error) {
		if shard == 1 {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if err := emit([]Tuple{{SentenceID: shard, Document: shard}}); err != nil {
			return nil, err
		}
		return &Result{Matched: 1}, nil
	}
	seq := StreamShards(context.Background(), 2, 2, run, false)
	got := 0
	deadline := time.After(10 * time.Second)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range seq.Events() {
			if ev.Tuple != nil {
				if got == 0 {
					close(gate) // first tuple arrived before shard 1 ran
				}
				got++
			}
		}
	}()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("stream never completed: first tuple did not arrive before shard 1 finished")
	}
	if err := seq.Err(); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("got %d tuples, want 2", got)
	}
}

// TestStreamOrderedAdmission: with parallel=1 the fan-out must start shards
// in shard order — a semaphore granted in arbitrary order could admit a
// later shard first, which then blocks on its bounded buffer while the
// consumer waits forever on shard 0 (the deadlock this test regresses).
// Every shard produces more batches than the per-shard buffer holds, so any
// out-of-order admission wedges the drain.
func TestStreamOrderedAdmission(t *testing.T) {
	const shards = 8
	var started atomic.Int32
	run := func(ctx context.Context, shard int, emit func([]Tuple) error) (*Result, error) {
		if prev := started.Add(1) - 1; int(prev) != shard {
			return nil, fmt.Errorf("shard %d admitted %d-th, want shard order", shard, prev)
		}
		for b := 0; b < shardStreamBuffer*4; b++ {
			if err := emit([]Tuple{{SentenceID: shard*100 + b, Document: shard}}); err != nil {
				return nil, err
			}
		}
		return &Result{}, nil
	}
	seq := StreamShards(context.Background(), shards, 1, run, false)
	n := 0
	for ev := range seq.Events() {
		if ev.Tuple != nil {
			n++
		}
	}
	if err := seq.Err(); err != nil {
		t.Fatal(err)
	}
	if want := shards * shardStreamBuffer * 4; n != want {
		t.Fatalf("drained %d tuples, want %d", n, want)
	}
}

// TestStreamDegradedCollectDropsFailedShardPrefix: in degraded mode a shard
// can fail after some of its tuples were already yielded into the stream.
// Collect must keep surviving shards only — the failed shard's partial
// prefix is dropped, matching EachPartial — so FailedShards never names a
// shard whose tuples are in the collected result.
func TestStreamDegradedCollectDropsFailedShardPrefix(t *testing.T) {
	boom := errors.New("replica died mid-stream")
	run := func(ctx context.Context, shard int, emit func([]Tuple) error) (*Result, error) {
		if err := emit([]Tuple{{SentenceID: shard * 10, Document: shard}}); err != nil {
			return nil, err
		}
		if shard == 1 {
			return nil, boom // fails after a batch already escaped downstream
		}
		return &Result{Matched: 1}, nil
	}
	seq := StreamShards(context.Background(), 3, 3, run, true)
	res, err := seq.Collect()
	if err != nil {
		t.Fatalf("degraded Collect must survive a mid-stream shard failure: %v", err)
	}
	if failed := seq.FailedShards(); len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("failed shards = %v, want [1]", failed)
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("collected %d tuples, want 2 (failed shard's prefix dropped): %+v", len(res.Tuples), res.Tuples)
	}
	for _, tu := range res.Tuples {
		if tu.Document == 1 {
			t.Fatalf("result contains tuple %+v from failed shard 1", tu)
		}
	}
	if res.Matched != 2 {
		t.Errorf("merged Matched = %d, want 2 (surviving shards only)", res.Matched)
	}
}

// TestStreamEagerAdmission: an eager shard's start gate is closed up front,
// so it evaluates concurrently with the window even when parallel=1 and its
// delivery turn is last. Shard 0 blocks until shard 2 has started — with
// ordered-only admission that is a deadlock (guarded by the timeout), so
// completion proves the eager start; the drain must still deliver in shard
// order.
func TestStreamEagerAdmission(t *testing.T) {
	started := make(chan struct{})
	run := func(ctx context.Context, shard int, emit func([]Tuple) error) (*Result, error) {
		switch shard {
		case 0:
			select {
			case <-started:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		case 2:
			close(started)
		}
		if err := emit([]Tuple{{SentenceID: shard, Document: shard}}); err != nil {
			return nil, err
		}
		return &Result{}, nil
	}
	seq := StreamShardsEager(context.Background(), 3, 1, []int{2}, run, false)
	var order []int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range seq.Events() {
			if ev.Tuple != nil {
				order = append(order, ev.Tuple.Document)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream never completed: eager shard 2 did not start before shard 0 drained")
	}
	if err := seq.Err(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("delivery order = %v, want [0 1 2] (eager start must not reorder delivery)", order)
	}
}

// TestStreamStalledLaterShardDoesNotStarveEarlier: a later shard that never
// returns must not prevent earlier shards' tuples from reaching the
// consumer, even when parallel < shards. The consumer cancels after
// receiving shard 0's data, and the stall must end with the context.
func TestStreamStalledLaterShardDoesNotStarveEarlier(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	run := func(ctx context.Context, shard int, emit func([]Tuple) error) (*Result, error) {
		if shard == 2 {
			<-ctx.Done() // stalled replica: only cancellation ends it
			return nil, ctx.Err()
		}
		if err := emit([]Tuple{{SentenceID: shard, Document: shard}}); err != nil {
			return nil, err
		}
		return &Result{}, nil
	}
	seq := StreamShards(ctx, 3, 2, run, false)
	sawShard1End := false
	for ev := range seq.Events() {
		if sh := ev.Shard; sh != nil && sh.Shard == 1 && !sh.Failed {
			sawShard1End = true
			break // consumer gives up on the stalled tail; break cancels it
		}
	}
	if !sawShard1End {
		t.Fatalf("never saw shard 1 complete while shard 2 stalled: %v", seq.Err())
	}
}
