package koko

import (
	"context"
	"fmt"
	"iter"
	"sync"
	"time"
)

// Streaming results: TupleSeq is the canonical form every Querier's Run
// returns. Tuples flow lazily from the per-document evaluation loop through
// the shard fan-out to the consumer; buffered results, the server's result
// cache, and Partial merging are thin collectors over the same sequence.

// streamBatchTuples bounds how many tuples a shard accumulates before
// flushing a batch downstream. Small enough that the first batch of a large
// result arrives long before evaluation completes; large enough that
// per-batch overhead (channel hops, job result partials, NDJSON flushes)
// amortizes.
const streamBatchTuples = 256

// streamFirstBatchTuples is the first flush's threshold: a shard's opening
// batch goes out after a handful of tuples, so time-to-first-tuple tracks
// the first candidate documents rather than a full batch fill. Subsequent
// batches use streamBatchTuples to amortize per-batch overhead.
const streamFirstBatchTuples = 16

// shardStreamBuffer is how many batches a shard may complete ahead of its
// in-order delivery turn before its producer blocks. Together with
// streamBatchTuples it bounds the fan-out's buffered tuples at
// shards × shardStreamBuffer × streamBatchTuples regardless of result size.
const shardStreamBuffer = 2

// ShardEnd reports one completed shard within a stream. It follows the
// shard's tuples, so a consumer that has seen ShardEnd for shard i holds
// the exact prefix a shard-at-a-time merge would have produced.
type ShardEnd struct {
	// Shard is the shard index, in the Querier's shard numbering.
	Shard int
	// Tuples counts the tuples this shard contributed to the stream.
	Tuples int
	// Summary carries the shard's counters, phase times, and plan report —
	// everything about the shard's result except the tuples, which were
	// already yielded. Nil when Failed.
	Summary *Result
	// Failed marks a shard skipped in degraded mode (see
	// QueryOptions.Degraded); the stream continues with the next shard.
	Failed bool
	// Err is the failed shard's error (set only with Failed).
	Err error
}

// Event is one element of a TupleSeq: exactly one field is set.
type Event struct {
	// Tuple is one output row, already in the Querier's global document and
	// sentence coordinates. The pointer is valid only for the duration of
	// the yield; consumers that retain it must copy.
	Tuple *Tuple
	// Shard marks a shard boundary.
	Shard *ShardEnd
}

// TupleSeq is a single-use lazy stream of query results: tuples in global
// document order interleaved with per-shard completion markers. Memory is
// bounded by the stream's internal batching, not the result size, and the
// first tuple is available before evaluation of later documents and shards
// has finished.
//
// Iterate with Events (or All for tuples only), then check Err. Breaking
// out of the iteration cancels the remaining evaluation; all fan-out
// goroutines have exited by the time the loop returns. Collect drains the
// stream into a buffered Result — the materialized mode as a collector over
// the iterator.
type TupleSeq struct {
	shards  int
	produce func(yield func(Event) bool) error
	started bool
	err     error
	failed  []int
	failErr error
	summary Result
}

// NumShards reports how many shards the stream covers.
func (s *TupleSeq) NumShards() int { return s.shards }

// Events yields the stream. It may be consumed once; evaluation runs as the
// consumer pulls (a paused consumer applies backpressure to evaluation).
func (s *TupleSeq) Events() iter.Seq[Event] {
	return func(yield func(Event) bool) {
		if s.started {
			panic("koko: TupleSeq consumed twice")
		}
		s.started = true
		s.err = s.produce(func(ev Event) bool {
			if sh := ev.Shard; sh != nil {
				if sh.Failed {
					s.failed = append(s.failed, sh.Shard)
					if s.failErr == nil && sh.Err != nil {
						s.failErr = sh.Err
					}
				} else if sh.Summary != nil {
					mergeResultInto(&s.summary, sh.Summary)
				}
			}
			return yield(ev)
		})
	}
}

// All yields only the tuples, copied out of the stream's batches.
func (s *TupleSeq) All() iter.Seq[Tuple] {
	return func(yield func(Tuple) bool) {
		for ev := range s.Events() {
			if ev.Tuple != nil && !yield(*ev.Tuple) {
				return
			}
		}
	}
}

// Err reports why the stream stopped: nil after a complete drain (or a
// consumer break), the first shard's error otherwise. Valid once iteration
// has returned.
func (s *TupleSeq) Err() error { return s.err }

// FailedShards lists the shards skipped in degraded mode, in shard order.
// Valid once iteration has returned; empty for non-degraded runs.
func (s *TupleSeq) FailedShards() []int { return s.failed }

// FailedErr returns the first failed shard's error in a degraded run (nil
// when no shard failed). Valid once iteration has returned.
func (s *TupleSeq) FailedErr() error { return s.failErr }

// Summary returns the merged counters of every completed shard — the
// buffered Result minus its tuples. Valid once iteration has returned.
func (s *TupleSeq) Summary() *Result {
	out := s.summary
	return &out
}

// Collect drains the stream into a materialized Result, byte-identical to
// the historical buffered mode: tuples concatenated in shard order, counters
// and plan reports merged exactly as MergePartials would, Elapsed set to the
// fan-out's wall time. In a degraded stream a shard may fail after some of
// its tuples were already yielded; Collect keeps only tuples confirmed by a
// completed shard's ShardEnd, so the result holds surviving shards only —
// the same semantics as EachPartial — and FailedShards never names a shard
// whose tuples are in the result.
func (s *TupleSeq) Collect() (*Result, error) {
	t0 := time.Now()
	var tuples []Tuple
	mark := 0 // length of tuples at the last completed shard boundary
	for ev := range s.Events() {
		switch {
		case ev.Tuple != nil:
			tuples = append(tuples, *ev.Tuple)
		case ev.Shard != nil && ev.Shard.Failed:
			tuples = tuples[:mark] // drop the failed shard's partial prefix
		case ev.Shard != nil:
			mark = len(tuples)
		}
	}
	if s.err != nil {
		return nil, s.err
	}
	out := s.summary
	out.Tuples = tuples
	out.Elapsed = time.Since(t0)
	return &out, nil
}

// ShardStreamFunc evaluates one shard of a query for StreamShards: it
// delivers tuples through emit in bounded batches (document order, already
// rebased to the Querier's global coordinates) and returns the shard's
// counters-only summary. An emit error means the consumer is gone; the
// implementation stops evaluating and returns it.
type ShardStreamFunc func(ctx context.Context, shard int, emit func(tuples []Tuple) error) (*Result, error)

// StreamShards composes per-shard streams into one TupleSeq. Shards start
// in shard order, at most parallel at once; each delivers bounded batches
// into a small per-shard buffer and blocks when it runs ahead. The consumer
// drains shard 0's stream, then shard 1's, and so on — shards cover
// disjoint ascending document ranges, so this in-order concatenation is the
// K-way ordered merge (the heap over per-shard heads degenerates to shard
// order) and tuples arrive in global document order.
//
// A shard error cancels the rest of the fan-out and surfaces through
// TupleSeq.Err — unless degraded is set, in which case the shard yields a
// Failed ShardEnd and the stream continues.
func StreamShards(ctx context.Context, shards, parallel int, run ShardStreamFunc, degraded bool) *TupleSeq {
	return StreamShardsEager(ctx, shards, parallel, nil, run, degraded)
}

// StreamShardsEager is StreamShards with some shards admitted outside the
// sliding window: every index in eager has its start gate closed up front,
// so it begins evaluating immediately — concurrently with the windowed
// shards and without occupying a window slot — while its delivery turn
// still comes in shard order (its output parks in the shard's bounded
// buffer until the merge reaches it). Built for small out-of-band shards
// like a Mutable snapshot's sealed delta, which would otherwise evaluate
// only after every base shard drained.
func StreamShardsEager(ctx context.Context, shards, parallel int, eager []int, run ShardStreamFunc, degraded bool) *TupleSeq {
	seq := &TupleSeq{shards: shards}
	seq.produce = func(yield func(Event) bool) error {
		base := ctx
		if base == nil {
			base = context.Background()
		}
		cctx, cancel := context.WithCancel(base)
		type msg struct {
			tuples []Tuple
			sum    *Result
			last   bool
			err    error
		}
		chans := make([]chan msg, shards)
		for i := range chans {
			chans[i] = make(chan msg, shardStreamBuffer)
		}
		par := parallel
		if par < 1 {
			par = 1
		}
		// starts gates shard launches to a sliding window in shard order:
		// starts[i] is closed when shard i may begin evaluating, initially
		// shards 0..par-1, advancing one shard each time the consumer drains
		// one. A bare semaphore would deadlock here — a later shard could
		// claim the last slot, fill its bounded buffer, and block on a
		// consumer that is waiting for an earlier shard which can never
		// start. An ordered fan-out must grant capacity in delivery order.
		// Eager shards are admitted up front, outside the window; admit is
		// idempotent (only ever called from this goroutine) so the window
		// sliding over an already-eager shard is a no-op.
		starts := make([]chan struct{}, shards)
		admitted := make([]bool, shards)
		for i := range starts {
			starts[i] = make(chan struct{})
		}
		admit := func(i int) {
			if !admitted[i] {
				admitted[i] = true
				close(starts[i])
			}
		}
		for i := 0; i < shards && i < par; i++ {
			admit(i)
		}
		for _, i := range eager {
			if i >= 0 && i < shards {
				admit(i)
			}
		}
		// record notes the first real failure; shards cancelled in its wake
		// resolve to it, so the stream reports the root cause even when a
		// lower-indexed shard was merely cancelled.
		var mu sync.Mutex
		var firstErr error
		record := func(err error) error {
			mu.Lock()
			defer mu.Unlock()
			if firstErr == nil {
				firstErr = err
			}
			return firstErr
		}
		var wg sync.WaitGroup
		for i := 0; i < shards; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				send := func(m msg) bool {
					select {
					case chans[i] <- m:
						return true
					case <-cctx.Done():
						return false
					}
				}
				select {
				case <-starts[i]:
				case <-cctx.Done():
					send(msg{last: true, err: cctx.Err()})
					return
				}
				if err := cctx.Err(); err != nil {
					send(msg{last: true, err: err})
					return
				}
				sum, err := run(cctx, i, func(ts []Tuple) error {
					if len(ts) == 0 {
						return nil
					}
					if !send(msg{tuples: ts}) {
						return cctx.Err()
					}
					return nil
				})
				if err != nil {
					if !degraded {
						record(fmt.Errorf("shard %d: %w", i, err))
						cancel() // fast-fail: stop shards whose result is moot
					}
					send(msg{last: true, err: err})
					return
				}
				send(msg{last: true, sum: sum})
			}(i)
		}
		defer func() {
			// Runs on clean completion, consumer break, and error alike:
			// no shard goroutine may outlive the iteration.
			cancel()
			wg.Wait()
		}()
		for i := 0; i < shards; i++ {
			shardTuples := 0
		shard:
			for {
				var m msg
				// Prefer delivered messages over the cancellation signal so
				// a result that completed just before a late cancel still
				// streams out whole.
				select {
				case m = <-chans[i]:
				default:
					select {
					case m = <-chans[i]:
					case <-cctx.Done():
						return record(cctx.Err())
					}
				}
				switch {
				case m.err != nil:
					// A cancelled parent context is terminal even in degraded
					// mode — degradation tolerates shard failures, not the
					// caller giving up.
					if !degraded || base.Err() != nil {
						return record(fmt.Errorf("shard %d: %w", i, m.err))
					}
					if !yield(Event{Shard: &ShardEnd{Shard: i, Failed: true, Err: fmt.Errorf("shard %d: %w", i, m.err)}}) {
						return nil
					}
					break shard
				case m.last:
					if !yield(Event{Shard: &ShardEnd{Shard: i, Tuples: shardTuples, Summary: m.sum}}) {
						return nil
					}
					break shard
				default:
					for k := range m.tuples {
						if !yield(Event{Tuple: &m.tuples[k]}) {
							return nil
						}
						shardTuples++
					}
				}
			}
			if next := i + par; next < shards {
				// Shard i has fully drained; admit the next shard so the
				// window slides forward one, staying par wide.
				admit(next)
			}
		}
		return nil
	}
	return seq
}

// mergeResultInto folds one shard's counters, phase times, and plan report
// into a merged result — the non-tuple half of MergePartials, shared with
// the streaming collectors so both modes merge identically.
func mergeResultInto(out *Result, res *Result) {
	out.Candidates += res.Candidates
	out.Matched += res.Matched
	out.Elapsed += res.Elapsed
	out.Phases.Normalize += res.Phases.Normalize
	out.Phases.DPLI += res.Phases.DPLI
	out.Phases.Plan += res.Phases.Plan
	out.Phases.LoadArticle += res.Phases.LoadArticle
	out.Phases.GSP += res.Phases.GSP
	out.Phases.Extract += res.Phases.Extract
	out.Phases.Satisfying += res.Phases.Satisfying
	mergePlanInfo(out, res.Plan)
}

// EachPartial drains a stream into the historical per-shard-Partial
// callback shape: tuples regroup into one Partial per completed shard,
// already in global coordinates (zero offsets), delivered in strict shard
// order. Failed shards of a degraded stream are skipped. An error from each
// stops the drain (cancelling the remaining evaluation) and is returned;
// otherwise EachPartial returns the stream's terminal error. The compat
// surface beneath the deprecated RunParsedEach wrappers.
func EachPartial(seq *TupleSeq, each func(shard int, part Partial) error) error {
	var tuples []Tuple
	var eachErr error
	for ev := range seq.Events() {
		if ev.Tuple != nil {
			tuples = append(tuples, *ev.Tuple)
			continue
		}
		if sh := ev.Shard; sh != nil {
			if sh.Failed {
				tuples = nil
				continue
			}
			res := &Result{Tuples: tuples}
			tuples = nil
			if sh.Summary != nil {
				mergeResultInto(res, sh.Summary)
			}
			if eachErr = each(sh.Shard, Partial{Res: res}); eachErr != nil {
				break
			}
		}
	}
	if eachErr != nil {
		return eachErr
	}
	return seq.Err()
}

// runParsedEachVia is the deprecated-wrapper plumbing: Run + EachPartial.
func runParsedEachVia(q Querier, ctx context.Context, p *ParsedQuery, qo *QueryOptions, each func(shard int, part Partial) error) error {
	seq, err := q.Run(ctx, p, qo)
	if err != nil {
		return err
	}
	return EachPartial(seq, each)
}
