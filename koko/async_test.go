package koko

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/corpus"
)

// The async surface: RunShard partials must concatenate into the exact
// RunParsed result, RunParsedEach must deliver shards in order, and
// cancellation must stop evaluation — mid-run, not at the next call.

func asyncTestEngine(t *testing.T, k int) (*ShardedEngine, *ParsedQuery) {
	t.Helper()
	c := WrapCorpus(corpus.GenHappyDB(120, 3))
	p, err := ParseQuery(`extract x:Str from "moments" if
		(/ROOT:{ a = //"ate", b = a/dobj, x = (b.subtree) } (b) eq (b))`)
	if err != nil {
		t.Fatal(err)
	}
	return NewShardedEngine(c, k, nil), p
}

// TestRunShardPrefixMerge: evaluating shard-at-a-time in shard order and
// merging the accumulated partials reproduces the fan-out result exactly —
// the invariant the server's job progress/partial-fetch design rests on.
func TestRunShardPrefixMerge(t *testing.T) {
	for _, k := range []int{1, 3} {
		eng, p := asyncTestEngine(t, k)
		want, err := eng.RunParsed(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Tuples) == 0 {
			t.Fatal("workload produced no tuples")
		}
		var parts []Partial
		for i := 0; i < eng.NumShards(); i++ {
			part, err := eng.RunShard(context.Background(), i, p, nil)
			if err != nil {
				t.Fatalf("shard %d: %v", i, err)
			}
			parts = append(parts, part)
			// Every completed prefix must merge cleanly (tuples in global
			// doc order, no duplicate attribution).
			prefix := MergePartials(parts)
			for j := 1; j < len(prefix.Tuples); j++ {
				if prefix.Tuples[j].Document < prefix.Tuples[j-1].Document {
					t.Fatalf("k=%d prefix %d: tuples out of document order", k, i)
				}
			}
		}
		got := MergePartials(parts)
		if !reflect.DeepEqual(got.Tuples, want.Tuples) {
			t.Fatalf("k=%d: shard-at-a-time merge differs from fan-out:\n got %v\nwant %v", k, got.Tuples, want.Tuples)
		}
		if got.Candidates != want.Candidates || got.Matched != want.Matched {
			t.Fatalf("k=%d: counts differ: %d/%d vs %d/%d", k, got.Candidates, got.Matched, want.Candidates, want.Matched)
		}
	}
}

// TestRunParsedEachOrderAndEquivalence: partials arrive in strict shard
// order and concatenate into the RunParsed result, with Workers > 1 inside
// shards so -race exercises the nested parallelism.
func TestRunParsedEachOrderAndEquivalence(t *testing.T) {
	for _, k := range []int{1, 3} {
		eng, p := asyncTestEngine(t, k)
		qo := &QueryOptions{Workers: 2}
		want, err := eng.RunParsed(p, qo)
		if err != nil {
			t.Fatal(err)
		}
		var parts []Partial
		next := 0
		err = eng.RunParsedEach(context.Background(), p, qo, func(shard int, part Partial) error {
			if shard != next {
				t.Fatalf("k=%d: shard %d delivered out of order (want %d)", k, shard, next)
			}
			next++
			parts = append(parts, part)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if next != eng.NumShards() {
			t.Fatalf("k=%d: delivered %d shards, want %d", k, next, eng.NumShards())
		}
		got := MergePartials(parts)
		if !reflect.DeepEqual(got.Tuples, want.Tuples) {
			t.Fatalf("k=%d: streamed partials differ from RunParsed", k)
		}
	}
}

// TestRunParsedEachCallbackError: an error from the consumer (a disconnected
// streaming client) cancels the remaining shards and surfaces as the return
// value; the call does not deliver further partials.
func TestRunParsedEachCallbackError(t *testing.T) {
	eng, p := asyncTestEngine(t, 3)
	boom := errors.New("client went away")
	calls := 0
	err := eng.RunParsedEach(context.Background(), p, nil, func(shard int, part Partial) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after erroring, want 1", calls)
	}
}

// TestCancelStopsEvaluation: a context cancelled before (and during) a run
// aborts it with ctx.Err instead of a result.
func TestCancelStopsEvaluation(t *testing.T) {
	eng, p := asyncTestEngine(t, 3)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RunParsedCtx(ctx, p, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunParsedCtx err = %v, want context.Canceled", err)
	}
	if _, err := eng.Shard(0).RunParsedCtx(ctx, p, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled plain-engine run err = %v, want context.Canceled", err)
	}
	err := eng.RunParsedEach(ctx, p, nil, func(int, Partial) error {
		t.Fatal("callback ran under a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunParsedEach err = %v, want context.Canceled", err)
	}

	// Cancel from inside the first delivery: later shards must not be
	// delivered and the call must return promptly (bounded by one shard's
	// remaining work, not the whole corpus).
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	delivered := 0
	done := make(chan error, 1)
	go func() {
		done <- eng.RunParsedEach(ctx2, p, nil, func(shard int, part Partial) error {
			delivered++
			cancel2()
			return nil
		})
	}()
	select {
	case err := <-done:
		if delivered < 1 {
			t.Fatalf("no shard delivered before cancellation (err=%v)", err)
		}
		// Either the remaining shards were cancelled (ctx error) or the
		// whole run had already finished — both leave no goroutines behind.
	case <-time.After(30 * time.Second):
		t.Fatal("RunParsedEach did not return after cancellation")
	}
}
