package koko

import (
	"fmt"

	"repro/internal/store"
)

// Placement maps each shard of a corpus to the worker nodes that can serve
// it, in preference order. It is the routing table of distributed
// execution: a coordinator evaluates shard i by asking Replicas[i][0]
// first and falling through the rest on failure.
type Placement struct {
	// Replicas[i] lists the base URLs of the nodes holding shard i.
	Replicas [][]string `json:"replicas"`
}

// NumShards returns how many shards the placement covers.
func (p Placement) NumShards() int { return len(p.Replicas) }

// Validate checks that the placement covers exactly `shards` shards and
// every shard has at least one replica.
func (p Placement) Validate(shards int) error {
	if len(p.Replicas) != shards {
		return fmt.Errorf("koko: placement covers %d shards, corpus has %d", len(p.Replicas), shards)
	}
	for i, r := range p.Replicas {
		if len(r) == 0 {
			return fmt.Errorf("koko: placement shard %d has no replicas", i)
		}
	}
	return nil
}

// BuildPlacement assigns shards to nodes round-robin with the given
// replication factor: shard i's primary is nodes[i % len(nodes)] and its
// replicas the following nodes in ring order. replicas is clamped to
// [1, len(nodes)].
func BuildPlacement(shards int, nodes []string, replicas int) Placement {
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(nodes) {
		replicas = len(nodes)
	}
	p := Placement{Replicas: make([][]string, shards)}
	for i := 0; i < shards; i++ {
		r := make([]string, 0, replicas)
		for k := 0; k < replicas; k++ {
			r = append(r, nodes[(i+k)%len(nodes)])
		}
		p.Replicas[i] = r
	}
	return p
}

// placementTable is the manifest table the placement persists into; one
// row per (shard, preference rank, node).
const placementTable = "PLACEMENT"

// SavePlacement writes a placement into an existing sharded manifest file
// (a .koko written by ShardedEngine.Save), replacing any placement already
// there, so the shard-to-node routing travels with the shard layout it
// routes. The placement must cover exactly the manifest's shard count.
func SavePlacement(path string, p Placement) error {
	db, err := store.Load(path)
	if err != nil {
		return fmt.Errorf("koko: load manifest %s: %w", path, err)
	}
	files, _, err := manifestShards(db)
	if err != nil {
		return err
	}
	if err := p.Validate(len(files)); err != nil {
		return err
	}
	if db.Table(placementTable) != nil {
		// The store has no table drop; rebuild the DB without the stale
		// placement rows. Manifests are tiny (a handful of rows per table).
		db = rewriteWithoutTable(db, placementTable)
	}
	t := db.Create(placementTable,
		store.Column{Name: "shard", Type: store.ColInt},
		store.Column{Name: "rank", Type: store.ColInt},
		store.Column{Name: "node", Type: store.ColString},
	)
	for shard, reps := range p.Replicas {
		for rank, node := range reps {
			t.MustInsert(store.IntVal(int64(shard)), store.IntVal(int64(rank)), store.StrVal(node))
		}
	}
	return db.Save(path)
}

// LoadPlacement reads the placement back from a manifest written by
// SavePlacement. ok is false when the manifest has no placement table.
func LoadPlacement(path string) (Placement, bool, error) {
	db, err := store.Load(path)
	if err != nil {
		return Placement{}, false, fmt.Errorf("koko: load manifest %s: %w", path, err)
	}
	t := db.Table(placementTable)
	if t == nil {
		return Placement{}, false, nil
	}
	var p Placement
	var scanErr error
	t.Scan(func(rid int, row []store.Value) bool {
		shard, rank, node := int(row[0].I), int(row[1].I), row[2].S
		if shard < 0 {
			scanErr = fmt.Errorf("koko: placement row with negative shard %d", shard)
			return false
		}
		for len(p.Replicas) <= shard {
			p.Replicas = append(p.Replicas, nil)
		}
		if rank != len(p.Replicas[shard]) {
			scanErr = fmt.Errorf("koko: placement shard %d ranks out of order", shard)
			return false
		}
		p.Replicas[shard] = append(p.Replicas[shard], node)
		return true
	})
	if scanErr != nil {
		return Placement{}, false, scanErr
	}
	return p, true, nil
}

// manifestShards resolves the shard file list of a manifest DB, failing on
// plain (unsharded) stores.
func manifestShards(db *store.DB) ([]string, []int, error) {
	t := db.Table("SHARDS")
	if t == nil {
		return nil, nil, fmt.Errorf("koko: store is not a sharded manifest (no SHARDS table)")
	}
	var files []string
	t.Scan(func(rid int, row []store.Value) bool {
		files = append(files, row[1].S)
		return true
	})
	return files, nil, nil
}

// rewriteWithoutTable copies every table of db except the named one into a
// fresh DB (the store has no in-place table drop). Manifest tables carry
// no secondary indexes, so row copies preserve everything.
func rewriteWithoutTable(db *store.DB, drop string) *store.DB {
	out := store.NewDB()
	for _, name := range db.TableNames() {
		if name == drop {
			continue
		}
		t := db.Table(name)
		nt := out.Create(name, t.Columns...)
		t.Scan(func(rid int, row []store.Value) bool {
			nt.MustInsert(row...)
			return true
		})
	}
	return out
}
