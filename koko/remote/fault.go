package remote

import (
	"math/rand"
	"sync"
	"time"
)

// FaultKind is one injected transport fault.
type FaultKind int

const (
	// FaultNone lets the attempt through untouched.
	FaultNone FaultKind = iota
	// FaultDrop black-holes the attempt: no request is sent and the caller
	// blocks until its per-attempt deadline fires (a dead TCP peer).
	FaultDrop
	// FaultDelay sleeps the attempt before sending (a slow worker).
	FaultDelay
	// FaultError fails the attempt immediately with a transport error
	// (connection reset).
	FaultError
	// FaultCorrupt delivers the response with its payload mangled, so the
	// coordinator's checksum verification must catch it.
	FaultCorrupt
)

// NodeFaults is one node's fault mix: independent probabilities per
// attempt, evaluated in Down, Drop, Error, Corrupt, Delay order (the first
// that fires wins; Delay composes with none of the terminal faults).
type NodeFaults struct {
	// Down forces every attempt to FaultDrop regardless of probabilities —
	// the injected equivalent of kill -9.
	Down bool
	// DropProb / ErrorProb / CorruptProb fire their fault with the given
	// probability per attempt (0..1).
	DropProb    float64
	ErrorProb   float64
	CorruptProb float64
	// DelayProb delays the attempt by Delay with the given probability.
	DelayProb float64
	Delay     time.Duration
}

// FaultPolicy injects deterministic, seeded faults per node into the
// Pool's transport. Tests and chaos drills configure it; production pools
// leave it nil. All methods are safe for concurrent use; the shared seeded
// source makes a single-goroutine decision sequence reproducible.
type FaultPolicy struct {
	mu    sync.Mutex
	rng   *rand.Rand
	nodes map[string]NodeFaults
}

// NewFaultPolicy builds an empty policy with a seeded decision source.
func NewFaultPolicy(seed int64) *FaultPolicy {
	return &FaultPolicy{rng: rand.New(rand.NewSource(seed)), nodes: map[string]NodeFaults{}}
}

// Set installs (or replaces) one node's fault mix, keyed by the node's
// base URL as the Engine's placement names it.
func (f *FaultPolicy) Set(node string, nf NodeFaults) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nodes[node] = nf
}

// Clear removes one node's fault mix (attempts to it run clean again).
func (f *FaultPolicy) Clear(node string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.nodes, node)
}

// Decide draws the fault for one attempt against node, with the delay to
// apply when the kind is FaultDelay.
func (f *FaultPolicy) Decide(node string) (FaultKind, time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	nf, ok := f.nodes[node]
	if !ok {
		return FaultNone, 0
	}
	if nf.Down {
		return FaultDrop, 0
	}
	// One draw per configured probability keeps the sequence deterministic
	// for a fixed seed and call order.
	if nf.DropProb > 0 && f.rng.Float64() < nf.DropProb {
		return FaultDrop, 0
	}
	if nf.ErrorProb > 0 && f.rng.Float64() < nf.ErrorProb {
		return FaultError, 0
	}
	if nf.CorruptProb > 0 && f.rng.Float64() < nf.CorruptProb {
		return FaultCorrupt, 0
	}
	if nf.DelayProb > 0 && f.rng.Float64() < nf.DelayProb {
		return FaultDelay, nf.Delay
	}
	return FaultNone, 0
}
