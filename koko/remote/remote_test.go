// The failure matrix: every way a worker can fail — dead at connect, dying
// mid-response, returning 500, exceeding the attempt deadline, returning a
// corrupt partial — crossed with {replica available, no replica}. With a
// replica the distributed result must stay byte-identical to a single-node
// run; without one the query must fail with the typed ErrShardUnavailable,
// never a hang or a wrong answer. The workers are real Services behind
// httptest, so the wire format, the worker handler, and the fault-tolerance
// ladder are all in the loop. (External test package: the workers come from
// internal/server, which itself imports this package.)
package remote_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/server"
	"repro/koko"
	"repro/koko/remote"
)

const cafeExtract = `
	extract x:Entity from "blogs" if ()
	satisfying x
	(str(x) contains "Cafe" {0.6}) or
	(x [["serves coffee"]] {0.3}) or
	(x [["hired barista"]] {0.3})
	with threshold 0.5`

const workerShards = 3

func cafesCorpus() *koko.Corpus {
	return koko.WrapCorpus(corpus.GenCafes(corpus.BaristaMagConfig(11)).Corpus)
}

// newWorker serves c as corpus "cafes" (sharded) over real HTTP.
func newWorker(t *testing.T, c *koko.Corpus) *httptest.Server {
	t.Helper()
	svc := server.NewService(server.Config{MaxConcurrent: 8})
	if err := svc.Registry().Register("cafes", koko.NewShardedEngine(c, workerShards, nil)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// flaky wraps a worker handler and sabotages shard-eval requests on demand.
type flaky struct {
	inner http.Handler
	mode  atomic.Value // "", "abort", "500", "slow"
	// failN, when positive, 500s that many shard-eval requests and then
	// serves cleanly — deterministic "fails then recovers".
	failN atomic.Int32
}

func (f *flaky) setMode(m string) { f.mode.Store(m) }

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	mode, _ := f.mode.Load().(string)
	if r.URL.Path == remote.EvalPath && f.failN.Load() > 0 && f.failN.Add(-1) >= 0 {
		http.Error(w, "injected transient error", http.StatusInternalServerError)
		return
	}
	if r.URL.Path != remote.EvalPath || mode == "" {
		f.inner.ServeHTTP(w, r)
		return
	}
	switch mode {
	case "abort":
		// Die mid-stream: a 200 header, half a JSON body, then the
		// connection snaps (http.ErrAbortHandler resets it).
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"result":{"tu`))
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	case "500":
		http.Error(w, "injected internal error", http.StatusInternalServerError)
	case "slow":
		// Exceed the attempt deadline; the client must give up first.
		time.Sleep(400 * time.Millisecond)
		http.Error(w, "too late", http.StatusInternalServerError)
	}
}

// newFlakyWorker is newWorker behind a sabotage wrapper.
func newFlakyWorker(t *testing.T, c *koko.Corpus) (*httptest.Server, *flaky) {
	t.Helper()
	svc := server.NewService(server.Config{MaxConcurrent: 8})
	if err := svc.Registry().Register("cafes", koko.NewShardedEngine(c, workerShards, nil)); err != nil {
		t.Fatal(err)
	}
	f := &flaky{inner: svc.Handler()}
	ts := httptest.NewServer(f)
	t.Cleanup(ts.Close)
	return ts, f
}

// placementOver routes every shard to the same replica list.
func placementOver(nodes ...string) koko.Placement {
	p := koko.Placement{Replicas: make([][]string, workerShards)}
	for i := range p.Replicas {
		p.Replicas[i] = append([]string(nil), nodes...)
	}
	return p
}

// newRemoteEngine assembles an Engine over the given nodes with fast-failure
// tuning (short attempts, tiny backoff, hedging off unless cfg overrides).
func newRemoteEngine(c *koko.Corpus, cfg remote.PoolConfig, nodes ...string) *remote.Engine {
	if cfg.AttemptTimeout == 0 {
		cfg.AttemptTimeout = 150 * time.Millisecond
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = -1
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 5 * time.Millisecond
	}
	pool := remote.NewPool(cfg)
	return remote.NewEngine(pool, remote.EngineConfig{
		Corpus:    "cafes",
		Placement: placementOver(nodes...),
		Meta: remote.Meta{
			Generation: 1, // each worker Registers once, so both serve gen 1
			Documents:  c.NumDocuments(),
			Sentences:  c.NumSentences(),
		},
	})
}

// sameResult compares everything except timing.
func sameResult(t *testing.T, label string, want, got *koko.Result) {
	t.Helper()
	if want.Candidates != got.Candidates || want.Matched != got.Matched {
		t.Errorf("%s: candidates/matched = %d/%d, want %d/%d",
			label, got.Candidates, got.Matched, want.Candidates, want.Matched)
	}
	if len(want.Tuples) != len(got.Tuples) {
		t.Fatalf("%s: %d tuples, want %d", label, len(got.Tuples), len(want.Tuples))
	}
	for i := range want.Tuples {
		if !reflect.DeepEqual(want.Tuples[i], got.Tuples[i]) {
			t.Fatalf("%s: tuple %d differs:\n got %+v\nwant %+v", label, i, got.Tuples[i], want.Tuples[i])
		}
	}
}

func TestFailureMatrix(t *testing.T) {
	c := cafesCorpus()
	ref, err := koko.NewEngine(c, nil).Query(cafeExtract)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Tuples) == 0 {
		t.Fatal("reference workload produces no tuples; matrix is vacuous")
	}

	modes := []string{"dead-at-connect", "mid-stream-abort", "status-500", "deadline-exceeded", "corrupt-partial"}
	for _, mode := range modes {
		for _, withReplica := range []bool{true, false} {
			name := mode + "/no-replica"
			if withReplica {
				name = mode + "/replica"
			}
			t.Run(name, func(t *testing.T) {
				var cfg remote.PoolConfig
				// The faulty node, per mode.
				var faultyURL string
				switch mode {
				case "dead-at-connect":
					dead := newWorker(t, c)
					faultyURL = dead.URL
					dead.Close() // connection refused from the first attempt
				case "corrupt-partial":
					w := newWorker(t, c)
					faultyURL = w.URL
					fp := remote.NewFaultPolicy(42)
					fp.Set(faultyURL, remote.NodeFaults{CorruptProb: 1})
					cfg.Fault = fp
				default:
					w, f := newFlakyWorker(t, c)
					faultyURL = w.URL
					switch mode {
					case "mid-stream-abort":
						f.setMode("abort")
					case "status-500":
						f.setMode("500")
					case "deadline-exceeded":
						f.setMode("slow")
					}
				}

				nodes := []string{faultyURL}
				if withReplica {
					nodes = append(nodes, newWorker(t, c).URL)
				}
				eng := newRemoteEngine(c, cfg, nodes...)
				res, err := eng.Query(cafeExtract)
				if withReplica {
					if err != nil {
						t.Fatalf("with a replica the query must survive %s: %v", mode, err)
					}
					sameResult(t, mode, ref, res)
					return
				}
				if err == nil {
					t.Fatalf("without a replica %s must fail, got %d tuples", mode, len(res.Tuples))
				}
				if !errors.Is(err, remote.ErrShardUnavailable) {
					t.Fatalf("error is not ErrShardUnavailable: %v", err)
				}
				var su *remote.ShardUnavailableError
				if !errors.As(err, &su) {
					t.Fatalf("error does not carry *ShardUnavailableError: %v", err)
				}
				if su.Attempts < 2 {
					t.Errorf("gave up after %d attempts, want retries", su.Attempts)
				}
				if mode == "corrupt-partial" && !errors.Is(err, remote.ErrCorruptPartial) {
					t.Errorf("corrupt partial should surface ErrCorruptPartial: %v", err)
				}
			})
		}
	}
}

// TestRetryCountersAndRecovery: a node that 500s a few times then recovers
// — the query must succeed via retries on the same node set and the
// counters must show the attempts.
func TestRetryCountersAndRecovery(t *testing.T) {
	c := cafesCorpus()
	w, f := newFlakyWorker(t, c)
	eng := newRemoteEngine(c, remote.PoolConfig{MaxAttempts: 4, BreakerThreshold: 100}, w.URL)

	ref, err := koko.NewEngine(c, nil).Query(cafeExtract)
	if err != nil {
		t.Fatal(err)
	}
	f.failN.Store(2) // first two shard evals 500, then the worker is healthy
	res, err := eng.Query(cafeExtract)
	if err != nil {
		t.Fatalf("query did not recover: %v", err)
	}
	sameResult(t, "recovered", ref, res)
	ctrs := enginePoolCounters(eng)
	if ctrs.Attempts.Load() <= int64(workerShards) {
		t.Errorf("attempts = %d, want more than one per shard", ctrs.Attempts.Load())
	}
	if ctrs.Retries.Load() == 0 {
		t.Error("retries counter stayed 0 despite injected failures")
	}
}

// TestHedgingCutsTailLatency: the primary replica of some shards delays
// every attempt far beyond the hedge threshold; the hedge must win on the
// other replica, keep the result byte-identical, and finish well before the
// injected delay.
func TestHedgingCutsTailLatency(t *testing.T) {
	c := cafesCorpus()
	slow := newWorker(t, c)
	fast := newWorker(t, c)
	fp := remote.NewFaultPolicy(7)
	fp.Set(slow.URL, remote.NodeFaults{DelayProb: 1, Delay: 2 * time.Second})
	eng := newRemoteEngine(c, remote.PoolConfig{
		AttemptTimeout: 5 * time.Second,
		HedgeAfter:     20 * time.Millisecond,
		Fault:          fp,
	}, slow.URL, fast.URL)

	ref, err := koko.NewEngine(c, nil).Query(cafeExtract)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	res, err := eng.Query(cafeExtract)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed > 1500*time.Millisecond {
		t.Errorf("hedged query took %s; the 2s injected delay leaked into the critical path", elapsed)
	}
	sameResult(t, "hedged", ref, res)
	ctrs := enginePoolCounters(eng)
	if ctrs.HedgesFired.Load() == 0 {
		t.Error("no hedges fired despite a 2s-slow primary and a 20ms threshold")
	}
	if ctrs.HedgeWins.Load() == 0 {
		t.Error("no hedge wins recorded")
	}
}

// TestBreakerTripsAndRecovers: enough consecutive failures open the node's
// breaker (counted), and after the cooloff a half-open probe lets a
// recovered node serve again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	c := cafesCorpus()
	w, f := newFlakyWorker(t, c)
	f.setMode("500")
	eng := newRemoteEngine(c, remote.PoolConfig{
		MaxAttempts:      2,
		BreakerThreshold: 2,
		BreakerCooloff:   50 * time.Millisecond,
	}, w.URL)

	if _, err := eng.Query(cafeExtract); !errors.Is(err, remote.ErrShardUnavailable) {
		t.Fatalf("want ErrShardUnavailable while the worker 500s, got %v", err)
	}
	ctrs := enginePoolCounters(eng)
	if ctrs.BreakerOpen.Load() == 0 {
		t.Fatal("breaker never opened despite consecutive failures")
	}

	f.setMode("")
	time.Sleep(60 * time.Millisecond) // past the cooloff: half-open admits a probe
	ref, err := koko.NewEngine(c, nil).Query(cafeExtract)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(cafeExtract)
	if err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
	sameResult(t, "post-breaker", ref, res)
}

// TestDegradedExecution: with one shard's only replica dead, the degraded
// path returns the surviving shards' tuples (exact global attribution) and
// names the failed shard; with every replica dead it errors.
func TestDegradedExecution(t *testing.T) {
	c := cafesCorpus()
	alive := newWorker(t, c)
	dead := newWorker(t, c)
	dead.Close()

	pool := remote.NewPool(remote.PoolConfig{
		AttemptTimeout: 150 * time.Millisecond, MaxAttempts: 2,
		HedgeAfter: -1, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond,
	})
	pl := placementOver(alive.URL)
	pl.Replicas[1] = []string{dead.URL} // shard 1 has no surviving replica
	eng := remote.NewEngine(pool, remote.EngineConfig{
		Corpus: "cafes", Placement: pl,
		Meta: remote.Meta{Generation: 1, Documents: c.NumDocuments(), Sentences: c.NumSentences()},
	})

	p, err := koko.ParseQuery(cafeExtract)
	if err != nil {
		t.Fatal(err)
	}
	res, failed, err := eng.RunParsedDegraded(context.Background(), p, nil)
	if err != nil {
		t.Fatalf("degraded run failed outright: %v", err)
	}
	if len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("failed shards = %v, want [1]", failed)
	}
	ref, err := koko.NewEngine(c, nil).Query(cafeExtract)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) == 0 || len(res.Tuples) >= len(ref.Tuples) {
		t.Fatalf("degraded result has %d tuples; want a non-empty strict subset of %d", len(res.Tuples), len(ref.Tuples))
	}
	// Every surviving tuple must appear in the reference with the exact same
	// global attribution — degradation drops shards, it never shifts them.
	for _, tu := range res.Tuples {
		found := false
		for _, rt := range ref.Tuples {
			if reflect.DeepEqual(tu, rt) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("degraded tuple %+v not in the reference result", tu)
		}
	}

	// All replicas dead: no partial answer to give.
	allDead := remote.NewEngine(pool, remote.EngineConfig{
		Corpus: "cafes", Placement: placementOver(dead.URL),
		Meta: remote.Meta{Generation: 1, Documents: c.NumDocuments(), Sentences: c.NumSentences()},
	})
	if _, failed, err := allDead.RunParsedDegraded(context.Background(), p, nil); err == nil {
		t.Fatalf("all-shards-dead degraded run returned failed=%v and no error", failed)
	}
}

// TestChunkedSlowConsumerDoesNotTripIdleTimeout: the chunked attempt's idle
// deadline bounds network idleness, not consumer pacing. An emit that
// blocks far past AttemptTimeout — an ordered merge holding the shard's
// delivery turn, or a paused NDJSON client — must not cancel the attempt,
// burn retries, or charge the node's breaker; before the deadline was
// suspended around emit, this exact scenario failed whole queries with
// ErrShardUnavailable. The worker is hand-rolled so the stream is provably
// still open while emit sleeps: it holds the remaining lines until the
// consumer signals its slow emit returned, so they cannot pre-buffer on the
// client and hide the cancellation.
func TestChunkedSlowConsumerDoesNotTripIdleTimeout(t *testing.T) {
	batch1 := []koko.Tuple{{SentenceID: 1, Document: 0, Values: []string{"Cafe Vita"}}}
	batch2 := []koko.Tuple{{SentenceID: 2, Document: 0, Values: []string{"Cafe Ladro"}}}
	emitted := make(chan struct{}, 4) // a retrying client may signal more than once
	mux := http.NewServeMux()
	mux.HandleFunc(remote.EvalPath, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		fl := w.(http.Flusher)
		enc.Encode(remote.ChunkLine{Tuples: batch1, Checksum: remote.TuplesChecksum(batch1)})
		fl.Flush()
		select {
		case <-emitted: // the consumer's slow emit has returned
		case <-r.Context().Done():
			return // the idle timer killed the attempt mid-emit: the regression
		}
		enc.Encode(remote.ChunkLine{Tuples: batch2, Checksum: remote.TuplesChecksum(batch2)})
		enc.Encode(remote.ChunkLine{Done: &remote.ChunkDone{
			Summary:    &koko.Result{Candidates: 2, Matched: 2},
			Tuples:     2,
			Generation: 1,
			Checksum:   remote.CountersChecksum(2, 2, 2),
		}})
		fl.Flush()
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	const attemptTimeout = 100 * time.Millisecond
	pool := remote.NewPool(remote.PoolConfig{
		AttemptTimeout: attemptTimeout, HedgeAfter: -1,
		BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond,
	})
	eng := remote.NewEngine(pool, remote.EngineConfig{
		Corpus:    "cafes",
		Placement: koko.Placement{Replicas: [][]string{{ts.URL}}},
		Meta:      remote.Meta{Generation: 1},
	})
	p, err := koko.ParseQuery(cafeExtract)
	if err != nil {
		t.Fatal(err)
	}
	total, slept := 0, false
	_, err = eng.StreamShard(context.Background(), 0, p, nil, func(tuples []koko.Tuple) error {
		if !slept {
			slept = true
			time.Sleep(4 * attemptTimeout) // pure consumer pacing, >> the idle deadline
			emitted <- struct{}{}
		}
		total += len(tuples)
		return nil
	})
	if err != nil {
		t.Fatalf("slow consumer tripped the attempt: %v", err)
	}
	if total != 2 {
		t.Fatalf("streamed %d tuples, want 2", total)
	}
	ctrs := pool.Counters()
	if got := ctrs.Attempts.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1: consumer pacing must not burn attempts", got)
	}
	if got := ctrs.Retries.Load(); got != 0 {
		t.Errorf("retries = %d, want 0", got)
	}
	if got := ctrs.BreakerOpen.Load(); got != 0 {
		t.Errorf("breaker opened %d times under a slow consumer", got)
	}
}

// TestGenerationPinning: an engine pinned to a generation the workers do not
// serve must fail cleanly rather than merge mismatched snapshots.
func TestGenerationPinning(t *testing.T) {
	c := cafesCorpus()
	w := newWorker(t, c)
	pool := remote.NewPool(remote.PoolConfig{
		AttemptTimeout: 150 * time.Millisecond, MaxAttempts: 2,
		HedgeAfter: -1, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond,
	})
	eng := remote.NewEngine(pool, remote.EngineConfig{
		Corpus: "cafes", Placement: placementOver(w.URL),
		Meta: remote.Meta{Generation: 99, Documents: c.NumDocuments(), Sentences: c.NumSentences()},
	})
	_, err := eng.Query(cafeExtract)
	if !errors.Is(err, remote.ErrShardUnavailable) {
		t.Fatalf("want ErrShardUnavailable for a moved generation, got %v", err)
	}
	if !strings.Contains(err.Error(), "generation") {
		t.Errorf("error does not name the generation mismatch: %v", err)
	}
}

// TestHealthChecksFlipNodes: active pings mark a dead node down (counted)
// and a recovered node back up.
func TestHealthChecksFlipNodes(t *testing.T) {
	c := cafesCorpus()
	w := newWorker(t, c)
	eng := newRemoteEngine(c, remote.PoolConfig{HealthFails: 2}, w.URL)
	pool := enginePool(eng)
	node := pool.Node(w.URL)
	if !node.Up() {
		t.Fatal("fresh node should start up")
	}
	w.Close()
	pool.CheckHealth(context.Background())
	pool.CheckHealth(context.Background())
	if node.Up() {
		t.Fatal("node still up after consecutive failed pings")
	}
	if enginePoolCounters(eng).NodeUnhealthy.Load() != 1 {
		t.Errorf("node_unhealthy = %d, want 1 transition", enginePoolCounters(eng).NodeUnhealthy.Load())
	}
}

// TestFaultPolicyDeterminism: one seed, one decision sequence.
func TestFaultPolicyDeterminism(t *testing.T) {
	mk := func() *remote.FaultPolicy {
		fp := remote.NewFaultPolicy(1234)
		fp.Set("a", remote.NodeFaults{DropProb: 0.3, ErrorProb: 0.3, CorruptProb: 0.2})
		return fp
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		ka, _ := a.Decide("a")
		kb, _ := b.Decide("a")
		if ka != kb {
			t.Fatalf("decision %d diverged: %v vs %v", i, ka, kb)
		}
	}
}

// TestPartialChecksum: stable for equal content, sensitive to every
// merge-relevant field, nil-safe.
func TestPartialChecksum(t *testing.T) {
	res := &koko.Result{
		Candidates: 5, Matched: 2,
		Tuples: []koko.Tuple{{
			SentenceID: 3, Document: 1, Values: []string{"Cafe Vita"},
			Scores: map[string]float64{"x": 0.7},
		}},
	}
	base := remote.PartialChecksum(res)
	if remote.PartialChecksum(res) != base {
		t.Fatal("checksum not deterministic")
	}
	mutations := []func(*koko.Result){
		func(r *koko.Result) { r.Candidates++ },
		func(r *koko.Result) { r.Matched++ },
		func(r *koko.Result) { r.Tuples[0].SentenceID++ },
		func(r *koko.Result) { r.Tuples[0].Values[0] = "Cafe Vitb" },
		func(r *koko.Result) { r.Tuples[0].Scores["x"] = 0.8 },
		func(r *koko.Result) { r.Tuples = nil },
	}
	for i, mutate := range mutations {
		clone := *res
		clone.Tuples = []koko.Tuple{{
			SentenceID: 3, Document: 1, Values: []string{"Cafe Vita"},
			Scores: map[string]float64{"x": 0.7},
		}}
		mutate(&clone)
		if remote.PartialChecksum(&clone) == base {
			t.Errorf("mutation %d not reflected in checksum", i)
		}
	}
	if remote.PartialChecksum(nil) == base {
		t.Error("nil result hashes like a populated one")
	}
}

func enginePool(e *remote.Engine) *remote.Pool { return e.Pool() }

func enginePoolCounters(e *remote.Engine) *remote.Counters {
	return enginePool(e).Counters()
}
