// Package remote makes a shard set served by other kokod processes look
// like a local koko.Querier: an Engine fans RunShard calls out over HTTP to
// worker nodes (POST /v1/internal/shard-eval) and merges the partials with
// the same ordered merge a local sharded engine uses, so a distributed run
// is byte-identical to a single-node one.
//
// The package is dominated by its fault-tolerance layer, because the hard
// part of distribution is not the RPC but surviving slow, dead, and
// flapping workers:
//
//   - per-node health state flipped by consecutive ping failures
//     (Pool.HealthLoop), so dead nodes stop being first choice;
//   - per-attempt deadlines with retry + exponential backoff + jitter
//     against the shard's replica placement (Engine.RunShard);
//   - hedged requests: after a latency threshold (fixed, or adaptive from
//     the node's observed p95) a second attempt races on another replica
//     and the first success wins;
//   - a per-node circuit breaker (closed / open / half-open single probe)
//     that sheds load from flapping workers;
//   - opt-in graceful degradation (koko.QueryOptions.Degraded) streaming
//     the surviving shards' tuples plus the failed shard list instead of
//     failing the whole query;
//   - a deterministic, seeded fault-injection hook (FaultPolicy) threaded
//     through the transport so tests and chaos drills can drop, delay,
//     error, and corrupt per node without touching the network stack.
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"sort"

	"repro/koko"
)

// EvalPath is the worker-side shard evaluation endpoint an Engine posts to
// (relative to a node's base URL).
const EvalPath = "/v1/internal/shard-eval"

// ShardEvalRequest asks a worker to evaluate one shard of a named corpus.
type ShardEvalRequest struct {
	Corpus string `json:"corpus"`
	Shard  int    `json:"shard"`
	// Query is the canonical query text (the coordinator parses once for
	// cache keying, the worker re-parses; canonicalization keeps the two in
	// agreement).
	Query   string `json:"query"`
	Explain bool   `json:"explain,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// Plan overrides the worker's planner setting ("on", "off", or ""
	// to inherit), mirroring koko.QueryOptions.Plan.
	Plan string `json:"plan,omitempty"`
	// Generation, when non-zero, pins the snapshot generation the
	// coordinator discovered: a worker whose corpus has moved on answers
	// 409 rather than silently evaluating different data.
	Generation uint64 `json:"generation,omitempty"`
	// Chunk asks for streamed delivery: the worker answers with NDJSON
	// ChunkLines (bounded tuple batches as they are evaluated, then a
	// terminal done line) instead of one buffered ShardEvalResponse, so a
	// giant shard result never materializes on the worker.
	Chunk bool `json:"chunk,omitempty"`
	// Skip, with Chunk, omits the first Skip tuples of the shard's stream —
	// the retry-resume protocol: evaluation is deterministic and generation
	// pinning fixes the data, so a replica re-evaluating the shard produces
	// the identical tuple sequence and the coordinator can resume exactly
	// after the prefix it already delivered downstream.
	Skip int `json:"skip,omitempty"`
}

// ShardEvalResponse is one shard's partial result plus the offsets that
// rebase it into the global corpus (the fields of koko.Partial, flattened
// for the wire) and a checksum the coordinator verifies before merging.
type ShardEvalResponse struct {
	Result     *koko.Result `json:"result"`
	DocOffset  int          `json:"doc_offset"`
	SentOffset int          `json:"sent_offset"`
	Generation uint64       `json:"generation"`
	// Checksum is PartialChecksum(Result): end-to-end corruption detection
	// for the tuple payload, independent of TCP's per-segment checks.
	Checksum uint64 `json:"checksum"`
}

// ChunkLine is one NDJSON line of a chunked shard-eval response. Exactly
// one field is set: a tuple batch (with its own checksum, verified before
// the batch is released downstream), the terminal done line, or a terminal
// error rendered after the 200 status line was already committed.
type ChunkLine struct {
	Tuples []koko.Tuple `json:"tuples,omitempty"`
	// Checksum is TuplesChecksum(Tuples): per-batch corruption detection, so
	// a corrupt batch fails the attempt before any of its tuples escape to
	// the coordinator's merge.
	Checksum uint64     `json:"checksum,omitempty"`
	Done     *ChunkDone `json:"done,omitempty"`
	Error    string     `json:"error,omitempty"`
}

// ChunkDone is the terminal line of a chunked shard-eval response.
type ChunkDone struct {
	// Summary is the shard's counters-only result (no tuples — they already
	// streamed), in the same form StreamShard returns.
	Summary *koko.Result `json:"summary"`
	// Tuples counts the tuples sent in this response (after Skip).
	Tuples     int    `json:"tuples"`
	Generation uint64 `json:"generation"`
	// Checksum is CountersChecksum over the summary counters and Tuples —
	// the end-of-stream cross-check pairing the per-batch checksums.
	Checksum uint64 `json:"checksum"`
}

// hashTuples folds the merge-relevant content of a tuple batch — ids,
// values, scores, evidence — into h, in order.
func hashTuples(h hash.Hash64, ts []koko.Tuple) {
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeFloat := func(f float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	for _, t := range ts {
		writeInt(int64(t.SentenceID))
		writeInt(int64(t.Document))
		writeInt(int64(len(t.Values)))
		for _, v := range t.Values {
			h.Write([]byte(v))
			h.Write([]byte{0})
		}
		if len(t.Scores) > 0 {
			keys := make([]string, 0, len(t.Scores))
			for k := range t.Scores {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				h.Write([]byte(k))
				h.Write([]byte{0})
				writeFloat(t.Scores[k])
			}
		}
		writeInt(int64(len(t.Evidence)))
		for _, ev := range t.Evidence {
			h.Write([]byte(ev.Variable))
			h.Write([]byte{0})
			h.Write([]byte(ev.Condition))
			h.Write([]byte{0})
			writeFloat(ev.Weight)
			writeFloat(ev.Confidence)
			writeFloat(ev.Contribution)
		}
	}
}

// TuplesChecksum hashes one chunk's tuple batch with FNV-1a. Workers stamp
// it on every ChunkLine; the coordinator verifies before releasing the
// batch downstream.
func TuplesChecksum(ts []koko.Tuple) uint64 {
	h := fnv.New64a()
	hashTuples(h, ts)
	return h.Sum64()
}

// CountersChecksum hashes a chunked response's end-of-stream accounting:
// the candidate/match counters and the number of tuples sent.
func CountersChecksum(candidates, matched, tuples int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range []int{candidates, matched, tuples} {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// PartialChecksum hashes the merge-relevant content of a shard result —
// tuple ids, values, scores, evidence shape, and the candidate/match
// counts — with FNV-1a. Workers stamp it on every response and the
// coordinator recomputes it after decoding; a mismatch is treated like any
// other attempt failure and retried on a replica.
func PartialChecksum(res *koko.Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	if res == nil {
		return h.Sum64()
	}
	writeInt(int64(res.Candidates))
	writeInt(int64(res.Matched))
	writeInt(int64(len(res.Tuples)))
	hashTuples(h, res.Tuples)
	return h.Sum64()
}

// ErrShardUnavailable marks a shard whose every replica (across all retry
// attempts) failed. Callers match it with errors.Is; the concrete error is
// a *ShardUnavailableError carrying the last per-attempt failure.
var ErrShardUnavailable = errors.New("shard unavailable")

// ErrCorruptPartial marks a shard response whose recomputed checksum
// disagreed with the one the worker stamped — the attempt-level failure
// that corruption detection turns into a retry.
var ErrCorruptPartial = errors.New("corrupt shard partial")

// ShardUnavailableError is the typed terminal failure of Engine.RunShard:
// every replica of the shard failed on every attempt.
type ShardUnavailableError struct {
	Corpus   string
	Shard    int
	Attempts int
	// Last is the final attempt's error (the proximate cause).
	Last error
}

func (e *ShardUnavailableError) Error() string {
	return fmt.Sprintf("corpus %q shard %d unavailable after %d attempts: %v",
		e.Corpus, e.Shard, e.Attempts, e.Last)
}

// Is makes errors.Is(err, ErrShardUnavailable) match.
func (e *ShardUnavailableError) Is(target error) bool { return target == ErrShardUnavailable }

// Unwrap exposes the last attempt's error for errors.Is/As chains.
func (e *ShardUnavailableError) Unwrap() error { return e.Last }
