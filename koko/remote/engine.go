package remote

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/koko"
)

// Meta is the shape of a remote corpus as discovered from its workers:
// enough for the coordinator to answer stats and size questions without a
// round trip per call.
type Meta struct {
	// Generation pins the worker-side snapshot generation every shard-eval
	// carries (0 = unpinned).
	Generation uint64
	Documents  int
	Sentences  int
	Shards     []koko.ShardStat
}

// EngineConfig assembles a remote Engine.
type EngineConfig struct {
	// Corpus is the corpus name as the workers register it.
	Corpus string
	// Placement routes each shard to its replica nodes (preference order).
	Placement koko.Placement
	// Meta is the discovered corpus shape (zero value: sizes and stats
	// report empty; generation is unpinned).
	Meta Meta
	// Parallel bounds the per-query shard fan-out (0 = min(shards,
	// GOMAXPROCS), like a local sharded engine).
	Parallel int
}

// Engine is a koko.Querier whose shards evaluate on remote kokod workers:
// the coordinator side of distributed execution. Each RunShard call walks
// the shard's replica placement with per-attempt deadlines, exponential
// backoff + jitter between attempts, hedged requests after a latency
// threshold, and the pool's per-node breaker/health state deciding which
// replica to try first. Results merge through the same koko.MergePartials
// path as local shards, so a distributed query is byte-identical to a
// single-node run. Safe for concurrent use.
type Engine struct {
	pool      *Pool
	corpus    string
	placement koko.Placement
	meta      Meta
	parallel  atomic.Int32
}

var _ koko.Querier = (*Engine)(nil)

// NewEngine builds a remote engine over pool. Every node named in the
// placement is registered with the pool so health checks cover it.
func NewEngine(pool *Pool, cfg EngineConfig) *Engine {
	e := &Engine{pool: pool, corpus: cfg.Corpus, placement: cfg.Placement, meta: cfg.Meta}
	par := cfg.Parallel
	if par < 1 {
		if par = len(cfg.Placement.Replicas); par > runtime.GOMAXPROCS(0) {
			par = runtime.GOMAXPROCS(0)
		}
		if par < 1 {
			par = 1
		}
	}
	e.parallel.Store(int32(par))
	for _, reps := range cfg.Placement.Replicas {
		for _, addr := range reps {
			pool.Node(addr)
		}
	}
	return e
}

// Corpus returns the remote corpus name.
func (e *Engine) Corpus() string { return e.corpus }

// Pool returns the fault-tolerance pool the engine evaluates through
// (shared across every engine on one coordinator).
func (e *Engine) Pool() *Pool { return e.pool }

// Placement returns the shard-to-node routing table.
func (e *Engine) Placement() koko.Placement { return e.placement }

// Parallelism reports the per-query shard fan-out bound.
func (e *Engine) Parallelism() int { return int(e.parallel.Load()) }

// SetParallelism bounds how many shards evaluate concurrently per query.
func (e *Engine) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	e.parallel.Store(int32(n))
}

// NumShards returns the placement's shard count.
func (e *Engine) NumShards() int { return len(e.placement.Replicas) }

// NumDocuments reports the discovered corpus document count.
func (e *Engine) NumDocuments() int { return e.meta.Documents }

// NumSentences reports the discovered corpus sentence count.
func (e *Engine) NumSentences() int { return e.meta.Sentences }

// DocumentName is not resolvable without a round trip; remote engines
// report "" (the same out-of-range answer local engines give).
func (e *Engine) DocumentName(i int) string { return "" }

// Stats aggregates the discovered per-shard index statistics.
func (e *Engine) Stats() koko.IndexStats { return koko.MergeShardStats(e.meta.Shards) }

// ShardStats returns the discovered per-shard statistics.
func (e *Engine) ShardStats() []koko.ShardStat {
	return append([]koko.ShardStat(nil), e.meta.Shards...)
}

// Save is unsupported: a remote engine is a routing view over state owned
// by the workers.
func (e *Engine) Save(path string) error {
	return fmt.Errorf("remote: corpus %q is served by remote workers; save it there", e.corpus)
}

// Query parses and evaluates a KOKO query across all remote shards.
func (e *Engine) Query(src string) (*koko.Result, error) { return e.QueryWith(src, nil) }

// QueryWith parses and evaluates with per-query overrides (qo may be nil).
//
// Deprecated: parse with koko.ParseQuery and evaluate with Run.
func (e *Engine) QueryWith(src string, qo *koko.QueryOptions) (*koko.Result, error) {
	p, err := koko.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return e.RunParsed(p, qo)
}

// Run fans an already-parsed query out across remote shards (bounded by the
// engine's parallelism) as a lazy stream: each shard's worker delivers
// chunked batches over /v1/internal/shard-eval, and the coordinator's
// ordered merge releases them in global document order — a giant result
// never materializes on worker or coordinator. With qo.Degraded, a shard
// whose every replica fails yields a Failed marker instead of failing the
// stream. Safe for concurrent use.
func (e *Engine) Run(ctx context.Context, p *koko.ParsedQuery, qo *koko.QueryOptions) (*koko.TupleSeq, error) {
	degraded := qo != nil && qo.Degraded
	return koko.StreamShards(ctx, e.NumShards(), int(e.parallel.Load()),
		func(ctx context.Context, shard int, emit func([]koko.Tuple) error) (*koko.Result, error) {
			return e.StreamShard(ctx, shard, p, qo, emit)
		}, degraded), nil
}

// RunParsed fans an already-parsed query out to every remote shard and
// merges the partials in document order.
//
// Deprecated: use Run with TupleSeq.Collect.
func (e *Engine) RunParsed(p *koko.ParsedQuery, qo *koko.QueryOptions) (*koko.Result, error) {
	return e.RunParsedCtx(context.Background(), p, qo)
}

// RunParsedCtx fans out like RunParsed but honors ctx. Elapsed reports the
// fan-out's wall time; phase times sum worker-side CPU as with local
// shards.
//
// Deprecated: use Run with TupleSeq.Collect.
func (e *Engine) RunParsedCtx(ctx context.Context, p *koko.ParsedQuery, qo *koko.QueryOptions) (*koko.Result, error) {
	seq, err := e.Run(ctx, p, qo)
	if err != nil {
		return nil, err
	}
	return seq.Collect()
}

// request renders the wire request for one shard.
func (e *Engine) request(shard int, p *koko.ParsedQuery, qo *koko.QueryOptions) *ShardEvalRequest {
	req := &ShardEvalRequest{
		Corpus:     e.corpus,
		Shard:      shard,
		Query:      p.Canonical(),
		Generation: e.meta.Generation,
	}
	if qo != nil {
		req.Explain = qo.Explain
		req.Workers = qo.Workers
		req.Plan = qo.Plan
	}
	return req
}

// RunShard evaluates one shard remotely: up to MaxAttempts tries across
// the shard's replicas (rotating the starting replica by attempt), each
// bounded by the per-attempt deadline, with jittered exponential backoff
// between tries and a hedged second request racing on another replica once
// the hedge threshold passes. Exhausting every attempt yields a typed
// *ShardUnavailableError (errors.Is(err, ErrShardUnavailable)).
func (e *Engine) RunShard(ctx context.Context, shard int, p *koko.ParsedQuery, qo *koko.QueryOptions) (koko.Partial, error) {
	if shard < 0 || shard >= e.NumShards() {
		return koko.Partial{}, fmt.Errorf("remote: shard %d out of range (corpus %q has %d)", shard, e.corpus, e.NumShards())
	}
	req := e.request(shard, p, qo)
	max := e.pool.cfg.MaxAttempts
	var lastErr error
	for try := 0; try < max; try++ {
		if try > 0 {
			e.pool.counters.Retries.Add(1)
			select {
			case <-time.After(e.pool.backoffFor(try)):
			case <-ctx.Done():
				return koko.Partial{}, ctx.Err()
			}
		}
		resp, err := e.evalAttempt(ctx, shard, try, req)
		if err == nil {
			return koko.Partial{Res: resp.Result, DocOffset: resp.DocOffset, SentOffset: resp.SentOffset}, nil
		}
		if ctx.Err() != nil {
			// The caller gave up; that is a cancellation, not shard death.
			return koko.Partial{}, ctx.Err()
		}
		lastErr = err
	}
	return koko.Partial{}, &ShardUnavailableError{Corpus: e.corpus, Shard: shard, Attempts: max, Last: lastErr}
}

// pickNode selects the replica to try for (shard, rotation), preferring
// nodes that are up with a willing breaker; when none qualifies it falls
// back to any replica (a query beats a guess — health and breaker state
// lag reality), still honoring exclude. Returns nil only when every
// replica is excluded.
func (e *Engine) pickNode(shard, rot int, exclude *nodeState) *nodeState {
	reps := e.placement.Replicas[shard]
	now := time.Now()
	var fallback *nodeState
	for k := 0; k < len(reps); k++ {
		n := e.pool.Node(reps[(rot+k)%len(reps)])
		if n == exclude {
			continue
		}
		if n.Up() && n.tryAcquire(now) {
			return n
		}
		if fallback == nil {
			fallback = n
		}
	}
	return fallback
}

// evalAttempt runs one try of a shard: a primary attempt, plus a hedged
// attempt on a different replica if the hedge threshold passes first. The
// first success wins and cancels the loser; both failing returns the last
// error.
func (e *Engine) evalAttempt(ctx context.Context, shard, rot int, req *ShardEvalRequest) (*ShardEvalResponse, error) {
	primary := e.pickNode(shard, rot, nil)
	if primary == nil {
		return nil, fmt.Errorf("remote: corpus %q shard %d has no replica to try", e.corpus, shard)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		resp  *ShardEvalResponse
		err   error
		hedge bool
	}
	ch := make(chan outcome, 2) // buffered: a losing attempt must not leak its goroutine
	launch := func(n *nodeState, hedge bool) {
		go func() {
			resp, err := e.pool.EvalShard(cctx, n, req)
			ch <- outcome{resp: resp, err: err, hedge: hedge}
		}()
	}
	launch(primary, false)
	inFlight := 1
	var hedgeC <-chan time.Time
	if d, ok := e.pool.hedgeDelay(primary); ok {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	for inFlight > 0 {
		select {
		case o := <-ch:
			inFlight--
			if o.err == nil {
				if o.hedge {
					e.pool.counters.HedgeWins.Add(1)
				}
				return o.resp, nil
			}
			lastErr = o.err
		case <-hedgeC:
			hedgeC = nil // fire at most one hedge per try
			if h := e.pickNode(shard, rot+1, primary); h != nil {
				e.pool.counters.HedgesFired.Add(1)
				launch(h, true)
				inFlight++
			}
		}
	}
	return nil, lastErr
}

// StreamShard evaluates one shard remotely as a chunked stream: tuple
// batches arrive over /v1/internal/shard-eval as the worker evaluates,
// already in global coordinates, each batch checksum-verified before emit.
// Retries walk the shard's replicas like RunShard — but since earlier
// batches may already have escaped downstream, a retry resumes instead of
// restarting: evaluation is deterministic and generation-pinned, so the
// next replica re-evaluates and skips the exact prefix already delivered
// (ShardEvalRequest.Skip). Hedging applies until a replica delivers its
// first batch: from that point the stream is claimed and the hedge is
// cancelled, so two replicas never interleave into one consumer.
func (e *Engine) StreamShard(ctx context.Context, shard int, p *koko.ParsedQuery, qo *koko.QueryOptions, emit func(tuples []koko.Tuple) error) (*koko.Result, error) {
	if shard < 0 || shard >= e.NumShards() {
		return nil, fmt.Errorf("remote: shard %d out of range (corpus %q has %d)", shard, e.corpus, e.NumShards())
	}
	req := e.request(shard, p, qo)
	req.Chunk = true
	max := e.pool.cfg.MaxAttempts
	delivered := 0
	var lastErr error
	for try := 0; try < max; try++ {
		if try > 0 {
			e.pool.counters.Retries.Add(1)
			select {
			case <-time.After(e.pool.backoffFor(try)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		areq := *req
		areq.Skip = delivered
		done, sent, err := e.chunkTry(ctx, shard, try, &areq, emit)
		if err == nil {
			return done.Summary, nil
		}
		delivered += sent
		var ee *emitError
		if errors.As(err, &ee) {
			// The consumer is gone; retrying cannot help.
			return nil, ee.err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
	}
	return nil, &ShardUnavailableError{Corpus: e.corpus, Shard: shard, Attempts: max, Last: lastErr}
}

// errHedgeLost marks the losing side of a hedged chunked attempt: another
// replica claimed the stream first. It never surfaces to callers — the
// loser's outcome is discarded.
var errHedgeLost = errors.New("remote: hedged chunked attempt lost the stream claim")

// chunkTry runs one try of a chunked shard eval: a primary attempt, plus a
// hedged attempt racing on another replica if the hedge threshold passes
// before the primary delivers anything. The first attempt to push a tuple
// batch downstream (or to finish successfully, for empty results) claims
// the stream; the loser is cancelled and its batches are refused at the
// claim gate, so emit sees exactly one replica's deterministic sequence.
func (e *Engine) chunkTry(ctx context.Context, shard, rot int, req *ShardEvalRequest, emit func([]koko.Tuple) error) (*ChunkDone, int, error) {
	primary := e.pickNode(shard, rot, nil)
	if primary == nil {
		return nil, 0, fmt.Errorf("remote: corpus %q shard %d has no replica to try", e.corpus, shard)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var mu sync.Mutex
	winner := 0
	cancels := map[int]context.CancelFunc{}
	// claim makes id the stream's owner if it is still unowned, cancelling
	// every other attempt; it reports whether id owns the stream.
	claim := func(id int) bool {
		mu.Lock()
		defer mu.Unlock()
		if winner == 0 {
			winner = id
			for k, c := range cancels {
				if k != id {
					c()
				}
			}
		}
		return winner == id
	}
	claimed := func() int {
		mu.Lock()
		defer mu.Unlock()
		return winner
	}
	type outcome struct {
		id    int
		done  *ChunkDone
		sent  int
		err   error
		hedge bool
	}
	ch := make(chan outcome, 2) // buffered: a losing attempt must not leak its goroutine
	launch := func(id int, n *nodeState, hedge bool) {
		actx, acancel := context.WithCancel(cctx)
		mu.Lock()
		cancels[id] = acancel
		mu.Unlock()
		go func() {
			done, sent, err := e.pool.EvalShardChunked(actx, n, req, func(ts []koko.Tuple) error {
				if !claim(id) {
					return errHedgeLost
				}
				return emit(ts)
			})
			ch <- outcome{id: id, done: done, sent: sent, err: err, hedge: hedge}
		}()
	}
	launch(1, primary, false)
	inFlight := 1
	var hedgeC <-chan time.Time
	if d, ok := e.pool.hedgeDelay(primary); ok {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	for inFlight > 0 {
		select {
		case o := <-ch:
			inFlight--
			switch w := claimed(); {
			case w == o.id:
				// The stream's owner finished; its outcome is the try's
				// outcome, error or not — its tuples already escaped, so sent
				// is the resume point either way.
				if o.err == nil && o.hedge {
					e.pool.counters.HedgeWins.Add(1)
				}
				return o.done, o.sent, o.err
			case w != 0:
				// Losing side of the hedge; the owner's outcome is still in
				// flight.
			case o.err == nil:
				// Success without ever emitting (an empty shard result):
				// claim so the other attempt cannot start emitting after we
				// return. Losing this race means the other side's first batch
				// just went downstream — keep waiting for it instead.
				if claim(o.id) {
					if o.hedge {
						e.pool.counters.HedgeWins.Add(1)
					}
					return o.done, o.sent, nil
				}
			default:
				lastErr = o.err
			}
		case <-hedgeC:
			hedgeC = nil // fire at most one hedge per try
			if claimed() == 0 {
				if h := e.pickNode(shard, rot+1, primary); h != nil {
					e.pool.counters.HedgesFired.Add(1)
					launch(2, h, true)
					inFlight++
				}
			}
		}
	}
	return nil, 0, lastErr
}

// RunParsedEach fans the query out across remote shards and delivers
// per-shard partials in strict shard order, already in global coordinates
// (zero offsets): a shard error cancels the rest of the fan-out, a consumer
// error cancels it too, and no goroutine outlives the call.
//
// Deprecated: use Run; ShardEnd events mark the per-shard boundaries.
func (e *Engine) RunParsedEach(ctx context.Context, p *koko.ParsedQuery, qo *koko.QueryOptions, each func(shard int, part koko.Partial) error) error {
	seq, err := e.Run(ctx, p, qo)
	if err != nil {
		return err
	}
	return koko.EachPartial(seq, each)
}

// RunParsedDegraded is the graceful-degradation surface: every shard is
// attempted (failures do NOT cancel the others), and the merge of the
// surviving shards is returned together with the failed shard indices.
// Surviving tuples keep their exact global attribution. Only when every
// shard fails (or ctx is done) does the call error. A non-empty failed list
// means the result is NOT the full answer; callers must mark it degraded
// and keep it out of result caches.
//
// Deprecated: use Run with QueryOptions.Degraded; TupleSeq.FailedShards
// reports the skipped shards after the stream drains.
func (e *Engine) RunParsedDegraded(ctx context.Context, p *koko.ParsedQuery, qo *koko.QueryOptions) (*koko.Result, []int, error) {
	qd := koko.QueryOptions{}
	if qo != nil {
		qd = *qo
	}
	qd.Degraded = true
	seq, err := e.Run(ctx, p, &qd)
	if err != nil {
		return nil, nil, err
	}
	res, err := seq.Collect()
	if err != nil {
		return nil, nil, err
	}
	failed := seq.FailedShards()
	if n := e.NumShards(); len(failed) == n {
		return nil, failed, fmt.Errorf("remote: corpus %q: all %d shards failed: %w", e.corpus, n, seq.FailedErr())
	}
	return res, failed, nil
}
