package remote

import (
	"sort"
	"sync"
	"time"
)

// breakerState is the circuit breaker's phase for one node.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// latencyWindow is how many recent successful-attempt latencies a node
// retains for the adaptive hedge threshold.
const latencyWindow = 64

// nodeState is everything the pool tracks about one worker: health from
// active pings, a circuit breaker fed by request outcomes, and a ring of
// recent latencies for the hedge threshold. One nodeState is shared by all
// engines using the pool, so a node that a cafes query found dead is
// immediately second choice for a tweets query too.
type nodeState struct {
	addr string // base URL, e.g. http://10.0.0.2:7333

	mu sync.Mutex
	// up is the health-check verdict: flipped down after cfg.HealthFails
	// consecutive ping failures, back up on the first success. A down node
	// is skipped in first-choice selection but still reachable as a last
	// resort (health checks lag reality; a query beats a guess).
	up        bool
	pingFails int
	// Breaker: consecutive request failures trip it open; after Cooloff it
	// admits a single half-open probe whose outcome closes or re-opens it.
	breaker     breakerState
	consecFails int
	openedUntil time.Time
	probing     bool
	// lat is a ring of recent successful-attempt latencies.
	lat    [latencyWindow]time.Duration
	latLen int
	latPos int
}

func newNodeState(addr string) *nodeState {
	return &nodeState{addr: addr, up: true}
}

// Addr returns the node's base URL.
func (n *nodeState) Addr() string { return n.addr }

// Up reports the health-check verdict.
func (n *nodeState) Up() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.up
}

// pingResult folds one active health-check outcome into the up/down state,
// returning true when the node just transitioned to down (the caller
// counts transitions, not pings).
func (n *nodeState) pingResult(ok bool, failThreshold int) (wentDown bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ok {
		n.up = true
		n.pingFails = 0
		return false
	}
	n.pingFails++
	if n.up && n.pingFails >= failThreshold {
		n.up = false
		return true
	}
	return false
}

// tryAcquire asks the breaker whether an attempt may proceed now. In the
// open state it fails fast until the cooloff expires, then admits exactly
// one half-open probe (the claim is the side effect — callers must follow
// a true return with a real attempt).
func (n *nodeState) tryAcquire(now time.Time) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch n.breaker {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Before(n.openedUntil) {
			return false
		}
		n.breaker = breakerHalfOpen
		n.probing = true
		return true
	default: // half-open: one probe in flight, everyone else sheds
		if n.probing {
			return false
		}
		n.probing = true
		return true
	}
}

// onSuccess folds a successful attempt into the breaker (closes it) and
// the latency ring.
func (n *nodeState) onSuccess(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.breaker = breakerClosed
	n.consecFails = 0
	n.probing = false
	n.up = true
	n.pingFails = 0
	n.lat[n.latPos] = d
	n.latPos = (n.latPos + 1) % latencyWindow
	if n.latLen < latencyWindow {
		n.latLen++
	}
}

// onFailure folds a failed attempt into the breaker, returning true when
// this failure tripped it open (closed→open or a failed half-open probe).
func (n *nodeState) onFailure(threshold int, cooloff time.Duration, now time.Time) (opened bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.consecFails++
	switch n.breaker {
	case breakerHalfOpen:
		// The probe failed: straight back to open for another cooloff.
		n.breaker = breakerOpen
		n.openedUntil = now.Add(cooloff)
		n.probing = false
		return true
	case breakerClosed:
		if threshold > 0 && n.consecFails >= threshold {
			n.breaker = breakerOpen
			n.openedUntil = now.Add(cooloff)
			return true
		}
	}
	return false
}

// latencyP95 returns the node's observed p95 attempt latency, or 0 when
// fewer than 8 samples exist (not enough signal to hedge on).
func (n *nodeState) latencyP95() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.latLen < 8 {
		return 0
	}
	samples := make([]time.Duration, n.latLen)
	copy(samples, n.lat[:n.latLen])
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[(len(samples)*95)/100]
}
