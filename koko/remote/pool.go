package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/koko"
)

// PoolConfig tunes the fault-tolerance layer shared by every Engine on one
// coordinator. Zero values take the documented defaults.
type PoolConfig struct {
	// AttemptTimeout bounds each individual shard-eval attempt (default 2s);
	// the caller's context still bounds the whole call.
	AttemptTimeout time.Duration
	// MaxAttempts is how many attempts RunShard makes per shard across
	// replicas before giving up with ErrShardUnavailable (default 3).
	MaxAttempts int
	// HedgeAfter controls hedged requests: > 0 fires a second attempt on
	// another replica after that fixed delay; 0 (default) adapts to the
	// primary node's observed p95 attempt latency; < 0 disables hedging.
	HedgeAfter time.Duration
	// BackoffBase / BackoffMax shape the exponential backoff between retry
	// attempts (defaults 10ms and 500ms); each sleep is jittered ±50%.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold consecutive request failures trip a node's circuit
	// breaker open (default 3); BreakerCooloff is how long it fails fast
	// before admitting a half-open probe (default 5s).
	BreakerThreshold int
	BreakerCooloff   time.Duration
	// HealthFails consecutive ping failures mark a node down (default 2).
	HealthFails int
	// Fault, when non-nil, injects deterministic faults into the transport.
	Fault *FaultPolicy
	// Client overrides the HTTP client (default: fresh client, per-attempt
	// timeouts only).
	Client *http.Client
	// JitterSeed seeds the backoff jitter (0 = fixed default seed; any
	// seed is fine — jitter decorrelates retries, it is not security).
	JitterSeed int64
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 500 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooloff <= 0 {
		c.BreakerCooloff = 5 * time.Second
	}
	if c.HealthFails <= 0 {
		c.HealthFails = 2
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Counters is the pool's lifetime fault-tolerance accounting, exported so
// the serving layer can surface it in /v1/metrics.
type Counters struct {
	// Attempts counts every shard-eval attempt (first tries, retries, and
	// hedges alike); Retries counts attempts after the first for a shard;
	// HedgesFired counts hedge attempts launched and HedgeWins the ones
	// that returned before their primary.
	Attempts    atomic.Int64
	Retries     atomic.Int64
	HedgesFired atomic.Int64
	HedgeWins   atomic.Int64
	// NodeUnhealthy counts up→down health transitions; BreakerOpen counts
	// breaker trips (closed→open and failed half-open probes).
	NodeUnhealthy atomic.Int64
	BreakerOpen   atomic.Int64
	// CorruptPartials counts responses rejected by checksum verification.
	CorruptPartials atomic.Int64
}

// Pool owns the per-node state and HTTP transport shared by every remote
// Engine on a coordinator: one health view, one breaker, and one latency
// profile per worker, however many corpora it serves. Safe for concurrent
// use.
type Pool struct {
	cfg    PoolConfig
	client *http.Client

	mu    sync.Mutex
	nodes map[string]*nodeState
	rng   *rand.Rand // backoff jitter; guarded by mu

	counters Counters
}

// NewPool builds a pool with the given tuning.
func NewPool(cfg PoolConfig) *Pool {
	cfg = cfg.withDefaults()
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = 1
	}
	return &Pool{
		cfg:    cfg,
		client: cfg.Client,
		nodes:  map[string]*nodeState{},
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Counters exposes the pool's fault-tolerance counters.
func (p *Pool) Counters() *Counters { return &p.counters }

// Node returns (creating on first use) the shared state for a worker base
// URL.
func (p *Pool) Node(addr string) *nodeState {
	p.mu.Lock()
	defer p.mu.Unlock()
	n, ok := p.nodes[addr]
	if !ok {
		n = newNodeState(addr)
		p.nodes[addr] = n
	}
	return n
}

// backoffFor returns the jittered sleep before retry attempt `try`
// (try >= 1): exponential in the attempt number, capped, ±50% jitter.
func (p *Pool) backoffFor(try int) time.Duration {
	d := p.cfg.BackoffBase << (try - 1)
	if d > p.cfg.BackoffMax || d <= 0 {
		d = p.cfg.BackoffMax
	}
	p.mu.Lock()
	jitter := 0.5 + p.rng.Float64()
	p.mu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// hedgeDelay resolves the hedge threshold for an attempt against n: the
// configured fixed delay, or n's observed p95 when adapting. ok is false
// when hedging is disabled or there is not enough latency signal yet.
func (p *Pool) hedgeDelay(n *nodeState) (time.Duration, bool) {
	switch {
	case p.cfg.HedgeAfter > 0:
		return p.cfg.HedgeAfter, true
	case p.cfg.HedgeAfter < 0:
		return 0, false
	}
	if p95 := n.latencyP95(); p95 > 0 {
		return p95, true
	}
	return 0, false
}

// EvalShard runs one shard-eval attempt against node n: fault injection,
// per-attempt deadline, HTTP round trip, generation pinning, and checksum
// verification, with the outcome folded into n's breaker and latency
// state. Retry/hedge orchestration lives in Engine.RunShard; this is the
// single-attempt primitive it composes.
func (p *Pool) EvalShard(ctx context.Context, n *nodeState, req *ShardEvalRequest) (*ShardEvalResponse, error) {
	p.counters.Attempts.Add(1)
	actx, cancel := context.WithTimeout(ctx, p.cfg.AttemptTimeout)
	defer cancel()
	t0 := time.Now()
	resp, err := p.attempt(actx, n.addr, req)
	if err != nil {
		if n.onFailure(p.cfg.BreakerThreshold, p.cfg.BreakerCooloff, time.Now()) {
			p.counters.BreakerOpen.Add(1)
		}
		return nil, err
	}
	n.onSuccess(time.Since(t0))
	return resp, nil
}

// attempt is the raw transport: injected faults first, then the POST.
func (p *Pool) attempt(ctx context.Context, addr string, req *ShardEvalRequest) (*ShardEvalResponse, error) {
	corrupt := false
	if p.cfg.Fault != nil {
		switch kind, delay := p.cfg.Fault.Decide(addr); kind {
		case FaultDrop:
			// Black hole: nothing is sent and nothing comes back until the
			// attempt deadline fires.
			<-ctx.Done()
			return nil, fmt.Errorf("remote: node %s: %w", addr, ctx.Err())
		case FaultError:
			return nil, fmt.Errorf("remote: node %s: injected transport error", addr)
		case FaultDelay:
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, fmt.Errorf("remote: node %s: %w", addr, ctx.Err())
			}
		case FaultCorrupt:
			corrupt = true
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("remote: encode shard-eval request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+EvalPath, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("remote: node %s: %w", addr, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := p.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("remote: node %s: %w", addr, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		// Bounded read: error bodies are one JSON line, not bulk data.
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 1024))
		return nil, fmt.Errorf("remote: node %s: shard-eval status %d: %s", addr, hresp.StatusCode, bytes.TrimSpace(msg))
	}
	var resp ShardEvalResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("remote: node %s: decode shard-eval response: %w", addr, err)
	}
	if corrupt {
		// Injected payload bit-flip: mutate the decoded result so checksum
		// verification below must catch it (exactly what a real corruption
		// between stamp and merge would look like).
		if resp.Result != nil {
			resp.Result.Candidates += 1 << 20
		} else {
			resp.Checksum ^= 0x6b6f6b6f
		}
	}
	if got := PartialChecksum(resp.Result); got != resp.Checksum {
		p.counters.CorruptPartials.Add(1)
		return nil, fmt.Errorf("remote: node %s: checksum mismatch (got %x, stamped %x): %w", addr, got, resp.Checksum, ErrCorruptPartial)
	}
	if req.Generation != 0 && resp.Generation != req.Generation {
		return nil, fmt.Errorf("remote: node %s: generation moved (pinned %d, serving %d)", addr, req.Generation, resp.Generation)
	}
	return &resp, nil
}

// emitError wraps a failure of the coordinator-side batch consumer during a
// chunked attempt: the consumer is gone (disconnect, downstream error), so
// the attempt must not be retried and the node's breaker is not charged.
type emitError struct{ err error }

func (e *emitError) Error() string { return e.err.Error() }
func (e *emitError) Unwrap() error { return e.err }

// EvalShardChunked runs one chunked shard-eval attempt against node n,
// streaming checksum-verified tuple batches to emit as they arrive instead
// of buffering the shard's result. The attempt timeout applies per line —
// an idle deadline re-armed on every received line and suspended while a
// batch is handed downstream — so a large result is bounded by network
// liveness, not by total size or by how fast the consumer drains. On
// success the terminal done line is returned; sent reports how many tuples
// reached emit either way (the resume point for a retry with
// ShardEvalRequest.Skip). An error from emit itself comes back wrapped as a
// consumer error (emitError), which the retry ladder must treat as
// terminal.
func (p *Pool) EvalShardChunked(ctx context.Context, n *nodeState, req *ShardEvalRequest, emit func([]koko.Tuple) error) (done *ChunkDone, sent int, err error) {
	p.counters.Attempts.Add(1)
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	idle := time.AfterFunc(p.cfg.AttemptTimeout, cancel)
	defer idle.Stop()
	t0 := time.Now()
	done, sent, err = p.chunkAttempt(actx, n.addr, req, idle, emit)
	if err != nil {
		var ee *emitError
		if errors.As(err, &ee) {
			return nil, sent, err // consumer failure, not the node's
		}
		if ctx.Err() != nil {
			// The caller's context ended the attempt (consumer broke out of
			// the stream, a hedge lost its claim, the query deadline hit) —
			// a pacing artifact on our side, not evidence against the node,
			// so the breaker is not charged.
			return nil, sent, err
		}
		if n.onFailure(p.cfg.BreakerThreshold, p.cfg.BreakerCooloff, time.Now()) {
			p.counters.BreakerOpen.Add(1)
		}
		return nil, sent, err
	}
	n.onSuccess(time.Since(t0))
	return done, sent, nil
}

// chunkAttempt is the raw chunked transport: injected faults first, then
// the POST and the NDJSON line loop, verifying each batch's checksum before
// releasing it downstream.
func (p *Pool) chunkAttempt(ctx context.Context, addr string, req *ShardEvalRequest, idle *time.Timer, emit func([]koko.Tuple) error) (*ChunkDone, int, error) {
	corrupt := false
	if p.cfg.Fault != nil {
		switch kind, delay := p.cfg.Fault.Decide(addr); kind {
		case FaultDrop:
			<-ctx.Done()
			return nil, 0, fmt.Errorf("remote: node %s: %w", addr, ctx.Err())
		case FaultError:
			return nil, 0, fmt.Errorf("remote: node %s: injected transport error", addr)
		case FaultDelay:
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, 0, fmt.Errorf("remote: node %s: %w", addr, ctx.Err())
			}
		case FaultCorrupt:
			corrupt = true
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, fmt.Errorf("remote: encode shard-eval request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+EvalPath, bytes.NewReader(body))
	if err != nil {
		return nil, 0, fmt.Errorf("remote: node %s: %w", addr, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", "application/x-ndjson")
	hresp, err := p.client.Do(hreq)
	if err != nil {
		return nil, 0, fmt.Errorf("remote: node %s: %w", addr, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 1024))
		return nil, 0, fmt.Errorf("remote: node %s: shard-eval status %d: %s", addr, hresp.StatusCode, bytes.TrimSpace(msg))
	}
	dec := json.NewDecoder(hresp.Body)
	sent := 0
	for {
		var line ChunkLine
		if err := dec.Decode(&line); err != nil {
			return nil, sent, fmt.Errorf("remote: node %s: chunked stream broke after %d tuples: %w", addr, sent, err)
		}
		idle.Reset(p.cfg.AttemptTimeout)
		switch {
		case line.Error != "":
			return nil, sent, fmt.Errorf("remote: node %s: worker error mid-stream: %s", addr, line.Error)
		case line.Done != nil:
			d := line.Done
			if corrupt {
				// Injected bit-flip on the terminal accounting line (an
				// empty-result stream has no batch to corrupt).
				d.Checksum ^= 0x6b6f6b6f
			}
			var cand, matched int
			if d.Summary != nil {
				cand, matched = d.Summary.Candidates, d.Summary.Matched
			}
			if got := CountersChecksum(cand, matched, d.Tuples); got != d.Checksum {
				p.counters.CorruptPartials.Add(1)
				return nil, sent, fmt.Errorf("remote: node %s: chunked done checksum mismatch (got %x, stamped %x): %w", addr, got, d.Checksum, ErrCorruptPartial)
			}
			if d.Tuples != sent {
				return nil, sent, fmt.Errorf("remote: node %s: chunked stream delivered %d tuples, done line claims %d: %w", addr, sent, d.Tuples, ErrCorruptPartial)
			}
			if req.Generation != 0 && d.Generation != req.Generation {
				return nil, sent, fmt.Errorf("remote: node %s: generation moved (pinned %d, serving %d)", addr, req.Generation, d.Generation)
			}
			return d, sent, nil
		case len(line.Tuples) > 0:
			if corrupt {
				// Injected payload bit-flip: per-batch verification below
				// must catch it before any tuple escapes downstream.
				line.Tuples[0].SentenceID += 1 << 20
			}
			if got := TuplesChecksum(line.Tuples); got != line.Checksum {
				p.counters.CorruptPartials.Add(1)
				return nil, sent, fmt.Errorf("remote: node %s: chunk checksum mismatch (got %x, stamped %x): %w", addr, got, line.Checksum, ErrCorruptPartial)
			}
			// Suspend the idle deadline for the handoff: emit blocks on
			// downstream backpressure (the ordered merge admits shards in
			// turn, an NDJSON client may pause), and consumer pacing must
			// not be mistaken for a dead node — the deadline bounds network
			// idleness only.
			idle.Stop()
			emitErr := emit(line.Tuples)
			idle.Reset(p.cfg.AttemptTimeout)
			if emitErr != nil {
				return nil, sent, &emitError{emitErr}
			}
			sent += len(line.Tuples)
		}
	}
}

// ping hits a node's health endpoint with a bounded deadline.
func (p *Pool) ping(ctx context.Context, addr string) error {
	pctx, cancel := context.WithTimeout(ctx, p.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, addr+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}

// CheckHealth runs one active health round over every known node,
// flipping up/down state by consecutive-failure count.
func (p *Pool) CheckHealth(ctx context.Context) {
	p.mu.Lock()
	nodes := make([]*nodeState, 0, len(p.nodes))
	for _, n := range p.nodes {
		nodes = append(nodes, n)
	}
	p.mu.Unlock()
	var wg sync.WaitGroup
	for _, n := range nodes {
		wg.Add(1)
		go func(n *nodeState) {
			defer wg.Done()
			err := p.ping(ctx, n.addr)
			if n.pingResult(err == nil, p.cfg.HealthFails) {
				p.counters.NodeUnhealthy.Add(1)
			}
		}(n)
	}
	wg.Wait()
}

// HealthLoop pings every node each interval until ctx is done — the
// coordinator's background health checker.
func (p *Pool) HealthLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.CheckHealth(ctx)
		}
	}
}
