package koko

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/koko/index"
	"repro/internal/koko/wal"
	"repro/internal/nlp"
)

// Durability and tombstone differential suite: every mutation sequence —
// ingest, delete, upsert, compact, crash, restart — must leave the corpus
// answering queries byte-identically to an engine rebuilt from scratch over
// the live documents in ingestion order.

const happyQuery = `extract o:Str from "moments" if (
	/ROOT:{ v = //verb, b = v/dobj, o = (b.subtree) })
	satisfying o ("ate" o {0.7}) or (o near "delicious" {1}) with threshold 0.2`

// docRec models one live document of the reference corpus.
type docRec struct {
	name  string
	sents []nlp.Sentence
}

func allDocs(c *Corpus) []docRec {
	out := make([]docRec, c.NumDocuments())
	for d := range out {
		name, sents := docSents(c, d)
		out[d] = docRec{name, sents}
	}
	return out
}

func withoutName(live []docRec, name string) []docRec {
	out := make([]docRec, 0, len(live))
	for _, d := range live {
		if d.name != name {
			out = append(out, d)
		}
	}
	return out
}

// refEngine builds a from-scratch engine over the live documents in order —
// the ground truth every mutable state is compared against.
func refEngine(live []docRec) *Engine {
	c := &index.Corpus{}
	for _, d := range live {
		sents := make([]nlp.Sentence, len(d.sents))
		copy(sents, d.sents)
		c.AppendDoc(d.name, sents)
	}
	return NewEngine(&Corpus{c: c}, nil)
}

// checkLive asserts q matches the reference over live exactly: tuples,
// matched count, document/sentence totals, and name attribution.
func checkLive(t *testing.T, label string, q Querier, live []docRec) {
	t.Helper()
	ref := refEngine(live)
	want := mustRun(t, ref, happyQuery, nil)
	got := mustRun(t, q, happyQuery, nil)
	if len(want.Tuples) != len(got.Tuples) {
		t.Fatalf("%s: %d tuples, want %d", label, len(got.Tuples), len(want.Tuples))
	}
	for i := range want.Tuples {
		w, g := want.Tuples[i], got.Tuples[i]
		if w.SentenceID != g.SentenceID || w.Document != g.Document ||
			fmt.Sprint(w.Values) != fmt.Sprint(g.Values) {
			t.Fatalf("%s: tuple %d differs: got {sid %d doc %d %v}, want {sid %d doc %d %v}",
				label, i, g.SentenceID, g.Document, g.Values, w.SentenceID, w.Document, w.Values)
		}
	}
	// Matched is a pruning diagnostic: masking subtracts tombstoned
	// sentences whose tuples it dropped, but a dead sentence filtered by
	// the satisfying clause stays counted — so masked Matched may slightly
	// exceed the rebuild's, never undershoot it.
	if got.Matched < want.Matched {
		t.Fatalf("%s: matched %d, want >= %d", label, got.Matched, want.Matched)
	}
	if q.NumDocuments() != ref.NumDocuments() || q.NumSentences() != ref.NumSentences() {
		t.Fatalf("%s: %d docs/%d sents, want %d/%d",
			label, q.NumDocuments(), q.NumSentences(), ref.NumDocuments(), ref.NumSentences())
	}
	for d := 0; d < ref.NumDocuments(); d++ {
		if got, want := q.DocumentName(d), ref.DocumentName(d); got != want {
			t.Fatalf("%s: DocumentName(%d) = %q, want %q", label, d, got, want)
		}
	}
}

// TestMutableDeleteDifferential: deletes and upserts — against base docs,
// delta docs, racing nothing — masked out of every read immediately and
// folded away by compaction, with reads equal to a from-scratch rebuild at
// every stage.
func TestMutableDeleteDifferential(t *testing.T) {
	full := WrapCorpus(corpus.GenHappyDB(140, 3))
	docs := allDocs(full)
	nd := len(docs)
	if nd < 8 {
		t.Fatalf("generator yields only %d docs", nd)
	}
	half := nd / 2
	for _, k := range []int{1, 3} {
		mut := NewMutable(baseEngine(prefixCorpus(full, half), k), nil)
		live := append([]docRec(nil), docs[:half]...)
		for d := half; d < nd; d++ {
			if _, err := mut.AddParsedDocument(docs[d].name, docs[d].sents); err != nil {
				t.Fatal(err)
			}
			live = append(live, docs[d])
		}

		// Delete one base document and one delta document.
		for _, victim := range []string{docs[1].name, docs[half+1].name} {
			if _, n, err := mut.DeleteDocument(victim); err != nil || n != 1 {
				t.Fatalf("k=%d delete %q: n=%d err=%v", k, victim, n, err)
			}
			live = withoutName(live, victim)
		}
		if _, _, err := mut.DeleteDocument("no-such-doc"); !errors.Is(err, ErrNoDocument) {
			t.Fatalf("k=%d delete missing: %v", k, err)
		}
		if _, _, err := mut.DeleteDocument(docs[1].name); !errors.Is(err, ErrNoDocument) {
			t.Fatalf("k=%d double delete: %v", k, err)
		}
		checkLive(t, fmt.Sprintf("k=%d masked", k), mut.Snapshot(), live)
		if got := mut.Tombstones(); got != 2 {
			t.Fatalf("k=%d tombstones = %d, want 2", k, got)
		}

		// Upsert: replace a base document's content (with another doc's
		// sentences) and add a brand-new name through the same call.
		repl := docRec{docs[2].name, docs[half].sents}
		if _, replaced, err := mut.PutParsedDocument(repl.name, repl.sents); err != nil || !replaced {
			t.Fatalf("k=%d put replace: replaced=%t err=%v", k, replaced, err)
		}
		live = append(withoutName(live, repl.name), repl)
		fresh := docRec{"fresh.txt", docs[0].sents}
		if _, replaced, err := mut.PutParsedDocument(fresh.name, fresh.sents); err != nil || replaced {
			t.Fatalf("k=%d put fresh: replaced=%t err=%v", k, replaced, err)
		}
		live = append(live, fresh)
		checkLive(t, fmt.Sprintf("k=%d upserted", k), mut.Snapshot(), live)

		// Compaction folds all tombstones away and changes nothing visible.
		st, err := mut.Compact()
		if err != nil {
			t.Fatal(err)
		}
		if st.Tombstones != 3 {
			t.Fatalf("k=%d compacted %d tombstones, want 3", k, st.Tombstones)
		}
		if mut.Tombstones() != 0 || mut.Snapshot().DeltaDocs() != 0 {
			t.Fatalf("k=%d residue after compact: tombs=%d delta=%d", k, mut.Tombstones(), mut.Snapshot().DeltaDocs())
		}
		checkLive(t, fmt.Sprintf("k=%d compacted", k), mut.Snapshot(), live)

		// Delete after compaction (a base-only corpus) and compact again.
		victim := live[len(live)/2].name
		if _, _, err := mut.DeleteDocument(victim); err != nil {
			t.Fatal(err)
		}
		live = withoutName(live, victim)
		checkLive(t, fmt.Sprintf("k=%d re-deleted", k), mut.Snapshot(), live)
		if _, err := mut.Compact(); err != nil {
			t.Fatal(err)
		}
		checkLive(t, fmt.Sprintf("k=%d re-compacted", k), mut.Snapshot(), live)
	}
}

// TestMutableSaveError: the Save error names the corpus and counts both
// delta documents and tombstones; an explicit compact clears the way.
func TestMutableSaveError(t *testing.T) {
	full := WrapCorpus(corpus.GenHappyDB(60, 9))
	docs := allDocs(full)
	mut := NewMutable(baseEngine(prefixCorpus(full, len(docs)-1), 1), nil)
	mut.SetName("reviews")
	if _, err := mut.AddParsedDocument(docs[len(docs)-1].name, docs[len(docs)-1].sents); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mut.DeleteDocument(docs[0].name); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.koko")
	err := mut.Save(path)
	if err == nil {
		t.Fatal("Save succeeded with live delta and tombstones")
	}
	for _, want := range []string{`corpus "reviews"`, "1 uncompacted delta documents", "1 live tombstones"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("Save error %q missing %q", err, want)
		}
	}
	if _, err := mut.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := mut.Save(path); err != nil {
		t.Fatalf("Save after compact: %v", err)
	}
}

// durableFixture opens a durable corpus in dir seeded with the first half
// of docs, ingests the second half through the WAL, and deletes one base
// and one delta document. Returns the expected live set.
func durableFixture(t *testing.T, dir string, docs []docRec, full *Corpus, sync wal.SyncPolicy) (*Mutable, []docRec) {
	t.Helper()
	nd := len(docs)
	half := nd / 2
	seed := NewShardedEngine(prefixCorpus(full, half), 2, nil)
	m, err := OpenDurable(seed, DurableConfig{Dir: dir, Sync: sync})
	if err != nil {
		t.Fatal(err)
	}
	live := append([]docRec(nil), docs[:half]...)
	for d := half; d < nd; d++ {
		if _, err := m.AddParsedDocument(docs[d].name, docs[d].sents); err != nil {
			t.Fatal(err)
		}
		live = append(live, docs[d])
	}
	for _, victim := range []string{docs[1].name, docs[half].name} {
		if _, _, err := m.DeleteDocument(victim); err != nil {
			t.Fatal(err)
		}
		live = withoutName(live, victim)
	}
	return m, live
}

// TestDurableRestartReplay: closing and reopening a durable corpus replays
// the WAL into a state identical to the pre-restart one — including
// tombstones — and recovery counters report the replay.
func TestDurableRestartReplay(t *testing.T) {
	full := WrapCorpus(corpus.GenHappyDB(120, 5))
	docs := allDocs(full)
	dir := t.TempDir()
	m, live := durableFixture(t, dir, docs, full, wal.SyncAlways)
	checkLive(t, "pre-restart", m.Snapshot(), live)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddParsedDocument("late.txt", docs[0].sents); !errors.Is(err, ErrClosed) {
		t.Fatalf("mutation after Close: %v", err)
	}

	m2, err := OpenDurable(nil, DurableConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	checkLive(t, "post-restart", m2.Snapshot(), live)
	ds := m2.Durability()
	if !ds.Durable || ds.ReplayedDocs != uint64(len(docs)-len(docs)/2) || ds.ReplayedTombs != 2 {
		t.Fatalf("durability stats after replay: %+v", ds)
	}
	if ds.Generation != 1 || ds.Recovery <= 0 {
		t.Fatalf("generation/recovery: %+v", ds)
	}

	// The reopened corpus keeps mutating durably.
	if _, err := m2.AddParsedDocument("after-restart.txt", docs[2].sents); err != nil {
		t.Fatal(err)
	}
	live = append(live, docRec{"after-restart.txt", docs[2].sents})
	checkLive(t, "post-restart ingest", m2.Snapshot(), live)
}

// TestDurableCompactThenRestart: a clean compaction folds delta and
// tombstones into a new shard generation, truncates the WAL, and the next
// open loads it all back without replaying anything.
func TestDurableCompactThenRestart(t *testing.T) {
	full := WrapCorpus(corpus.GenHappyDB(120, 7))
	docs := allDocs(full)
	dir := t.TempDir()
	m, live := durableFixture(t, dir, docs, full, wal.SyncNone)
	st, err := m.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tombstones != 2 {
		t.Fatalf("compacted %d tombstones, want 2", st.Tombstones)
	}
	checkLive(t, "compacted", m.Snapshot(), live)
	ds := m.Durability()
	if ds.Generation != 2 || ds.Swaps != 1 {
		t.Fatalf("after compact: %+v", ds)
	}
	if ds.WALBytes > 64 {
		t.Fatalf("WAL not truncated after compact: %d bytes", ds.WALBytes)
	}
	// Post-compact mutations land in the (fresh) WAL.
	if _, _, err := m.DeleteDocument(live[0].name); err != nil {
		t.Fatal(err)
	}
	victim := live[0].name
	live = withoutName(live, victim)
	m.Close()

	m2, err := OpenDurable(nil, DurableConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	checkLive(t, "post-restart", m2.Snapshot(), live)
	if ds := m2.Durability(); ds.ReplayedDocs != 0 || ds.ReplayedTombs != 1 {
		t.Fatalf("replay after compact: %+v", ds)
	}
}

// TestDurableCrashPoints: simulate a crash at every injected stage of a
// durable compaction, abandon the instance, reopen the directory, and
// require the recovered corpus to match the reference exactly — whichever
// generation survived.
func TestDurableCrashPoints(t *testing.T) {
	full := WrapCorpus(corpus.GenHappyDB(120, 11))
	docs := allDocs(full)
	for _, stage := range []string{"mid-shard-write", "pre-manifest-swap", "post-manifest-swap", "pre-wal-truncate"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			m, live := durableFixture(t, dir, docs, full, wal.SyncBatch)
			boom := errors.New("injected crash")
			m.failpoint = func(s string) error {
				if s == stage {
					return boom
				}
				return nil
			}
			if _, err := m.Compact(); !errors.Is(err, boom) {
				t.Fatalf("compact at %s: %v", stage, err)
			}
			// The process "died": drop the instance without graceful close
			// (only the WAL handle is shared, and kill -9 semantics mean its
			// buffered state was already written — Append uses one write
			// syscall before returning).
			m.wal.Close()

			m2, err := OpenDurable(nil, DurableConfig{Dir: dir})
			if err != nil {
				t.Fatalf("reopen after %s: %v", stage, err)
			}
			defer m2.Close()
			checkLive(t, "recovered "+stage, m2.Snapshot(), live)

			// Recovery must leave a fully working corpus: mutate and compact.
			if _, err := m2.AddParsedDocument("post-crash.txt", docs[0].sents); err != nil {
				t.Fatal(err)
			}
			live = append(live, docRec{"post-crash.txt", docs[0].sents})
			if _, err := m2.Compact(); err != nil {
				t.Fatalf("compact after recovery: %v", err)
			}
			checkLive(t, "recompacted "+stage, m2.Snapshot(), live)
		})
	}
}

// TestDurableTornWALTail: garbage appended to the WAL (a crash mid-append)
// is truncated on open and everything before it replays.
func TestDurableTornWALTail(t *testing.T) {
	full := WrapCorpus(corpus.GenHappyDB(100, 13))
	docs := allDocs(full)
	dir := t.TempDir()
	m, live := durableFixture(t, dir, docs, full, wal.SyncAlways)
	m.Close()

	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x99, 0x00, 0x00, 0x00, 0x12, 0x34, 0x56}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2, err := OpenDurable(nil, DurableConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	checkLive(t, "torn-tail", m2.Snapshot(), live)
}

// TestDurableIncrementalCompaction: base shards without tombstones keep
// their exact files across a compaction — same name, same mtime — while
// tombstone-touched shards are rebuilt into the new generation and the old
// files are removed.
func TestDurableIncrementalCompaction(t *testing.T) {
	full := WrapCorpus(corpus.GenHappyDB(160, 17))
	docs := allDocs(full)
	dir := t.TempDir()
	seed := NewShardedEngine(full, 3, nil)
	m, err := OpenDurable(seed, DurableConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	live := append([]docRec(nil), docs...)

	// Record the seed generation's shard files.
	base := m.Snapshot().Base().(*ShardedEngine)
	if base.NumShards() != 3 {
		t.Fatalf("seed persisted as %d shards", base.NumShards())
	}
	lastSpec := base.Spec(2)
	mtime := func(name string) int64 {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("stat %s: %v", name, err)
		}
		return st.ModTime().UnixNano()
	}
	t0, t1 := mtime("gen1.shard0"), mtime("gen1.shard1")

	// Ingest two docs and delete one document living in the LAST shard, so
	// shards 0 and 1 stay untouched.
	for _, name := range []string{"x.txt", "y.txt"} {
		if _, err := m.AddParsedDocument(name, docs[0].sents); err != nil {
			t.Fatal(err)
		}
		live = append(live, docRec{name, docs[0].sents})
	}
	victim := docs[lastSpec.LoDoc].name
	if _, _, err := m.DeleteDocument(victim); err != nil {
		t.Fatal(err)
	}
	live = withoutName(live, victim)

	if _, err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	checkLive(t, "incremental", m.Snapshot(), live)

	// Untouched shards: identical files, never rewritten.
	if got0, got1 := mtime("gen1.shard0"), mtime("gen1.shard1"); got0 != t0 || got1 != t1 {
		t.Fatalf("untouched shard files rewritten: %d/%d vs %d/%d", got0, got1, t0, t1)
	}
	// The touched shard moved to generation 2 and its old file is gone.
	if _, err := os.Stat(filepath.Join(dir, "gen1.shard2")); !os.IsNotExist(err) {
		t.Fatalf("obsolete shard file still present: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen2.shard2")); err != nil {
		t.Fatalf("rebuilt shard file missing: %v", err)
	}
	// A restart loads the mixed-generation manifest cleanly.
	m.Close()
	m2, err := OpenDurable(nil, DurableConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	checkLive(t, "mixed-gen restart", m2.Snapshot(), live)
}

// TestDurableEmptyAndFullDelete: a durable corpus born empty, filled, then
// fully emptied again stays consistent across compactions and restarts.
func TestDurableEmptyAndFullDelete(t *testing.T) {
	full := WrapCorpus(corpus.GenHappyDB(60, 19))
	docs := allDocs(full)
	dir := t.TempDir()
	m, err := OpenDurable(nil, DurableConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if n := m.Snapshot().NumDocuments(); n != 0 {
		t.Fatalf("empty durable corpus has %d docs", n)
	}
	for _, d := range docs[:3] {
		if _, err := m.AddParsedDocument(d.name, d.sents); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, d := range docs[:3] {
		if _, _, err := m.DeleteDocument(d.name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := m.Snapshot().NumDocuments(); n != 0 {
		t.Fatalf("fully deleted corpus has %d docs", n)
	}
	m.Close()
	m2, err := OpenDurable(nil, DurableConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if n := m2.Snapshot().NumDocuments(); n != 0 {
		t.Fatalf("restarted empty corpus has %d docs", n)
	}
	if _, err := m2.AddParsedDocument(docs[4].name, docs[4].sents); err != nil {
		t.Fatal(err)
	}
	checkLive(t, "refilled", m2.Snapshot(), []docRec{docs[4]})
}
