//go:build !race

package koko

import (
	"path/filepath"
	"runtime"
	"testing"
	"unsafe"

	"repro/internal/corpus"
	"repro/internal/koko/index"
	"repro/internal/koko/index/blockstore"
)

func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestBlockStoreMemoryBudget: querying a block store whose decoded posting
// volume is several times the cache budget must keep live-heap growth
// bounded by the budget plus per-query scratch — the larger-than-RAM
// property. Skipped under -race (build tag): the race runtime's shadow
// memory makes heap accounting meaningless. CI runs this test in its own
// step with a small GOMEMLIMIT so a residency regression fails loudly
// instead of quietly growing.
func TestBlockStoreMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("memory smoke is not -short friendly")
	}
	c := WrapCorpus(corpus.GenHappyDB(20000, 5))
	path := filepath.Join(t.TempDir(), "big.koko")
	if err := NewEngine(c, nil).SaveAs(path, FormatBlock); err != nil {
		t.Fatal(err)
	}

	// A budget far below the store's decodable posting volume (word lists
	// alone exceed it several times; hierarchy node lists are larger
	// still), so serving the suite forces eviction — verified below.
	const budget = 1 << 20
	r, err := blockstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	wordPostingBytes := int64(r.SourceStats().TotalPostings) * int64(unsafe.Sizeof(index.Posting{}))
	r.Close()
	if wordPostingBytes < 4*budget {
		t.Fatalf("corpus too small to exercise the budget: %d word-posting bytes vs %d budget", wordPostingBytes, budget)
	}
	blockstore.SetDefaultBudget(budget)
	defer blockstore.SetDefaultBudget(blockstore.DefaultBudgetBytes)

	eng, err := Load(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eng.ix.Source() == nil {
		t.Fatal("engine is not block-backed")
	}

	// Word-anchored suite (pure-wildcard paths materialize whole hierarchy
	// unions by design, same as the heap store — not a paging regression).
	queries := []string{
		`extract e:Entity, d:Str from "moments" if
		 (/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))`,
		`extract x:Str from "moments" if
		 (/ROOT:{ a = //"ate", b = a/dobj, x = (b.subtree) } (b) eq (b))`,
		`extract o:Str from "moments" if (
		 /ROOT:{ v = //verb, b = v/dobj, o = (b.subtree) })
		 satisfying o ("ate" o {0.7}) or (o near "delicious" {1}) with threshold 0.2`,
	}
	base := liveHeap() // corpus + engine resident, zero blocks decoded
	var peak uint64
	for pass := 0; pass < 2; pass++ {
		for _, src := range queries {
			if _, err := eng.Query(src); err != nil {
				t.Fatalf("query: %v", err)
			}
			if h := liveHeap(); h > peak {
				peak = h
			}
		}
	}
	growth := int64(peak) - int64(base)
	// Allow 2× budget for bounded CLOCK overshoot plus a fixed allowance
	// for the engine's own caches (regex, scores). What must NOT fit in
	// the allowance is the store's full posting volume.
	limit := int64(2*budget + 8<<20)
	if growth > limit {
		t.Fatalf("live heap grew %d bytes (budget %d, limit %d): block cache not bounding residency", growth, budget, limit)
	}
	st := blockstore.DefaultStats()
	if st.Decodes == 0 {
		t.Fatal("no blocks decoded — queries never touched the store")
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions despite %d word-posting bytes vs %d budget: %+v", wordPostingBytes, budget, st)
	}
}
