package koko

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
)

// The planner differential suite: selectivity-ordered evaluation
// (Plan:"on") must produce byte-identical results to written-order
// evaluation (Plan:"off" — the frozen seed evaluator's order) for every
// corpus generator, shard count, and worker setting, including delta-index
// snapshots taken mid-ingest. Run under -race: Workers=2 exercises the
// reordered candidate build concurrently.

// planDiffQueries extends a diffCase's workload with a query shaped to make
// the planner reorder: the O(t²) elastic span is written first and the
// rarely-adjacent two-word phrase last, so the plan moves the phrase to the
// front (see internal/experiments/planbench.go).
func planDiffQueries(tc diffCase, source, phrase string) []string {
	q := fmt.Sprintf(`extract a:Str from %q if (
		/ROOT:{ a = ^[min=1,max=2], v = //verb, w = %q } (w) in (a))`, source, phrase)
	return append(append([]string(nil), tc.queries...), q)
}

// planPhrases pairs each diffCase corpus with its adversarial phrase and
// query source name.
var planPhrases = map[string]struct{ source, phrase string }{
	"cafes":   {"blogs", "on the"},
	"tweets":  {"tweets", "at the"},
	"happydb": {"moments", "today and"},
}

// TestPlanDifferential: planner-on vs planner-off over three generators,
// K ∈ {1,3} shards, Workers=2, plain and Explain. At least one query in the
// suite must actually reorder, or the comparison is vacuous.
func TestPlanDifferential(t *testing.T) {
	reorderedAny := false
	for _, tc := range diffCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := tc.corpus()
			pp := planPhrases[tc.name]
			queries := planDiffQueries(tc, pp.source, pp.phrase)
			engines := []struct {
				name string
				q    Querier
			}{
				{"k=1", NewEngine(c, nil)},
				{"k=3", NewShardedEngine(c, 3, nil)},
			}
			tuples := 0
			for _, eng := range engines {
				for qi, src := range queries {
					for _, explain := range []bool{false, true} {
						off := mustRun(t, eng.q, src, &QueryOptions{Workers: 2, Explain: explain, Plan: "off"})
						on := mustRun(t, eng.q, src, &QueryOptions{Workers: 2, Explain: explain, Plan: "on"})
						label := fmt.Sprintf("%s q=%d explain=%t", eng.name, qi, explain)
						sameResults(t, label, off, on)
						tuples += len(on.Tuples)
						if off.Plan != nil {
							t.Errorf("%s: plan-off result carries a plan block", label)
						}
						if on.Plan != nil && on.Plan.Reordered {
							reorderedAny = true
						}
					}
				}
			}
			if tuples == 0 {
				t.Fatal("workload produces no tuples; differential test is vacuous")
			}
		})
	}
	if !reorderedAny {
		t.Fatal("no query in the suite was reordered; the differential never exercised the planner")
	}
}

// TestPlanDifferentialMutable: the same on/off equivalence must hold on a
// delta-index snapshot taken mid-ingest (base + unsealed delta) and again
// after more ingestion — the planner sees per-snapshot DPLI estimates, the
// written-order baseline must still match byte for byte.
func TestPlanDifferentialMutable(t *testing.T) {
	base := WrapCorpus(corpus.GenHappyDB(200, 3))
	m := NewMutable(NewEngine(base, nil), nil)
	m.SetName("moments")
	extra := []string{
		"I ate a delicious cheesecake today and felt great about it.",
		"We watched the game today and my team won the whole thing.",
		"She bought some flowers today and put them on the table.",
		"He cooked a delicious dinner and we ate it together today.",
	}
	src := `extract a:Str from "moments" if (
		/ROOT:{ a = ^[min=1,max=2], v = //verb, w = "today and" } (w) in (a))`
	check := func(stage string, snap *Snapshot) {
		t.Helper()
		off := mustRun(t, snap, src, &QueryOptions{Workers: 2, Plan: "off"})
		on := mustRun(t, snap, src, &QueryOptions{Workers: 2, Plan: "on"})
		sameResults(t, stage, off, on)
		if len(on.Tuples) == 0 {
			t.Fatalf("%s: no tuples; differential is vacuous", stage)
		}
	}
	// Mid-ingest: two docs in the delta, two still to come.
	for i, text := range extra[:2] {
		if _, err := m.AddDocument(fmt.Sprintf("extra-%d", i), text); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()
	if snap.DeltaDocs() != 2 {
		t.Fatalf("mid-ingest snapshot has %d delta docs, want 2", snap.DeltaDocs())
	}
	check("mid-ingest", snap)
	for i, text := range extra[2:] {
		if _, err := m.AddDocument(fmt.Sprintf("late-%d", i), text); err != nil {
			t.Fatal(err)
		}
	}
	// The earlier snapshot must be unaffected by later ingestion, and the
	// new snapshot must agree with itself under both plans.
	check("mid-ingest-after-more", snap)
	check("post-ingest", m.Snapshot())
	if _, err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	check("post-compact", m.Snapshot())
}
