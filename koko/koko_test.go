package koko

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	c := NewCorpus(nil, []string{
		"I ate a chocolate ice cream, which was delicious, and also ate a pie.",
	})
	if c.NumDocuments() != 1 || c.NumSentences() != 1 {
		t.Fatalf("docs=%d sents=%d", c.NumDocuments(), c.NumSentences())
	}
	eng := NewEngine(c, nil)
	res, err := eng.Query(`
		extract e:Entity, d:Str from input.txt if
		(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 || res.Tuples[0].Values[0] != "chocolate ice cream" {
		t.Fatalf("tuples = %v", res.Tuples)
	}
	if res.Candidates == 0 || res.Matched == 0 {
		t.Errorf("pruning stats: %+v", res)
	}
	st := eng.Stats()
	if st.Words == 0 || st.PLNodes == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPublicAPIOptions(t *testing.T) {
	c := NewCorpus(nil, []string{"La Marzocco serves espresso. Blue Fox Cafe serves espresso."})
	eng := NewEngine(c, &Options{
		Dicts:    map[string][]string{"Brands": {"La Marzocco"}},
		Ontology: map[string][]string{"coffee": {"gibraltar"}},
	})
	res, err := eng.Query(`
		extract x:Entity from "c" if ()
		satisfying x (str(x) contains "Cafe" {1}) with threshold 0.5
		excluding (str(x) in dict("Brands"))`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range res.Tuples {
		if tp.Values[0] == "La Marzocco" {
			t.Errorf("dict exclusion ignored: %v", tp)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(`extract x:Entity from f if ()`); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := Validate(`select * from t`); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	texts := []string{
		"Anna ate some delicious cheesecake that she bought at a grocery store.",
		"I ate a chocolate ice cream, which was delicious, and also ate a pie.",
	}
	eng := NewEngine(NewCorpus(nil, texts), nil)
	path := filepath.Join(t.TempDir(), "corpus.koko")
	if err := eng.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := `extract x:Str from f if (/ROOT:{ x = //verb/dobj })`
	r1, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := got.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	v1 := map[string]bool{}
	v2 := map[string]bool{}
	for _, tp := range r1.Tuples {
		v1[tp.Values[0]] = true
	}
	for _, tp := range r2.Tuples {
		v2[tp.Values[0]] = true
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Errorf("reloaded engine differs: %v vs %v", v1, v2)
	}
}
