// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation at benchmark-friendly scale (one Benchmark per
// artifact; DESIGN.md §2 maps ids to paper artifacts). The full-scale runs
// live in cmd/kokobench; these benches exist so `go test -bench=.` exercises
// every experiment pipeline and reports its cost.
package repro

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/experiments"
)

// BenchmarkFig3CafeExtraction — Figure 3: Koko vs IKE vs CRFsuite on the
// BaristaMag-like corpus (full paper size: 84 articles, 137 cafes).
func BenchmarkFig3CafeExtraction(b *testing.B) {
	lc := corpus.GenCafes(corpus.BaristaMagConfig(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCafeExtraction("BaristaMag", lc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportBestF1(b, res)
		}
	}
}

// BenchmarkFig4TweetExtraction — Figure 4: teams and facilities from WNUT
// tweets.
func BenchmarkFig4TweetExtraction(b *testing.B) {
	w := corpus.GenWNUT(corpus.WNUTConfig{Tweets: 800, Seed: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cat := range []string{"teams", "facilities"} {
			if _, err := experiments.RunTweetExtraction(w, cat); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig5Descriptors — Figure 5: the cafe query without descriptor
// conditions.
func BenchmarkFig5Descriptors(b *testing.B) {
	lc := corpus.GenCafes(corpus.BaristaMagConfig(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunKokoNoDescriptors("BaristaMag", lc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNELL — §6.1: the NELL bootstrapper on the cafe task.
func BenchmarkNELL(b *testing.B) {
	lc := corpus.GenCafes(corpus.BaristaMagConfig(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunNELL("BaristaMag", lc, 7)
		if i == 0 {
			b.ReportMetric(res.PRF.Precision, "precision")
			b.ReportMetric(res.PRF.Recall, "recall")
		}
	}
}

// BenchmarkFig6IndexConstruction — Figure 6: build time and size for all
// four indexing schemes.
func BenchmarkFig6IndexConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := experiments.RunIndexConstruction([]int{400}, 3)
		if i == 0 {
			for _, p := range points {
				b.ReportMetric(float64(p.SizeBytes)/1024, p.Scheme+"-KB")
			}
		}
	}
}

// BenchmarkFig7LookupHappyDB — Figure 7: SyntheticTree lookups over HappyDB.
func BenchmarkFig7LookupHappyDB(b *testing.B) {
	c := corpus.GenHappyDB(1500, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := experiments.RunIndexLookup(c, 1500, 5)
		if i == 0 {
			for _, p := range points {
				b.ReportMetric(p.Effectiveness, p.Scheme+"-eff")
			}
		}
	}
}

// BenchmarkFig8LookupWikipedia — Figure 8: the same over Wikipedia articles.
func BenchmarkFig8LookupWikipedia(b *testing.B) {
	c, _ := corpus.GenWikipedia(600, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if points := experiments.RunIndexLookup(c, 600, 7); i == 0 {
			for _, p := range points {
				b.ReportMetric(p.Effectiveness, p.Scheme+"-eff")
			}
		}
	}
}

// BenchmarkTable1GSP — Table 1: GSP vs NOGSP per-sentence extract time.
func BenchmarkTable1GSP(b *testing.B) {
	c := corpus.GenHappyDB(600, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := experiments.RunGSPAblation(c, "HappyDB", 9, 8, 150)
		if i == 0 {
			for _, p := range points {
				name := "gsp"
				if !p.GSP {
					name = "nogsp"
				}
				b.ReportMetric(float64(p.PerSent.Microseconds()),
					name+"-atoms"+string(rune('0'+p.Atoms))+"-us/sent")
			}
		}
	}
}

// BenchmarkTable2Breakdown — Table 2: the three §6.3 queries with the
// article store on disk.
func BenchmarkTable2Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunScaleBreakdown([]int{600}, 10)
	}
}

// BenchmarkOdin — §6.3: Odin cascade vs Koko on the three queries.
func BenchmarkOdin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := experiments.RunOdinComparison(600, 11)
		if i == 0 {
			for _, p := range points {
				b.ReportMetric(p.Slowdown, p.Query+"-slowdown")
			}
		}
	}
}

// BenchmarkAblationIndexes — design-choice ablation: DPLI with each index
// family removed (DESIGN.md §4).
func BenchmarkAblationIndexes(b *testing.B) {
	c := corpus.GenHappyDB(800, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := experiments.RunIndexAblation(c, 13)
		if i == 0 {
			for _, p := range points {
				b.ReportMetric(p.Effectiveness, strings.ReplaceAll(p.Mode, " ", "-")+"-eff")
			}
		}
	}
}

func reportBestF1(b *testing.B, res *experiments.QualityResult) {
	best := 0.0
	for _, p := range res.Koko.Points {
		if p.F1 > best {
			best = p.F1
		}
	}
	b.ReportMetric(best, "koko-F1")
	for _, p := range res.IKE.Points {
		b.ReportMetric(p.F1, "ike-F1")
		break
	}
	for _, p := range res.CRF.Points {
		b.ReportMetric(p.F1, "crf-F1")
		break
	}
}
