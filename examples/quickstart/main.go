// Quickstart: the paper's Example 2.1 on the Figure 1 sentence.
//
// The query combines a dependency-tree pattern (a verb with a direct object
// whose subtree contains "delicious") with a span output (the object's
// subtree) and an entity constraint — the combination no prior declarative
// extraction language supported in one query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/koko"
)

func main() {
	c := koko.NewCorpus(nil, []string{
		"I ate a chocolate ice cream, which was delicious, and also ate a pie. " +
			"Anna ate some delicious cheesecake that she bought at a grocery store.",
	})
	eng := koko.NewEngine(c, nil)

	st := eng.Stats()
	fmt.Printf("indexed %d sentences: %d words, %d entities, PL hierarchy %d nodes (%.2f%% merged)\n\n",
		c.NumSentences(), st.Words, st.Entities, st.PLNodes, 100*st.PLCompression)

	res, err := eng.Query(`
		extract e:Entity, d:Str from input.txt if
		(/ROOT:{
			a = //verb,
			b = a/dobj,
			c = b//"delicious",
			d = (b.subtree)
		} (b) in (e))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("extract pairs (entity, object subtree) where the object is described as delicious:")
	for _, t := range res.Tuples {
		fmt.Printf("  e=%q  d=%q  (sentence %d)\n", t.Values[0], t.Values[1], t.SentenceID)
	}
	fmt.Printf("\n%d candidate sentences after index pruning, %d matched, %v total\n",
		res.Candidates, res.Matched, res.Elapsed)
}
