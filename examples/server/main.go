// Example server: runs the kokod service in-process, then acts as an HTTP
// client against it — listing corpora, validating a query, querying two
// corpora concurrently, and demonstrating the result cache on a repeat.
//
//	go run ./examples/server
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"

	"repro/internal/server"
	"repro/koko"
)

func main() {
	svc := server.NewService(server.Config{MaxConcurrent: 4})
	if err := svc.Registry().Register("cafes", koko.NewEngine(koko.NewCorpus(
		[]string{"seattle.txt", "portland.txt"},
		[]string{
			"Cafe Vita serves smooth espresso daily. Cafe Juanita hired a champion barista.",
			"Cafe Umbria opened a second location.",
		}), nil)); err != nil {
		log.Fatal(err)
	}
	if err := svc.Registry().Register("food", koko.NewEngine(koko.NewCorpus(nil,
		[]string{"I ate a chocolate ice cream, which was delicious, and also ate a pie."}), nil)); err != nil {
		log.Fatal(err)
	}

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	fmt.Printf("kokod serving at %s\n\n", ts.URL)

	// 1. List the registry.
	var listing struct {
		Corpora []server.CorpusInfo `json:"corpora"`
	}
	get(ts.URL+"/v1/corpora", &listing)
	for _, c := range listing.Corpora {
		fmt.Printf("corpus %-6s gen=%d docs=%d sentences=%d\n", c.Name, c.Generation, c.Documents, c.Sentences)
	}

	// 2. Validate a query; the canonical form is the cache key text.
	cafeQuery := `extract x:Entity from "blogs" if ()
		satisfying x (str(x) contains "Cafe" {1.0}) with threshold 0.5`
	var v struct {
		Valid     bool   `json:"valid"`
		Canonical string `json:"canonical"`
	}
	post(ts.URL+"/v1/validate", map[string]string{"query": cafeQuery}, &v)
	fmt.Printf("\nvalidate: valid=%t canonical=%q\n", v.Valid, v.Canonical)

	// 3. Query both corpora concurrently.
	foodQuery := `extract e:Entity, d:Str from input.txt if
		(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))`
	reqs := []server.QueryRequest{
		{Corpus: "cafes", Query: cafeQuery},
		{Corpus: "food", Query: foodQuery, Explain: true},
	}
	var wg sync.WaitGroup
	results := make([]server.QueryResponse, len(reqs))
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r server.QueryRequest) {
			defer wg.Done()
			post(ts.URL+"/v1/query", r, &results[i])
		}(i, r)
	}
	wg.Wait()
	for i, res := range results {
		fmt.Printf("\n%s: %d tuples (cached=%t, total %.2fms, extract %.2fms, satisfying %.2fms)\n",
			reqs[i].Corpus, len(res.Tuples), res.Cached,
			res.Phases.Total, res.Phases.Extract, res.Phases.Satisfying)
		for _, t := range res.Tuples {
			fmt.Printf("  sid=%d %v\n", t.SentenceID, t.Values)
			for _, ev := range t.Evidence {
				fmt.Printf("    %-30s weight=%.2f conf=%.3f -> %.3f\n",
					ev.Condition, ev.Weight, ev.Confidence, ev.Contribution)
			}
		}
	}

	// 4. Repeat the cafe query: served from the result cache.
	var again server.QueryResponse
	post(ts.URL+"/v1/query", reqs[0], &again)
	fmt.Printf("\nrepeat cafes query: cached=%t, %d tuples\n", again.Cached, len(again.Tuples))

	var m server.MetricsSnapshot
	get(ts.URL+"/v1/metrics", &m)
	fmt.Printf("metrics: queries=%d hits=%d misses=%d peak_in_flight=%d\n",
		m.QueriesTotal, m.CacheHits, m.CacheMisses, m.PeakInFlight)
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func post(url string, body, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
