// Tweets: the appendix A.2 queries extracting sports teams and facilities
// from short single-sentence documents — the regime where cross-sentence
// evidence aggregation cannot help (§6.1).
//
//	go run ./examples/tweets
package main

import (
	"fmt"
	"log"

	"repro/koko"
)

func main() {
	tweets := []string{
		"River Tigers vs Bay Sharks tonight at 7 pm.",
		"go North Falcons beat the Iron Wolves.",
		"Hill Rovers to host the soccer final this weekend.",
		"we are at Riverside Stadium for the show.",
		"went to Harbor Museum with the kids today.",
		"meet me at Union Station at 8 pm.",
		"traffic was terrible downtown today at noon.",
	}
	eng := koko.NewEngine(koko.NewCorpus(nil, tweets), nil)

	teams, err := eng.Query(`
		extract x:Entity from "tweets" if ()
		satisfying x
		(x [["to host"]] {0.9}) or
		(x "vs" {0.9}) or
		("vs" x {0.9}) or
		(x [["soccer"]] {0.9}) or
		("go" x {0.9})
		with threshold 0.5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sports teams (Figure 11 query):")
	printDistinct(teams)

	facilities, err := eng.Query(`
		extract x:Entity from "tweets" if ()
		satisfying x
		("at" x {1}) or
		([["went to"]] x {0.8}) or
		([["go to"]] x {0.8})
		with threshold 0.5
		excluding
		(str(x) contains "pm") or
		(str(x) mentions "@") or
		(str(x) contains "today")`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("facilities (Figure 10 query):")
	printDistinct(facilities)
}

func printDistinct(res *koko.Result) {
	seen := map[string]bool{}
	for _, t := range res.Tuples {
		if !seen[t.Values[0]] {
			seen[t.Values[0]] = true
			fmt.Printf("  %s (score %.2f)\n", t.Values[0], t.Scores["x"])
		}
	}
	fmt.Println()
}
