// Cafes: evidence aggregation across a document (the paper's flagship use
// case, §2.2/§6.1). Cafe names in blog posts are rare-mention entities: no
// single sentence proves an entity is a cafe, but weighted evidence from
// multiple paraphrased mentions ("serves up delicious cappuccinos", "hired
// the star barista") accumulates past a threshold.
//
//	go run ./examples/cafes
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/koko"
)

func main() {
	blog := "Gravity Beans opened downtown last month. " +
		"The owners say Gravity Beans serves up delicious cappuccinos every morning. " +
		"Gravity Beans recently hired the star barista from Portland. " +
		"We also stopped by Ritual Works, a cafe near the old mill. " +
		"The shop pulls shots on a La Marzocco machine. " +
		"Portland produces and sells the best coffee."
	c := koko.NewCorpus([]string{"blog-post"}, []string{blog})
	eng := koko.NewEngine(c, &koko.Options{
		Dicts: map[string][]string{"Location": {"Portland", "Seattle"}},
		// A domain ontology guides descriptor expansion (§4.4.1(a)).
		Ontology: map[string][]string{"coffee": {"cappuccinos", "cortados"}},
	})

	res, err := eng.Query(`
		extract x:Entity from "blog" if ()
		satisfying x
		(str(x) contains "Cafe" {1}) or
		(x ", a cafe" {1}) or
		(x [["serves coffee"]] {0.4}) or
		(x [["hired barista"]] {0.4})
		with threshold 0.35
		excluding
		(str(x) matches "[Ll]a Marzocco") or
		(str(x) in dict("Location"))`)
	if err != nil {
		log.Fatal(err)
	}

	type hit struct {
		name  string
		score float64
	}
	best := map[string]float64{}
	for _, t := range res.Tuples {
		if s := t.Scores["x"]; s > best[t.Values[0]] {
			best[t.Values[0]] = s
		}
	}
	var hits []hit
	for n, s := range best {
		hits = append(hits, hit{n, s})
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].score > hits[j].score })

	fmt.Println("cafes extracted by aggregated evidence:")
	for _, h := range hits {
		fmt.Printf("  %-18s score %.3f\n", h.name, h.score)
	}
	fmt.Println("\nnote: 'La Marzocco' (espresso-machine brand) and 'Portland'")
	fmt.Println("(location) were suppressed by the excluding clause; no single")
	fmt.Println("sentence said Gravity Beans is a cafe — the evidence is aggregated.")
}
