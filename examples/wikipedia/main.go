// Wikipedia: the three §6.3 scale-up queries (Chocolate / Title /
// DateOfBirth) over a generated Wikipedia-like corpus, demonstrating how
// selectivity drives both result counts and where evaluation time goes.
//
//	go run ./examples/wikipedia
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/koko"
)

func main() {
	// 2000 generated articles: biographies (with birth dates and
	// occasional nicknames), places, and the rare chocolate-type article.
	gen, stats := corpus.GenWikipedia(2000, 42)
	var names, texts []string
	for d := 0; d < gen.NumDocs(); d++ {
		first, end := gen.DocSentences(d)
		text := ""
		for sid := first; sid < end; sid++ {
			text += gen.Sentence(sid).String() + " "
		}
		names = append(names, gen.Docs[d].Name)
		texts = append(texts, text)
	}
	eng := koko.NewEngine(koko.NewCorpus(names, texts), nil)
	fmt.Printf("corpus: %d articles (chocolate in %d, nicknames in %d, birth dates in %d)\n\n",
		stats.Articles, stats.Chocolate, stats.Title, stats.DateOfBirth)

	queries := []struct{ name, src string }{
		{"Chocolate (low selectivity)", `
			extract c:Entity from wiki.article if (
			/ROOT:{ v = //verb, o = v//pobj[text="chocolate"], s = v/nsubj } (s) in (c))
			satisfying v (str(v) ~ "is" {1})`},
		{"Title (medium selectivity)", `
			extract a:Person, b:Str from wiki.article if (
			/ROOT:{ v = //"called", p = v/propn, b = p.subtree, c = a + ^ + v + ^ + b })`},
		{"DateOfBirth (high selectivity)", `
			extract a:Person, b:Date from wiki.article if (/ROOT:{v = verb})
			satisfying v (str(v) ~ "born" {1})`},
	}
	for _, q := range queries {
		res, err := eng.Query(q.src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  %d tuples from %d candidate sentences in %v\n",
			q.name, len(res.Tuples), res.Candidates, res.Elapsed)
		for i, t := range res.Tuples {
			if i >= 3 {
				fmt.Printf("  ... and %d more\n", len(res.Tuples)-3)
				break
			}
			fmt.Printf("  %v\n", t.Values)
		}
		fmt.Println()
	}
}
