#!/usr/bin/env bash
# End-to-end smoke of the kokod HTTP surface: boot the server on the demo
# corpora (sharded, so streaming and jobs exercise the fan-out path), run
# one buffered query, one streamed NDJSON query, and one async job to
# completion, failing on any non-2xx response (curl -f) or missing payload.
set -euo pipefail

ADDR="127.0.0.1:7333"
BASE="http://$ADDR/v1"

go build -o /tmp/kokod ./cmd/kokod
/tmp/kokod -demo -shards 3 -addr "$ADDR" &
KOKOD_PID=$!
trap 'kill $KOKOD_PID 2>/dev/null || true' EXIT

for i in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if [ "$i" = 100 ]; then echo "kokod never became healthy" >&2; exit 1; fi
  sleep 0.1
done
# Guard against a stale listener answering for us: the kokod we spawned
# must be the process that is alive and serving.
if ! kill -0 "$KOKOD_PID" 2>/dev/null; then
  echo "spawned kokod died (port already in use?); refusing to smoke a stale server" >&2
  exit 1
fi

QUERY_TEXT='extract x:Entity from \"blogs\" if () satisfying x (str(x) contains \"Cafe\" {1.0}) with threshold 0.5'

echo "== buffered query"
curl -sf "$BASE/query" -d "{\"corpus\":\"demo-cafes\",\"query\":\"$QUERY_TEXT\"}" | grep -q '"Cafe Vita"'

echo "== query planner: plan block + metrics"
# An extract query with real conditions carries the planner's chosen order;
# plan=off (the written-order differential baseline) must not.
PLAN_QUERY='extract a:Str from \"blogs\" if (/ROOT:{ a = ^[min=1,max=2], v = //verb, w = \"Cafe Vita\" } (w) in (a))'
PLANRESP=$(curl -sf "$BASE/query" -d "{\"corpus\":\"demo-cafes\",\"query\":\"$PLAN_QUERY\"}")
echo "$PLANRESP" | grep -q '"plan":{'
echo "$PLANRESP" | grep -q '"steps":\['
OFFRESP=$(curl -sf "$BASE/query" -d "{\"corpus\":\"demo-cafes\",\"query\":\"$PLAN_QUERY\",\"plan\":\"off\"}")
if echo "$OFFRESP" | grep -q '"plan":{'; then
  echo "plan=off response carries a plan block" >&2; exit 1
fi
curl -sf "$BASE/metrics" | grep -q '"plans_reordered"'
curl -sf "$BASE/metrics" | grep -q '"plan_time_us"'

echo "== streamed NDJSON query"
STREAM=$(curl -sf "$BASE/query?stream=1" -d "{\"corpus\":\"demo-cafes\",\"query\":\"$QUERY_TEXT\",\"no_cache\":true}")
echo "$STREAM" | grep -q '"tuple"'
echo "$STREAM" | grep -q '"shard"'
echo "$STREAM" | tail -n 1 | grep -q '"done"'

echo "== async job"
JOB_ID=$(curl -sf -X POST "$BASE/jobs" -d "{\"corpus\":\"demo-cafes\",\"queries\":[\"$QUERY_TEXT\"]}" \
  | sed -E 's/.*"id":"([^"]+)".*/\1/')
if [ -z "$JOB_ID" ]; then echo "job submit returned no id" >&2; exit 1; fi
for i in $(seq 1 100); do
  STATE=$(curl -sf "$BASE/jobs/$JOB_ID" | sed -E 's/.*"state":"([^"]+)".*/\1/')
  case "$STATE" in
    done) break ;;
    failed|cancelled) echo "job ended $STATE" >&2; exit 1 ;;
  esac
  if [ "$i" = 100 ]; then echo "job never finished (state $STATE)" >&2; exit 1; fi
  sleep 0.1
done
curl -sf "$BASE/jobs/$JOB_ID/results" | grep -q '"Cafe Vita"'
curl -sf -X DELETE "$BASE/jobs/$JOB_ID" >/dev/null
curl -sf "$BASE/metrics" | grep -q '"jobs"'

echo "== live ingestion (delta index)"
INGEST=$(curl -sf -X POST "$BASE/corpora/demo-cafes/documents" \
  -d '{"name":"ladro.txt","text":"Cafe Ladro opened a new roastery downtown."}')
echo "$INGEST" | grep -q '"delta_docs":1'
# The ingested document is queryable immediately, at a new generation.
curl -sf "$BASE/query" -d "{\"corpus\":\"demo-cafes\",\"query\":\"$QUERY_TEXT\"}" | grep -q '"Cafe Ladro"'
curl -sf "$BASE/corpora/demo-cafes/stats" | grep -q '"delta":true'

echo "== compaction (delta folded into base shards)"
COMPACT=$(curl -sf -X POST "$BASE/corpora/demo-cafes/compact")
echo "$COMPACT" | grep -q '"compacted_docs":1'
echo "$COMPACT" | grep -q '"delta_docs":0'
# Identical results after the fold.
curl -sf "$BASE/query" -d "{\"corpus\":\"demo-cafes\",\"query\":\"$QUERY_TEXT\"}" | grep -q '"Cafe Ladro"'
curl -sf "$BASE/corpora/demo-cafes/stats" | grep -q '"compactions":1'

echo "== corpus deletion"
curl -sf -X DELETE "$BASE/corpora/demo-food" | grep -q '"deleted":"demo-food"'
STATUS=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/query" \
  -d '{"corpus":"demo-food","query":"extract x:Entity from \"reviews\" if ()"}')
if [ "$STATUS" != 404 ]; then echo "deleted corpus answered $STATUS, want 404" >&2; exit 1; fi
curl -sf "$BASE/metrics" | grep -q '"ingests_total":1'

echo "== error envelope: stable machine-readable codes"
# Every /v1 failure answers {"error":{"code":"...","message":"..."}} with a
# stable code (the README's table). Unknown corpus -> not_found.
ERR=$(curl -s "$BASE/query" -d '{"corpus":"no-such-corpus","query":"extract x:Entity from \"blogs\" if ()"}')
echo "$ERR" | grep -q '"error":{"code":"not_found"'
# Unparsable query -> bad_query.
ERR=$(curl -s "$BASE/query" -d '{"corpus":"demo-cafes","query":"extract nonsense"}')
echo "$ERR" | grep -q '"error":{"code":"bad_query"'
# Undecodable body -> bad_request.
ERR=$(curl -s "$BASE/query" -d '{not json')
echo "$ERR" | grep -q '"error":{"code":"bad_request"'
# Unknown job -> not_found through the jobs surface too.
ERR=$(curl -s "$BASE/jobs/nonexistent")
echo "$ERR" | grep -q '"error":{"code":"not_found"'

echo "== durability: ingest + delete -> kill -9 -> restart -> replayed state"
ADDR2="127.0.0.1:7334"
BASE2="http://$ADDR2/v1"
DATA_DIR=$(mktemp -d)
# -wal-sync always: every ack is on disk before it reaches the client, so
# kill -9 at any point after the responses below must lose nothing.
/tmp/kokod -demo -shards 3 -addr "$ADDR2" -data-dir "$DATA_DIR" -wal-sync always &
KOKOD2_PID=$!
trap 'kill $KOKOD_PID 2>/dev/null || true; kill -9 $KOKOD2_PID 2>/dev/null || true; rm -rf "$DATA_DIR"' EXIT

wait_healthy() {
  for i in $(seq 1 100); do
    if curl -sf "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "kokod at $1 never became healthy" >&2
  return 1
}
wait_healthy "$BASE2"

curl -sf -X POST "$BASE2/corpora/demo-cafes/documents" \
  -d '{"name":"ladro.txt","text":"Cafe Ladro opened a new roastery downtown."}' >/dev/null
curl -sf "$BASE2/query" -d "{\"corpus\":\"demo-cafes\",\"query\":\"$QUERY_TEXT\"}" | grep -q '"Cafe Ladro"'
curl -sf "$BASE2/query" -d "{\"corpus\":\"demo-cafes\",\"query\":\"$QUERY_TEXT\",\"no_cache\":true}" | grep -q '"Cafe Umbria"'
curl -sf -X DELETE "$BASE2/corpora/demo-cafes/documents/portland.txt" | grep -q '"deleted":1'
# The deleted document's tuples are masked immediately.
if curl -sf "$BASE2/query" -d "{\"corpus\":\"demo-cafes\",\"query\":\"$QUERY_TEXT\",\"no_cache\":true}" | grep -q '"Cafe Umbria"'; then
  echo "deleted document still visible before crash" >&2; exit 1
fi

kill -9 "$KOKOD2_PID"
wait "$KOKOD2_PID" 2>/dev/null || true
/tmp/kokod -demo -shards 3 -addr "$ADDR2" -data-dir "$DATA_DIR" -wal-sync always &
KOKOD2_PID=$!
wait_healthy "$BASE2"

# The ingested document survived the crash; the deleted one stayed deleted.
POST=$(curl -sf "$BASE2/query" -d "{\"corpus\":\"demo-cafes\",\"query\":\"$QUERY_TEXT\"}")
echo "$POST" | grep -q '"Cafe Ladro"'
echo "$POST" | grep -q '"Cafe Vita"'
if echo "$POST" | grep -q '"Cafe Umbria"'; then
  echo "deleted document resurrected by restart" >&2; exit 1
fi
curl -sf "$BASE2/metrics" | grep -q '"wal_replayed_docs":[1-9]'
kill "$KOKOD2_PID" 2>/dev/null || true

echo "== chaos drill: coordinator + 2 workers, kill -9 one mid-query"
W1_ADDR="127.0.0.1:7335"; W1_BASE="http://$W1_ADDR/v1"
W2_ADDR="127.0.0.1:7336"; W2_BASE="http://$W2_ADDR/v1"
CO_ADDR="127.0.0.1:7337"; CO_BASE="http://$CO_ADDR/v1"

/tmp/kokod -demo -shards 3 -addr "$W1_ADDR" &
W1_PID=$!
/tmp/kokod -demo -shards 3 -addr "$W2_ADDR" &
W2_PID=$!
trap 'kill $KOKOD_PID $W1_PID $CO_PID 2>/dev/null || true; kill -9 $KOKOD2_PID $W2_PID 2>/dev/null || true; rm -rf "$DATA_DIR"' EXIT
wait_healthy "$W1_BASE"
wait_healthy "$W2_BASE"

/tmp/kokod -role coordinator -worker "http://$W1_ADDR" -worker "http://$W2_ADDR" \
  -replicas 2 -attempt-timeout 2s -retries 3 -addr "$CO_ADDR" &
CO_PID=$!
wait_healthy "$CO_BASE"
curl -sf "$CO_BASE/corpora" | grep -q '"demo-cafes"'

# Reference tuple set from a worker evaluated locally; the coordinator's
# distributed answer must match it byte-for-byte, before and after the kill.
# (Field order is fixed, so the sed slice is the exact tuples array.)
tuples_of() { sed -n 's/.*"tuples":\(\[.*\]\),"candidates":.*/\1/p'; }
REF=$(curl -sf "$W1_BASE/query" -d "{\"corpus\":\"demo-cafes\",\"query\":\"$QUERY_TEXT\"}" | tuples_of)
if [ -z "$REF" ]; then echo "reference query produced no tuples" >&2; exit 1; fi
DIST=$(curl -sf "$CO_BASE/query" -d "{\"corpus\":\"demo-cafes\",\"query\":\"$QUERY_TEXT\",\"no_cache\":true}" | tuples_of)
if [ "$DIST" != "$REF" ]; then
  echo "distributed tuples diverge from single-node before kill:" >&2
  echo " ref:  $REF" >&2; echo " dist: $DIST" >&2; exit 1
fi

# Kill one worker with a distributed query in flight: the query must still
# come back, and with exactly the single-node tuples (replicas absorb it).
curl -sf "$CO_BASE/query" -d "{\"corpus\":\"demo-cafes\",\"query\":\"$QUERY_TEXT\",\"no_cache\":true}" > /tmp/chaos_inflight.json &
CURL_PID=$!
kill -9 "$W2_PID"
wait "$W2_PID" 2>/dev/null || true
if ! wait "$CURL_PID"; then echo "in-flight query failed during worker kill" >&2; exit 1; fi
INFLIGHT=$(tuples_of < /tmp/chaos_inflight.json)
if [ "$INFLIGHT" != "$REF" ]; then
  echo "in-flight query lost tuples when the worker died:" >&2
  echo " ref:  $REF" >&2; echo " got:  $INFLIGHT" >&2; exit 1
fi
AFTER=$(curl -sf "$CO_BASE/query" -d "{\"corpus\":\"demo-cafes\",\"query\":\"$QUERY_TEXT\",\"no_cache\":true}" | tuples_of)
if [ "$AFTER" != "$REF" ]; then
  echo "post-kill query diverges from single-node:" >&2
  echo " ref:  $REF" >&2; echo " got:  $AFTER" >&2; exit 1
fi

# The fault tolerance left fingerprints: attempts and retries in metrics.
METRICS=$(curl -sf "$CO_BASE/metrics")
echo "$METRICS" | grep -q '"remote_attempts":[1-9]'
echo "$METRICS" | grep -q '"remote_retries":[1-9]'
kill "$W1_PID" "$CO_PID" 2>/dev/null || true

echo "api smoke OK"
