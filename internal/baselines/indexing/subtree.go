package indexing

import (
	"fmt"
	"sort"

	"repro/internal/koko/index"
	"repro/internal/koko/lang"
	"repro/internal/nlp"
	"repro/internal/store"
)

// maxSubtreeSize is the paper's mss=3 setting.
const maxSubtreeSize = 3

// Subtree is the SUBTREE baseline (Chubak & Rafiei [14]): every unique
// subtree of up to mss nodes is an index key (root-split coding: the key
// records the root label and the ordered child structure), mapping to the
// (sid, root tid) occurrences. Because the original index targets
// constituency trees with a single label alphabet, two indices are built —
// one over parse labels, one over POS tags — and their results are joined at
// subtree roots, which loses precision (§6.2.1: "joining the root nodes does
// not guarantee that the two subtrees are referring to the same set of
// tokens"). Wildcards and word labels are unsupported (125 of the 350
// SyntheticTree queries qualify).
type Subtree struct {
	pl  map[string][]sidTid // parse-label subtree key -> root occurrences
	pos map[string][]sidTid
	// tokenMeta supports the cross-alphabet root joins.
	parent [][]int32
}

// NewSubtree returns an empty SUBTREE index.
func NewSubtree() *Subtree { return &Subtree{} }

// Name implements Scheme.
func (sb *Subtree) Name() string { return "SUBTREE" }

// Build implements Scheme: enumerate every connected subtree of size ≤ mss
// rooted at each token — the expensive enumeration responsible for SUBTREE's
// long build times (Figure 6a).
func (sb *Subtree) Build(c *index.Corpus) {
	sb.pl = map[string][]sidTid{}
	sb.pos = map[string][]sidTid{}
	sb.parent = make([][]int32, len(c.Sentences))
	for sid := range c.Sentences {
		s := &c.Sentences[sid]
		par := make([]int32, len(s.Tokens))
		for i := range s.Tokens {
			par[i] = int32(s.Tokens[i].Head)
		}
		sb.parent[sid] = par
		for i := range s.Tokens {
			occ := sidTid{int32(sid), int32(i)}
			for _, key := range enumerateSubtrees(s, i, func(t *nlp.Token) string { return t.Label }) {
				sb.pl[key] = append(sb.pl[key], occ)
			}
			for _, key := range enumerateSubtrees(s, i, func(t *nlp.Token) string { return t.POS }) {
				sb.pos[key] = append(sb.pos[key], occ)
			}
		}
	}
}

// enumerateSubtrees returns the canonical keys of every connected subtree of
// size ≤ mss rooted at token root. With mss=3 the shapes are: {r}, {r,c},
// {r,c,d} (chain), and {r,c1,c2} (two children).
func enumerateSubtrees(s *nlp.Sentence, root int, labelOf func(*nlp.Token) string) []string {
	rl := labelOf(&s.Tokens[root])
	keys := []string{rl}
	kids := s.Children(root)
	for ki, c := range kids {
		cl := labelOf(&s.Tokens[c])
		keys = append(keys, rl+"("+cl+")")
		// Chains of depth 2.
		for _, g := range s.Children(c) {
			keys = append(keys, rl+"("+cl+"("+labelOf(&s.Tokens[g])+"))")
		}
		// Sibling pairs (unordered: sort the two child labels).
		for _, c2 := range kids[ki+1:] {
			c2l := labelOf(&s.Tokens[c2])
			a, b := cl, c2l
			if a > b {
				a, b = b, a
			}
			keys = append(keys, rl+"("+a+","+b+")")
		}
	}
	return keys
}

// Supports implements Scheme: every step label must be a parse label or POS
// tag; wildcards, words, and bracket conditions are unsupported.
func (sb *Subtree) Supports(q *TreeQuery) bool {
	for _, v := range q.Vars {
		for _, st := range v.Steps {
			if st.Label == "*" || st.Label == "" {
				return false
			}
			if len(st.Conds) > 0 {
				return false
			}
			if !nlp.IsParseLabel(st.Label) && !nlp.IsPOSTag(st.Label) {
				return false
			}
		}
	}
	return true
}

// Candidates implements Scheme. Each variable path is cut into maximal
// same-alphabet runs of child-axis steps; each run is decomposed into
// overlapping chains of ≤ mss labels and looked up; descendant-axis
// boundaries and alphabet switches are joined only at sentence level (the
// imprecision the paper measures). Adjacent same-sentence runs additionally
// root-join through parent pointers when both sides are singleton chains.
func (sb *Subtree) Candidates(q *TreeQuery) []int32 {
	if !sb.Supports(q) {
		return nil
	}
	var cand []int32
	first := true
	for _, v := range q.Vars {
		sids := sb.pathSids(v.Steps)
		if sids == nil {
			return nil
		}
		if first {
			cand = sids
			first = false
		} else {
			cand = index.IntersectSids(cand, sids)
		}
		if len(cand) == 0 {
			return nil
		}
	}
	return cand
}

type run struct {
	alpha  byte // 'l' or 'p'
	labels []string
}

func (sb *Subtree) pathSids(steps []lang.PathStep) []int32 {
	// Cut into runs.
	var runs []run
	for i, st := range steps {
		var alpha byte
		var canon string
		if nlp.IsParseLabel(st.Label) {
			alpha, canon = 'l', nlp.NormalizeLabel(st.Label)
		} else {
			alpha, canon = 'p', nlp.NormalizePOS(st.Label)
		}
		startNew := i == 0 || st.Desc || len(runs) == 0 || runs[len(runs)-1].alpha != alpha
		if startNew {
			runs = append(runs, run{alpha: alpha})
		}
		runs[len(runs)-1].labels = append(runs[len(runs)-1].labels, canon)
	}
	var cand []int32
	firstRun := true
	for _, r := range runs {
		idx := sb.pl
		if r.alpha == 'p' {
			idx = sb.pos
		}
		// Overlapping chains of length ≤ mss.
		var keys []string
		if len(r.labels) <= maxSubtreeSize {
			keys = append(keys, chainKey(r.labels))
		} else {
			for i := 0; i+maxSubtreeSize <= len(r.labels); i++ {
				keys = append(keys, chainKey(r.labels[i:i+maxSubtreeSize]))
			}
		}
		for _, k := range keys {
			occ := idx[k]
			if len(occ) == 0 {
				return nil
			}
			sids := sidsOfPairs(sortedPairs(occ))
			if firstRun {
				cand = sids
				firstRun = false
			} else {
				cand = index.IntersectSids(cand, sids)
			}
			if len(cand) == 0 {
				return nil
			}
		}
	}
	return cand
}

func chainKey(labels []string) string {
	key := labels[len(labels)-1]
	for i := len(labels) - 2; i >= 0; i-- {
		key = labels[i] + "(" + key + ")"
	}
	return key
}

func sortedPairs(ps []sidTid) []sidTid {
	out := append([]sidTid(nil), ps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].sid != out[j].sid {
			return out[i].sid < out[j].sid
		}
		return out[i].tid < out[j].tid
	})
	return out
}

// Save implements Scheme: one row per (subtree key, occurrence) per
// alphabet — the footprint that makes SUBTREE the largest index (Figure 6b).
func (sb *Subtree) Save(db *store.DB) {
	for _, part := range []struct {
		name string
		m    map[string][]sidTid
	}{{"ST_PL", sb.pl}, {"ST_POS", sb.pos}} {
		t := db.Create(part.name,
			store.Column{Name: "subtree", Type: store.ColString},
			store.Column{Name: "sid", Type: store.ColInt},
			store.Column{Name: "tid", Type: store.ColInt},
		)
		if err := t.CreateIndex("by_subtree", "subtree"); err != nil {
			panic(err)
		}
		keys := make([]string, 0, len(part.m))
		for k := range part.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			for _, p := range part.m[k] {
				t.MustInsert(store.StrVal(k), store.IntVal(int64(p.sid)), store.IntVal(int64(p.tid)))
			}
		}
	}
}

// Stats reports the number of distinct subtree keys (for tests).
func (sb *Subtree) Stats() string {
	return fmt.Sprintf("pl=%d pos=%d", len(sb.pl), len(sb.pos))
}

var _ Scheme = (*Subtree)(nil)
