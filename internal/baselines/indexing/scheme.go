// Package indexing implements the three indexing baselines the paper
// compares KOKO's multi-index against (§6.2.1):
//
//   - INVERTED: a flat P(label, sid, tid) table; candidates are sentences
//     containing all query labels, ignoring structure entirely.
//   - ADVINVERTED (Bird et al.): P(label, sid, tid, left, right, depth, pid)
//     supporting structural joins between steps.
//   - SUBTREE (Chubak & Rafiei): every unique subtree up to mss=3 nodes as
//     an index key with root-split coding, built separately over parse
//     labels and POS tags; no wildcard or word support.
//
// All schemes share the Scheme interface: Build from a corpus, Candidates
// for a tree query (the §6.2.2 DPLI-equivalent operation, measured for
// lookup time and effectiveness), and Save into the storage substrate for
// the footprint comparison.
package indexing

import (
	"repro/internal/koko/engine"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
	"repro/internal/store"
)

// TreeQuery is the structural core the index experiments exercise: node
// variables defined by absolute paths (the SyntheticTree benchmark shape).
type TreeQuery struct {
	Vars []PathVar
}

// PathVar is one node variable with its absolute path.
type PathVar struct {
	Name  string
	Steps []lang.PathStep
}

// Scheme is one indexing technique under comparison.
type Scheme interface {
	Name() string
	// Build constructs the index over a parsed corpus.
	Build(c *index.Corpus)
	// Candidates returns the sorted candidate sentence ids for a query: a
	// superset of the sentences that actually match (how tight a superset is
	// the effectiveness metric).
	Candidates(q *TreeQuery) []int32
	// Supports reports whether the scheme can process the query at all
	// (SUBTREE cannot handle wildcards or word labels).
	Supports(q *TreeQuery) bool
	// Save materializes the index into db for footprint accounting.
	Save(db *store.DB)
}

// Koko adapts the multi-index to the Scheme interface so all four schemes
// run under the same harness.
type Koko struct {
	ix *index.Index
}

// NewKoko returns the KOKO scheme adapter.
func NewKoko() *Koko { return &Koko{} }

// Name implements Scheme.
func (k *Koko) Name() string { return "KOKO" }

// Build implements Scheme.
func (k *Koko) Build(c *index.Corpus) { k.ix = index.Build(c) }

// Index exposes the built multi-index (for engines sharing the build).
func (k *Koko) Index() *index.Index { return k.ix }

// Supports implements Scheme: KOKO supports every query.
func (k *Koko) Supports(q *TreeQuery) bool { return true }

// Save implements Scheme.
func (k *Koko) Save(db *store.DB) { k.ix.Save(db) }

// Candidates implements Scheme using the DPLI decomposition: each variable
// path is decomposed into PL/POS/word paths, looked up, joined; candidate
// sentences are the intersection across variables. Dominated paths are
// skipped exactly as in the engine.
func (k *Koko) Candidates(q *TreeQuery) []int32 {
	var sidSets [][]int32
	for _, v := range dominantVars(q) {
		ps, ok := engine.LookupDecomposed(k.ix, v.Steps)
		if !ok {
			return nil
		}
		sidSets = append(sidSets, index.SidsOf(ps))
	}
	if len(sidSets) == 0 {
		return nil
	}
	cand := sidSets[0]
	for _, s := range sidSets[1:] {
		cand = index.IntersectSids(cand, s)
	}
	return cand
}

// dominantVars drops variables whose path is a strict prefix of another's
// (§4.2.1 dominance).
func dominantVars(q *TreeQuery) []PathVar {
	var out []PathVar
	for i, v := range q.Vars {
		dominated := false
		for j, w := range q.Vars {
			if i == j {
				continue
			}
			if len(w.Steps) > len(v.Steps) && prefixSteps(v.Steps, w.Steps) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, v)
		}
	}
	return out
}

func prefixSteps(p, q []lang.PathStep) bool {
	if len(p) > len(q) {
		return false
	}
	for i := range p {
		if p[i].Desc != q[i].Desc || p[i].Label != q[i].Label || len(p[i].Conds) != len(q[i].Conds) {
			return false
		}
		for j := range p[i].Conds {
			if p[i].Conds[j] != q[i].Conds[j] {
				return false
			}
		}
	}
	return true
}
