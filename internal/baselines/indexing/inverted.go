package indexing

import (
	"sort"
	"strings"

	"repro/internal/koko/index"
	"repro/internal/koko/lang"
	"repro/internal/nlp"
	"repro/internal/store"
)

// Inverted is the INVERTED baseline: a flat mapping from every label (word,
// parse label, and POS tag alike) to the (sid, tid) pairs carrying it. A
// query's candidates are the sentences containing all of its labels — no
// structural information at all, which is why its effectiveness collapses
// and its intermediate results explode (§6.2.2: "fails to scale over 5000
// articles").
type Inverted struct {
	post map[string][]sidTid
}

type sidTid struct {
	sid, tid int32
}

// NewInverted returns an empty INVERTED index.
func NewInverted() *Inverted { return &Inverted{} }

// Name implements Scheme.
func (iv *Inverted) Name() string { return "INVERTED" }

// Build implements Scheme: three rows per token (word, parse label, POS).
func (iv *Inverted) Build(c *index.Corpus) {
	iv.post = map[string][]sidTid{}
	for sid := range c.Sentences {
		s := &c.Sentences[sid]
		for i := range s.Tokens {
			t := &s.Tokens[i]
			st := sidTid{int32(sid), int32(i)}
			iv.post["w:"+t.Lower] = append(iv.post["w:"+t.Lower], st)
			iv.post["l:"+t.Label] = append(iv.post["l:"+t.Label], st)
			iv.post["p:"+t.POS] = append(iv.post["p:"+t.POS], st)
		}
	}
}

// Supports implements Scheme: INVERTED accepts any query (it just ignores
// everything structural).
func (iv *Inverted) Supports(q *TreeQuery) bool { return true }

// invertedJoinCap bounds the materialized intermediate result of the
// token-level self-join so a pathological query cannot exhaust memory; on
// overflow the join degrades to sentence-level intersection for the
// remaining labels (a kindness the paper's SQL engine did not get — it
// simply failed to scale past 5000 articles).
const invertedJoinCap = 1 << 22

// Candidates implements Scheme with the paper's evaluation strategy: "we
// retrieve from the table all sentences that contain all labels in the
// query with one nested-SQL query" — a token-granularity self-join of the P
// table, one instance per label. The intermediate result after joining k
// labels holds one row per combination of label occurrences within a
// sentence (Π counts), which is the "significantly larger intermediate
// results" behaviour responsible for INVERTED's poor scaling (§6.2.2).
func (iv *Inverted) Candidates(q *TreeQuery) []int32 {
	labels := queryLabels(q)
	if len(labels) == 0 {
		return nil
	}
	// Intermediate rows carry only the sid of the combination (the tids of
	// previously joined labels no longer matter for the DISTINCT-sid
	// result, but the row multiplicity — the join's real cost — does).
	inter := make([]int32, 0, len(iv.post[labels[0]]))
	for _, p := range iv.post[labels[0]] {
		inter = append(inter, p.sid)
	}
	if len(inter) == 0 {
		return nil
	}
	for _, lb := range labels[1:] {
		ps := iv.post[lb]
		if len(ps) == 0 {
			return nil
		}
		counts := map[int32]int32{}
		for _, p := range ps {
			counts[p.sid]++
		}
		next := make([]int32, 0, len(inter))
		overflow := false
		for _, sid := range inter {
			c := counts[sid]
			for k := int32(0); k < c; k++ {
				next = append(next, sid)
				if len(next) > invertedJoinCap {
					overflow = true
					break
				}
			}
			if overflow {
				break
			}
		}
		if overflow {
			// Degrade: keep one row per surviving sentence.
			seen := map[int32]bool{}
			next = next[:0]
			for _, sid := range inter {
				if !seen[sid] && counts[sid] > 0 {
					seen[sid] = true
					next = append(next, sid)
				}
			}
		}
		inter = next
		if len(inter) == 0 {
			return nil
		}
	}
	seen := map[int32]bool{}
	var out []int32
	for _, sid := range inter {
		if !seen[sid] {
			seen[sid] = true
			out = append(out, sid)
		}
	}
	sortSids(out)
	return out
}

func sortSids(xs []int32) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// Save implements Scheme using the paper's schema P(label, sid, tid).
func (iv *Inverted) Save(db *store.DB) {
	t := db.Create("P_INV",
		store.Column{Name: "label", Type: store.ColString},
		store.Column{Name: "sid", Type: store.ColInt},
		store.Column{Name: "tid", Type: store.ColInt},
	)
	if err := t.CreateIndex("by_label", "label"); err != nil {
		panic(err)
	}
	labels := make([]string, 0, len(iv.post))
	for lb := range iv.post {
		labels = append(labels, lb)
	}
	sort.Strings(labels)
	for _, lb := range labels {
		for _, p := range iv.post[lb] {
			t.MustInsert(store.StrVal(lb), store.IntVal(int64(p.sid)), store.IntVal(int64(p.tid)))
		}
	}
}

// queryLabels extracts the typed label keys of every concrete step label and
// text/pos condition in the query.
func queryLabels(q *TreeQuery) []string {
	seen := map[string]bool{}
	var out []string
	add := func(k string) {
		if k != "" && !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for _, v := range q.Vars {
		for _, st := range v.Steps {
			switch l := st.Label; {
			case l == "*" || l == "":
			case nlp.IsParseLabel(l):
				add("l:" + nlp.NormalizeLabel(l))
			case nlp.IsPOSTag(l):
				add("p:" + nlp.NormalizePOS(l))
			case nlp.IsEntityType(l):
			default:
				add("w:" + strings.ToLower(l))
			}
			for _, c := range st.Conds {
				switch c.Key {
				case "text":
					add("w:" + strings.ToLower(c.Value))
				case "pos":
					add("p:" + nlp.NormalizePOS(c.Value))
				}
			}
		}
	}
	return out
}

func sidsOfPairs(ps []sidTid) []int32 {
	var out []int32
	for _, p := range ps {
		if len(out) == 0 || out[len(out)-1] != p.sid {
			out = append(out, p.sid)
		}
	}
	return out
}

var _ Scheme = (*Inverted)(nil)
var _ = lang.PathStep{}
var _ = index.IntersectSids
