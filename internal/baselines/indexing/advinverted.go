package indexing

import (
	"sort"
	"strings"

	"repro/internal/koko/index"
	"repro/internal/koko/lang"
	"repro/internal/nlp"
	"repro/internal/store"
)

// AdvInverted is the ADVINVERTED baseline (Bird et al. [7,20]): the labeled
// form of linguistic trees stored as P(label, sid, tid, left, right, depth,
// pid). Paths evaluate exactly by structural joins between consecutive
// steps (child via pid, descendant via interval containment), so its
// effectiveness is near-perfect — but every join walks posting lists without
// any path-level summarization, which is why lookup is slow (§6.2.2:
// "validation over the hierarchical conditions requires additional
// computation").
type AdvInverted struct {
	post map[string][]advPosting
	all  [][]advPosting // per sentence: all tokens (wildcard steps)
}

type advPosting struct {
	sid, tid, left, right, depth, pid int32
}

// NewAdvInverted returns an empty ADVINVERTED index.
func NewAdvInverted() *AdvInverted { return &AdvInverted{} }

// Name implements Scheme.
func (av *AdvInverted) Name() string { return "ADVINVERTED" }

// Build implements Scheme.
func (av *AdvInverted) Build(c *index.Corpus) {
	av.post = map[string][]advPosting{}
	av.all = make([][]advPosting, len(c.Sentences))
	for sid := range c.Sentences {
		s := &c.Sentences[sid]
		for i := range s.Tokens {
			t := &s.Tokens[i]
			p := advPosting{
				sid: int32(sid), tid: int32(i),
				left: int32(t.SubL), right: int32(t.SubR),
				depth: int32(t.Depth), pid: int32(t.Head),
			}
			av.post["w:"+t.Lower] = append(av.post["w:"+t.Lower], p)
			av.post["l:"+t.Label] = append(av.post["l:"+t.Label], p)
			av.post["p:"+t.POS] = append(av.post["p:"+t.POS], p)
			av.all[sid] = append(av.all[sid], p)
		}
	}
}

// Supports implements Scheme.
func (av *AdvInverted) Supports(q *TreeQuery) bool { return true }

// stepPostings returns the postings satisfying one step's label and
// text/pos conditions (etype/regex conditions are not indexable here either
// and are left to validation, as in KOKO).
func (av *AdvInverted) stepPostings(st lang.PathStep) ([]advPosting, bool) {
	var lists [][]advPosting
	concrete := false
	switch l := st.Label; {
	case l == "*" || l == "" || nlp.IsEntityType(l):
	case nlp.IsParseLabel(l):
		lists = append(lists, av.post["l:"+nlp.NormalizeLabel(l)])
		concrete = true
	case nlp.IsPOSTag(l):
		lists = append(lists, av.post["p:"+nlp.NormalizePOS(l)])
		concrete = true
	default:
		lists = append(lists, av.post["w:"+strings.ToLower(l)])
		concrete = true
	}
	for _, c := range st.Conds {
		switch c.Key {
		case "text":
			lists = append(lists, av.post["w:"+strings.ToLower(c.Value)])
			concrete = true
		case "pos":
			lists = append(lists, av.post["p:"+nlp.NormalizePOS(c.Value)])
			concrete = true
		}
	}
	if !concrete {
		return nil, false // wildcard: all tokens
	}
	// Intersect on (sid, tid).
	cur := lists[0]
	for _, l := range lists[1:] {
		cur = intersectAdv(cur, l)
		if len(cur) == 0 {
			return nil, true
		}
	}
	return cur, true
}

// Candidates implements Scheme: evaluate each variable's path bottom-up with
// structural joins; candidate sentences are the intersection across
// variables.
func (av *AdvInverted) Candidates(q *TreeQuery) []int32 {
	var cand []int32
	for vi, v := range q.Vars {
		matches := av.evalPath(v.Steps)
		if matches == nil {
			return nil
		}
		sids := sidsOfAdv(matches)
		if vi == 0 {
			cand = sids
		} else {
			cand = index.IntersectSids(cand, sids)
		}
		if len(cand) == 0 {
			return nil
		}
	}
	return cand
}

// evalPath computes the postings matching a full absolute path by joining
// step postings left to right: step i+1's tokens must be children (pid
// equality) or descendants (interval containment + depth) of step i's. The
// first step additionally enforces the depth-from-root rule.
func (av *AdvInverted) evalPath(steps []lang.PathStep) []advPosting {
	var cur []advPosting
	for i, st := range steps {
		ps, concrete := av.stepPostings(st)
		if !concrete {
			// Wildcard step: all tokens — restrict to the sentences of cur
			// to bound the blowup (still large, as the paper observes).
			if i == 0 {
				ps = av.allTokens(nil)
			} else {
				ps = av.allTokens(sidsOfAdv(cur))
			}
		}
		if i == 0 {
			exact := !st.Desc
			out := ps[:0:0]
			for _, p := range ps {
				if (exact && p.depth == 0) || (!exact && p.depth >= 0) {
					out = append(out, p)
				}
			}
			cur = out
		} else {
			cur = joinStep(cur, ps, st.Desc)
		}
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

func (av *AdvInverted) allTokens(sids []int32) []advPosting {
	var out []advPosting
	if sids == nil {
		for sid := range av.all {
			out = append(out, av.all[sid]...)
		}
		return out
	}
	for _, sid := range sids {
		if int(sid) < len(av.all) {
			out = append(out, av.all[sid]...)
		}
	}
	return out
}

// joinStep keeps the postings of next that are a child (desc=false) or
// strict descendant (desc=true) of some posting in cur.
func joinStep(cur, next []advPosting, desc bool) []advPosting {
	// Group cur by sid for the sweep.
	bySid := map[int32][]advPosting{}
	for _, c := range cur {
		bySid[c.sid] = append(bySid[c.sid], c)
	}
	var out []advPosting
	for _, n := range next {
		for _, c := range bySid[n.sid] {
			if !desc {
				if n.pid == c.tid {
					out = append(out, n)
					break
				}
			} else {
				if c.left <= n.left && c.right >= n.right && n.depth > c.depth {
					out = append(out, n)
					break
				}
			}
		}
	}
	return out
}

// Save implements Scheme with the paper's schema.
func (av *AdvInverted) Save(db *store.DB) {
	t := db.Create("P_ADV",
		store.Column{Name: "label", Type: store.ColString},
		store.Column{Name: "sid", Type: store.ColInt},
		store.Column{Name: "tid", Type: store.ColInt},
		store.Column{Name: "left", Type: store.ColInt},
		store.Column{Name: "right", Type: store.ColInt},
		store.Column{Name: "depth", Type: store.ColInt},
		store.Column{Name: "pid", Type: store.ColInt},
	)
	if err := t.CreateIndex("by_label", "label"); err != nil {
		panic(err)
	}
	labels := make([]string, 0, len(av.post))
	for lb := range av.post {
		labels = append(labels, lb)
	}
	sort.Strings(labels)
	for _, lb := range labels {
		for _, p := range av.post[lb] {
			t.MustInsert(store.StrVal(lb),
				store.IntVal(int64(p.sid)), store.IntVal(int64(p.tid)),
				store.IntVal(int64(p.left)), store.IntVal(int64(p.right)),
				store.IntVal(int64(p.depth)), store.IntVal(int64(p.pid)))
		}
	}
}

func intersectAdv(a, b []advPosting) []advPosting {
	key := func(p advPosting) int64 { return int64(p.sid)<<32 | int64(uint32(p.tid)) }
	set := make(map[int64]bool, len(b))
	for _, p := range b {
		set[key(p)] = true
	}
	var out []advPosting
	for _, p := range a {
		if set[key(p)] {
			out = append(out, p)
		}
	}
	return out
}

func sidsOfAdv(ps []advPosting) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, p := range ps {
		if !seen[p.sid] {
			seen[p.sid] = true
			out = append(out, p.sid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

var _ Scheme = (*AdvInverted)(nil)
