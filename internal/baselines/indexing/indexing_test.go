package indexing

import (
	"testing"

	"repro/internal/koko/engine"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
	"repro/internal/store"
)

func testCorpus() *index.Corpus {
	return index.NewCorpus(nil, []string{
		"Anna ate some delicious cheesecake that she bought at a grocery store.",
		"I ate a chocolate ice cream, which was delicious, and also ate a pie.",
		"The new cafe serves great espresso and employs three baristas.",
		"Baking chocolate is a type of chocolate that is prepared for baking.",
		"Cyd Charisse had been called Sid for years.",
		"The couple had a daughter Vera Alys born in 1911.",
		"Portland hosts a coffee festival every spring.",
		"She bought bread at the bakery near the park.",
		"The champion visited the stadium after the match.",
	})
}

func steps(parts ...lang.PathStep) []lang.PathStep { return parts }
func ch(label string) lang.PathStep                { return lang.PathStep{Desc: false, Label: label} }
func de(label string) lang.PathStep                { return lang.PathStep{Desc: true, Label: label} }
func word(w string) lang.PathStep {
	return lang.PathStep{Desc: true, Label: "*", Conds: []lang.LabelCond{{Key: "text", Value: w}}}
}

func testQueries() []*TreeQuery {
	return []*TreeQuery{
		{Vars: []PathVar{{Name: "a", Steps: steps(ch("root"), ch("dobj"))}}},
		{Vars: []PathVar{{Name: "a", Steps: steps(de("dobj"), ch("det"))}}},
		{Vars: []PathVar{{Name: "a", Steps: steps(de("verb"), ch("dobj"))}}},
		{Vars: []PathVar{{Name: "a", Steps: steps(ch("root"), ch("nsubj"))}, {Name: "b", Steps: steps(ch("root"), ch("dobj"), ch("amod"))}}},
		{Vars: []PathVar{{Name: "a", Steps: steps(de("rcmod"), de("pobj"))}}},
		{Vars: []PathVar{{Name: "a", Steps: steps(ch("root"), de("*"), ch("nn"))}}},
		{Vars: []PathVar{{Name: "a", Steps: steps(word("ate"), ch("dobj"), word("delicious"))}}},
		{Vars: []PathVar{{Name: "a", Steps: steps(de("conj"), ch("dobj"))}}},
		{Vars: []PathVar{{Name: "a", Steps: steps(ch("root"), ch("prep"), ch("pobj"))}}},
		{Vars: []PathVar{{Name: "a", Steps: steps(de("noun"))}, {Name: "b", Steps: steps(de("verb"))}}},
	}
}

// groundTruth returns the sentences where every variable path has at least
// one sound match.
func groundTruth(c *index.Corpus, q *TreeQuery) map[int32]bool {
	out := map[int32]bool{}
	for sid := range c.Sentences {
		s := &c.Sentences[sid]
		ok := true
		for _, v := range q.Vars {
			if len(engine.MatchPath(s, v.Steps)) == 0 {
				ok = false
				break
			}
		}
		if ok {
			out[int32(sid)] = true
		}
	}
	return out
}

// TestSchemesComplete: every scheme's candidate set must contain every truly
// matching sentence (completeness — the effectiveness metric then measures
// how much junk each admits).
func TestSchemesComplete(t *testing.T) {
	c := testCorpus()
	schemes := []Scheme{NewKoko(), NewInverted(), NewAdvInverted(), NewSubtree()}
	for _, s := range schemes {
		s.Build(c)
	}
	for qi, q := range testQueries() {
		truth := groundTruth(c, q)
		for _, s := range schemes {
			if !s.Supports(q) {
				continue
			}
			cand := map[int32]bool{}
			for _, sid := range s.Candidates(q) {
				cand[sid] = true
			}
			for sid := range truth {
				if !cand[sid] {
					t.Errorf("%s query %d: matching sentence %d missing from candidates", s.Name(), qi, sid)
				}
			}
		}
	}
}

// TestEffectivenessOrdering: on the test corpus, KOKO and ADVINVERTED must
// be at least as effective as INVERTED, and KOKO must be perfectly
// effective on the structural queries (candidates == truth) for queries it
// fully decomposes.
func TestEffectivenessOrdering(t *testing.T) {
	c := testCorpus()
	koko, inv, adv := NewKoko(), NewInverted(), NewAdvInverted()
	koko.Build(c)
	inv.Build(c)
	adv.Build(c)
	eff := func(s Scheme, q *TreeQuery) float64 {
		truth := groundTruth(c, q)
		cands := s.Candidates(q)
		if len(cands) == 0 {
			if len(truth) == 0 {
				return 1
			}
			return 0
		}
		hit := 0
		for _, sid := range cands {
			if truth[sid] {
				hit++
			}
		}
		return float64(hit) / float64(len(cands))
	}
	var kokoSum, invSum, advSum float64
	n := 0
	for _, q := range testQueries() {
		kokoSum += eff(koko, q)
		invSum += eff(inv, q)
		advSum += eff(adv, q)
		n++
	}
	kokoAvg, invAvg, advAvg := kokoSum/float64(n), invSum/float64(n), advSum/float64(n)
	if kokoAvg < invAvg {
		t.Errorf("KOKO avg effectiveness %.3f < INVERTED %.3f", kokoAvg, invAvg)
	}
	if advAvg < invAvg {
		t.Errorf("ADVINVERTED avg effectiveness %.3f < INVERTED %.3f", advAvg, invAvg)
	}
	if kokoAvg < 0.9 {
		t.Errorf("KOKO avg effectiveness %.3f, want ≥ 0.9", kokoAvg)
	}
}

// TestSubtreeSupport: wildcard and word queries are rejected; pure-label
// queries are supported.
func TestSubtreeSupport(t *testing.T) {
	sb := NewSubtree()
	ok := &TreeQuery{Vars: []PathVar{{Name: "a", Steps: steps(ch("root"), ch("dobj"), ch("det"))}}}
	if !sb.Supports(ok) {
		t.Error("pure-label query unsupported")
	}
	wild := &TreeQuery{Vars: []PathVar{{Name: "a", Steps: steps(ch("root"), de("*"), ch("nn"))}}}
	if sb.Supports(wild) {
		t.Error("wildcard query supported")
	}
	w := &TreeQuery{Vars: []PathVar{{Name: "a", Steps: steps(word("ate"))}}}
	if sb.Supports(w) {
		t.Error("word query supported")
	}
}

// TestSubtreeChains: chains longer than mss decompose into overlapping
// windows and still find matches.
func TestSubtreeChains(t *testing.T) {
	c := testCorpus()
	sb := NewSubtree()
	sb.Build(c)
	// /root/dobj/rcmod/prep/pobj is depth 5 > mss: sentence 0 matches.
	q := &TreeQuery{Vars: []PathVar{{Name: "a", Steps: steps(ch("root"), ch("dobj"), ch("rcmod"), ch("prep"), ch("pobj"))}}}
	truth := groundTruth(c, q)
	if !truth[0] {
		t.Skip("parse shape changed; chain test target gone")
	}
	found := false
	for _, sid := range sb.Candidates(q) {
		if sid == 0 {
			found = true
		}
	}
	if !found {
		t.Error("sentence 0 missing from SUBTREE candidates")
	}
}

// TestSaveFootprints: all four schemes persist, and the KOKO index is the
// smallest while SUBTREE is the largest (the Figure 6b ordering).
func TestSaveFootprints(t *testing.T) {
	// Use a larger corpus so fixed overheads don't dominate.
	var texts []string
	for i := 0; i < 40; i++ {
		texts = append(texts,
			"Anna ate some delicious cheesecake that she bought at a grocery store.",
			"The new cafe serves great espresso and employs three baristas.",
			"Portland hosts a coffee festival every spring.",
		)
	}
	c := index.NewCorpus(nil, texts)
	sizes := map[string]int64{}
	for _, s := range []Scheme{NewKoko(), NewInverted(), NewAdvInverted(), NewSubtree()} {
		s.Build(c)
		db := store.NewDB()
		s.Save(db)
		sizes[s.Name()] = db.SizeBytes()
		if sizes[s.Name()] == 0 {
			t.Errorf("%s saved nothing", s.Name())
		}
	}
	if !(sizes["KOKO"] < sizes["INVERTED"]) {
		t.Errorf("KOKO (%d) not smaller than INVERTED (%d)", sizes["KOKO"], sizes["INVERTED"])
	}
	if !(sizes["INVERTED"] < sizes["ADVINVERTED"]) {
		t.Errorf("INVERTED (%d) not smaller than ADVINVERTED (%d)", sizes["INVERTED"], sizes["ADVINVERTED"])
	}
	if !(sizes["ADVINVERTED"] < sizes["SUBTREE"]) {
		t.Errorf("ADVINVERTED (%d) not smaller than SUBTREE (%d)", sizes["ADVINVERTED"], sizes["SUBTREE"])
	}
}
