// Package crf implements the CRFsuite baseline of the paper's §6.1: a
// first-order linear-chain model over BIO tags trained with the averaged
// perceptron ("we used the averaged perceptron algorithm to train a first
// order Markov CRF"), with the paper's feature template — the token with its
// preceding and following tokens, prefixes and suffixes up to 3 characters,
// and binary features testing digit patterns.
package crf

import (
	"math/rand"
	"strings"
	"unicode"

	"repro/internal/nlp"
)

// BIO labels.
const (
	TagO = "O"
	TagB = "B"
	TagI = "I"
)

var labels = []string{TagO, TagB, TagI}

// Example is one training sentence: tokens with gold BIO tags.
type Example struct {
	Tokens []string
	Tags   []string
}

// Tagger is a trained model.
type Tagger struct {
	weights map[string]float64
}

// Train runs averaged-perceptron training for the given number of epochs.
// The example order is shuffled deterministically with seed.
func Train(examples []Example, epochs int, seed int64) *Tagger {
	w := map[string]float64{}
	total := map[string]float64{}
	lastUpdate := map[string]int{}
	step := 0
	upd := func(f string, delta float64) {
		total[f] += w[f] * float64(step-lastUpdate[f])
		lastUpdate[f] = step
		w[f] += delta
	}
	r := rand.New(rand.NewSource(seed))
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	t := &Tagger{weights: w}
	for ep := 0; ep < epochs; ep++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			ex := examples[idx]
			if len(ex.Tokens) == 0 {
				continue
			}
			step++
			pred := t.viterbi(ex.Tokens)
			for i := range ex.Tokens {
				if pred[i] == ex.Tags[i] {
					continue
				}
				for _, f := range emissionFeatures(ex.Tokens, i) {
					upd(f+"|"+ex.Tags[i], 1)
					upd(f+"|"+pred[i], -1)
				}
			}
			for i := 1; i < len(ex.Tokens); i++ {
				gold := "T|" + ex.Tags[i-1] + ">" + ex.Tags[i]
				got := "T|" + pred[i-1] + ">" + pred[i]
				if gold != got {
					upd(gold, 1)
					upd(got, -1)
				}
			}
		}
	}
	// Average.
	avg := make(map[string]float64, len(w))
	for f, v := range w {
		tot := total[f] + v*float64(step+1-lastUpdate[f])
		avg[f] = tot / float64(step+1)
	}
	return &Tagger{weights: avg}
}

// Predict tags a token sequence.
func (t *Tagger) Predict(tokens []string) []string {
	if len(tokens) == 0 {
		return nil
	}
	return t.viterbi(tokens)
}

// viterbi decodes the best label sequence under the current weights.
func (t *Tagger) viterbi(tokens []string) []string {
	n := len(tokens)
	k := len(labels)
	score := make([][]float64, n)
	back := make([][]int, n)
	for i := 0; i < n; i++ {
		score[i] = make([]float64, k)
		back[i] = make([]int, k)
		var em [3]float64
		feats := emissionFeatures(tokens, i)
		for li, lab := range labels {
			var s float64
			for _, f := range feats {
				s += t.weights[f+"|"+lab]
			}
			em[li] = s
		}
		for li := range labels {
			if i == 0 {
				score[i][li] = em[li]
				continue
			}
			best, bestPrev := -1e18, 0
			for pi, plab := range labels {
				s := score[i-1][pi] + t.weights["T|"+plab+">"+labels[li]]
				if s > best {
					best, bestPrev = s, pi
				}
			}
			score[i][li] = best + em[li]
			back[i][li] = bestPrev
		}
	}
	bestLast, best := 0, -1e18
	for li := range labels {
		if score[n-1][li] > best {
			best, bestLast = score[n-1][li], li
		}
	}
	out := make([]string, n)
	cur := bestLast
	for i := n - 1; i >= 0; i-- {
		out[i] = labels[cur]
		cur = back[i][cur]
	}
	return out
}

// emissionFeatures is the paper's template: current/previous/next token,
// prefixes and suffixes up to 3 chars, digit/shape tests.
func emissionFeatures(tokens []string, i int) []string {
	cur := strings.ToLower(tokens[i])
	fs := []string{
		"w=" + cur,
		"shape=" + shape(tokens[i]),
	}
	if i > 0 {
		fs = append(fs, "w-1="+strings.ToLower(tokens[i-1]))
	} else {
		fs = append(fs, "w-1=<s>")
	}
	if i+1 < len(tokens) {
		fs = append(fs, "w+1="+strings.ToLower(tokens[i+1]))
	} else {
		fs = append(fs, "w+1=</s>")
	}
	for l := 1; l <= 3 && l <= len(cur); l++ {
		fs = append(fs, "pre="+cur[:l], "suf="+cur[len(cur)-l:])
	}
	if hasDigit(tokens[i]) {
		fs = append(fs, "hasdigit")
	}
	if allDigits(tokens[i]) {
		fs = append(fs, "alldigits")
	}
	if isCapitalized(tokens[i]) {
		fs = append(fs, "cap")
	}
	return fs
}

func shape(tok string) string {
	var b strings.Builder
	var last rune
	for _, r := range tok {
		var c rune
		switch {
		case unicode.IsUpper(r):
			c = 'X'
		case unicode.IsLower(r):
			c = 'x'
		case unicode.IsDigit(r):
			c = 'd'
		default:
			c = '-'
		}
		if c != last {
			b.WriteRune(c)
			last = c
		}
	}
	return b.String()
}

func hasDigit(s string) bool {
	for _, r := range s {
		if unicode.IsDigit(r) {
			return true
		}
	}
	return false
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

func isCapitalized(s string) bool {
	for _, r := range s {
		return unicode.IsUpper(r)
	}
	return false
}

// ExtractSpans converts BIO tags to extracted strings.
func ExtractSpans(tokens, tags []string) []string {
	var out []string
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			out = append(out, strings.Join(cur, " "))
			cur = nil
		}
	}
	for i, tg := range tags {
		switch tg {
		case TagB:
			flush()
			cur = []string{tokens[i]}
		case TagI:
			if len(cur) > 0 {
				cur = append(cur, tokens[i])
			} else {
				cur = []string{tokens[i]}
			}
		default:
			flush()
		}
	}
	flush()
	return out
}

// BIOFromSpans builds gold BIO tags for a sentence given labeled entity
// strings (whole-token matches).
func BIOFromSpans(s *nlp.Sentence, gold map[string]bool) Example {
	tokens := make([]string, len(s.Tokens))
	tags := make([]string, len(s.Tokens))
	for i := range s.Tokens {
		tokens[i] = s.Tokens[i].Text
		tags[i] = TagO
	}
	for g := range gold {
		words := strings.Fields(strings.ToLower(g))
		if len(words) == 0 {
			continue
		}
		for i := 0; i+len(words) <= len(tokens); i++ {
			ok := true
			for j, w := range words {
				if strings.ToLower(tokens[i+j]) != w {
					ok = false
					break
				}
			}
			if ok {
				tags[i] = TagB
				for j := 1; j < len(words); j++ {
					tags[i+j] = TagI
				}
			}
		}
	}
	return Example{Tokens: tokens, Tags: tags}
}
