package crf

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/nlp"
)

func TestTrainAndPredictSeparable(t *testing.T) {
	// A separable task: words after "visited" are entities.
	var examples []Example
	places := []string{"Paris", "Tokyo", "Berlin", "Oslo", "Rome", "Lima"}
	others := []string{"bread", "music", "books", "tea"}
	for _, p := range places {
		examples = append(examples, Example{
			Tokens: []string{"She", "visited", p, "yesterday"},
			Tags:   []string{"O", "O", "B", "O"},
		})
	}
	for _, o := range others {
		examples = append(examples, Example{
			Tokens: []string{"She", "bought", o, "yesterday"},
			Tags:   []string{"O", "O", "O", "O"},
		})
	}
	tg := Train(examples, 8, 1)
	pred := tg.Predict([]string{"She", "visited", "Madrid", "yesterday"})
	if pred[2] != TagB {
		t.Errorf("Madrid tagged %s, want B (%v)", pred[2], pred)
	}
	pred2 := tg.Predict([]string{"She", "bought", "cheese", "yesterday"})
	for i, tg2 := range pred2 {
		if tg2 != TagO {
			t.Errorf("token %d tagged %s, want O", i, tg2)
		}
	}
}

func TestMultiTokenEntities(t *testing.T) {
	var examples []Example
	for _, name := range [][2]string{{"Gravity", "Beans"}, {"Blue", "Bottle"}, {"Ritual", "Roasters"}, {"Stumptown", "Coffee"}} {
		examples = append(examples, Example{
			Tokens: []string{"I", "love", name[0], name[1], "downtown"},
			Tags:   []string{"O", "O", "B", "I", "O"},
		})
		examples = append(examples, Example{
			Tokens: []string{"I", "love", "walking", "around", "downtown"},
			Tags:   []string{"O", "O", "O", "O", "O"},
		})
	}
	tg := Train(examples, 10, 2)
	pred := tg.Predict([]string{"I", "love", "Nimbus", "Works", "downtown"})
	spans := ExtractSpans([]string{"I", "love", "Nimbus", "Works", "downtown"}, pred)
	if len(spans) != 1 || spans[0] != "Nimbus Works" {
		t.Errorf("spans = %v (pred %v)", spans, pred)
	}
}

func TestExtractSpans(t *testing.T) {
	tokens := strings.Fields("a b c d e")
	tags := []string{"O", "B", "I", "O", "B"}
	got := ExtractSpans(tokens, tags)
	want := []string{"b c", "e"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("spans = %v, want %v", got, want)
	}
	// Orphan I- continues as a new span.
	got = ExtractSpans(tokens, []string{"I", "O", "O", "O", "O"})
	if !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("orphan I = %v", got)
	}
}

func TestBIOFromSpans(t *testing.T) {
	s := nlp.AnnotateSentence(0, "We met at Gravity Beans downtown.")
	ex := BIOFromSpans(&s, map[string]bool{"Gravity Beans": true})
	var b, i int
	for _, tg := range ex.Tags {
		switch tg {
		case TagB:
			b++
		case TagI:
			i++
		}
	}
	if b != 1 || i != 1 {
		t.Errorf("tags = %v", ex.Tags)
	}
}

func TestDeterministicTraining(t *testing.T) {
	examples := []Example{
		{Tokens: []string{"at", "Cafe", "Benz"}, Tags: []string{"O", "B", "I"}},
		{Tokens: []string{"at", "the", "park"}, Tags: []string{"O", "O", "O"}},
	}
	a := Train(examples, 5, 7)
	b := Train(examples, 5, 7)
	toks := []string{"at", "Cafe", "Luna"}
	if !reflect.DeepEqual(a.Predict(toks), b.Predict(toks)) {
		t.Error("training not deterministic")
	}
}
