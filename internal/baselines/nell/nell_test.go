package nell

import (
	"testing"

	"repro/internal/koko/index"
)

func TestBootstrapPromotesWithMultiPatternSupport(t *testing.T) {
	// Seeds "Alpha Cafe" and "Beta Cafe" appear in two shared contexts;
	// "Gamma Works" appears in both contexts (promotable), "Delta Books"
	// in only one (not promotable).
	texts := []string{
		"We visited Alpha Cafe for espresso today.",
		"We visited Beta Cafe for espresso today.",
		"Locals recommend Alpha Cafe for espresso today.",
		"Locals recommend Beta Cafe for espresso today.",
		"We visited Gamma Works for espresso today.",
		"Locals recommend Gamma Works for espresso today.",
		"We visited Delta Books for espresso today.",
	}
	c := index.NewCorpus(nil, texts)
	b := New(Config{Iterations: 2, PatternSupport: 2, InstanceVotes: 2, MaxPatterns: 10, ContextWidth: 2})
	res := b.Run(c, []string{"Alpha Cafe", "Beta Cafe"})
	if !res.Instances["gamma works"] {
		t.Errorf("Gamma Works not promoted: %v", res.Instances)
	}
	if res.Instances["delta books"] {
		t.Errorf("Delta Books promoted with single-pattern support")
	}
	if res.Patterns == 0 {
		t.Error("no patterns learned")
	}
}

func TestBootstrapConservativeOnRareMentions(t *testing.T) {
	// Entities mentioned once in unique contexts: no patterns reach the
	// support threshold beyond the seed contexts, so recall stays near zero
	// (the paper's NELL result on rare-mention cafes).
	texts := []string{
		"Quiet Owl opened last week in the old mill.",
		"A barista poured cortados at Hidden Fern yesterday.",
		"Tiny Anchor has a seasonal menu of pour-overs.",
	}
	c := index.NewCorpus(nil, texts)
	b := New(DefaultConfig())
	res := b.Run(c, []string{"Quiet Owl"})
	if len(res.Instances) != 0 {
		t.Errorf("rare-mention corpus promoted %v", res.Instances)
	}
}

func TestDefaults(t *testing.T) {
	b := New(Config{})
	if b.cfg.MaxPatterns != 72 || b.cfg.Iterations != 2 {
		t.Errorf("defaults = %+v", b.cfg)
	}
}
