// Package nell implements the NELL-style bootstrapped extractor the paper
// compares against (§6.1): starting from seed instances of a category, it
// learns contextual patterns from seed mentions, conservatively promotes
// patterns supported by multiple seeds, applies them to find new candidate
// instances, and promotes candidates matched by multiple patterns. The
// coupling (multi-pattern support before promotion) is what produces NELL's
// signature high-precision/low-recall behaviour on rare-mention corpora —
// the paper measured P=0.7/R=0.05 on BaristaMag and P=0.27/R=0.04 on
// Sprudge after seeding a "cafes" category with 17 instances.
package nell

import (
	"sort"
	"strings"

	"repro/internal/koko/index"
	"repro/internal/nlp"
)

// Config tunes the bootstrapper.
type Config struct {
	Iterations     int // coupled learning rounds (default 2)
	PatternSupport int // distinct seeds a pattern needs (default 2)
	InstanceVotes  int // distinct patterns a candidate needs (default 2)
	MaxPatterns    int // patterns promoted per round (default 72, the paper's count)
	ContextWidth   int // tokens of left/right context per pattern (default 2)
}

// DefaultConfig mirrors the paper's episode: 17 seeds, 72 patterns.
func DefaultConfig() Config {
	return Config{Iterations: 2, PatternSupport: 2, InstanceVotes: 2, MaxPatterns: 72, ContextWidth: 2}
}

// Bootstrapper learns a category from seeds over a corpus.
type Bootstrapper struct {
	cfg Config
}

// New returns a bootstrapper.
func New(cfg Config) *Bootstrapper {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 2
	}
	if cfg.PatternSupport <= 0 {
		cfg.PatternSupport = 2
	}
	if cfg.InstanceVotes <= 0 {
		cfg.InstanceVotes = 2
	}
	if cfg.MaxPatterns <= 0 {
		cfg.MaxPatterns = 72
	}
	if cfg.ContextWidth <= 0 {
		cfg.ContextWidth = 2
	}
	return &Bootstrapper{cfg: cfg}
}

// pattern is a (left-context, right-context) pair around an entity slot.
type pattern struct {
	left, right string
}

// Result reports the learned category.
type Result struct {
	Instances map[string]bool
	Patterns  int
}

// Run bootstraps the category over the corpus from the seed instances.
func (b *Bootstrapper) Run(c *index.Corpus, seeds []string) Result {
	known := map[string]bool{}
	for _, s := range seeds {
		known[strings.ToLower(s)] = true
	}
	promoted := map[string]bool{} // instances promoted by bootstrapping
	totalPatterns := 0

	for it := 0; it < b.cfg.Iterations; it++ {
		// 1. Learn patterns from known instances' mentions.
		support := map[pattern]map[string]bool{}
		for sid := range c.Sentences {
			s := &c.Sentences[sid]
			for ei := range s.Entities {
				e := &s.Entities[ei]
				key := strings.ToLower(e.Text)
				if !known[key] {
					continue
				}
				p := contextOf(s, e, b.cfg.ContextWidth)
				if p.left == "" && p.right == "" {
					continue
				}
				if support[p] == nil {
					support[p] = map[string]bool{}
				}
				support[p][key] = true
			}
		}
		type scored struct {
			p pattern
			n int
		}
		var good []scored
		for p, insts := range support {
			if len(insts) >= b.cfg.PatternSupport {
				good = append(good, scored{p, len(insts)})
			}
		}
		sort.Slice(good, func(i, j int) bool {
			if good[i].n != good[j].n {
				return good[i].n > good[j].n
			}
			if good[i].p.left != good[j].p.left {
				return good[i].p.left < good[j].p.left
			}
			return good[i].p.right < good[j].p.right
		})
		if len(good) > b.cfg.MaxPatterns {
			good = good[:b.cfg.MaxPatterns]
		}
		totalPatterns = len(good)
		if len(good) == 0 {
			break
		}
		patterns := make(map[pattern]bool, len(good))
		for _, g := range good {
			patterns[g.p] = true
		}

		// 2. Apply patterns to find candidates; promote with enough votes.
		votes := map[string]map[pattern]bool{}
		for sid := range c.Sentences {
			s := &c.Sentences[sid]
			for ei := range s.Entities {
				e := &s.Entities[ei]
				key := strings.ToLower(e.Text)
				if known[key] {
					continue
				}
				p := contextOf(s, e, b.cfg.ContextWidth)
				if patterns[p] {
					if votes[key] == nil {
						votes[key] = map[pattern]bool{}
					}
					votes[key][p] = true
				}
			}
		}
		grew := false
		for key, ps := range votes {
			if len(ps) >= b.cfg.InstanceVotes {
				known[key] = true
				promoted[key] = true
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	return Result{Instances: promoted, Patterns: totalPatterns}
}

// contextOf extracts the lowercase context words around an entity mention.
func contextOf(s *nlp.Sentence, e *nlp.Entity, width int) pattern {
	var left, right []string
	for i := e.L - width; i < e.L; i++ {
		if i >= 0 {
			left = append(left, s.Tokens[i].Lower)
		}
	}
	for i := e.R + 1; i <= e.R+width && i < len(s.Tokens); i++ {
		right = append(right, s.Tokens[i].Lower)
	}
	return pattern{left: strings.Join(left, " "), right: strings.Join(right, " ")}
}
