// Package odin implements the Odin-style cascaded rule runner used in the
// §6.3 runtime comparison. Odin (Valenzuela-Escárcega et al.) evaluates a
// grammar of rules in priority order, iteratively re-applying all rules
// over each document until no new matches appear — and, crucially, without
// any corpus-level index: every rule pass visits every sentence. The
// translated KOKO queries carry only extract clauses ("since Odin does not
// aggregate evidence, our translated queries contain only extract
// clauses"), and rule priorities are honoured, which the paper notes it
// supplied to help Odin.
package odin

import (
	"sort"

	"repro/internal/koko/engine"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
)

// Rule is one cascade rule: a KOKO extract clause with a priority.
type Rule struct {
	Name     string
	Query    *lang.Query
	Priority int
}

// Runner evaluates rule cascades over a corpus.
type Runner struct {
	corpus *index.Corpus
	eng    *engine.Engine
}

// New builds a runner. The engine is used purely for its sound per-sentence
// evaluator (RunNaive): no index pruning is available to Odin.
func New(c *index.Corpus, ix *index.Index) *Runner {
	return &Runner{corpus: c, eng: engine.New(c, ix, nil, engine.Options{})}
}

// Match is one extraction with the rule that produced it.
type Match struct {
	Rule   string
	Sid    int
	Values []string
}

// Run applies the cascade: rules grouped by ascending priority; within a
// priority level all rules are re-applied over the whole corpus until a
// fixpoint (no new matches). Returns all matches and the number of full
// corpus passes performed — the cost driver behind the paper's 40×/23×/1.3×
// slowdowns.
func (r *Runner) Run(rules []Rule) ([]Match, int) {
	byPrio := map[int][]Rule{}
	var prios []int
	for _, rule := range rules {
		if _, ok := byPrio[rule.Priority]; !ok {
			prios = append(prios, rule.Priority)
		}
		byPrio[rule.Priority] = append(byPrio[rule.Priority], rule)
	}
	sort.Ints(prios)

	var out []Match
	seen := map[string]bool{}
	passes := 0
	for _, p := range prios {
		for {
			grew := false
			for _, rule := range byPrio[p] {
				passes++
				res, err := r.eng.RunNaive(rule.Query)
				if err != nil {
					continue
				}
				for _, t := range res.Tuples {
					key := rule.Name + "|" + tupleKey(t)
					if !seen[key] {
						seen[key] = true
						out = append(out, Match{Rule: rule.Name, Sid: t.Sid, Values: t.Values})
						grew = true
					}
				}
			}
			if !grew {
				break
			}
		}
	}
	return out, passes
}

func tupleKey(t engine.Tuple) string {
	key := ""
	for _, v := range t.Values {
		key += v + "\x00"
	}
	return key
}
