package odin

import (
	"testing"

	"repro/internal/koko/index"
	"repro/internal/koko/lang"
)

func TestCascadeFindsMatchesAndCountsPasses(t *testing.T) {
	c := index.NewCorpus(nil, []string{
		"Anna ate some delicious cheesecake that she bought at a grocery store.",
		"I ate a chocolate ice cream, which was delicious, and also ate a pie.",
		"Portland hosts a coffee festival every spring.",
	})
	ix := index.Build(c)
	r := New(c, ix)
	rules := []Rule{
		{Name: "dobj", Priority: 1, Query: lang.MustParse(`extract x:Str from f if (/ROOT:{ x = //verb/dobj })`)},
		{Name: "nsubj", Priority: 2, Query: lang.MustParse(`extract x:Str from f if (/ROOT:{ x = /root/nsubj })`)},
	}
	matches, passes := r.Run(rules)
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	foundCheese, foundAnna := false, false
	for _, m := range matches {
		if m.Values[0] == "cheesecake" {
			foundCheese = true
		}
		if m.Values[0] == "Anna" {
			foundAnna = true
		}
	}
	if !foundCheese || !foundAnna {
		t.Errorf("matches = %v", matches)
	}
	// Each priority level runs each rule at least twice (productive pass +
	// fixpoint confirmation): >= 4 full corpus passes for 2 rules.
	if passes < 4 {
		t.Errorf("passes = %d, want >= 4 (iterative re-application)", passes)
	}
}

func TestPriorityOrdering(t *testing.T) {
	c := index.NewCorpus(nil, []string{"Anna ate cheesecake."})
	ix := index.Build(c)
	r := New(c, ix)
	rules := []Rule{
		{Name: "late", Priority: 5, Query: lang.MustParse(`extract x:Str from f if (/ROOT:{ x = /root/nsubj })`)},
		{Name: "early", Priority: 1, Query: lang.MustParse(`extract x:Str from f if (/ROOT:{ x = //verb/dobj })`)},
	}
	matches, _ := r.Run(rules)
	if len(matches) < 2 {
		t.Fatalf("matches = %v", matches)
	}
	if matches[0].Rule != "early" {
		t.Errorf("first match from %q, want early", matches[0].Rule)
	}
}
