// Package ike implements the IKE baseline (Dalvi et al., AKBC 2016) at the
// fidelity the paper's comparison requires: a pattern language over token
// sequences with noun-phrase captures and distributional-similarity atoms
// ("phrase" ~ N matches the phrase or any of its N most similar phrases).
// IKE operates strictly within single sentences — it "only considers single
// sentences and cannot aggregate partial evidence" (§6.1), which is the
// behaviour responsible for its gap to KOKO on multi-mention corpora.
package ike

import (
	"fmt"
	"strings"

	"repro/internal/embed"
	"repro/internal/koko/index"
	"repro/internal/nlp"
)

// AtomKind discriminates pattern atoms.
type AtomKind int

const (
	AtomPhrase  AtomKind = iota // "cafe called" — literal token sequence
	AtomCapture                 // (NP) — capture a noun phrase
	AtomDistSim                 // ("serves coffee" ~ 10) — phrase or similar
)

// Atom is one element of an IKE pattern.
type Atom struct {
	Kind   AtomKind
	Phrase string // AtomPhrase / AtomDistSim
	N      int    // AtomDistSim expansion size
}

// Pattern is a contiguous sequence of atoms.
type Pattern struct {
	Atoms []Atom
}

// ParsePattern parses the concrete syntax used in the paper's appendix:
//
//	"cafe called" (NP)
//	(NP) ("serves coffee" ~ 10)
//	("baristas of" ~ 10) (NP)
func ParsePattern(src string) (*Pattern, error) {
	p := &Pattern{}
	s := strings.TrimSpace(src)
	for len(s) > 0 {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			break
		}
		switch {
		case strings.HasPrefix(s, "(NP)"):
			p.Atoms = append(p.Atoms, Atom{Kind: AtomCapture})
			s = s[len("(NP)"):]
		case strings.HasPrefix(s, `("`):
			end := strings.Index(s[2:], `"`)
			if end < 0 {
				return nil, fmt.Errorf("ike: unterminated phrase in %q", src)
			}
			phrase := s[2 : 2+end]
			rest := s[2+end+1:]
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(rest), "~ %d)", &n); err != nil {
				return nil, fmt.Errorf("ike: bad distsim atom in %q", src)
			}
			close := strings.Index(rest, ")")
			p.Atoms = append(p.Atoms, Atom{Kind: AtomDistSim, Phrase: phrase, N: n})
			s = rest[close+1:]
		case strings.HasPrefix(s, `"`):
			end := strings.Index(s[1:], `"`)
			if end < 0 {
				return nil, fmt.Errorf("ike: unterminated phrase in %q", src)
			}
			p.Atoms = append(p.Atoms, Atom{Kind: AtomPhrase, Phrase: s[1 : 1+end]})
			s = s[1+end+1:]
		default:
			return nil, fmt.Errorf("ike: unexpected syntax at %q", s)
		}
	}
	if len(p.Atoms) == 0 {
		return nil, fmt.Errorf("ike: empty pattern")
	}
	return p, nil
}

// MustParse parses or panics (for embedded benchmark patterns).
func MustParse(src string) *Pattern {
	p, err := ParsePattern(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Extractor runs IKE patterns over a corpus.
type Extractor struct {
	model *embed.Model
	// expCache caches distsim expansions per (phrase, n).
	expCache map[string][][]string
}

// NewExtractor builds an extractor over the paraphrase model (the stand-in
// for IKE's distributional similarity tables).
func NewExtractor(model *embed.Model) *Extractor {
	return &Extractor{model: model, expCache: map[string][][]string{}}
}

// Run executes every pattern over every sentence and returns the set of
// captured NP strings (each line of an IKE session is run separately and
// results added to a relation, per the appendix).
func (e *Extractor) Run(c *index.Corpus, patterns []*Pattern) map[string]bool {
	out := map[string]bool{}
	for sid := range c.Sentences {
		s := &c.Sentences[sid]
		for _, p := range patterns {
			for _, cap := range e.matchSentence(s, p) {
				out[cap] = true
			}
		}
	}
	return out
}

// matchSentence returns captures of pattern p in sentence s. Atoms must
// match contiguously.
func (e *Extractor) matchSentence(s *nlp.Sentence, p *Pattern) []string {
	var caps []string
	n := len(s.Tokens)
	for start := 0; start < n; start++ {
		if cap, ok := e.matchAt(s, p, 0, start, ""); ok {
			if cap != "" {
				caps = append(caps, cap)
			}
		}
	}
	return caps
}

// matchAt matches atoms[ai:] starting at token pos; returns the captured NP.
func (e *Extractor) matchAt(s *nlp.Sentence, p *Pattern, ai, pos int, cap string) (string, bool) {
	if ai == len(p.Atoms) {
		return cap, true
	}
	a := p.Atoms[ai]
	switch a.Kind {
	case AtomPhrase:
		if end, ok := matchWords(s, pos, strings.Fields(strings.ToLower(a.Phrase))); ok {
			return e.matchAt(s, p, ai+1, end, cap)
		}
	case AtomDistSim:
		for _, words := range e.expansions(a.Phrase, a.N) {
			if end, ok := matchWords(s, pos, words); ok {
				if c, ok2 := e.matchAt(s, p, ai+1, end, cap); ok2 {
					return c, true
				}
			}
		}
	case AtomCapture:
		// An NP is an entity span starting at pos.
		if eIdx := s.Tokens[pos].EntityID; pos < len(s.Tokens) && eIdx >= 0 {
			ent := &s.Entities[eIdx]
			if ent.L == pos {
				if c, ok := e.matchAt(s, p, ai+1, ent.R+1, ent.Text); ok && cap == "" {
					return c, true
				}
			}
		}
	}
	return "", false
}

func (e *Extractor) expansions(phrase string, n int) [][]string {
	key := fmt.Sprintf("%s|%d", phrase, n)
	if exp, ok := e.expCache[key]; ok {
		return exp
	}
	var out [][]string
	if e.model == nil {
		out = [][]string{strings.Fields(strings.ToLower(phrase))}
	} else {
		for _, sc := range e.model.Expand(phrase, n) {
			out = append(out, strings.Fields(sc.Text))
		}
	}
	e.expCache[key] = out
	return out
}

func matchWords(s *nlp.Sentence, pos int, words []string) (int, bool) {
	if pos+len(words) > len(s.Tokens) {
		return 0, false
	}
	for i, w := range words {
		if s.Tokens[pos+i].Lower != w {
			return 0, false
		}
	}
	return pos + len(words), true
}
