package ike

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/koko/index"
)

func TestParsePattern(t *testing.T) {
	p := MustParse(`"cafe called" (NP)`)
	if len(p.Atoms) != 2 || p.Atoms[0].Kind != AtomPhrase || p.Atoms[1].Kind != AtomCapture {
		t.Fatalf("pattern = %+v", p)
	}
	p2 := MustParse(`(NP) ("serves coffee" ~ 10)`)
	if len(p2.Atoms) != 2 || p2.Atoms[1].Kind != AtomDistSim || p2.Atoms[1].N != 10 {
		t.Fatalf("pattern = %+v", p2)
	}
	if _, err := ParsePattern(`("unterminated`); err == nil {
		t.Error("bad pattern accepted")
	}
	if _, err := ParsePattern(``); err == nil {
		t.Error("empty pattern accepted")
	}
}

func TestExtractLiteralAndCapture(t *testing.T) {
	c := index.NewCorpus(nil, []string{
		"There is a new cafe called Gravity Beans downtown.",
		"We love the cafe called Blue Fox Coffee.",
		"This cafe sells tea.",
	})
	e := NewExtractor(embed.NewModel())
	got := e.Run(c, []*Pattern{MustParse(`"cafe called" (NP)`)})
	if !got["Gravity Beans"] {
		t.Errorf("missing Gravity Beans: %v", got)
	}
	if !got["Blue Fox Coffee"] {
		t.Errorf("missing Blue Fox Coffee: %v", got)
	}
	if len(got) != 2 {
		t.Errorf("extra captures: %v", got)
	}
}

func TestExtractDistSim(t *testing.T) {
	c := index.NewCorpus(nil, []string{
		"Gravity Beans sells espresso on Fridays.",
		"Nimbus Coffee serves coffee daily.",
		"The library sells books.",
	})
	e := NewExtractor(embed.NewModel())
	got := e.Run(c, []*Pattern{MustParse(`(NP) ("serves coffee" ~ 15)`)})
	if !got["Gravity Beans"] {
		t.Errorf("distsim missed 'sells espresso': %v", got)
	}
	if !got["Nimbus Coffee"] {
		t.Errorf("literal missed: %v", got)
	}
	if got["The library"] || got["library"] {
		t.Errorf("'sells books' matched: %v", got)
	}
}

// TestSingleSentenceScope: IKE cannot aggregate evidence across sentences —
// an entity mentioned with weak evidence in two different sentences is only
// extracted if some single sentence matches a pattern outright.
func TestSingleSentenceScope(t *testing.T) {
	c := index.NewCorpus(nil, []string{
		"Gravity Beans opened downtown.",
		"The shop hired a barista.",
	})
	e := NewExtractor(embed.NewModel())
	got := e.Run(c, []*Pattern{MustParse(`(NP) ("serves coffee" ~ 10)`)})
	if len(got) != 0 {
		t.Errorf("cross-sentence evidence aggregated: %v", got)
	}
}
