package nlp

import "strings"

// temporalNouns head time adverbials: PPs over them ("for years", "in 1911")
// attach to the governing verb, and bare temporal NPs are not objects.
var temporalNouns = newSet(
	"year", "years", "month", "months", "week", "weeks", "day", "days",
	"hour", "hours", "minute", "minutes", "decade", "decades", "morning",
	"afternoon", "evening", "night", "today", "yesterday", "tomorrow",
	"spring", "summer", "autumn", "fall", "winter", "monday", "tuesday",
	"wednesday", "thursday", "friday", "saturday", "sunday",
)

// temporalHead reports whether a token heads a temporal phrase: a temporal
// noun, a month name, or a 4-digit year.
func temporalHead(t *Token) bool {
	if temporalNouns[t.Lower] || monthNames[t.Lower] {
		return true
	}
	return t.POS == PosNum && len(t.Text) == 4 && isAllDigits(t.Text)
}

// The dependency parser is a deterministic two-stage rule parser:
//
//  1. chunking — group tokens into noun phrases (NP), verb groups (VG), and
//     singleton chunks for adpositions, conjunctions, adverbs, adjectives,
//     particles, and punctuation;
//  2. attachment — assign a head and parse label to every chunk head using
//     clause-aware rules (subjects, objects, copular complements, relative
//     clauses, prepositional phrases, coordination), then to every token
//     inside each chunk.
//
// The rules are tuned to reproduce the trees in the paper's Figure 1 and
// Example 3.1 exactly (see parser_test.go) and to behave sensibly on the
// synthetic corpora used by the experiments.

type chunkKind int

const (
	ckNP chunkKind = iota
	ckVG
	ckADJ
	ckADV
	ckADP
	ckCC
	ckPRT
	ckPUNCT
	ckOTHER
)

type chunk struct {
	kind    chunkKind
	l, r    int // token range, inclusive
	head    int // head token id within the chunk
	relpron bool
	// Attachment results for the chunk head.
	attached bool
}

// Parse assigns dependency heads and labels to the tokens of a sentence whose
// POS tags are already set. It overwrites Token.Head and Token.Label.
func Parse(s *Sentence) {
	n := len(s.Tokens)
	if n == 0 {
		return
	}
	for i := range s.Tokens {
		s.Tokens[i].Head = -1
		s.Tokens[i].Label = LblDep
	}
	chunks := chunkSentence(s)
	attachChunks(s, chunks)
	s.computeDerived()
}

// chunkSentence groups tokens into chunks.
func chunkSentence(s *Sentence) []chunk {
	var out []chunk
	toks := s.Tokens
	n := len(toks)
	i := 0
	for i < n {
		t := &toks[i]
		lower := t.Lower
		switch {
		case t.POS == PosPunct:
			out = append(out, chunk{kind: ckPUNCT, l: i, r: i, head: i})
			i++
		case t.POS == PosPron && relativePronouns[lower]:
			out = append(out, chunk{kind: ckNP, l: i, r: i, head: i, relpron: true})
			i++
		case t.POS == PosPron:
			out = append(out, chunk{kind: ckNP, l: i, r: i, head: i})
			i++
		case t.POS == PosVerb:
			// Verb group: aux* + main verb. Allow an adverb or negation
			// inside ("had never been called"): keep those as ADV chunks
			// emitted separately but do not break the group.
			j := i
			lastVerb := i
			for j < n {
				if toks[j].POS == PosVerb {
					lastVerb = j
					j++
					continue
				}
				if toks[j].POS == PosAdv && j+1 < n && toks[j+1].POS == PosVerb {
					j++ // adverb inside the group
					continue
				}
				break
			}
			out = append(out, chunk{kind: ckVG, l: i, r: lastVerb, head: lastVerb})
			i = j
		case t.POS == PosDet || t.POS == PosAdj || t.POS == PosNum ||
			t.POS == PosNoun || t.POS == PosPropn:
			// Noun phrase: (det|adj|num|noun|propn)* ending at a nominal.
			// "such" before "as" is excluded (handled as part of "such as").
			if lower == "such" && i+1 < n && toks[i+1].Lower == "as" {
				out = append(out, chunk{kind: ckOTHER, l: i, r: i, head: i})
				i++
				continue
			}
			j := i
			lastNom := -1
			for j < n {
				p := toks[j].POS
				if p == PosDet || p == PosAdj || p == PosNum || p == PosNoun || p == PosPropn {
					if toks[j].Lower == "such" && j+1 < n && toks[j+1].Lower == "as" {
						break
					}
					// A determiner after a nominal starts a new NP:
					// "serves espresso every morning".
					if p == PosDet && lastNom >= 0 {
						break
					}
					if p == PosNoun || p == PosPropn || p == PosNum {
						lastNom = j
					}
					j++
					continue
				}
				break
			}
			if lastNom == -1 {
				// Determiner or adjective with no nominal: singleton chunk.
				kind := ckOTHER
				if t.POS == PosAdj {
					kind = ckADJ
				}
				out = append(out, chunk{kind: kind, l: i, r: i, head: i})
				i++
				continue
			}
			// Adjectives after the last nominal do not belong to the NP.
			out = append(out, chunk{kind: ckNP, l: i, r: lastNom, head: lastNom})
			i = lastNom + 1
		case t.POS == PosAdp:
			out = append(out, chunk{kind: ckADP, l: i, r: i, head: i})
			i++
		case t.POS == PosConj:
			out = append(out, chunk{kind: ckCC, l: i, r: i, head: i})
			i++
		case t.POS == PosAdv:
			out = append(out, chunk{kind: ckADV, l: i, r: i, head: i})
			i++
		case t.POS == PosPrt:
			out = append(out, chunk{kind: ckPRT, l: i, r: i, head: i})
			i++
		default:
			out = append(out, chunk{kind: ckOTHER, l: i, r: i, head: i})
			i++
		}
	}
	return out
}

// vgRole describes how a verb group attaches to the rest of the sentence.
type vgRole int

const (
	vgMain vgRole = iota
	vgRcmod
	vgConj
	vgXcomp
	vgPobj // gerund object of a preposition: "famous for serving espresso"
)

type vgInfo struct {
	chunkIdx int
	role     vgRole
	attachTo int // token id this VG head attaches to (-1 for root)
	subject  int // chunk index of the subject NP, -1 if none
}

func attachChunks(s *Sentence, chunks []chunk) {
	toks := s.Tokens
	attach := func(child, head int, label string) {
		if child == head || child < 0 {
			return
		}
		toks[child].Head = head
		toks[child].Label = label
	}

	// ---- Pass 1: classify verb groups and pick the root. ----
	var vgs []vgInfo
	prevNPHead := -1 // most recent NP head token seen so far
	rootTok := -1
	var lastMainVG int = -1
	for ci := range chunks {
		c := &chunks[ci]
		switch c.kind {
		case ckNP:
			if !c.relpron {
				prevNPHead = c.head
			}
		case ckVG:
			info := vgInfo{chunkIdx: ci, role: vgMain, attachTo: -1, subject: -1}
			// Scan backwards over punctuation/adverbs to find what precedes.
			k := ci - 1
			sawRelpron := -1
			sawSubjectNP := -1
			sawCC := -1
			sawPRT := false
			sawADP := -1
			for k >= 0 {
				p := &chunks[k]
				if p.kind == ckPUNCT || p.kind == ckADV {
					k--
					continue
				}
				if p.kind == ckNP && p.relpron {
					sawRelpron = k
					k--
					continue
				}
				if p.kind == ckNP && sawRelpron == -1 && sawSubjectNP == -1 {
					// Possible subject; look one more back for a relpron
					// ("that she bought").
					sawSubjectNP = k
					k--
					continue
				}
				if p.kind == ckCC {
					sawCC = k
				}
				if p.kind == ckPRT {
					sawPRT = true
				}
				if p.kind == ckADP {
					sawADP = p.head
				}
				break
			}
			switch {
			case sawRelpron >= 0:
				// Relative clause. Attach to the NP before the relative
				// pronoun (skipping punctuation).
				info.role = vgRcmod
				info.attachTo = npBefore(chunks, sawRelpron)
				if sawSubjectNP >= 0 {
					info.subject = sawSubjectNP
					// Relative pronoun plays the object role.
					attach(chunks[sawRelpron].head, c.head, LblDobj)
					chunks[sawRelpron].attached = true
				} else {
					info.subject = sawRelpron
				}
			case sawCC >= 0 && lastMainVG >= 0:
				info.role = vgConj
				info.attachTo = vgs[lastMainVG].headTok(chunks)
				attach(chunks[sawCC].head, info.attachTo, LblCC)
				chunks[sawCC].attached = true
				if sawSubjectNP >= 0 && sawSubjectNP > sawCC {
					info.subject = sawSubjectNP
				}
			case sawPRT && lastMainVG >= 0:
				info.role = vgXcomp
				info.attachTo = vgs[lastMainVG].headTok(chunks)
			case sawADP >= 0 && rootTok != -1:
				info.role = vgPobj
				info.attachTo = sawADP
			default:
				if rootTok == -1 {
					info.role = vgMain
					rootTok = c.head
					if sawSubjectNP >= 0 {
						info.subject = sawSubjectNP
					}
				} else {
					// A second main verb with no conjunction: treat as a
					// clausal complement of the previous main verb
					// ("had been called Sid" is one VG; this covers
					// "said he ate" style chains).
					info.role = vgXcomp
					info.attachTo = rootTok
					if sawSubjectNP >= 0 {
						info.subject = sawSubjectNP
					}
				}
			}
			if info.role == vgMain {
				lastMainVG = len(vgs)
			}
			vgs = append(vgs, info)
		}
	}
	_ = prevNPHead

	// No verb at all: root is the first NP head (nominal fragment), or the
	// first token otherwise.
	if rootTok == -1 {
		for ci := range chunks {
			if chunks[ci].kind == ckNP {
				rootTok = chunks[ci].head
				chunks[ci].attached = true
				break
			}
		}
		if rootTok == -1 {
			rootTok = chunks[0].head
			chunks[0].attached = true
		}
	}
	attach(rootTok, -1, LblRoot)
	toks[rootTok].Head = -1
	toks[rootTok].Label = LblRoot

	// Attach verb-group heads and their subjects.
	for vi := range vgs {
		info := &vgs[vi]
		c := &chunks[info.chunkIdx]
		head := c.head
		switch info.role {
		case vgMain:
			if head != rootTok {
				attach(head, rootTok, LblConj)
			}
		case vgRcmod:
			if info.attachTo >= 0 {
				attach(head, info.attachTo, LblRcmod)
			} else {
				attach(head, rootTok, LblRcmod)
			}
		case vgConj:
			attach(head, info.attachTo, LblConj)
		case vgXcomp:
			if info.attachTo >= 0 {
				attach(head, info.attachTo, LblXcomp)
			} else {
				attach(head, rootTok, LblXcomp)
			}
		case vgPobj:
			attach(head, info.attachTo, LblPobj)
		}
		c.attached = true
		// Auxiliaries inside the group.
		for t := c.l; t < c.head; t++ {
			if toks[t].POS == PosVerb {
				attach(t, head, LblAux)
			}
		}
		if info.subject >= 0 {
			sc := &chunks[info.subject]
			if !sc.attached {
				attach(sc.head, head, LblNsubj)
				sc.attached = true
			}
		}
	}

	// ---- Pass 2: left-to-right attachment of the remaining chunks. ----
	// governingVerb(ci) = token id of the VG head whose clause covers chunk ci.
	governing := make([]int, len(chunks))
	{
		cur := rootTok
		// Chunks before the first VG are governed by the root.
		vgAt := map[int]int{}
		for vi := range vgs {
			vgAt[vgs[vi].chunkIdx] = chunks[vgs[vi].chunkIdx].head
		}
		for ci := range chunks {
			if h, ok := vgAt[ci]; ok {
				cur = h
			}
			governing[ci] = cur
		}
	}

	pendingPrep := -1  // token id of an adposition awaiting its pobj
	lastNomHead := -1  // most recent attached nominal head (for PP and CC attachment)
	lastNomChunk := -1 // chunk index of that nominal
	copEmptyAfter := map[int]bool{}
	for vi := range vgs {
		h := chunks[vgs[vi].chunkIdx].head
		if copulas[toks[h].Lower] {
			copEmptyAfter[h] = true // until we attach an attr/acomp
		}
	}
	dobjOf := map[int]int{}

	for ci := range chunks {
		c := &chunks[ci]
		if c.kind == ckVG {
			lastNomHead = -1 // new clause region for PP attachment
			lastNomChunk = -1
			pendingPrep = -1
			continue
		}
		if c.attached && c.kind != ckNP {
			continue
		}
		gov := governing[ci]
		switch c.kind {
		case ckNP:
			if c.attached {
				lastNomHead = c.head
				lastNomChunk = ci
				continue
			}
			switch {
			case pendingPrep >= 0:
				attach(c.head, pendingPrep, LblPobj)
				pendingPrep = -1
			case prevChunkIsCC(chunks, ci) && lastNomHead >= 0:
				// "china and japan": conj to the previous nominal.
				ccIdx := prevNonPunct(chunks, ci)
				attach(chunks[ccIdx].head, lastNomHead, LblCC)
				chunks[ccIdx].attached = true
				attach(c.head, lastNomHead, LblConj)
			case gov >= 0 && gov != c.head:
				if temporalHead(&toks[c.head]) && c.head > gov {
					// Bare temporal NP: "opened last week", "every morning".
					attach(c.head, gov, LblDep)
				} else if copEmptyAfter[gov] && c.head > gov {
					attach(c.head, gov, LblAttr)
					copEmptyAfter[gov] = false
				} else if _, has := dobjOf[gov]; !has && c.head > gov {
					attach(c.head, gov, LblDobj)
					dobjOf[gov] = c.head
				} else if c.head < gov {
					// Leftover NP before a verb that already has a subject:
					// treat as a temporal/“npadvmod”-ish dependent.
					attach(c.head, gov, LblDep)
				} else {
					attach(c.head, gov, LblDep)
				}
			default:
				attach(c.head, rootTok, LblDep)
			}
			c.attached = true
			lastNomHead = c.head
			lastNomChunk = ci
		case ckADP:
			// Attach to the most recent nominal in this clause if one
			// exists; otherwise to the governing verb. Temporal PPs
			// ("for years", "in 1911") attach to the verb regardless.
			target := gov
			if lastNomHead >= 0 {
				target = lastNomHead
			}
			if nx := nextNP(chunks, ci); nx >= 0 && gov >= 0 && temporalHead(&toks[chunks[nx].head]) {
				target = gov
			}
			if target < 0 || target == c.head {
				target = rootTok
			}
			attach(c.head, target, LblPrep)
			c.attached = true
			pendingPrep = c.head
		case ckADJ:
			// Standalone adjective: acomp of a copula, otherwise amod of the
			// next NP head (chunker usually folds that case in), otherwise
			// dep of the governing verb.
			if gov >= 0 && copulas[toks[gov].Lower] {
				attach(c.head, gov, LblAcomp)
				copEmptyAfter[gov] = false
			} else if nx := nextNP(chunks, ci); nx >= 0 {
				attach(c.head, chunks[nx].head, LblAmod)
			} else if gov >= 0 && gov != c.head {
				attach(c.head, gov, LblAcomp)
			} else {
				attach(c.head, rootTok, LblDep)
			}
			c.attached = true
		case ckADV:
			// Prefer the following verb ("also ate"), else the governing verb.
			if nx := nextVG(chunks, ci); nx >= 0 && nx <= ci+2 {
				attach(c.head, chunks[nx].head, LblAdvmod)
			} else if gov >= 0 && gov != c.head {
				attach(c.head, gov, LblAdvmod)
			} else {
				attach(c.head, rootTok, LblAdvmod)
			}
			c.attached = true
		case ckCC:
			// Conjunction not consumed by a VG or NP coordination: attach to
			// the nominal being coordinated if the next chunk is an NP, else
			// to the governing verb. NP case is handled when the NP arrives;
			// here we only handle trailing/unmatched conjunctions.
			if nx := nextNP(chunks, ci); nx == ci+1 && lastNomHead >= 0 {
				continue // the NP branch will attach both
			}
			attach(c.head, orRoot(gov, rootTok), LblCC)
			c.attached = true
		case ckPRT:
			// Infinitival "to": aux of the following verb.
			if nx := nextVG(chunks, ci); nx >= 0 {
				attach(c.head, chunks[nx].head, LblAux)
			} else {
				attach(c.head, orRoot(gov, rootTok), LblDep)
			}
			c.attached = true
		case ckOTHER:
			lower := toks[c.head].Lower
			if lower == "such" {
				// "such as": attach to the following "as".
				if ci+1 < len(chunks) && toks[chunks[ci+1].head].Lower == "as" {
					attach(c.head, chunks[ci+1].head, LblDep)
					c.attached = true
					continue
				}
			}
			attach(c.head, orRoot(gov, rootTok), LblDep)
			c.attached = true
		case ckPUNCT:
			// Resolved in pass 3.
		}
	}
	_ = lastNomChunk

	// ---- Pass 3: punctuation attachment. ----
	// Sentence-final punctuation attaches to the root. A comma directly
	// before a relative pronoun attaches to the noun the relative clause
	// modifies (Figure 1: the comma before "which" hangs off "cream").
	// Every other punctuation token attaches to the root.
	for ci := range chunks {
		c := &chunks[ci]
		if c.kind != ckPUNCT {
			continue
		}
		target := rootTok
		if ci+1 < len(chunks) && chunks[ci+1].kind == ckNP && chunks[ci+1].relpron {
			if np := npBefore(chunks, ci); np >= 0 {
				target = np
			}
		}
		attach(c.head, target, LblP)
	}

	// ---- Pass 4: intra-chunk attachments for NPs and leftovers. ----
	for ci := range chunks {
		c := &chunks[ci]
		if c.kind != ckNP || c.l == c.r {
			continue
		}
		head := c.head
		for t := c.l; t <= c.r; t++ {
			if t == head {
				continue
			}
			switch toks[t].POS {
			case PosDet:
				attach(t, head, LblDet)
			case PosAdj:
				attach(t, head, LblAmod)
			case PosNum:
				if t < head {
					attach(t, head, LblNum)
				} else {
					attach(t, head, LblNum)
				}
			case PosNoun, PosPropn:
				if t < head {
					attach(t, head, LblNN)
				} else {
					attach(t, head, LblDep)
				}
			default:
				attach(t, head, LblDep)
			}
		}
	}

	// Safety net: anything still unattached hangs off the root.
	for i := range toks {
		if i == rootTok {
			continue
		}
		if toks[i].Head == -1 {
			attach(i, rootTok, LblDep)
		}
	}
}

func (v *vgInfo) headTok(chunks []chunk) int { return chunks[v.chunkIdx].head }

func npBefore(chunks []chunk, ci int) int {
	for k := ci - 1; k >= 0; k-- {
		if chunks[k].kind == ckPUNCT {
			continue
		}
		if chunks[k].kind == ckNP && !chunks[k].relpron {
			return chunks[k].head
		}
		return -1
	}
	return -1
}

func prevChunkIsCC(chunks []chunk, ci int) bool {
	k := prevNonPunct(chunks, ci)
	return k >= 0 && chunks[k].kind == ckCC && !chunks[k].attached
}

func prevNonPunct(chunks []chunk, ci int) int {
	for k := ci - 1; k >= 0; k-- {
		if chunks[k].kind != ckPUNCT {
			return k
		}
	}
	return -1
}

func nextNP(chunks []chunk, ci int) int {
	for k := ci + 1; k < len(chunks); k++ {
		switch chunks[k].kind {
		case ckPUNCT, ckADV:
			continue
		case ckNP:
			return k
		default:
			return -1
		}
	}
	return -1
}

func nextVG(chunks []chunk, ci int) int {
	for k := ci + 1; k < len(chunks); k++ {
		switch chunks[k].kind {
		case ckPUNCT, ckADV, ckPRT:
			continue
		case ckVG:
			return k
		default:
			return -1
		}
	}
	return -1
}

func orRoot(t, root int) int {
	if t >= 0 {
		return t
	}
	return root
}

// AnnotateSentence runs the full single-sentence pipeline: tokenize, tag,
// parse, and recognize entities. Used by Pipeline and directly by tests.
func AnnotateSentence(id int, text string) Sentence {
	words := Tokenize(text)
	tags := TagPOS(words)
	s := Sentence{ID: id, Tokens: make([]Token, len(words))}
	for i, w := range words {
		s.Tokens[i] = Token{
			ID:       i,
			Text:     w,
			Lower:    strings.ToLower(w),
			POS:      tags[i],
			Head:     -1,
			EntityID: -1,
		}
	}
	Parse(&s)
	RecognizeEntities(&s)
	return s
}
