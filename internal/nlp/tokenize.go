package nlp

import (
	"strings"
	"unicode"
)

// abbreviations that end with a period but do not end a sentence.
var abbreviations = map[string]bool{
	"mr": true, "mrs": true, "ms": true, "dr": true, "prof": true,
	"st": true, "ave": true, "av": true, "blvd": true, "rd": true,
	"jr": true, "sr": true, "vs": true, "etc": true, "inc": true,
	"co": true, "corp": true, "ltd": true, "no": true, "dept": true,
	"approx": true, "est": true, "fig": true, "al": true, "e.g": true,
	"i.e": true, "a.m": true, "p.m": true, "u.s": true, "u.k": true,
	"jan": true, "feb": true, "mar": true, "apr": true, "jun": true,
	"jul": true, "aug": true, "sep": true, "sept": true, "oct": true,
	"nov": true, "dec": true, "mt": true, "ft": true,
}

// SplitSentences splits raw text into sentence strings. The splitter is
// period/question/exclamation driven with an abbreviation guard and treats
// blank lines as hard boundaries.
func SplitSentences(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		s := strings.TrimSpace(cur.String())
		if s != "" {
			out = append(out, s)
		}
		cur.Reset()
	}
	runes := []rune(text)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		if r == '\n' {
			// A blank line is a paragraph break.
			if i+1 < len(runes) && runes[i+1] == '\n' {
				flush()
				continue
			}
			cur.WriteRune(' ')
			continue
		}
		cur.WriteRune(r)
		if r == '!' || r == '?' {
			flush()
			continue
		}
		if r == '.' {
			// Look back for the word preceding the period.
			w := lastWord(runes, i)
			if abbreviations[strings.ToLower(w)] {
				continue
			}
			// A period inside a number ("3.5") or an acronym ("U.S.")
			// does not split if the next rune is not whitespace.
			if i+1 < len(runes) && !unicode.IsSpace(runes[i+1]) {
				continue
			}
			// Require the next non-space rune to look like a sentence
			// start (uppercase, digit, or quote) or end-of-text.
			j := i + 1
			for j < len(runes) && unicode.IsSpace(runes[j]) {
				j++
			}
			if j >= len(runes) || unicode.IsUpper(runes[j]) || unicode.IsDigit(runes[j]) ||
				runes[j] == '"' || runes[j] == '\'' {
				flush()
			}
		}
	}
	flush()
	return out
}

// Tokenize splits a single sentence string into surface tokens. Words keep
// internal hyphens and apostrophes ("pour-over", "Odin's"); every other
// punctuation mark becomes its own token. Periods in known abbreviations and
// numbers stay attached.
func Tokenize(sentence string) []string {
	var toks []string
	runes := []rune(sentence)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			j := i
			for j < len(runes) {
				c := runes[j]
				if unicode.IsLetter(c) || unicode.IsDigit(c) {
					j++
					continue
				}
				// Keep internal hyphen/apostrophe between alphanumerics.
				if (c == '-' || c == '\'' || c == '’') && j+1 < len(runes) &&
					(unicode.IsLetter(runes[j+1]) || unicode.IsDigit(runes[j+1])) {
					j += 2
					continue
				}
				// Keep internal period for abbreviations/acronyms/numbers:
				// "p.m.", "U.S.", "3.5".
				if c == '.' && j+1 < len(runes) &&
					(unicode.IsLetter(runes[j+1]) || unicode.IsDigit(runes[j+1])) {
					j += 2
					continue
				}
				break
			}
			word := string(runes[i:j])
			// A trailing period belongs to the word only for known
			// abbreviations ("p.m." keeps it via the loop above when
			// followed by a letter; here we handle "etc." at end).
			toks = append(toks, word)
			i = j
		default:
			// Punctuation: each mark is its own token, except runs of the
			// same mark ("..." or "--").
			j := i + 1
			for j < len(runes) && runes[j] == r && (r == '.' || r == '-') {
				j++
			}
			toks = append(toks, string(runes[i:j]))
			i = j
		}
	}
	return toks
}

func lastWord(runes []rune, end int) string {
	j := end - 1
	for j >= 0 && (unicode.IsLetter(runes[j]) || runes[j] == '.') {
		j--
	}
	w := string(runes[j+1 : end])
	return strings.TrimSuffix(w, ".")
}

func isPunct(tok string) bool {
	for _, r := range tok {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			return false
		}
	}
	return len(tok) > 0
}

func isCapitalized(tok string) bool {
	for _, r := range tok {
		return unicode.IsUpper(r)
	}
	return false
}

func isAllDigits(tok string) bool {
	if tok == "" {
		return false
	}
	for _, r := range tok {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

func hasDigit(tok string) bool {
	for _, r := range tok {
		if unicode.IsDigit(r) {
			return true
		}
	}
	return false
}
