package nlp

// Named-entity recognition. The paper's preprocessing (Google NL API) labels
// both proper-noun mentions ("Anna" → PERSON) and salient common-noun phrases
// ("chocolate ice cream" → OTHER, "grocery store" → LOCATION); the entity
// index is built from these spans, and queries bind typed output variables
// ("x:Entity", "a:Person", "a:GPE") to them. We reproduce that behaviour with
// gazetteers and orthographic rules.

// locationCommonNouns are common-noun heads that denote places; an NP headed
// by one of these becomes a Location entity (paper Example 3.1 labels
// "grocery store" LOCATION).
var locationCommonNouns = newSet(
	"store", "stores", "stadium", "arena", "park", "airport", "station",
	"mall", "library", "museum", "theater", "school", "college",
	"university", "hospital", "church", "hotel", "gym", "field", "court",
	"pool", "restaurant", "bakery", "cafe", "café", "bar", "market",
)

// RecognizeEntities fills s.Entities and Token.EntityID. It must run after
// Parse (it uses POS tags and NP structure but not heads).
func RecognizeEntities(s *Sentence) {
	s.Entities = s.Entities[:0]
	for i := range s.Tokens {
		s.Tokens[i].EntityID = -1
	}
	n := len(s.Tokens)
	add := func(l, r int, typ string) {
		if l > r {
			return
		}
		for t := l; t <= r; t++ {
			if s.Tokens[t].EntityID >= 0 {
				return // overlap: first match wins
			}
		}
		e := Entity{Type: typ, L: l, R: r, Text: s.Text(l, r)}
		s.Entities = append(s.Entities, e)
		id := len(s.Entities) - 1
		for t := l; t <= r; t++ {
			s.Tokens[t].EntityID = id
		}
	}

	// 1. Dates: "1 December 1900", "December 1900", "December 1, 1900",
	//    bare 4-digit years.
	for i := 0; i < n; i++ {
		t := &s.Tokens[i]
		if t.POS == PosPropn && monthNames[t.Lower] {
			l, r := i, i
			if i > 0 && s.Tokens[i-1].POS == PosNum && len(s.Tokens[i-1].Text) <= 2 {
				l = i - 1
			}
			if i+1 < n && s.Tokens[i+1].POS == PosNum {
				r = i + 1
				if r+2 < n && s.Tokens[r+1].Lower == "," && s.Tokens[r+2].POS == PosNum {
					r += 2
				}
			}
			add(l, r, EntDate)
			i = r
			continue
		}
		if t.POS == PosNum && len(t.Text) == 4 && isAllDigits(t.Text) {
			add(i, i, EntDate)
		}
	}

	// 2. Proper-noun sequences.
	for i := 0; i < n; i++ {
		if s.Tokens[i].POS != PosPropn || s.Tokens[i].EntityID >= 0 {
			continue
		}
		j := i
		for j+1 < n && s.Tokens[j+1].POS == PosPropn && s.Tokens[j+1].EntityID < 0 {
			j++
		}
		add(i, j, classifyProper(s, i, j))
		i = j
	}

	// 3. Common-noun phrases: the contiguous run of noun/propn tokens ending
	//    at an NP head (nn-compounds plus head — "chocolate ice cream",
	//    "grocery store", "cheesecake"). Determiners/adjectives are excluded,
	//    matching the paper's entity spans.
	for i := 0; i < n; i++ {
		if s.Tokens[i].POS != PosNoun || s.Tokens[i].EntityID >= 0 {
			continue
		}
		j := i
		for j+1 < n && (s.Tokens[j+1].POS == PosNoun) && s.Tokens[j+1].EntityID < 0 {
			j++
		}
		typ := EntOther
		if locationCommonNouns[s.Tokens[j].Lower] {
			typ = EntLocation
		}
		add(i, j, typ)
		i = j
	}
}

func classifyProper(s *Sentence, l, r int) string {
	first := s.Tokens[l].Lower
	last := s.Tokens[r].Lower
	switch {
	case monthNames[first]:
		return EntDate
	case orgSuffixes[last]:
		return EntOrg
	case placeNames[last] || countryNames[last] || placeNames[first] || countryNames[first]:
		// Single- or multi-token place name.
		if r == l || placeNames[last] || countryNames[last] {
			return EntLocation
		}
		return EntOther
	case firstNames[first] || surnames[last]:
		return EntPerson
	case locationCommonNouns[last]:
		return EntLocation
	}
	// Capitalized sequences containing org-ish nouns ("Blue Fox Coffee",
	// "Gravity Roasters") are business names: Other covers them; queries use
	// x:Entity which matches any type.
	return EntOther
}

// GPEAlias reports whether a requested entity type name matches an entity's
// type, honouring the paper's aliases: "GPE" ≡ Location, "Entity" ≡ any.
func GPEAlias(want, have string) bool {
	switch want {
	case "", "Entity", "entity":
		return true
	case "GPE", "gpe":
		return have == EntLocation
	}
	return want == have
}
