package nlp

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// dep is a compact expectation: token text, label, head text ("-" for root).
type dep struct {
	text, label, head string
}

func checkTree(t *testing.T, s *Sentence, want []dep) {
	t.Helper()
	if len(s.Tokens) != len(want) {
		t.Fatalf("got %d tokens, want %d\ntree:\n%s", len(s.Tokens), len(want), s.TreeString())
	}
	for i, w := range want {
		tok := &s.Tokens[i]
		if tok.Text != w.text {
			t.Errorf("token %d: text %q, want %q", i, tok.Text, w.text)
			continue
		}
		if tok.Label != w.label {
			t.Errorf("token %d (%s): label %q, want %q\ntree:\n%s", i, tok.Text, tok.Label, w.label, s.TreeString())
		}
		headText := "-"
		if tok.Head >= 0 {
			headText = s.Tokens[tok.Head].Text
		}
		if headText != w.head {
			t.Errorf("token %d (%s): head %q, want %q\ntree:\n%s", i, tok.Text, headText, w.head, s.TreeString())
		}
	}
}

// TestFigure1Tree pins the dependency tree of the paper's Figure 1 sentence.
func TestFigure1Tree(t *testing.T) {
	s := AnnotateSentence(0, "I ate a chocolate ice cream, which was delicious, and also ate a pie.")
	checkTree(t, &s, []dep{
		{"I", "nsubj", "ate"},
		{"ate", "root", "-"},
		{"a", "det", "cream"},
		{"chocolate", "nn", "cream"},
		{"ice", "nn", "cream"},
		{"cream", "dobj", "ate"},
		{",", "p", "cream"},
		{"which", "nsubj", "was"},
		{"was", "rcmod", "cream"},
		{"delicious", "acomp", "was"},
		{",", "p", "ate"},
		{"and", "cc", "ate"},
		{"also", "advmod", "ate"},
		{"ate", "conj", "ate"},
		{"a", "det", "pie"},
		{"pie", "dobj", "ate"},
		{".", "p", "ate"},
	})
	// Conj "ate" must attach to the FIRST "ate" (token 1), and advmod "also"
	// to the second (token 13) — disambiguate by id.
	if s.Tokens[13].Head != 1 {
		t.Errorf("conj ate head = %d, want 1", s.Tokens[13].Head)
	}
	if s.Tokens[12].Head != 13 {
		t.Errorf("also head = %d, want 13", s.Tokens[12].Head)
	}
	// Example 3.2 quintuples: ate (0,1,0-16,0); delicious (0,9,9-9,3);
	// cream (0,5,2-9,1); I (0,0,0-0,1).
	type quint struct{ id, subL, subR, depth int }
	for _, q := range []quint{{1, 0, 16, 0}, {9, 9, 9, 3}, {5, 2, 9, 1}, {0, 0, 0, 1}} {
		tok := s.Tokens[q.id]
		if tok.SubL != q.subL || tok.SubR != q.subR || tok.Depth != q.depth {
			t.Errorf("token %d (%s): quintuple (%d-%d,%d), want (%d-%d,%d)",
				q.id, tok.Text, tok.SubL, tok.SubR, tok.Depth, q.subL, q.subR, q.depth)
		}
	}
	// Figure 1 entity: "chocolate ice cream" (tokens 3-5) typed OTHER.
	e := s.EntityAt(4)
	if e == nil || e.L != 3 || e.R != 5 || e.Type != EntOther {
		t.Errorf("entity at token 4 = %+v, want OTHER span [3,5]", e)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

// TestExample31Tree pins the dependency tree of the paper's Example 3.1
// sentence (sid 1 in the worked index examples).
func TestExample31Tree(t *testing.T) {
	s := AnnotateSentence(1, "Anna ate some delicious cheesecake that she bought at a grocery store.")
	checkTree(t, &s, []dep{
		{"Anna", "nsubj", "ate"},
		{"ate", "root", "-"},
		{"some", "det", "cheesecake"},
		{"delicious", "amod", "cheesecake"},
		{"cheesecake", "dobj", "ate"},
		{"that", "dobj", "bought"},
		{"she", "nsubj", "bought"},
		{"bought", "rcmod", "cheesecake"},
		{"at", "prep", "bought"},
		{"a", "det", "store"},
		{"grocery", "nn", "store"},
		{"store", "pobj", "at"},
		{".", "p", "ate"},
	})
	// Example 3.2 quintuples: ate (1,1,0-12,0); delicious (1,3,3-3,2);
	// Anna (1,0,0-0,1); cheesecake (1,4,2-11,1).
	type quint struct{ id, subL, subR, depth int }
	for _, q := range []quint{{1, 0, 12, 0}, {3, 3, 3, 2}, {0, 0, 0, 1}, {4, 2, 11, 1}} {
		tok := s.Tokens[q.id]
		if tok.SubL != q.subL || tok.SubR != q.subR || tok.Depth != q.depth {
			t.Errorf("token %d (%s): quintuple (%d-%d,%d), want (%d-%d,%d)",
				q.id, tok.Text, tok.SubL, tok.SubR, tok.Depth, q.subL, q.subR, q.depth)
		}
	}
	// Example 3.2 entities: cheesecake (1,4-4), grocery store (1,10-11),
	// Anna is PERSON, grocery store LOCATION.
	if e := s.EntityAt(4); e == nil || e.L != 4 || e.R != 4 || e.Type != EntOther {
		t.Errorf("cheesecake entity = %+v", e)
	}
	if e := s.EntityAt(10); e == nil || e.L != 10 || e.R != 11 || e.Type != EntLocation {
		t.Errorf("grocery store entity = %+v", e)
	}
	if e := s.EntityAt(0); e == nil || e.Type != EntPerson {
		t.Errorf("Anna entity = %+v", e)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

// TestIntroSentences checks the trees of the other sentences the paper's
// introduction discusses, at the level the KOKO queries rely on: "delicious"
// must land inside the subtree of the food it describes.
func TestIntroSentences(t *testing.T) {
	s := AnnotateSentence(0, "I ate delicious cheese cake.")
	// "delicious" must be within the subtree of the dobj "cake".
	cake := -1
	for i := range s.Tokens {
		if s.Tokens[i].Text == "cake" {
			cake = i
		}
	}
	if cake == -1 {
		t.Fatal("no cake token")
	}
	if s.Tokens[cake].Label != "dobj" {
		t.Errorf("cake label = %s, want dobj", s.Tokens[cake].Label)
	}
	del := 2
	if !(s.Tokens[cake].SubL <= del && del <= s.Tokens[cake].SubR) {
		t.Errorf("delicious (tok %d) outside cake subtree [%d,%d]", del, s.Tokens[cake].SubL, s.Tokens[cake].SubR)
	}

	s2 := AnnotateSentence(0, "I ate a delicious and salty pie with peanuts.")
	pie := -1
	for i := range s2.Tokens {
		if s2.Tokens[i].Text == "pie" {
			pie = i
		}
	}
	if pie == -1 {
		t.Fatalf("no pie token\n%s", s2.TreeString())
	}
	if s2.Tokens[pie].Label != "dobj" {
		t.Errorf("pie label = %s, want dobj\n%s", s2.Tokens[pie].Label, s2.TreeString())
	}
	if err := s2.Validate(); err != nil {
		t.Error(err)
	}
}

// TestExample22Sentences checks the structures used by the paper's
// Example 2.2 ("cities in asian countries such as china and japan").
func TestExample22Sentences(t *testing.T) {
	s := AnnotateSentence(0, "cities in asian countries such as China and Japan.")
	byText := map[string]*Token{}
	for i := range s.Tokens {
		byText[s.Tokens[i].Text] = &s.Tokens[i]
	}
	if byText["cities"] == nil || byText["cities"].Label != "root" {
		t.Fatalf("cities should be root\n%s", s.TreeString())
	}
	if byText["in"].Label != "prep" || s.Tokens[byText["in"].Head].Text != "cities" {
		t.Errorf("in: %s->%d\n%s", byText["in"].Label, byText["in"].Head, s.TreeString())
	}
	if byText["countries"].Label != "pobj" {
		t.Errorf("countries label = %s\n%s", byText["countries"].Label, s.TreeString())
	}
	if byText["China"].Label != "pobj" || s.Tokens[byText["China"].Head].Text != "as" {
		t.Errorf("China: %s under %d\n%s", byText["China"].Label, byText["China"].Head, s.TreeString())
	}
	if byText["Japan"].Label != "conj" || s.Tokens[byText["Japan"].Head].Text != "China" {
		t.Errorf("Japan: %s\n%s", byText["Japan"].Label, s.TreeString())
	}
	// China and Japan must be Location entities (queries use a:GPE).
	for _, name := range []string{"China", "Japan"} {
		e := s.EntityAt(byText[name].ID)
		if e == nil || e.Type != EntLocation {
			t.Errorf("%s entity = %+v, want Location", name, e)
		}
	}
}

// TestScaleQuerySentences checks the constructions targeted by the §6.3
// Wikipedia queries.
func TestScaleQuerySentences(t *testing.T) {
	// Chocolate query: v=//verb, o under v with pobj[text=chocolate], s=v/nsubj.
	s := AnnotateSentence(0, "Baking chocolate is a type of chocolate that is prepared for baking.")
	root := s.Root()
	if s.Tokens[root].Lower != "is" {
		t.Fatalf("root = %q, want is\n%s", s.Tokens[root].Text, s.TreeString())
	}
	// nsubj of "is" must be the "chocolate" of "Baking chocolate".
	var nsubj, pobj *Token
	for i := range s.Tokens {
		tk := &s.Tokens[i]
		if tk.Label == "nsubj" && tk.Head == root {
			nsubj = tk
		}
		if tk.Label == "pobj" && tk.Lower == "chocolate" {
			pobj = tk
		}
	}
	if nsubj == nil || nsubj.Lower != "chocolate" {
		t.Errorf("nsubj = %+v\n%s", nsubj, s.TreeString())
	}
	if pobj == nil {
		t.Errorf("no pobj chocolate\n%s", s.TreeString())
	} else if !s.IsAncestor(root, pobj.ID) {
		t.Errorf("pobj chocolate not under root\n%s", s.TreeString())
	}

	// Title query: v=//"called", p=v/propn.
	s2 := AnnotateSentence(0, "Cyd Charisse had been called Sid for years.")
	var called, sid *Token
	for i := range s2.Tokens {
		tk := &s2.Tokens[i]
		if tk.Lower == "called" {
			called = tk
		}
		if tk.Text == "Sid" {
			sid = tk
		}
	}
	if called == nil || called.Label != "root" {
		t.Fatalf("called = %+v\n%s", called, s2.TreeString())
	}
	if sid == nil || sid.Head != called.ID {
		t.Errorf("Sid head = %+v, want child of called\n%s", sid, s2.TreeString())
	}
	if sid.POS != PosPropn {
		t.Errorf("Sid POS = %s, want propn", sid.POS)
	}
	// Cyd Charisse is a Person entity.
	if e := s2.EntityAt(0); e == nil || e.Type != EntPerson || e.R != 1 {
		t.Errorf("Cyd Charisse entity = %+v", e)
	}

	// DateOfBirth query: a Person, a Date, and a verb similar to "born".
	s3 := AnnotateSentence(0, "The couple had a daughter Vera Alys born in 1911.")
	var born *Token
	haveDate, havePerson := false, false
	for i := range s3.Tokens {
		if s3.Tokens[i].Lower == "born" {
			born = &s3.Tokens[i]
		}
	}
	for _, e := range s3.Entities {
		if e.Type == EntDate {
			haveDate = true
		}
		if e.Type == EntPerson {
			havePerson = true
		}
	}
	if born == nil || born.POS != PosVerb {
		t.Errorf("born = %+v\n%s", born, s3.TreeString())
	}
	if !haveDate || !havePerson {
		t.Errorf("entities = %+v, want Person and Date", s3.Entities)
	}
}

// TestParserWellFormed is a property test: for arbitrary sentences assembled
// from lexicon words, the parser must produce a well-formed single-rooted
// acyclic tree with consistent derived geometry.
func TestParserWellFormed(t *testing.T) {
	vocab := []string{
		"the", "a", "delicious", "coffee", "cafe", "barista", "ate", "serves",
		"and", "or", "in", "at", "very", "Anna", "Portland", "which", "was",
		"great", "espresso", "that", "she", "bought", ",", ".", "is", "type",
		"of", "chocolate", "pie", "also", "to", "visit", "1911", "new",
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(18)
			words := make([]string, n)
			for i := range words {
				words[i] = vocab[r.Intn(len(vocab))]
			}
			vals[0] = reflect.ValueOf(strings.Join(words, " "))
		},
	}
	f := func(text string) bool {
		s := AnnotateSentence(0, text)
		if err := s.Validate(); err != nil {
			t.Logf("text %q: %v", text, err)
			return false
		}
		// Exactly one root label.
		roots := 0
		for i := range s.Tokens {
			if s.Tokens[i].Label == "root" {
				roots++
			}
		}
		return len(s.Tokens) == 0 || roots == 1
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestParserDeterministic: annotating the same text twice yields identical
// trees.
func TestParserDeterministic(t *testing.T) {
	texts := []string{
		"I ate a chocolate ice cream, which was delicious, and also ate a pie.",
		"Anna ate some delicious cheesecake that she bought at a grocery store.",
		"The cafe serves great espresso and employs three baristas.",
	}
	for _, txt := range texts {
		a := AnnotateSentence(0, txt)
		b := AnnotateSentence(0, txt)
		if a.TreeString() != b.TreeString() {
			t.Errorf("nondeterministic parse for %q", txt)
		}
	}
}

func TestDepthAndSubtreeConsistency(t *testing.T) {
	s := AnnotateSentence(0, "The new cafe on Mission St. has the best cup of espresso.")
	if err := s.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, s.TreeString())
	}
	fmtOK := fmt.Sprintf("%d", len(s.Tokens))
	if fmtOK == "" {
		t.Fatal("unreachable")
	}
}
