package nlp

// Label classification for the KOKO language. A path step's label can be a
// parse label, a POS tag, an entity type, or a word (paper §2.1: "each axis
// is followed by a label (a parse label, POS tag, token, wildcard, or an
// already defined node variable)"). Query analysis needs to tell these
// apart to decompose paths (§4.2.1).

var parseLabelSet = newSet(
	LblRoot, LblNsubj, LblDobj, LblIobj, LblDet, LblNN, LblAmod,
	LblAdvmod, LblPrep, LblPobj, LblP, "punct", LblCC, LblConj, LblRcmod,
	LblAcomp, LblXcomp, LblAux, LblAttr, LblNum, LblPoss, LblNeg, LblDep,
)

var posTagSet = newSet(
	PosNoun, PosVerb, PosAdj, PosAdv, PosPron, PosPropn, PosDet, PosAdp,
	PosConj, PosNum, PosPrt, PosPunct, PosX, "nn", "nns", "prep",
)

var entityTypeSet = newSet(
	"entity", "person", "location", "gpe", "organization", "org", "date",
	"other",
)

// IsParseLabel reports whether s names a dependency parse label.
func IsParseLabel(s string) bool { return parseLabelSet[NormalizeLabel(s)] }

// IsPOSTag reports whether s names a universal POS tag.
// Note "conj" and "num" are both parse labels and POS-ish; parse-label
// reading wins in queries, matching the paper's examples.
func IsPOSTag(s string) bool { return posTagSet[NormalizePOS(s)] }

// IsEntityType reports whether s names an entity type usable in queries.
func IsEntityType(s string) bool {
	return entityTypeSet[NormalizePOS(s)] || entityTypeSet[NormalizeLabel(s)]
}

// CanonicalEntityType maps query-level entity type names to the canonical
// type strings used by the NER ("GPE" → Location).
func CanonicalEntityType(s string) string {
	switch NormalizeLabel(s) {
	case "person":
		return EntPerson
	case "location", "gpe":
		return EntLocation
	case "organization", "org":
		return EntOrg
	case "date":
		return EntDate
	case "other":
		return EntOther
	case "entity":
		return "Entity"
	}
	return s
}
