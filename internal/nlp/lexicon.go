package nlp

// Closed-class and common open-class lexicons for the POS tagger. The lists
// are deliberately generous for the domains the paper's corpora touch (food,
// coffee, biography articles, tweets about sports and venues) so that the
// tagger is reliable over the synthetic corpora and over ordinary English.

var determiners = newSet(
	"a", "an", "the", "this", "that", "these", "those", "some", "any",
	"each", "every", "no", "another", "both", "either", "neither", "all",
	"such", "what", "which", "whose",
)

var pronouns = newSet(
	"i", "you", "he", "she", "it", "we", "they", "me", "him", "her", "us",
	"them", "myself", "yourself", "himself", "herself", "itself",
	"ourselves", "themselves", "mine", "yours", "hers", "ours", "theirs",
	"who", "whom", "whoever", "something", "anything", "nothing",
	"everything", "someone", "anyone", "everyone", "nobody", "somebody",
	"everybody",
)

// Relative pronouns are tagged PRON but get special treatment in parsing.
var relativePronouns = newSet("who", "whom", "which", "that", "whose", "where", "when")

var prepositions = newSet(
	"of", "in", "on", "at", "by", "for", "with", "about", "against",
	"between", "into", "through", "during", "before", "after", "above",
	"below", "to", "from", "up", "down", "over", "under", "near", "since",
	"without", "within", "along", "across", "behind", "beyond", "except",
	"around", "among", "toward", "towards", "upon", "onto", "off", "per",
	"via", "amid", "despite", "inside", "outside", "until", "as",
)

var conjunctions = newSet(
	"and", "or", "but", "nor", "so", "yet", "while", "although", "because",
	"if", "unless", "whereas", "though", "once", "when", "whenever",
)

var auxiliaries = newSet(
	"is", "am", "are", "was", "were", "be", "been", "being",
	"have", "has", "had", "having",
	"do", "does", "did",
	"will", "would", "shall", "should", "can", "could", "may", "might",
	"must", "ought",
)

// copulas is the subset of auxiliaries that can head a predicate
// ("the cake was delicious").
var copulas = newSet("is", "am", "are", "was", "were", "be", "been", "being",
	"seems", "seemed", "looks", "looked", "feels", "felt", "remains", "remained")

var adverbs = newSet(
	"also", "not", "never", "always", "often", "sometimes", "usually",
	"very", "too", "quite", "rather", "really", "just", "still", "already",
	"soon", "now", "then", "here", "there", "today", "tomorrow",
	"yesterday", "recently", "currently", "finally", "again", "almost",
	"even", "only", "perhaps", "maybe", "together", "away", "back", "well",
	"early", "late", "once", "twice", "moreover", "however", "instead",
	"nearby", "downtown", "everywhere", "anywhere", "abroad", "forever",
)

// Common verbs with their inflections, so that the tagger does not depend on
// suffix heuristics for high-frequency cases. Map value is unused; presence
// means "can be a verb".
var verbLexicon = newSet(
	"ate", "eat", "eats", "eating", "eaten",
	"drink", "drinks", "drank", "drinking", "drunk",
	"serve", "serves", "served", "serving",
	"sell", "sells", "sold", "selling",
	"buy", "buys", "bought", "buying",
	"make", "makes", "made", "making",
	"open", "opens", "opened", "opening",
	"close", "closes", "closed", "closing",
	"hire", "hires", "hired", "hiring",
	"employ", "employs", "employed", "employing",
	"brew", "brews", "brewed", "brewing",
	"roast", "roasts", "roasted", "roasting",
	"pour", "pours", "poured", "pouring",
	"visit", "visits", "visited", "visiting",
	"go", "goes", "went", "gone", "going",
	"come", "comes", "came", "coming",
	"see", "sees", "saw", "seen", "seeing",
	"say", "says", "said", "saying",
	"call", "calls", "called", "calling",
	"name", "names", "named", "naming",
	"know", "knows", "knew", "known", "knowing",
	"bear", "bears", "bore", "born", "borne",
	"marry", "marries", "married", "marrying",
	"win", "wins", "won", "winning",
	"lose", "loses", "lost", "losing",
	"play", "plays", "played", "playing",
	"host", "hosts", "hosted", "hosting",
	"beat", "beats", "beating",
	"watch", "watches", "watched", "watching",
	"love", "loves", "loved", "loving",
	"like", "likes", "liked", "liking",
	"enjoy", "enjoys", "enjoyed", "enjoying",
	"feel", "feels", "felt", "feeling",
	"get", "gets", "got", "gotten", "getting",
	"give", "gives", "gave", "given", "giving",
	"take", "takes", "took", "taken", "taking",
	"find", "finds", "found", "finding",
	"move", "moves", "moved", "moving",
	"live", "lives", "lived", "living",
	"work", "works", "worked", "working",
	"write", "writes", "wrote", "written", "writing",
	"direct", "directs", "directed", "directing",
	"produce", "produces", "produced", "producing",
	"prepare", "prepares", "prepared", "preparing",
	"manufacture", "manufactures", "manufactured", "manufacturing",
	"bake", "bakes", "baked", "baking",
	"cook", "cooks", "cooked", "cooking",
	"offer", "offers", "offered", "offering",
	"feature", "features", "featured", "featuring",
	"announce", "announces", "announced", "announcing",
	"launch", "launches", "launched", "launching",
	"found", "founds", "founded", "founding",
	"start", "starts", "started", "starting",
	"run", "runs", "ran", "running",
	"own", "owns", "owned", "owning",
	"tried", "try", "tries", "trying",
	"taste", "tastes", "tasted", "tasting",
	"grind", "grinds", "ground", "grinding",
	"pull", "pulls", "pulled", "pulling",
	"craft", "crafts", "crafted", "crafting",
	"train", "trains", "trained", "training",
	"receive", "receives", "received", "receiving",
	"attend", "attends", "attended", "attending",
	"graduate", "graduates", "graduated", "graduating",
	"die", "dies", "died", "dying",
	"become", "becomes", "became", "becoming",
	"remain", "remains", "remained", "remaining",
	"celebrate", "celebrates", "celebrated", "celebrating",
	"meet", "meets", "met", "meeting",
	"help", "helps", "helped", "helping",
	"spend", "spends", "spent", "spending",
	"finish", "finishes", "finished", "finishing",
	"complete", "completes", "completed", "completing",
	"walk", "walks", "walked", "walking",
	"arrive", "arrives", "arrived", "arriving",
	"defeat", "defeats", "defeated", "defeating",
	"face", "faces", "faced", "facing",
	"sip", "sips", "sipped", "sipping",
	"order", "orders", "ordered", "ordering",
	"recommend", "recommends", "recommended", "recommending",
	"review", "reviews", "reviewed", "reviewing",
	"describe", "describes", "described", "describing",
)

var adjLexicon = newSet(
	"delicious", "salty", "sweet", "bitter", "sour", "tasty", "fresh",
	"great", "good", "best", "better", "bad", "worse", "worst", "new",
	"old", "young", "big", "small", "large", "little", "long", "short",
	"hot", "cold", "warm", "cool", "nice", "fine", "happy", "sad",
	"famous", "popular", "local", "cozy", "bright", "dark", "rich",
	"smooth", "strong", "light", "perfect", "amazing", "wonderful",
	"excellent", "favorite", "friendly", "busy", "quiet", "beautiful",
	"star", "top", "award-winning", "single-origin", "seasonal",
	"specialty", "artisanal", "organic", "iced", "creamy", "crisp",
	"floral", "nutty", "roasty", "velvety", "upcoming", "several",
	"many", "few", "other", "own", "same", "different", "certain",
	"first", "second", "third", "last", "next", "early", "late",
	"american", "french", "italian", "japanese", "asian", "european",
)

var nounLexicon = newSet(
	"cake", "cheesecake", "cheese", "pie", "cream", "ice", "chocolate",
	"peanut", "peanuts", "cookie", "cookies", "bread", "pastry",
	"pastries", "croissant", "croissants", "dessert", "desserts",
	"coffee", "espresso", "cappuccino", "cappuccinos", "macchiato",
	"macchiatos", "latte", "lattes", "mocha", "americano", "cortado",
	"tea", "milk", "sugar", "bean", "beans", "roast", "blend", "brew",
	"cafe", "cafes", "café", "shop", "shops", "store", "stores",
	"roaster", "roasters", "roastery", "barista", "baristas",
	"bar", "bars", "menu", "cup", "cups", "mug", "grinder", "machine",
	"city", "cities", "country", "countries", "town", "village",
	"street", "avenue", "district", "neighborhood", "corner", "block",
	"team", "teams", "game", "games", "match", "season", "league",
	"stadium", "arena", "park", "gym", "field", "court", "pool",
	"airport", "station", "mall", "library", "museum", "theater",
	"school", "college", "university", "hospital", "church", "hotel",
	"restaurant", "restaurants", "bakery", "kitchen", "grocery",
	"man", "woman", "men", "women", "people", "person", "child",
	"children", "friend", "friends", "family", "wife", "husband",
	"daughter", "son", "mother", "father", "brother", "sister",
	"couple", "owner", "owners", "founder", "champion", "championship",
	"writer", "author", "actor", "actress", "singer", "director",
	"player", "coach", "artist", "chef", "engineer", "teacher",
	"year", "years", "month", "months", "week", "weeks", "day", "days",
	"morning", "afternoon", "evening", "night", "time", "moment",
	"type", "types", "kind", "kinds", "part", "parts", "piece",
	"name", "names", "title", "titles", "word", "words", "place",
	"places", "thing", "things", "way", "ways", "world", "life",
	"home", "house", "room", "door", "window", "wall", "table",
	"chair", "counter", "space", "spot", "location", "area",
	"article", "articles", "blog", "post", "posts", "review",
	"reviews", "story", "stories", "news", "fan", "fans", "crowd",
	"festival", "fest", "event", "events", "contest", "cup",
	"pour-over", "aeropress", "food", "foods", "drink", "drinks",
	"flavor", "flavors", "aroma", "origin", "farm", "harvest",
	"birthday", "wedding", "anniversary", "vacation", "trip",
	"job", "work", "career", "award", "awards", "prize", "medal",
	"victory", "win", "goal", "score", "point", "points",
)

// First names for the Person gazetteer.
var firstNames = newSet(
	"anna", "alice", "amy", "alan", "albert", "alys", "andrew", "ben",
	"bella", "bob", "brian", "carol", "carl", "clara", "cyd", "daniel",
	"david", "diana", "edward", "ella", "emma", "emily", "eric", "frank",
	"george", "grace", "harry", "helen", "henry", "ida", "jack", "james",
	"jane", "jason", "john", "julia", "karen", "kate", "kevin", "laura",
	"leo", "lily", "linda", "lucas", "lucy", "maria", "mark", "mary",
	"matthew", "michael", "nancy", "nina", "oliver", "oscar", "paul",
	"peter", "rachel", "robert", "rosa", "ruth", "sam", "sarah", "sid",
	"simon", "sofia", "stella", "steven", "susan", "thomas", "tom",
	"vera", "victor", "walter", "wendy", "william", "zoe",
)

var surnames = newSet(
	"adams", "baker", "brown", "carter", "charisse", "clark", "davis",
	"evans", "fisher", "garcia", "gray", "green", "hall", "harris",
	"hill", "hughes", "jackson", "johnson", "jones", "kelly", "king",
	"lee", "lewis", "lopez", "martin", "miller", "moore", "morgan",
	"murphy", "nelson", "parker", "perez", "phillips", "reed", "rivera",
	"roberts", "robinson", "rogers", "scott", "smith", "stewart",
	"taylor", "thomas", "thompson", "turner", "walker", "ward", "watson",
	"white", "williams", "wilson", "wood", "wright", "young",
)

// Place names for the Location/GPE gazetteer.
var placeNames = newSet(
	"paris", "london", "tokyo", "beijing", "china", "japan", "france",
	"italy", "spain", "germany", "england", "america", "asia", "europe",
	"portland", "seattle", "oakland", "chicago", "boston", "austin",
	"denver", "brooklyn", "manhattan", "kyoto", "osaka", "seoul",
	"melbourne", "sydney", "vancouver", "toronto", "berlin", "rome",
	"madrid", "lisbon", "vienna", "oslo", "helsinki", "dublin",
	"amsterdam", "copenhagen", "stockholm", "milan", "naples",
	"shanghai", "taipei", "bangkok", "hanoi", "mumbai", "delhi",
	"cairo", "nairobi", "lagos", "lima", "bogota", "santiago",
	"havana", "quito", "lyon", "nice", "geneva", "zurich", "munich",
	"hamburg", "prague", "warsaw", "budapest", "athens", "istanbul",
)

var countryNames = newSet(
	"china", "japan", "france", "italy", "spain", "germany", "england",
	"america", "brazil", "mexico", "canada", "australia", "india",
	"kenya", "ethiopia", "colombia", "guatemala", "peru", "vietnam",
	"indonesia", "korea", "norway", "sweden", "finland", "denmark",
	"ireland", "portugal", "greece", "turkey", "egypt", "morocco",
)

var monthNames = newSet(
	"january", "february", "march", "april", "may", "june", "july",
	"august", "september", "october", "november", "december",
)

// Organization suffixes for the Organization gazetteer.
var orgSuffixes = newSet(
	"inc", "inc.", "corp", "corp.", "ltd", "ltd.", "llc", "co", "co.",
	"company", "group", "magazine", "university", "college", "institute",
	"association", "club", "united", "fc",
)

func newSet(words ...string) map[string]bool {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}
