package nlp

import "testing"

func entityByText(s *Sentence, text string) *Entity {
	for i := range s.Entities {
		if s.Entities[i].Text == text {
			return &s.Entities[i]
		}
	}
	return nil
}

func TestDatePatterns(t *testing.T) {
	cases := []struct {
		sentence string
		wantText string
	}{
		{"He was married on 1 December 1900 in London.", "1 December 1900"},
		{"She arrived in December 1900.", "December 1900"},
		{"The building opened in 1911.", "1911"},
		{"They met on December 1, 1900 at the station.", "December 1, 1900"},
	}
	for _, tc := range cases {
		s := AnnotateSentence(0, tc.sentence)
		e := entityByText(&s, tc.wantText)
		if e == nil || e.Type != EntDate {
			t.Errorf("%q: date entity %q not found (entities: %v)", tc.sentence, tc.wantText, s.Entities)
		}
	}
	// Short numbers are not dates.
	s := AnnotateSentence(0, "She bought 12 cookies.")
	for _, e := range s.Entities {
		if e.Type == EntDate {
			t.Errorf("spurious date entity %q", e.Text)
		}
	}
}

func TestEntityTypes(t *testing.T) {
	cases := []struct {
		sentence string
		text     string
		typ      string
	}{
		{"Anna Smith visited the museum.", "Anna Smith", EntPerson},
		{"They flew to Tokyo last week.", "Tokyo", EntLocation},
		{"He works for Acme Inc. downtown.", "Acme Inc", EntOrg},
		{"We toured the Riverside Stadium today.", "Riverside Stadium", EntLocation},
		{"Blue Fox Coffee opened downtown.", "Blue Fox Coffee", EntOther},
	}
	for _, tc := range cases {
		s := AnnotateSentence(0, tc.sentence)
		e := entityByText(&s, tc.text)
		if e == nil {
			t.Errorf("%q: entity %q not found (entities: %v)", tc.sentence, tc.text, s.Entities)
			continue
		}
		if e.Type != tc.typ {
			t.Errorf("%q: entity %q typed %s, want %s", tc.sentence, tc.text, e.Type, tc.typ)
		}
	}
}

func TestGPEAlias(t *testing.T) {
	cases := []struct {
		want, have string
		ok         bool
	}{
		{"Entity", EntPerson, true},
		{"", EntOther, true},
		{"GPE", EntLocation, true},
		{"GPE", EntPerson, false},
		{"Person", EntPerson, true},
		{"Person", EntLocation, false},
	}
	for _, tc := range cases {
		if got := GPEAlias(tc.want, tc.have); got != tc.ok {
			t.Errorf("GPEAlias(%q, %q) = %v, want %v", tc.want, tc.have, got, tc.ok)
		}
	}
}

func TestEntitiesNeverOverlap(t *testing.T) {
	texts := []string{
		"Anna Smith bought chocolate ice cream at the grocery store in Tokyo on 1 December 1900.",
		"Blue Fox Coffee hired Cyd Charisse from Portland in 1911.",
	}
	for _, txt := range texts {
		s := AnnotateSentence(0, txt)
		covered := map[int]int{}
		for ei, e := range s.Entities {
			for i := e.L; i <= e.R; i++ {
				if prev, ok := covered[i]; ok {
					t.Errorf("%q: token %d in entities %d and %d", txt, i, prev, ei)
				}
				covered[i] = ei
			}
		}
	}
}
