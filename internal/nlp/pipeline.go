package nlp

// Pipeline is the document annotator: it mirrors the paper's preprocessing
// step ("we first process the document with a natural language parser"),
// transforming raw text into sentences of annotated tokens.
type Pipeline struct{}

// NewPipeline returns the default deterministic pipeline.
func NewPipeline() *Pipeline { return &Pipeline{} }

// Annotate parses a whole document. Sentence IDs are document-local,
// starting at firstSID, so a corpus can assign corpus-global ids.
func (p *Pipeline) Annotate(docID int, name, text string, firstSID int) *Document {
	raw := SplitSentences(text)
	doc := &Document{ID: docID, Name: name, Sentences: make([]Sentence, 0, len(raw))}
	for i, r := range raw {
		s := AnnotateSentence(firstSID+i, r)
		if len(s.Tokens) == 0 {
			continue
		}
		doc.Sentences = append(doc.Sentences, s)
	}
	return doc
}

// AnnotateText is a convenience wrapper for single documents starting at
// sentence id 0.
func AnnotateText(text string) *Document {
	return NewPipeline().Annotate(0, "input", text, 0)
}
