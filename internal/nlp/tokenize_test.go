package nlp

import (
	"reflect"
	"testing"
)

func TestSplitSentences(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{
			"I ate a pie. Anna ate cheesecake.",
			[]string{"I ate a pie.", "Anna ate cheesecake."},
		},
		{
			"Dr. Smith visited Mr. Jones. They drank coffee.",
			[]string{"Dr. Smith visited Mr. Jones.", "They drank coffee."},
		},
		{
			"Was it good? Yes! Very good.",
			[]string{"Was it good?", "Yes!", "Very good."},
		},
		{
			"The cafe opened in 1999. It serves 3.5 million cups.",
			[]string{"The cafe opened in 1999.", "It serves 3.5 million cups."},
		},
		{
			"First paragraph\n\nSecond paragraph.",
			[]string{"First paragraph", "Second paragraph."},
		},
		{"", nil},
		{"   \n  ", nil},
	}
	for _, tc := range tests {
		got := SplitSentences(tc.in)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitSentences(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{
			"I ate a pie.",
			[]string{"I", "ate", "a", "pie", "."},
		},
		{
			"delicious, salty pie",
			[]string{"delicious", ",", "salty", "pie"},
		},
		{
			"pour-over coffee at Odin's place",
			[]string{"pour-over", "coffee", "at", "Odin's", "place"},
		},
		{
			"open at 7 a.m. daily",
			[]string{"open", "at", "7", "a.m", ".", "daily"},
		},
		{
			"(great espresso)",
			[]string{"(", "great", "espresso", ")"},
		},
		{"", nil},
	}
	for _, tc := range tests {
		got := Tokenize(tc.in)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTagPOSBasics(t *testing.T) {
	toks := Tokenize("I ate a chocolate ice cream, which was delicious, and also ate a pie.")
	tags := TagPOS(toks)
	want := []string{
		PosPron, PosVerb, PosDet, PosNoun, PosNoun, PosNoun, PosPunct,
		PosPron, PosVerb, PosAdj, PosPunct, PosConj, PosAdv, PosVerb,
		PosDet, PosNoun, PosPunct,
	}
	if len(tags) != len(want) {
		t.Fatalf("got %d tags, want %d (%v)", len(tags), len(want), tags)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Errorf("token %q: tag %s, want %s", toks[i], tags[i], want[i])
		}
	}
}

func TestTagPOSHeuristics(t *testing.T) {
	cases := []struct {
		sentence string
		idx      int
		want     string
	}{
		{"She quickly ran home", 1, PosAdv},    // -ly
		{"a wonderful evening", 1, PosAdj},     // -ful
		{"the organization grew", 1, PosNoun},  // -tion
		{"Portland is lovely", 0, PosPropn},    // gazetteer propn
		{"the roast was smooth", 1, PosNoun},   // verb form after det
		{"3.5 million cups", 0, PosNum},        // number with period
		{"meet at 1900 hours", 2, PosNum},      // digits
		{"that cafe is cozy", 0, PosDet},       // that+noun = det
		{"the pie that she baked", 2, PosPron}, // relative that
		{"Espresso is life", 0, PosNoun},       // sentence-initial known noun
	}
	for _, tc := range cases {
		toks := Tokenize(tc.sentence)
		tags := TagPOS(toks)
		if tags[tc.idx] != tc.want {
			t.Errorf("%q token %d (%s): tag %s, want %s", tc.sentence, tc.idx, toks[tc.idx], tags[tc.idx], tc.want)
		}
	}
}

func TestNormalizeLabelAndPOS(t *testing.T) {
	if NormalizeLabel("PUNCT") != "p" || NormalizeLabel("p") != "p" {
		t.Error("punct alias broken")
	}
	if NormalizeLabel(" Nsubj ") != "nsubj" {
		t.Error("trim/case broken")
	}
	if NormalizePOS("VERB") != "verb" || NormalizePOS("NN") != "noun" {
		t.Error("POS normalize broken")
	}
}

func TestSentenceTextDetokenization(t *testing.T) {
	s := AnnotateSentence(0, "Anna ate some delicious cheesecake, honestly.")
	got := s.String()
	want := "Anna ate some delicious cheesecake, honestly."
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestPipelineMultiSentence(t *testing.T) {
	doc := AnnotateText("I ate a pie. Anna ate cheesecake at a grocery store.")
	if len(doc.Sentences) != 2 {
		t.Fatalf("got %d sentences, want 2", len(doc.Sentences))
	}
	if doc.Sentences[0].ID != 0 || doc.Sentences[1].ID != 1 {
		t.Errorf("sentence ids = %d,%d", doc.Sentences[0].ID, doc.Sentences[1].ID)
	}
	for _, s := range doc.Sentences {
		if err := s.Validate(); err != nil {
			t.Errorf("sentence %d: %v", s.ID, err)
		}
	}
}
