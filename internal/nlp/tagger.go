package nlp

import "strings"

// TagPOS assigns a universal POS tag to each token of a tokenized sentence.
// The tagger is a deterministic cascade: closed-class lexicons first, then
// open-class lexicons, then orthographic and suffix heuristics, finally a
// context pass that repairs common ambiguities (verb/noun after determiner,
// sentence-initial capitalization).
func TagPOS(tokens []string) []string {
	n := len(tokens)
	tags := make([]string, n)
	for i, tok := range tokens {
		tags[i] = tagOne(tok, i == 0)
	}
	// Context repairs.
	for i := 0; i < n; i++ {
		lower := strings.ToLower(tokens[i])
		switch {
		case (lower == "which" || lower == "whose" || lower == "whom") && i+1 < n &&
			(tags[i+1] == PosVerb || tags[i+1] == PosPron):
			// Relative "which was …", "whose owner …".
			tags[i] = PosPron
		case tags[i] == PosVerb && strings.HasSuffix(lower, "ing") && i+1 < n &&
			(tags[i+1] == PosNoun || tags[i+1] == PosPropn):
			// Gerund modifier: "baking chocolate", "roasting equipment".
			tags[i] = PosAdj
		case tags[i] == PosVerb && !auxiliaries[lower] && i > 0 &&
			(tags[i-1] == PosDet || tags[i-1] == PosAdj || tags[i-1] == PosNum):
			// "a roast", "the blend": verb-form after determiner is a noun,
			// unless it is a gerund acting verbally — keep it simple.
			if !strings.HasSuffix(lower, "ing") {
				tags[i] = PosNoun
			}
		case (tags[i] == PosNoun || tags[i] == PosAdj) && isCapitalized(tokens[i]) &&
			i+1 < n && tags[i+1] == PosPropn:
			// Sentence-initial known word starting a proper name:
			// "Cafe Benz serves …".
			tags[i] = PosPropn
		case tags[i] == PosNoun && verbLexicon[lower] && i > 0 && tags[i-1] == PosPron:
			// "she works": pronoun + ambiguous word is a verb.
			tags[i] = PosVerb
		case lower == "to" && i+1 < n && verbLexicon[strings.ToLower(tokens[i+1])]:
			tags[i] = PosPrt // infinitival "to"
		case lower == "that":
			// "that" is DET before a noun ("that cafe"), PRON when starting
			// a relative clause or otherwise.
			if i+1 < n && (tags[i+1] == PosNoun || tags[i+1] == PosAdj) &&
				(i == 0 || (tags[i-1] != PosNoun && tags[i-1] != PosPropn)) {
				tags[i] = PosDet
			} else {
				tags[i] = PosPron
			}
		}
	}
	return tags
}

func tagOne(tok string, sentenceInitial bool) string {
	if isPunct(tok) {
		return PosPunct
	}
	lower := strings.ToLower(tok)
	if isAllDigits(tok) || (hasDigit(tok) && strings.ContainsAny(tok, ".,:-")) {
		return PosNum
	}
	switch {
	case determiners[lower]:
		return PosDet
	case pronouns[lower]:
		return PosPron
	case auxiliaries[lower]:
		return PosVerb
	case prepositions[lower]:
		return PosAdp
	case conjunctions[lower]:
		return PosConj
	case adverbs[lower]:
		return PosAdv
	}
	// Proper noun: any capitalized word mid-sentence (names routinely embed
	// common nouns: "Gravity Beans", "Blue Fox Cafe"); sentence-initially
	// only gazetteer names and out-of-lexicon words.
	if isCapitalized(tok) {
		if !sentenceInitial {
			return PosPropn
		}
		known := verbLexicon[lower] || nounLexicon[lower] || adjLexicon[lower] ||
			adverbs[lower]
		if firstNames[lower] || surnames[lower] || placeNames[lower] ||
			monthNames[lower] || !known {
			return PosPropn
		}
	}
	switch {
	case verbLexicon[lower]:
		return PosVerb
	case adjLexicon[lower]:
		return PosAdj
	case nounLexicon[lower]:
		return PosNoun
	}
	// Suffix heuristics for out-of-lexicon words.
	switch {
	case strings.HasSuffix(lower, "ly"):
		return PosAdv
	case strings.HasSuffix(lower, "ous"), strings.HasSuffix(lower, "ful"),
		strings.HasSuffix(lower, "ive"), strings.HasSuffix(lower, "able"),
		strings.HasSuffix(lower, "ible"), strings.HasSuffix(lower, "ish"),
		strings.HasSuffix(lower, "less"), strings.HasSuffix(lower, "est"):
		return PosAdj
	case strings.HasSuffix(lower, "ize"), strings.HasSuffix(lower, "izes"),
		strings.HasSuffix(lower, "ized"), strings.HasSuffix(lower, "ify"),
		strings.HasSuffix(lower, "ifies"), strings.HasSuffix(lower, "ified"):
		return PosVerb
	case strings.HasSuffix(lower, "tion"), strings.HasSuffix(lower, "sion"),
		strings.HasSuffix(lower, "ness"), strings.HasSuffix(lower, "ment"),
		strings.HasSuffix(lower, "ity"), strings.HasSuffix(lower, "ship"),
		strings.HasSuffix(lower, "ism"), strings.HasSuffix(lower, "ery"):
		return PosNoun
	case strings.HasSuffix(lower, "ing"), strings.HasSuffix(lower, "ed"):
		return PosVerb
	}
	return PosNoun
}
