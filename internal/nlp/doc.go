// Package nlp is the natural-language substrate of the KOKO reproduction.
//
// The KOKO paper (Wang et al., VLDB 2018) preprocesses every input document
// with an external dependency parser (spaCy or the Google Cloud NL API) and
// consumes four annotation layers per token: the surface form, a universal
// POS tag, a dependency parse label, and a reference to the head token, plus
// entity spans with coarse types. This package provides a deterministic,
// from-scratch replacement for that pipeline:
//
//   - a sentence splitter and tokenizer,
//   - a lexicon- and suffix-driven POS tagger over the universal tagset
//     (Petrov, Das, McDonald 2012),
//   - a rule-based dependency parser producing the parse-label inventory the
//     paper's figures use (root, nsubj, dobj, det, nn, amod, rcmod, acomp,
//     prep, pobj, cc, conj, advmod, aux, attr, num, p, ...),
//   - a gazetteer-based named-entity recognizer with the entity types that
//     appear in the paper's queries (Person, Location, Organization, Date,
//     Other).
//
// The parser is intentionally deterministic: the same input always yields the
// same tree, which makes the paper's worked examples (Figure 1, Example 3.1)
// pin-downable in unit tests and makes every experiment in the benchmark
// harness reproducible.
package nlp
