package nlp

import (
	"fmt"
	"strings"
)

// Universal POS tags (lowercase canonical forms). The KOKO language matches
// tags case-insensitively, so "VERB" in a figure and "verb" in a query both
// normalize to these constants.
const (
	PosNoun  = "noun"
	PosVerb  = "verb"
	PosAdj   = "adj"
	PosAdv   = "adv"
	PosPron  = "pron"
	PosPropn = "propn"
	PosDet   = "det"
	PosAdp   = "adp" // adpositions (prepositions)
	PosConj  = "conj"
	PosNum   = "num"
	PosPrt   = "prt" // particles ("to", "up" in phrasal verbs)
	PosPunct = "punct"
	PosX     = "x" // everything else
)

// Dependency parse labels (lowercase canonical forms). The inventory follows
// the paper's Figure 1 and Example 3.1. Punctuation is canonically "p"
// (Figure 1); NormalizeLabel maps the common alias "punct" onto it.
const (
	LblRoot   = "root"
	LblNsubj  = "nsubj"
	LblDobj   = "dobj"
	LblIobj   = "iobj"
	LblDet    = "det"
	LblNN     = "nn" // noun compound modifier
	LblAmod   = "amod"
	LblAdvmod = "advmod"
	LblPrep   = "prep"
	LblPobj   = "pobj"
	LblP      = "p" // punctuation
	LblCC     = "cc"
	LblConj   = "conj"
	LblRcmod  = "rcmod"
	LblAcomp  = "acomp"
	LblXcomp  = "xcomp"
	LblAux    = "aux"
	LblAttr   = "attr"
	LblNum    = "num"
	LblPoss   = "poss"
	LblNeg    = "neg"
	LblDep    = "dep" // fallback attachment
)

// Entity types used throughout the reproduction. They mirror the types the
// paper's queries mention: Entity (any), Person, GPE/Location, Organization,
// Date, and Other.
const (
	EntPerson   = "Person"
	EntLocation = "Location"
	EntOrg      = "Organization"
	EntDate     = "Date"
	EntOther    = "Other"
)

// NormalizeLabel maps parse-label aliases to canonical form. The paper itself
// is inconsistent ("p" in Figure 1, "punct" in the synthetic benchmark
// description); we accept both everywhere. The lowercase-ASCII fast path
// keeps this allocation-free on the hot lookup paths.
func NormalizeLabel(s string) string {
	if s == "punct" {
		return LblP
	}
	if isLowerASCII(s) {
		return s
	}
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "punct" {
		return LblP
	}
	return s
}

func isLowerASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '!' || c > '~' || (c >= 'A' && c <= 'Z') {
			return false
		}
	}
	return true
}

// NormalizePOS maps POS-tag aliases to canonical form.
func NormalizePOS(s string) string {
	if !isLowerASCII(s) {
		s = strings.ToLower(strings.TrimSpace(s))
	}
	switch s {
	case "nn", "nns":
		return PosNoun
	case "prop", "pnoun":
		return PosPropn
	case "prep", "in":
		return PosAdp
	case ".", ",":
		return PosPunct
	}
	return s
}

// Token is a single token of a sentence together with every annotation layer
// the KOKO engine consumes.
type Token struct {
	ID    int    // token id within the sentence (0-based)
	Text  string // surface form
	Lower string // lowercase surface form
	POS   string // universal POS tag (canonical lowercase)
	Label string // dependency parse label (canonical lowercase)
	Head  int    // token id of the head; -1 for the root token

	// Derived tree geometry, filled in by Sentence.computeDerived. These are
	// exactly the quintuple components the paper's indices store: the first
	// (SubL) and last (SubR) token id of the subtree rooted at this token and
	// the depth of the token in the dependency tree (root has depth 0).
	Depth int
	SubL  int
	SubR  int

	EntityID int // index into Sentence.Entities, or -1
}

// Entity is a typed entity mention: a token span [L,R] (inclusive) within one
// sentence.
type Entity struct {
	Type string
	L, R int
	Text string
}

// Sentence is a parsed sentence: tokens with annotations, the dependency tree
// encoded in Token.Head, and recognized entity spans.
type Sentence struct {
	ID       int
	Tokens   []Token
	Entities []Entity

	children [][]int // adjacency list, built by computeDerived
	rootID   int
}

// Document is a parsed document: an ordered list of sentences. Sentence IDs
// are corpus-global when a Corpus assembles documents, document-local here.
type Document struct {
	ID        int
	Name      string
	Sentences []Sentence
}

// Root returns the id of the root token (-1 if the sentence is empty).
func (s *Sentence) Root() int { return s.rootID }

// Children returns the ids of the dependents of token id, in surface order.
func (s *Sentence) Children(id int) []int {
	if id < 0 || id >= len(s.children) {
		return nil
	}
	return s.children[id]
}

// Text reconstructs a detokenized form of the span [l,r] (inclusive).
// Punctuation attaches to the preceding token without a space.
func (s *Sentence) Text(l, r int) string {
	if l < 0 {
		l = 0
	}
	if r >= len(s.Tokens) {
		r = len(s.Tokens) - 1
	}
	var b strings.Builder
	for i := l; i <= r; i++ {
		t := &s.Tokens[i]
		if i > l && t.POS != PosPunct {
			b.WriteByte(' ')
		}
		b.WriteString(t.Text)
	}
	return b.String()
}

// String renders the whole sentence.
func (s *Sentence) String() string {
	if len(s.Tokens) == 0 {
		return ""
	}
	return s.Text(0, len(s.Tokens)-1)
}

// EntityAt returns the entity covering token id, or nil.
func (s *Sentence) EntityAt(id int) *Entity {
	if id < 0 || id >= len(s.Tokens) {
		return nil
	}
	e := s.Tokens[id].EntityID
	if e < 0 {
		return nil
	}
	return &s.Entities[e]
}

// RecomputeDerived rebuilds the derived tree geometry (Depth, SubL, SubR,
// adjacency, root) from the Head assignments. Callers that deserialize or
// mutate heads must invoke it before using the geometry.
func (s *Sentence) RecomputeDerived() { s.computeDerived() }

// computeDerived fills Depth, SubL, SubR, the adjacency list, and rootID from
// the Head assignments. It must be called whenever heads change. The
// traversal is iterative so that pathological (deep) trees cannot overflow
// the stack.
func (s *Sentence) computeDerived() {
	n := len(s.Tokens)
	s.children = make([][]int, n)
	s.rootID = -1
	for i := range s.Tokens {
		h := s.Tokens[i].Head
		if h < 0 || h >= n || h == i {
			s.Tokens[i].Head = -1
			if s.rootID == -1 {
				s.rootID = i
			} else {
				// Multiple roots should not happen; reattach to the first.
				s.Tokens[i].Head = s.rootID
				s.children[s.rootID] = append(s.children[s.rootID], i)
			}
			continue
		}
		s.children[h] = append(s.children[h], i)
	}
	if s.rootID == -1 && n > 0 {
		// Cycle with no root: break it at token 0.
		s.Tokens[0].Head = -1
		s.rootID = 0
		s.children = make([][]int, n)
		for i := 1; i < n; i++ {
			h := s.Tokens[i].Head
			if h >= 0 && h < n && h != i {
				s.children[h] = append(s.children[h], i)
			}
		}
	}
	if n == 0 {
		return
	}
	// Depth via BFS from the root; unreachable tokens (cycles) get
	// reattached to the root.
	for i := range s.Tokens {
		s.Tokens[i].Depth = -1
	}
	queue := []int{s.rootID}
	s.Tokens[s.rootID].Depth = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, c := range s.children[u] {
			if s.Tokens[c].Depth == -1 {
				s.Tokens[c].Depth = s.Tokens[u].Depth + 1
				queue = append(queue, c)
			}
		}
	}
	changed := false
	for i := range s.Tokens {
		if s.Tokens[i].Depth == -1 {
			s.Tokens[i].Head = s.rootID
			s.Tokens[i].Depth = 1
			changed = true
		}
	}
	if changed {
		s.children = make([][]int, n)
		for i := range s.Tokens {
			if h := s.Tokens[i].Head; h >= 0 {
				s.children[h] = append(s.children[h], i)
			}
		}
	}
	// Subtree intervals via post-order accumulation. Process tokens in
	// decreasing depth so children are final before parents.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Counting sort by depth, deepest first.
	maxd := 0
	for i := range s.Tokens {
		if s.Tokens[i].Depth > maxd {
			maxd = s.Tokens[i].Depth
		}
	}
	buckets := make([][]int, maxd+1)
	for i := range s.Tokens {
		buckets[s.Tokens[i].Depth] = append(buckets[s.Tokens[i].Depth], i)
	}
	for i := range s.Tokens {
		s.Tokens[i].SubL = i
		s.Tokens[i].SubR = i
	}
	for d := maxd; d >= 1; d-- {
		for _, c := range buckets[d] {
			h := s.Tokens[c].Head
			if h < 0 {
				continue
			}
			if s.Tokens[c].SubL < s.Tokens[h].SubL {
				s.Tokens[h].SubL = s.Tokens[c].SubL
			}
			if s.Tokens[c].SubR > s.Tokens[h].SubR {
				s.Tokens[h].SubR = s.Tokens[c].SubR
			}
		}
	}
}

// IsAncestor reports whether token a is a (strict) ancestor of token d in the
// dependency tree.
func (s *Sentence) IsAncestor(a, d int) bool {
	if a == d {
		return false
	}
	for h := s.Tokens[d].Head; h >= 0; h = s.Tokens[h].Head {
		if h == a {
			return true
		}
	}
	return false
}

// PathFromRoot returns the token ids on the path root..id, inclusive.
func (s *Sentence) PathFromRoot(id int) []int {
	var rev []int
	for t := id; t >= 0; t = s.Tokens[t].Head {
		rev = append(rev, t)
	}
	out := make([]int, len(rev))
	for i, t := range rev {
		out[len(rev)-1-i] = t
	}
	return out
}

// TreeString renders the dependency tree for debugging and golden tests.
func (s *Sentence) TreeString() string {
	var b strings.Builder
	var rec func(id int, indent string)
	rec = func(id int, indent string) {
		t := &s.Tokens[id]
		fmt.Fprintf(&b, "%s%s(%d) [%s/%s]\n", indent, t.Text, t.ID, t.Label, t.POS)
		for _, c := range s.children[id] {
			rec(c, indent+"  ")
		}
	}
	if s.rootID >= 0 {
		rec(s.rootID, "")
	}
	return b.String()
}

// Validate checks structural invariants of the sentence: a single root,
// acyclic heads, derived fields consistent with a naïve recomputation. It is
// used by property tests and returns a descriptive error on violation.
func (s *Sentence) Validate() error {
	n := len(s.Tokens)
	if n == 0 {
		return nil
	}
	roots := 0
	for i := range s.Tokens {
		t := &s.Tokens[i]
		if t.ID != i {
			return fmt.Errorf("token %d has ID %d", i, t.ID)
		}
		if t.Head == -1 {
			roots++
		} else if t.Head < 0 || t.Head >= n {
			return fmt.Errorf("token %d has out-of-range head %d", i, t.Head)
		}
	}
	if roots != 1 {
		return fmt.Errorf("sentence has %d roots, want 1", roots)
	}
	for i := range s.Tokens {
		seen := map[int]bool{}
		for h := i; h >= 0; h = s.Tokens[h].Head {
			if seen[h] {
				return fmt.Errorf("cycle through token %d", i)
			}
			seen[h] = true
		}
	}
	// Recompute depth/subtree naïvely and compare.
	for i := range s.Tokens {
		d := 0
		for h := s.Tokens[i].Head; h >= 0; h = s.Tokens[h].Head {
			d++
		}
		if d != s.Tokens[i].Depth {
			return fmt.Errorf("token %d depth %d, want %d", i, s.Tokens[i].Depth, d)
		}
		l, r := i, i
		for j := range s.Tokens {
			if j == i || s.IsAncestor(i, j) {
				if j < l {
					l = j
				}
				if j > r {
					r = j
				}
			}
		}
		if l != s.Tokens[i].SubL || r != s.Tokens[i].SubR {
			return fmt.Errorf("token %d subtree [%d,%d], want [%d,%d]",
				i, s.Tokens[i].SubL, s.Tokens[i].SubR, l, r)
		}
	}
	return nil
}
