package index

import (
	"fmt"

	"repro/internal/store"
)

// Save materializes the multi-index into db using the paper's §6.2.1
// schemas:
//
//	W(word, x, y, u, v, d, plid, posid)   with a B-tree on word
//	E(entity, etype, x, u, v)             with a B-tree on entity
//	PL/POS(id, label, depth, aid, alabel, adepth)   — closure tables
//
// The closure tables contain one row per (node, ancestor-or-self) pair,
// exactly the Closure Table representation the paper cites [25].
func (ix *Index) Save(db *store.DB) error {
	if ix.src != nil {
		return fmt.Errorf("index: block-backed index cannot be saved row-wise; rebuild from the corpus first")
	}
	w := db.Create("W",
		store.Column{Name: "word", Type: store.ColString},
		store.Column{Name: "x", Type: store.ColInt},
		store.Column{Name: "y", Type: store.ColInt},
		store.Column{Name: "u", Type: store.ColInt},
		store.Column{Name: "v", Type: store.ColInt},
		store.Column{Name: "d", Type: store.ColInt},
		store.Column{Name: "plid", Type: store.ColInt},
		store.Column{Name: "posid", Type: store.ColInt},
	)
	if err := w.CreateIndex("by_word", "word"); err != nil {
		return err
	}
	for word, ps := range ix.Word {
		for _, p := range ps {
			w.MustInsert(
				store.StrVal(word),
				store.IntVal(int64(p.Sid)), store.IntVal(int64(p.Tid)),
				store.IntVal(int64(p.U)), store.IntVal(int64(p.V)), store.IntVal(int64(p.D)),
				store.IntVal(int64(ix.PLID(p.Sid, p.Tid))), store.IntVal(int64(ix.POSID(p.Sid, p.Tid))),
			)
		}
	}
	e := db.Create("E",
		store.Column{Name: "entity", Type: store.ColString},
		store.Column{Name: "etype", Type: store.ColString},
		store.Column{Name: "x", Type: store.ColInt},
		store.Column{Name: "u", Type: store.ColInt},
		store.Column{Name: "v", Type: store.ColInt},
	)
	if err := e.CreateIndex("by_entity", "entity"); err != nil {
		return err
	}
	for text, eps := range ix.Entity {
		for _, ep := range eps {
			e.MustInsert(
				store.StrVal(text), store.StrVal(ep.Type),
				store.IntVal(int64(ep.Sid)), store.IntVal(int64(ep.U)), store.IntVal(int64(ep.V)),
			)
		}
	}
	if err := saveClosure(db, "PL", ix.PL); err != nil {
		return err
	}
	return saveClosure(db, "POS", ix.POS)
}

func saveClosure(db *store.DB, name string, h *Hierarchy) error {
	t := db.Create(name,
		store.Column{Name: "id", Type: store.ColInt},
		store.Column{Name: "label", Type: store.ColString},
		store.Column{Name: "depth", Type: store.ColInt},
		store.Column{Name: "aid", Type: store.ColInt},
		store.Column{Name: "alabel", Type: store.ColString},
		store.Column{Name: "adepth", Type: store.ColInt},
	)
	if err := t.CreateIndex("by_label", "label"); err != nil {
		return err
	}
	for id := int32(1); id < int32(len(h.Labels)); id++ {
		for a := id; a > 0; a = h.Parents[a] {
			t.MustInsert(
				store.IntVal(int64(id)), store.StrVal(h.Labels[id]), store.IntVal(int64(h.Depths[id])),
				store.IntVal(int64(a)), store.StrVal(h.Labels[a]), store.IntVal(int64(h.Depths[a])),
			)
		}
	}
	// Posting lists of hierarchy nodes are recoverable by joining the W
	// table on plid/posid (exactly how the paper retrieves them); no extra
	// storage is needed, which is why the KOKO footprint stays small.
	return nil
}

// LoadIndex reconstructs an Index from tables written by Save.
func LoadIndex(db *store.DB) (*Index, error) {
	ix := &Index{
		Word:    map[string][]Posting{},
		Entity:  map[string][]EntityPosting{},
		ByType:  map[string][]EntityPosting{},
		plidOf:  map[int32][]int32{},
		posidOf: map[int32][]int32{},
	}
	w := db.Table("W")
	if w == nil {
		return nil, fmt.Errorf("index: no W table")
	}
	type tokenNode struct {
		sid, tid, plid, posid int32
	}
	var tokens []tokenNode
	w.Scan(func(rid int, row []store.Value) bool {
		p := Posting{
			Sid: int32(row[1].I), Tid: int32(row[2].I),
			U: int32(row[3].I), V: int32(row[4].I), D: int32(row[5].I),
		}
		ix.Word[row[0].S] = append(ix.Word[row[0].S], p)
		tokens = append(tokens, tokenNode{p.Sid, p.Tid, int32(row[6].I), int32(row[7].I)})
		return true
	})
	e := db.Table("E")
	if e == nil {
		return nil, fmt.Errorf("index: no E table")
	}
	e.Scan(func(rid int, row []store.Value) bool {
		ep := EntityPosting{
			Sid: int32(row[2].I), U: int32(row[3].I), V: int32(row[4].I),
			Type: row[1].S, Text: row[0].S,
		}
		ix.Entity[row[0].S] = append(ix.Entity[row[0].S], ep)
		ix.ByType[ep.Type] = append(ix.ByType[ep.Type], ep)
		return true
	})
	var err error
	ix.PL, err = loadClosure(db, "PL")
	if err != nil {
		return nil, err
	}
	ix.POS, err = loadClosure(db, "POS")
	if err != nil {
		return nil, err
	}
	// Re-link token -> hierarchy node and rebuild posting lists of nodes.
	for _, tn := range tokens {
		ids := ix.plidOf[tn.sid]
		for int32(len(ids)) <= tn.tid {
			ids = append(ids, -1)
		}
		ids[tn.tid] = tn.plid
		ix.plidOf[tn.sid] = ids
		ids = ix.posidOf[tn.sid]
		for int32(len(ids)) <= tn.tid {
			ids = append(ids, -1)
		}
		ids[tn.tid] = tn.posid
		ix.posidOf[tn.sid] = ids
	}
	// Node posting lists: join W rows back onto nodes.
	w.Scan(func(rid int, row []store.Value) bool {
		p := Posting{
			Sid: int32(row[1].I), Tid: int32(row[2].I),
			U: int32(row[3].I), V: int32(row[4].I), D: int32(row[5].I),
		}
		plid, posid := int32(row[6].I), int32(row[7].I)
		if plid >= 0 && int(plid) < len(ix.PL.Postings) {
			ix.PL.Postings[plid] = append(ix.PL.Postings[plid], p)
			ix.PL.TotalTokens++
		}
		if posid >= 0 && int(posid) < len(ix.POS.Postings) {
			ix.POS.Postings[posid] = append(ix.POS.Postings[posid], p)
			ix.POS.TotalTokens++
		}
		return true
	})
	ix.Finish()
	return ix, nil
}

func loadClosure(db *store.DB, name string) (*Hierarchy, error) {
	t := db.Table(name)
	if t == nil {
		return nil, fmt.Errorf("index: no %s table", name)
	}
	h := NewHierarchy()
	// First pass: find the max node id.
	maxID := int32(0)
	t.Scan(func(rid int, row []store.Value) bool {
		if id := int32(row[0].I); id > maxID {
			maxID = id
		}
		return true
	})
	h.Labels = make([]string, maxID+1)
	h.Depths = make([]int32, maxID+1)
	h.Parents = make([]int32, maxID+1)
	h.Children = make([]map[string]int32, maxID+1)
	h.Postings = make([][]Posting, maxID+1)
	for i := range h.Children {
		h.Children[i] = map[string]int32{}
	}
	h.Depths[0] = -1
	h.Parents[0] = -1
	// Second pass: self rows give labels/depths; depth-difference-1 rows
	// give parent links.
	t.Scan(func(rid int, row []store.Value) bool {
		id, label, depth := int32(row[0].I), row[1].S, int32(row[2].I)
		aid, adepth := int32(row[3].I), int32(row[5].I)
		h.Labels[id] = label
		h.Depths[id] = depth
		if adepth == depth-1 {
			h.Parents[id] = aid
		} else if depth == 0 {
			h.Parents[id] = 0
		}
		return true
	})
	for id := int32(1); id <= maxID; id++ {
		p := h.Parents[id]
		if p < 0 {
			p = 0
			h.Parents[id] = 0
		}
		h.Children[p][h.Labels[id]] = id
	}
	return h, nil
}
