package index

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// genSortedPostings builds a random sorted, deduplicated posting list. The
// quintuple attributes are a function of (sid, tid), as in a real index
// (one token has exactly one geometry).
func genSortedPostings(r *rand.Rand, n int) []Posting {
	seen := map[[2]int32]bool{}
	var out []Posting
	for i := 0; i < n; i++ {
		sid, tid := int32(r.Intn(6)), int32(r.Intn(12))
		key := [2]int32{sid, tid}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Posting{
			Sid: sid, Tid: tid,
			U: tid / 2, V: tid/2 + tid%3, D: (sid + tid) % 5,
		})
	}
	SortPostings(out)
	return out
}

// naiveUnion is the reference implementation: concat, sort, dedup by value.
func naiveUnion(lists ...[]Posting) []Posting {
	var all []Posting
	for _, l := range lists {
		all = append(all, l...)
	}
	SortPostings(all)
	var out []Posting
	for i, p := range all {
		if i == 0 || p != all[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// TestUnionPostingsQuick: the k-way merge equals the naive reference for
// arbitrary sorted inputs.
func TestUnionPostingsQuick(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	f := func() bool {
		k := 1 + r.Intn(6)
		lists := make([][]Posting, k)
		for i := range lists {
			lists[i] = genSortedPostings(r, r.Intn(20))
		}
		got := UnionPostings(lists...)
		want := naiveUnion(lists...)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(func(struct{}) bool { return f() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestAncestorArithmeticComplete: on ARBITRARY trees the quintuple
// interval+depth tests are complete (true ancestors always pass) but may
// over-approximate — the engine's validation step removes the false
// positives (§4.2.2 Discussion). This property test pins the completeness
// half.
func TestAncestorArithmeticComplete(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		// Random (possibly non-projective) tree; parents point left.
		n := 2 + r.Intn(12)
		parent := make([]int, n)
		parent[0] = -1
		for i := 1; i < n; i++ {
			parent[i] = r.Intn(i)
		}
		depth := make([]int, n)
		for i := 1; i < n; i++ {
			depth[i] = depth[parent[i]] + 1
		}
		subL := make([]int, n)
		subR := make([]int, n)
		for i := range subL {
			subL[i], subR[i] = i, i
		}
		for i := n - 1; i >= 1; i-- {
			p := parent[i]
			if subL[i] < subL[p] {
				subL[p] = subL[i]
			}
			if subR[i] > subR[p] {
				subR[p] = subR[i]
			}
		}
		post := func(i int) Posting {
			return Posting{Sid: 0, Tid: int32(i), U: int32(subL[i]), V: int32(subR[i]), D: int32(depth[i])}
		}
		isAncestor := func(a, d int) bool {
			for x := parent[d]; x != -1; x = parent[x] {
				if x == a {
					return true
				}
			}
			return false
		}
		for a := 0; a < n; a++ {
			for d := 0; d < n; d++ {
				if a == d {
					continue
				}
				if isAncestor(a, d) && !post(a).IsAncestorOf(post(d)) {
					t.Fatalf("iter %d: true ancestor (%d,%d) rejected (parents %v)", iter, a, d, parent)
				}
				if parent[d] == a && !post(a).IsParentOf(post(d)) {
					t.Fatalf("iter %d: true parent (%d,%d) rejected (parents %v)", iter, a, d, parent)
				}
			}
		}
	}
}

// TestAncestorArithmeticExactOnParses: on the trees the actual parser
// produces (projective, as the paper assumes), the arithmetic is EXACT —
// this is what lets the paper use it as a parent/ancestor test.
func TestAncestorArithmeticExactOnParses(t *testing.T) {
	c := NewCorpus(nil, []string{
		"Anna ate some delicious cheesecake that she bought at a grocery store.",
		"I ate a chocolate ice cream, which was delicious, and also ate a pie.",
		"Baking chocolate is a type of chocolate that is prepared for baking.",
		"The new cafe serves great espresso and employs three baristas.",
		"Cyd Charisse had been called Sid for years.",
	})
	for sid := range c.Sentences {
		s := &c.Sentences[sid]
		post := func(i int) Posting {
			tok := &s.Tokens[i]
			return Posting{Sid: int32(sid), Tid: int32(i), U: int32(tok.SubL), V: int32(tok.SubR), D: int32(tok.Depth)}
		}
		for a := range s.Tokens {
			for d := range s.Tokens {
				if a == d {
					continue
				}
				want := s.IsAncestor(a, d)
				if got := post(a).IsAncestorOf(post(d)); got != want {
					t.Fatalf("sid %d: IsAncestorOf(%d,%d) = %v, want %v\n%s", sid, a, d, got, want, s.TreeString())
				}
				wantP := s.Tokens[d].Head == a
				if got := post(a).IsParentOf(post(d)); got != wantP {
					t.Fatalf("sid %d: IsParentOf(%d,%d) = %v, want %v\n%s", sid, a, d, got, wantP, s.TreeString())
				}
			}
		}
	}
}

// TestSortPostingsStableOrder: SortPostings yields (sid, tid) order.
func TestSortPostingsStableOrder(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ps := genSortedPostings(r, 50)
	r.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
	SortPostings(ps)
	ok := sort.SliceIsSorted(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
	if !ok {
		t.Error("not sorted")
	}
}
