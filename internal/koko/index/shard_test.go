package index

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

func testShardCorpus(t *testing.T, docs int) *Corpus {
	t.Helper()
	var texts []string
	for i := 0; i < docs; i++ {
		s := fmt.Sprintf("Cafe Number%d serves espresso daily.", i)
		// Vary document length so token balancing has something to do.
		for j := 0; j < i%4; j++ {
			s += fmt.Sprintf(" The barista%d pulled another shot.", j)
		}
		texts = append(texts, s)
	}
	return NewCorpus(nil, texts)
}

// TestPartitionDocsCoverage: shards tile the document and sentence spaces
// exactly, in order, with no gaps or overlaps, for a range of k values.
func TestPartitionDocsCoverage(t *testing.T) {
	c := testShardCorpus(t, 13)
	for _, k := range []int{1, 2, 3, 5, 7, 13, 50} {
		specs := PartitionDocs(c, k)
		wantShards := k
		if wantShards > c.NumDocs() {
			wantShards = c.NumDocs()
		}
		if wantShards < 1 {
			wantShards = 1
		}
		if len(specs) != wantShards {
			t.Fatalf("k=%d: got %d shards, want %d", k, len(specs), wantShards)
		}
		doc, sid, tokens := 0, 0, 0
		for i, sp := range specs {
			if sp.LoDoc != doc {
				t.Fatalf("k=%d shard %d: LoDoc=%d, want %d", k, i, sp.LoDoc, doc)
			}
			if sp.HiDoc <= sp.LoDoc {
				t.Fatalf("k=%d shard %d: empty doc range %+v", k, i, sp)
			}
			if sp.FirstSID != sid {
				t.Fatalf("k=%d shard %d: FirstSID=%d, want %d", k, i, sp.FirstSID, sid)
			}
			doc = sp.HiDoc
			sid += sp.NumSents
			tokens += sp.Tokens
		}
		if doc != c.NumDocs() || sid != c.NumSentences() {
			t.Fatalf("k=%d: shards cover %d docs / %d sents, want %d / %d",
				k, doc, sid, c.NumDocs(), c.NumSentences())
		}
		total := 0
		for s := range c.Sentences {
			total += len(c.Sentences[s].Tokens)
		}
		if tokens != total {
			t.Fatalf("k=%d: shard token weights sum to %d, want %d", k, tokens, total)
		}
	}
}

// TestPartitionDocsBalance: with many uniform documents, token weights per
// shard stay close to ideal (the partitioner is token-balanced, not just
// doc-count-balanced: a corpus with one huge doc can't balance perfectly,
// but a uniform one must).
func TestPartitionDocsBalance(t *testing.T) {
	var texts []string
	for i := 0; i < 40; i++ {
		texts = append(texts, "Anna ate some delicious cheesecake at the store.")
	}
	c := NewCorpus(nil, texts)
	total := 0
	for s := range c.Sentences {
		total += len(c.Sentences[s].Tokens)
	}
	for _, k := range []int{2, 4, 5, 8} {
		specs := PartitionDocs(c, k)
		ideal := float64(total) / float64(k)
		for i, sp := range specs {
			if f := float64(sp.Tokens); f < 0.5*ideal || f > 1.5*ideal {
				t.Errorf("k=%d shard %d: tokens=%d, ideal=%.0f (out of ±50%%)", k, i, sp.Tokens, ideal)
			}
		}
	}
}

// TestPartitionDocsSkewed: one giant document must not drag neighbours into
// its shard.
func TestPartitionDocsSkewed(t *testing.T) {
	big := ""
	for i := 0; i < 30; i++ {
		big += "The barista pulled another perfect shot of espresso for the regulars. "
	}
	texts := []string{big, "Tiny doc one.", "Tiny doc two.", "Tiny doc three."}
	c := NewCorpus(nil, texts)
	specs := PartitionDocs(c, 2)
	if len(specs) != 2 {
		t.Fatalf("got %d shards, want 2", len(specs))
	}
	if specs[0].HiDoc != 1 {
		t.Errorf("giant doc should occupy shard 0 alone: %+v", specs)
	}
}

// TestShardCorpusIsolation: materializing shards renumbers only the copies;
// the parent corpus keeps its global sentence ids, and shard content
// matches the parent slice exactly.
func TestShardCorpusIsolation(t *testing.T) {
	c := testShardCorpus(t, 9)
	before := make([]int, c.NumSentences())
	for i := range c.Sentences {
		before[i] = c.Sentences[i].ID
	}
	specs := PartitionDocs(c, 3)
	for _, sp := range specs {
		sc := ShardCorpus(c, sp)
		if sc.NumDocs() != sp.NumDocs() || sc.NumSentences() != sp.NumSents {
			t.Fatalf("shard corpus %d docs/%d sents, spec %+v", sc.NumDocs(), sc.NumSentences(), sp)
		}
		for s := 0; s < sc.NumSentences(); s++ {
			if sc.Sentences[s].ID != s {
				t.Fatalf("shard-local sentence %d has ID %d", s, sc.Sentences[s].ID)
			}
			if got, want := sc.Sentence(s).String(), c.Sentence(sp.FirstSID+s).String(); got != want {
				t.Fatalf("shard sentence %d = %q, want %q", s, got, want)
			}
		}
		for d := 0; d < sc.NumDocs(); d++ {
			if sc.Docs[d].Name != c.Docs[sp.LoDoc+d].Name {
				t.Fatalf("shard doc %d name %q, want %q", d, sc.Docs[d].Name, c.Docs[sp.LoDoc+d].Name)
			}
		}
	}
	for i := range c.Sentences {
		if c.Sentences[i].ID != before[i] {
			t.Fatalf("parent corpus sentence %d id mutated: %d -> %d", i, before[i], c.Sentences[i].ID)
		}
	}
}

// TestShardManifestRoundtrip: manifest persistence preserves files and
// specs, and plain stores are not mistaken for manifests.
func TestShardManifestRoundtrip(t *testing.T) {
	specs := []ShardSpec{
		{LoDoc: 0, HiDoc: 3, FirstSID: 0, NumSents: 7, Tokens: 120},
		{LoDoc: 3, HiDoc: 5, FirstSID: 7, NumSents: 4, Tokens: 98},
	}
	files := []string{"c.koko.shard0", "c.koko.shard1"}
	formats := []string{FormatNameRow, FormatNameBlock}
	db := store.NewDB()
	SaveShardManifest(db, files, formats, specs)
	if !IsShardManifest(db) {
		t.Fatal("manifest not detected")
	}
	path := filepath.Join(t.TempDir(), "c.koko")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	gotFiles, gotFormats, gotSpecs, err := LoadShardManifest(db2)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotFiles) != 2 || gotFiles[0] != files[0] || gotFiles[1] != files[1] {
		t.Fatalf("files = %v", gotFiles)
	}
	if len(gotFormats) != 2 || gotFormats[0] != FormatNameRow || gotFormats[1] != FormatNameBlock {
		t.Fatalf("formats = %v", gotFormats)
	}
	for i := range specs {
		if gotSpecs[i] != specs[i] {
			t.Fatalf("spec %d = %+v, want %+v", i, gotSpecs[i], specs[i])
		}
	}

	// nil formats defaults every shard to row format.
	dbNil := store.NewDB()
	SaveShardManifest(dbNil, files, nil, specs)
	_, defFormats, _, err := LoadShardManifest(dbNil)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range defFormats {
		if f != FormatNameRow {
			t.Fatalf("format %d = %q, want %q", i, f, FormatNameRow)
		}
	}

	plain := store.NewDB()
	testShardCorpus(t, 2).SaveParsed(plain)
	if IsShardManifest(plain) {
		t.Fatal("plain store misdetected as manifest")
	}
	if _, _, _, err := LoadShardManifest(plain); err == nil {
		t.Fatal("LoadShardManifest on plain store should error")
	}
}
