package index

import "fmt"

// PostingList is a posting list that may be decoded lazily, block by block.
// The heap-resident implementation is SlicePostings (one block); the mmap
// block store yields lists whose blocks decode on first touch through a
// budgeted cache. Blocks partition the list in (sid, tid) order and
// BlockBounds exposes each block's sid range so consumers can skip whole
// blocks without decoding them.
type PostingList interface {
	// Len is the total posting count across all blocks.
	Len() int
	// NumBlocks is the block count (0 for an empty list).
	NumBlocks() int
	// BlockBounds returns block i's first and last sentence id.
	BlockBounds(i int) (minSid, maxSid int32)
	// Block returns block i's postings, decoding if necessary. The returned
	// slice is shared (possibly cached) and must not be mutated. Corrupt
	// on-disk blocks panic with *StoreError; the engine converts that to a
	// query error at its entry points.
	Block(i int) []Posting
}

// SlicePostings adapts a heap-resident, (sid,tid)-sorted slice to
// PostingList as a single block.
type SlicePostings []Posting

func (s SlicePostings) Len() int { return len(s) }

func (s SlicePostings) NumBlocks() int {
	if len(s) == 0 {
		return 0
	}
	return 1
}

func (s SlicePostings) BlockBounds(int) (int32, int32) {
	return s[0].Sid, s[len(s)-1].Sid
}

func (s SlicePostings) Block(int) []Posting { return s }

// ListLen reports the posting count of a possibly-nil list.
func ListLen(l PostingList) int {
	if l == nil {
		return 0
	}
	return l.Len()
}

// Materialize concatenates a list's blocks into one contiguous slice. A
// SlicePostings comes back as-is (no copy), so heap-path callers see the
// exact slice the index holds.
func Materialize(l PostingList) []Posting {
	if l == nil {
		return nil
	}
	if s, ok := l.(SlicePostings); ok {
		return s
	}
	out := make([]Posting, 0, l.Len())
	for i := 0; i < l.NumBlocks(); i++ {
		out = append(out, l.Block(i)...)
	}
	return out
}

// ListCursor walks a PostingList one sentence run at a time: Run returns the
// contiguous postings of the current sid, and SeekSid gallops forward using
// per-block min/max bounds so blocks wholly below the target are skipped
// without being decoded. This is how the engine's merge joins consume lazy
// lists: only the touched blocks ever materialize, and a run spanning a
// block boundary is stitched into a small reusable scratch buffer.
type ListCursor struct {
	l     PostingList
	nb    int
	bi    int       // current block index
	blk   []Posting // decoded current block
	off   int       // start of the current run within blk
	end   int       // end of the current run within blk
	run   []Posting // current run (a blk subslice, or spill)
	spill []Posting // scratch for runs spanning blocks
	sid   int32
	valid bool
}

// Reset points the cursor at the first run of l (which may be nil or empty).
func (c *ListCursor) Reset(l PostingList) {
	c.l = l
	c.nb = 0
	if l != nil {
		c.nb = l.NumBlocks()
	}
	c.bi = 0
	c.blk = nil
	c.off = 0
	c.valid = false
	if c.nb == 0 {
		return
	}
	c.blk = l.Block(0)
	if len(c.blk) == 0 {
		return
	}
	c.valid = true
	c.loadRun()
}

// Valid reports whether the cursor is positioned on a run.
func (c *ListCursor) Valid() bool { return c.valid }

// Sid is the current run's sentence id.
func (c *ListCursor) Sid() int32 { return c.sid }

// Run returns the current run: every posting of the current sid, in tid
// order. The slice is only valid until the cursor advances.
func (c *ListCursor) Run() []Posting { return c.run }

// loadRun delimits the run starting at (bi, off), pulling continuation
// prefixes from following blocks when the run crosses block boundaries.
func (c *ListCursor) loadRun() {
	c.sid = c.blk[c.off].Sid
	c.end = runEnd(c.blk, c.off, c.sid)
	if c.end < len(c.blk) || c.bi+1 >= c.nb {
		c.run = c.blk[c.off:c.end]
		return
	}
	// The run reaches the end of the block; it continues iff the next
	// block's minimum sid matches.
	if min, _ := c.l.BlockBounds(c.bi + 1); min != c.sid {
		c.run = c.blk[c.off:c.end]
		return
	}
	c.spill = append(c.spill[:0], c.blk[c.off:c.end]...)
	for c.bi+1 < c.nb {
		min, _ := c.l.BlockBounds(c.bi + 1)
		if min != c.sid {
			break
		}
		c.bi++
		c.blk = c.l.Block(c.bi)
		c.off = 0
		c.end = runEnd(c.blk, 0, c.sid)
		c.spill = append(c.spill, c.blk[:c.end]...)
		if c.end < len(c.blk) {
			break
		}
	}
	c.run = c.spill
}

// NextRun advances to the next sentence's run.
func (c *ListCursor) NextRun() {
	if !c.valid {
		return
	}
	c.off = c.end
	for c.off >= len(c.blk) {
		c.bi++
		if c.bi >= c.nb {
			c.valid = false
			return
		}
		c.blk = c.l.Block(c.bi)
		c.off = 0
	}
	c.loadRun()
}

// SeekSid advances the cursor to the first run with sid >= target. Blocks
// whose max sid is below the target are skipped by bound comparison alone.
func (c *ListCursor) SeekSid(target int32) {
	if !c.valid || c.sid >= target {
		return
	}
	if _, max := c.l.BlockBounds(c.bi); max < target {
		// Binary search the block directory for the first block that can
		// contain the target.
		lo, hi := c.bi+1, c.nb
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if _, m := c.l.BlockBounds(mid); m < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= c.nb {
			c.valid = false
			return
		}
		c.bi = lo
		c.blk = c.l.Block(lo)
		c.off = 0
	} else {
		c.off = c.end
	}
	c.off = seekSidSlice(c.blk, c.off, target)
	if c.off >= len(c.blk) {
		// The block's max said the target fits, so this only happens when
		// the seek started past it; fall through to the next block.
		c.bi++
		for c.bi < c.nb {
			if _, m := c.l.BlockBounds(c.bi); m >= target {
				break
			}
			c.bi++
		}
		if c.bi >= c.nb {
			c.valid = false
			return
		}
		c.blk = c.l.Block(c.bi)
		c.off = seekSidSlice(c.blk, 0, target)
	}
	c.loadRun()
}

// runEnd returns the end of the run of sid starting at from, galloping then
// binary searching within the block.
func runEnd(ps []Posting, from int, sid int32) int {
	return seekSidSlice(ps, from, sid+1)
}

// seekSidSlice returns the smallest index i >= from with ps[i].Sid >= sid
// (gallop + binary search, as the merge joins use).
func seekSidSlice(ps []Posting, from int, sid int32) int {
	if from >= len(ps) || ps[from].Sid >= sid {
		return from
	}
	step := 1
	lo, hi := from, from+1
	for hi < len(ps) && ps[hi].Sid < sid {
		lo = hi
		step *= 2
		hi += step
	}
	if hi > len(ps) {
		hi = len(ps)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ps[mid].Sid < sid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// MergeLists merges sorted posting lists into one sorted, deduplicated
// slice — UnionPostings over lazy lists. Only the output materializes;
// input blocks stream through their cache entries one at a time.
type mergePos struct {
	l   PostingList
	bi  int
	blk []Posting
	i   int
}

func (m *mergePos) cur() Posting { return m.blk[m.i] }

func (m *mergePos) next() bool {
	m.i++
	for m.i >= len(m.blk) {
		m.bi++
		if m.bi >= m.l.NumBlocks() {
			return false
		}
		m.blk = m.l.Block(m.bi)
		m.i = 0
	}
	return true
}

// MergeLists performs a k-way heap merge of sorted posting lists,
// deduplicating exact-equal postings like UnionPostings.
func MergeLists(lists []PostingList) []Posting {
	var heap []*mergePos
	total := 0
	for _, l := range lists {
		if ListLen(l) == 0 {
			continue
		}
		total += l.Len()
		heap = append(heap, &mergePos{l: l, blk: l.Block(0)})
	}
	if len(heap) == 0 {
		return nil
	}
	less := func(a, b *mergePos) bool { return a.cur().Less(b.cur()) }
	siftDown := func(i int) {
		for {
			c := 2*i + 1
			if c >= len(heap) {
				return
			}
			if c+1 < len(heap) && less(heap[c+1], heap[c]) {
				c++
			}
			if !less(heap[c], heap[i]) {
				return
			}
			heap[i], heap[c] = heap[c], heap[i]
			i = c
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	out := make([]Posting, 0, total)
	for len(heap) > 0 {
		p := heap[0].cur()
		if n := len(out); n == 0 || out[n-1] != p {
			out = append(out, p)
		}
		if heap[0].next() {
			siftDown(0)
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
			if len(heap) > 0 {
				siftDown(0)
			}
		}
	}
	return out
}

// HierKind names one of the two hierarchy indices when addressing a
// PostingSource.
type HierKind uint8

const (
	HierPL HierKind = iota
	HierPOS
)

// SourceStats summarizes the shape of an on-disk posting source without
// decoding any posting data.
type SourceStats struct {
	Words         int
	Entities      int
	TotalPostings int
}

// PostingSource supplies posting data for an Index whose lists live outside
// the heap (the mmap block store). Word and hierarchy-node lists come back
// lazy; entity lists materialize on access (they are small relative to word
// postings). All keys are pre-lowered.
type PostingSource interface {
	// WordList returns the lazy posting list of a lowercased word, or nil.
	WordList(lowered string) PostingList
	// EntityList returns the mentions of an entity by lowercased text.
	EntityList(lowered string) []EntityPosting
	// TypeNames returns the sorted entity type names present in the source.
	TypeNames() []string
	// TypeList returns all mentions of one entity type, (sid,u)-sorted.
	TypeList(etype string) []EntityPosting
	// NodeList returns the lazy posting list of one hierarchy node, or nil.
	NodeList(kind HierKind, node int32) PostingList
	// SourceStats reports index shape from the source's directory alone.
	SourceStats() SourceStats
}

// StoreError reports a damaged on-disk posting store detected during lazy
// decode. Because decode happens inside posting-list access (which has no
// error channel), the block store panics with a *StoreError and the engine
// recovers it into a query error at its entry points.
type StoreError struct {
	Path string
	Err  error
}

func (e *StoreError) Error() string {
	return fmt.Sprintf("store %s: %v", e.Path, e.Err)
}

func (e *StoreError) Unwrap() error { return e.Err }
