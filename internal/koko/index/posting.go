package index

import "sort"

// Posting is the paper's quintuple (x, y, u-v, d): sentence id, token id,
// subtree interval, and depth.
type Posting struct {
	Sid int32
	Tid int32
	U   int32
	V   int32
	D   int32
}

// Less orders postings by (Sid, Tid).
func (p Posting) Less(q Posting) bool {
	if p.Sid != q.Sid {
		return p.Sid < q.Sid
	}
	return p.Tid < q.Tid
}

// IsAncestorOf reports the paper's interval test: p is a (strict) ancestor
// of q in the same sentence if p.u <= q.u, p.v >= q.v, and p.d < q.d.
func (p Posting) IsAncestorOf(q Posting) bool {
	return p.Sid == q.Sid && p.U <= q.U && p.V >= q.V && p.D < q.D && p.Tid != q.Tid
}

// IsParentOf reports the paper's parent test: ancestor with d_c = d_p + 1.
func (p Posting) IsParentOf(q Posting) bool {
	return p.Sid == q.Sid && p.U <= q.U && p.V >= q.V && p.D+1 == q.D
}

// SortPostings sorts a posting list by (sid, tid).
func SortPostings(ps []Posting) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
}

// UnionPostings merges sorted posting lists into one sorted, deduplicated
// list. Inputs must each be sorted by (sid, tid) — true for every index
// posting list after Finish — so the union is a k-way merge (pairwise,
// O(n log k)) rather than a re-sort.
func UnionPostings(lists ...[]Posting) []Posting {
	// Drop empties.
	live := lists[:0:0]
	for _, l := range lists {
		if len(l) > 0 {
			live = append(live, l)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return append([]Posting(nil), live[0]...)
	}
	for len(live) > 1 {
		var next [][]Posting
		for i := 0; i < len(live); i += 2 {
			if i+1 == len(live) {
				next = append(next, live[i])
				break
			}
			next = append(next, mergeTwo(live[i], live[i+1]))
		}
		live = next
	}
	return live[0]
}

func mergeTwo(a, b []Posting) []Posting {
	out := make([]Posting, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i].Less(b[j]):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// EntityPosting is the entity index entry: the paper's triple (x, u-v) plus
// the entity's type and a reference to its text.
type EntityPosting struct {
	Sid  int32
	U, V int32
	Type string
	Text string
}

// SortEntityPostings orders entity postings by (sid, u).
func SortEntityPostings(es []EntityPosting) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Sid != es[j].Sid {
			return es[i].Sid < es[j].Sid
		}
		return es[i].U < es[j].U
	})
}

// SidsOf returns the sorted distinct sentence ids of a posting list. The
// input must be (sid,tid)-sorted — true of every index posting list after
// Finish and of every join result — so a single linear emit-distinct pass
// suffices; no re-sort, no second dedup.
func SidsOf(ps []Posting) []int32 {
	var out []int32
	for _, p := range ps {
		if len(out) == 0 || out[len(out)-1] != p.Sid {
			out = append(out, p.Sid)
		}
	}
	return out
}

// IntersectSids intersects two sorted sid lists. When the lists are badly
// skewed it walks the smaller list and gallops (exponential probe + binary
// search) through the larger one; otherwise it is a plain linear merge.
func IntersectSids(a, b []int32) []int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return nil
	}
	var out []int32
	if len(b) >= 16*len(a) {
		j := 0
		for _, x := range a {
			j = seekSidIn(b, j, x)
			if j >= len(b) {
				break
			}
			if b[j] == x {
				out = append(out, x)
				j++
			}
		}
		return out
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// seekSidIn returns the smallest index i >= from with s[i] >= sid, by
// galloping forward then binary searching the overshot range.
func seekSidIn(s []int32, from int, sid int32) int {
	if from >= len(s) || s[from] >= sid {
		return from
	}
	step := 1
	lo, hi := from, from+1
	for hi < len(s) && s[hi] < sid {
		lo = hi
		step *= 2
		hi += step
	}
	if hi > len(s) {
		hi = len(s)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < sid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
