package index

import (
	"reflect"
	"testing"

	"repro/internal/store"
)

// paperCorpus builds the two-sentence corpus of the paper's Examples 3.1-3.3:
// sid 0 is the Figure 1 sentence, sid 1 the Anna sentence.
func paperCorpus() *Corpus {
	return NewCorpus(
		[]string{"doc0", "doc1"},
		[]string{
			"I ate a chocolate ice cream, which was delicious, and also ate a pie.",
			"Anna ate some delicious cheesecake that she bought at a grocery store.",
		},
	)
}

// TestExample32WordIndex pins the paper's Example 3.2 word-index rows.
func TestExample32WordIndex(t *testing.T) {
	ix := Build(paperCorpus())
	cases := map[string][]Posting{
		"i":         {{Sid: 0, Tid: 0, U: 0, V: 0, D: 1}},
		"ate":       {{Sid: 0, Tid: 1, U: 0, V: 16, D: 0}, {Sid: 0, Tid: 13, U: 12, V: 15, D: 1}, {Sid: 1, Tid: 1, U: 0, V: 12, D: 0}},
		"delicious": {{Sid: 0, Tid: 9, U: 9, V: 9, D: 3}, {Sid: 1, Tid: 3, U: 3, V: 3, D: 2}},
		"cream":     {{Sid: 0, Tid: 5, U: 2, V: 9, D: 1}},
	}
	for word, want := range cases {
		got := ix.LookupWord(word)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("word %q: postings %v, want %v", word, got, want)
		}
	}
	// The paper prints (1,1,0-12,0) before (0,1,0-16,0); our lists sort by
	// sid — the set is what matters, and it includes the second "ate" of
	// sentence 0, which the paper's excerpt elides.
}

// TestExample32EntityIndex pins the entity-index rows.
func TestExample32EntityIndex(t *testing.T) {
	ix := Build(paperCorpus())
	cases := map[string]EntityPosting{
		"cheesecake":          {Sid: 1, U: 4, V: 4, Type: "Other", Text: "cheesecake"},
		"grocery store":       {Sid: 1, U: 10, V: 11, Type: "Location", Text: "grocery store"},
		"chocolate ice cream": {Sid: 0, U: 3, V: 5, Type: "Other", Text: "chocolate ice cream"},
	}
	for text, want := range cases {
		got := ix.LookupEntityText(text)
		if len(got) != 1 || got[0] != want {
			t.Errorf("entity %q: %v, want [%v]", text, got, want)
		}
	}
	// Parent-child check from Example 3.2's discussion: ate(1,1) is the
	// parent of cheesecake's token via the quintuple arithmetic.
	ate := ix.LookupWord("ate")[2] // (1,1,0-12,0)
	cheese := ix.LookupWord("cheesecake")[0]
	if !ate.IsParentOf(cheese) {
		t.Errorf("IsParentOf(%v, %v) = false", ate, cheese)
	}
	if !ate.IsAncestorOf(cheese) {
		t.Error("IsAncestorOf false for parent")
	}
	if cheese.IsAncestorOf(ate) {
		t.Error("IsAncestorOf inverted")
	}
}

// TestExample33PLIndex pins the paper's Example 3.3 PL-index posting lists.
func TestExample33PLIndex(t *testing.T) {
	ix := Build(paperCorpus())
	childPath := func(labels ...string) Path {
		p := make(Path, len(labels))
		for i, l := range labels {
			p[i] = Step{Desc: false, Label: l}
		}
		return p
	}
	cases := []struct {
		path Path
		want []Posting
	}{
		{childPath("root"), []Posting{{0, 1, 0, 16, 0}, {1, 1, 0, 12, 0}}},
		{childPath("root", "nsubj"), []Posting{{0, 0, 0, 0, 1}, {1, 0, 0, 0, 1}}},
		{childPath("root", "dobj"), []Posting{{0, 5, 2, 9, 1}, {1, 4, 2, 11, 1}}},
		{childPath("root", "dobj", "det"), []Posting{{0, 2, 2, 2, 2}, {1, 2, 2, 2, 2}}},
		{childPath("root", "dobj", "amod"), []Posting{{1, 3, 3, 3, 2}}},
		{childPath("root", "dobj", "nn"), []Posting{{0, 3, 3, 3, 2}, {0, 4, 4, 4, 2}}},
	}
	for _, tc := range cases {
		got := ix.PL.Lookup(tc.path)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("PL lookup %v = %v, want %v", tc.path, got, tc.want)
		}
	}
	// Both nn nodes under dobj merged into one hierarchy node: the posting
	// list for /root/dobj/nn has 2 entries but the node count for that path
	// is 1.
	nodes := ix.PL.LookupNodes(childPath("root", "dobj", "nn"))
	if len(nodes) != 1 {
		t.Errorf("nn merged into %d nodes, want 1", len(nodes))
	}
}

func TestHierarchyDescendantAndWildcard(t *testing.T) {
	ix := Build(paperCorpus())
	// //dobj finds the two root-level dobj tokens (cream, cheesecake), the
	// pie dobj under the conj verb, and the relative pronoun "that" which is
	// the dobj of "bought" (Example 3.1).
	got := ix.PL.Lookup(Path{{Desc: true, Label: "dobj"}})
	if len(got) != 4 {
		t.Fatalf("//dobj = %v, want 4 postings", got)
	}
	// //*/dobj//* — the parse-label path decomposed from the paper's
	// Example 4.2 — matches everything below any dobj.
	got = ix.PL.Lookup(Path{{true, "*"}, {false, "dobj"}, {true, "*"}})
	if len(got) == 0 {
		t.Fatal("//*/dobj//* empty")
	}
	for _, p := range got {
		if p.D < 2 {
			t.Errorf("posting %v too shallow for //*/dobj//*", p)
		}
	}
	// POS index: //verb matches all verbs (ate, was, ate, ate, bought).
	verbs := ix.POS.Lookup(Path{{true, "verb"}})
	if len(verbs) != 5 {
		t.Errorf("//verb = %d postings, want 5 (%v)", len(verbs), verbs)
	}
	// Nonexistent label: empty, not panic.
	if got := ix.PL.Lookup(Path{{false, "nosuchlabel"}}); got != nil {
		t.Errorf("nosuchlabel = %v", got)
	}
}

func TestHierarchyCompression(t *testing.T) {
	// Many sentences with the same structure must merge into few nodes.
	texts := make([]string, 200)
	for i := range texts {
		texts[i] = "Anna ate some delicious cheesecake that she bought at a grocery store."
	}
	c := NewCorpus(nil, texts)
	ix := Build(c)
	st := ix.Stats()
	if st.PLCompression < 0.99 {
		t.Errorf("PL compression = %.4f, want > 0.99 (nodes=%d tokens=%d)",
			st.PLCompression, st.PLNodes, ix.PL.TotalTokens)
	}
	if st.POSCompression < 0.99 {
		t.Errorf("POS compression = %.4f, want > 0.99", st.POSCompression)
	}
}

func TestEntitiesOfType(t *testing.T) {
	ix := Build(paperCorpus())
	all := ix.EntitiesOfType("Entity")
	if len(all) < 4 {
		t.Errorf("Entity mentions = %d, want >= 4", len(all))
	}
	locs := ix.EntitiesOfType("GPE")
	if len(locs) != 1 || locs[0].Text != "grocery store" {
		t.Errorf("GPE = %v", locs)
	}
	people := ix.EntitiesOfType("Person")
	if len(people) != 1 || people[0].Text != "Anna" {
		t.Errorf("Person = %v", people)
	}
	if got := ix.EntitiesOfType("Nonexistent"); got != nil {
		t.Errorf("unknown type = %v", got)
	}
}

func TestPostingHelpers(t *testing.T) {
	a := []Posting{{Sid: 0, Tid: 1}, {Sid: 2, Tid: 0}}
	b := []Posting{{Sid: 0, Tid: 1}, {Sid: 1, Tid: 5}}
	u := UnionPostings(a, b)
	if len(u) != 3 {
		t.Errorf("union = %v", u)
	}
	sids := SidsOf(u)
	if !reflect.DeepEqual(sids, []int32{0, 1, 2}) {
		t.Errorf("sids = %v", sids)
	}
	if got := IntersectSids([]int32{0, 1, 2}, []int32{1, 2, 3}); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Errorf("intersect = %v", got)
	}
}

func TestIndexPersistRoundtrip(t *testing.T) {
	c := paperCorpus()
	ix := Build(c)
	db := store.NewDB()
	ix.Save(db)
	got, err := LoadIndex(db)
	if err != nil {
		t.Fatal(err)
	}
	// Word postings survive.
	for _, w := range []string{"ate", "delicious", "cream", "store"} {
		if !reflect.DeepEqual(got.LookupWord(w), ix.LookupWord(w)) {
			t.Errorf("word %q: %v vs %v", w, got.LookupWord(w), ix.LookupWord(w))
		}
	}
	// Entity postings survive (text is lowercased in the table).
	if len(got.LookupEntityText("grocery store")) != 1 {
		t.Error("entity lost in roundtrip")
	}
	// Hierarchy lookups survive.
	p := Path{{false, "root"}, {false, "dobj"}, {false, "nn"}}
	if !reflect.DeepEqual(got.PL.Lookup(p), ix.PL.Lookup(p)) {
		t.Errorf("PL lookup differs after roundtrip: %v vs %v", got.PL.Lookup(p), ix.PL.Lookup(p))
	}
	pv := Path{{true, "verb"}}
	if !reflect.DeepEqual(got.POS.Lookup(pv), ix.POS.Lookup(pv)) {
		t.Errorf("POS lookup differs after roundtrip")
	}
}

func TestCorpusParsedPersistence(t *testing.T) {
	c := paperCorpus()
	db := store.NewDB()
	c.SaveParsed(db)
	s, err := LoadSentence(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != c.Sentence(1).String() {
		t.Errorf("reloaded sentence %q, want %q", s.String(), c.Sentence(1).String())
	}
	if s.Root() != c.Sentence(1).Root() {
		t.Errorf("root = %d, want %d", s.Root(), c.Sentence(1).Root())
	}
	// Derived geometry must be rebuilt identically.
	for i := range s.Tokens {
		a, b := s.Tokens[i], c.Sentence(1).Tokens[i]
		if a.SubL != b.SubL || a.SubR != b.SubR || a.Depth != b.Depth {
			t.Errorf("token %d geometry: %+v vs %+v", i, a, b)
		}
	}
	// Entities must be re-linked.
	if e := s.EntityAt(10); e == nil || e.Type != "Location" {
		t.Errorf("entity at 10 = %+v", e)
	}
	if _, err := LoadSentence(db, 999); err == nil {
		t.Error("missing sentence loaded")
	}
}

func TestCorpusDocMapping(t *testing.T) {
	c := paperCorpus()
	if c.NumDocs() != 2 || c.NumSentences() != 2 {
		t.Fatalf("docs=%d sents=%d", c.NumDocs(), c.NumSentences())
	}
	if c.DocOfSent[0] != 0 || c.DocOfSent[1] != 1 {
		t.Errorf("DocOfSent = %v", c.DocOfSent)
	}
	first, end := c.DocSentences(1)
	if first != 1 || end != 2 {
		t.Errorf("DocSentences(1) = %d,%d", first, end)
	}
}
