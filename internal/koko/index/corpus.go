package index

import (
	"fmt"

	"repro/internal/nlp"
	"repro/internal/store"
)

// DocMeta locates one document's sentences within a corpus.
type DocMeta struct {
	Name     string
	FirstSID int
	NumSents int
}

// Corpus is a parsed text corpus with corpus-global sentence ids: sentence
// s has Sentences[s].ID == s. It is the unit both indexing and query
// evaluation operate on.
type Corpus struct {
	Sentences []nlp.Sentence
	Docs      []DocMeta
	DocOfSent []int // sid -> doc index
}

// NewCorpus assembles a corpus from raw document texts, running the NLP
// pipeline over each.
func NewCorpus(names []string, texts []string) *Corpus {
	c := &Corpus{}
	p := nlp.NewPipeline()
	for i, text := range texts {
		name := fmt.Sprintf("doc%d", i)
		if i < len(names) {
			name = names[i]
		}
		doc := p.Annotate(i, name, text, len(c.Sentences))
		c.AppendDoc(name, doc.Sentences)
	}
	return c
}

// AppendDoc adds a parsed document's sentences, renumbering them to global
// sentence ids.
func (c *Corpus) AppendDoc(name string, sents []nlp.Sentence) {
	first := len(c.Sentences)
	docIdx := len(c.Docs)
	for i := range sents {
		sents[i].ID = first + i
		c.Sentences = append(c.Sentences, sents[i])
		c.DocOfSent = append(c.DocOfSent, docIdx)
	}
	c.Docs = append(c.Docs, DocMeta{Name: name, FirstSID: first, NumSents: len(sents)})
}

// AppendDocsFrom copies documents [lo, hi) of src onto the end of c,
// renumbering them to c's global ids. Sentence structs are copied before
// renumbering (token and entity slices are shared read-only), so src is
// never mutated — the same discipline as ShardCorpus. This is how the
// compactor assembles base + delta into one corpus for re-partitioning.
func (c *Corpus) AppendDocsFrom(src *Corpus, lo, hi int) {
	for d := lo; d < hi; d++ {
		first, end := src.DocSentences(d)
		sents := make([]nlp.Sentence, end-first)
		copy(sents, src.Sentences[first:end])
		c.AppendDoc(src.Docs[d].Name, sents)
	}
}

// NumSentences returns the sentence count.
func (c *Corpus) NumSentences() int { return len(c.Sentences) }

// NumDocs returns the document count.
func (c *Corpus) NumDocs() int { return len(c.Docs) }

// Sentence returns the sentence with global id sid.
func (c *Corpus) Sentence(sid int) *nlp.Sentence { return &c.Sentences[sid] }

// DocSentences returns the sentence-id range [first, first+n) of document d.
func (c *Corpus) DocSentences(d int) (int, int) {
	m := c.Docs[d]
	return m.FirstSID, m.FirstSID + m.NumSents
}

// --- persistence of parsed text (the paper stores parsed trees in the DBMS
// and loads candidate articles back during evaluation — the LoadArticle
// phase of Table 2) ---

// SaveParsed writes the parsed corpus into db as tables D (documents),
// S (sentences), and T (tokens).
func (c *Corpus) SaveParsed(db *store.DB) error {
	d := db.Create("D",
		store.Column{Name: "name", Type: store.ColString},
		store.Column{Name: "first_sid", Type: store.ColInt},
		store.Column{Name: "num_sents", Type: store.ColInt},
	)
	for _, m := range c.Docs {
		d.MustInsert(store.StrVal(m.Name), store.IntVal(int64(m.FirstSID)), store.IntVal(int64(m.NumSents)))
	}
	tt := db.Create("T",
		store.Column{Name: "sid", Type: store.ColInt},
		store.Column{Name: "tid", Type: store.ColInt},
		store.Column{Name: "text", Type: store.ColString},
		store.Column{Name: "pos", Type: store.ColString},
		store.Column{Name: "label", Type: store.ColString},
		store.Column{Name: "head", Type: store.ColInt},
		store.Column{Name: "etype", Type: store.ColString},
		store.Column{Name: "el", Type: store.ColInt},
		store.Column{Name: "er", Type: store.ColInt},
	)
	if err := tt.CreateIndex("by_sid", "sid"); err != nil {
		return err
	}
	for sid := range c.Sentences {
		s := &c.Sentences[sid]
		for i := range s.Tokens {
			tok := &s.Tokens[i]
			etype, el, er := "", -1, -1
			if e := s.EntityAt(i); e != nil {
				etype, el, er = e.Type, e.L, e.R
			}
			tt.MustInsert(
				store.IntVal(int64(sid)), store.IntVal(int64(i)),
				store.StrVal(tok.Text), store.StrVal(tok.POS),
				store.StrVal(tok.Label), store.IntVal(int64(tok.Head)),
				store.StrVal(etype), store.IntVal(int64(el)), store.IntVal(int64(er)),
			)
		}
	}
	return nil
}

// LoadSentence reconstructs one parsed sentence from the T table. This is
// the per-sentence unit of the LoadArticle phase: the engine fetches only
// the articles that survived index pruning.
func LoadSentence(db *store.DB, sid int) (*nlp.Sentence, error) {
	tt := db.Table("T")
	if tt == nil {
		return nil, fmt.Errorf("index: no T table")
	}
	s := &nlp.Sentence{ID: sid}
	type entSpan struct {
		typ  string
		l, r int
	}
	var ents []entSpan
	err := tt.LookupPrefix("by_sid", func(rid int, row []store.Value) bool {
		tok := nlp.Token{
			ID:       int(row[1].I),
			Text:     row[2].S,
			Lower:    lower(row[2].S),
			POS:      row[3].S,
			Label:    row[4].S,
			Head:     int(row[5].I),
			EntityID: -1,
		}
		s.Tokens = append(s.Tokens, tok)
		if row[6].S != "" && int(row[7].I) == tok.ID {
			ents = append(ents, entSpan{typ: row[6].S, l: int(row[7].I), r: int(row[8].I)})
		}
		return true
	}, store.IntVal(int64(sid)))
	if err != nil {
		return nil, err
	}
	if len(s.Tokens) == 0 {
		return nil, fmt.Errorf("index: sentence %d not found", sid)
	}
	// Rebuild derived geometry and entity links.
	s.RecomputeDerived()
	for _, e := range ents {
		s.Entities = append(s.Entities, nlp.Entity{Type: e.typ, L: e.l, R: e.r, Text: s.Text(e.l, e.r)})
		id := len(s.Entities) - 1
		for t := e.l; t <= e.r && t < len(s.Tokens); t++ {
			s.Tokens[t].EntityID = id
		}
	}
	return s, nil
}

// LowerASCII exposes the token lowering used when reconstructing sentences
// from disk, so alternative store formats (the block store) rebuild Token.
// Lower identically to the row store's LoadSentence.
func LowerASCII(s string) string { return lower(s) }

func lower(s string) string {
	b := []byte(s)
	changed := false
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}
