package index

import (
	"fmt"

	"repro/internal/nlp"
	"repro/internal/store"
)

// Sharding: a corpus is split on document boundaries into contiguous
// doc-range shards. KOKO evaluates queries document-by-document (evidence
// aggregation never crosses documents), so each shard can be indexed and
// queried as a fully independent corpus and the per-shard results
// recombined exactly by rebasing shard-local document and sentence ids.

// ShardSpec describes one shard: the global document range [LoDoc, HiDoc)
// it covers and the offsets needed to rebase shard-local ids back to
// corpus-global ones.
type ShardSpec struct {
	// LoDoc / HiDoc bound the global document range (HiDoc exclusive).
	LoDoc, HiDoc int
	// FirstSID is the global sentence id of the shard's first sentence;
	// shard-local sentence s corresponds to global sentence FirstSID+s.
	FirstSID int
	// NumSents / Tokens report the shard's size (Tokens is the balance
	// weight the partitioner optimizes).
	NumSents int
	Tokens   int
}

// NumDocs returns the number of documents the shard covers.
func (sp ShardSpec) NumDocs() int { return sp.HiDoc - sp.LoDoc }

// PartitionDocs splits c's documents into at most k contiguous doc ranges,
// balancing total token count per shard rather than document count: one
// giant article should not ride with a full share of small ones. Every
// returned shard covers at least one document, so fewer than k shards come
// back when the corpus has fewer than k documents. k <= 1 yields a single
// shard covering everything.
func PartitionDocs(c *Corpus, k int) []ShardSpec {
	nd := c.NumDocs()
	if nd == 0 {
		return []ShardSpec{{}}
	}
	if k > nd {
		k = nd
	}
	if k < 1 {
		k = 1
	}
	docTokens := make([]int, nd)
	total := 0
	for d := 0; d < nd; d++ {
		first, end := c.DocSentences(d)
		w := 0
		for sid := first; sid < end; sid++ {
			w += len(c.Sentences[sid].Tokens)
		}
		docTokens[d] = w
		total += w
	}
	specs := make([]ShardSpec, 0, k)
	remaining := total
	lo := 0
	for i := 0; i < k; i++ {
		shardsLeft := k - i
		// maxHi leaves at least one document for every shard still to cut.
		maxHi := nd - (shardsLeft - 1)
		target := float64(remaining) / float64(shardsLeft)
		acc := 0
		hi := lo
		for hi < maxHi {
			w := docTokens[hi]
			// Take the next document unless stopping here is closer to the
			// (re-balanced) per-shard target than taking it would be.
			if hi > lo && float64(acc)+float64(w)/2 > target {
				break
			}
			acc += w
			hi++
		}
		if hi == lo { // always make progress
			acc = docTokens[hi]
			hi++
		}
		first := c.Docs[lo].FirstSID
		last := c.Docs[hi-1]
		specs = append(specs, ShardSpec{
			LoDoc: lo, HiDoc: hi,
			FirstSID: first,
			NumSents: last.FirstSID + last.NumSents - first,
			Tokens:   acc,
		})
		remaining -= acc
		lo = hi
	}
	return specs
}

// ShardCorpus materializes spec's document range as a self-contained corpus
// with shard-local document and sentence ids (both starting at 0). Sentence
// structs are copied so renumbering never touches the parent corpus; token
// and entity slices are shared read-only.
func ShardCorpus(c *Corpus, spec ShardSpec) *Corpus {
	out := &Corpus{}
	for d := spec.LoDoc; d < spec.HiDoc; d++ {
		first, end := c.DocSentences(d)
		sents := make([]nlp.Sentence, end-first)
		copy(sents, c.Sentences[first:end])
		out.AppendDoc(c.Docs[d].Name, sents)
	}
	return out
}

// --- sharded store layout ---
//
// A sharded corpus persists as a tiny manifest store plus one ordinary
// .koko store per shard. The manifest's SHARDS table names each shard file
// (relative to the manifest's directory, so the layout is relocatable) and
// records its ShardSpec; shard files are complete stand-alone stores, so a
// single shard can also be opened directly for debugging.

const shardManifestTable = "SHARDS"

// Store format names recorded in the shard manifest's FORMAT column. The
// empty string (and manifests written before the column existed) means row.
const (
	FormatNameRow   = "row"   // KOKODB1 table store, whole-file decode
	FormatNameBlock = "block" // KOKOBS1 block store, mmap + lazy decode
)

// SaveShardManifest writes the sharded-layout manifest into db: one SHARDS
// row per shard with its file name, store format, and spec. formats may be
// nil (all row) or hold one format name per shard — mixed-format shard sets
// are valid, which is how a durable corpus migrates store formats one
// compaction at a time.
func SaveShardManifest(db *store.DB, files []string, formats []string, specs []ShardSpec) {
	t := db.Create(shardManifestTable,
		store.Column{Name: "shard", Type: store.ColInt},
		store.Column{Name: "file", Type: store.ColString},
		store.Column{Name: "lo_doc", Type: store.ColInt},
		store.Column{Name: "hi_doc", Type: store.ColInt},
		store.Column{Name: "first_sid", Type: store.ColInt},
		store.Column{Name: "num_sents", Type: store.ColInt},
		store.Column{Name: "tokens", Type: store.ColInt},
		store.Column{Name: "format", Type: store.ColString},
	)
	for i, sp := range specs {
		format := FormatNameRow
		if i < len(formats) && formats[i] != "" {
			format = formats[i]
		}
		t.MustInsert(
			store.IntVal(int64(i)), store.StrVal(files[i]),
			store.IntVal(int64(sp.LoDoc)), store.IntVal(int64(sp.HiDoc)),
			store.IntVal(int64(sp.FirstSID)), store.IntVal(int64(sp.NumSents)),
			store.IntVal(int64(sp.Tokens)), store.StrVal(format),
		)
	}
}

const durableMetaTable = "DURABLE"

// SaveDurableMeta marks db as a durable-corpus manifest: gen is the shard
// set's generation (bumped by every crash-safe compaction swap) and applied
// is the highest WAL sequence already folded into the shard files — replay
// skips records at or below it.
func SaveDurableMeta(db *store.DB, gen, applied uint64) {
	t := db.Create(durableMetaTable,
		store.Column{Name: "generation", Type: store.ColInt},
		store.Column{Name: "wal_applied", Type: store.ColInt},
	)
	t.MustInsert(store.IntVal(int64(gen)), store.IntVal(int64(applied)))
}

// LoadDurableMeta reads back the generation and applied WAL sequence
// written by SaveDurableMeta.
func LoadDurableMeta(db *store.DB) (gen, applied uint64, err error) {
	t := db.Table(durableMetaTable)
	if t == nil {
		return 0, 0, fmt.Errorf("index: no %s table (not a durable manifest)", durableMetaTable)
	}
	found := false
	t.Scan(func(rid int, row []store.Value) bool {
		gen, applied = uint64(row[0].I), uint64(row[1].I)
		found = true
		return false
	})
	if !found {
		return 0, 0, fmt.Errorf("index: %s table is empty", durableMetaTable)
	}
	return gen, applied, nil
}

// IsShardManifest reports whether db is a sharded-layout manifest rather
// than a plain single-corpus store.
func IsShardManifest(db *store.DB) bool {
	return db.Table(shardManifestTable) != nil
}

// LoadShardManifest reads back the shard file names, store formats, and
// specs written by SaveShardManifest, in shard order. Manifests from before
// the FORMAT column report every shard as row format.
func LoadShardManifest(db *store.DB) ([]string, []string, []ShardSpec, error) {
	t := db.Table(shardManifestTable)
	if t == nil {
		return nil, nil, nil, fmt.Errorf("index: no %s table (not a shard manifest)", shardManifestTable)
	}
	var files, formats []string
	var specs []ShardSpec
	prev := -1
	ok := true
	t.Scan(func(rid int, row []store.Value) bool {
		if int(row[0].I) != prev+1 {
			ok = false
			return false
		}
		prev++
		files = append(files, row[1].S)
		format := FormatNameRow
		if len(row) > 7 && row[7].S != "" {
			format = row[7].S
		}
		formats = append(formats, format)
		specs = append(specs, ShardSpec{
			LoDoc: int(row[2].I), HiDoc: int(row[3].I),
			FirstSID: int(row[4].I), NumSents: int(row[5].I),
			Tokens: int(row[6].I),
		})
		return true
	})
	if !ok {
		return nil, nil, nil, fmt.Errorf("index: shard manifest rows out of order")
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("index: shard manifest is empty")
	}
	return files, formats, specs, nil
}
