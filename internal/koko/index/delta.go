package index

import (
	"sort"
	"strings"

	"repro/internal/nlp"
)

// Delta is the write side of a mutable corpus: a small corpus-plus-index
// that absorbs newly ingested documents one at a time, LSM-style, while the
// (much larger) base shards stay immutable. AddDocument appends straight
// into the existing posting and hierarchy structures — no rebuild — and
// Seal cuts an immutable read view that concurrent queries evaluate against
// while ingestion keeps appending. A compactor periodically folds the
// sealed prefix into the base shards (see Rebase).
//
// Document and sentence ids are delta-local, starting at 0; readers rebase
// them onto the global corpus by the base's document/sentence counts.
//
// A Delta is not itself safe for concurrent use: callers (koko.Mutable)
// serialize writers and hand readers only sealed views.
type Delta struct {
	c  *Corpus
	ix *Index
}

// NewDelta returns an empty delta.
func NewDelta() *Delta {
	return &Delta{c: &Corpus{}, ix: NewIndex()}
}

// NumDocs returns the number of documents in the delta.
func (d *Delta) NumDocs() int { return d.c.NumDocs() }

// NumSents returns the number of sentences in the delta.
func (d *Delta) NumSents() int { return d.c.NumSentences() }

// AddDocument appends one parsed document, merging its sentences into the
// delta's posting and hierarchy structures incrementally. Because sentence
// ids are assigned in increasing order, appended word postings land already
// (sid, tid)-sorted; only the hierarchy-node and entity lists touched by
// each sentence need their trailing run repaired — O(sentence), never a
// full re-sort. sents is renumbered in place (pass copies if the caller
// retains them, as AppendDoc does for shards).
func (d *Delta) AddDocument(name string, sents []nlp.Sentence) {
	first := len(d.c.Sentences)
	d.c.AppendDoc(name, sents)
	for sid := first; sid < len(d.c.Sentences); sid++ {
		s := &d.c.Sentences[sid]
		d.ix.AddSentence(s)
		d.repairTails(s)
	}
}

// repairTails restores sorted order on the lists AddSentence appended to
// out of order: hierarchy nodes visit tokens in BFS order (not tid order),
// and entity postings follow annotation order (not span order).
func (d *Delta) repairTails(s *nlp.Sentence) {
	sid := int32(s.ID)
	sortHierTails(d.ix.PL, d.ix.plidOf[sid], sid)
	sortHierTails(d.ix.POS, d.ix.posidOf[sid], sid)
	texts := map[string]bool{}
	types := map[string]bool{}
	for _, e := range s.Entities {
		texts[strings.ToLower(e.Text)] = true
		types[e.Type] = true
	}
	for k := range texts {
		sortEntityTail(d.ix.Entity[k], sid)
	}
	for t := range types {
		sortEntityTail(d.ix.ByType[t], sid)
	}
}

// sortHierTails sorts the just-appended run of each hierarchy node touched
// by the sentence (ids holds one node id per token, with repeats).
func sortHierTails(h *Hierarchy, ids []int32, sid int32) {
	seen := map[int32]bool{}
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			h.SortTail(id, sid)
		}
	}
}

// sortEntityTail sorts the trailing run of entries with the given sid by U
// (everything before it has smaller sids and is already ordered).
func sortEntityTail(es []EntityPosting, sid int32) {
	lo := len(es)
	for lo > 0 && es[lo-1].Sid == sid {
		lo--
	}
	if tail := es[lo:]; len(tail) > 1 {
		sort.Slice(tail, func(i, j int) bool { return tail[i].U < tail[j].U })
	}
}

// Seal cuts an immutable read view of the delta: a corpus and index that
// concurrent readers may use freely while AddDocument keeps appending to
// the original. The corpus copy is three slice headers; the index clone
// copies maps and hierarchy skeletons but shares all posting data (see
// Index.Clone for why later appends cannot reach a sealed view).
func (d *Delta) Seal() (*Corpus, *Index) {
	c := &Corpus{
		Sentences: d.c.Sentences,
		Docs:      d.c.Docs,
		DocOfSent: d.c.DocOfSent,
	}
	return c, d.ix.Clone()
}

// DocName returns delta document i's name.
func (d *Delta) DocName(i int) string { return d.c.Docs[i].Name }

// DocSpan returns delta document i's first sentence id and sentence count,
// both delta-local (callers rebase by the base's totals).
func (d *Delta) DocSpan(i int) (firstSID, nSents int) {
	m := d.c.Docs[i]
	return m.FirstSID, m.NumSents
}

// AppendTo copies documents [lo, hi) of the delta onto dst, renumbered to
// dst's global ids (the compactor's merge step).
func (d *Delta) AppendTo(dst *Corpus, lo, hi int) {
	dst.AppendDocsFrom(d.c, lo, hi)
}

// Rebase returns a new delta holding only the documents from index n on,
// renumbered to start at doc 0 — what remains after a compaction folded the
// first n documents into the base. The surviving documents are re-appended
// through AddDocument, rebuilding their (small) index with delta-local ids.
func (d *Delta) Rebase(n int) *Delta {
	out := NewDelta()
	for doc := n; doc < d.c.NumDocs(); doc++ {
		first, end := d.c.DocSentences(doc)
		sents := make([]nlp.Sentence, end-first)
		copy(sents, d.c.Sentences[first:end])
		out.AddDocument(d.c.Docs[doc].Name, sents)
	}
	return out
}
