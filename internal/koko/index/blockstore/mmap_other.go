//go:build !unix

package blockstore

import (
	"io"
	"os"
)

// Fallback for platforms without syscall.Mmap: read the whole file into
// memory. Laziness and the cache still apply to *decoded* blocks; only the
// encoded bytes lose the paging benefit.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	b := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), b); err != nil {
		return nil, err
	}
	return b, nil
}

func munmapFile([]byte) error { return nil }
