package blockstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"runtime"
	"sync/atomic"

	"repro/internal/koko/index"
	"repro/internal/nlp"
)

var nextReaderID atomic.Uint64

// Reader is an open block store: the file stays mmap'd, metadata (string
// tables, block directories, hierarchy structure) and the parsed corpus are
// resident, and posting blocks decode lazily through the shared cache on
// first touch. It implements index.PostingSource.
type Reader struct {
	path  string
	id    uint64
	data  []byte // whole mapping
	blob  []byte // encoded-blocks section
	cache *Cache

	closed atomic.Bool

	types   []string
	texts   []string
	words   map[string]listDir
	byText  map[string]listDir
	byType  []listDir
	typeIdx map[string]int
	hiers   [2]hierMeta
	corpus  *index.Corpus

	totalPostings int
}

type hierMeta struct {
	labels      []string
	parents     []int32
	totalTokens int
	nodes       []listDir
}

// IsBlockStore sniffs a file's magic without opening the store.
func IsBlockStore(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var m [8]byte
	if _, err := f.Read(m[:]); err != nil {
		return false
	}
	return string(m[:]) == Magic
}

// Open maps a block store and parses its metadata and corpus. No posting
// block is decoded. The reader shares the process-default cache.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if size < 32 {
		f.Close()
		return nil, fmt.Errorf("blockstore %s: file too small (%d bytes)", path, size)
	}
	data, err := mmapFile(f, size)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("blockstore %s: mmap: %w", path, err)
	}
	r := &Reader{
		path:  path,
		id:    nextReaderID.Add(1),
		data:  data,
		cache: DefaultCache(),
	}
	if err := r.parse(); err != nil {
		munmapFile(data)
		return nil, fmt.Errorf("blockstore %s: %w", path, err)
	}
	// Safety net for readers dropped without Close (tests, error paths);
	// the explicit Close path clears the finalizer.
	runtime.SetFinalizer(r, (*Reader).Close)
	return r, nil
}

// Close unmaps the store and drops its cached blocks. The reader must not
// be used afterwards.
func (r *Reader) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	runtime.SetFinalizer(r, nil)
	r.cache.dropReader(r.id)
	data := r.data
	r.data, r.blob = nil, nil
	return munmapFile(data)
}

// Path returns the file the reader is mapped over.
func (r *Reader) Path() string { return r.path }

func (r *Reader) parse() error {
	if string(r.data[:8]) != Magic {
		return fmt.Errorf("bad magic")
	}
	metaLen := binary.LittleEndian.Uint64(r.data[8:])
	corpusLen := binary.LittleEndian.Uint64(r.data[16:])
	blobLen := binary.LittleEndian.Uint64(r.data[24:])
	total := uint64(len(r.data))
	if metaLen > total || corpusLen > total || blobLen > total || 32+metaLen+corpusLen+blobLen != total {
		return fmt.Errorf("section sizes %d+%d+%d inconsistent with file size %d", metaLen, corpusLen, blobLen, total)
	}
	meta := r.data[32 : 32+metaLen]
	corpusSec := r.data[32+metaLen : 32+metaLen+corpusLen]
	r.blob = r.data[32+metaLen+corpusLen:]

	br := byteReader{b: meta}
	var err error
	if r.types, err = readStrings(&br, "type"); err != nil {
		return err
	}
	if r.texts, err = readStrings(&br, "text"); err != nil {
		return err
	}
	r.typeIdx = make(map[string]int, len(r.types))
	for i, t := range r.types {
		r.typeIdx[t] = i
	}
	nWords, err := br.count("word")
	if err != nil {
		return err
	}
	r.words = make(map[string]listDir, nWords)
	for i := 0; i < nWords; i++ {
		w, err := br.str()
		if err != nil {
			return err
		}
		d, err := decodeDir(&br, blobLen)
		if err != nil {
			return err
		}
		r.words[w] = d
		r.totalPostings += d.count
	}
	nKeys, err := br.count("entity key")
	if err != nil {
		return err
	}
	r.byText = make(map[string]listDir, nKeys)
	for i := 0; i < nKeys; i++ {
		k, err := br.str()
		if err != nil {
			return err
		}
		if r.byText[k], err = decodeDir(&br, blobLen); err != nil {
			return err
		}
	}
	nTypes, err := br.count("entity type")
	if err != nil {
		return err
	}
	if nTypes != len(r.types) {
		return fmt.Errorf("by-type directory count %d != type table size %d", nTypes, len(r.types))
	}
	r.byType = make([]listDir, nTypes)
	for i := range r.byType {
		if r.byType[i], err = decodeDir(&br, blobLen); err != nil {
			return err
		}
	}
	for k := range r.hiers {
		if r.hiers[k], err = readHier(&br, blobLen); err != nil {
			return err
		}
	}
	if !br.done() {
		return fmt.Errorf("%d trailing metadata bytes", len(meta)-br.i)
	}
	r.corpus, err = decodeCorpus(corpusSec)
	return err
}

func readStrings(br *byteReader, label string) ([]string, error) {
	n, err := br.count(label)
	if err != nil {
		return nil, err
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = br.str(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func readHier(br *byteReader, blobLen uint64) (hierMeta, error) {
	var h hierMeta
	n, err := br.count("hierarchy node")
	if err != nil {
		return h, err
	}
	if n < 1 {
		return h, fmt.Errorf("hierarchy without super-root")
	}
	h.labels = make([]string, n)
	h.parents = make([]int32, n)
	h.parents[0] = -1
	for id := 1; id < n; id++ {
		if h.labels[id], err = br.str(); err != nil {
			return h, err
		}
		p, err := br.i32()
		if err != nil {
			return h, err
		}
		if int(p) >= id {
			return h, fmt.Errorf("hierarchy node %d has forward parent %d", id, p)
		}
		h.parents[id] = p
	}
	// TotalTokens is a corpus-wide statistic, not an in-section count, so
	// the count() size-bound heuristic does not apply; bound it to int32
	// range instead (it counts real tokens).
	tt, err := br.uvarint()
	if err != nil {
		return h, err
	}
	if tt > math.MaxInt32 {
		return h, fmt.Errorf("hierarchy token count %d overflows int32", tt)
	}
	h.totalTokens = int(tt)
	h.nodes = make([]listDir, n)
	for id := 0; id < n; id++ {
		if h.nodes[id], err = decodeDir(br, blobLen); err != nil {
			return h, err
		}
	}
	return h, nil
}

// decodeCorpus rebuilds the parsed corpus, reconstructing each sentence
// exactly as the row store's LoadSentence does: raw token columns, then
// RecomputeDerived, then entities re-linked with texts re-rendered. Token
// strings alias the section's string table, so repeated words cost one
// allocation per distinct string, not per token.
func decodeCorpus(sec []byte) (*index.Corpus, error) {
	br := byteReader{b: sec}
	strs, err := readStrings(&br, "corpus string")
	if err != nil {
		return nil, err
	}
	lowered := make([]string, len(strs))
	for i, s := range strs {
		lowered[i] = index.LowerASCII(s)
	}
	str := func() (int, error) {
		id, err := br.count("string id")
		if err != nil {
			return 0, err
		}
		if id >= len(strs) {
			return 0, fmt.Errorf("blockstore: string id %d out of range", id)
		}
		return id, nil
	}
	nDocs, err := br.count("doc")
	if err != nil {
		return nil, err
	}
	type docMeta struct {
		name string
		n    int
	}
	docs := make([]docMeta, nDocs)
	for i := range docs {
		if docs[i].name, err = br.str(); err != nil {
			return nil, err
		}
		if docs[i].n, err = br.count("doc sentence"); err != nil {
			return nil, err
		}
	}
	c := &index.Corpus{}
	for _, dm := range docs {
		sents := make([]nlp.Sentence, dm.n)
		for si := range sents {
			s := &sents[si]
			nTok, err := br.count("token")
			if err != nil {
				return nil, err
			}
			s.Tokens = make([]nlp.Token, nTok)
			for t := 0; t < nTok; t++ {
				textID, err := str()
				if err != nil {
					return nil, err
				}
				posID, err := str()
				if err != nil {
					return nil, err
				}
				labelID, err := str()
				if err != nil {
					return nil, err
				}
				head, err := br.count("head")
				if err != nil {
					return nil, err
				}
				if head > nTok {
					return nil, fmt.Errorf("blockstore: head %d out of range", head-1)
				}
				s.Tokens[t] = nlp.Token{
					ID:       t,
					Text:     strs[textID],
					Lower:    lowered[textID],
					POS:      strs[posID],
					Label:    strs[labelID],
					Head:     head - 1,
					EntityID: -1,
				}
			}
			s.RecomputeDerived()
			nEnts, err := br.count("entity")
			if err != nil {
				return nil, err
			}
			for e := 0; e < nEnts; e++ {
				typID, err := str()
				if err != nil {
					return nil, err
				}
				l, err := br.count("entity l")
				if err != nil {
					return nil, err
				}
				span, err := br.count("entity span")
				if err != nil {
					return nil, err
				}
				rr := l + span
				if rr >= nTok {
					return nil, fmt.Errorf("blockstore: entity span [%d,%d] outside sentence", l, rr)
				}
				s.Entities = append(s.Entities, nlp.Entity{Type: strs[typID], L: l, R: rr, Text: s.Text(l, rr)})
				id := len(s.Entities) - 1
				for t := l; t <= rr; t++ {
					s.Tokens[t].EntityID = id
				}
			}
		}
		c.AppendDoc(dm.name, sents)
	}
	if !br.done() {
		return nil, fmt.Errorf("blockstore: %d trailing corpus bytes", len(sec)-br.i)
	}
	return c, nil
}

// Corpus returns the store's parsed corpus (heap-resident).
func (r *Reader) Corpus() *index.Corpus { return r.corpus }

// NewIndex assembles the block-backed Index over this reader: hierarchy
// structure resident, every posting list lazy.
func (r *Reader) NewIndex() *index.Index {
	return index.NewBlockBacked(r, r.hierarchy(0), r.hierarchy(1))
}

func (r *Reader) hierarchy(k int) *index.Hierarchy {
	hm := &r.hiers[k]
	n := len(hm.labels)
	h := &index.Hierarchy{
		Labels:      hm.labels,
		Depths:      make([]int32, n),
		Parents:     hm.parents,
		Children:    make([]map[string]int32, n),
		Postings:    make([][]index.Posting, n),
		TotalTokens: hm.totalTokens,
	}
	h.Depths[0] = -1
	for i := range h.Children {
		h.Children[i] = map[string]int32{}
	}
	for id := 1; id < n; id++ {
		p := hm.parents[id]
		h.Depths[id] = h.Depths[p] + 1
		h.Children[p][hm.labels[id]] = int32(id)
	}
	return h
}

// --- index.PostingSource ---

// blockList adapts one directory to index.PostingList with lazy decode.
type blockList struct {
	r *Reader
	d listDir
}

func (l *blockList) Len() int       { return l.d.count }
func (l *blockList) NumBlocks() int { return len(l.d.blocks) }

func (l *blockList) BlockBounds(i int) (int32, int32) {
	b := &l.d.blocks[i]
	return b.minSid, b.maxSid
}

func (l *blockList) Block(i int) []index.Posting {
	b := l.d.blocks[i]
	ps, err := l.r.cache.getPostings(cacheKey{l.r.id, b.off}, func() ([]index.Posting, error) {
		return l.r.decodePostings(b)
	})
	if err != nil {
		panic(&index.StoreError{Path: l.r.path, Err: err})
	}
	return ps
}

func (r *Reader) decodePostings(b blockDir) ([]index.Posting, error) {
	enc := r.blob[b.off : b.off+uint64(b.encLen)]
	if crc32.Checksum(enc, castagnoli) != b.crc {
		return nil, fmt.Errorf("blockstore: crc mismatch in block at %d", b.off)
	}
	return decodePostingBlock(enc, int(b.n))
}

func (r *Reader) entityBlocks(d listDir) []index.EntityPosting {
	if d.count == 0 {
		return nil
	}
	var out []index.EntityPosting
	for i, b := range d.blocks {
		b := b
		es, err := r.cache.getEntities(cacheKey{r.id, b.off}, func() ([]index.EntityPosting, error) {
			enc := r.blob[b.off : b.off+uint64(b.encLen)]
			if crc32.Checksum(enc, castagnoli) != b.crc {
				return nil, fmt.Errorf("blockstore: crc mismatch in entity block at %d", b.off)
			}
			return decodeEntityBlock(enc, int(b.n), r.types, r.texts)
		})
		if err != nil {
			panic(&index.StoreError{Path: r.path, Err: err})
		}
		if len(d.blocks) == 1 {
			return es
		}
		if i == 0 {
			out = make([]index.EntityPosting, 0, d.count)
		}
		out = append(out, es...)
	}
	return out
}

// WordList implements index.PostingSource.
func (r *Reader) WordList(w string) index.PostingList {
	d, ok := r.words[w]
	if !ok || d.count == 0 {
		return nil
	}
	return &blockList{r: r, d: d}
}

// EntityList implements index.PostingSource.
func (r *Reader) EntityList(text string) []index.EntityPosting {
	return r.entityBlocks(r.byText[text])
}

// TypeNames implements index.PostingSource.
func (r *Reader) TypeNames() []string { return r.types }

// TypeList implements index.PostingSource.
func (r *Reader) TypeList(etype string) []index.EntityPosting {
	i, ok := r.typeIdx[etype]
	if !ok {
		return nil
	}
	return r.entityBlocks(r.byType[i])
}

// NodeList implements index.PostingSource.
func (r *Reader) NodeList(kind index.HierKind, node int32) index.PostingList {
	hm := &r.hiers[kind]
	if node < 0 || int(node) >= len(hm.nodes) || hm.nodes[node].count == 0 {
		return nil
	}
	return &blockList{r: r, d: hm.nodes[node]}
}

// SourceStats implements index.PostingSource.
func (r *Reader) SourceStats() index.SourceStats {
	return index.SourceStats{
		Words:         len(r.words),
		Entities:      len(r.byText),
		TotalPostings: r.totalPostings,
	}
}
