package blockstore

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/koko/index"
)

// genPostings builds n (sid,tid)-sorted postings with sid runs and gaps.
func genPostings(n int, seed int64) []index.Posting {
	rng := rand.New(rand.NewSource(seed))
	out := make([]index.Posting, 0, n)
	sid, tid := int32(rng.Intn(3)), int32(0)
	for len(out) < n {
		if rng.Intn(3) == 0 || tid == 0 {
			tid += int32(1 + rng.Intn(9))
		} else {
			sid += int32(1 + rng.Intn(50))
			tid = int32(1 + rng.Intn(9))
		}
		u := int32(rng.Intn(40))
		out = append(out, index.Posting{
			Sid: sid, Tid: tid, U: u, V: u + int32(rng.Intn(12)), D: int32(rng.Intn(6)),
		})
	}
	return out
}

func TestPostingBlockRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 7, BlockPostings} {
		ps := genPostings(n, int64(n))
		enc := encodePostingBlock(nil, ps)
		got, err := decodePostingBlock(enc, n)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if !reflect.DeepEqual(ps, got) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestEntityBlockRoundTrip(t *testing.T) {
	types := []string{"LOC", "ORG", "PER"}
	texts := []string{"Alice", "Bob", "Paris"}
	typeID := map[string]int{"LOC": 0, "ORG": 1, "PER": 2}
	textID := map[string]int{"Alice": 0, "Bob": 1, "Paris": 2}
	es := []index.EntityPosting{
		{Sid: 0, U: 0, V: 1, Type: "PER", Text: "Alice"},
		{Sid: 0, U: 4, V: 5, Type: "PER", Text: "Bob"},
		{Sid: 3, U: 2, V: 3, Type: "LOC", Text: "Paris"},
	}
	enc := encodeEntityBlock(nil, es, typeID, textID)
	got, err := decodeEntityBlock(enc, len(es), types, texts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(es, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, es)
	}
}

// TestPostingBlockRejectsCorruption: every truncation of a valid encoding,
// trailing garbage, and in-block (sid,tid) duplicates are all rejected.
func TestPostingBlockRejectsCorruption(t *testing.T) {
	ps := genPostings(20, 3)
	enc := encodePostingBlock(nil, ps)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodePostingBlock(enc[:cut], len(ps)); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := decodePostingBlock(append(append([]byte{}, enc...), 0), len(ps)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	dup := encodePostingBlock(nil, []index.Posting{
		{Sid: 1, Tid: 2, U: 0, V: 1}, {Sid: 1, Tid: 2, U: 3, V: 4},
	})
	if _, err := decodePostingBlock(dup, 2); err == nil {
		t.Fatal("duplicate (sid,tid) accepted")
	}
}

func TestEntityBlockRejectsCorruption(t *testing.T) {
	types, texts := []string{"LOC"}, []string{"Paris"}
	es := []index.EntityPosting{{Sid: 1, U: 0, V: 1, Type: "LOC", Text: "Paris"}}
	enc := encodeEntityBlock(nil, es, map[string]int{"LOC": 0}, map[string]int{"Paris": 0})
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeEntityBlock(enc[:cut], 1, types, texts); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	// Dictionary ids out of range: same bytes, smaller tables.
	if _, err := decodeEntityBlock(enc, 1, nil, texts); err == nil {
		t.Fatal("out-of-range type id accepted")
	}
	if _, err := decodeEntityBlock(enc, 1, types, nil); err == nil {
		t.Fatal("out-of-range text id accepted")
	}
}

// FuzzBlockDecode: arbitrary bytes never panic, and anything the decoder
// accepts must re-encode to the identical bytes (varint coding is canonical,
// so accept ⇒ canonical form).
func FuzzBlockDecode(f *testing.F) {
	f.Add(encodePostingBlock(nil, genPostings(5, 1)), 5)
	f.Add(encodePostingBlock(nil, genPostings(BlockPostings, 2)), BlockPostings)
	f.Add([]byte{}, 0)
	f.Add([]byte{0xff, 0xff, 0xff}, 2)
	f.Fuzz(func(t *testing.T, enc []byte, n int) {
		if n < 0 || n > BlockPostings {
			return
		}
		ps, err := decodePostingBlock(enc, n)
		if err == nil {
			if re := encodePostingBlock(nil, ps); !bytes.Equal(re, enc) {
				t.Fatalf("accepted non-canonical encoding: %x -> %x", enc, re)
			}
		}
		types, texts := []string{"A", "B"}, []string{"x", "y", "z"}
		if es, err := decodeEntityBlock(enc, n, types, texts); err == nil {
			typeID := map[string]int{"A": 0, "B": 1}
			textID := map[string]int{"x": 0, "y": 1, "z": 2}
			if re := encodeEntityBlock(nil, es, typeID, textID); !bytes.Equal(re, enc) {
				t.Fatalf("accepted non-canonical entity encoding: %x -> %x", enc, re)
			}
		}
	})
}

// testCorpus parses a small but representative corpus: repeated words (multi
// block sharing), entities, multiple docs.
func testCorpus(t *testing.T) *index.Corpus {
	t.Helper()
	return index.NewCorpus(
		[]string{"a.txt", "b.txt"},
		[]string{
			"Alice met Bob in Paris. Alice Johnson runs the Blue Bottle Cafe. The cafe serves coffee and espresso.",
			"Bob visited the Blue Bottle Cafe in Paris. He liked the espresso. Alice agreed that the coffee was delicious.",
		},
	)
}

func writeTestStore(t *testing.T) (string, *index.Corpus, *index.Index) {
	t.Helper()
	c := testCorpus(t)
	ix := index.Build(c)
	path := filepath.Join(t.TempDir(), "c.koko")
	if err := Write(path, c, ix); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return path, c, ix
}

// TestStoreRoundTrip: a written store reopens with a byte-identical corpus
// and posting lists identical to the heap index it was built from.
func TestStoreRoundTrip(t *testing.T) {
	path, c, ix := writeTestStore(t)
	if !IsBlockStore(path) {
		t.Fatal("IsBlockStore = false on a block store")
	}
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()

	rc := r.Corpus()
	if rc.NumDocs() != c.NumDocs() || rc.NumSentences() != c.NumSentences() {
		t.Fatalf("corpus shape %d/%d, want %d/%d", rc.NumDocs(), rc.NumSentences(), c.NumDocs(), c.NumSentences())
	}
	for i := range c.Sentences {
		want, got := &c.Sentences[i], &rc.Sentences[i]
		if want.String() != got.String() {
			t.Fatalf("sentence %d text differs:\n got %q\nwant %q", i, got.String(), want.String())
		}
		if !reflect.DeepEqual(want.Tokens, got.Tokens) {
			t.Fatalf("sentence %d tokens differ", i)
		}
		if !reflect.DeepEqual(want.Entities, got.Entities) {
			t.Fatalf("sentence %d entities differ:\n got %+v\nwant %+v", i, got.Entities, want.Entities)
		}
	}

	bix := r.NewIndex()
	words := make([]string, 0, len(ix.Word))
	for w := range ix.Word {
		words = append(words, w)
	}
	sort.Strings(words)
	for _, w := range words {
		want := ix.LookupWord(w)
		got := bix.LookupWord(w)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("word %q postings differ:\n got %+v\nwant %+v", w, got, want)
		}
	}
	for text := range ix.Entity {
		if want, got := ix.LookupEntityText(text), bix.LookupEntityText(text); !reflect.DeepEqual(want, got) {
			t.Fatalf("entity %q postings differ", text)
		}
	}
	for _, typ := range []string{"PERSON", "GPE", "ORG", "LOC"} {
		if want, got := ix.EntitiesOfType(typ), bix.EntitiesOfType(typ); !reflect.DeepEqual(want, got) {
			t.Fatalf("type %q entities differ:\n got %+v\nwant %+v", typ, got, want)
		}
	}
	for _, p := range []index.Path{
		{{Label: "ROOT"}},
		{{Label: "ROOT"}, {Label: "nsubj"}},
		{{Label: "*"}, {Desc: true, Label: "dobj"}},
	} {
		if want, got := ix.PL.Lookup(p), bix.PL.Lookup(p); !reflect.DeepEqual(want, got) {
			t.Fatalf("PL %v postings differ", p)
		}
	}
	ws, bs := ix.Stats(), bix.Stats()
	if ws != bs {
		t.Fatalf("stats differ:\n got %+v\nwant %+v", bs, ws)
	}
}

// TestStoreRejectsCorruptMeta: header/meta damage fails at Open; blob damage
// fails at first block touch with a *index.StoreError panic.
func TestStoreRejectsCorruption(t *testing.T) {
	path, _, ix := writeTestStore(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncations of the file must never open successfully.
	for _, cut := range []int{0, 4, len(raw) / 2, len(raw) - 1} {
		p2 := filepath.Join(t.TempDir(), "trunc.koko")
		if err := os.WriteFile(p2, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := Open(p2); err == nil {
			r.Close()
			t.Fatalf("truncated store (%d bytes) opened", cut)
		}
	}

	// Flip the blob's first byte (the first word list's first block; word
	// lists are written first): Open succeeds — blocks are lazy — but the
	// CRC check turns the first touch into a StoreError.
	metaLen := binary.LittleEndian.Uint64(raw[8:])
	corpusLen := binary.LittleEndian.Uint64(raw[16:])
	blobStart := 32 + metaLen + corpusLen
	bad := append([]byte{}, raw...)
	bad[blobStart] ^= 0xff
	p3 := filepath.Join(t.TempDir(), "blob.koko")
	if err := os.WriteFile(p3, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(p3)
	if err != nil {
		t.Fatalf("Open with corrupt blob: %v (want lazy failure)", err)
	}
	defer r.Close()
	bix := r.NewIndex()
	caught := 0
	for w := range ix.Word {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(*index.StoreError); !ok {
						t.Fatalf("panic of type %T, want *index.StoreError", rec)
					}
					caught++
				}
			}()
			bix.LookupWord(w)
		}()
	}
	if caught == 0 {
		t.Fatal("no word lookup hit the corrupted block")
	}
}

// TestCacheBudget: decoded residency stays near the budget and evictions
// happen once the working set exceeds it.
func TestCacheBudget(t *testing.T) {
	path, _, ix := writeTestStore(t)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	const budget = 4 << 10
	r.cache = NewCache(budget)
	bix := r.NewIndex()
	for pass := 0; pass < 3; pass++ {
		for w := range ix.Word {
			bix.LookupWord(w)
		}
	}
	st := r.cache.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget: %+v", budget, st)
	}
	// CLOCK stops sweeping after a bounded number of steps, so residency may
	// overshoot, but only by a block or two — not the whole store.
	if st.UsedBytes > 4*budget {
		t.Fatalf("resident %d bytes far exceeds budget %d", st.UsedBytes, budget)
	}
	if st.Hits == 0 || st.Misses == 0 || st.Decodes == 0 {
		t.Fatalf("counters not moving: %+v", st)
	}
}

// TestCacheSingleflight: concurrent first touches of one block decode once.
func TestCacheSingleflight(t *testing.T) {
	path, _, _ := writeTestStore(t)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.cache = NewCache(0) // unbounded
	l := r.WordList("the")
	if l == nil {
		t.Fatal(`word "the" missing from test store`)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < l.NumBlocks(); i++ {
				l.Block(i)
			}
		}()
	}
	wg.Wait()
	if st := r.cache.Stats(); st.Decodes != int64(l.NumBlocks()) {
		t.Fatalf("decodes = %d, want %d (singleflight)", st.Decodes, l.NumBlocks())
	}
}

// TestIsBlockStore: row stores and junk are not misdetected.
func TestIsBlockStoreNegative(t *testing.T) {
	dir := t.TempDir()
	row := filepath.Join(dir, "row.koko")
	if err := os.WriteFile(row, []byte("KOKODB1\nstuff"), 0o644); err != nil {
		t.Fatal(err)
	}
	if IsBlockStore(row) {
		t.Fatal("row store misdetected as block store")
	}
	if IsBlockStore(filepath.Join(dir, "missing.koko")) {
		t.Fatal("missing file detected as block store")
	}
}
