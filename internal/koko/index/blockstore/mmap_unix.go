//go:build unix

package blockstore

import (
	"os"
	"syscall"
)

// mmapFile maps f read-only. The mapping stays valid after f is closed and
// after the file is unlinked (the compactor removes obsolete shard files
// while readers may still hold them), per POSIX mmap semantics.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
