package blockstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"repro/internal/koko/index"
)

// Write serializes a heap-resident corpus + index into the block format at
// path. The output is deterministic: dictionary and list order is sorted,
// so two writes of the same engine produce identical bytes.
func Write(path string, c *index.Corpus, ix *index.Index) error {
	if ix.Source() != nil {
		return fmt.Errorf("blockstore: index is already block-backed; rebuild a heap index from the corpus to re-save")
	}
	var blob []byte
	appendList := func(ps []index.Posting) listDir {
		d := listDir{count: len(ps)}
		for i := 0; i < len(ps); i += BlockPostings {
			j := min(i+BlockPostings, len(ps))
			chunk := ps[i:j]
			start := len(blob)
			blob = encodePostingBlock(blob, chunk)
			enc := blob[start:]
			d.blocks = append(d.blocks, blockDir{
				off: uint64(start), encLen: uint32(len(enc)), n: uint32(len(chunk)),
				minSid: chunk[0].Sid, maxSid: chunk[len(chunk)-1].Sid,
				crc: crc32.Checksum(enc, castagnoli),
			})
		}
		return d
	}

	// Entity dictionaries: sorted type names and distinct original texts.
	types := make([]string, 0, len(ix.ByType))
	for t := range ix.ByType {
		types = append(types, t)
	}
	sort.Strings(types)
	typeID := make(map[string]int, len(types))
	for i, t := range types {
		typeID[t] = i
	}
	textSet := map[string]bool{}
	for _, es := range ix.ByType {
		for _, e := range es {
			textSet[e.Text] = true
		}
	}
	texts := make([]string, 0, len(textSet))
	for t := range textSet {
		texts = append(texts, t)
	}
	sort.Strings(texts)
	textID := make(map[string]int, len(texts))
	for i, t := range texts {
		textID[t] = i
	}
	appendEList := func(es []index.EntityPosting) listDir {
		d := listDir{count: len(es)}
		for i := 0; i < len(es); i += BlockPostings {
			j := min(i+BlockPostings, len(es))
			chunk := es[i:j]
			start := len(blob)
			blob = encodeEntityBlock(blob, chunk, typeID, textID)
			enc := blob[start:]
			d.blocks = append(d.blocks, blockDir{
				off: uint64(start), encLen: uint32(len(enc)), n: uint32(len(chunk)),
				minSid: chunk[0].Sid, maxSid: chunk[len(chunk)-1].Sid,
				crc: crc32.Checksum(enc, castagnoli),
			})
		}
		return d
	}

	mw := &byteWriter{}
	mw.uvarint(uint64(len(types)))
	for _, t := range types {
		mw.str(t)
	}
	mw.uvarint(uint64(len(texts)))
	for _, t := range texts {
		mw.str(t)
	}

	words := make([]string, 0, len(ix.Word))
	for w := range ix.Word {
		words = append(words, w)
	}
	sort.Strings(words)
	mw.uvarint(uint64(len(words)))
	for _, w := range words {
		mw.str(w)
		encodeDir(mw, appendList(ix.Word[w]))
	}

	keys := make([]string, 0, len(ix.Entity))
	for k := range ix.Entity {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	mw.uvarint(uint64(len(keys)))
	for _, k := range keys {
		mw.str(k)
		encodeDir(mw, appendEList(ix.Entity[k]))
	}

	// By-type directories ride the type table's order; no keys repeated.
	mw.uvarint(uint64(len(types)))
	for _, t := range types {
		encodeDir(mw, appendEList(ix.ByType[t]))
	}

	writeHier := func(h *index.Hierarchy) {
		mw.uvarint(uint64(len(h.Labels)))
		for id := 1; id < len(h.Labels); id++ {
			mw.str(h.Labels[id])
			mw.uvarint(uint64(h.Parents[id]))
		}
		mw.uvarint(uint64(h.TotalTokens))
		for id := 0; id < len(h.Labels); id++ {
			encodeDir(mw, appendList(h.Postings[id]))
		}
	}
	writeHier(ix.PL)
	writeHier(ix.POS)

	corpus := encodeCorpus(c)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var hdr [8 + 24]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(mw.b)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(corpus)))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(blob)))
	for _, part := range [][]byte{hdr[:], mw.b, corpus, blob} {
		if _, err := bw.Write(part); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// encodeCorpus serializes the parsed corpus: a string table over token
// text/POS/label and entity types, then documents and sentences. Only what
// LoadSentence reads from the row store is kept (text, pos, label, head,
// entity spans); derived geometry is recomputed at load so both formats
// reconstruct identical sentences.
func encodeCorpus(c *index.Corpus) []byte {
	strID := map[string]int{}
	var strs []string
	intern := func(s string) int {
		if id, ok := strID[s]; ok {
			return id
		}
		id := len(strs)
		strID[s] = id
		strs = append(strs, s)
		return id
	}
	// Intern in a deterministic first-seen order over the corpus walk.
	type encTok struct{ text, pos, label, head int }
	type encEnt struct{ typ, l, r int }
	type encSent struct {
		toks []encTok
		ents []encEnt
	}
	sents := make([]encSent, len(c.Sentences))
	for sid := range c.Sentences {
		s := &c.Sentences[sid]
		es := &sents[sid]
		es.toks = make([]encTok, len(s.Tokens))
		for i := range s.Tokens {
			tok := &s.Tokens[i]
			es.toks[i] = encTok{intern(tok.Text), intern(tok.POS), intern(tok.Label), tok.Head + 1}
			// Record each entity once, at its first token — the same filter
			// and order the row store's LoadSentence reproduces.
			if e := s.EntityAt(i); e != nil && e.L == i {
				es.ents = append(es.ents, encEnt{intern(e.Type), e.L, e.R})
			}
		}
	}
	w := &byteWriter{}
	w.uvarint(uint64(len(strs)))
	for _, s := range strs {
		w.str(s)
	}
	w.uvarint(uint64(len(c.Docs)))
	for _, d := range c.Docs {
		w.str(d.Name)
		w.uvarint(uint64(d.NumSents))
	}
	for i := range sents {
		s := &sents[i]
		w.uvarint(uint64(len(s.toks)))
		for _, t := range s.toks {
			w.uvarint(uint64(t.text))
			w.uvarint(uint64(t.pos))
			w.uvarint(uint64(t.label))
			w.uvarint(uint64(t.head))
		}
		w.uvarint(uint64(len(s.ents)))
		for _, e := range s.ents {
			w.uvarint(uint64(e.typ))
			w.uvarint(uint64(e.l))
			w.uvarint(uint64(e.r - e.l))
		}
	}
	return w.b
}
