// Package blockstore implements the block-oriented on-disk store format
// (format "block", magic KOKOBS1): posting lists, entity lists, and
// hierarchy-node lists laid out as sorted fixed-size blocks, delta + varint
// encoded, each with a CRC and min/max sentence id recorded in a directory.
// A reader mmaps the file and decodes blocks lazily, on first touch, into a
// shared budgeted cache — so opening a store costs metadata + corpus only,
// and resident posting memory is bounded by the cache budget rather than
// corpus size.
//
// File layout:
//
//	"KOKOBS1\n"                      8-byte magic
//	metaLen, corpusLen, blobLen      3 × uint64 LE
//	meta                             dictionaries + block directories
//	corpus                           parsed sentences (custom codec)
//	blob                             concatenated encoded blocks
//
// Everything in meta and corpus is varint-coded; the blob is addressed by
// (offset, encLen) pairs from the directories.
package blockstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/koko/index"
)

// Magic identifies a block-format store file (same length as the row store's
// KOKODB1 magic, so an 8-byte sniff distinguishes the two).
const Magic = "KOKOBS1\n"

// BlockPostings is the target posting count per block. 256 postings ≈ 1–2 KB
// encoded; small enough that a point lookup decodes little, large enough
// that sequential scans amortize the per-block directory entry.
const BlockPostings = 256

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// blockDir is one block's directory entry: where its encoded bytes live in
// the blob, how many entries it holds, its sentence-id bounds (for
// skip-scans), and the CRC of its encoded bytes.
type blockDir struct {
	off    uint64
	encLen uint32
	n      uint32
	minSid int32
	maxSid int32
	crc    uint32
}

// listDir is one posting (or entity) list's directory: total count plus its
// blocks in (sid, tid) order.
type listDir struct {
	count  int
	blocks []blockDir
}

// --- varint primitives ---

type byteReader struct {
	b []byte
	i int
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.i:])
	if n <= 0 {
		return 0, fmt.Errorf("blockstore: truncated varint at %d", r.i)
	}
	r.i += n
	return v, nil
}

func (r *byteReader) u32() (uint32, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxUint32 {
		return 0, fmt.Errorf("blockstore: value %d overflows uint32", v)
	}
	return uint32(v), nil
}

func (r *byteReader) i32() (int32, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("blockstore: value %d overflows int32", v)
	}
	return int32(v), nil
}

func (r *byteReader) count(label string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	// Any real count fits comfortably; the bound rejects corrupt lengths
	// before they turn into giant allocations.
	if v > uint64(len(r.b)) {
		return 0, fmt.Errorf("blockstore: %s count %d exceeds section size %d", label, v, len(r.b))
	}
	return int(v), nil
}

func (r *byteReader) str() (string, error) {
	n, err := r.count("string")
	if err != nil {
		return "", err
	}
	if r.i+n > len(r.b) {
		return "", fmt.Errorf("blockstore: truncated string at %d", r.i)
	}
	s := string(r.b[r.i : r.i+n])
	r.i += n
	return s, nil
}

func (r *byteReader) done() bool { return r.i >= len(r.b) }

type byteWriter struct {
	b   []byte
	tmp [binary.MaxVarintLen64]byte
}

func (w *byteWriter) uvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.b = append(w.b, w.tmp[:n]...)
}

func (w *byteWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// --- posting block codec ---

// encodePostingBlock appends the delta+varint encoding of one (sid,tid)-
// sorted block to dst and returns the extended slice. Layout: first posting
// as (sid, tid), each subsequent as (dsid, tid') where tid' is a tid delta
// when dsid == 0 and an absolute tid otherwise; every posting then carries
// (u, v-u, d).
func encodePostingBlock(dst []byte, ps []index.Posting) []byte {
	w := byteWriter{b: dst}
	prevSid, prevTid := int32(-1), int32(0)
	for k, p := range ps {
		if k == 0 {
			w.uvarint(uint64(p.Sid))
			w.uvarint(uint64(p.Tid))
		} else if p.Sid == prevSid {
			w.uvarint(0)
			w.uvarint(uint64(p.Tid - prevTid))
		} else {
			w.uvarint(uint64(p.Sid - prevSid))
			w.uvarint(uint64(p.Tid))
		}
		prevSid, prevTid = p.Sid, p.Tid
		w.uvarint(uint64(p.U))
		w.uvarint(uint64(p.V - p.U))
		w.uvarint(uint64(p.D))
	}
	return w.b
}

// decodePostingBlock decodes one encoded block. It rejects truncated input,
// trailing garbage, non-monotonic (sid, tid) order, and values outside
// int32 range — anything CRC-valid but structurally impossible.
func decodePostingBlock(enc []byte, n int) ([]index.Posting, error) {
	r := byteReader{b: enc}
	out := make([]index.Posting, 0, n)
	prevSid, prevTid := int32(-1), int32(0)
	for k := 0; k < n; k++ {
		var sid, tid int32
		if k == 0 {
			var err error
			if sid, err = r.i32(); err != nil {
				return nil, err
			}
			if tid, err = r.i32(); err != nil {
				return nil, err
			}
		} else {
			dsid, err := r.i32()
			if err != nil {
				return nil, err
			}
			t, err := r.i32()
			if err != nil {
				return nil, err
			}
			if dsid == 0 {
				if t == 0 {
					return nil, fmt.Errorf("blockstore: duplicate (sid,tid) at posting %d", k)
				}
				sid, tid = prevSid, prevTid+t
			} else {
				sid, tid = prevSid+dsid, t
			}
			if sid < prevSid {
				return nil, fmt.Errorf("blockstore: sid overflow at posting %d", k)
			}
		}
		if tid < 0 {
			return nil, fmt.Errorf("blockstore: tid overflow at posting %d", k)
		}
		prevSid, prevTid = sid, tid
		u, err := r.i32()
		if err != nil {
			return nil, err
		}
		dv, err := r.i32()
		if err != nil {
			return nil, err
		}
		d, err := r.i32()
		if err != nil {
			return nil, err
		}
		if u > math.MaxInt32-dv {
			return nil, fmt.Errorf("blockstore: interval overflow at posting %d", k)
		}
		out = append(out, index.Posting{Sid: sid, Tid: tid, U: u, V: u + dv, D: d})
	}
	if !r.done() {
		return nil, fmt.Errorf("blockstore: %d trailing bytes after %d postings", len(enc)-r.i, n)
	}
	return out, nil
}

// --- entity block codec ---

// encodeEntityBlock appends one (sid,u)-sorted entity block. Type and text
// are dictionary references into the meta string tables.
func encodeEntityBlock(dst []byte, es []index.EntityPosting, typeID, textID map[string]int) []byte {
	w := byteWriter{b: dst}
	prevSid, prevU := int32(-1), int32(0)
	for k, e := range es {
		if k == 0 {
			w.uvarint(uint64(e.Sid))
			w.uvarint(uint64(e.U))
		} else if e.Sid == prevSid {
			w.uvarint(0)
			w.uvarint(uint64(e.U - prevU))
		} else {
			w.uvarint(uint64(e.Sid - prevSid))
			w.uvarint(uint64(e.U))
		}
		prevSid, prevU = e.Sid, e.U
		w.uvarint(uint64(e.V - e.U))
		w.uvarint(uint64(typeID[e.Type]))
		w.uvarint(uint64(textID[e.Text]))
	}
	return w.b
}

// decodeEntityBlock decodes one entity block, resolving dictionary ids
// against the shared tables (so decoded postings alias table strings — one
// copy per store, not per posting).
func decodeEntityBlock(enc []byte, n int, types, texts []string) ([]index.EntityPosting, error) {
	r := byteReader{b: enc}
	out := make([]index.EntityPosting, 0, n)
	prevSid, prevU := int32(-1), int32(0)
	for k := 0; k < n; k++ {
		var sid, u int32
		if k == 0 {
			var err error
			if sid, err = r.i32(); err != nil {
				return nil, err
			}
			if u, err = r.i32(); err != nil {
				return nil, err
			}
		} else {
			dsid, err := r.i32()
			if err != nil {
				return nil, err
			}
			x, err := r.i32()
			if err != nil {
				return nil, err
			}
			if dsid == 0 {
				sid, u = prevSid, prevU+x
			} else {
				sid, u = prevSid+dsid, x
			}
			if sid < prevSid || u < 0 {
				return nil, fmt.Errorf("blockstore: entity order overflow at %d", k)
			}
		}
		prevSid, prevU = sid, u
		dv, err := r.i32()
		if err != nil {
			return nil, err
		}
		ty, err := r.count("type id")
		if err != nil {
			return nil, err
		}
		tx, err := r.count("text id")
		if err != nil {
			return nil, err
		}
		if ty >= len(types) {
			return nil, fmt.Errorf("blockstore: type id %d out of range", ty)
		}
		if tx >= len(texts) {
			return nil, fmt.Errorf("blockstore: text id %d out of range", tx)
		}
		if u > math.MaxInt32-dv {
			return nil, fmt.Errorf("blockstore: entity interval overflow at %d", k)
		}
		out = append(out, index.EntityPosting{Sid: sid, U: u, V: u + dv, Type: types[ty], Text: texts[tx]})
	}
	if !r.done() {
		return nil, fmt.Errorf("blockstore: %d trailing bytes after %d entities", len(enc)-r.i, n)
	}
	return out, nil
}

// --- directory codec ---

func encodeDir(w *byteWriter, d listDir) {
	w.uvarint(uint64(d.count))
	w.uvarint(uint64(len(d.blocks)))
	for _, b := range d.blocks {
		w.uvarint(b.off)
		w.uvarint(uint64(b.encLen))
		w.uvarint(uint64(b.n))
		w.uvarint(uint64(b.minSid))
		w.uvarint(uint64(b.maxSid))
		w.uvarint(uint64(b.crc))
	}
}

func decodeDir(r *byteReader, blobLen uint64) (listDir, error) {
	var d listDir
	count, err := r.count("list")
	if err != nil {
		return d, err
	}
	nb, err := r.count("block")
	if err != nil {
		return d, err
	}
	d.count = count
	d.blocks = make([]blockDir, nb)
	for i := range d.blocks {
		b := &d.blocks[i]
		if b.off, err = r.uvarint(); err != nil {
			return d, err
		}
		if b.encLen, err = r.u32(); err != nil {
			return d, err
		}
		if b.n, err = r.u32(); err != nil {
			return d, err
		}
		if b.minSid, err = r.i32(); err != nil {
			return d, err
		}
		if b.maxSid, err = r.i32(); err != nil {
			return d, err
		}
		if b.crc, err = r.u32(); err != nil {
			return d, err
		}
		if b.off+uint64(b.encLen) > blobLen {
			return d, fmt.Errorf("blockstore: block [%d,+%d) outside blob of %d bytes", b.off, b.encLen, blobLen)
		}
	}
	return d, nil
}
