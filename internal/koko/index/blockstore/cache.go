package blockstore

import (
	"sync"
	"unsafe"

	"repro/internal/koko/index"
)

// Cache is the shared budgeted block cache: every open block store decodes
// through one cache (by default the process-global DefaultCache), so total
// decoded-posting residency is bounded by one budget regardless of how many
// corpora and shards a node serves. Eviction is CLOCK (one reference bit per
// entry, second-chance sweep); concurrent decodes of the same block collapse
// into one (singleflight) with waiters sharing the result.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[cacheKey]*cacheEntry
	ring    []*cacheEntry
	hand    int

	hits, misses, decodes, evictions int64
}

type cacheKey struct {
	rid uint64 // reader identity
	off uint64 // block offset within the reader's blob
}

type cacheEntry struct {
	key   cacheKey
	ps    []index.Posting
	es    []index.EntityPosting
	size  int64
	ref   bool
	done  bool
	err   error
	ready chan struct{}
}

// NewCache returns a cache bounded to budget bytes of decoded blocks.
// budget <= 0 means unbounded.
func NewCache(budget int64) *Cache {
	return &Cache{budget: budget, entries: map[cacheKey]*cacheEntry{}}
}

// SetBudget adjusts the byte budget and evicts down to it if shrinking.
func (c *Cache) SetBudget(budget int64) {
	c.mu.Lock()
	c.budget = budget
	c.evictLocked()
	c.mu.Unlock()
}

// CacheStats is a point-in-time snapshot of cache residency and traffic.
type CacheStats struct {
	BudgetBytes int64
	UsedBytes   int64
	Entries     int
	Hits        int64
	Misses      int64
	Decodes     int64
	Evictions   int64
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		BudgetBytes: c.budget,
		UsedBytes:   c.used,
		Entries:     len(c.ring),
		Hits:        c.hits,
		Misses:      c.misses,
		Decodes:     c.decodes,
		Evictions:   c.evictions,
	}
}

const (
	postingBytes = int64(unsafe.Sizeof(index.Posting{}))
	entityBytes  = int64(unsafe.Sizeof(index.EntityPosting{}))
	entryBytes   = int64(unsafe.Sizeof(cacheEntry{})) + 64 // entry + map/ring overhead
)

// getPostings returns the decoded posting block for key, decoding via load
// on a miss. Exactly one goroutine runs load per in-flight key; the rest
// wait on the same entry.
func (c *Cache) getPostings(key cacheKey, load func() ([]index.Posting, error)) ([]index.Posting, error) {
	e, owner := c.claim(key)
	if !owner {
		<-e.ready
		return e.ps, e.err
	}
	ps, err := load()
	c.finish(e, ps, nil, entryBytes+int64(len(ps))*postingBytes, err)
	return ps, err
}

// getEntities is getPostings for entity blocks. Decoded entity postings
// alias the reader's string tables, so only struct bytes are charged.
func (c *Cache) getEntities(key cacheKey, load func() ([]index.EntityPosting, error)) ([]index.EntityPosting, error) {
	e, owner := c.claim(key)
	if !owner {
		<-e.ready
		return e.es, e.err
	}
	es, err := load()
	c.finish(e, nil, es, entryBytes+int64(len(es))*entityBytes, err)
	return es, err
}

// claim finds or creates the entry for key. The second return is true when
// the caller owns the decode; false means the entry is (or will be) ready.
func (c *Cache) claim(key cacheKey) (*cacheEntry, bool) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.done {
			e.ref = true
			c.hits++
			c.mu.Unlock()
			return e, false
		}
		// Decode in flight: wait with everyone else.
		c.mu.Unlock()
		return e, false
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()
	return e, true
}

// finish publishes a decode result (or failure) for an entry claimed by this
// goroutine. Failed decodes are not cached: the entry is removed so a later
// access retries, and every current waiter observes the error.
func (c *Cache) finish(e *cacheEntry, ps []index.Posting, es []index.EntityPosting, size int64, err error) {
	c.mu.Lock()
	if err != nil {
		e.err = err
		delete(c.entries, e.key)
	} else {
		e.ps, e.es, e.size = ps, es, size
		e.done = true
		e.ref = true
		c.used += size
		c.decodes++
		c.ring = append(c.ring, e)
		c.evictLocked()
	}
	close(e.ready)
	c.mu.Unlock()
}

// evictLocked runs the CLOCK hand until usage fits the budget. Entries get
// one second chance via their reference bit; after two full sweeps without
// progress (everything referenced and re-referenced) it stops rather than
// spin — the budget is a target, not a hard wall, and the overshoot is at
// most the working set touched since the last sweep.
func (c *Cache) evictLocked() {
	if c.budget <= 0 {
		return
	}
	steps := 2 * len(c.ring)
	for c.used > c.budget && len(c.ring) > 1 && steps > 0 {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		e := c.ring[c.hand]
		if e.ref {
			e.ref = false
			c.hand++
			steps--
			continue
		}
		delete(c.entries, e.key)
		c.used -= e.size
		c.evictions++
		last := len(c.ring) - 1
		c.ring[c.hand] = c.ring[last]
		c.ring[last] = nil
		c.ring = c.ring[:last]
	}
}

// dropReader evicts every cached block belonging to one reader (called on
// Reader.Close so a closed store's blocks stop charging the budget).
func (c *Cache) dropReader(rid uint64) {
	c.mu.Lock()
	w := 0
	for _, e := range c.ring {
		if e.key.rid == rid {
			delete(c.entries, e.key)
			c.used -= e.size
			continue
		}
		c.ring[w] = e
		w++
	}
	for i := w; i < len(c.ring); i++ {
		c.ring[i] = nil
	}
	c.ring = c.ring[:w]
	c.hand = 0
	c.mu.Unlock()
}

// --- process-global default cache ---

const DefaultBudgetBytes = 256 << 20

var (
	defaultMu     sync.Mutex
	defaultBudget int64 = DefaultBudgetBytes
	defaultCache  *Cache
)

// DefaultCache returns the shared process-wide cache every Reader uses
// unless given its own.
func DefaultCache() *Cache {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultCache == nil {
		defaultCache = NewCache(defaultBudget)
	}
	return defaultCache
}

// SetDefaultBudget sets the shared cache's byte budget (the
// -store-cache-bytes flag). n <= 0 means unbounded.
func SetDefaultBudget(n int64) {
	defaultMu.Lock()
	defaultBudget = n
	c := defaultCache
	defaultMu.Unlock()
	if c != nil {
		c.SetBudget(n)
	}
}

// DefaultStats snapshots the shared cache without forcing its creation.
func DefaultStats() CacheStats {
	defaultMu.Lock()
	c := defaultCache
	b := defaultBudget
	defaultMu.Unlock()
	if c == nil {
		return CacheStats{BudgetBytes: b}
	}
	return c.Stats()
}
