package index

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/nlp"
)

var deltaTexts = []string{
	"Cafe Vita serves smooth espresso daily. Cafe Juanita hired a champion barista.",
	"I ate a chocolate ice cream, which was delicious, and also ate a pie.",
	"Anna ate some delicious cheesecake that she bought at a grocery store.",
	"Cafe Umbria opened a second location. The baristas at Cafe Umbria won a latte art championship.",
	"The neighborhood bakery sells fresh bread and the barista waved.",
}

// copyDocSents extracts document d of src as renumberable sentence copies.
func copyDocSents(src *Corpus, d int) []nlp.Sentence {
	first, end := src.DocSentences(d)
	sents := make([]nlp.Sentence, end-first)
	copy(sents, src.Sentences[first:end])
	return sents
}

// TestDeltaIncrementalMatchesBuild: adding documents one at a time into the
// delta index must leave every posting list, hierarchy node, and token->node
// mapping identical to Build over the same corpus — the invariant that makes
// delta query results byte-identical to a from-scratch rebuild.
func TestDeltaIncrementalMatchesBuild(t *testing.T) {
	full := NewCorpus(nil, deltaTexts)
	want := Build(full)

	d := NewDelta()
	for doc := 0; doc < full.NumDocs(); doc++ {
		d.AddDocument(full.Docs[doc].Name, copyDocSents(full, doc))
	}
	if d.NumDocs() != full.NumDocs() || d.NumSents() != full.NumSentences() {
		t.Fatalf("delta shape %d docs/%d sents, want %d/%d",
			d.NumDocs(), d.NumSents(), full.NumDocs(), full.NumSentences())
	}
	_, got := d.Seal()

	if !reflect.DeepEqual(sortedKeys(want.Word), sortedKeys(got.Word)) {
		t.Fatalf("word vocabularies differ")
	}
	for w, ps := range want.Word {
		if !reflect.DeepEqual(ps, got.Word[w]) {
			t.Fatalf("word %q postings differ:\n got %v\nwant %v", w, got.Word[w], ps)
		}
	}
	for k, es := range want.Entity {
		if !reflect.DeepEqual(es, got.Entity[k]) {
			t.Fatalf("entity %q postings differ", k)
		}
	}
	for typ, es := range want.ByType {
		if !reflect.DeepEqual(es, got.ByType[typ]) {
			t.Fatalf("entity type %q postings differ", typ)
		}
	}
	for _, h := range []struct {
		name       string
		want, got  *Hierarchy
		mapW, mapG map[int32][]int32
	}{
		{"PL", want.PL, got.PL, want.plidOf, got.plidOf},
		{"POS", want.POS, got.POS, want.posidOf, got.posidOf},
	} {
		if !reflect.DeepEqual(h.want.Labels, h.got.Labels) ||
			!reflect.DeepEqual(h.want.Parents, h.got.Parents) {
			t.Fatalf("%s hierarchy skeleton differs", h.name)
		}
		for n := range h.want.Postings {
			if !reflect.DeepEqual(h.want.Postings[n], h.got.Postings[n]) {
				t.Fatalf("%s node %d postings differ:\n got %v\nwant %v",
					h.name, n, h.got.Postings[n], h.want.Postings[n])
			}
		}
		if !reflect.DeepEqual(h.mapW, h.mapG) {
			t.Fatalf("%s token->node map differs", h.name)
		}
	}
}

func sortedKeys(m map[string][]Posting) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestDeltaSealIsolation: a sealed view must be unaffected by later
// appends — counts, lookups, and hierarchy traversals all pinned. Run with
// -race: a reader hammers the sealed view while the writer keeps adding.
func TestDeltaSealIsolation(t *testing.T) {
	full := NewCorpus(nil, deltaTexts)
	d := NewDelta()
	d.AddDocument(full.Docs[0].Name, copyDocSents(full, 0))
	d.AddDocument(full.Docs[1].Name, copyDocSents(full, 1))
	sealedC, sealedIx := d.Seal()

	wantSents := sealedC.NumSentences()
	wantVita := len(sealedIx.LookupWord("cafe"))
	wantPL := len(sealedIx.PL.Lookup(Path{{Desc: true, Label: "*"}}))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if sealedC.NumSentences() != wantSents ||
				len(sealedIx.LookupWord("cafe")) != wantVita ||
				len(sealedIx.PL.Lookup(Path{{Desc: true, Label: "*"}})) != wantPL {
				panic("sealed view changed under reader")
			}
		}
	}()
	for doc := 2; doc < full.NumDocs(); doc++ {
		d.AddDocument(full.Docs[doc].Name, copyDocSents(full, doc))
	}
	close(stop)
	wg.Wait()

	if sealedC.NumSentences() != wantSents || len(sealedIx.LookupWord("cafe")) != wantVita {
		t.Fatalf("sealed view drifted after appends")
	}
	if d.NumDocs() != full.NumDocs() {
		t.Fatalf("delta lost documents: %d", d.NumDocs())
	}
}

// TestDeltaRebase: dropping the compacted prefix renumbers the surviving
// documents to delta-local ids identical to a fresh delta over them.
func TestDeltaRebase(t *testing.T) {
	full := NewCorpus(nil, deltaTexts)
	d := NewDelta()
	for doc := 0; doc < full.NumDocs(); doc++ {
		d.AddDocument(full.Docs[doc].Name, copyDocSents(full, doc))
	}
	got := d.Rebase(3)

	want := NewDelta()
	for doc := 3; doc < full.NumDocs(); doc++ {
		want.AddDocument(full.Docs[doc].Name, copyDocSents(full, doc))
	}
	if got.NumDocs() != want.NumDocs() || got.NumSents() != want.NumSents() {
		t.Fatalf("rebased shape %d/%d, want %d/%d", got.NumDocs(), got.NumSents(), want.NumDocs(), want.NumSents())
	}
	gc, gix := got.Seal()
	wc, wix := want.Seal()
	if !reflect.DeepEqual(gc.Docs, wc.Docs) {
		t.Fatalf("rebased doc metas differ: %v vs %v", gc.Docs, wc.Docs)
	}
	for sid := range wc.Sentences {
		if gc.Sentences[sid].ID != sid {
			t.Fatalf("sentence %d has id %d after rebase", sid, gc.Sentences[sid].ID)
		}
	}
	for w, ps := range wix.Word {
		if !reflect.DeepEqual(ps, gix.Word[w]) {
			t.Fatalf("rebased word %q postings differ", w)
		}
	}
	// AppendTo round-trips the prefix into a plain corpus.
	cut := &Corpus{}
	d.AppendTo(cut, 0, 3)
	if cut.NumDocs() != 3 {
		t.Fatalf("AppendTo copied %d docs", cut.NumDocs())
	}
	for i := 0; i < 3; i++ {
		if cut.Docs[i].Name != full.Docs[i].Name {
			t.Fatalf("AppendTo doc %d name %q, want %q", i, cut.Docs[i].Name, full.Docs[i].Name)
		}
	}
}
