package index

import (
	"sort"

	"repro/internal/nlp"
)

// Hierarchy is a hierarchy index (paper §3.2): the dataguide-style merge of
// all dependency trees over one label alphabet (parse labels for the PL
// index, POS tags for the POS index). Node 0 is a dummy super-root sitting
// above every dependency tree's root, so a single structure covers both the
// PL case (every tree root has label "root") and the POS case (tree roots
// have varying tags).
type Hierarchy struct {
	Labels   []string // node id -> label ("" for the super-root)
	Depths   []int32  // node id -> depth (super-root = -1, tree roots = 0)
	Parents  []int32  // node id -> parent node id (-1 for super-root)
	Children []map[string]int32
	Postings [][]Posting // node id -> posting list

	// NodeSource, when set, supplies node posting lists lazily (the mmap
	// block store) and Postings holds only nils. Mutating operations
	// (AddSentence, SortTail) are never called on a source-backed
	// hierarchy — block-backed indexes are immutable.
	NodeSource func(node int32) PostingList

	// TotalTokens counts the tokens merged in, for the compression stat.
	TotalTokens int
}

// NewHierarchy returns an empty hierarchy with just the super-root.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		Labels:   []string{""},
		Depths:   []int32{-1},
		Parents:  []int32{-1},
		Children: []map[string]int32{{}},
		Postings: [][]Posting{nil},
	}
}

// child returns the child of node with the given label, creating it if
// needed.
func (h *Hierarchy) child(node int32, label string) int32 {
	if id, ok := h.Children[node][label]; ok {
		return id
	}
	id := int32(len(h.Labels))
	h.Labels = append(h.Labels, label)
	h.Depths = append(h.Depths, h.Depths[node]+1)
	h.Parents = append(h.Parents, node)
	h.Children = append(h.Children, map[string]int32{})
	h.Postings = append(h.Postings, nil)
	h.Children[node][label] = id
	return id
}

// AddSentence merges one sentence's dependency tree into the hierarchy.
// labelOf extracts the label alphabet (parse label or POS tag) per token.
// It returns the hierarchy node id assigned to each token (used to fill the
// plid/posid columns of the W table).
func (h *Hierarchy) AddSentence(s *nlp.Sentence, labelOf func(*nlp.Token) string) []int32 {
	n := len(s.Tokens)
	nodeOf := make([]int32, n)
	// Process tokens in BFS order from the dependency root so parents are
	// merged before children.
	order := make([]int, 0, n)
	if r := s.Root(); r >= 0 {
		order = append(order, r)
	}
	for i := 0; i < len(order); i++ {
		order = append(order, s.Children(order[i])...)
	}
	for _, tid := range order {
		tok := &s.Tokens[tid]
		parentNode := int32(0)
		if tok.Head >= 0 {
			parentNode = nodeOf[tok.Head]
		}
		id := h.child(parentNode, labelOf(tok))
		nodeOf[tid] = id
		h.Postings[id] = append(h.Postings[id], Posting{
			Sid: int32(s.ID), Tid: int32(tid),
			U: int32(tok.SubL), V: int32(tok.SubR), D: int32(tok.Depth),
		})
	}
	h.TotalTokens += n
	return nodeOf
}

// NumNodes returns the number of merged nodes (excluding the super-root).
func (h *Hierarchy) NumNodes() int { return len(h.Labels) - 1 }

// CompressionRatio returns the fraction of dependency-tree nodes eliminated
// by merging (the paper reports >99.7% on its corpora).
func (h *Hierarchy) CompressionRatio() float64 {
	if h.TotalTokens == 0 {
		return 0
	}
	return 1 - float64(h.NumNodes())/float64(h.TotalTokens)
}

// PathOf returns the label path of a node from the super-root, excluding the
// super-root itself.
func (h *Hierarchy) PathOf(node int32) []string {
	var rev []string
	for n := node; n > 0; n = h.Parents[n] {
		rev = append(rev, h.Labels[n])
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Step is one step of a root-anchored path pattern: an axis (child or
// descendant) and a label ("*" is a wildcard).
type Step struct {
	Desc  bool // true = "//" (descendant axis), false = "/" (child axis)
	Label string
}

// Path is a root-anchored path pattern.
type Path []Step

// Lookup returns the union of the posting lists of every hierarchy node
// whose root path matches the pattern, fully materialized. Matching uses a
// memoized traversal: state (node, step) is visited at most once, so the
// cost is bounded by O(nodes × steps) regardless of wildcard structure.
func (h *Hierarchy) Lookup(p Path) []Posting {
	return Materialize(h.LookupList(p))
}

// LookupList is Lookup without forced materialization: a pattern matching a
// single hierarchy node returns that node's list as-is — lazy when the
// hierarchy is backed by a block store, so no block decodes until the
// engine's cursors touch it. Only multi-node unions materialize (merged
// output only; input blocks stream through the cache).
func (h *Hierarchy) LookupList(p Path) PostingList {
	if len(p) == 0 {
		return nil
	}
	matched := h.LookupNodes(p)
	lists := make([]PostingList, 0, len(matched))
	for _, m := range matched {
		if l := h.nodeList(m); ListLen(l) > 0 {
			lists = append(lists, l)
		}
	}
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	return SlicePostings(MergeLists(lists))
}

// nodeList returns one node's posting list, lazy when source-backed.
func (h *Hierarchy) nodeList(n int32) PostingList {
	if h.NodeSource != nil {
		return h.NodeSource(n)
	}
	if ps := h.Postings[n]; len(ps) > 0 {
		return SlicePostings(ps)
	}
	return nil
}

// LookupNodes returns the matching node ids (for tests and the closure-table
// translation).
func (h *Hierarchy) LookupNodes(p Path) []int32 {
	type state struct {
		node int32
		step int
	}
	seen := map[state]bool{}
	var matched []int32
	var visit func(node int32, step int)
	visit = func(node int32, step int) {
		st := state{node, step}
		if seen[st] {
			return
		}
		seen[st] = true
		if step == len(p) {
			matched = append(matched, node)
			return
		}
		s := p[step]
		for label, ch := range h.Children[node] {
			if s.Label == "*" || label == s.Label {
				visit(ch, step+1)
			}
			if s.Desc {
				visit(ch, step)
			}
		}
	}
	visit(0, 0)
	sort.Slice(matched, func(i, j int) bool { return matched[i] < matched[j] })
	w := 0
	for i, m := range matched {
		if i == 0 || m != matched[w-1] {
			matched[w] = m
			w++
		}
	}
	return matched[:w]
}

// SortAllPostings sorts every node's posting list; call once after building.
func (h *Hierarchy) SortAllPostings() {
	for i := range h.Postings {
		SortPostings(h.Postings[i])
	}
}

// SortTail restores (sid, tid) order on node's posting list after appending
// sentence sid: everything before the sentence's entries is already sorted
// (smaller sids), so only the trailing run with that sid needs sorting.
// This is the incremental counterpart of SortAllPostings for the delta
// index, where sentences arrive one at a time in sid order.
func (h *Hierarchy) SortTail(node int32, sid int32) {
	ps := h.Postings[node]
	lo := len(ps)
	for lo > 0 && ps[lo-1].Sid == sid {
		lo--
	}
	if tail := ps[lo:]; len(tail) > 1 {
		sort.Slice(tail, func(i, j int) bool { return tail[i].Tid < tail[j].Tid })
	}
}

// Clone returns an immutable read view of the hierarchy. The per-node
// children maps are deep-copied (merging a new sentence mutates them in
// place) and the outer postings slice is fresh (an append rewrites the
// node's slice header); node postings and the label/depth/parent columns
// are shared — further appends only ever add entries beyond the clone's
// recorded lengths.
func (h *Hierarchy) Clone() *Hierarchy {
	out := &Hierarchy{
		Labels:      h.Labels,
		Depths:      h.Depths,
		Parents:     h.Parents,
		Children:    make([]map[string]int32, len(h.Children)),
		Postings:    append([][]Posting(nil), h.Postings...),
		NodeSource:  h.NodeSource,
		TotalTokens: h.TotalTokens,
	}
	for i, m := range h.Children {
		cm := make(map[string]int32, len(m))
		for label, id := range m {
			cm[label] = id
		}
		out.Children[i] = cm
	}
	return out
}
