package index

import (
	"sort"
	"strings"

	"repro/internal/nlp"
)

// Index is KOKO's multi-index over a corpus: word and entity inverted
// indices plus the PL and POS hierarchy indices.
type Index struct {
	Word   map[string][]Posting       // lowercase word -> quintuples
	Entity map[string][]EntityPosting // lowercase entity text -> triples
	ByType map[string][]EntityPosting // entity type -> all mentions
	PL     *Hierarchy                 // parse-label hierarchy
	POS    *Hierarchy                 // POS-tag hierarchy

	// plidOf[sid][tid] / posidOf[sid][tid] are each token's node ids in the
	// hierarchy indices — the W table's plid/posid columns.
	plidOf  map[int32][]int32
	posidOf map[int32][]int32

	// src, when set, supplies all posting data lazily (the mmap block
	// store); the Word/Entity/ByType maps and hierarchy Postings slices are
	// empty and every lookup goes through src. Source-backed indexes are
	// immutable: AddSentence must not be called on them.
	src PostingSource
}

// NewIndex returns an empty multi-index ready for AddSentence.
func NewIndex() *Index {
	return &Index{
		Word:    map[string][]Posting{},
		Entity:  map[string][]EntityPosting{},
		ByType:  map[string][]EntityPosting{},
		PL:      NewHierarchy(),
		POS:     NewHierarchy(),
		plidOf:  map[int32][]int32{},
		posidOf: map[int32][]int32{},
	}
}

// NewBlockBacked assembles an index whose posting data stays in src (blocks
// decoded lazily on lookup). The two hierarchies carry the merged dataguide
// structure (labels, depths, parents, children) but no resident posting
// lists; their lookups route through src as well. plid/posid columns are not
// materialized — PLID/POSID return -1 — which only the heap Save path needs.
func NewBlockBacked(src PostingSource, pl, pos *Hierarchy) *Index {
	pl.NodeSource = func(n int32) PostingList { return src.NodeList(HierPL, n) }
	pos.NodeSource = func(n int32) PostingList { return src.NodeList(HierPOS, n) }
	return &Index{
		Word:    map[string][]Posting{},
		Entity:  map[string][]EntityPosting{},
		ByType:  map[string][]EntityPosting{},
		PL:      pl,
		POS:     pos,
		plidOf:  map[int32][]int32{},
		posidOf: map[int32][]int32{},
		src:     src,
	}
}

// Source returns the lazy posting source backing this index, or nil for a
// heap-resident index.
func (ix *Index) Source() PostingSource { return ix.src }

// Build constructs the multi-index over a corpus. The corpus must already be
// parsed.
func Build(c *Corpus) *Index {
	ix := NewIndex()
	for sid := range c.Sentences {
		ix.AddSentence(&c.Sentences[sid])
	}
	ix.Finish()
	return ix
}

// Clone returns an immutable read view of the index: fresh maps and outer
// slices, shared posting data. Appending further sentences (with strictly
// larger sids) to the original never mutates anything a clone can reach —
// appends either land beyond every cloned slice's length or relocate the
// backing array — so clones serve concurrent readers while the original
// keeps growing. This is the seal operation of the delta index.
func (ix *Index) Clone() *Index {
	out := &Index{
		Word:    make(map[string][]Posting, len(ix.Word)),
		Entity:  make(map[string][]EntityPosting, len(ix.Entity)),
		ByType:  make(map[string][]EntityPosting, len(ix.ByType)),
		PL:      ix.PL.Clone(),
		POS:     ix.POS.Clone(),
		plidOf:  make(map[int32][]int32, len(ix.plidOf)),
		posidOf: make(map[int32][]int32, len(ix.posidOf)),
		src:     ix.src,
	}
	for k, v := range ix.Word {
		out.Word[k] = v
	}
	for k, v := range ix.Entity {
		out.Entity[k] = v
	}
	for k, v := range ix.ByType {
		out.ByType[k] = v
	}
	for k, v := range ix.plidOf {
		out.plidOf[k] = v
	}
	for k, v := range ix.posidOf {
		out.posidOf[k] = v
	}
	return out
}

// AddSentence merges one sentence into all four indices. The sentence's ID
// must be its corpus-global sentence id.
func (ix *Index) AddSentence(s *nlp.Sentence) {
	sid := int32(s.ID)
	for i := range s.Tokens {
		tok := &s.Tokens[i]
		p := Posting{Sid: sid, Tid: int32(i), U: int32(tok.SubL), V: int32(tok.SubR), D: int32(tok.Depth)}
		ix.Word[tok.Lower] = append(ix.Word[tok.Lower], p)
	}
	for _, e := range s.Entities {
		ep := EntityPosting{Sid: sid, U: int32(e.L), V: int32(e.R), Type: e.Type, Text: e.Text}
		key := strings.ToLower(e.Text)
		ix.Entity[key] = append(ix.Entity[key], ep)
		ix.ByType[e.Type] = append(ix.ByType[e.Type], ep)
	}
	ix.plidOf[sid] = ix.PL.AddSentence(s, func(t *nlp.Token) string { return t.Label })
	ix.posidOf[sid] = ix.POS.AddSentence(s, func(t *nlp.Token) string { return t.POS })
}

// Finish sorts all posting lists; call once after the last AddSentence.
func (ix *Index) Finish() {
	for _, ps := range ix.Word {
		SortPostings(ps)
	}
	for _, es := range ix.Entity {
		SortEntityPostings(es)
	}
	for _, es := range ix.ByType {
		SortEntityPostings(es)
	}
	ix.PL.SortAllPostings()
	ix.POS.SortAllPostings()
}

// LookupWord returns the posting list of a word (case-insensitive), fully
// materialized.
func (ix *Index) LookupWord(w string) []Posting {
	if ix.src != nil {
		return Materialize(ix.src.WordList(strings.ToLower(w)))
	}
	return ix.Word[strings.ToLower(w)]
}

// WordList returns the posting list of a word (case-insensitive) without
// forcing materialization: block-backed indexes hand back a lazy list whose
// blocks decode on first touch.
func (ix *Index) WordList(w string) PostingList {
	if ix.src != nil {
		return ix.src.WordList(strings.ToLower(w))
	}
	if ps := ix.Word[strings.ToLower(w)]; len(ps) > 0 {
		return SlicePostings(ps)
	}
	return nil
}

// LookupEntityText returns the mentions of an entity by exact text
// (case-insensitive).
func (ix *Index) LookupEntityText(text string) []EntityPosting {
	if ix.src != nil {
		return ix.src.EntityList(strings.ToLower(text))
	}
	return ix.Entity[strings.ToLower(text)]
}

// EntitiesOfType returns all mentions whose type matches the requested type
// name ("Entity" matches every type; "GPE" aliases Location).
func (ix *Index) EntitiesOfType(want string) []EntityPosting {
	switch want {
	case "", "Entity", "entity", "Str":
		var types []string
		if ix.src != nil {
			types = ix.src.TypeNames()
		} else {
			types = make([]string, 0, len(ix.ByType))
			for t := range ix.ByType {
				types = append(types, t)
			}
			sort.Strings(types)
		}
		var out []EntityPosting
		for _, t := range types {
			out = append(out, ix.typeList(t)...)
		}
		SortEntityPostings(out)
		return out
	case "GPE", "gpe":
		return ix.typeList(nlp.EntLocation)
	}
	return ix.typeList(want)
}

func (ix *Index) typeList(t string) []EntityPosting {
	if ix.src != nil {
		return ix.src.TypeList(t)
	}
	return ix.ByType[t]
}

// PLID returns the PL hierarchy node id of token (sid, tid), or -1.
func (ix *Index) PLID(sid, tid int32) int32 {
	if ids, ok := ix.plidOf[sid]; ok && int(tid) < len(ids) {
		return ids[tid]
	}
	return -1
}

// POSID returns the POS hierarchy node id of token (sid, tid), or -1.
func (ix *Index) POSID(sid, tid int32) int32 {
	if ids, ok := ix.posidOf[sid]; ok && int(tid) < len(ids) {
		return ids[tid]
	}
	return -1
}

// Stats summarizes index shape for reports and tests.
type Stats struct {
	Words          int
	Entities       int
	PLNodes        int
	POSNodes       int
	PLCompression  float64
	POSCompression float64
	TotalPostings  int
}

// Stats returns summary statistics. For block-backed indexes the counts come
// from the store's directory — no posting blocks decode.
func (ix *Index) Stats() Stats {
	st := Stats{
		PLNodes:        ix.PL.NumNodes(),
		POSNodes:       ix.POS.NumNodes(),
		PLCompression:  ix.PL.CompressionRatio(),
		POSCompression: ix.POS.CompressionRatio(),
	}
	if ix.src != nil {
		ss := ix.src.SourceStats()
		st.Words = ss.Words
		st.Entities = ss.Entities
		st.TotalPostings = ss.TotalPostings
		return st
	}
	st.Words = len(ix.Word)
	st.Entities = len(ix.Entity)
	for _, ps := range ix.Word {
		st.TotalPostings += len(ps)
	}
	return st
}
