// Package index implements KOKO's multi-indexing scheme (paper §3):
//
//   - an inverted word index mapping every word to a posting list of
//     quintuples (sid, tid, u–v, depth) — sentence id, token id, first and
//     last token of the token's dependency subtree, and the token's depth in
//     the dependency tree;
//   - an inverted entity index mapping every entity mention to triples
//     (sid, u–v), with type information for typed output variables;
//   - two hierarchy indices — the PL index over parse labels and the POS
//     index over POS tags — built by merging all dependency trees node-wise
//     from the root (a dataguide over dependency structure). Every merged
//     node is identified by its root path and carries a posting list of the
//     tokens that realize that path. By construction the merge eliminates
//     the overwhelming majority of nodes (the paper reports >99.7%), which
//     is what makes the hierarchy index both compact and fast.
//
// The package also defines the Corpus (globally sentence-id'd parsed text)
// and persistence of both corpus and indices into the storage substrate
// using the paper's §6.2.1 relational schemas: W(word,x,y,u,v,d,plid,posid),
// E(entity,type,x,u,v), and closure tables PL/POS(id,label,depth,aid,alabel,
// adepth).
package index
