package engine

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/koko/lang"
	"repro/internal/nlp"
)

// span is a token interval [l, r]; r == l-1 encodes the empty span at
// position l (elastic spans may be empty: ∧ is "zero or more tokens").
type span struct{ l, r int }

func (sp span) empty() bool    { return sp.r < sp.l }
func (sp span) length() int    { return sp.r - sp.l + 1 }
func emptySpanAt(pos int) span { return span{l: pos, r: pos - 1} }

// binding is one value for a variable within a sentence.
type binding struct {
	sp  span
	tid int // token id for node variables, -1 otherwise
}

// assignment is a slot-indexed binding vector: entry v.slot holds variable
// v's binding. Assignments handed to finishTuple are always fully bound
// (deriveAndEmit only emits complete assignments); partially-bound working
// state tracks boundness in a separate bitmask.
type assignment []binding

// bitmask is a variable-count bound set. Queries rarely exceed one word.
type bitmask []uint64

func newBitmask(n int) bitmask   { return make(bitmask, (n+63)/64) }
func (m bitmask) set(i int)      { m[i>>6] |= 1 << (uint(i) & 63) }
func (m bitmask) clear(i int)    { m[i>>6] &^= 1 << (uint(i) & 63) }
func (m bitmask) has(i int) bool { return m[i>>6]&(1<<(uint(i)&63)) != 0 }
func (m bitmask) reset() {
	for i := range m {
		m[i] = 0
	}
}
func (m bitmask) copyFrom(o bitmask) { copy(m, o) }

// gspCost is one skip-plan cost entry (generateSkipPlan scratch): a
// component's variable slot, its position within the horizontal, and its
// estimated binding count.
type gspCost struct {
	slot int
	pos  int
	cost float64
}

// sentEval evaluates the extract clause over one sentence (§4.3: skip plan,
// nested loops, alignment, validation). It is a reusable per-worker scratch:
// all slices below are allocated once per worker, reset per sentence, and
// shared with nothing — Workers>1 runs allocate almost nothing per sentence.
type sentEval struct {
	nq     *normQuery
	rc     *reCache
	gspOff bool
	s      *nlp.Sentence

	skip  []bool      // slot -> skipped by the plan this sentence
	cands [][]binding // slot -> candidate bindings (buffers reused)

	// nodeTids caches the sorted matchPathTokens result per node-variable
	// slot for O(log n) validation of skipped node variables; nodeDone marks
	// which slots are valid for the current sentence.
	nodeTids [][]int32
	nodeDone []bool

	// path-matching scratch (matchPath): the memo table and match bitmap.
	pathSeen    []bool
	pathMatched []bool

	enum []*normVar // enumerable variables this sentence, in loop order

	// plan, when non-nil, orders candidate building and the nested loops by
	// the per-query selectivity plan instead of declaration order. actual
	// accumulates per-slot candidate-list sizes for the plan's
	// estimated-vs-actual report.
	plan   *queryPlan
	actual []int64

	// Emission-order restoration scratch (only used when plan.reordered):
	// workIdx tracks the candidate index behind each working binding,
	// trackIdx arms per-assignment snapshots into outIdx, canonEnum is the
	// declaration-order enumerable list the sort key follows, sortPerm and
	// outScratch are the permutation buffers.
	workIdx    []int32
	trackIdx   bool
	outIdx     []int32
	canonEnum  []*normVar
	sortPerm   []int
	outScratch []binding

	work    assignment // nested-loop working assignment
	workSet bitmask
	full    assignment // derivation scratch
	fullSet bitmask

	alignSp []span // alignSpan tiling scratch
	alignOk []bool

	costs []gspCost // generateSkipPlan scratch

	// outB is the flat emission arena: assignment i is
	// outB[i*numVars : (i+1)*numVars]. Consumed per sentence, reused.
	outB []binding
	nout int
}

// newSentEval builds the reusable scratch for one worker.
func newSentEval(nq *normQuery, rc *reCache, gspOff bool) *sentEval {
	n := len(nq.vars)
	ev := &sentEval{
		nq:       nq,
		rc:       rc,
		gspOff:   gspOff,
		skip:     make([]bool, n),
		cands:    make([][]binding, n),
		nodeTids: make([][]int32, n),
		nodeDone: make([]bool, n),
		enum:     make([]*normVar, 0, n),
		workIdx:  make([]int32, n),
		work:     make(assignment, n),
		workSet:  newBitmask(n),
		full:     make(assignment, n),
		fullSet:  newBitmask(n),
		alignSp:  make([]span, nq.maxComps),
		alignOk:  make([]bool, nq.maxComps),
		costs:    make([]gspCost, 0, nq.maxComps),
	}
	return ev
}

// setPlan installs the per-query evaluation order (nil = written order).
func (ev *sentEval) setPlan(p *queryPlan) {
	ev.plan = p
	if p != nil && ev.actual == nil {
		ev.actual = make([]int64, len(ev.nq.vars))
		ev.canonEnum = make([]*normVar, 0, len(ev.nq.vars))
	}
}

// prepare resets the scratch for sentence sid and generates the skip plan
// (unless GSP is off). cc supplies the DPLI binding estimates; a cursor
// with no data (RunNaive) makes every non-elastic cost 0.
func (ev *sentEval) prepare(s *nlp.Sentence, cc *countCursor, sid int32) {
	ev.s = s
	for i := range ev.skip {
		ev.skip[i] = false
		ev.nodeDone[i] = false
	}
	ev.workSet.reset()
	ev.outB = ev.outB[:0]
	ev.nout = 0
	if !ev.gspOff {
		ev.generateSkipPlan(cc, sid)
	}
}

// extract runs candidate building and the nested loops. It returns the
// number of emitted assignments, which live in the scratch arena (read them
// with out) and stay valid until the next prepare call. With a plan, loops
// run in plan order and the emissions are re-sorted into declaration order,
// so the output sequence is identical either way.
func (ev *sentEval) extract() int {
	if !ev.buildCandidates() {
		return 0
	}
	ev.enum = ev.enum[:0]
	if ev.plan != nil {
		for _, st := range ev.plan.steps {
			if v := ev.nq.vars[st.slot]; ev.isEnumerable(v) {
				ev.enum = append(ev.enum, v)
			}
		}
	} else {
		for _, v := range ev.nq.vars {
			if ev.isEnumerable(v) {
				ev.enum = append(ev.enum, v)
			}
		}
	}
	ev.trackIdx = ev.plan != nil && ev.plan.reordered
	if ev.trackIdx {
		ev.outIdx = ev.outIdx[:0]
		ev.canonEnum = ev.canonEnum[:0]
		for _, v := range ev.nq.vars {
			if ev.isEnumerable(v) {
				ev.canonEnum = append(ev.canonEnum, v)
			}
		}
	}
	ev.enumerate(0)
	if ev.trackIdx && ev.nout > 1 {
		ev.restoreDeclOrder()
	}
	return ev.nout
}

// restoreDeclOrder re-sorts the emission arena into the sequence a
// declaration-order enumeration would have produced: ascending by the
// candidate indices of the enumerable variables taken in declaration order.
// The planned loops emit exactly the same assignment set (each assignment is
// uniquely identified by its candidate indices), so this sort makes planned
// and written-order runs byte-identical.
func (ev *sentEval) restoreDeclOrder() {
	n := len(ev.nq.vars)
	perm := ev.sortPerm[:0]
	for i := 0; i < ev.nout; i++ {
		perm = append(perm, i)
	}
	sort.Slice(perm, func(a, b int) bool {
		ia, ib := perm[a]*n, perm[b]*n
		for _, v := range ev.canonEnum {
			da, db := ev.outIdx[ia+v.slot], ev.outIdx[ib+v.slot]
			if da != db {
				return da < db
			}
		}
		return false
	})
	ev.sortPerm = perm
	need := ev.nout * n
	if cap(ev.outScratch) < need {
		ev.outScratch = make([]binding, need)
	}
	dst := ev.outScratch[:need]
	for di, si := range perm {
		copy(dst[di*n:(di+1)*n], ev.outB[si*n:(si+1)*n])
	}
	ev.outB, ev.outScratch = dst, ev.outB
}

// evalSentence is prepare + extract in one call, for callers that don't
// split phase timing (tests).
func (ev *sentEval) evalSentence(s *nlp.Sentence, cc *countCursor, sid int32) int {
	ev.prepare(s, cc, sid)
	return ev.extract()
}

// out returns emitted assignment i (valid until the next evalSentence).
func (ev *sentEval) out(i int) assignment {
	n := len(ev.nq.vars)
	return assignment(ev.outB[i*n : (i+1)*n])
}

// isEnumerable reports whether a variable gets its own nested loop. Derived
// variables (subtrees, span concatenations) and skipped variables are
// computed from others.
func (ev *sentEval) isEnumerable(v *normVar) bool {
	return v.enumerableKind() && !ev.skip[v.slot]
}

// generateSkipPlan implements Algorithm 2 with one soundness refinement: a
// variable is only skipped when it has BOTH a left and a right neighbor in
// the horizontal condition (boundary variables would leave the span's
// extent undetermined, making alignment ambiguous). The paper's own
// examples (v1, v2 in Example 4.6) skip interior variables only.
func (ev *sentEval) generateSkipPlan(cc *countCursor, sid int32) {
	t := len(ev.s.Tokens)
	for _, h := range ev.nq.horizontals {
		costs := ev.costs[:0]
		for pos, cs := range h.compSlots {
			v := ev.nq.vars[cs]
			var c float64
			switch v.kind {
			case vkElastic:
				c = float64(t) * float64(t+1) / 2
			case vkSubtree:
				if cc != nil {
					c = float64(cc.at(v.baseSlot, sid))
				}
			default:
				if cc != nil {
					c = float64(cc.at(cs, sid))
				}
			}
			costs = append(costs, gspCost{slot: cs, pos: pos, cost: c})
		}
		// Insertion sort by (cost desc, name asc) — the same total order the
		// seed engine used; component counts are tiny, and this allocates
		// nothing.
		for i := 1; i < len(costs); i++ {
			for j := i; j > 0 && ev.costLess(costs[j], costs[j-1]); j-- {
				costs[j], costs[j-1] = costs[j-1], costs[j]
			}
		}
		for _, c := range costs {
			i := c.pos
			if i == 0 || i == len(h.compSlots)-1 {
				continue // boundary: not skippable
			}
			vl, vr := h.compSlots[i-1], h.compSlots[i+1]
			if !ev.skip[vl] && !ev.skip[vr] {
				ev.skip[c.slot] = true
			}
		}
		ev.costs = costs[:0]
	}
}

// costLess orders skip-plan candidates: higher cost first, variable name as
// the deterministic tiebreak (matching the seed semantics).
func (ev *sentEval) costLess(a, b gspCost) bool {
	if a.cost != b.cost {
		return a.cost > b.cost
	}
	return ev.nq.vars[a.slot].name < ev.nq.vars[b.slot].name
}

// buildCandidates fills per-variable candidate bindings. Returns false when
// some enumerable variable has no candidates (the sentence yields nothing).
// With a plan, lists are built in plan order so the cheapest empty list
// exits before any expensive list is materialized.
func (ev *sentEval) buildCandidates() bool {
	if ev.plan != nil {
		for i := range ev.plan.steps {
			if !ev.buildCandidateList(ev.nq.vars[ev.plan.steps[i].slot]) {
				return false
			}
		}
		return true
	}
	for _, v := range ev.nq.vars {
		if !v.enumerableKind() {
			continue
		}
		if !ev.buildCandidateList(v) {
			return false
		}
	}
	return true
}

// buildCandidateList fills one variable's candidate bindings, returning
// false when an enumerable variable comes up empty.
func (ev *sentEval) buildCandidateList(v *normVar) bool {
	s := ev.s
	t := len(s.Tokens)
	list := ev.cands[v.slot][:0]
	if !ev.isEnumerable(v) {
		ev.cands[v.slot] = list
		return true
	}
	switch v.kind {
	case vkNode:
		for _, tid := range ev.nodeMatches(v) {
			list = append(list, binding{sp: span{int(tid), int(tid)}, tid: int(tid)})
		}
	case vkEntity:
		for ei := range s.Entities {
			e := &s.Entities[ei]
			if nlp.GPEAlias(v.etype, e.Type) {
				list = append(list, binding{sp: span{e.L, e.R}, tid: -1})
			}
		}
	case vkTokens:
		for i := 0; i+len(v.words) <= t; i++ {
			if seqAt(s, i, v.words) {
				list = append(list, binding{sp: span{i, i + len(v.words) - 1}, tid: -1})
			}
		}
	case vkElastic:
		// Un-skipped elastic (or NOGSP): enumerate every span,
		// including the empty span at each position — the t(t+1)/2
		// cost the skip plan exists to avoid.
		for l := 0; l <= t; l++ {
			if ev.elasticOK(v, emptySpanAt(l)) {
				list = append(list, binding{sp: emptySpanAt(l), tid: -1})
			}
			for r := l; r < t; r++ {
				if ev.elasticOK(v, span{l, r}) {
					list = append(list, binding{sp: span{l, r}, tid: -1})
				}
			}
		}
	}
	ev.cands[v.slot] = list
	if ev.actual != nil {
		ev.actual[v.slot] += int64(len(list))
	}
	return len(list) > 0
}

// nodeMatches returns (and caches) the sound per-sentence matches of a node
// variable's absolute path, ascending.
func (ev *sentEval) nodeMatches(v *normVar) []int32 {
	if ev.nodeDone[v.slot] {
		return ev.nodeTids[v.slot]
	}
	ev.nodeTids[v.slot] = ev.matchPath(v.path, ev.nodeTids[v.slot][:0])
	ev.nodeDone[v.slot] = true
	return ev.nodeTids[v.slot]
}

// nodeMatchHas reports whether tid matches node variable v, via binary
// search of the cached sorted match list.
func (ev *sentEval) nodeMatchHas(v *normVar, tid int) bool {
	tids := ev.nodeMatches(v)
	lo, hi := 0, len(tids)
	for lo < hi {
		mid := (lo + hi) / 2
		if tids[mid] < int32(tid) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(tids) && tids[lo] == int32(tid)
}

// matchPath is matchPathTokens against the scratch buffers: the memo table
// and match bitmap are reused across sentences and the matching tids are
// appended to dst, ascending.
func (ev *sentEval) matchPath(steps []lang.PathStep, dst []int32) []int32 {
	s := ev.s
	n := len(s.Tokens)
	if n == 0 || len(steps) == 0 {
		return dst
	}
	m := len(steps)
	need := (n + 1) * (m + 1)
	if cap(ev.pathSeen) < need {
		ev.pathSeen = make([]bool, need)
	} else {
		ev.pathSeen = ev.pathSeen[:need]
		for i := range ev.pathSeen {
			ev.pathSeen[i] = false
		}
	}
	if cap(ev.pathMatched) < n {
		ev.pathMatched = make([]bool, n)
	} else {
		ev.pathMatched = ev.pathMatched[:n]
		for i := range ev.pathMatched {
			ev.pathMatched[i] = false
		}
	}
	matchPathVisit(ev.s, steps, ev.rc, ev.pathSeen, ev.pathMatched, -1, 0)
	for i, ok := range ev.pathMatched {
		if ok {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

// elasticOK checks an elastic span's bracket conditions.
func (ev *sentEval) elasticOK(v *normVar, sp span) bool {
	for _, c := range v.conds {
		switch c.Key {
		case "min":
			if n, err := strconv.Atoi(c.Value); err == nil && sp.length() < n {
				return false
			}
		case "max":
			if n, err := strconv.Atoi(c.Value); err == nil && sp.length() > n {
				return false
			}
		case "regex":
			if sp.empty() || !ev.rc.fullMatch(c.Value, ev.s.Text(sp.l, sp.r)) {
				return false
			}
		case "etype":
			if sp.empty() {
				return false
			}
			ok := false
			for ei := range ev.s.Entities {
				e := &ev.s.Entities[ei]
				if e.L == sp.l && e.R == sp.r && nlp.GPEAlias(nlp.CanonicalEntityType(c.Value), e.Type) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
	}
	return true
}

// enumerate is the nested-loop evaluation over enumerable variables with
// eager constraint checking, followed by derivation (subtrees, alignment of
// skipped variables) and final validation.
func (ev *sentEval) enumerate(i int) {
	if i == len(ev.enum) {
		ev.deriveAndEmit()
		return
	}
	v := ev.enum[i]
	for bi := range ev.cands[v.slot] {
		ev.work[v.slot] = ev.cands[v.slot][bi]
		ev.workIdx[v.slot] = int32(bi)
		ev.workSet.set(v.slot)
		if ev.constraintsOK(v.slot) {
			ev.enumerate(i + 1)
		}
	}
	ev.workSet.clear(v.slot)
}

// constraintsOK checks every constraint whose two sides are both bound,
// touching the just-bound variable slot.
func (ev *sentEval) constraintsOK(justBound int) bool {
	for ci := range ev.nq.constraints {
		c := &ev.nq.constraints[ci]
		if c.aSlot != justBound && c.bSlot != justBound {
			continue
		}
		if !ev.workSet.has(c.aSlot) || !ev.workSet.has(c.bSlot) {
			continue
		}
		if !ev.checkConstraint(c.kind, ev.work[c.aSlot], ev.work[c.bSlot]) {
			return false
		}
	}
	return true
}

func (ev *sentEval) checkConstraint(kind consKind, ba, bb binding) bool {
	switch kind {
	case ckParentOf:
		return ba.tid >= 0 && bb.tid >= 0 && ev.s.Tokens[bb.tid].Head == ba.tid
	case ckAncestorOf:
		return ba.tid >= 0 && bb.tid >= 0 && ev.s.IsAncestor(ba.tid, bb.tid)
	case ckInSpan:
		return !ba.sp.empty() && ba.sp.l >= bb.sp.l && ba.sp.r <= bb.sp.r
	case ckEqSpan:
		return ba.sp == bb.sp
	}
	return false
}

// deriveAndEmit computes derived variables in declaration order: subtree
// spans, then horizontal alignments (which also bind the skipped component
// variables). Skipped components are left for their span's alignment pass.
// Once every variable is bound, all constraints are re-checked and the
// assignment is appended to the emission arena.
func (ev *sentEval) deriveAndEmit() {
	copy(ev.full, ev.work)
	ev.fullSet.copyFrom(ev.workSet)
	for _, v := range ev.nq.vars {
		if ev.fullSet.has(v.slot) {
			continue
		}
		switch v.kind {
		case vkSubtree:
			if !ev.fullSet.has(v.baseSlot) {
				return
			}
			base := ev.full[v.baseSlot]
			if base.tid < 0 {
				return
			}
			tok := &ev.s.Tokens[base.tid]
			ev.full[v.slot] = binding{sp: span{tok.SubL, tok.SubR}, tid: -1}
			ev.fullSet.set(v.slot)
		case vkSpan:
			if !ev.alignSpan(v) {
				return
			}
		default:
			if ev.skip[v.slot] {
				continue // bound later by its horizontal's alignment
			}
			return // enumerable var missing: empty candidate list
		}
	}
	// Every variable must be bound by now (a skipped variable whose
	// horizontal never aligned would be missing).
	for _, v := range ev.nq.vars {
		if !ev.fullSet.has(v.slot) {
			return
		}
	}
	// Final full constraint check (bindings produced by alignment were not
	// covered by the eager checks during enumeration).
	for ci := range ev.nq.constraints {
		c := &ev.nq.constraints[ci]
		if !ev.checkConstraint(c.kind, ev.full[c.aSlot], ev.full[c.bSlot]) {
			return
		}
	}
	ev.outB = append(ev.outB, ev.full...)
	if ev.trackIdx {
		ev.outIdx = append(ev.outIdx, ev.workIdx...)
	}
	ev.nout++
}

// alignSpan derives a horizontal span variable: bound components must tile
// left to right; single skipped components between two bound neighbors take
// exactly the gap, then validate (§4.3 "Align skipped variables and check
// constraints"). Bindings land in ev.full.
func (ev *sentEval) alignSpan(v *normVar) bool {
	comps := v.compSlots
	n := len(comps)
	spans := ev.alignSp[:n]
	bound := ev.alignOk[:n]
	for i, cs := range comps {
		if ev.fullSet.has(cs) {
			spans[i] = ev.full[cs].sp
			bound[i] = true
		} else {
			bound[i] = false
		}
	}
	if n == 0 || !bound[0] || !bound[n-1] {
		return false // boundary components are never skipped
	}
	// Fill gaps.
	for i := 0; i < n; i++ {
		if bound[i] {
			continue
		}
		// Neighbors must be bound (the skip plan guarantees it).
		if i == 0 || i == n-1 || !bound[i-1] || !bound[i+1] {
			return false
		}
		gap := span{l: spans[i-1].r + 1, r: spans[i+1].l - 1}
		if gap.r < gap.l-1 {
			return false // negative gap: neighbors overlap
		}
		cv := ev.nq.vars[comps[i]]
		if !ev.validateDerived(cv, gap) {
			return false
		}
		spans[i] = gap
		bound[i] = true
		ev.full[comps[i]] = binding{sp: gap, tid: derivedTid(cv, gap)}
		ev.fullSet.set(comps[i])
	}
	// Adjacency of the full tiling.
	pos := spans[0].l
	for i := 0; i < n; i++ {
		if spans[i].l != pos && !(spans[i].empty() && spans[i].l == pos) {
			return false
		}
		if !spans[i].empty() {
			pos = spans[i].r + 1
		}
	}
	ev.full[v.slot] = binding{sp: span{spans[0].l, spans[n-1].r}, tid: -1}
	ev.fullSet.set(v.slot)
	return true
}

func derivedTid(v *normVar, sp span) int {
	if v.kind == vkNode && sp.length() == 1 {
		return sp.l
	}
	return -1
}

// validateDerived checks that a gap span is a legitimate binding for a
// skipped variable — the validation step that restores soundness after the
// index-level approximation.
func (ev *sentEval) validateDerived(v *normVar, sp span) bool {
	switch v.kind {
	case vkElastic:
		if sp.r < sp.l-1 {
			return false
		}
		return ev.elasticOK(v, sp)
	case vkNode:
		return sp.length() == 1 && ev.nodeMatchHas(v, sp.l)
	case vkTokens:
		if sp.length() != len(v.words) {
			return false
		}
		for j, w := range v.words {
			if ev.s.Tokens[sp.l+j].Lower != w {
				return false
			}
		}
		return true
	case vkEntity:
		for ei := range ev.s.Entities {
			e := &ev.s.Entities[ei]
			if e.L == sp.l && e.R == sp.r && nlp.GPEAlias(v.etype, e.Type) {
				return true
			}
		}
		return false
	case vkSubtree:
		if !ev.fullSet.has(v.baseSlot) {
			return false
		}
		base := ev.full[v.baseSlot]
		if base.tid < 0 {
			return false
		}
		tok := &ev.s.Tokens[base.tid]
		return sp.l == tok.SubL && sp.r == tok.SubR
	}
	return false
}

// valueOf renders a binding as the output string value.
func valueOf(s *nlp.Sentence, b binding) string {
	if b.sp.empty() {
		return ""
	}
	return s.Text(b.sp.l, b.sp.r)
}

// tokensOfValue splits an output value back into lowercase tokens for the
// aggregate conditions.
func tokensOfValue(v string) []string {
	toks := nlp.Tokenize(v)
	for i := range toks {
		toks[i] = strings.ToLower(toks[i])
	}
	return toks
}
