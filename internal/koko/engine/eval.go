package engine

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/nlp"
)

// span is a token interval [l, r]; r == l-1 encodes the empty span at
// position l (elastic spans may be empty: ∧ is "zero or more tokens").
type span struct{ l, r int }

func (sp span) empty() bool    { return sp.r < sp.l }
func (sp span) length() int    { return sp.r - sp.l + 1 }
func emptySpanAt(pos int) span { return span{l: pos, r: pos - 1} }

// binding is one value for a variable within a sentence.
type binding struct {
	sp  span
	tid int // token id for node variables, -1 otherwise
}

// assignment maps variable names to bindings.
type assignment map[string]binding

// sentEval evaluates the extract clause over one sentence (§4.3: skip plan,
// nested loops, alignment, validation).
type sentEval struct {
	nq    *normQuery
	s     *nlp.Sentence
	rc    *reCache
	skip  map[string]bool
	cands map[string][]binding
	// nodeSet caches matchPathTokens results per node variable for O(1)
	// validation of skipped node variables.
	nodeSet map[string]map[int]bool
	out     []assignment
	gspOff  bool
}

// evalSentence runs the extract clause over sentence s and returns all
// satisfying assignments. countOf supplies the GSP cost estimates
// (|bindings[v][sid]|); it may be nil (cost 0 → never skipped).
func evalSentence(nq *normQuery, s *nlp.Sentence, rc *reCache, countOf func(name string) int, gspOff bool) []assignment {
	ev := &sentEval{
		nq:      nq,
		s:       s,
		rc:      rc,
		skip:    map[string]bool{},
		cands:   map[string][]binding{},
		nodeSet: map[string]map[int]bool{},
		gspOff:  gspOff,
	}
	if !gspOff {
		ev.generateSkipPlan(countOf)
	}
	if !ev.buildCandidates() {
		return nil
	}
	var enum []*normVar
	for _, v := range nq.vars {
		if ev.isEnumerable(v) {
			enum = append(enum, v)
		}
	}
	ev.enumerate(enum, 0, assignment{})
	return ev.out
}

// isEnumerable reports whether a variable gets its own nested loop. Derived
// variables (subtrees, span concatenations) and skipped variables are
// computed from others.
func (ev *sentEval) isEnumerable(v *normVar) bool {
	if v.kind == vkSubtree || v.kind == vkSpan {
		return false
	}
	return !ev.skip[v.name]
}

// generateSkipPlan implements Algorithm 2 with one soundness refinement: a
// variable is only skipped when it has BOTH a left and a right neighbor in
// the horizontal condition (boundary variables would leave the span's
// extent undetermined, making alignment ambiguous). The paper's own
// examples (v1, v2 in Example 4.6) skip interior variables only.
func (ev *sentEval) generateSkipPlan(countOf func(string) int) {
	t := len(ev.s.Tokens)
	for _, h := range ev.nq.horizontals {
		type vc struct {
			name string
			cost float64
		}
		costs := make([]vc, 0, len(h.comps))
		for _, cn := range h.comps {
			v := ev.nq.byName[cn]
			var c float64
			switch v.kind {
			case vkElastic:
				c = float64(t) * float64(t+1) / 2
			case vkSubtree:
				if countOf != nil {
					c = float64(countOf(v.base))
				}
			default:
				if countOf != nil {
					c = float64(countOf(cn))
				}
			}
			costs = append(costs, vc{name: cn, cost: c})
		}
		sort.Slice(costs, func(i, j int) bool {
			if costs[i].cost != costs[j].cost {
				return costs[i].cost > costs[j].cost
			}
			return costs[i].name < costs[j].name
		})
		pos := map[string]int{}
		for i, cn := range h.comps {
			pos[cn] = i
		}
		for _, c := range costs {
			i := pos[c.name]
			if i == 0 || i == len(h.comps)-1 {
				continue // boundary: not skippable
			}
			vl, vr := h.comps[i-1], h.comps[i+1]
			if !ev.skip[vl] && !ev.skip[vr] {
				ev.skip[c.name] = true
			}
		}
	}
}

// buildCandidates fills per-variable candidate bindings. Returns false when
// some enumerable variable has no candidates (the sentence yields nothing).
func (ev *sentEval) buildCandidates() bool {
	s := ev.s
	t := len(s.Tokens)
	for _, v := range ev.nq.vars {
		if !ev.isEnumerable(v) {
			continue
		}
		var list []binding
		switch v.kind {
		case vkNode:
			for _, tid := range ev.nodeMatches(v) {
				list = append(list, binding{sp: span{tid, tid}, tid: tid})
			}
		case vkEntity:
			for ei := range s.Entities {
				e := &s.Entities[ei]
				if nlp.GPEAlias(v.etype, e.Type) {
					list = append(list, binding{sp: span{e.L, e.R}, tid: -1})
				}
			}
		case vkTokens:
			for _, pos := range findTokenSeq(s, v.words) {
				list = append(list, binding{sp: span{pos, pos + len(v.words) - 1}, tid: -1})
			}
		case vkElastic:
			// Un-skipped elastic (or NOGSP): enumerate every span,
			// including the empty span at each position — the t(t+1)/2
			// cost the skip plan exists to avoid.
			for l := 0; l <= t; l++ {
				if ev.elasticOK(v, emptySpanAt(l)) {
					list = append(list, binding{sp: emptySpanAt(l), tid: -1})
				}
				for r := l; r < t; r++ {
					if ev.elasticOK(v, span{l, r}) {
						list = append(list, binding{sp: span{l, r}, tid: -1})
					}
				}
			}
		}
		if len(list) == 0 {
			return false
		}
		ev.cands[v.name] = list
	}
	return true
}

// nodeMatches returns (and caches) the sound per-sentence matches of a node
// variable's absolute path.
func (ev *sentEval) nodeMatches(v *normVar) []int {
	if set, ok := ev.nodeSet[v.name]; ok {
		out := make([]int, 0, len(set))
		for tid := range set {
			out = append(out, tid)
		}
		sort.Ints(out)
		return out
	}
	tids := matchPathTokens(ev.s, v.path, ev.rc)
	set := make(map[int]bool, len(tids))
	for _, tid := range tids {
		set[tid] = true
	}
	ev.nodeSet[v.name] = set
	return tids
}

func (ev *sentEval) nodeMatchSet(v *normVar) map[int]bool {
	ev.nodeMatches(v)
	return ev.nodeSet[v.name]
}

// elasticOK checks an elastic span's bracket conditions.
func (ev *sentEval) elasticOK(v *normVar, sp span) bool {
	for _, c := range v.conds {
		switch c.Key {
		case "min":
			if n, err := strconv.Atoi(c.Value); err == nil && sp.length() < n {
				return false
			}
		case "max":
			if n, err := strconv.Atoi(c.Value); err == nil && sp.length() > n {
				return false
			}
		case "regex":
			if sp.empty() || !ev.rc.fullMatch(c.Value, ev.s.Text(sp.l, sp.r)) {
				return false
			}
		case "etype":
			if sp.empty() {
				return false
			}
			ok := false
			for ei := range ev.s.Entities {
				e := &ev.s.Entities[ei]
				if e.L == sp.l && e.R == sp.r && nlp.GPEAlias(nlp.CanonicalEntityType(c.Value), e.Type) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
	}
	return true
}

// enumerate is the nested-loop evaluation over enumerable variables with
// eager constraint checking, followed by derivation (subtrees, alignment of
// skipped variables) and final validation.
func (ev *sentEval) enumerate(vars []*normVar, i int, a assignment) {
	if i == len(vars) {
		ev.deriveAndEmit(a)
		return
	}
	v := vars[i]
	for _, b := range ev.cands[v.name] {
		a[v.name] = b
		if ev.constraintsOK(a, v.name) {
			ev.enumerate(vars, i+1, a)
		}
		delete(a, v.name)
	}
}

// constraintsOK checks every constraint whose two sides are both bound,
// touching the just-bound variable.
func (ev *sentEval) constraintsOK(a assignment, justBound string) bool {
	for _, c := range ev.nq.constraints {
		if c.a != justBound && c.b != justBound {
			continue
		}
		ba, okA := a[c.a]
		bb, okB := a[c.b]
		if !okA || !okB {
			continue
		}
		if !ev.checkConstraint(c, ba, bb) {
			return false
		}
	}
	return true
}

func (ev *sentEval) checkConstraint(c normConstraint, ba, bb binding) bool {
	switch c.kind {
	case ckParentOf:
		return ba.tid >= 0 && bb.tid >= 0 && ev.s.Tokens[bb.tid].Head == ba.tid
	case ckAncestorOf:
		return ba.tid >= 0 && bb.tid >= 0 && ev.s.IsAncestor(ba.tid, bb.tid)
	case ckInSpan:
		return !ba.sp.empty() && ba.sp.l >= bb.sp.l && ba.sp.r <= bb.sp.r
	case ckEqSpan:
		return ba.sp == bb.sp
	}
	return false
}

// deriveAndEmit computes derived variables in declaration order: subtree
// spans, then horizontal alignments (which also bind the skipped component
// variables). Skipped components are left for their span's alignment pass.
// Once every variable is bound, all constraints are re-checked and the
// assignment is emitted.
func (ev *sentEval) deriveAndEmit(a assignment) {
	full := assignment{}
	for k, v := range a {
		full[k] = v
	}
	for _, v := range ev.nq.vars {
		if _, bound := full[v.name]; bound {
			continue
		}
		switch v.kind {
		case vkSubtree:
			base, ok := full[v.base]
			if !ok || base.tid < 0 {
				return
			}
			tok := &ev.s.Tokens[base.tid]
			full[v.name] = binding{sp: span{tok.SubL, tok.SubR}, tid: -1}
		case vkSpan:
			if !ev.alignSpan(v, full) {
				return
			}
		default:
			if ev.skip[v.name] {
				continue // bound later by its horizontal's alignment
			}
			return // enumerable var missing: empty candidate list
		}
	}
	// Every variable must be bound by now (a skipped variable whose
	// horizontal never aligned would be missing).
	for _, v := range ev.nq.vars {
		if _, ok := full[v.name]; !ok {
			return
		}
	}
	// Final full constraint check (bindings produced by alignment were not
	// covered by the eager checks during enumeration).
	for _, c := range ev.nq.constraints {
		ba, okA := full[c.a]
		bb, okB := full[c.b]
		if !okA || !okB || !ev.checkConstraint(c, ba, bb) {
			return
		}
	}
	ev.out = append(ev.out, full)
}

// alignSpan derives a horizontal span variable: bound components must tile
// left to right; single skipped components between two bound neighbors take
// exactly the gap, then validate (§4.3 "Align skipped variables and check
// constraints").
func (ev *sentEval) alignSpan(v *normVar, a assignment) bool {
	comps := v.comps
	n := len(comps)
	spans := make([]span, n)
	bound := make([]bool, n)
	for i, cn := range comps {
		if b, ok := a[cn]; ok {
			spans[i] = b.sp
			bound[i] = true
		}
	}
	if n == 0 || !bound[0] || !bound[n-1] {
		return false // boundary components are never skipped
	}
	// Fill gaps.
	for i := 0; i < n; i++ {
		if bound[i] {
			continue
		}
		// Neighbors must be bound (the skip plan guarantees it).
		if i == 0 || i == n-1 || !bound[i-1] || !bound[i+1] {
			return false
		}
		gap := span{l: spans[i-1].r + 1, r: spans[i+1].l - 1}
		if gap.r < gap.l-1 {
			return false // negative gap: neighbors overlap
		}
		cv := ev.nq.byName[comps[i]]
		if !ev.validateDerived(cv, gap, a) {
			return false
		}
		spans[i] = gap
		bound[i] = true
		a[comps[i]] = binding{sp: gap, tid: derivedTid(cv, gap)}
	}
	// Adjacency of the full tiling.
	pos := spans[0].l
	for i := 0; i < n; i++ {
		if spans[i].l != pos && !(spans[i].empty() && spans[i].l == pos) {
			return false
		}
		if !spans[i].empty() {
			pos = spans[i].r + 1
		}
	}
	a[v.name] = binding{sp: span{spans[0].l, spans[n-1].r}, tid: -1}
	return true
}

func derivedTid(v *normVar, sp span) int {
	if v.kind == vkNode && sp.length() == 1 {
		return sp.l
	}
	return -1
}

// validateDerived checks that a gap span is a legitimate binding for a
// skipped variable — the validation step that restores soundness after the
// index-level approximation.
func (ev *sentEval) validateDerived(v *normVar, sp span, a assignment) bool {
	switch v.kind {
	case vkElastic:
		if sp.r < sp.l-1 {
			return false
		}
		return ev.elasticOK(v, sp)
	case vkNode:
		return sp.length() == 1 && ev.nodeMatchSet(v)[sp.l]
	case vkTokens:
		if sp.length() != len(v.words) {
			return false
		}
		for j, w := range v.words {
			if ev.s.Tokens[sp.l+j].Lower != w {
				return false
			}
		}
		return true
	case vkEntity:
		for ei := range ev.s.Entities {
			e := &ev.s.Entities[ei]
			if e.L == sp.l && e.R == sp.r && nlp.GPEAlias(v.etype, e.Type) {
				return true
			}
		}
		return false
	case vkSubtree:
		base, ok := a[v.base]
		if !ok || base.tid < 0 {
			return false
		}
		tok := &ev.s.Tokens[base.tid]
		return sp.l == tok.SubL && sp.r == tok.SubR
	}
	return false
}

// valueOf renders a binding as the output string value.
func valueOf(s *nlp.Sentence, b binding) string {
	if b.sp.empty() {
		return ""
	}
	return s.Text(b.sp.l, b.sp.r)
}

// tokensOfValue splits an output value back into lowercase tokens for the
// aggregate conditions.
func tokensOfValue(v string) []string {
	toks := nlp.Tokenize(v)
	for i := range toks {
		toks[i] = strings.ToLower(toks[i])
	}
	return toks
}
