package engine

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/embed"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
)

// TestParallelEquivalence: Workers > 1 must return byte-identical tuples in
// the same order as the sequential engine (the §7 parallelization must be a
// pure optimization).
func TestParallelEquivalence(t *testing.T) {
	var texts []string
	for i := 0; i < 60; i++ {
		texts = append(texts,
			fmt.Sprintf("Cafe Number%d serves smooth espresso daily. Cafe Number%d hired a champion barista.", i, i))
	}
	c := index.NewCorpus(nil, texts)
	ix := index.Build(c)
	q := lang.MustParse(`
		extract x:Entity from "blogs" if ()
		satisfying x
		(str(x) contains "Cafe" {0.4}) or
		(x [["serves coffee"]] {0.3}) or
		(x [["employs baristas"]] {0.3})
		with threshold 0.5`)
	seq := New(c, ix, embed.NewModel(), Options{})
	par := New(c, ix, embed.NewModel(), Options{Workers: 4})
	r1, err := seq.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := par.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Tuples) == 0 {
		t.Fatal("no tuples")
	}
	if len(r1.Tuples) != len(r2.Tuples) {
		t.Fatalf("tuple count %d vs %d", len(r1.Tuples), len(r2.Tuples))
	}
	for i := range r1.Tuples {
		if !reflect.DeepEqual(r1.Tuples[i].Values, r2.Tuples[i].Values) ||
			r1.Tuples[i].Sid != r2.Tuples[i].Sid {
			t.Fatalf("tuple %d differs: %v vs %v", i, r1.Tuples[i], r2.Tuples[i])
		}
	}
	if r1.MatchedSentences != r2.MatchedSentences || r1.EvaluatedSentences != r2.EvaluatedSentences {
		t.Errorf("counters differ: %d/%d vs %d/%d",
			r1.MatchedSentences, r1.EvaluatedSentences, r2.MatchedSentences, r2.EvaluatedSentences)
	}
}

// TestExplainEvidence: Options.Explain attaches per-condition breakdowns
// whose contributions sum to the clause score.
func TestExplainEvidence(t *testing.T) {
	doc := "Gravity Beans serves smooth espresso daily. Gravity Beans hired a champion barista."
	c := index.NewCorpus(nil, []string{doc})
	ix := index.Build(c)
	e := New(c, ix, embed.NewModel(), Options{Explain: true})
	q := lang.MustParse(`
		extract x:Entity from "blog" if ()
		satisfying x
		(str(x) contains "Cafe" {1}) or
		(x [["serves coffee"]] {0.5}) or
		(x [["employs baristas"]] {0.5})
		with threshold 0.3`)
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, tp := range res.Tuples {
		if tp.Values[0] != "Gravity Beans" {
			continue
		}
		found = true
		if len(tp.Evidence) != 3 {
			t.Fatalf("evidence rows = %d, want 3: %+v", len(tp.Evidence), tp.Evidence)
		}
		var sum float64
		for _, ev := range tp.Evidence {
			sum += ev.Contribution
			if ev.Contribution != ev.Weight*ev.Confidence {
				t.Errorf("contribution %v != weight %v * confidence %v", ev.Contribution, ev.Weight, ev.Confidence)
			}
			if ev.Condition == "" || ev.Var != "x" {
				t.Errorf("bad evidence row: %+v", ev)
			}
		}
		if diff := sum - tp.Scores["x"]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("evidence sum %v != score %v", sum, tp.Scores["x"])
		}
		// The contains condition contributed nothing; the descriptors did.
		if tp.Evidence[0].Confidence != 0 {
			t.Errorf("contains 'Cafe' confidence = %v, want 0", tp.Evidence[0].Confidence)
		}
		if tp.Evidence[1].Contribution == 0 && tp.Evidence[2].Contribution == 0 {
			t.Errorf("no descriptor evidence: %+v", tp.Evidence)
		}
	}
	if !found {
		t.Fatalf("Gravity Beans not extracted: %v", res.Tuples)
	}
	// Without Explain, no evidence is attached.
	e2 := New(c, ix, embed.NewModel(), Options{})
	res2, err := e2.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range res2.Tuples {
		if tp.Evidence != nil {
			t.Errorf("evidence attached without Explain: %+v", tp.Evidence)
		}
	}
}
