package engine

import (
	"regexp"
	"strings"
	"sync"

	"repro/internal/koko/lang"
	"repro/internal/nlp"
)

// reCache compiles and caches the regular expressions appearing in query
// conditions. Patterns are anchored: "matches" is a full-string match, as in
// the paper's examples ("[Ll]a Marzocco" matches the whole entity name).
type reCache struct {
	mu sync.Mutex
	m  map[string]*regexp.Regexp
}

func newRECache() *reCache { return &reCache{m: map[string]*regexp.Regexp{}} }

func (rc *reCache) get(pattern string) *regexp.Regexp {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if re, ok := rc.m[pattern]; ok {
		return re
	}
	re, err := regexp.Compile("^(?:" + pattern + ")$")
	if err != nil {
		re = nil // malformed patterns match nothing
	}
	rc.m[pattern] = re
	return re
}

func (rc *reCache) fullMatch(pattern, s string) bool {
	re := rc.get(pattern)
	return re != nil && re.MatchString(s)
}

// stepClass is the decomposition class of a path-step label (§4.2.1): parse
// label, POS tag, word, or wildcard.
type stepClass int

const (
	scWild stepClass = iota
	scParse
	scPOS
	scWord
)

// classifyStep determines which index a step's label addresses. A step's
// word may also come from a [text=...] condition (quoted labels are parsed
// that way), and a POS constraint may come from [@pos=...].
func classifyStep(st lang.PathStep) (class stepClass, canon string) {
	l := st.Label
	switch {
	case l == "*" || l == "":
		return scWild, "*"
	case nlp.IsParseLabel(l):
		return scParse, nlp.NormalizeLabel(l)
	case nlp.IsPOSTag(l):
		return scPOS, nlp.NormalizePOS(l)
	case nlp.IsEntityType(l):
		// Entity-typed labels inside paths are validated, not indexed.
		return scWild, "*"
	default:
		return scWord, strings.ToLower(l)
	}
}

// stepWord returns the word constraint of a step ("" if none): either a
// word-class label or a text condition.
func stepWord(st lang.PathStep) string {
	if cls, canon := classifyStep(st); cls == scWord {
		return canon
	}
	for _, c := range st.Conds {
		if c.Key == "text" {
			return strings.ToLower(c.Value)
		}
	}
	return ""
}

// stepPOS returns the POS constraint of a step ("" if none).
func stepPOS(st lang.PathStep) string {
	if cls, canon := classifyStep(st); cls == scPOS {
		return canon
	}
	for _, c := range st.Conds {
		if c.Key == "pos" {
			return nlp.NormalizePOS(c.Value)
		}
	}
	return ""
}

// stepMatchesToken checks a step's label and all bracket conditions against
// a concrete token (the validation-side test).
func stepMatchesToken(s *nlp.Sentence, tid int, st lang.PathStep, rc *reCache) bool {
	tok := &s.Tokens[tid]
	cls, canon := classifyStep(st)
	switch cls {
	case scParse:
		if nlp.NormalizeLabel(tok.Label) != canon {
			return false
		}
	case scPOS:
		if tok.POS != canon {
			return false
		}
	case scWord:
		if tok.Lower != canon {
			return false
		}
	case scWild:
		if nlp.IsEntityType(st.Label) && st.Label != "*" && st.Label != "" {
			e := s.EntityAt(tid)
			if e == nil || !nlp.GPEAlias(nlp.CanonicalEntityType(st.Label), e.Type) {
				return false
			}
		}
	}
	for _, c := range st.Conds {
		switch c.Key {
		case "pos":
			if tok.POS != nlp.NormalizePOS(c.Value) {
				return false
			}
		case "text":
			if tok.Lower != strings.ToLower(c.Value) {
				return false
			}
		case "etype":
			e := s.EntityAt(tid)
			if e == nil || !nlp.GPEAlias(nlp.CanonicalEntityType(c.Value), e.Type) {
				return false
			}
		case "regex":
			if !rc.fullMatch(c.Value, tok.Text) {
				return false
			}
		}
	}
	return true
}

// MatchPath is the exported form of matchPathTokens for harness code that
// needs sound ground-truth path matching (index-effectiveness experiments).
func MatchPath(s *nlp.Sentence, steps []lang.PathStep) []int {
	return matchPathTokens(s, steps, newRECache())
}

// matchPathTokens returns the token ids of a sentence whose root path
// matches the absolute path pattern, in ascending order. This is the sound
// per-sentence matcher used for validation (§4.3's "check that b satisfies
// the path ...") and by the naïve reference evaluator. The traversal is
// memoized on (token, step) so wildcard-heavy patterns stay linear.
func matchPathTokens(s *nlp.Sentence, steps []lang.PathStep, rc *reCache) []int {
	n := len(s.Tokens)
	if n == 0 || len(steps) == 0 {
		return nil
	}
	seen := make([]bool, (n+1)*(len(steps)+1))
	matched := make([]bool, n)
	matchPathVisit(s, steps, rc, seen, matched, -1, 0)
	var out []int
	for i, ok := range matched {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// matchPathVisit is the shared memoized traversal behind matchPathTokens
// and the hot path's scratch-backed sentEval.matchPath: seen is the
// (n+1)×(m+1) memo indexed [(tok+1)*(m+1)+step], matched collects the
// tokens reaching the end of the pattern. It is a plain recursive function
// (no closure) so scratch-buffer callers allocate nothing.
func matchPathVisit(s *nlp.Sentence, steps []lang.PathStep, rc *reCache, seen, matched []bool, tok, step int) {
	m := len(steps)
	idx := (tok+1)*(m+1) + step
	if seen[idx] {
		return
	}
	seen[idx] = true
	if step == m {
		if tok >= 0 {
			matched[tok] = true
		}
		return
	}
	st := steps[step]
	if tok < 0 {
		if r := s.Root(); r >= 0 {
			if stepMatchesToken(s, r, st, rc) {
				matchPathVisit(s, steps, rc, seen, matched, r, step+1)
			}
			if st.Desc {
				matchPathVisit(s, steps, rc, seen, matched, r, step)
			}
		}
		return
	}
	for _, c := range s.Children(tok) {
		if stepMatchesToken(s, c, st, rc) {
			matchPathVisit(s, steps, rc, seen, matched, c, step+1)
		}
		if st.Desc {
			matchPathVisit(s, steps, rc, seen, matched, c, step)
		}
	}
}

// findTokenSeq returns every start position where the lowercase word
// sequence occurs contiguously in the sentence.
func findTokenSeq(s *nlp.Sentence, words []string) []int {
	if len(words) == 0 {
		return nil
	}
	var out []int
	n := len(s.Tokens)
	for i := 0; i+len(words) <= n; i++ {
		ok := true
		for j, w := range words {
			if s.Tokens[i+j].Lower != w {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}
