// Package engine evaluates KOKO queries (paper §4). Evaluation proceeds in
// the paper's four stages:
//
//  1. Normalize (§4.1) — path expressions are expanded to absolute form,
//     horizontal-condition components become explicit variables (the ∧
//     elastic spans get synthesized names), and structural constraints
//     (parentOf / ancestorOf / leftOf) are derived.
//
//  2. Decompose Paths & Lookup Indices, DPLI (§4.2) — dominant paths are
//     identified, each is decomposed into a parse-label path, a POS-tag
//     path, and a word path; the PL, POS, and word indices are consulted and
//     their posting lists joined with the paper's interval+depth arithmetic.
//     The result is a complete (but not necessarily sound) candidate set of
//     sentences plus per-sentence binding-count estimates.
//
//  3. Generate Skip Plan, GSP (§4.3, Algorithm 2) — for every horizontal
//     condition the costliest variables (elastic spans cost t(t+1)/2) are
//     greedily skipped provided their neighbors are not skipped; the
//     remaining variables are enumerated by nested loops, skipped variables
//     are aligned from their neighbors' bindings, and every path expression
//     and derived constraint is re-validated (this restores soundness).
//
//  4. Aggregate (§4.4) — for every candidate output value, the satisfying
//     clause's weighted evidence is collected across the whole document
//     (boolean conditions, proximity, and descriptor conditions expanded
//     through the paraphrase model and matched against decomposed canonical
//     clauses); values below the threshold or matching the excluding clause
//     are dropped.
//
// The engine reports per-phase wall-clock times (the paper's Table 2
// breakdown: Normalize / DPLI / LoadArticle / GSP / extract / satisfying)
// and supports disabling the skip plan for the Table 1 ablation.
package engine
