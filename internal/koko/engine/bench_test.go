package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/embed"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
)

// The hot-path benchmark workload: a HappyDB corpus and the three query
// shapes that dominate real runs — a GSP-heavy horizontal extract, an
// aggregator-bound satisfying query, and DPLI word-path joins. The same
// workload (same sizes, seeds, and query text) is measured end-to-end by
// `kokobench -exp hotpath`, which refreshes BENCH_engine.json.
//
// The corpus generator mirrors corpus.GenHappyDB (that package depends on
// the engine through the indexing baselines, so it cannot be imported from
// here); keep the templates in sync.

const benchCorpusSents = 1000

const benchCorpusSeed = 42

// benchExtractQuery exercises the extract hot path: two node loops, a
// subtree derivation, and a horizontal condition whose two elastic spans the
// skip plan eliminates.
const benchExtractQuery = `
	extract d:Str, s:Str from "happydb" if (
	/ROOT:{ v = //verb, o = v/dobj, d = (o.subtree), s = "i" + ^ + v + ^ + o })`

// benchSatisfyingQuery adds the satisfying/aggregator path on top of the
// extract loop.
const benchSatisfyingQuery = `
	extract o:Str from "happydb" if (
	/ROOT:{ v = //verb, b = v/dobj, o = (b.subtree) })
	satisfying o ("ate" o {0.7}) or (o near "delicious" {1}) with threshold 0.2`

// benchJoinQueries exercise the three DPLI join shapes: the word-word
// ancestor/descendant join, the same-token join of hierarchy and word
// postings, and the final P⋈Q ancestor join.
var benchJoinQueries = []string{
	`extract d:Str from "happydb" if (/ROOT:{ v = //"ate", o = v//"cake", d = (o.subtree) })`,
	`extract d:Str from "happydb" if (/ROOT:{ v = //verb, o = v/dobj[text="cake"], d = (o.subtree) })`,
	`extract d:Str from "happydb" if (/ROOT:{ o = //"ate"/dobj, d = (o.subtree) })`,
}

func benchHappyDB(n int, seed int64) *index.Corpus {
	foods := []string{
		"chocolate cake", "cheesecake", "ice cream", "fresh bread",
		"a croissant", "a delicious pie", "seasonal cookies",
	}
	people := []string{
		"my family", "my daughter", "my son", "my best friend", "my wife",
		"my husband", "my brother",
	}
	places := []string{
		"the park", "a grocery store", "the library", "a cozy cafe",
		"the museum", "the stadium",
	}
	events := []string{
		"won the spelling contest", "finished a long project",
		"received an award", "graduated from college",
		"completed a marathon", "started a new job",
	}
	r := rand.New(rand.NewSource(seed))
	var texts, names []string
	for i := 0; i < n; i++ {
		food := foods[r.Intn(len(foods))]
		person := people[r.Intn(len(people))]
		place := places[r.Intn(len(places))]
		event := events[r.Intn(len(events))]
		var s string
		switch r.Intn(8) {
		case 0:
			s = fmt.Sprintf("I ate %s with %s.", food, person)
		case 1:
			s = fmt.Sprintf("I ate %s that I bought at %s.", food, place)
		case 2:
			s = fmt.Sprintf("My friend %s today and we celebrated together.", event)
		case 3:
			s = fmt.Sprintf("I visited %s and also ate %s.", place, food)
		case 4:
			s = fmt.Sprintf("I was happy because %s %s.", person, event)
		case 5:
			s = fmt.Sprintf("We walked to %s and enjoyed the quiet morning.", place)
		case 6:
			s = fmt.Sprintf("I made %s for %s, which was delicious.", food, person)
		default:
			s = fmt.Sprintf("Today I %s and felt really happy.", event)
		}
		texts = append(texts, s)
		names = append(names, fmt.Sprintf("moment-%06d", i))
	}
	return index.NewCorpus(names, texts)
}

func benchEngine(b *testing.B) *Engine {
	b.Helper()
	c := benchHappyDB(benchCorpusSents, benchCorpusSeed)
	ix := index.Build(c)
	return New(c, ix, embed.NewModel(), Options{})
}

// BenchmarkExtractHotPath measures one full evaluation of the HappyDB
// extract workload (DPLI + GSP + nested loops + derivation); allocs/op and
// B/op are the numbers BENCH_engine.json tracks.
func BenchmarkExtractHotPath(b *testing.B) {
	e := benchEngine(b)
	q := lang.MustParse(benchExtractQuery)
	res, err := e.Run(q)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Tuples) == 0 {
		b.Fatal("benchmark query matched nothing")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtractSatisfying measures the extract loop plus the
// aggregator-backed satisfying clause.
func BenchmarkExtractSatisfying(b *testing.B) {
	e := benchEngine(b)
	q := lang.MustParse(benchSatisfyingQuery)
	res, err := e.Run(q)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Tuples) == 0 {
		b.Fatal("benchmark query matched nothing")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDPLIJoin measures the index-pruning module alone: decomposition,
// posting-list joins, and the candidate-sid intersection, with
// normalization hoisted out of the loop.
func BenchmarkDPLIJoin(b *testing.B) {
	e := benchEngine(b)
	nqs := make([]*normQuery, 0, len(benchJoinQueries))
	for _, src := range benchJoinQueries {
		nq, err := normalize(lang.MustParse(src), e.model, 0)
		if err != nil {
			b.Fatal(err)
		}
		nqs = append(nqs, nq)
	}
	for _, nq := range nqs {
		if d := runDPLI(nq, e.ix, false); d.exhausted || len(d.candSids) == 0 {
			b.Fatal("benchmark join query pruned to nothing")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, nq := range nqs {
			runDPLI(nq, e.ix, false)
		}
	}
}
