package engine

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/decompose"
	"repro/internal/embed"
	"repro/internal/koko/lang"
	"repro/internal/nlp"
)

// aggregator evaluates satisfying and excluding conditions for candidate
// values, aggregating evidence across a document (§4.4). Scores are cached
// per (clause, value) within a document.
// globalCache memoizes document-independent condition confidences across
// the whole run (similarTo, contains, matches, ...), keyed by
// kind|arg|value. Owned by the Engine and shared across documents — and,
// when Workers > 1, across goroutines, hence the mutex.
type globalCache struct {
	mu sync.Mutex
	m  map[string]float64
}

func newGlobalCache() *globalCache { return &globalCache{m: map[string]float64{}} }

func (g *globalCache) get(key string) (float64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.m[key]
	return v, ok
}

func (g *globalCache) put(key string, v float64) {
	g.mu.Lock()
	g.m[key] = v
	g.mu.Unlock()
}

type aggregator struct {
	nq     *normQuery
	model  *embed.Model
	dicts  map[string]map[string]bool
	rc     *reCache
	global *globalCache

	docSents []*nlp.Sentence
	clauses  map[int][]decompose.Clause // sid -> canonical clauses
	mentions map[string][]mention       // value -> mentions in the document
	scores   map[scoreKey]float64

	// tokIdx maps each lowercase token to its occurrences across the
	// document, in (sentence, position) order. Built lazily on the first
	// mention probe, it turns valueMentions / near / adjacency into index
	// probes instead of full-document scans per candidate value.
	tokIdx map[string][]tokOcc
}

// tokOcc is one token occurrence: sentence index within docSents + token
// position.
type tokOcc struct{ si, pos int32 }

type mention struct {
	sent *nlp.Sentence
	si   int32 // index into docSents
	l, r int
}

type scoreKey struct {
	clause int // index into nq.satisfying, or -1 for excluding
	value  string
}

func newAggregator(nq *normQuery, model *embed.Model, dicts map[string]map[string]bool, rc *reCache, global *globalCache, docSents []*nlp.Sentence) *aggregator {
	return &aggregator{
		nq:       nq,
		model:    model,
		dicts:    dicts,
		rc:       rc,
		global:   global,
		docSents: docSents,
		clauses:  map[int][]decompose.Clause{},
		mentions: map[string][]mention{},
		scores:   map[scoreKey]float64{},
	}
}

// clauseScore computes the satisfying-clause score of a value: the weighted
// sum of per-condition confidences, each aggregated over the document.
func (ag *aggregator) clauseScore(clauseIdx int, value string) float64 {
	key := scoreKey{clause: clauseIdx, value: value}
	if s, ok := ag.scores[key]; ok {
		return s
	}
	sc := ag.nq.satisfying[clauseIdx]
	var total float64
	for _, c := range sc.Conds {
		total += c.Weight * ag.confidence(c, value)
	}
	ag.scores[key] = total
	return total
}

// excluded reports whether any excluding condition holds for the value
// (conditions over other variables are skipped by the caller).
func (ag *aggregator) excluded(c lang.SatCond, value string) bool {
	return ag.confidence(c, value) > 0
}

// confidence computes m_i(e) for one condition (§4.4.1). Document-
// independent conditions are memoized across the whole run.
func (ag *aggregator) confidence(c lang.SatCond, value string) float64 {
	if value == "" {
		return 0
	}
	switch c.Kind {
	case lang.CondContains, lang.CondMentions, lang.CondMatches,
		lang.CondSimilarTo, lang.CondInDict:
		if ag.global != nil {
			key := strconv.Itoa(int(c.Kind)) + "|" + c.Arg + "|" + value
			if s, ok := ag.global.get(key); ok {
				return s
			}
			s := ag.confidenceUncached(c, value)
			ag.global.put(key, s)
			return s
		}
	}
	return ag.confidenceUncached(c, value)
}

// CondEvidence is one row of an extraction explanation: a condition with
// its confidence, weight, and contribution to the clause score.
type CondEvidence struct {
	Var          string
	Condition    string
	Weight       float64
	Confidence   float64
	Contribution float64
}

// explainClause breaks a satisfying-clause score into per-condition
// evidence (the paper's §5 debuggability claim).
func (ag *aggregator) explainClause(clauseIdx int, value string) []CondEvidence {
	sc := ag.nq.satisfying[clauseIdx]
	out := make([]CondEvidence, 0, len(sc.Conds))
	for _, c := range sc.Conds {
		conf := ag.confidence(c, value)
		out = append(out, CondEvidence{
			Var:          sc.Var,
			Condition:    c.Display(),
			Weight:       c.Weight,
			Confidence:   conf,
			Contribution: c.Weight * conf,
		})
	}
	return out
}

func (ag *aggregator) confidenceUncached(c lang.SatCond, value string) float64 {
	switch c.Kind {
	case lang.CondContains:
		// Whole-token containment: "chocolate ice cream" contains "ice"
		// but not "choc". Case-sensitive, matching the paper's separate
		// "Cafe"/"Café" conditions.
		if containsTokens(value, c.Arg) {
			return 1
		}
		return 0
	case lang.CondMentions:
		if strings.Contains(value, c.Arg) {
			return 1
		}
		return 0
	case lang.CondMatches:
		if ag.rc.fullMatch(c.Arg, value) {
			return 1
		}
		return 0
	case lang.CondSimilarTo:
		if ag.model == nil {
			return 0
		}
		return ag.model.PhraseSimilarity(lowerFields(value), lowerFields(c.Arg))
	case lang.CondInDict:
		d := ag.dicts[c.Arg]
		if d != nil && d[strings.ToLower(value)] {
			return 1
		}
		return 0
	case lang.CondFollowedBy:
		return ag.adjacency(value, c.Arg, true)
	case lang.CondPrecededBy:
		return ag.adjacency(value, c.Arg, false)
	case lang.CondNear:
		return ag.near(value, c.Arg)
	case lang.CondDescRight:
		return ag.descriptorScore(value, c.Arg, true)
	case lang.CondDescLeft:
		return ag.descriptorScore(value, c.Arg, false)
	}
	return 0
}

// tokenIndex returns (building on first use) the document's token →
// occurrences index.
func (ag *aggregator) tokenIndex() map[string][]tokOcc {
	if ag.tokIdx == nil {
		ag.tokIdx = make(map[string][]tokOcc)
		for si, s := range ag.docSents {
			for pos := range s.Tokens {
				w := s.Tokens[pos].Lower
				ag.tokIdx[w] = append(ag.tokIdx[w], tokOcc{si: int32(si), pos: int32(pos)})
			}
		}
	}
	return ag.tokIdx
}

// occurrencesIn returns the occurrences of word within sentence si (a run
// of the sorted occurrence list, located by binary search).
func (ag *aggregator) occurrencesIn(word string, si int32) []tokOcc {
	occ := ag.tokenIndex()[word]
	lo := sort.Search(len(occ), func(i int) bool { return occ[i].si >= si })
	hi := lo
	for hi < len(occ) && occ[hi].si == si {
		hi++
	}
	return occ[lo:hi]
}

// seqAt reports whether the word sequence occurs in s starting at pos.
func seqAt(s *nlp.Sentence, pos int, words []string) bool {
	if pos+len(words) > len(s.Tokens) {
		return false
	}
	for j, w := range words {
		if s.Tokens[pos+j].Lower != w {
			return false
		}
	}
	return true
}

// valueMentions finds (and caches) every occurrence of the value's token
// sequence in the document, probing the token index by the sequence's first
// word instead of scanning every sentence.
func (ag *aggregator) valueMentions(value string) []mention {
	key := strings.ToLower(value)
	if ms, ok := ag.mentions[key]; ok {
		return ms
	}
	words := tokensOfValue(value)
	var ms []mention
	if len(words) > 0 {
		for _, oc := range ag.tokenIndex()[words[0]] {
			s := ag.docSents[oc.si]
			if seqAt(s, int(oc.pos), words) {
				ms = append(ms, mention{sent: s, si: oc.si, l: int(oc.pos), r: int(oc.pos) + len(words) - 1})
			}
		}
	}
	ag.mentions[key] = ms
	return ms
}

// adjacency implements x "s" (followed=true) and "s" x (followed=false):
// boolean — some mention of the value is immediately followed/preceded by
// the literal string.
func (ag *aggregator) adjacency(value, arg string, followed bool) float64 {
	argToks := lowerTokens(arg)
	if len(argToks) == 0 {
		return 0
	}
	for _, m := range ag.valueMentions(value) {
		toks := m.sent.Tokens
		if followed {
			match := true
			for j, w := range argToks {
				p := m.r + 1 + j
				if p >= len(toks) || toks[p].Lower != w {
					match = false
					break
				}
			}
			if match {
				return 1
			}
		} else {
			match := true
			for j, w := range argToks {
				p := m.l - len(argToks) + j
				if p < 0 || toks[p].Lower != w {
					match = false
					break
				}
			}
			if match {
				return 1
			}
		}
	}
	return 0
}

// near implements the proximity condition: 1/(1+distance) for the closest
// co-occurrence of the value and the string within a sentence, maximized
// over the document. The string's positions come from the token index
// (restricted to the mention's sentence) instead of a sentence scan.
func (ag *aggregator) near(value, arg string) float64 {
	argToks := lowerTokens(arg)
	if len(argToks) == 0 {
		return 0
	}
	best := 0.0
	for _, m := range ag.valueMentions(value) {
		for _, oc := range ag.occurrencesIn(argToks[0], m.si) {
			pos := int(oc.pos)
			if !seqAt(m.sent, pos, argToks) {
				continue
			}
			var dist int
			end := pos + len(argToks) - 1
			switch {
			case pos > m.r:
				dist = pos - m.r - 1
			case end < m.l:
				dist = m.l - end - 1
			default:
				dist = 0
			}
			if s := 1.0 / float64(1+dist); s > best {
				best = s
			}
		}
	}
	return best
}

// descriptorScore implements x [[d]] / [[d]] x: the descriptor is expanded
// (done once at normalization), each sentence containing a mention is
// decomposed into canonical clauses, and
//
//	conf(s) = max_i Σ_j match(d_i, c_j),  match(d_i, c_j) = k_i · l_j
//
// when d_i's word sequence occurs in c_j on the required side of the
// mention; the document score is the sum over sentences (§4.4.1(c)).
func (ag *aggregator) descriptorScore(value, desc string, right bool) float64 {
	d := ag.nq.descriptors[desc]
	if d == nil {
		return 0
	}
	// Mentions arrive in (sentence, position) order, so per-sentence groups
	// are consecutive runs — no map grouping needed.
	ms := ag.valueMentions(value)
	var total float64
	for i := 0; i < len(ms); {
		j := i + 1
		for j < len(ms) && ms[j].si == ms[i].si {
			j++
		}
		s := ms[i].sent
		clauses := ag.decompose(s)
		best := 0.0
		for di, seq := range d.seqs {
			ki := d.expansions[di].Score
			var sum float64
			for _, cl := range clauses {
				// The distance between the mention and the matched terms
				// damps the confidence (§2.2: "the distance between x and
				// the terms similar to descriptor affects the confidence").
				bestProx := 0.0
				for _, m := range ms[i:j] {
					if ok, dist := clauseContainsDirectional(&cl, seq, m, right); ok {
						if prox := 1.0 / float64(1+dist); prox > bestProx {
							bestProx = prox
						}
					}
				}
				sum += ki * cl.Score * bestProx
			}
			if sum > best {
				best = sum
			}
		}
		total += best
		i = j
	}
	return total
}

func (ag *aggregator) decompose(s *nlp.Sentence) []decompose.Clause {
	if cl, ok := ag.clauses[s.ID]; ok {
		return cl
	}
	cl := decompose.Decompose(s)
	ag.clauses[s.ID] = cl
	return cl
}

// clauseContainsDirectional checks that the clause contains the word
// sequence in order, entirely after (right) or before (left) the mention,
// and returns the token distance between the mention boundary and the
// nearest matched term.
func clauseContainsDirectional(cl *decompose.Clause, seq []string, m mention, right bool) (bool, int) {
	if len(seq) == 0 {
		return false, 0
	}
	i := 0
	first, last := -1, -1
	for _, tid := range cl.Tokens {
		if right && tid <= m.r {
			continue
		}
		if !right && tid >= m.l {
			break
		}
		// cl.Words excludes punctuation while cl.Tokens includes it; match
		// against the underlying sentence token instead.
		if i < len(seq) && m.sent.Tokens[tid].Lower == seq[i] {
			if i == 0 {
				first = tid
			}
			last = tid
			i++
		}
	}
	if i < len(seq) {
		return false, 0
	}
	if right {
		return true, max0(first - m.r - 1)
	}
	return true, max0(m.l - last - 1)
}

func max0(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// containsTokens reports whole-token containment, case-sensitive.
func containsTokens(value, arg string) bool {
	vt := nlp.Tokenize(value)
	at := nlp.Tokenize(arg)
	if len(at) == 0 || len(at) > len(vt) {
		return false
	}
	for i := 0; i+len(at) <= len(vt); i++ {
		ok := true
		for j := range at {
			if vt[i+j] != at[j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func lowerFields(s string) []string {
	return strings.Fields(strings.ToLower(s))
}

func lowerTokens(s string) []string {
	toks := nlp.Tokenize(s)
	for i := range toks {
		toks[i] = strings.ToLower(toks[i])
	}
	return toks
}
