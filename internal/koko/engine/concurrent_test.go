package engine

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/embed"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
)

// TestConcurrentRunsShareEngine: many goroutines issuing Run/RunWith against
// one shared Engine (the kokod serving pattern) must neither race — the
// regexp cache and global score cache are shared across runs — nor perturb
// each other's results. Run with -race.
func TestConcurrentRunsShareEngine(t *testing.T) {
	var texts []string
	for i := 0; i < 40; i++ {
		texts = append(texts,
			fmt.Sprintf("Cafe Number%d serves smooth espresso daily. Cafe Number%d hired a champion barista.", i, i))
	}
	c := index.NewCorpus(nil, texts)
	ix := index.Build(c)
	eng := New(c, ix, embed.NewModel(), Options{})

	queries := []*lang.Query{
		lang.MustParse(`
			extract x:Entity from "blogs" if ()
			satisfying x
			(str(x) contains "Cafe" {0.4}) or
			(x [["serves coffee"]] {0.3}) or
			(x [["employs baristas"]] {0.3})
			with threshold 0.5`),
		lang.MustParse(`
			extract x:Entity from "blogs" if ()
			satisfying x (str(x) matches "Cafe Number[0-9]+" {1.0})
			with threshold 0.9`),
	}

	// Reference results computed sequentially up front.
	want := make([]*Result, len(queries))
	for i, q := range queries {
		r, err := eng.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Tuples) == 0 {
			t.Fatalf("query %d: no tuples — test would be vacuous", i)
		}
		want[i] = r
	}

	const goroutines = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (g + r) % len(queries)
				// Mix intra-query parallelism and per-run explain into the
				// cross-request concurrency.
				res, err := eng.RunWith(queries[qi], RunOptions{Workers: 1 + g%3, Explain: g%2 == 0})
				if err != nil {
					errs <- err
					return
				}
				if len(res.Tuples) != len(want[qi].Tuples) {
					errs <- fmt.Errorf("goroutine %d query %d: %d tuples, want %d",
						g, qi, len(res.Tuples), len(want[qi].Tuples))
					return
				}
				for i := range res.Tuples {
					if res.Tuples[i].Sid != want[qi].Tuples[i].Sid ||
						!reflect.DeepEqual(res.Tuples[i].Values, want[qi].Tuples[i].Values) {
						errs <- fmt.Errorf("goroutine %d query %d tuple %d differs: %v vs %v",
							g, qi, i, res.Tuples[i], want[qi].Tuples[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRunWithExplainOverride: RunOptions.Explain must control evidence on a
// per-run basis against a single engine built without Explain.
func TestRunWithExplainOverride(t *testing.T) {
	c := index.NewCorpus(nil, []string{"Cafe Vita serves smooth espresso daily."})
	ix := index.Build(c)
	eng := New(c, ix, embed.NewModel(), Options{})
	q := lang.MustParse(`
		extract x:Entity from "f" if ()
		satisfying x (str(x) contains "Cafe" {1.0})
		with threshold 0.5`)

	plain, err := eng.RunWith(q, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	explained, err := eng.RunWith(q, RunOptions{Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Tuples) == 0 || len(explained.Tuples) == 0 {
		t.Fatal("expected tuples from both runs")
	}
	if len(plain.Tuples[0].Evidence) != 0 {
		t.Errorf("explain off: unexpected evidence %v", plain.Tuples[0].Evidence)
	}
	if len(explained.Tuples[0].Evidence) == 0 {
		t.Error("explain on: no evidence attached")
	}
}
