package engine

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
	"repro/internal/nlp"
)

// TestContainsMentionsSemantics pins the paper's §4.4.1 example: "chocolate
// ice cream" contains "ice", mentions "choc", but does not contain "choc".
func TestContainsMentionsSemantics(t *testing.T) {
	value := "chocolate ice cream"
	ag := newAggregator(&normQuery{}, nil, nil, newRECache(), nil, nil)
	cases := []struct {
		kind lang.SatKind
		arg  string
		want float64
	}{
		{lang.CondContains, "ice", 1},
		{lang.CondMentions, "choc", 1},
		{lang.CondContains, "choc", 0},
		{lang.CondContains, "chocolate ice", 1},
		{lang.CondMentions, "late ice", 1},
		{lang.CondContains, "cream cheese", 0},
		{lang.CondMatches, "choc.*", 1},
		{lang.CondMatches, "choc", 0}, // full match only
	}
	for _, tc := range cases {
		got := ag.confidence(lang.SatCond{Kind: tc.kind, Arg: tc.arg, Var: "x"}, value)
		if got != tc.want {
			t.Errorf("%v(%q) on %q = %v, want %v", tc.kind, tc.arg, value, got, tc.want)
		}
	}
}

// TestNearScoreFormula pins score = 1/(1+distance).
func TestNearScoreFormula(t *testing.T) {
	c := index.NewCorpus(nil, []string{"Cafe Benz serves great coffee."})
	s := &c.Sentences[0]
	ag := newAggregator(&normQuery{}, nil, nil, newRECache(), nil, []*nlp.Sentence{s})
	// "Cafe Benz" tokens 0-1; "coffee" token 4; gap = tokens 2,3 => dist 2.
	got := ag.near("Cafe Benz", "coffee")
	want := 1.0 / 3.0
	if got != want {
		t.Errorf("near = %v, want %v", got, want)
	}
	// Adjacent: "serves" at 2, dist 0 => 1.
	if got := ag.near("Cafe Benz", "serves"); got != 1 {
		t.Errorf("adjacent near = %v", got)
	}
	if got := ag.near("Cafe Benz", "missing"); got != 0 {
		t.Errorf("absent near = %v", got)
	}
}

// TestDescriptorDirectionality: x [[d]] only credits evidence after the
// mention; [[d]] x only before.
func TestDescriptorDirectionality(t *testing.T) {
	texts := []string{"The baristas of Gravity Beans won again. Gravity Beans serves espresso."}
	c := index.NewCorpus(nil, texts)
	ix := index.Build(c)
	e := New(c, ix, embed.NewModel(), Options{})
	right := lang.MustParse(`extract x:Entity from f if () satisfying x (x [["serves coffee"]] {1}) with threshold 0.3`)
	left := lang.MustParse(`extract x:Entity from f if () satisfying x ([["baristas of"]] x {1}) with threshold 0.3`)
	r1, err := e.Run(right)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(left)
	if err != nil {
		t.Fatal(err)
	}
	found := func(res *Result, v string) bool {
		for _, tp := range res.Tuples {
			if tp.Values[0] == v {
				return true
			}
		}
		return false
	}
	if !found(r1, "Gravity Beans") {
		t.Errorf("right descriptor missed: %v", r1.Tuples)
	}
	if !found(r2, "Gravity Beans") {
		t.Errorf("left descriptor missed: %v", r2.Tuples)
	}
	// "espresso" (entity after "serves") must not be credited by the
	// RIGHT-side descriptor: nothing follows it.
	if found(r1, "espresso") {
		t.Errorf("right descriptor credited trailing entity: %v", r1.Tuples)
	}
}

// TestEqConstraint: (expr) eq (x) requires identical spans.
func TestEqConstraint(t *testing.T) {
	texts := []string{"Anna ate cheesecake."}
	c := index.NewCorpus(nil, texts)
	ix := index.Build(c)
	e := New(c, ix, nil, Options{})
	q := lang.MustParse(`extract d:Str from f if (/ROOT:{
		v = //verb, o = v/dobj, d = (v.subtree)
	} (o) eq (o))`)
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) == 0 {
		t.Fatal("eq self failed")
	}
	// eq between different-span vars filters everything.
	q2 := lang.MustParse(`extract d:Str from f if (/ROOT:{
		v = //verb, o = v/dobj, s = v/nsubj, d = (v.subtree)
	} (o) eq (s))`)
	res2, err := e.Run(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Tuples) != 0 {
		t.Errorf("eq of distinct spans matched: %v", res2.Tuples)
	}
}

// TestElasticConditions: min/max/etype bracket conditions on ^ constrain
// horizontal matches.
func TestElasticConditions(t *testing.T) {
	texts := []string{"Anna ate some delicious cheesecake."}
	c := index.NewCorpus(nil, texts)
	ix := index.Build(c)
	e := New(c, ix, nil, Options{})
	// Gap between verb and "cheesecake" is 2 tokens; max=1 must fail,
	// min=2 must succeed.
	fail := lang.MustParse(`extract x:Str from f if (/ROOT:{
		v = //verb, w = "cheesecake", x = v + ^[max=1] + w })`)
	ok := lang.MustParse(`extract x:Str from f if (/ROOT:{
		v = //verb, w = "cheesecake", x = v + ^[min=2] + w })`)
	r1, err := e.Run(fail)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Tuples) != 0 {
		t.Errorf("max=1 matched: %v", r1.Tuples)
	}
	r2, err := e.Run(ok)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Tuples) != 1 || r2.Tuples[0].Values[0] != "ate some delicious cheesecake" {
		t.Errorf("min=2: %v", r2.Tuples)
	}
	// etype condition: the elastic must be exactly an entity span.
	ent := lang.MustParse(`extract x:Str from f if (/ROOT:{
		s = /root/nsubj, v = //verb, x = s + v + ^[etype="Entity"] })`)
	r3, err := e.Run(ent)
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Tuples) != 0 {
		// "some delicious cheesecake" isn't an entity span (entity is just
		// "cheesecake"), so nothing should match.
		t.Errorf("etype elastic matched: %v", r3.Tuples)
	}
}

// TestScoresSurfaceInResult: similarTo scores flow into Tuple.Scores
// (Example 2.2 prints them).
func TestScoresSurfaceInResult(t *testing.T) {
	c := index.NewCorpus(nil, []string{"cities such as Tokyo."})
	ix := index.Build(c)
	e := New(c, ix, embed.NewModel(), Options{})
	q := lang.MustParse(`extract a:GPE from f if () satisfying a (a SimilarTo "city" {1.0})`)
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("tuples = %v", res.Tuples)
	}
	s := res.Tuples[0].Scores["a"]
	if s <= 0.25 || s >= 0.7 {
		t.Errorf("score = %v, want Example 2.2 band", s)
	}
}

// TestMultipleSatisfyingClauses: the paper allows "up to one satisfying
// clause for each output variable" — both must pass for a tuple to survive.
func TestMultipleSatisfyingClauses(t *testing.T) {
	texts := []string{
		"Blue Fox Cafe hired Anna Smith from Portland.",
		"Iron Owl Cafe opened downtown.",
	}
	c := index.NewCorpus(nil, texts)
	ix := index.Build(c)
	e := New(c, ix, embed.NewModel(), Options{})
	q := lang.MustParse(`
		extract x:Entity, p:Person from "blogs" if ()
		satisfying x (str(x) contains "Cafe" {1}) with threshold 0.5
		satisfying p (str(p) contains "Anna" {1}) with threshold 0.5`)
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) == 0 {
		t.Fatal("no tuples")
	}
	for _, tp := range res.Tuples {
		if tp.Values[0] != "Blue Fox Cafe" || tp.Values[1] != "Anna Smith" {
			t.Errorf("tuple %v should have been filtered (both clauses must hold)", tp.Values)
		}
		if len(tp.Scores) != 2 {
			t.Errorf("scores for both variables expected: %v", tp.Scores)
		}
	}
}
