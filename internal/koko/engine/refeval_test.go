package engine

import (
	"sort"
	"strconv"

	"repro/internal/nlp"
)

// This file freezes the seed (pre-slot) extract-clause evaluator: the
// map-based assignment representation and the allocating per-sentence
// evaluation it used. It exists purely as the reference semantics for the
// differential tests — the hot path must emit byte-identical assignments,
// in the same order, as this implementation.

// refAssignment is the seed assignment representation: variable name →
// binding.
type refAssignment map[string]binding

// refSentEval is the seed per-sentence evaluator state, rebuilt from
// scratch for every sentence exactly as the seed engine did.
type refSentEval struct {
	nq      *normQuery
	s       *nlp.Sentence
	rc      *reCache
	skip    map[string]bool
	cands   map[string][]binding
	nodeSet map[string]map[int]bool
	out     []refAssignment
	gspOff  bool
}

// refEvalSentence runs the seed evaluator over one sentence and returns all
// satisfying assignments in emission order.
func refEvalSentence(nq *normQuery, s *nlp.Sentence, rc *reCache, countOf func(name string) int, gspOff bool) []refAssignment {
	ev := &refSentEval{
		nq:      nq,
		s:       s,
		rc:      rc,
		skip:    map[string]bool{},
		cands:   map[string][]binding{},
		nodeSet: map[string]map[int]bool{},
		gspOff:  gspOff,
	}
	if !gspOff {
		ev.generateSkipPlan(countOf)
	}
	if !ev.buildCandidates() {
		return nil
	}
	var enum []*normVar
	for _, v := range nq.vars {
		if ev.isEnumerable(v) {
			enum = append(enum, v)
		}
	}
	ev.enumerate(enum, 0, refAssignment{})
	return ev.out
}

func (ev *refSentEval) isEnumerable(v *normVar) bool {
	if v.kind == vkSubtree || v.kind == vkSpan {
		return false
	}
	return !ev.skip[v.name]
}

func (ev *refSentEval) generateSkipPlan(countOf func(string) int) {
	t := len(ev.s.Tokens)
	for _, h := range ev.nq.horizontals {
		type vc struct {
			name string
			cost float64
		}
		costs := make([]vc, 0, len(h.comps))
		for _, cn := range h.comps {
			v := ev.nq.byName[cn]
			var c float64
			switch v.kind {
			case vkElastic:
				c = float64(t) * float64(t+1) / 2
			case vkSubtree:
				if countOf != nil {
					c = float64(countOf(v.base))
				}
			default:
				if countOf != nil {
					c = float64(countOf(cn))
				}
			}
			costs = append(costs, vc{name: cn, cost: c})
		}
		sort.Slice(costs, func(i, j int) bool {
			if costs[i].cost != costs[j].cost {
				return costs[i].cost > costs[j].cost
			}
			return costs[i].name < costs[j].name
		})
		pos := map[string]int{}
		for i, cn := range h.comps {
			pos[cn] = i
		}
		for _, c := range costs {
			i := pos[c.name]
			if i == 0 || i == len(h.comps)-1 {
				continue
			}
			vl, vr := h.comps[i-1], h.comps[i+1]
			if !ev.skip[vl] && !ev.skip[vr] {
				ev.skip[c.name] = true
			}
		}
	}
}

func (ev *refSentEval) buildCandidates() bool {
	s := ev.s
	t := len(s.Tokens)
	for _, v := range ev.nq.vars {
		if !ev.isEnumerable(v) {
			continue
		}
		var list []binding
		switch v.kind {
		case vkNode:
			for _, tid := range ev.nodeMatches(v) {
				list = append(list, binding{sp: span{tid, tid}, tid: tid})
			}
		case vkEntity:
			for ei := range s.Entities {
				e := &s.Entities[ei]
				if nlp.GPEAlias(v.etype, e.Type) {
					list = append(list, binding{sp: span{e.L, e.R}, tid: -1})
				}
			}
		case vkTokens:
			for _, pos := range findTokenSeq(s, v.words) {
				list = append(list, binding{sp: span{pos, pos + len(v.words) - 1}, tid: -1})
			}
		case vkElastic:
			for l := 0; l <= t; l++ {
				if ev.elasticOK(v, emptySpanAt(l)) {
					list = append(list, binding{sp: emptySpanAt(l), tid: -1})
				}
				for r := l; r < t; r++ {
					if ev.elasticOK(v, span{l, r}) {
						list = append(list, binding{sp: span{l, r}, tid: -1})
					}
				}
			}
		}
		if len(list) == 0 {
			return false
		}
		ev.cands[v.name] = list
	}
	return true
}

func (ev *refSentEval) nodeMatches(v *normVar) []int {
	if set, ok := ev.nodeSet[v.name]; ok {
		out := make([]int, 0, len(set))
		for tid := range set {
			out = append(out, tid)
		}
		sort.Ints(out)
		return out
	}
	tids := matchPathTokens(ev.s, v.path, ev.rc)
	set := make(map[int]bool, len(tids))
	for _, tid := range tids {
		set[tid] = true
	}
	ev.nodeSet[v.name] = set
	return tids
}

func (ev *refSentEval) nodeMatchSet(v *normVar) map[int]bool {
	ev.nodeMatches(v)
	return ev.nodeSet[v.name]
}

func (ev *refSentEval) elasticOK(v *normVar, sp span) bool {
	for _, c := range v.conds {
		switch c.Key {
		case "min":
			if n, err := strconv.Atoi(c.Value); err == nil && sp.length() < n {
				return false
			}
		case "max":
			if n, err := strconv.Atoi(c.Value); err == nil && sp.length() > n {
				return false
			}
		case "regex":
			if sp.empty() || !ev.rc.fullMatch(c.Value, ev.s.Text(sp.l, sp.r)) {
				return false
			}
		case "etype":
			if sp.empty() {
				return false
			}
			ok := false
			for ei := range ev.s.Entities {
				e := &ev.s.Entities[ei]
				if e.L == sp.l && e.R == sp.r && nlp.GPEAlias(nlp.CanonicalEntityType(c.Value), e.Type) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
	}
	return true
}

func (ev *refSentEval) enumerate(vars []*normVar, i int, a refAssignment) {
	if i == len(vars) {
		ev.deriveAndEmit(a)
		return
	}
	v := vars[i]
	for _, b := range ev.cands[v.name] {
		a[v.name] = b
		if ev.constraintsOK(a, v.name) {
			ev.enumerate(vars, i+1, a)
		}
		delete(a, v.name)
	}
}

func (ev *refSentEval) constraintsOK(a refAssignment, justBound string) bool {
	for _, c := range ev.nq.constraints {
		if c.a != justBound && c.b != justBound {
			continue
		}
		ba, okA := a[c.a]
		bb, okB := a[c.b]
		if !okA || !okB {
			continue
		}
		if !ev.checkConstraint(c, ba, bb) {
			return false
		}
	}
	return true
}

func (ev *refSentEval) checkConstraint(c normConstraint, ba, bb binding) bool {
	switch c.kind {
	case ckParentOf:
		return ba.tid >= 0 && bb.tid >= 0 && ev.s.Tokens[bb.tid].Head == ba.tid
	case ckAncestorOf:
		return ba.tid >= 0 && bb.tid >= 0 && ev.s.IsAncestor(ba.tid, bb.tid)
	case ckInSpan:
		return !ba.sp.empty() && ba.sp.l >= bb.sp.l && ba.sp.r <= bb.sp.r
	case ckEqSpan:
		return ba.sp == bb.sp
	}
	return false
}

func (ev *refSentEval) deriveAndEmit(a refAssignment) {
	full := refAssignment{}
	for k, v := range a {
		full[k] = v
	}
	for _, v := range ev.nq.vars {
		if _, bound := full[v.name]; bound {
			continue
		}
		switch v.kind {
		case vkSubtree:
			base, ok := full[v.base]
			if !ok || base.tid < 0 {
				return
			}
			tok := &ev.s.Tokens[base.tid]
			full[v.name] = binding{sp: span{tok.SubL, tok.SubR}, tid: -1}
		case vkSpan:
			if !ev.alignSpan(v, full) {
				return
			}
		default:
			if ev.skip[v.name] {
				continue
			}
			return
		}
	}
	for _, v := range ev.nq.vars {
		if _, ok := full[v.name]; !ok {
			return
		}
	}
	for _, c := range ev.nq.constraints {
		ba, okA := full[c.a]
		bb, okB := full[c.b]
		if !okA || !okB || !ev.checkConstraint(c, ba, bb) {
			return
		}
	}
	ev.out = append(ev.out, full)
}

func (ev *refSentEval) alignSpan(v *normVar, a refAssignment) bool {
	comps := v.comps
	n := len(comps)
	spans := make([]span, n)
	bound := make([]bool, n)
	for i, cn := range comps {
		if b, ok := a[cn]; ok {
			spans[i] = b.sp
			bound[i] = true
		}
	}
	if n == 0 || !bound[0] || !bound[n-1] {
		return false
	}
	for i := 0; i < n; i++ {
		if bound[i] {
			continue
		}
		if i == 0 || i == n-1 || !bound[i-1] || !bound[i+1] {
			return false
		}
		gap := span{l: spans[i-1].r + 1, r: spans[i+1].l - 1}
		if gap.r < gap.l-1 {
			return false
		}
		cv := ev.nq.byName[comps[i]]
		if !ev.validateDerived(cv, gap, a) {
			return false
		}
		spans[i] = gap
		bound[i] = true
		a[comps[i]] = binding{sp: gap, tid: derivedTid(cv, gap)}
	}
	pos := spans[0].l
	for i := 0; i < n; i++ {
		if spans[i].l != pos && !(spans[i].empty() && spans[i].l == pos) {
			return false
		}
		if !spans[i].empty() {
			pos = spans[i].r + 1
		}
	}
	a[v.name] = binding{sp: span{spans[0].l, spans[n-1].r}, tid: -1}
	return true
}

func (ev *refSentEval) validateDerived(v *normVar, sp span, a refAssignment) bool {
	switch v.kind {
	case vkElastic:
		if sp.r < sp.l-1 {
			return false
		}
		return ev.elasticOK(v, sp)
	case vkNode:
		return sp.length() == 1 && ev.nodeMatchSet(v)[sp.l]
	case vkTokens:
		if sp.length() != len(v.words) {
			return false
		}
		for j, w := range v.words {
			if ev.s.Tokens[sp.l+j].Lower != w {
				return false
			}
		}
		return true
	case vkEntity:
		for ei := range ev.s.Entities {
			e := &ev.s.Entities[ei]
			if e.L == sp.l && e.R == sp.r && nlp.GPEAlias(v.etype, e.Type) {
				return true
			}
		}
		return false
	case vkSubtree:
		base, ok := a[v.base]
		if !ok || base.tid < 0 {
			return false
		}
		tok := &ev.s.Tokens[base.tid]
		return sp.l == tok.SubL && sp.r == tok.SubR
	}
	return false
}
