package engine

import (
	"reflect"
	"testing"

	"repro/internal/embed"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
)

// Adversarially-ordered queries: the least selective condition (an elastic
// span with its O(t²) candidate enumeration) is written first, so written-
// order evaluation loops over it outermost. The planner must move it last —
// and still produce byte-identical output.
var planAdversarialQueries = []string{
	`extract d:Str from f if (/ROOT:{ a = ^[min=1,max=3], v = //verb, o = v/dobj, d = (o.subtree) } (a) in (d))`,
	`extract x:Str from f if (/ROOT:{ a = ^[max=2], v = //verb, w = "the", x = v + a + w })`,
	`extract d:Str, s:Str from f if (/ROOT:{ g = ^, v = //verb, o = v/dobj, d = (o.subtree), s = "i" + g + v + ^ + o })`,
}

func candidatesOf(dpli *dpliResult, c *index.Corpus) []int32 {
	if dpli.allSentences {
		all := make([]int32, c.NumSentences())
		for i := range all {
			all[i] = int32(i)
		}
		return all
	}
	return dpli.candSids
}

func TestPlanOrdersSmallestFirst(t *testing.T) {
	model := embed.NewModel()
	c := benchHappyDB(120, 7)
	ix := index.Build(c)

	nq, err := normalize(lang.MustParse(planAdversarialQueries[0]), model, 0)
	if err != nil {
		t.Fatal(err)
	}
	dpli := runDPLI(nq, ix, true)
	plan := buildQueryPlan(nq, dpli, candidatesOf(dpli, c))
	if !plan.reordered {
		t.Fatalf("adversarial query not reordered: %+v", plan.steps)
	}
	last := nq.vars[plan.steps[len(plan.steps)-1].slot]
	if last.kind != vkElastic {
		t.Fatalf("elastic condition should order last, got %q (%s)", last.name, kindName(last.kind))
	}
	if first := nq.vars[plan.steps[0].slot]; first.name != "v" {
		t.Fatalf("expected the selective node condition first, got %q", first.name)
	}
	if plan.steps[0].est >= plan.steps[len(plan.steps)-1].est {
		t.Fatalf("estimates not ascending toward the elastic: %+v", plan.steps)
	}

	// The same conditions in well-chosen written order must keep their
	// order (ties break toward declaration order), so reordered stays
	// false and no re-sort cost is paid.
	well := `extract d:Str from f if (/ROOT:{ v = //verb, o = v/dobj, d = (o.subtree), z = ^[min=1,max=3] } (z) in (d))`
	nq, err = normalize(lang.MustParse(well), model, 0)
	if err != nil {
		t.Fatal(err)
	}
	dpli = runDPLI(nq, ix, true)
	plan = buildQueryPlan(nq, dpli, candidatesOf(dpli, c))
	if plan.reordered {
		t.Fatalf("well-ordered query spuriously reordered: %+v", plan.steps)
	}
}

// TestPlannedMatchesWrittenOrder is the tentpole differential: planner-on
// and planner-off runs must produce byte-identical tuple sequences across
// query shapes, corpora, and worker counts.
func TestPlannedMatchesWrittenOrder(t *testing.T) {
	model := embed.NewModel()
	queries := append(append([]string{}, diffQueries...), planAdversarialQueries...)
	for cname, c := range diffCorpora() {
		ix := index.Build(c)
		e := New(c, ix, model, Options{})
		for _, src := range queries {
			q := lang.MustParse(src)
			for _, workers := range []int{1, 2} {
				off, err := e.RunWith(q, RunOptions{Workers: workers, NoPlan: true})
				if err != nil {
					t.Fatalf("%s: plan-off: %v", cname, err)
				}
				on, err := e.RunWith(q, RunOptions{Workers: workers})
				if err != nil {
					t.Fatalf("%s: plan-on: %v", cname, err)
				}
				if !reflect.DeepEqual(off.Tuples, on.Tuples) {
					t.Fatalf("%s workers=%d: planned tuples diverge\nquery: %s\noff: %v\non:  %v",
						cname, workers, src, off.Tuples, on.Tuples)
				}
				if off.Plan != nil {
					t.Fatalf("plan-off run carries a plan")
				}
				if on.Plan == nil && on.CandidateSentences > 0 {
					t.Fatalf("plan-on run missing plan info (%s)", src)
				}
			}
		}
	}
}

// TestPlannedMatchesSeedSemantics pins the planned evaluator to the frozen
// seed evaluator (refeval_test.go), sentence by sentence: same assignments,
// same bindings, same emission order.
func TestPlannedMatchesSeedSemantics(t *testing.T) {
	model := embed.NewModel()
	queries := append(append([]string{}, diffQueries...), planAdversarialQueries...)
	for cname, c := range diffCorpora() {
		ix := index.Build(c)
		for _, src := range queries {
			nq, err := normalize(lang.MustParse(src), model, 0)
			if err != nil {
				t.Fatal(err)
			}
			dpli := runDPLI(nq, ix, true)
			plan := buildQueryPlan(nq, dpli, candidatesOf(dpli, c))
			rc := newRECache()
			cc := newCountCursor(dpli, len(nq.vars))
			ev := newSentEval(nq, rc, false)
			ev.setPlan(plan)
			for sid := 0; sid < c.NumSentences(); sid++ {
				s := c.Sentence(sid)
				want := refEvalSentence(nq, s, rc, refCountOf(dpli, nq, int32(sid)), false)
				got := ev.evalSentence(s, &cc, int32(sid))
				if got != len(want) {
					t.Fatalf("%s sid=%d: planned emitted %d assignments, seed %d\nquery: %s",
						cname, sid, got, len(want), src)
				}
				for i := 0; i < got; i++ {
					a := ev.out(i)
					for _, v := range nq.vars {
						if a[v.slot] != want[i][v.name] {
							t.Fatalf("%s sid=%d assignment %d var %q: planned=%+v seed=%+v\nquery: %s",
								cname, sid, i, v.name, a[v.slot], want[i][v.name], src)
						}
					}
				}
			}
		}
	}
}

// TestPlanActualsAccumulate checks the estimated-vs-actual report: actual
// candidate counts accumulate across sentences and workers.
func TestPlanActualsAccumulate(t *testing.T) {
	model := embed.NewModel()
	c := benchHappyDB(60, 7)
	ix := index.Build(c)
	e := New(c, ix, model, Options{})
	q := lang.MustParse(diffQueries[0])
	for _, workers := range []int{1, 3} {
		res, err := e.RunWith(q, RunOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan == nil || len(res.Plan.Steps) == 0 {
			t.Fatal("missing plan info")
		}
		var total int64
		for _, st := range res.Plan.Steps {
			total += st.Actual
		}
		if total == 0 {
			t.Fatalf("workers=%d: no actual bindings accumulated: %+v", workers, res.Plan.Steps)
		}
	}
}
