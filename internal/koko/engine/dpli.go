package engine

import (
	"sort"

	"repro/internal/koko/index"
	"repro/internal/koko/lang"
)

// varCounts estimates |bindings[v][sid]| for one variable as two parallel
// arrays sorted by sid — the flat replacement for the seed's
// map[string]map[int32]int count tables. Lookups during evaluation walk the
// arrays with a per-worker cursor (sids are visited in ascending order), so
// the GSP cost model costs O(1) amortized per probe and zero allocations.
type varCounts struct {
	sids   []int32
	counts []int32
}

// dpliResult carries the outcome of the Decompose-Paths-and-Lookup-Indices
// module (Algorithm 1): candidate sentences and per-variable binding
// estimates.
type dpliResult struct {
	// candSids is the sorted candidate sentence set: the join of all index
	// accesses. Empty + exhausted=true means the query provably has no
	// answers (a decomposed path missed the index entirely).
	candSids  []int32
	exhausted bool
	// allSentences is set when no variable constrains the candidate set
	// (empty extract clause): every sentence must be considered.
	allSentences bool
	// counts[slot] estimates |bindings[v][sid]| for the GSP cost model;
	// counts come from the variable's dominant path (Example 4.5). nil for
	// a run without estimates (RunNaive).
	counts []varCounts
}

// countsOfPostings collapses a (sid,tid)-sorted posting list into per-sid
// occurrence counts in one linear pass.
func countsOfPostings(ps []index.Posting) varCounts {
	var vc varCounts
	for i := 0; i < len(ps); {
		j := i + 1
		for j < len(ps) && ps[j].Sid == ps[i].Sid {
			j++
		}
		vc.sids = append(vc.sids, ps[i].Sid)
		vc.counts = append(vc.counts, int32(j-i))
		i = j
	}
	return vc
}

// countsOfList is countsOfPostings over a possibly-lazy list: runs stream
// through the cursor one block at a time, so only the count arrays
// materialize.
func countsOfList(l index.PostingList) varCounts {
	var vc varCounts
	var c index.ListCursor
	for c.Reset(l); c.Valid(); c.NextRun() {
		vc.sids = append(vc.sids, c.Sid())
		vc.counts = append(vc.counts, int32(len(c.Run())))
	}
	return vc
}

// sidsOfList is index.SidsOf over a possibly-lazy list.
func sidsOfList(l index.PostingList) []int32 {
	var out []int32
	var c index.ListCursor
	for c.Reset(l); c.Valid(); c.NextRun() {
		out = append(out, c.Sid())
	}
	return out
}

// countsOfEntities is countsOfPostings for (sid,u)-sorted entity postings.
func countsOfEntities(eps []index.EntityPosting) varCounts {
	var vc varCounts
	for i := 0; i < len(eps); {
		j := i + 1
		for j < len(eps) && eps[j].Sid == eps[i].Sid {
			j++
		}
		vc.sids = append(vc.sids, eps[i].Sid)
		vc.counts = append(vc.counts, int32(j-i))
		i = j
	}
	return vc
}

// runDPLIGuarded is runDPLI with a recovery boundary for damaged block
// stores: lazy block decode has no error channel (posting-list access is
// plain slice access), so the block store panics with *index.StoreError on
// CRC or structural corruption, and this wrapper — every index access of a
// query happens inside runDPLI — converts that into a query error.
func runDPLIGuarded(nq *normQuery, ix *index.Index, planned bool) (res *dpliResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			se, ok := r.(*index.StoreError)
			if !ok {
				panic(r)
			}
			res, err = nil, se
		}
	}()
	return runDPLI(nq, ix, planned), nil
}

// runDPLI implements §4.2 over the multi-index. planned enables the
// selectivity-ordered join pre-filter inside decomposed-path lookups (the
// planner's DPLI-level leg); planned=false reproduces the written-order
// baseline exactly.
func runDPLI(nq *normQuery, ix *index.Index, planned bool) *dpliResult {
	res := &dpliResult{counts: make([]varCounts, len(nq.vars))}
	var sidSets [][]int32

	// Entity variables: posting lists from the entity index.
	for _, v := range nq.vars {
		if v.kind != vkEntity {
			continue
		}
		eps := ix.EntitiesOfType(v.etype)
		if len(eps) == 0 {
			res.exhausted = true
			return res
		}
		vc := countsOfEntities(eps)
		res.counts[v.slot] = vc
		sidSets = append(sidSets, vc.sids)
	}

	// Literal token-sequence variables prune through the word index.
	for _, v := range nq.vars {
		if v.kind != vkTokens || len(v.words) == 0 {
			continue
		}
		sids := wordConjunctionSids(ix, v.words)
		if sids == nil {
			res.exhausted = true
			return res
		}
		res.counts[v.slot] = countsOfList(ix.WordList(v.words[0]))
		sidSets = append(sidSets, sids)
	}

	// Dominant paths (§4.2.1): decompose and look up each; dominated
	// variables inherit their dominant path's bindings.
	dominant, repOf := nq.dominantPaths()
	domCounts := map[string]varCounts{}
	for _, dv := range dominant {
		ps, ok := lookupDecomposed(ix, dv.path, FullMode, planned)
		if !ok {
			res.exhausted = true
			return res
		}
		vc := countsOfPostings(ps)
		domCounts[dv.name] = vc
		sidSets = append(sidSets, vc.sids)
	}
	for _, v := range nq.nodeVars() {
		res.counts[v.slot] = domCounts[repOf[v.name].name]
	}

	if len(sidSets) == 0 {
		res.allSentences = true
		return res
	}
	// Intersect smallest-first: start from the most selective set so every
	// later intersection (galloping inside IntersectSids) works on the
	// smallest possible frontier.
	sort.Slice(sidSets, func(i, j int) bool { return len(sidSets[i]) < len(sidSets[j]) })
	cand := sidSets[0]
	for _, s := range sidSets[1:] {
		if len(cand) == 0 {
			break
		}
		cand = index.IntersectSids(cand, s)
	}
	res.candSids = cand
	if len(cand) == 0 {
		res.exhausted = true
	}
	return res
}

// countCursor walks the per-slot count arrays for one worker. Sentence ids
// ascend within a worker's document stream, so each slot needs only a
// forward cursor — no map lookups, no binary search in the common case.
type countCursor struct {
	d   *dpliResult
	pos []int
}

func newCountCursor(d *dpliResult, numVars int) countCursor {
	return countCursor{d: d, pos: make([]int, numVars)}
}

// at returns the binding estimate for (slot, sid). sid must be
// non-decreasing across calls for a given slot.
func (cc *countCursor) at(slot int, sid int32) int {
	if cc.d == nil || slot >= len(cc.d.counts) {
		return 0
	}
	vc := &cc.d.counts[slot]
	p := cc.pos[slot]
	for p < len(vc.sids) && vc.sids[p] < sid {
		p++
	}
	cc.pos[slot] = p
	if p < len(vc.sids) && vc.sids[p] == sid {
		return int(vc.counts[p])
	}
	return 0
}

// AblationMode selects which index families DPLI may consult — the
// design-choice ablation of the multi-indexing scheme. The zero value
// disables everything; FullMode is the real engine.
type AblationMode struct {
	UsePL    bool // parse-label hierarchy index
	UsePOS   bool // POS-tag hierarchy index
	UseWords bool // word inverted index
}

// FullMode is the complete multi-index.
var FullMode = AblationMode{UsePL: true, UsePOS: true, UseWords: true}

// LookupDecomposed decomposes one dominant path into parse-label, POS, and
// word paths (Example 4.2), performs the index lookups, and joins the
// results (§4.2.2). ok=false means some decomposed path has no index match,
// in which case evaluation "immediately ceases" (§4.2.2 Discussion).
// Exported for the index-scheme comparison harness.
func LookupDecomposed(ix *index.Index, steps []lang.PathStep) ([]index.Posting, bool) {
	return lookupDecomposed(ix, steps, FullMode, false)
}

// LookupDecomposedMode is LookupDecomposed restricted to a subset of the
// index families; disabled families contribute no pruning (their decomposed
// paths are treated as pure wildcards). Used by the ablation experiments.
func LookupDecomposedMode(ix *index.Index, steps []lang.PathStep, mode AblationMode) ([]index.Posting, bool) {
	return lookupDecomposed(ix, steps, mode, false)
}

// lookupDecomposed is the shared implementation. planned reorders the
// word-chain joins by selectivity: every decomposed posting list is fetched
// up front, their sentence-id sets are intersected smallest-first, and each
// list (and the hierarchy join result) is restricted to the surviving
// sentences before the pairwise joinAncestorDescendant / joinSameToken /
// joinHasAncestor merges run. Any posting the unfiltered joins would emit
// has a same-sentence witness in every list, so its sentence survives the
// intersection and the filtered joins emit it too — the pre-filter only
// removes sentences that could never join, making the expensive per-sid
// merge work proportional to the most selective list instead of the first.
func lookupDecomposed(ix *index.Index, steps []lang.PathStep, mode AblationMode, planned bool) ([]index.Posting, bool) {
	m := len(steps)
	plPath := make(index.Path, m)
	posPath := make(index.Path, m)
	type wordAt struct {
		word string
		step int
	}
	var words []wordAt
	for i, st := range steps {
		cls, canon := classifyStep(st)
		plPath[i] = index.Step{Desc: st.Desc, Label: "*"}
		posPath[i] = index.Step{Desc: st.Desc, Label: "*"}
		switch cls {
		case scParse:
			plPath[i].Label = canon
		case scPOS:
			posPath[i].Label = canon
		case scWord:
			words = append(words, wordAt{word: canon, step: i})
		}
		if p := stepPOS(st); p != "" && posPath[i].Label == "*" {
			posPath[i].Label = p
		}
		if cls != scWord {
			if w := stepWord(st); w != "" {
				words = append(words, wordAt{word: w, step: i})
			}
		}
	}

	// Hierarchy lookups. A decomposed path that is entirely wildcards on one
	// alphabet carries only depth constraints, which the other alphabet's
	// lookup over the isomorphic hierarchy already enforces — so it is
	// skipped (Algorithm 1 decomposes "if possible").
	if !mode.UseWords {
		words = nil
	}
	if !mode.UsePL {
		for i := range plPath {
			plPath[i].Label = "*"
		}
	}
	if !mode.UsePOS {
		for i := range posPath {
			posPath[i].Label = "*"
		}
	}
	plHas, posHas := hasConcrete(plPath), hasConcrete(posPath)
	// p stays a lazy PostingList until a join forces it: a single matched
	// hierarchy node's list never materializes as a whole — the cursor joins
	// below decode only the blocks whose sid bounds survive the merge.
	var p index.PostingList
	pAll := false // set when neither hierarchy path has concrete labels
	switch {
	case plHas && posHas:
		p1 := ix.PL.LookupList(plPath)
		if index.ListLen(p1) == 0 {
			return nil, false
		}
		p2 := ix.POS.LookupList(posPath)
		if index.ListLen(p2) == 0 {
			return nil, false
		}
		p = index.SlicePostings(joinSameToken(p1, p2))
	case plHas:
		p = ix.PL.LookupList(plPath)
	case posHas:
		p = ix.POS.LookupList(posPath)
	default:
		// Pure-wildcard path: only the word path (if any) can prune. With
		// no words either, fall back to a full POS-hierarchy walk so the
		// depth constraint still applies.
		if len(words) == 0 {
			ps := ix.POS.Lookup(posPath)
			if len(ps) == 0 {
				return nil, false
			}
			return ps, true
		}
		pAll = true
	}
	if index.ListLen(p) == 0 && !pAll {
		return nil, false
	}

	if len(words) == 0 {
		return index.Materialize(p), true
	}

	// Word path: access the word index per word left-to-right and join with
	// the ancestor/descendant depth arithmetic (Example 4.4). minGapExact
	// tells whether the depth difference is exact (all '/' axes between the
	// two words) or a lower bound (some '//' axis).
	exactPrefix := func(upto int) bool { // axes 0..upto all child axes?
		for i := 0; i <= upto; i++ {
			if steps[i].Desc {
				return false
			}
		}
		return true
	}
	exactBetween := func(from, to int) bool { // axes (from, to]
		for i := from + 1; i <= to; i++ {
			if steps[i].Desc {
				return false
			}
		}
		return true
	}

	lists := make([][]index.Posting, len(words))
	for k, w := range words {
		lists[k] = filterByDepth(ix.WordList(w.word), int32(w.step), exactPrefix(w.step))
		if len(lists[k]) == 0 {
			return nil, false
		}
	}
	if planned && (len(words) > 1 || !pAll) {
		// Selectivity pre-filter: intersect every list's sentence ids
		// smallest-first, then restrict all join inputs to the survivors.
		// p's sid set streams off its block directory-guided cursor, and the
		// restriction of p decodes only blocks overlapping the survivors.
		sets := make([][]int32, 0, len(words)+1)
		for _, l := range lists {
			sets = append(sets, index.SidsOf(l))
		}
		if !pAll {
			sets = append(sets, sidsOfList(p))
		}
		sort.Slice(sets, func(i, j int) bool { return len(sets[i]) < len(sets[j]) })
		allowed := sets[0]
		for _, s := range sets[1:] {
			if len(allowed) == 0 {
				break
			}
			allowed = index.IntersectSids(allowed, s)
		}
		if len(allowed) == 0 {
			return nil, false
		}
		for k := range lists {
			lists[k] = filterBySids(index.SlicePostings(lists[k]), allowed)
		}
		if !pAll {
			p = index.SlicePostings(filterBySids(p, allowed))
		}
	}
	cur := lists[0]
	for k := 1; k < len(words); k++ {
		gap := int32(words[k].step - words[k-1].step)
		exact := exactBetween(words[k-1].step, words[k].step)
		cur = joinAncestorDescendant(cur, lists[k], gap, exact)
		if len(cur) == 0 {
			return nil, false
		}
	}
	q := cur

	// Join P with Q (§4.2.2 "Join of posting lists from all indices").
	last := words[len(words)-1]
	if last.step == m-1 {
		if pAll {
			// No hierarchy constraint beyond what the word chain enforced.
			return q, true
		}
		// The last path element is a word token: same-token join.
		out := joinSameToken(p, index.SlicePostings(q))
		if len(out) == 0 {
			return nil, false
		}
		return out, true
	}
	if pAll {
		// The trailing steps are wildcards: materialize them via the
		// depth-pruned POS walk before the ancestor join.
		p = ix.POS.LookupList(posPath)
		if index.ListLen(p) == 0 {
			return nil, false
		}
	}
	// Otherwise the last word is an ancestor of the path's final token:
	// return p's quintuples that have a suitable ancestor in Q.
	out := joinHasAncestor(p, q, int32(m-1-last.step), exactBetween(last.step, m-1))
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}

// hasConcrete reports whether any step of a hierarchy path names a concrete
// label (a pure-wildcard path adds no pruning beyond depth).
func hasConcrete(p index.Path) bool {
	for _, s := range p {
		if s.Label != "*" {
			return true
		}
	}
	return false
}

func depthOK(descD, ancD, gap int32, exact bool) bool {
	if exact {
		return descD == ancD+gap
	}
	return descD >= ancD+gap
}

// filterByDepth keeps postings whose depth satisfies the step-position rule:
// a token matching step i has depth exactly i when every axis up to i is a
// child axis, and depth >= i otherwise. Blocks of a lazy list stream through
// one at a time; only the matches materialize.
func filterByDepth(l index.PostingList, step int32, exact bool) []index.Posting {
	if index.ListLen(l) == 0 {
		return nil
	}
	out := make([]index.Posting, 0, l.Len())
	for i := 0; i < l.NumBlocks(); i++ {
		for _, p := range l.Block(i) {
			if (exact && p.D == step) || (!exact && p.D >= step) {
				out = append(out, p)
			}
		}
	}
	return out
}

// filterBySids keeps the postings whose sentence is in the sorted allowed
// set, one merge walk. Cursor seeks skip whole undecoded blocks between
// surviving sentences, so only blocks overlapping the allowed set decode.
func filterBySids(l index.PostingList, allowed []int32) []index.Posting {
	var out []index.Posting
	var c index.ListCursor
	c.Reset(l)
	j := 0
	for c.Valid() && j < len(allowed) {
		switch {
		case c.Sid() < allowed[j]:
			c.SeekSid(allowed[j])
		case allowed[j] < c.Sid():
			j++
		default:
			out = append(out, c.Run()...)
			c.NextRun()
			j++
		}
	}
	return out
}

// seekSid returns the smallest index i >= from with ps[i].Sid >= sid,
// galloping forward then binary searching — the merge joins use it to skip
// runs instead of scanning posting by posting.
func seekSid(ps []index.Posting, from int, sid int32) int {
	if from >= len(ps) || ps[from].Sid >= sid {
		return from
	}
	// Gallop: double the step until we overshoot.
	step := 1
	lo, hi := from, from+1
	for hi < len(ps) && ps[hi].Sid < sid {
		lo = hi
		step *= 2
		hi += step
	}
	if hi > len(ps) {
		hi = len(ps)
	}
	// Binary search within (lo, hi].
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ps[mid].Sid < sid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// joinSameToken intersects two sorted posting lists on (sid, tid), keeping
// the quintuples of the first list. Runs of non-matching sentences are
// skipped with galloping cursor seeks, which for block-backed lists skip
// whole blocks by directory bounds without decoding them.
func joinSameToken(a, b index.PostingList) []index.Posting {
	var out []index.Posting
	var ca, cb index.ListCursor
	ca.Reset(a)
	cb.Reset(b)
	for ca.Valid() && cb.Valid() {
		if ca.Sid() < cb.Sid() {
			ca.SeekSid(cb.Sid())
			continue
		}
		if cb.Sid() < ca.Sid() {
			cb.SeekSid(ca.Sid())
			continue
		}
		ra, rb := ca.Run(), cb.Run()
		i, j := 0, 0
		for i < len(ra) && j < len(rb) {
			switch {
			case ra[i].Tid < rb[j].Tid:
				i++
			case rb[j].Tid < ra[i].Tid:
				j++
			default:
				out = append(out, ra[i])
				i++
				j++
			}
		}
		ca.NextRun()
		cb.NextRun()
	}
	return out
}

// joinAncestorDescendant returns the quintuples of next that have an
// ancestor in cur at the required depth difference (Example 4.4's join:
// x1=x2, u1<=u2, v1>=v2, l2 >= l1+gap, or equality when exact). Both lists
// are (sid,tid)-sorted; the join aligns per-sentence runs with galloping
// seeks and only does quadratic work within one sentence's (small) runs.
func joinAncestorDescendant(cur, next []index.Posting, gap int32, exact bool) []index.Posting {
	var out []index.Posting
	i, j := 0, 0
	for i < len(cur) && j < len(next) {
		if cur[i].Sid < next[j].Sid {
			i = seekSid(cur, i, next[j].Sid)
			continue
		}
		if next[j].Sid < cur[i].Sid {
			j = seekSid(next, j, cur[i].Sid)
			continue
		}
		sid := cur[i].Sid
		ie := seekSid(cur, i, sid+1)
		je := seekSid(next, j, sid+1)
		for jj := j; jj < je; jj++ {
			q := next[jj]
			for k := i; k < ie; k++ {
				c := cur[k]
				if c.U <= q.U && c.V >= q.V && depthOK(q.D, c.D, gap, exact) {
					out = append(out, q)
					break
				}
			}
		}
		i, j = ie, je
	}
	return out
}

// joinHasAncestor keeps the quintuples of p that have an ancestor in q at
// the required depth difference — the final P⋈Q join of §4.2.2. Like
// joinAncestorDescendant it is a per-sid merge join; p's cursor gallops
// through the block directory, so sentences q lacks cost no decodes.
func joinHasAncestor(p index.PostingList, q []index.Posting, gap int32, exact bool) []index.Posting {
	var out []index.Posting
	var cp index.ListCursor
	cp.Reset(p)
	j := 0
	for cp.Valid() && j < len(q) {
		if cp.Sid() < q[j].Sid {
			cp.SeekSid(q[j].Sid)
			continue
		}
		if q[j].Sid < cp.Sid() {
			j = seekSid(q, j, cp.Sid())
			continue
		}
		sid := cp.Sid()
		je := seekSid(q, j, sid+1)
		for _, pp := range cp.Run() {
			for k := j; k < je; k++ {
				qq := q[k]
				if qq.U <= pp.U && qq.V >= pp.V && depthOK(pp.D, qq.D, gap, exact) {
					out = append(out, pp)
					break
				}
			}
		}
		j = je
		cp.NextRun()
	}
	return out
}

// wordConjunctionSids returns the sorted sentence ids containing every word,
// or nil when some word is absent from the corpus.
func wordConjunctionSids(ix *index.Index, words []string) []int32 {
	var sids []int32
	for i, w := range words {
		l := ix.WordList(w)
		if index.ListLen(l) == 0 {
			return nil
		}
		s := sidsOfList(l)
		if i == 0 {
			sids = s
		} else {
			sids = index.IntersectSids(sids, s)
		}
		if len(sids) == 0 {
			return nil
		}
	}
	return sids
}
