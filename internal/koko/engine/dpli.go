package engine

import (
	"sort"

	"repro/internal/koko/index"
	"repro/internal/koko/lang"
)

// dpliResult carries the outcome of the Decompose-Paths-and-Lookup-Indices
// module (Algorithm 1): candidate sentences and per-variable binding
// estimates.
type dpliResult struct {
	// candSids is the sorted candidate sentence set: the join of all index
	// accesses. Empty + exhausted=true means the query provably has no
	// answers (a decomposed path missed the index entirely).
	candSids  []int32
	exhausted bool
	// allSentences is set when no variable constrains the candidate set
	// (empty extract clause): every sentence must be considered.
	allSentences bool
	// countBySid[var][sid] estimates |bindings[v][sid]| for the GSP cost
	// model; counts come from the variable's dominant path (Example 4.5).
	countBySid map[string]map[int32]int
}

// runDPLI implements §4.2 over the multi-index.
func runDPLI(nq *normQuery, ix *index.Index) *dpliResult {
	res := &dpliResult{countBySid: map[string]map[int32]int{}}
	var sidSets [][]int32
	addCounts := func(name string, ps []index.Posting) {
		m := res.countBySid[name]
		if m == nil {
			m = map[int32]int{}
			res.countBySid[name] = m
		}
		for _, p := range ps {
			m[p.Sid]++
		}
	}

	// Entity variables: posting lists from the entity index.
	for _, v := range nq.vars {
		if v.kind != vkEntity {
			continue
		}
		eps := ix.EntitiesOfType(v.etype)
		if len(eps) == 0 {
			res.exhausted = true
			return res
		}
		m := map[int32]int{}
		var sids []int32
		for _, ep := range eps {
			if m[ep.Sid] == 0 {
				sids = append(sids, ep.Sid)
			}
			m[ep.Sid]++
		}
		res.countBySid[v.name] = m
		sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
		sidSets = append(sidSets, sids)
	}

	// Literal token-sequence variables prune through the word index.
	for _, v := range nq.vars {
		if v.kind != vkTokens || len(v.words) == 0 {
			continue
		}
		sids := wordConjunctionSids(ix, v.words)
		if sids == nil {
			res.exhausted = true
			return res
		}
		addCounts(v.name, ix.LookupWord(v.words[0]))
		sidSets = append(sidSets, sids)
	}

	// Dominant paths (§4.2.1): decompose and look up each; dominated
	// variables inherit their dominant path's bindings.
	dominant, repOf := nq.dominantPaths()
	domPostings := map[string][]index.Posting{}
	for _, dv := range dominant {
		ps, ok := LookupDecomposed(ix, dv.path)
		if !ok {
			res.exhausted = true
			return res
		}
		domPostings[dv.name] = ps
		sidSets = append(sidSets, index.SidsOf(ps))
	}
	for _, v := range nq.nodeVars() {
		addCounts(v.name, domPostings[repOf[v.name].name])
	}

	if len(sidSets) == 0 {
		res.allSentences = true
		return res
	}
	cand := sidSets[0]
	for _, s := range sidSets[1:] {
		cand = index.IntersectSids(cand, s)
	}
	res.candSids = cand
	if len(cand) == 0 {
		res.exhausted = true
	}
	return res
}

// AblationMode selects which index families DPLI may consult — the
// design-choice ablation of the multi-indexing scheme. The zero value
// disables everything; FullMode is the real engine.
type AblationMode struct {
	UsePL    bool // parse-label hierarchy index
	UsePOS   bool // POS-tag hierarchy index
	UseWords bool // word inverted index
}

// FullMode is the complete multi-index.
var FullMode = AblationMode{UsePL: true, UsePOS: true, UseWords: true}

// LookupDecomposed decomposes one dominant path into parse-label, POS, and
// word paths (Example 4.2), performs the index lookups, and joins the
// results (§4.2.2). ok=false means some decomposed path has no index match,
// in which case evaluation "immediately ceases" (§4.2.2 Discussion).
// Exported for the index-scheme comparison harness.
func LookupDecomposed(ix *index.Index, steps []lang.PathStep) ([]index.Posting, bool) {
	return LookupDecomposedMode(ix, steps, FullMode)
}

// LookupDecomposedMode is LookupDecomposed restricted to a subset of the
// index families; disabled families contribute no pruning (their decomposed
// paths are treated as pure wildcards). Used by the ablation experiments.
func LookupDecomposedMode(ix *index.Index, steps []lang.PathStep, mode AblationMode) ([]index.Posting, bool) {
	m := len(steps)
	plPath := make(index.Path, m)
	posPath := make(index.Path, m)
	type wordAt struct {
		word string
		step int
	}
	var words []wordAt
	for i, st := range steps {
		cls, canon := classifyStep(st)
		plPath[i] = index.Step{Desc: st.Desc, Label: "*"}
		posPath[i] = index.Step{Desc: st.Desc, Label: "*"}
		switch cls {
		case scParse:
			plPath[i].Label = canon
		case scPOS:
			posPath[i].Label = canon
		case scWord:
			words = append(words, wordAt{word: canon, step: i})
		}
		if p := stepPOS(st); p != "" && posPath[i].Label == "*" {
			posPath[i].Label = p
		}
		if cls != scWord {
			if w := stepWord(st); w != "" {
				words = append(words, wordAt{word: w, step: i})
			}
		}
	}

	// Hierarchy lookups. A decomposed path that is entirely wildcards on one
	// alphabet carries only depth constraints, which the other alphabet's
	// lookup over the isomorphic hierarchy already enforces — so it is
	// skipped (Algorithm 1 decomposes "if possible").
	if !mode.UseWords {
		words = nil
	}
	if !mode.UsePL {
		for i := range plPath {
			plPath[i].Label = "*"
		}
	}
	if !mode.UsePOS {
		for i := range posPath {
			posPath[i].Label = "*"
		}
	}
	plHas, posHas := hasConcrete(plPath), hasConcrete(posPath)
	var p []index.Posting
	pAll := false // set when neither hierarchy path has concrete labels
	switch {
	case plHas && posHas:
		p1 := ix.PL.Lookup(plPath)
		if len(p1) == 0 {
			return nil, false
		}
		p2 := ix.POS.Lookup(posPath)
		if len(p2) == 0 {
			return nil, false
		}
		p = joinSameToken(p1, p2)
	case plHas:
		p = ix.PL.Lookup(plPath)
	case posHas:
		p = ix.POS.Lookup(posPath)
	default:
		// Pure-wildcard path: only the word path (if any) can prune. With
		// no words either, fall back to a full POS-hierarchy walk so the
		// depth constraint still applies.
		if len(words) == 0 {
			p = ix.POS.Lookup(posPath)
			if len(p) == 0 {
				return nil, false
			}
			return p, true
		}
		pAll = true
	}
	if len(p) == 0 && !pAll {
		return nil, false
	}

	if len(words) == 0 {
		return p, true
	}

	// Word path: access the word index per word left-to-right and join with
	// the ancestor/descendant depth arithmetic (Example 4.4). minGapExact
	// tells whether the depth difference is exact (all '/' axes between the
	// two words) or a lower bound (some '//' axis).
	exactPrefix := func(upto int) bool { // axes 0..upto all child axes?
		for i := 0; i <= upto; i++ {
			if steps[i].Desc {
				return false
			}
		}
		return true
	}
	exactBetween := func(from, to int) bool { // axes (from, to]
		for i := from + 1; i <= to; i++ {
			if steps[i].Desc {
				return false
			}
		}
		return true
	}

	first := words[0]
	cur := filterByDepth(ix.LookupWord(first.word), int32(first.step), exactPrefix(first.step))
	if len(cur) == 0 {
		return nil, false
	}
	for k := 1; k < len(words); k++ {
		w := words[k]
		next := filterByDepth(ix.LookupWord(w.word), int32(w.step), exactPrefix(w.step))
		if len(next) == 0 {
			return nil, false
		}
		gap := int32(w.step - words[k-1].step)
		exact := exactBetween(words[k-1].step, w.step)
		cur = joinAncestorDescendant(cur, next, gap, exact)
		if len(cur) == 0 {
			return nil, false
		}
	}
	q := cur

	// Join P with Q (§4.2.2 "Join of posting lists from all indices").
	last := words[len(words)-1]
	if last.step == m-1 {
		if pAll {
			// No hierarchy constraint beyond what the word chain enforced.
			return q, true
		}
		// The last path element is a word token: same-token join.
		out := joinSameToken(p, q)
		if len(out) == 0 {
			return nil, false
		}
		return out, true
	}
	if pAll {
		// The trailing steps are wildcards: materialize them via the
		// depth-pruned POS walk before the ancestor join.
		p = ix.POS.Lookup(posPath)
		if len(p) == 0 {
			return nil, false
		}
	}
	// Otherwise the last word is an ancestor of the path's final token:
	// return p's quintuples that have a suitable ancestor in Q.
	gap := int32(m - 1 - last.step)
	exact := exactBetween(last.step, m-1)
	out := p[:0:0]
	for _, pp := range p {
		for _, qq := range q {
			if qq.Sid != pp.Sid {
				continue
			}
			if qq.U <= pp.U && qq.V >= pp.V && depthOK(pp.D, qq.D, gap, exact) {
				out = append(out, pp)
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}

// hasConcrete reports whether any step of a hierarchy path names a concrete
// label (a pure-wildcard path adds no pruning beyond depth).
func hasConcrete(p index.Path) bool {
	for _, s := range p {
		if s.Label != "*" {
			return true
		}
	}
	return false
}

func depthOK(descD, ancD, gap int32, exact bool) bool {
	if exact {
		return descD == ancD+gap
	}
	return descD >= ancD+gap
}

// filterByDepth keeps postings whose depth satisfies the step-position rule:
// a token matching step i has depth exactly i when every axis up to i is a
// child axis, and depth >= i otherwise.
func filterByDepth(ps []index.Posting, step int32, exact bool) []index.Posting {
	out := make([]index.Posting, 0, len(ps))
	for _, p := range ps {
		if (exact && p.D == step) || (!exact && p.D >= step) {
			out = append(out, p)
		}
	}
	return out
}

// joinSameToken intersects two sorted posting lists on (sid, tid), keeping
// the quintuples of the first list.
func joinSameToken(a, b []index.Posting) []index.Posting {
	var out []index.Posting
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Sid < b[j].Sid || (a[i].Sid == b[j].Sid && a[i].Tid < b[j].Tid):
			i++
		case b[j].Sid < a[i].Sid || (b[j].Sid == a[i].Sid && b[j].Tid < a[i].Tid):
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// joinAncestorDescendant returns the quintuples of next that have an
// ancestor in cur at the required depth difference (Example 4.4's join:
// x1=x2, u1<=u2, v1>=v2, l2 >= l1+gap, or equality when exact).
func joinAncestorDescendant(cur, next []index.Posting, gap int32, exact bool) []index.Posting {
	var out []index.Posting
	// Both lists are sorted by sid; sweep per sentence.
	i := 0
	for j := 0; j < len(next); j++ {
		q := next[j]
		for i < len(cur) && cur[i].Sid < q.Sid {
			i++
		}
		for k := i; k < len(cur) && cur[k].Sid == q.Sid; k++ {
			c := cur[k]
			if c.U <= q.U && c.V >= q.V && depthOK(q.D, c.D, gap, exact) {
				out = append(out, q)
				break
			}
		}
	}
	return out
}

// wordConjunctionSids returns the sorted sentence ids containing every word,
// or nil when some word is absent from the corpus.
func wordConjunctionSids(ix *index.Index, words []string) []int32 {
	var sids []int32
	for i, w := range words {
		ps := ix.LookupWord(w)
		if len(ps) == 0 {
			return nil
		}
		s := index.SidsOf(ps)
		if i == 0 {
			sids = s
		} else {
			sids = index.IntersectSids(sids, s)
		}
		if len(sids) == 0 {
			return nil
		}
	}
	return sids
}
