package engine

// Statistics-free query planning: before evaluation, every enumerable
// variable (≈ one extract condition) is scored by its exact DPLI binding
// count summed over the candidate sentences — numbers the index lookups
// already produced, so planning maintains no statistics and costs one merge
// walk per variable. A greedy pass then orders the nested loops
// smallest-first, preferring variables constraint-connected to the already
// ordered set so eager constraint checks prune as early as possible (the
// "When Greedy Beats Optimal" result: greedy ordering from cheap cardinality
// signals captures most of the benefit of cost-based planning at a fraction
// of its cost). Candidate lists are also built in plan order, so a sentence
// whose cheapest condition is empty exits before any expensive list (an
// elastic span's O(t²) enumeration) is materialized.
//
// Reordering never changes results: candidate lists are independent per
// variable, constraints are re-checked on every complete assignment, and
// restoreDeclOrder (eval.go) re-sorts each sentence's emissions into the
// sequence a written-order enumeration would have produced — so planner-on
// and planner-off runs are byte-identical.

// elasticEstimate stands in for variables with no index-derived estimate:
// an elastic span's candidate list is the full O(t²) span enumeration, so
// it orders after anything with a real binding count.
const elasticEstimate = int64(1) << 40

// planStep is one position of the chosen evaluation order.
type planStep struct {
	slot int
	est  int64 // estimated bindings over the candidate sentences
}

// queryPlan is the per-query evaluation order over enumerable variables.
// A nil plan (or NoPlan run) means written order.
type queryPlan struct {
	steps     []planStep
	reordered bool // order differs from declaration order
}

// sumCounts totals a variable's DPLI binding estimates over the candidate
// sentence set with one merge walk of the two sorted arrays.
func sumCounts(vc varCounts, cands []int32) int64 {
	var total int64
	i, j := 0, 0
	for i < len(vc.sids) && j < len(cands) {
		switch {
		case vc.sids[i] < cands[j]:
			i++
		case cands[j] < vc.sids[i]:
			j++
		default:
			total += int64(vc.counts[i])
			i++
			j++
		}
	}
	return total
}

// enumRoots maps a variable to the enumerable variables its binding depends
// on: a subtree resolves to its base node, a span concatenation to its
// components. Constraints on derived variables connect their roots.
func enumRoots(nq *normQuery, slot int, dst []int) []int {
	v := nq.vars[slot]
	switch v.kind {
	case vkSubtree:
		if v.baseSlot >= 0 {
			return enumRoots(nq, v.baseSlot, dst)
		}
		return dst
	case vkSpan:
		for _, cs := range v.compSlots {
			dst = enumRoots(nq, cs, dst)
		}
		return dst
	default:
		return append(dst, slot)
	}
}

// buildQueryPlan scores every enumerable variable and orders them greedily:
// seed with the globally smallest estimate, then repeatedly take the
// smallest-estimate variable constraint-connected to the ordered set (any
// connected variable before any unconnected one — a cross product prunes
// nothing), falling back to the global minimum. Ties break toward
// declaration order, so a query that is already well ordered keeps its
// written order and reordered stays false.
func buildQueryPlan(nq *normQuery, dpli *dpliResult, cands []int32) *queryPlan {
	p := &queryPlan{}
	n := len(nq.vars)
	var slots []int // enumerable slots in declaration order
	for _, v := range nq.vars {
		if v.enumerableKind() {
			slots = append(slots, v.slot)
		}
	}
	if len(slots) == 0 {
		return p
	}
	est := make([]int64, n)
	for _, s := range slots {
		if nq.vars[s].kind == vkElastic {
			est[s] = elasticEstimate
			continue
		}
		if s < len(dpli.counts) {
			est[s] = sumCounts(dpli.counts[s], cands)
		}
	}

	// Constraint adjacency between enumerable roots.
	adj := make([][]int, n)
	var ra, rb []int
	for ci := range nq.constraints {
		c := &nq.constraints[ci]
		ra = enumRoots(nq, c.aSlot, ra[:0])
		rb = enumRoots(nq, c.bSlot, rb[:0])
		for _, a := range ra {
			for _, b := range rb {
				if a != b {
					adj[a] = append(adj[a], b)
					adj[b] = append(adj[b], a)
				}
			}
		}
	}

	chosen := make([]bool, n)
	p.steps = make([]planStep, 0, len(slots))
	for len(p.steps) < len(slots) {
		best, bestConn := -1, false
		for _, s := range slots {
			if chosen[s] {
				continue
			}
			conn := false
			for _, o := range adj[s] {
				if chosen[o] {
					conn = true
					break
				}
			}
			switch {
			case best < 0:
			case conn != bestConn:
				if !conn {
					continue
				}
			case est[s] > est[best] || (est[s] == est[best] && s > best):
				continue
			}
			best, bestConn = s, conn
		}
		chosen[best] = true
		p.steps = append(p.steps, planStep{slot: best, est: est[best]})
	}
	for i := range p.steps {
		if p.steps[i].slot != slots[i] {
			p.reordered = true
			break
		}
	}
	return p
}

// kindName renders a variable kind for plan output.
func kindName(k varKind) string {
	switch k {
	case vkNode:
		return "node"
	case vkEntity:
		return "entity"
	case vkSubtree:
		return "subtree"
	case vkElastic:
		return "elastic"
	case vkTokens:
		return "tokens"
	case vkSpan:
		return "span"
	}
	return "?"
}

// info surfaces the plan as the Result's explain block (actual binding
// counts are accumulated during evaluation).
func (p *queryPlan) info(nq *normQuery) *PlanInfo {
	pi := &PlanInfo{Reordered: p.reordered, Steps: make([]PlanStep, len(p.steps))}
	for i, st := range p.steps {
		v := nq.vars[st.slot]
		pi.Steps[i] = PlanStep{Var: v.name, Kind: kindName(v.kind), Estimated: st.est}
	}
	return pi
}
