package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/embed"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
	"repro/internal/nlp"
	"repro/internal/store"
)

// Options configures evaluation.
type Options struct {
	// DisableSkipPlan turns GSP off: every variable, including elastic
	// spans, is evaluated by its own nested loop (the Table 1 NOGSP
	// baseline).
	DisableSkipPlan bool
	// ExpansionLimit bounds descriptor expansion (0 = the default fixed
	// number, matching the paper's note).
	ExpansionLimit int
	// Dicts provides the dictionaries referenced by dict(...) conditions,
	// keyed by name, with lowercase members.
	Dicts map[string]map[string]bool
	// ArticleDB, when set, is the on-disk form of the parsed corpus;
	// candidate articles are loaded from it (the paper's LoadArticle phase)
	// instead of served from memory.
	ArticleDB *store.DB
	// Workers > 1 evaluates candidate documents concurrently (the paper's
	// §7 future-work item: "parallelizing the evaluation of satisfying
	// clauses"). Results are deterministic: tuples are emitted in document
	// order regardless of scheduling. Phase times then report summed CPU
	// time across workers rather than wall time.
	Workers int
	// Explain attaches per-condition evidence breakdowns to tuples (the
	// paper's debuggability claim: "users can discover the reasons that
	// led to an extraction").
	Explain bool
}

// Engine evaluates KOKO queries over an indexed corpus.
type Engine struct {
	corpus *index.Corpus
	ix     *index.Index
	model  *embed.Model
	opts   Options
	rc     *reCache
	// globalScores memoizes document-independent satisfying-condition
	// confidences across documents and queries.
	globalScores *globalCache
}

// New builds an engine. model may be nil (descriptor and similarTo
// conditions then score 0).
func New(corpus *index.Corpus, ix *index.Index, model *embed.Model, opts Options) *Engine {
	return &Engine{
		corpus: corpus, ix: ix, model: model, opts: opts,
		rc: newRECache(), globalScores: newGlobalCache(),
	}
}

// Tuple is one output row.
type Tuple struct {
	Sid    int
	Doc    int
	Values []string
	// Scores holds the satisfying-clause score per satisfying variable.
	Scores map[string]float64
	// Evidence, populated when Options.Explain is set, breaks every
	// satisfying-clause score into per-condition contributions.
	Evidence []CondEvidence
}

// PhaseTimes is the Table 2 breakdown.
type PhaseTimes struct {
	Normalize   time.Duration
	DPLI        time.Duration
	LoadArticle time.Duration
	GSP         time.Duration
	Extract     time.Duration
	Satisfying  time.Duration
}

// Total sums all phases.
func (p PhaseTimes) Total() time.Duration {
	return p.Normalize + p.DPLI + p.LoadArticle + p.GSP + p.Extract + p.Satisfying
}

// Result is the outcome of a query run.
type Result struct {
	Tuples []Tuple
	Times  PhaseTimes
	// CandidateSentences is the number of sentences surviving DPLI pruning;
	// MatchedSentences is how many of them produced at least one extract
	// assignment (their ratio is the index-effectiveness metric of §6.2.2).
	CandidateSentences int
	MatchedSentences   int
	EvaluatedSentences int
}

// RunOptions overrides per-run evaluation knobs without rebuilding the
// engine. The zero value inherits nothing: callers that want the engine
// defaults should use Run. A server can thus share one Engine across
// requests while honoring request-level Explain and Workers settings.
type RunOptions struct {
	// Workers > 1 evaluates candidate documents concurrently for this run.
	Workers int
	// Explain attaches per-condition evidence to this run's tuples.
	Explain bool
}

// Run evaluates a parsed query with the engine's configured options. It is
// safe to call concurrently from multiple goroutines: all cross-run state
// (the regexp cache and the global score cache) is mutex-guarded, and each
// run's working state is private to the call.
func (e *Engine) Run(q *lang.Query) (*Result, error) {
	return e.RunWith(q, RunOptions{Workers: e.opts.Workers, Explain: e.opts.Explain})
}

// RunWith evaluates a parsed query with per-run overrides. Like Run it is
// safe for concurrent use.
func (e *Engine) RunWith(q *lang.Query, ro RunOptions) (*Result, error) {
	res := &Result{}
	t0 := time.Now()
	nq, err := normalize(q, e.model, e.opts.ExpansionLimit)
	if err != nil {
		return nil, err
	}
	res.Times.Normalize = time.Since(t0)

	t0 = time.Now()
	dpli := runDPLI(nq, e.ix)
	res.Times.DPLI = time.Since(t0)
	if dpli.exhausted {
		return res, nil
	}
	var cands []int32
	if dpli.allSentences {
		cands = make([]int32, e.corpus.NumSentences())
		for i := range cands {
			cands[i] = int32(i)
		}
	} else {
		cands = dpli.candSids
	}
	res.CandidateSentences = len(cands)
	e.evaluateCandidates(nq, dpli, cands, res, ro)
	return res, nil
}

// RunNaive evaluates without any index pruning: every sentence is a
// candidate. It is the reference semantics for property tests and the
// ground truth for effectiveness measurements.
func (e *Engine) RunNaive(q *lang.Query) (*Result, error) {
	res := &Result{}
	nq, err := normalize(q, e.model, e.opts.ExpansionLimit)
	if err != nil {
		return nil, err
	}
	cands := make([]int32, e.corpus.NumSentences())
	for i := range cands {
		cands[i] = int32(i)
	}
	res.CandidateSentences = len(cands)
	e.evaluateCandidates(nq, &dpliResult{countBySid: map[string]map[int32]int{}}, cands, res,
		RunOptions{Workers: e.opts.Workers, Explain: e.opts.Explain})
	return res, nil
}

func (e *Engine) evaluateCandidates(nq *normQuery, dpli *dpliResult, cands []int32, res *Result, ro RunOptions) {
	// Group candidate sentences by document (evidence aggregation and
	// article loading are document-scoped).
	byDoc := map[int][]int32{}
	var docOrder []int
	for _, sid := range cands {
		d := e.corpus.DocOfSent[sid]
		if _, ok := byDoc[d]; !ok {
			docOrder = append(docOrder, d)
		}
		byDoc[d] = append(byDoc[d], sid)
	}
	sort.Ints(docOrder)

	workers := ro.Workers
	if workers <= 1 {
		for _, d := range docOrder {
			dr := e.evalDoc(nq, dpli, d, byDoc[d], ro)
			mergeDocResult(res, dr)
		}
		return
	}
	// Parallel mode: one goroutine per worker pulls documents from a shared
	// cursor; results merge in document order so output is deterministic.
	results := make([]docEvalResult, len(docOrder))
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(docOrder) {
					return
				}
				d := docOrder[i]
				results[i] = e.evalDoc(nq, dpli, d, byDoc[d], ro)
			}
		}()
	}
	wg.Wait()
	for i := range results {
		mergeDocResult(res, results[i])
	}
}

// docEvalResult is one document's evaluation outcome.
type docEvalResult struct {
	tuples    []Tuple
	times     PhaseTimes
	matched   int
	evaluated int
}

func mergeDocResult(res *Result, dr docEvalResult) {
	res.Tuples = append(res.Tuples, dr.tuples...)
	res.Times.LoadArticle += dr.times.LoadArticle
	res.Times.GSP += dr.times.GSP
	res.Times.Extract += dr.times.Extract
	res.Times.Satisfying += dr.times.Satisfying
	res.MatchedSentences += dr.matched
	res.EvaluatedSentences += dr.evaluated
}

// evalDoc evaluates every candidate sentence of one document: GSP + nested
// loops per sentence, then satisfying/excluding per assignment against the
// document-scoped aggregator.
func (e *Engine) evalDoc(nq *normQuery, dpli *dpliResult, d int, sids []int32, ro RunOptions) docEvalResult {
	var dr docEvalResult
	docSents, sentAt, loadDur := e.loadDoc(d)
	dr.times.LoadArticle = loadDur

	var ag *aggregator
	if len(nq.satisfying) > 0 || len(nq.excluding) > 0 {
		ag = newAggregator(nq, e.model, e.opts.Dicts, e.rc, e.globalScores, docSents)
	}
	for _, sid := range sids {
		s := sentAt(sid)
		if s == nil {
			continue
		}
		dr.evaluated++
		counts := dpli.countBySid
		countOf := func(name string) int {
			if m, ok := counts[name]; ok {
				return m[sid]
			}
			return 0
		}
		ev := &sentEval{
			nq: nq, s: s, rc: e.rc,
			skip:    map[string]bool{},
			cands:   map[string][]binding{},
			nodeSet: map[string]map[int]bool{},
			gspOff:  e.opts.DisableSkipPlan,
		}
		// GSP timing: the plan-generation step is measured apart from the
		// nested-loop evaluation (Table 2's GSP vs extract columns).
		if !e.opts.DisableSkipPlan {
			tg := time.Now()
			ev.generateSkipPlan(countOf)
			dr.times.GSP += time.Since(tg)
		}
		tx := time.Now()
		if ev.buildCandidates() {
			var enum []*normVar
			for _, v := range nq.vars {
				if ev.isEnumerable(v) {
					enum = append(enum, v)
				}
			}
			ev.enumerate(enum, 0, assignment{})
		}
		asgs := ev.out
		dr.times.Extract += time.Since(tx)
		if len(asgs) == 0 {
			continue
		}
		dr.matched++

		ts := time.Now()
		for _, a := range asgs {
			tuple, ok := e.finishTuple(nq, s, d, a, ag, ro.Explain)
			if ok {
				dr.tuples = append(dr.tuples, tuple)
			}
		}
		dr.times.Satisfying += time.Since(ts)
	}
	return dr
}

// loadDoc returns the document's sentences (loading from the article DB when
// configured), a sid→sentence accessor, and the load duration.
func (e *Engine) loadDoc(d int) ([]*nlp.Sentence, func(int32) *nlp.Sentence, time.Duration) {
	first, end := e.corpus.DocSentences(d)
	if e.opts.ArticleDB == nil {
		sents := make([]*nlp.Sentence, 0, end-first)
		for sid := first; sid < end; sid++ {
			sents = append(sents, e.corpus.Sentence(sid))
		}
		return sents, func(sid int32) *nlp.Sentence {
			if int(sid) < first || int(sid) >= end {
				return nil
			}
			return e.corpus.Sentence(int(sid))
		}, 0
	}
	t0 := time.Now()
	sents := make([]*nlp.Sentence, 0, end-first)
	bySid := map[int32]*nlp.Sentence{}
	for sid := first; sid < end; sid++ {
		s, err := index.LoadSentence(e.opts.ArticleDB, sid)
		if err != nil {
			continue
		}
		sents = append(sents, s)
		bySid[int32(sid)] = s
	}
	return sents, func(sid int32) *nlp.Sentence { return bySid[sid] }, time.Since(t0)
}

// finishTuple renders output values, applies satisfying clauses (threshold)
// and excluding conditions.
func (e *Engine) finishTuple(nq *normQuery, s *nlp.Sentence, doc int, a assignment, ag *aggregator, explain bool) (Tuple, bool) {
	t := Tuple{Sid: s.ID, Doc: doc, Values: make([]string, len(nq.outputs))}
	for i, o := range nq.outputs {
		b, ok := a[o.Name]
		if !ok {
			return t, false
		}
		t.Values[i] = valueOf(s, b)
	}
	// Satisfying clauses: one per variable; the clause's variable must be
	// bound, its value must accumulate enough evidence.
	if len(nq.satisfying) > 0 {
		t.Scores = map[string]float64{}
		for i, sc := range nq.satisfying {
			b, ok := a[sc.Var]
			if !ok {
				return t, false
			}
			val := valueOf(s, b)
			score := ag.clauseScore(i, val)
			t.Scores[sc.Var] = score
			if score < sc.Threshold {
				return t, false
			}
			if explain {
				t.Evidence = append(t.Evidence, ag.explainClause(i, val)...)
			}
		}
	}
	for _, c := range nq.excluding {
		b, ok := a[c.Var]
		if !ok {
			continue
		}
		if ag != nil && ag.excluded(c, valueOf(s, b)) {
			return t, false
		}
	}
	return t, true
}

// Candidates exposes DPLI pruning alone: the candidate sentence ids for a
// query. The index experiments (§6.2.2) measure this module's lookup time
// and effectiveness across indexing schemes.
func (e *Engine) Candidates(q *lang.Query) ([]int32, error) {
	nq, err := normalize(q, e.model, e.opts.ExpansionLimit)
	if err != nil {
		return nil, err
	}
	dpli := runDPLI(nq, e.ix)
	if dpli.exhausted {
		return nil, nil
	}
	if dpli.allSentences {
		all := make([]int32, e.corpus.NumSentences())
		for i := range all {
			all[i] = int32(i)
		}
		return all, nil
	}
	return dpli.candSids, nil
}

// MatchingSentences returns the sentences where the extract clause has at
// least one assignment, computed soundly (no index) — the ground truth for
// effectiveness.
func (e *Engine) MatchingSentences(q *lang.Query) ([]int32, error) {
	res, err := e.RunNaive(q)
	if err != nil {
		return nil, err
	}
	seen := map[int]bool{}
	var out []int32
	for _, t := range res.Tuples {
		if !seen[t.Sid] {
			seen[t.Sid] = true
			out = append(out, int32(t.Sid))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// String renders a tuple compactly for examples and debugging.
func (t Tuple) String() string {
	return fmt.Sprintf("sid=%d %v", t.Sid, t.Values)
}
