package engine

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/embed"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
	"repro/internal/nlp"
	"repro/internal/store"
)

// Options configures evaluation.
type Options struct {
	// DisableSkipPlan turns GSP off: every variable, including elastic
	// spans, is evaluated by its own nested loop (the Table 1 NOGSP
	// baseline).
	DisableSkipPlan bool
	// ExpansionLimit bounds descriptor expansion (0 = the default fixed
	// number, matching the paper's note).
	ExpansionLimit int
	// Dicts provides the dictionaries referenced by dict(...) conditions,
	// keyed by name, with lowercase members.
	Dicts map[string]map[string]bool
	// ArticleDB, when set, is the on-disk form of the parsed corpus;
	// candidate articles are loaded from it (the paper's LoadArticle phase)
	// instead of served from memory.
	ArticleDB *store.DB
	// Workers > 1 evaluates candidate documents concurrently (the paper's
	// §7 future-work item: "parallelizing the evaluation of satisfying
	// clauses"). Results are deterministic: tuples are emitted in document
	// order regardless of scheduling. Phase times then report summed CPU
	// time across workers rather than wall time.
	Workers int
	// Explain attaches per-condition evidence breakdowns to tuples (the
	// paper's debuggability claim: "users can discover the reasons that
	// led to an extraction").
	Explain bool
	// DisablePlan turns the selectivity planner off: conditions evaluate in
	// the order the query wrote them (the differential baseline for the
	// plan-on/plan-off comparison).
	DisablePlan bool
}

// Engine evaluates KOKO queries over an indexed corpus.
type Engine struct {
	corpus *index.Corpus
	ix     *index.Index
	model  *embed.Model
	opts   Options
	rc     *reCache
	// globalScores memoizes document-independent satisfying-condition
	// confidences across documents and queries.
	globalScores *globalCache
}

// New builds an engine. model may be nil (descriptor and similarTo
// conditions then score 0).
func New(corpus *index.Corpus, ix *index.Index, model *embed.Model, opts Options) *Engine {
	return &Engine{
		corpus: corpus, ix: ix, model: model, opts: opts,
		rc: newRECache(), globalScores: newGlobalCache(),
	}
}

// Tuple is one output row.
type Tuple struct {
	Sid    int
	Doc    int
	Values []string
	// Scores holds the satisfying-clause score per satisfying variable.
	Scores map[string]float64
	// Evidence, populated when Options.Explain is set, breaks every
	// satisfying-clause score into per-condition contributions.
	Evidence []CondEvidence
}

// PhaseTimes is the Table 2 breakdown, plus the query-planning phase (its
// own line so BENCH numbers isolate planner overhead from extract time).
type PhaseTimes struct {
	Normalize   time.Duration
	DPLI        time.Duration
	Plan        time.Duration
	LoadArticle time.Duration
	GSP         time.Duration
	Extract     time.Duration
	Satisfying  time.Duration
}

// Total sums all phases.
func (p PhaseTimes) Total() time.Duration {
	return p.Normalize + p.DPLI + p.Plan + p.LoadArticle + p.GSP + p.Extract + p.Satisfying
}

// PlanStep is one position of the chosen evaluation order: the variable,
// its kind, the DPLI binding estimate the planner ordered by, and the
// actual candidate bindings enumerated during evaluation.
type PlanStep struct {
	Var       string
	Kind      string
	Estimated int64
	Actual    int64
}

// PlanInfo surfaces the query plan: the chosen condition order and whether
// it differs from the written order.
type PlanInfo struct {
	Steps     []PlanStep
	Reordered bool
}

// Result is the outcome of a query run.
type Result struct {
	Tuples []Tuple
	Times  PhaseTimes
	// CandidateSentences is the number of sentences surviving DPLI pruning;
	// MatchedSentences is how many of them produced at least one extract
	// assignment (their ratio is the index-effectiveness metric of §6.2.2).
	CandidateSentences int
	MatchedSentences   int
	EvaluatedSentences int
	// Plan is the selectivity plan used for this run (nil when planning was
	// off or the query short-circuited before evaluation).
	Plan *PlanInfo
}

// RunOptions overrides per-run evaluation knobs without rebuilding the
// engine. The zero value inherits nothing: callers that want the engine
// defaults should use Run. A server can thus share one Engine across
// requests while honoring request-level Explain and Workers settings.
type RunOptions struct {
	// Workers > 1 evaluates candidate documents concurrently for this run.
	Workers int
	// Explain attaches per-condition evidence to this run's tuples.
	Explain bool
	// NoPlan evaluates conditions in written order for this run instead of
	// the selectivity-ordered plan.
	NoPlan bool
	// Ctx, when non-nil, cancels the run: evaluation checks it between
	// documents (the natural unit — aggregation is document-scoped) and the
	// run returns ctx.Err() instead of a partial result. This is what makes
	// a cancelled job or a disconnected streaming client actually stop
	// burning CPU mid-evaluation rather than at the next request boundary.
	Ctx context.Context
}

// ctxErr reports the cancellation state of an optional context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Run evaluates a parsed query with the engine's configured options. It is
// safe to call concurrently from multiple goroutines: all cross-run state
// (the regexp cache and the global score cache) is mutex-guarded, and each
// run's working state is private to the call.
func (e *Engine) Run(q *lang.Query) (*Result, error) {
	return e.RunWith(q, RunOptions{
		Workers: e.opts.Workers, Explain: e.opts.Explain, NoPlan: e.opts.DisablePlan,
	})
}

// RunWith evaluates a parsed query with per-run overrides. Like Run it is
// safe for concurrent use. It is a thin collector over Stream: the same
// iterator that feeds the streaming paths, drained into a Result.
func (e *Engine) RunWith(q *lang.Query, ro RunOptions) (*Result, error) {
	st, err := e.Stream(q, ro)
	if err != nil {
		return nil, err
	}
	return st.Collect()
}

// RunNaive evaluates without any index pruning: every sentence is a
// candidate. It is the reference semantics for property tests and the
// ground truth for effectiveness measurements.
func (e *Engine) RunNaive(q *lang.Query) (*Result, error) {
	res := &Result{}
	nq, err := normalize(q, e.model, e.opts.ExpansionLimit)
	if err != nil {
		return nil, err
	}
	cands := make([]int32, e.corpus.NumSentences())
	for i := range cands {
		cands[i] = int32(i)
	}
	res.CandidateSentences = len(cands)
	st := &Stream{res: res}
	st.seq = e.streamDocs(nq, &dpliResult{}, cands,
		RunOptions{Workers: e.opts.Workers, Explain: e.opts.Explain}, nil, st)
	return st.Collect()
}

// docRange is one document's contiguous slice of the candidate list.
type docRange struct {
	doc    int
	lo, hi int
}

// addPlanActuals folds one worker's per-slot candidate counts into the
// plan's estimated-vs-actual report.
func addPlanActuals(res *Result, plan *queryPlan, ev *sentEval) {
	if plan == nil || res.Plan == nil || ev == nil || ev.actual == nil {
		return
	}
	for i, st := range plan.steps {
		res.Plan.Steps[i].Actual += ev.actual[st.slot]
	}
}

// docEvalResult is one document's evaluation outcome.
type docEvalResult struct {
	tuples    []Tuple
	times     PhaseTimes
	matched   int
	evaluated int
}

// mergeDocCounters folds one document's counters and phase times into res,
// leaving tuple delivery to the iterator (streaming consumers never touch
// res.Tuples; collectors append the yielded batches themselves).
func mergeDocCounters(res *Result, dr docEvalResult) {
	res.Times.LoadArticle += dr.times.LoadArticle
	res.Times.GSP += dr.times.GSP
	res.Times.Extract += dr.times.Extract
	res.Times.Satisfying += dr.times.Satisfying
	res.MatchedSentences += dr.matched
	res.EvaluatedSentences += dr.evaluated
}

// docWorker is one evaluation worker's private state: the reusable
// per-sentence scratch and the forward cursor into the DPLI count tables.
// One exists per goroutine in parallel mode, so nothing here needs locks.
type docWorker struct {
	e  *Engine
	nq *normQuery
	ro RunOptions
	ev *sentEval
	cc countCursor
}

func (e *Engine) newDocWorker(nq *normQuery, dpli *dpliResult, ro RunOptions, plan *queryPlan) *docWorker {
	w := &docWorker{
		e:  e,
		nq: nq,
		ro: ro,
		ev: newSentEval(nq, e.rc, e.opts.DisableSkipPlan),
		cc: newCountCursor(dpli, len(nq.vars)),
	}
	w.ev.setPlan(plan)
	return w
}

// evalDoc evaluates every candidate sentence of one document: GSP + nested
// loops per sentence, then satisfying/excluding per assignment against the
// document-scoped aggregator.
func (w *docWorker) evalDoc(d int, sids []int32) docEvalResult {
	e, nq := w.e, w.nq
	var dr docEvalResult
	needAg := len(nq.satisfying) > 0 || len(nq.excluding) > 0
	first, end := e.corpus.DocSentences(d)

	if e.opts.ArticleDB == nil {
		// In-memory corpus: sentences are addressed directly — no sentence
		// slice and no accessor closure, so a document with no aggregate
		// clauses costs zero allocations to set up.
		var ag *aggregator
		if needAg {
			sents := make([]*nlp.Sentence, 0, end-first)
			for sid := first; sid < end; sid++ {
				sents = append(sents, e.corpus.Sentence(sid))
			}
			ag = newAggregator(nq, e.model, e.opts.Dicts, e.rc, e.globalScores, sents)
		}
		for _, sid := range sids {
			if int(sid) < first || int(sid) >= end {
				continue
			}
			w.evalOneSentence(&dr, d, e.corpus.Sentence(int(sid)), sid, ag)
		}
		return dr
	}

	// Article-DB mode: candidate articles load from the on-disk parsed
	// corpus (the paper's LoadArticle phase).
	t0 := time.Now()
	sents := make([]*nlp.Sentence, 0, end-first)
	bySid := map[int32]*nlp.Sentence{}
	for sid := first; sid < end; sid++ {
		s, err := index.LoadSentence(e.opts.ArticleDB, sid)
		if err != nil {
			continue
		}
		sents = append(sents, s)
		bySid[int32(sid)] = s
	}
	dr.times.LoadArticle = time.Since(t0)
	var ag *aggregator
	if needAg {
		ag = newAggregator(nq, e.model, e.opts.Dicts, e.rc, e.globalScores, sents)
	}
	for _, sid := range sids {
		s := bySid[sid]
		if s == nil {
			continue
		}
		w.evalOneSentence(&dr, d, s, sid, ag)
	}
	return dr
}

// evalOneSentence runs GSP + extract + satisfying over one sentence,
// accumulating phase times and tuples into dr.
func (w *docWorker) evalOneSentence(dr *docEvalResult, d int, s *nlp.Sentence, sid int32, ag *aggregator) {
	e, nq, ev := w.e, w.nq, w.ev
	dr.evaluated++
	// GSP timing: the plan-generation step is measured apart from the
	// nested-loop evaluation (Table 2's GSP vs extract columns).
	if !e.opts.DisableSkipPlan {
		tg := time.Now()
		ev.prepare(s, &w.cc, sid)
		dr.times.GSP += time.Since(tg)
	} else {
		ev.prepare(s, &w.cc, sid)
	}
	tx := time.Now()
	nout := ev.extract()
	dr.times.Extract += time.Since(tx)
	if nout == 0 {
		return
	}
	dr.matched++

	ts := time.Now()
	for i := 0; i < nout; i++ {
		tuple, ok := e.finishTuple(nq, s, d, ev.out(i), ag, w.ro.Explain)
		if ok {
			dr.tuples = append(dr.tuples, tuple)
		}
	}
	dr.times.Satisfying += time.Since(ts)
}

// finishTuple renders output values, applies satisfying clauses (threshold)
// and excluding conditions. The assignment is fully bound (deriveAndEmit
// only emits complete assignments), so every access is a direct slot index.
func (e *Engine) finishTuple(nq *normQuery, s *nlp.Sentence, doc int, a assignment, ag *aggregator, explain bool) (Tuple, bool) {
	t := Tuple{Sid: s.ID, Doc: doc, Values: make([]string, len(nq.outputs))}
	for i, slot := range nq.outSlots {
		t.Values[i] = valueOf(s, a[slot])
	}
	// Satisfying clauses: one per variable; the clause's value must
	// accumulate enough evidence.
	if len(nq.satisfying) > 0 {
		t.Scores = map[string]float64{}
		for i, sc := range nq.satisfying {
			val := valueOf(s, a[nq.satSlots[i]])
			score := ag.clauseScore(i, val)
			t.Scores[sc.Var] = score
			if score < sc.Threshold {
				return t, false
			}
			if explain {
				t.Evidence = append(t.Evidence, ag.explainClause(i, val)...)
			}
		}
	}
	for i, c := range nq.excluding {
		slot := nq.exclSlots[i]
		if slot < 0 {
			continue
		}
		if ag != nil && ag.excluded(c, valueOf(s, a[slot])) {
			return t, false
		}
	}
	return t, true
}

// Candidates exposes DPLI pruning alone: the candidate sentence ids for a
// query. The index experiments (§6.2.2) measure this module's lookup time
// and effectiveness across indexing schemes.
func (e *Engine) Candidates(q *lang.Query) ([]int32, error) {
	nq, err := normalize(q, e.model, e.opts.ExpansionLimit)
	if err != nil {
		return nil, err
	}
	dpli, err := runDPLIGuarded(nq, e.ix, !e.opts.DisablePlan)
	if err != nil {
		return nil, err
	}
	if dpli.exhausted {
		return nil, nil
	}
	if dpli.allSentences {
		all := make([]int32, e.corpus.NumSentences())
		for i := range all {
			all[i] = int32(i)
		}
		return all, nil
	}
	return dpli.candSids, nil
}

// MatchingSentences returns the sentences where the extract clause has at
// least one assignment, computed soundly (no index) — the ground truth for
// effectiveness.
func (e *Engine) MatchingSentences(q *lang.Query) ([]int32, error) {
	res, err := e.RunNaive(q)
	if err != nil {
		return nil, err
	}
	seen := map[int]bool{}
	var out []int32
	for _, t := range res.Tuples {
		if !seen[t.Sid] {
			seen[t.Sid] = true
			out = append(out, int32(t.Sid))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// String renders a tuple compactly for examples and debugging.
func (t Tuple) String() string {
	return fmt.Sprintf("sid=%d %v", t.Sid, t.Values)
}
