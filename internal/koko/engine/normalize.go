package engine

import (
	"fmt"
	"strings"

	"repro/internal/embed"
	"repro/internal/koko/lang"
	"repro/internal/nlp"
)

// varKind discriminates normalized variables.
type varKind int

const (
	vkNode    varKind = iota // bound to a dependency-tree node
	vkEntity                 // bound to an entity mention of a type
	vkSubtree                // x.subtree of a node variable
	vkElastic                // ∧: zero or more tokens, with optional conditions
	vkTokens                 // literal token sequence
	vkSpan                   // concatenation of component variables
)

// normVar is a normalized variable. Every variable is interned at
// normalization time: slot is its ordinal in normQuery.vars, and the
// evaluation hot path indexes assignments, candidate lists, and skip masks
// by slot instead of by name.
type normVar struct {
	name      string
	slot      int
	kind      varKind
	synthetic bool

	path   []lang.PathStep // vkNode: absolute path from the root
	anchor string          // vkNode: declared anchor variable, if any
	etype  string          // vkEntity: canonical entity type
	base   string          // vkSubtree: the underlying node variable
	conds  []lang.LabelCond
	words  []string // vkTokens: lowercase words
	comps  []string // vkSpan: component variable names, in order

	// Slot-compiled views, filled by compileSlots after normalization.
	baseSlot  int   // vkSubtree: slot of base (-1 otherwise)
	compSlots []int // vkSpan: slots of comps, in order
}

// enumerableKind reports whether the variable kind gets its own nested loop
// in the extract evaluation. Derived kinds — subtrees and span
// concatenations — are computed from other variables' bindings, so they are
// never enumerated (and never planned).
func (v *normVar) enumerableKind() bool {
	return v.kind != vkSubtree && v.kind != vkSpan
}

// constraint kinds derived during normalization plus the user's in/eq.
type consKind int

const (
	ckParentOf consKind = iota
	ckAncestorOf
	ckInSpan
	ckEqSpan
)

type normConstraint struct {
	kind consKind
	a, b string
	// aSlot/bSlot are the interned sides, filled by compileSlots.
	aSlot, bSlot int
}

// descriptor is a pre-expanded descriptor condition.
type descriptor struct {
	text       string
	expansions []embed.Scored // includes the original, score 1
	seqs       [][]string     // tokenized expansions
}

// normQuery is the engine's normalized query form.
type normQuery struct {
	src         *lang.Query
	vars        []*normVar
	byName      map[string]*normVar
	constraints []normConstraint
	outputs     []lang.OutVar
	horizontals []*normVar // vkSpan vars with >1 component
	descriptors map[string]*descriptor
	satisfying  []lang.SatClause
	excluding   []lang.SatCond

	// Slot-compiled views, filled by compileSlots: the hot path never
	// touches byName.
	outSlots  []int // slot per output, aligned with outputs
	satSlots  []int // slot per satisfying clause's variable
	exclSlots []int // slot per excluding condition's variable
	maxComps  int   // widest horizontal (scratch sizing)
}

// normalize implements §4.1: absolute-form expansion, synthesized variables
// for elastic spans and inline atoms, and derived constraints.
func normalize(q *lang.Query, model *embed.Model, expansionLimit int) (*normQuery, error) {
	nq := &normQuery{
		src:         q,
		byName:      map[string]*normVar{},
		outputs:     q.Outputs,
		descriptors: map[string]*descriptor{},
		satisfying:  q.Satisfying,
		excluding:   q.Excluding,
	}
	nsynth := 0
	synthName := func(prefix string) string {
		nsynth++
		return fmt.Sprintf("%s#%d", prefix, nsynth)
	}
	addVar := func(v *normVar) (*normVar, error) {
		if _, dup := nq.byName[v.name]; dup {
			return nil, fmt.Errorf("koko: variable %q defined twice", v.name)
		}
		v.slot = len(nq.vars)
		v.baseSlot = -1
		nq.vars = append(nq.vars, v)
		nq.byName[v.name] = v
		return v, nil
	}

	// atomToVar converts an atom into a variable reference, synthesizing a
	// variable when the atom is inline (an elastic span, literal tokens, a
	// path inside a horizontal condition, or a subtree reference).
	var atomToVar func(a lang.Atom, nameHint string) (string, error)
	atomToVar = func(a lang.Atom, nameHint string) (string, error) {
		switch a.Kind {
		case lang.AtomVar:
			if nq.byName[a.Var] == nil {
				return "", fmt.Errorf("koko: reference to undefined variable %q", a.Var)
			}
			return a.Var, nil
		case lang.AtomSubtree:
			base := nq.byName[a.Var]
			if base == nil {
				return "", fmt.Errorf("koko: subtree of undefined variable %q", a.Var)
			}
			if base.kind != vkNode {
				return "", fmt.Errorf("koko: subtree of non-node variable %q", a.Var)
			}
			name := nameHint
			if name == "" {
				name = synthName("sub")
			}
			v, err := addVar(&normVar{name: name, kind: vkSubtree, base: a.Var, synthetic: nameHint == ""})
			if err != nil {
				return "", err
			}
			return v.name, nil
		case lang.AtomElastic:
			name := nameHint
			if name == "" {
				name = synthName("v")
			}
			v, err := addVar(&normVar{name: name, kind: vkElastic, conds: a.Conds, synthetic: nameHint == ""})
			if err != nil {
				return "", err
			}
			return v.name, nil
		case lang.AtomTokens:
			name := nameHint
			if name == "" {
				name = synthName("w")
			}
			words := make([]string, len(a.Tokens))
			for i, w := range a.Tokens {
				words[i] = strings.ToLower(w)
			}
			v, err := addVar(&normVar{name: name, kind: vkTokens, words: words, synthetic: nameHint == ""})
			if err != nil {
				return "", err
			}
			return v.name, nil
		case lang.AtomPath:
			name := nameHint
			if name == "" {
				name = synthName("p")
			}
			// A bare entity-type label defines an entity variable.
			if len(a.Steps) == 1 && a.Steps[0].Bare() && nlp.IsEntityType(a.Steps[0].Label) {
				v, err := addVar(&normVar{
					name: name, kind: vkEntity,
					etype:     nlp.CanonicalEntityType(a.Steps[0].Label),
					synthetic: nameHint == "",
				})
				if err != nil {
					return "", err
				}
				return v.name, nil
			}
			nv := &normVar{name: name, kind: vkNode, synthetic: nameHint == ""}
			if a.From != "" {
				anchor := nq.byName[a.From]
				if anchor == nil {
					return "", fmt.Errorf("koko: path anchored at undefined variable %q", a.From)
				}
				if anchor.kind != vkNode {
					return "", fmt.Errorf("koko: path anchored at non-node variable %q", a.From)
				}
				// Absolute form: anchor's path + the extra steps (§4.1).
				nv.path = append(append([]lang.PathStep{}, anchor.path...), a.Steps...)
				nv.anchor = a.From
				// Derived constraint between anchor and this variable.
				if a.Steps[0].Desc {
					nq.constraints = append(nq.constraints, normConstraint{kind: ckAncestorOf, a: a.From, b: name})
				} else {
					nq.constraints = append(nq.constraints, normConstraint{kind: ckParentOf, a: a.From, b: name})
				}
			} else {
				nv.path = append([]lang.PathStep{}, a.Steps...)
			}
			v, err := addVar(nv)
			if err != nil {
				return "", err
			}
			return v.name, nil
		}
		return "", fmt.Errorf("koko: unsupported atom")
	}

	// Output variables that are not defined in the block become entity
	// variables of their declared type, registered up front so block
	// declarations may reference them (the §6.3 Title query's horizontal
	// condition uses the output variable a:Person). Str-typed outputs must
	// be block-defined.
	blockNames := map[string]bool{}
	for _, d := range q.Block {
		blockNames[d.Name] = true
	}
	for _, o := range q.Outputs {
		if blockNames[o.Name] {
			continue
		}
		if strings.EqualFold(o.Type, "Str") {
			return nil, fmt.Errorf("koko: output %s:Str must be defined in the extract block", o.Name)
		}
		if !nlp.IsEntityType(o.Type) {
			return nil, fmt.Errorf("koko: output %s has unknown type %q", o.Name, o.Type)
		}
		if _, err := addVar(&normVar{name: o.Name, kind: vkEntity, etype: nlp.CanonicalEntityType(o.Type)}); err != nil {
			return nil, err
		}
	}

	// Block declarations, in order.
	for _, d := range q.Block {
		if len(d.Expr.Atoms) == 1 {
			if _, err := atomToVar(d.Expr.Atoms[0], d.Name); err != nil {
				return nil, err
			}
			continue
		}
		// Horizontal condition: synthesize component variables, then the
		// span variable itself.
		comps := make([]string, 0, len(d.Expr.Atoms))
		for _, a := range d.Expr.Atoms {
			cn, err := atomToVar(a, "")
			if err != nil {
				return nil, err
			}
			comps = append(comps, cn)
		}
		sv := &normVar{name: d.Name, kind: vkSpan, comps: comps}
		if _, err := addVar(sv); err != nil {
			return nil, err
		}
		nq.horizontals = append(nq.horizontals, sv)
	}

	// Every output must be defined by now.
	for _, o := range q.Outputs {
		if nq.byName[o.Name] == nil {
			return nil, fmt.Errorf("koko: output %s is not defined", o.Name)
		}
	}

	// User constraints: each side must normalize to a single variable.
	for _, c := range q.Constraints {
		side := func(e lang.SpanExpr) (string, error) {
			if len(e.Atoms) == 1 {
				return atomToVar(e.Atoms[0], "")
			}
			comps := make([]string, 0, len(e.Atoms))
			for _, a := range e.Atoms {
				cn, err := atomToVar(a, "")
				if err != nil {
					return "", err
				}
				comps = append(comps, cn)
			}
			sv := &normVar{name: synthName("c"), kind: vkSpan, comps: comps, synthetic: true}
			if _, err := addVar(sv); err != nil {
				return "", err
			}
			nq.horizontals = append(nq.horizontals, sv)
			return sv.name, nil
		}
		a, err := side(c.Left)
		if err != nil {
			return nil, err
		}
		b, err := side(c.Right)
		if err != nil {
			return nil, err
		}
		kind := ckInSpan
		if c.Op == lang.OpEq {
			kind = ckEqSpan
		}
		nq.constraints = append(nq.constraints, normConstraint{kind: kind, a: a, b: b})
	}

	// Satisfying/excluding variables must exist.
	for _, sc := range q.Satisfying {
		if nq.byName[sc.Var] == nil {
			return nil, fmt.Errorf("koko: satisfying clause over undefined variable %q", sc.Var)
		}
		for _, c := range sc.Conds {
			if c.Var != "" && nq.byName[c.Var] == nil {
				return nil, fmt.Errorf("koko: satisfying condition over undefined variable %q", c.Var)
			}
			if c.Kind == lang.CondDescLeft || c.Kind == lang.CondDescRight {
				nq.addDescriptor(c.Arg, model, expansionLimit)
			}
		}
	}
	for _, c := range q.Excluding {
		if c.Var != "" && nq.byName[c.Var] == nil {
			return nil, fmt.Errorf("koko: excluding condition over undefined variable %q", c.Var)
		}
	}
	nq.compileSlots()
	return nq, nil
}

// compileSlots interns every by-name reference into a variable slot so the
// evaluation hot path is free of map lookups. Called once per query, after
// all variables and constraints exist.
func (nq *normQuery) compileSlots() {
	for _, v := range nq.vars {
		if v.base != "" {
			v.baseSlot = nq.byName[v.base].slot
		}
		if len(v.comps) > 0 {
			v.compSlots = make([]int, len(v.comps))
			for i, cn := range v.comps {
				v.compSlots[i] = nq.byName[cn].slot
			}
			if len(v.comps) > nq.maxComps {
				nq.maxComps = len(v.comps)
			}
		}
	}
	for i := range nq.constraints {
		c := &nq.constraints[i]
		c.aSlot = nq.byName[c.a].slot
		c.bSlot = nq.byName[c.b].slot
	}
	nq.outSlots = make([]int, len(nq.outputs))
	for i, o := range nq.outputs {
		nq.outSlots[i] = nq.byName[o.Name].slot
	}
	nq.satSlots = make([]int, len(nq.satisfying))
	for i, sc := range nq.satisfying {
		nq.satSlots[i] = nq.byName[sc.Var].slot
	}
	nq.exclSlots = make([]int, len(nq.excluding))
	for i, c := range nq.excluding {
		nq.exclSlots[i] = -1
		if c.Var != "" {
			nq.exclSlots[i] = nq.byName[c.Var].slot
		}
	}
}

// addDescriptor pre-expands a descriptor through the paraphrase model
// (§4.4.1(a)); expansion happens once per query.
func (nq *normQuery) addDescriptor(text string, model *embed.Model, limit int) {
	if _, ok := nq.descriptors[text]; ok {
		return
	}
	d := &descriptor{text: text}
	if model != nil {
		d.expansions = model.Expand(text, limit)
	}
	if len(d.expansions) == 0 {
		d.expansions = []embed.Scored{{Text: strings.ToLower(text), Score: 1}}
	}
	for _, e := range d.expansions {
		d.seqs = append(d.seqs, strings.Fields(e.Text))
	}
	nq.descriptors[text] = d
}

// nodeVars returns the node variables in declaration order.
func (nq *normQuery) nodeVars() []*normVar {
	var out []*normVar
	for _, v := range nq.vars {
		if v.kind == vkNode {
			out = append(out, v)
		}
	}
	return out
}

// dominantPaths implements §4.2.1: a path p is dominated by q if p (with
// conditions) is a prefix of q; only undominated paths are decomposed for
// index lookup. Returns, for every node variable, the representative
// dominant variable whose path will be looked up.
func (nq *normQuery) dominantPaths() (dominant []*normVar, repOf map[string]*normVar) {
	nodes := nq.nodeVars()
	repOf = map[string]*normVar{}
	for _, v := range nodes {
		rep := v
		for _, w := range nodes {
			if w == rep {
				continue
			}
			if pathPrefixOf(rep.path, w.path) && len(w.path) > len(rep.path) {
				rep = w
			} else if len(w.path) == len(rep.path) && rep != w && pathPrefixOf(rep.path, w.path) && pathPrefixOf(w.path, rep.path) {
				// Identical paths: keep deterministic representative (first).
			}
		}
		repOf[v.name] = rep
	}
	seen := map[string]bool{}
	for _, v := range nodes {
		r := repOf[v.name]
		if !seen[r.name] {
			seen[r.name] = true
			dominant = append(dominant, r)
		}
	}
	return dominant, repOf
}

// pathPrefixOf reports whether p is a prefix of q with identical conditions
// (modulo condition order) on the shared steps.
func pathPrefixOf(p, q []lang.PathStep) bool {
	if len(p) > len(q) {
		return false
	}
	for i := range p {
		if !stepEqual(p[i], q[i]) {
			return false
		}
	}
	return true
}

func stepEqual(a, b lang.PathStep) bool {
	if a.Desc != b.Desc || nlp.NormalizeLabel(a.Label) != nlp.NormalizeLabel(b.Label) {
		return false
	}
	if len(a.Conds) != len(b.Conds) {
		return false
	}
	// Conditions compare as sets (order of conjunction is irrelevant, §4.2.1).
	used := make([]bool, len(b.Conds))
outer:
	for _, ca := range a.Conds {
		for j, cb := range b.Conds {
			if !used[j] && ca == cb {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}
