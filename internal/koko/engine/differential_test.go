package engine

import (
	"sort"
	"testing"

	"repro/internal/embed"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
)

// The slot-based hot path must reproduce the seed map-based evaluator
// byte-for-byte: same assignments, same bindings, same emission order, on
// every sentence. refeval_test.go holds the frozen seed implementation.

var diffQueries = []string{
	// Node loops + subtree + horizontal with two skippable elastic gaps.
	`extract d:Str, s:Str from f if (/ROOT:{ v = //verb, o = v/dobj, d = (o.subtree), s = "i" + ^ + v + ^ + o })`,
	// Anchored paths (parent/ancestor constraints) + user in-constraint.
	`extract e:Entity, d:Str from f if (/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))`,
	// Entity variable inside a horizontal condition.
	`extract x:Str from f if (/ROOT:{ a = Entity, v = //verb, x = a + ^ + v })`,
	// Literal token variable + elastic with bracket conditions.
	`extract x:Str from f if (/ROOT:{ v = //verb, w = "the", x = v + ^[max=2] + w })`,
	// Wildcard-heavy path and a plain subtree output.
	`extract w:Str from f if (/ROOT:{ n = //noun, w = (n.subtree) })`,
	// Equality constraint between a horizontal span and a subtree.
	`extract x:Str from f if (/ROOT:{ v = //verb, o = v/dobj, s = (o.subtree), x = o + ^ } (x) eq (s))`,
}

func diffCorpora() map[string]*index.Corpus {
	return map[string]*index.Corpus{
		"happydb": benchHappyDB(120, 7),
		"cafes": index.NewCorpus(nil, []string{
			"Juniper Lane, a cafe in Portland, serves coffee and fresh pastry.",
			"The barista at Sightglass poured a delicious espresso for Maria.",
			"I visited a cafe called Heart Roasters and ate a chocolate croissant.",
			"Ritual Coffee hired a barista who won the championship in Boston.",
			"The coffee menu at Blue Bottle lists a delicious single-origin pour-over.",
		}),
		"tweets": index.NewCorpus(nil, []string{
			"The Sounders beat Portland at the stadium tonight.",
			"We went to the arena and watched the game with friends.",
			"Arsenal vs Chelsea was a delicious match to watch.",
			"I am at Camp Nou watching Barcelona play soccer.",
			"Go Hawks! The team played great at CenturyLink Field.",
		}),
	}
}

// refCountOf adapts the slot-indexed DPLI count arrays back to the seed's
// by-name interface for the frozen reference evaluator.
func refCountOf(d *dpliResult, nq *normQuery, sid int32) func(string) int {
	return func(name string) int {
		v := nq.byName[name]
		if v == nil || v.slot >= len(d.counts) {
			return 0
		}
		vc := d.counts[v.slot]
		i := sort.Search(len(vc.sids), func(i int) bool { return vc.sids[i] >= sid })
		if i < len(vc.sids) && vc.sids[i] == sid {
			return int(vc.counts[i])
		}
		return 0
	}
}

func TestSlotEvalMatchesSeedSemantics(t *testing.T) {
	model := embed.NewModel()
	for cname, c := range diffCorpora() {
		ix := index.Build(c)
		for _, src := range diffQueries {
			for _, gspOff := range []bool{false, true} {
				nq, err := normalize(lang.MustParse(src), model, 0)
				if err != nil {
					t.Fatalf("%s: normalize(%s): %v", cname, src, err)
				}
				dpli := runDPLI(nq, ix, false)
				rc := newRECache()
				cc := newCountCursor(dpli, len(nq.vars))
				ev := newSentEval(nq, rc, gspOff)
				total := 0
				for sid := 0; sid < c.NumSentences(); sid++ {
					s := c.Sentence(sid)
					want := refEvalSentence(nq, s, rc, refCountOf(dpli, nq, int32(sid)), gspOff)
					got := ev.evalSentence(s, &cc, int32(sid))
					if got != len(want) {
						t.Fatalf("%s gspOff=%v sid=%d: %d assignments, seed emitted %d\nquery: %s",
							cname, gspOff, sid, got, len(want), src)
					}
					for i := 0; i < got; i++ {
						a := ev.out(i)
						for _, v := range nq.vars {
							wb, ok := want[i][v.name]
							if !ok {
								t.Fatalf("%s sid=%d: seed assignment %d misses %q", cname, sid, i, v.name)
							}
							if a[v.slot] != wb {
								t.Fatalf("%s gspOff=%v sid=%d assignment %d var %q: slot=%+v seed=%+v\nquery: %s",
									cname, gspOff, sid, i, v.name, a[v.slot], wb, src)
							}
						}
					}
					total += got
				}
				if cname == "happydb" && !gspOff && total == 0 && src == diffQueries[0] {
					t.Fatalf("%s: workload query matched nothing — test corpus too weak", cname)
				}
			}
		}
	}
}

// TestSlotEvalRandomizedCorpora fuzzes sentence shapes: random token soups
// (plus template sentences) keep the parser producing varied trees; slot
// and seed evaluators must agree everywhere.
func TestSlotEvalRandomizedCorpora(t *testing.T) {
	model := embed.NewModel()
	for seed := int64(1); seed <= 5; seed++ {
		c := benchHappyDB(60, seed*101)
		ix := index.Build(c)
		for _, src := range diffQueries {
			nq, err := normalize(lang.MustParse(src), model, 0)
			if err != nil {
				t.Fatal(err)
			}
			dpli := runDPLI(nq, ix, false)
			rc := newRECache()
			cc := newCountCursor(dpli, len(nq.vars))
			ev := newSentEval(nq, rc, false)
			for sid := 0; sid < c.NumSentences(); sid++ {
				s := c.Sentence(sid)
				want := refEvalSentence(nq, s, rc, refCountOf(dpli, nq, int32(sid)), false)
				got := ev.evalSentence(s, &cc, int32(sid))
				if got != len(want) {
					t.Fatalf("seed=%d sid=%d: %d vs %d assignments (%s)", seed, sid, got, len(want), src)
				}
				for i := 0; i < got; i++ {
					a := ev.out(i)
					for _, v := range nq.vars {
						if a[v.slot] != want[i][v.name] {
							t.Fatalf("seed=%d sid=%d assignment %d var %q differs", seed, sid, i, v.name)
						}
					}
				}
			}
		}
	}
}
