package engine

import (
	"context"
	"iter"
	"sync"
	"time"

	"repro/internal/koko/lang"
)

// Streaming evaluation: the pull-based core that Run/RunWith are thin
// collectors over. A Stream performs the cheap prologue eagerly (normalize,
// DPLI pruning, planning) so header fields — candidate count, the chosen
// plan — are available before any document is evaluated, then yields tuples
// one document at a time as the consumer pulls. Memory is bounded by the
// reorder window, not the result size, and the first tuple is available as
// soon as the first candidate document has been evaluated.

// Stream is a started streaming evaluation. Docs is single-use; Err and
// Result are meaningful once the iterator has returned (normally or via
// early break).
type Stream struct {
	res      *Result
	seq      func(yield func([]Tuple) bool)
	err      error
	complete bool
	started  bool
}

// Docs yields each candidate document's tuples, in ascending document order,
// exactly as the buffered path would have appended them. Empty documents are
// skipped. The yielded slice is freshly allocated per document and owned by
// the consumer. Breaking out of the loop stops evaluation promptly (workers
// are cancelled and joined before the iterator returns).
func (s *Stream) Docs() iter.Seq[[]Tuple] {
	return func(yield func([]Tuple) bool) {
		if s.started {
			panic("engine: Stream.Docs consumed twice")
		}
		s.started = true
		s.seq(yield)
	}
}

// Err reports why the stream stopped: nil after a complete drain or consumer
// break, the context error if the run was cancelled.
func (s *Stream) Err() error { return s.err }

// Result returns the run's counters, phase times, and plan report — without
// tuples, which were already yielded. Valid only after Docs has been fully
// drained; the plan's actual-bindings column is folded in at drain time.
func (s *Stream) Result() *Result { return s.res }

// Collect drains the stream into a materialized Result: the buffered mode as
// a thin collector over the iterator.
func (s *Stream) Collect() (*Result, error) {
	for batch := range s.Docs() {
		s.res.Tuples = append(s.res.Tuples, batch...)
	}
	if s.err != nil {
		return nil, s.err
	}
	return s.res, nil
}

// Stream begins a streaming evaluation with per-run overrides. The prologue
// (normalize, DPLI, plan) runs before Stream returns; per-document evaluation
// runs as the returned Stream is pulled.
func (e *Engine) Stream(q *lang.Query, ro RunOptions) (*Stream, error) {
	if err := ctxErr(ro.Ctx); err != nil {
		return nil, err
	}
	res := &Result{}
	t0 := time.Now()
	nq, err := normalize(q, e.model, e.opts.ExpansionLimit)
	if err != nil {
		return nil, err
	}
	res.Times.Normalize = time.Since(t0)

	t0 = time.Now()
	dpli, err := runDPLIGuarded(nq, e.ix, !ro.NoPlan)
	if err != nil {
		return nil, err
	}
	res.Times.DPLI = time.Since(t0)
	st := &Stream{res: res}
	if dpli.exhausted {
		st.seq = func(func([]Tuple) bool) { st.complete = true }
		return st, nil
	}
	var cands []int32
	if dpli.allSentences {
		cands = make([]int32, e.corpus.NumSentences())
		for i := range cands {
			cands[i] = int32(i)
		}
	} else {
		cands = dpli.candSids
	}
	res.CandidateSentences = len(cands)
	var plan *queryPlan
	if !ro.NoPlan {
		t0 = time.Now()
		plan = buildQueryPlan(nq, dpli, cands)
		res.Times.Plan = time.Since(t0)
		res.Plan = plan.info(nq)
	}
	st.seq = e.streamDocs(nq, dpli, cands, ro, plan, st)
	return st, nil
}

// streamDocs builds the per-document iterator over the candidate list.
// Counters and phase times accumulate into st.res in document order (the
// same order the buffered path merged them) as the consumer pulls.
func (e *Engine) streamDocs(nq *normQuery, dpli *dpliResult, cands []int32, ro RunOptions, plan *queryPlan, st *Stream) func(yield func([]Tuple) bool) {
	// Group candidate sentences by document (evidence aggregation and
	// article loading are document-scoped). cands is sorted and DocOfSent is
	// non-decreasing in sid, so grouping is one linear pass — no map, no
	// re-sort, and document order falls out ascending.
	var ranges []docRange
	for i := 0; i < len(cands); {
		d := e.corpus.DocOfSent[cands[i]]
		j := i + 1
		for j < len(cands) && e.corpus.DocOfSent[cands[j]] == d {
			j++
		}
		ranges = append(ranges, docRange{doc: d, lo: i, hi: j})
		i = j
	}
	if ro.Workers <= 1 {
		return e.streamSequential(nq, dpli, cands, ranges, ro, plan, st)
	}
	return e.streamParallel(nq, dpli, cands, ranges, ro, plan, st)
}

// streamSequential is the pure pull path: one worker, one document per pull,
// no goroutines and no buffering beyond the current document's tuples.
func (e *Engine) streamSequential(nq *normQuery, dpli *dpliResult, cands []int32, ranges []docRange, ro RunOptions, plan *queryPlan, st *Stream) func(yield func([]Tuple) bool) {
	return func(yield func([]Tuple) bool) {
		w := e.newDocWorker(nq, dpli, ro, plan)
		for _, r := range ranges {
			if err := ctxErr(ro.Ctx); err != nil {
				st.err = err
				return
			}
			dr := w.evalDoc(r.doc, cands[r.lo:r.hi])
			mergeDocCounters(st.res, dr)
			if len(dr.tuples) > 0 && !yield(dr.tuples) {
				return
			}
		}
		addPlanActuals(st.res, plan, w.ev)
		st.complete = true
	}
}

// streamParallel evaluates documents concurrently behind a bounded reorder
// window. A dispatcher hands each document to both an unbuffered work channel
// (workers pull) and a bounded in-order channel (the consumer pulls); when
// the window fills the dispatcher blocks, so a slow consumer applies
// backpressure to evaluation and completed-but-undelivered results never
// exceed the window. Tuples are still yielded in strict document order, so
// output is byte-identical to the sequential path regardless of scheduling.
func (e *Engine) streamParallel(nq *normQuery, dpli *dpliResult, cands []int32, ranges []docRange, ro RunOptions, plan *queryPlan, st *Stream) func(yield func([]Tuple) bool) {
	workers := ro.Workers
	return func(yield func([]Tuple) bool) {
		base := ro.Ctx
		if base == nil {
			base = context.Background()
		}
		cctx, cancel := context.WithCancel(base)
		// docJob's out is buffered to 1: each job has exactly one producer
		// send and one consumer receive, so workers never block on delivery.
		type docJob struct {
			r   docRange
			out chan docEvalResult
		}
		jobs := make(chan docJob)               // workers pull; unbuffered
		ordered := make(chan docJob, 2*workers) // the reorder window
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // dispatcher
			defer wg.Done()
			defer close(jobs)
			defer close(ordered)
			for _, r := range ranges {
				j := docJob{r: r, out: make(chan docEvalResult, 1)}
				select {
				case ordered <- j:
				case <-cctx.Done():
					return
				}
				select {
				case jobs <- j:
				case <-cctx.Done():
					return
				}
			}
		}()
		evs := make([]*sentEval, workers)
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				w := e.newDocWorker(nq, dpli, ro, plan)
				evs[wk] = w.ev
				for j := range jobs {
					if cctx.Err() != nil {
						return
					}
					j.out <- w.evalDoc(j.r.doc, cands[j.r.lo:j.r.hi])
				}
			}(wk)
		}
		drained := false
		defer func() {
			// Runs on normal completion, consumer break, and cancellation
			// alike: stop the fleet, join it, then (only after the join —
			// evs is written by the workers) fold the plan actuals.
			cancel()
			wg.Wait()
			if !drained {
				return
			}
			if err := ctxErr(ro.Ctx); err != nil {
				st.err = err
				return
			}
			for _, ev := range evs {
				addPlanActuals(st.res, plan, ev)
			}
			st.complete = true
		}()
		for j := range ordered {
			var dr docEvalResult
			select {
			case dr = <-j.out:
			case <-cctx.Done():
				st.err = cctx.Err()
				return
			}
			mergeDocCounters(st.res, dr)
			if len(dr.tuples) > 0 && !yield(dr.tuples) {
				return
			}
		}
		drained = true
	}
}
