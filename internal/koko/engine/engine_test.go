package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/embed"
	"repro/internal/koko/index"
	"repro/internal/koko/lang"
	"repro/internal/store"
)

func engineOver(texts []string, opts Options) *Engine {
	c := index.NewCorpus(nil, texts)
	ix := index.Build(c)
	return New(c, ix, embed.NewModel(), opts)
}

func tupleSet(res *Result) map[string]bool {
	out := map[string]bool{}
	for _, t := range res.Tuples {
		out[fmt.Sprintf("%d|%v", t.Sid, t.Values)] = true
	}
	return out
}

// TestExample21EndToEnd pins the paper's Example 2.1: on the Figure 1
// sentence the query returns exactly one tuple,
// (e, d) = ("chocolate ice cream", "a chocolate ice cream , which was delicious").
func TestExample21EndToEnd(t *testing.T) {
	e := engineOver([]string{
		"I ate a chocolate ice cream, which was delicious, and also ate a pie.",
	}, Options{})
	q := lang.MustParse(`
		extract e:Entity, d:Str from input.txt if
		(/ROOT:{
			a = //verb,
			b = a/dobj,
			c = b//"delicious",
			d = (b.subtree)
		} (b) in (e))`)
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("got %d tuples: %v", len(res.Tuples), res.Tuples)
	}
	got := res.Tuples[0]
	if got.Values[0] != "chocolate ice cream" {
		t.Errorf("e = %q", got.Values[0])
	}
	if got.Values[1] != "a chocolate ice cream, which was delicious" {
		t.Errorf("d = %q", got.Values[1])
	}
	// The paper's stated unique bindings: a="ate", b="cream", c="delicious".
	// Sanity: the second verb "ate" must NOT produce a tuple (its dobj "pie"
	// has no "delicious" beneath it).
	naive, err := e.RunNaive(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tupleSet(res), tupleSet(naive)) {
		t.Errorf("indexed and naive runs disagree: %v vs %v", res.Tuples, naive.Tuples)
	}
}

// TestExample22EndToEnd reproduces the paper's Example 2.2 score table:
// Q1 (similarTo "city") returns Tokyo and Beijing on S2 and nothing on S1;
// Q2 (similarTo "country") returns China and Japan on S1 and nothing on S2.
func TestExample22EndToEnd(t *testing.T) {
	e := engineOver([]string{
		"cities in asian countries such as China and Japan.",
		"cities in asian countries such as Beijing and Tokyo.",
	}, Options{})
	q1 := lang.MustParse(`extract a:GPE from "input.txt" if () satisfying a (a SimilarTo "city" {1.0})`)
	q2 := lang.MustParse(`extract a:GPE from "input.txt" if () satisfying a (a SimilarTo "country" {1.0})`)

	r1, err := e.Run(q1)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, tp := range r1.Tuples {
		if tp.Sid != 1 {
			t.Errorf("Q1 matched S1: %v", tp)
		}
		vals[tp.Values[0]] = tp.Scores["a"]
	}
	if len(vals) != 2 || vals["Tokyo"] == 0 || vals["Beijing"] == 0 {
		t.Fatalf("Q1 results = %v, want Tokyo and Beijing", vals)
	}
	// Paper band: ≈0.36–0.41; ours must land in a comparable band.
	for name, s := range vals {
		if s < 0.3 || s > 0.65 {
			t.Errorf("Q1 score for %s = %.3f, want in [0.3, 0.65]", name, s)
		}
	}

	r2, err := e.Run(q2)
	if err != nil {
		t.Fatal(err)
	}
	vals2 := map[string]float64{}
	for _, tp := range r2.Tuples {
		if tp.Sid != 0 {
			t.Errorf("Q2 matched S2: %v", tp)
		}
		vals2[tp.Values[0]] = tp.Scores["a"]
	}
	if len(vals2) != 2 || vals2["China"] == 0 || vals2["Japan"] == 0 {
		t.Fatalf("Q2 results = %v, want China and Japan", vals2)
	}
}

// TestExample23Style checks weighted-evidence aggregation: an entity whose
// evidence is spread across the document passes the threshold only by
// aggregation.
func TestExample23Style(t *testing.T) {
	doc := "Gravity Beans opened downtown last week. " +
		"The owners say Gravity Beans serves great espresso every morning. " +
		"Gravity Beans recently hired a star barista from Portland."
	e := engineOver([]string{doc}, Options{})
	q := lang.MustParse(`
		extract x:Entity from "input.txt" if ()
		satisfying x
		(str(x) contains "Cafe" {1}) or
		(x [["serves coffee"]] {0.5}) or
		(x [["employs baristas"]] {0.5})
		with threshold 0.5
		excluding (str(x) matches "[Ll]a Marzocco")`)
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, tp := range res.Tuples {
		found[tp.Values[0]] = true
	}
	if !found["Gravity Beans"] {
		t.Errorf("Gravity Beans not extracted: %v", res.Tuples)
	}
	// Portland has no supporting evidence and must not pass.
	if found["Portland"] {
		t.Errorf("Portland wrongly extracted")
	}

	// The same query with threshold 1.5 (unreachable by the two 0.5-weight
	// descriptors plus nothing else) must return nothing for Gravity Beans.
	q2 := lang.MustParse(`
		extract x:Entity from "input.txt" if ()
		satisfying x
		(x [["serves coffee"]] {0.5}) or
		(x [["employs baristas"]] {0.5})
		with threshold 1.0`)
	res2, err := e.Run(q2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range res2.Tuples {
		if tp.Values[0] == "Portland" {
			t.Errorf("Portland passed threshold 1.0: %v", tp)
		}
	}
}

// TestExcluding checks excluding-clause filtering.
func TestExcluding(t *testing.T) {
	doc := "La Marzocco serves espresso. Blue Fox Cafe serves espresso."
	e := engineOver([]string{doc}, Options{
		Dicts: map[string]map[string]bool{
			"Location": {"portland": true},
		},
	})
	q := lang.MustParse(`
		extract x:Entity from "input.txt" if ()
		satisfying x
		(str(x) contains "Cafe" {1}) or
		(x [["serves coffee"]] {0.6})
		with threshold 0.3
		excluding (str(x) matches "[Ll]a Marzocco") or (str(x) in dict("Location"))`)
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range res.Tuples {
		if tp.Values[0] == "La Marzocco" {
			t.Errorf("excluded entity returned: %v", tp)
		}
	}
	found := false
	for _, tp := range res.Tuples {
		if tp.Values[0] == "Blue Fox Cafe" {
			found = true
		}
	}
	if !found {
		t.Errorf("Blue Fox Cafe missing: %v", res.Tuples)
	}
}

// TestHorizontalConditionGSP checks Example 4.1-style span assembly and that
// GSP and NOGSP agree.
func TestHorizontalConditionGSP(t *testing.T) {
	texts := []string{
		"Anna ate some delicious cheesecake that she bought at a grocery store.",
		"I ate a chocolate ice cream, which was delicious, and also ate a pie.",
		"The barista poured espresso.",
	}
	q := lang.MustParse(`
		extract e:Str from input.txt if (
		/ROOT:{
			a = Entity, b = //verb[text="ate"],
			c = b/dobj, d = c//"delicious",
			e = a + ^ + b + ^ + c })`)
	gsp := engineOver(texts, Options{})
	nogsp := engineOver(texts, Options{DisableSkipPlan: true})
	r1, err := gsp.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := nogsp.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tupleSet(r1), tupleSet(r2)) {
		t.Fatalf("GSP/NOGSP disagree:\n%v\n%v", r1.Tuples, r2.Tuples)
	}
	// Sentence 0: a=Anna(0), b=ate(1), c=cheesecake(4): e spans 0..4.
	want := "Anna ate some delicious cheesecake"
	found := false
	for _, tp := range r1.Tuples {
		if tp.Values[0] == want {
			found = true
		}
	}
	if !found {
		t.Errorf("missing %q in %v", want, r1.Tuples)
	}
}

// TestFollowedByAndNear checks the boolean adjacency and proximity
// conditions.
func TestFollowedByAndNear(t *testing.T) {
	doc := "Cafe Benz serves great coffee. We met at Ritual Roasters, a cafe in Portland."
	e := engineOver([]string{doc}, Options{})
	q := lang.MustParse(`
		extract x:Entity from "input.txt" if ()
		satisfying x
		(x ", a cafe" {1}) or
		(x near "coffee" {0.8})
		with threshold 0.2`)
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	scores := map[string]float64{}
	for _, tp := range res.Tuples {
		scores[tp.Values[0]] = tp.Scores["x"]
	}
	if scores["Ritual Roasters"] < 1 {
		t.Errorf("Ritual Roasters score = %v (followed-by should give 1)", scores["Ritual Roasters"])
	}
	// "Cafe Benz serves great coffee": distance from mention to "coffee" is
	// 2 tokens => near = 1/3, weighted 0.8 => ≈0.267.
	got := scores["Cafe Benz"]
	if got < 0.2 || got > 0.4 {
		t.Errorf("Cafe Benz score = %v, want ≈0.267", got)
	}
}

// TestDPLIPrunesAndAgreesWithNaive is the soundness/completeness property:
// on a mixed corpus, Run (index-pruned) and RunNaive (full scan) return the
// same tuple bags for a suite of queries, and DPLI candidates are a superset
// of matching sentences.
func TestDPLIPrunesAndAgreesWithNaive(t *testing.T) {
	texts := []string{
		"Anna ate some delicious cheesecake that she bought at a grocery store.",
		"I ate a chocolate ice cream, which was delicious, and also ate a pie.",
		"The new cafe serves great espresso and employs three baristas.",
		"Baking chocolate is a type of chocolate that is prepared for baking.",
		"Cyd Charisse had been called Sid for years.",
		"The couple had a daughter Vera Alys born in 1911.",
		"cities in asian countries such as China and Japan.",
		"Portland hosts a coffee festival every spring.",
		"She bought bread at the bakery near the park.",
	}
	queries := []string{
		`extract e:Entity, d:Str from f if (/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))`,
		`extract x:Str from f if (/ROOT:{ x = //verb/dobj })`,
		`extract x:Str from f if (/ROOT:{ x = /root/nsubj })`,
		`extract x:Str from f if (/ROOT:{ v = //verb[text="ate"], x = v/dobj })`,
		`extract x:Str from f if (/ROOT:{ x = //*[@pos="propn"] })`,
		`extract x:Str from f if (/ROOT:{ v = //"bought", x = v//pobj })`,
		`extract a:Person, b:Date from f if (/ROOT:{v = verb})`,
		`extract x:Str from f if (/ROOT:{ a = Entity, b = //verb, x = a + ^ + b })`,
		`extract x:Str from f if (/ROOT:{ x = //rcmod//pobj })`,
		`extract x:Str from f if (/ROOT:{ x = //conj/dobj })`,
	}
	e := engineOver(texts, Options{})
	for _, src := range queries {
		q := lang.MustParse(src)
		run, err := e.Run(q)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		naive, err := e.RunNaive(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tupleSet(run), tupleSet(naive)) {
			t.Errorf("query %s:\nindexed %v\nnaive   %v", src, run.Tuples, naive.Tuples)
		}
		// Candidates ⊇ matching sentences (completeness of DPLI).
		cands, err := e.Candidates(q)
		if err != nil {
			t.Fatal(err)
		}
		candSet := map[int32]bool{}
		for _, s := range cands {
			candSet[s] = true
		}
		matching, err := e.MatchingSentences(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matching {
			if !candSet[m] {
				t.Errorf("query %s: matching sentence %d pruned by DPLI", src, m)
			}
		}
	}
}

// TestGSPNOGSPEquivalenceRandom: random span queries over a generated
// corpus must give identical results with and without the skip plan.
func TestGSPNOGSPEquivalenceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	verbs := []string{"ate", "bought", "serves", "visited"}
	nouns := []string{"cheesecake", "espresso", "pie", "coffee", "bread"}
	names := []string{"Anna", "Sarah", "David"}
	var texts []string
	for i := 0; i < 30; i++ {
		texts = append(texts, fmt.Sprintf("%s %s some delicious %s at the %s.",
			names[r.Intn(len(names))], verbs[r.Intn(len(verbs))],
			nouns[r.Intn(len(nouns))], []string{"cafe", "store", "market"}[r.Intn(3)]))
	}
	queries := []string{
		`extract x:Str from f if (/ROOT:{ v = //verb, o = v/dobj, x = v + ^ + o })`,
		`extract x:Str from f if (/ROOT:{ a = Entity, v = //verb, o = //"delicious", x = a + ^ + v + ^ + o })`,
		`extract x:Str from f if (/ROOT:{ v = //verb, w = "delicious", x = v + ^ + w })`,
	}
	gsp := engineOver(texts, Options{})
	nogsp := engineOver(texts, Options{DisableSkipPlan: true})
	for _, src := range queries {
		q := lang.MustParse(src)
		r1, err := gsp.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := nogsp.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tupleSet(r1), tupleSet(r2)) {
			t.Errorf("query %s: GSP %d tuples, NOGSP %d tuples", src, len(r1.Tuples), len(r2.Tuples))
		}
	}
}

// TestArticleDBPath checks that evaluation through the on-disk article store
// (LoadArticle) matches the in-memory path and records load time.
func TestArticleDBPath(t *testing.T) {
	texts := []string{
		"Anna ate some delicious cheesecake that she bought at a grocery store.",
		"I ate a chocolate ice cream, which was delicious, and also ate a pie.",
	}
	c := index.NewCorpus(nil, texts)
	ix := index.Build(c)
	db := store.NewDB()
	c.SaveParsed(db)
	mem := New(c, ix, nil, Options{})
	disk := New(c, ix, nil, Options{ArticleDB: db})
	q := lang.MustParse(`extract x:Str from f if (/ROOT:{ x = //verb/dobj })`)
	r1, err := mem.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := disk.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tupleSet(r1), tupleSet(r2)) {
		t.Errorf("disk path differs: %v vs %v", r1.Tuples, r2.Tuples)
	}
	if r2.Times.LoadArticle == 0 {
		t.Error("LoadArticle time not recorded")
	}
	if r1.Times.LoadArticle != 0 {
		t.Error("in-memory path recorded LoadArticle time")
	}
}

// TestScaleQueriesEndToEnd runs the three §6.3 queries over a handful of
// Wikipedia-style sentences.
func TestScaleQueriesEndToEnd(t *testing.T) {
	texts := []string{
		"Baking chocolate is a type of chocolate that is prepared for baking.",
		"Cyd Charisse had been called Sid for years.",
		"He was married to Alys Thomas in London, and the couple had a daughter Vera Alys born in 1911.",
	}
	e := engineOver(texts, Options{})

	choc := lang.MustParse(`
		extract c:Entity from wiki.article if (
		/ROOT:{ v = //verb, o = v//pobj[text="chocolate"], s = v/nsubj } (s) in (c))
		satisfying v (str(v) ~ "is" {1})`)
	r, err := e.Run(choc)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tp := range r.Tuples {
		if tp.Values[0] == "Baking chocolate" || tp.Values[0] == "chocolate" {
			found = true
		}
	}
	if !found {
		t.Errorf("Chocolate query: %v", r.Tuples)
	}

	title := lang.MustParse(`
		extract a:Person, b:Str from wiki.article if (
		/ROOT:{ v = //"called", p = v/propn, b = p.subtree, c = a + ^ + v + ^ + b })`)
	r, err = e.Run(title)
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, tp := range r.Tuples {
		if tp.Values[0] == "Cyd Charisse" && tp.Values[1] == "Sid" {
			found = true
		}
	}
	if !found {
		t.Errorf("Title query: %v", r.Tuples)
	}

	dob := lang.MustParse(`
		extract a:Person, b:Date from wiki.article if (/ROOT:{v = verb})
		satisfying v (str(v) ~ "born" {1})`)
	r, err = e.Run(dob)
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, tp := range r.Tuples {
		if tp.Values[1] == "1911" {
			found = true
		}
	}
	if !found {
		t.Errorf("DateOfBirth query: %v", r.Tuples)
	}
}

// TestEmptyAndExhausted covers degenerate cases.
func TestEmptyAndExhausted(t *testing.T) {
	e := engineOver([]string{"Anna ate cheesecake."}, Options{})
	// A word absent from the corpus: DPLI must cease immediately.
	q := lang.MustParse(`extract x:Str from f if (/ROOT:{ x = //"zyzzyva" })`)
	res, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 || res.CandidateSentences != 0 {
		t.Errorf("exhausted query returned %v", res)
	}
	// Undefined variable in satisfying: error.
	if _, err := e.Run(lang.MustParse(`extract x:Entity from f if () satisfying y (str(y) contains "a" {1})`)); err == nil {
		t.Error("undefined satisfying variable accepted")
	}
}
