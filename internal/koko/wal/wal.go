// Package wal implements the per-corpus write-ahead log behind durable
// mutable corpora: an append-only file of checksummed, length-prefixed
// records — one per ingested document or tombstone — that survives process
// crashes and is replayed into a fresh delta index on startup.
//
// File layout:
//
//	header   8-byte magic "KOKOWAL1" | uint64 firstSeq (LE)
//	record*  uint32 payloadLen (LE) | uint32 crc32(payload) (LE) | payload
//	payload  uint8 kind | uvarint seq | uvarint len(name) name | body
//
// Every record carries its own monotonically increasing sequence number, so
// a compaction can fold a prefix into the base shards and record the folded
// sequence in the store manifest; replay then skips records at or below it.
// A torn tail (partial write from a crash mid-append) is detected by the
// length/checksum framing and truncated away on open — everything before it
// replays intact.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// SyncPolicy controls when appended records are fsynced to stable storage.
// Records are always written to the OS (a single write syscall per append),
// so a process kill loses nothing under any policy — the policies differ
// only in what a whole-machine crash can lose.
type SyncPolicy int

const (
	// SyncNone never fsyncs on the append path (the OS flushes on its own
	// schedule). Fastest; a power loss can drop recent records.
	SyncNone SyncPolicy = iota
	// SyncBatch fsyncs from a background ticker (group commit): appends pay
	// no fsync, and at most one flush interval of records is exposed to a
	// power loss. The default.
	SyncBatch
	// SyncAlways fsyncs before every append returns. Durability per
	// document; the slowest policy.
	SyncAlways
)

// ParseSyncPolicy maps the flag spellings ("none", "batch", "always") to a
// policy; "" defaults to batch.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "none":
		return SyncNone, nil
	case "", "batch":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	}
	return SyncBatch, fmt.Errorf("wal: unknown sync policy %q (want none, batch, or always)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncAlways:
		return "always"
	}
	return "batch"
}

// Kind discriminates record payloads.
type Kind uint8

const (
	// KindAdd records one ingested document: its name and parsed sentences.
	KindAdd Kind = 1
	// KindTombstone records a delete: every live document with the record's
	// name is masked from reads and dropped at the next compaction. An
	// update is a tombstone followed by an add in the same append batch.
	KindTombstone Kind = 2
)

var (
	magic = [8]byte{'K', 'O', 'K', 'O', 'W', 'A', 'L', '1'}
	// batchInterval is the group-commit period under SyncBatch.
	batchInterval = 25 * time.Millisecond
)

const (
	headerSize = 16
	// maxPayload rejects absurd record lengths when scanning — a corrupt
	// length prefix must not drive a multi-gigabyte allocation.
	maxPayload = 1 << 30
)

// Log is one corpus's write-ahead log. All methods are safe for concurrent
// use; appends within one call are atomic with respect to crash recovery
// (either every record of the batch replays or, on a torn tail, none after
// the tear).
type Log struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	policy  SyncPolicy
	seq     uint64 // last assigned sequence number
	size    int64
	appends uint64
	dirty   bool // written since last fsync (batch policy)
	closed  bool
	stop    chan struct{}
	done    chan struct{}
}

// Open opens (creating if absent) the log at path and replays every intact
// record through replay in append order. A torn or corrupt tail is
// truncated away before the log is positioned for appending. The caller's
// replay func filters already-compacted records by their Seq.
func Open(path string, policy SyncPolicy, replay func(*Record) error) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f, path: path, policy: policy}
	if err := l.recover(replay); err != nil {
		f.Close()
		return nil, err
	}
	if policy == SyncBatch {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.batchSyncer()
	}
	return l, nil
}

// recover validates the header (writing a fresh one into an empty file),
// replays intact records, and truncates any torn tail.
func (l *Log) recover(replay func(*Record) error) error {
	st, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat %s: %w", l.path, err)
	}
	if st.Size() == 0 {
		var hdr [headerSize]byte
		copy(hdr[:8], magic[:])
		binary.LittleEndian.PutUint64(hdr[8:], 1)
		if _, err := l.f.Write(hdr[:]); err != nil {
			return fmt.Errorf("wal: init %s: %w", l.path, err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: init %s: %w", l.path, err)
		}
		l.size = headerSize
		return nil
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReader(l.f)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil || string(hdr[:8]) != string(magic[:]) {
		return fmt.Errorf("wal: %s: bad header (not a KOKO wal)", l.path)
	}
	l.seq = binary.LittleEndian.Uint64(hdr[8:]) - 1
	good := int64(headerSize)
	for {
		rec, n, err := readRecord(r)
		if err != nil {
			break // torn or corrupt tail: keep the good prefix
		}
		if replay != nil {
			if err := replay(rec); err != nil {
				return fmt.Errorf("wal: %s: replay seq %d: %w", l.path, rec.Seq, err)
			}
		}
		l.seq = rec.Seq
		good += int64(n)
	}
	if good < st.Size() {
		if err := l.f.Truncate(good); err != nil {
			return fmt.Errorf("wal: %s: truncate torn tail: %w", l.path, err)
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	if _, err := l.f.Seek(good, io.SeekStart); err != nil {
		return err
	}
	l.size = good
	return nil
}

// readRecord decodes one framed record, returning it and its on-disk size.
func readRecord(r *bufio.Reader) (*Record, int, error) {
	var frame [8]byte
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		return nil, 0, err
	}
	n := binary.LittleEndian.Uint32(frame[:4])
	sum := binary.LittleEndian.Uint32(frame[4:])
	if n == 0 || n > maxPayload {
		return nil, 0, fmt.Errorf("wal: bad record length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, fmt.Errorf("wal: record checksum mismatch")
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		return nil, 0, err
	}
	return rec, 8 + int(n), nil
}

// Append assigns consecutive sequence numbers to recs and writes them as
// one batch: a single write syscall, so crash recovery sees either all of
// the batch's intact records or a truncated tail — never an interleaving.
// Under SyncAlways the data is fsynced before return. Returns the last
// assigned sequence number.
func (l *Log) Append(recs ...Record) (uint64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: %s: log closed", l.path)
	}
	var buf []byte
	seq := l.seq
	for i := range recs {
		seq++
		recs[i].Seq = seq
		buf = appendRecord(buf, &recs[i])
	}
	if _, err := l.f.Write(buf); err != nil {
		// A partial write leaves a torn tail; roll the file back so later
		// appends do not build on garbage (recovery would drop them all).
		_ = l.f.Truncate(l.size)
		_, _ = l.f.Seek(l.size, io.SeekStart)
		return 0, fmt.Errorf("wal: %s: append: %w", l.path, err)
	}
	l.size += int64(len(buf))
	l.seq = seq
	l.appends += uint64(len(recs))
	if l.policy == SyncAlways {
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: %s: sync: %w", l.path, err)
		}
	} else {
		l.dirty = true
	}
	return seq, nil
}

// appendRecord frames one record onto buf.
func appendRecord(buf []byte, rec *Record) []byte {
	payload := encodeRecord(rec)
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, frame[:]...)
	return append(buf, payload...)
}

// Sync flushes appended records to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed || !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %s: sync: %w", l.path, err)
	}
	l.dirty = false
	return nil
}

// batchSyncer is the group-commit loop under SyncBatch.
func (l *Log) batchSyncer() {
	defer close(l.done)
	t := time.NewTicker(batchInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			_ = l.Sync()
		}
	}
}

// TruncatePrefix removes every record with Seq <= applied — the prefix a
// compaction just folded into the persisted base — by rewriting the
// surviving suffix into a temp file and renaming it into place. A crash
// mid-truncate leaves either the old or the new file; both replay
// correctly because the manifest's applied sequence filters the prefix.
func (l *Log) TruncatePrefix(applied uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: %s: log closed", l.path)
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	// Re-scan the current file for the surviving suffix.
	if _, err := l.f.Seek(headerSize, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReader(l.f)
	var keep []byte
	for {
		rec, _, err := readRecord(r)
		if err != nil {
			break
		}
		if rec.Seq > applied {
			keep = appendRecord(keep, rec)
		}
	}
	tmp := l.path + ".tmp"
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint64(hdr[8:], applied+1)
	if err := writeFileSync(tmp, append(hdr[:], keep...)); err != nil {
		return fmt.Errorf("wal: %s: truncate prefix: %w", l.path, err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return fmt.Errorf("wal: %s: truncate prefix: %w", l.path, err)
	}
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %s: reopen: %w", l.path, err)
	}
	l.f.Close()
	l.f = f
	l.size = int64(headerSize + len(keep))
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		return err
	}
	if l.seq < applied {
		l.seq = applied
	}
	return nil
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LastSeq returns the sequence number of the last appended record (0 when
// the log has never held one).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Size returns the log's current on-disk size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Appends returns how many records this process appended (replayed records
// are not counted).
func (l *Log) Appends() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}

// Close flushes, fsyncs, and closes the log. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.stop
	err := l.f.Sync()
	cerr := l.f.Close()
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.done
	}
	if err != nil {
		return err
	}
	return cerr
}
