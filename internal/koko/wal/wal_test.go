package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/nlp"
)

func parsedDoc(t *testing.T, text string) []nlp.Sentence {
	t.Helper()
	doc := nlp.NewPipeline().Annotate(0, "t.txt", text, 0)
	if len(doc.Sentences) == 0 {
		t.Fatal("pipeline produced no sentences")
	}
	return doc.Sentences
}

// normIDs returns a copy of sents with sentence IDs zeroed: the codec does
// not persist them (the delta renumbers on replay), so equality is over
// everything else — tokens, derived geometry, entities.
func normIDs(sents []nlp.Sentence) []nlp.Sentence {
	out := make([]nlp.Sentence, len(sents))
	copy(out, sents)
	for i := range out {
		out[i].ID = 0
	}
	return out
}

func openCollect(t *testing.T, path string, policy SyncPolicy) (*Log, []*Record) {
	t.Helper()
	var recs []*Record
	l, err := Open(path, policy, func(r *Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return l, recs
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	sents := parsedDoc(t, "Cafe Vita serves smooth espresso daily. Anna ate some delicious cheesecake that she bought at a grocery store.")

	l, recs := openCollect(t, path, SyncAlways)
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	seq, err := l.Append(
		Record{Kind: KindAdd, Name: "a.txt", Sents: sents},
		Record{Kind: KindTombstone, Name: "a.txt"},
		Record{Kind: KindAdd, Name: "b.txt", Sents: sents},
	)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("last seq = %d, want 3", seq)
	}
	if l.Appends() != 3 {
		t.Fatalf("appends = %d, want 3", l.Appends())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs := openCollect(t, path, SyncNone)
	defer l2.Close()
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	wantKinds := []Kind{KindAdd, KindTombstone, KindAdd}
	wantNames := []string{"a.txt", "a.txt", "b.txt"}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || r.Kind != wantKinds[i] || r.Name != wantNames[i] {
			t.Fatalf("record %d = {seq %d kind %d name %q}", i, r.Seq, r.Kind, r.Name)
		}
	}
	if !reflect.DeepEqual(normIDs(recs[0].Sents), normIDs(sents)) {
		t.Fatal("replayed sentences differ from originals (tokens, geometry, or entities)")
	}
	if l2.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d, want 3", l2.LastSeq())
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	sents := parsedDoc(t, "I ate a pie.")
	l, _ := openCollect(t, path, SyncAlways)
	if _, err := l.Append(
		Record{Kind: KindAdd, Name: "a.txt", Sents: sents},
		Record{Kind: KindAdd, Name: "b.txt", Sents: sents},
	); err != nil {
		t.Fatal(err)
	}
	good := l.Size()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a partial frame at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, recs := openCollect(t, path, SyncNone)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records after torn tail, want 2", len(recs))
	}
	if l2.Size() != good {
		t.Fatalf("size after recovery = %d, want %d", l2.Size(), good)
	}
	// The log must be appendable after tail truncation.
	if seq, err := l2.Append(Record{Kind: KindTombstone, Name: "a.txt"}); err != nil || seq != 3 {
		t.Fatalf("append after recovery: seq %d err %v", seq, err)
	}
	l2.Close()

	_, recs = openCollect(t, path, SyncNone)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	sents := parsedDoc(t, "I ate a pie.")
	l, _ := openCollect(t, path, SyncAlways)
	if _, err := l.Append(Record{Kind: KindAdd, Name: "a.txt", Sents: sents}); err != nil {
		t.Fatal(err)
	}
	firstEnd := l.Size()
	if _, err := l.Append(Record{Kind: KindAdd, Name: "b.txt", Sents: sents}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip one payload byte of the second record: its checksum fails and
	// replay keeps only the intact prefix.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[firstEnd+10] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, recs := openCollect(t, path, SyncNone)
	defer l2.Close()
	if len(recs) != 1 || recs[0].Name != "a.txt" {
		t.Fatalf("replayed %d records, want the 1 intact prefix record", len(recs))
	}
	if l2.Size() != firstEnd {
		t.Fatalf("corrupt suffix not truncated: size %d, want %d", l2.Size(), firstEnd)
	}
}

func TestTruncatePrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	sents := parsedDoc(t, "I ate a pie.")
	l, _ := openCollect(t, path, SyncBatch)
	names := []string{"a", "b", "c", "d", "e"}
	for _, n := range names {
		if _, err := l.Append(Record{Kind: KindAdd, Name: n, Sents: sents}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncatePrefix(3); err != nil {
		t.Fatal(err)
	}
	// Appends after a truncate continue the global sequence.
	if seq, err := l.Append(Record{Kind: KindAdd, Name: "f", Sents: sents}); err != nil || seq != 6 {
		t.Fatalf("append after truncate: seq %d err %v", seq, err)
	}
	l.Close()

	_, recs := openCollect(t, path, SyncNone)
	got := []string{}
	for _, r := range recs {
		got = append(got, r.Name)
	}
	if !reflect.DeepEqual(got, []string{"d", "e", "f"}) {
		t.Fatalf("after TruncatePrefix(3) replay = %v, want [d e f]", got)
	}
	if recs[0].Seq != 4 {
		t.Fatalf("first surviving seq = %d, want 4", recs[0].Seq)
	}
}

func TestTruncatePrefixAll(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	sents := parsedDoc(t, "I ate a pie.")
	l, _ := openCollect(t, path, SyncNone)
	if _, err := l.Append(Record{Kind: KindAdd, Name: "a", Sents: sents}); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncatePrefix(1); err != nil {
		t.Fatal(err)
	}
	if l.Size() != headerSize {
		t.Fatalf("size after full truncate = %d, want header only", l.Size())
	}
	l.Close()

	l2, recs := openCollect(t, path, SyncNone)
	defer l2.Close()
	if len(recs) != 0 {
		t.Fatalf("replayed %d records, want 0", len(recs))
	}
	// The sequence must not restart: the next record is seq 2.
	if seq, err := l2.Append(Record{Kind: KindTombstone, Name: "a"}); err != nil || seq != 2 {
		t.Fatalf("append after full truncate: seq %d err %v", seq, err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"": SyncBatch, "batch": SyncBatch, "none": SyncNone, "always": SyncAlways} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted an unknown policy")
	}
}
