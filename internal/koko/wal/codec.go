package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/nlp"
)

// Record is one WAL entry: an ingested document (KindAdd, with its parsed
// sentences) or a tombstone (KindTombstone, name only). Seq is assigned by
// Append and carried on disk so replay can skip the already-compacted
// prefix.
type Record struct {
	Seq   uint64
	Kind  Kind
	Name  string
	Sents []nlp.Sentence
}

// The document codec serializes exactly the fields the parse pipeline
// produces that cannot be recomputed: token text, lower, POS, label, and
// head, plus entity spans with their detokenized text. Derived tree
// geometry (Depth, SubL, SubR, adjacency, root) and entity back-links are
// rebuilt on decode via RecomputeDerived — the same discipline as the
// store's LoadSentence, which is what makes a replayed document
// byte-identical to the originally ingested one.

func encodeRecord(rec *Record) []byte {
	b := []byte{byte(rec.Kind)}
	b = binary.AppendUvarint(b, rec.Seq)
	b = appendString(b, rec.Name)
	if rec.Kind == KindAdd {
		b = encodeSentences(b, rec.Sents)
	}
	return b
}

func decodeRecord(payload []byte) (*Record, error) {
	d := &decoder{b: payload}
	rec := &Record{Kind: Kind(d.u8())}
	rec.Seq = d.uvarint()
	rec.Name = d.str()
	switch rec.Kind {
	case KindAdd:
		rec.Sents = d.sentences()
	case KindTombstone:
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", rec.Kind)
	}
	if d.err != nil {
		return nil, d.err
	}
	return rec, nil
}

func encodeSentences(b []byte, sents []nlp.Sentence) []byte {
	b = binary.AppendUvarint(b, uint64(len(sents)))
	for si := range sents {
		s := &sents[si]
		b = binary.AppendUvarint(b, uint64(len(s.Tokens)))
		for i := range s.Tokens {
			t := &s.Tokens[i]
			b = appendString(b, t.Text)
			b = appendString(b, t.Lower)
			b = appendString(b, t.POS)
			b = appendString(b, t.Label)
			b = binary.AppendVarint(b, int64(t.Head))
		}
		b = binary.AppendUvarint(b, uint64(len(s.Entities)))
		for _, e := range s.Entities {
			b = appendString(b, e.Type)
			b = appendString(b, e.Text)
			b = binary.AppendVarint(b, int64(e.L))
			b = binary.AppendVarint(b, int64(e.R))
		}
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// decoder reads the codec back with sticky error handling: after the first
// malformed read every accessor returns zero values and err records the
// failure.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("wal: truncated record payload")
	}
}

func (d *decoder) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	v := string(d.b[:n])
	d.b = d.b[n:]
	return v
}

func (d *decoder) sentences() []nlp.Sentence {
	ns := d.uvarint()
	if d.err != nil || ns > maxPayload {
		d.fail()
		return nil
	}
	sents := make([]nlp.Sentence, 0, ns)
	for si := uint64(0); si < ns && d.err == nil; si++ {
		var s nlp.Sentence
		nt := d.uvarint()
		if d.err != nil || nt > maxPayload {
			d.fail()
			return nil
		}
		s.Tokens = make([]nlp.Token, 0, nt)
		for i := uint64(0); i < nt && d.err == nil; i++ {
			s.Tokens = append(s.Tokens, nlp.Token{
				ID:       int(i),
				Text:     d.str(),
				Lower:    d.str(),
				POS:      d.str(),
				Label:    d.str(),
				Head:     int(d.varint()),
				EntityID: -1,
			})
		}
		// Rebuild derived geometry first (entity construction in
		// LoadSentence follows the same order).
		s.RecomputeDerived()
		ne := d.uvarint()
		if d.err != nil || ne > maxPayload {
			d.fail()
			return nil
		}
		for i := uint64(0); i < ne && d.err == nil; i++ {
			e := nlp.Entity{
				Type: d.str(),
				Text: d.str(),
				L:    int(d.varint()),
				R:    int(d.varint()),
			}
			s.Entities = append(s.Entities, e)
			id := len(s.Entities) - 1
			for t := e.L; t >= 0 && t <= e.R && t < len(s.Tokens); t++ {
				s.Tokens[t].EntityID = id
			}
		}
		sents = append(sents, s)
	}
	if d.err != nil {
		return nil
	}
	return sents
}
