package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// DefaultThreshold is used when a satisfying clause omits "with threshold"
// (the paper's §6.3 DateOfBirth query and the Example 2.2 queries do). The
// value is calibrated so that Example 2.2's similarTo scores (≈0.36–0.51)
// pass while cross-category similarities (<0.3) do not.
const DefaultThreshold = 0.3

// Parse parses a KOKO query.
func Parse(query string) (*Query, error) {
	toks, err := lex(query)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, defined: map[string]bool{}}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse parses or panics; for tests and embedded benchmark queries.
func MustParse(query string) *Query {
	q, err := Parse(query)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks    []token
	pos     int
	defined map[string]bool // variables defined so far (block decls + outputs)
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[p.pos+1] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("koko: %s (near offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	if p.cur().kind != kind {
		return token{}, p.errf("expected %s, got %s", what, p.cur())
	}
	return p.next(), nil
}

func (p *parser) isKeyword(kw string) bool {
	return p.cur().kind == tIdent && strings.EqualFold(p.cur().text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if !p.acceptKeyword("extract") {
		return nil, p.errf("query must start with 'extract'")
	}
	// Output list (may be empty when followed directly by 'from', as in
	// "extract x:Entity" — at least the paper always has one; we require 1+).
	for {
		name, err := p.expect(tIdent, "output variable")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tColon, "':' after output variable"); err != nil {
			return nil, err
		}
		typ, err := p.expect(tIdent, "output type")
		if err != nil {
			return nil, err
		}
		q.Outputs = append(q.Outputs, OutVar{Name: name.text, Type: typ.text})
		p.defined[name.text] = true
		if p.cur().kind == tComma {
			p.next()
			continue
		}
		break
	}
	if !p.acceptKeyword("from") {
		return nil, p.errf("expected 'from'")
	}
	src, err := p.parseSource()
	if err != nil {
		return nil, err
	}
	q.Source = src
	if !p.acceptKeyword("if") {
		return nil, p.errf("expected 'if'")
	}
	if _, err := p.expect(tLParen, "'(' after if"); err != nil {
		return nil, err
	}
	if err := p.parseIfBody(q); err != nil {
		return nil, err
	}
	if _, err := p.expect(tRParen, "')' closing if"); err != nil {
		return nil, err
	}
	for p.isKeyword("satisfying") {
		sc, err := p.parseSatisfying()
		if err != nil {
			return nil, err
		}
		q.Satisfying = append(q.Satisfying, *sc)
	}
	if p.acceptKeyword("excluding") {
		for {
			if _, err := p.expect(tLParen, "'(' opening excluding condition"); err != nil {
				return nil, err
			}
			c, err := p.parseSatCond(false)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRParen, "')' closing excluding condition"); err != nil {
				return nil, err
			}
			q.Excluding = append(q.Excluding, *c)
			if !p.acceptKeyword("or") {
				break
			}
		}
	}
	if p.cur().kind != tEOF {
		return nil, p.errf("unexpected trailing input %s", p.cur())
	}
	return q, nil
}

func (p *parser) parseSource() (string, error) {
	if p.cur().kind == tString {
		return p.next().text, nil
	}
	// Unquoted source: ident (. ident)* — e.g. input.txt, wiki.article.
	t, err := p.expect(tIdent, "source file")
	if err != nil {
		return "", err
	}
	src := t.text
	for p.cur().kind == tDot && p.peek().kind == tIdent {
		p.next()
		src += "." + p.next().text
	}
	return src, nil
}

func (p *parser) parseIfBody(q *Query) error {
	// Optional /ROOT:{ ... } block.
	if p.cur().kind == tSlash && p.peek().kind == tIdent && strings.EqualFold(p.peek().text, "root") {
		// Lookahead for ':' to distinguish a block from a path constraint.
		if p.toks[p.pos+2].kind == tColon {
			p.next() // /
			p.next() // ROOT
			p.next() // :
			if _, err := p.expect(tLBrace, "'{' opening block"); err != nil {
				return err
			}
			for {
				name, err := p.expect(tIdent, "variable name")
				if err != nil {
					return err
				}
				if _, err := p.expect(tEquals, "'=' in declaration"); err != nil {
					return err
				}
				expr, err := p.parseSpanExpr()
				if err != nil {
					return err
				}
				q.Block = append(q.Block, Decl{Name: name.text, Expr: expr})
				p.defined[name.text] = true
				if p.cur().kind == tComma {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(tRBrace, "'}' closing block"); err != nil {
				return err
			}
		}
	}
	// Constraints: ( expr ) in|eq ( expr ), repeated.
	for p.cur().kind == tLParen {
		p.next()
		left, err := p.parseSpanExpr()
		if err != nil {
			return err
		}
		if _, err := p.expect(tRParen, "')' closing constraint side"); err != nil {
			return err
		}
		var op ConstraintOp
		switch {
		case p.acceptKeyword("in"):
			op = OpIn
		case p.acceptKeyword("eq"):
			op = OpEq
		default:
			return p.errf("expected 'in' or 'eq' in constraint")
		}
		if _, err := p.expect(tLParen, "'(' opening constraint side"); err != nil {
			return err
		}
		right, err := p.parseSpanExpr()
		if err != nil {
			return err
		}
		if _, err := p.expect(tRParen, "')' closing constraint side"); err != nil {
			return err
		}
		q.Constraints = append(q.Constraints, Constraint{Left: left, Op: op, Right: right})
	}
	return nil
}

func (p *parser) parseSpanExpr() (SpanExpr, error) {
	var e SpanExpr
	for {
		a, err := p.parseAtom()
		if err != nil {
			return e, err
		}
		e.Atoms = append(e.Atoms, a)
		if p.cur().kind == tPlus {
			p.next()
			continue
		}
		return e, nil
	}
}

func (p *parser) parseAtom() (Atom, error) {
	switch p.cur().kind {
	case tLParen:
		p.next()
		inner, err := p.parseSpanExpr()
		if err != nil {
			return Atom{}, err
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return Atom{}, err
		}
		if len(inner.Atoms) != 1 {
			return Atom{}, p.errf("parenthesized span must contain a single atom")
		}
		return inner.Atoms[0], nil
	case tCaret:
		p.next()
		a := Atom{Kind: AtomElastic}
		if p.cur().kind == tLBracket {
			conds, err := p.parseConds()
			if err != nil {
				return Atom{}, err
			}
			a.Conds = conds
		}
		return a, nil
	case tString:
		words := strings.Fields(p.next().text)
		return Atom{Kind: AtomTokens, Tokens: words}, nil
	case tSlash, tDSlash:
		steps, err := p.parseSteps()
		if err != nil {
			return Atom{}, err
		}
		return Atom{Kind: AtomPath, Steps: steps}, nil
	case tIdent:
		name := p.next().text
		// x.subtree
		if p.cur().kind == tDot && p.peek().kind == tIdent && strings.EqualFold(p.peek().text, "subtree") {
			p.next()
			p.next()
			return Atom{Kind: AtomSubtree, Var: name}, nil
		}
		// Var-anchored path: b//"delicious", a/dobj.
		if p.cur().kind == tSlash || p.cur().kind == tDSlash {
			steps, err := p.parseSteps()
			if err != nil {
				return Atom{}, err
			}
			if !p.defined[name] {
				return Atom{}, p.errf("path anchored at undefined variable %q", name)
			}
			return Atom{Kind: AtomPath, From: name, Steps: steps}, nil
		}
		// Defined variable reference.
		if p.defined[name] {
			return Atom{Kind: AtomVar, Var: name}, nil
		}
		// Bare label: "v = verb", "a = Entity".
		step := NewBareStep(name)
		if p.cur().kind == tLBracket {
			conds, err := p.parseConds()
			if err != nil {
				return Atom{}, err
			}
			step.Conds = conds
		}
		return Atom{Kind: AtomPath, Steps: []PathStep{step}}, nil
	}
	return Atom{}, p.errf("expected atom, got %s", p.cur())
}

func (p *parser) parseSteps() ([]PathStep, error) {
	var steps []PathStep
	for {
		var desc bool
		switch p.cur().kind {
		case tSlash:
			desc = false
		case tDSlash:
			desc = true
		default:
			if len(steps) == 0 {
				return nil, p.errf("expected path axis")
			}
			return steps, nil
		}
		p.next()
		st := PathStep{Desc: desc}
		switch p.cur().kind {
		case tIdent:
			st.Label = p.next().text
		case tString:
			// A quoted label is a word token; keep the quotes' content and
			// mark it via a text condition so analysis can't mistake it for
			// a parse label.
			w := p.next().text
			st.Label = "*"
			st.Conds = append(st.Conds, LabelCond{Key: "text", Value: w})
		case tStar:
			p.next()
			st.Label = "*"
		default:
			return nil, p.errf("expected path label, got %s", p.cur())
		}
		if p.cur().kind == tLBracket {
			conds, err := p.parseConds()
			if err != nil {
				return nil, err
			}
			st.Conds = append(st.Conds, conds...)
		}
		steps = append(steps, st)
		if p.cur().kind != tSlash && p.cur().kind != tDSlash {
			return steps, nil
		}
	}
}

func (p *parser) parseConds() ([]LabelCond, error) {
	if _, err := p.expect(tLBracket, "'['"); err != nil {
		return nil, err
	}
	var out []LabelCond
	for {
		// Optional '@'.
		if p.cur().kind == tAt {
			p.next()
		}
		key, err := p.expect(tIdent, "condition key")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tEquals, "'=' in condition"); err != nil {
			return nil, err
		}
		var val string
		switch p.cur().kind {
		case tString:
			val = p.next().text
		case tNumber:
			val = p.next().text
		case tIdent:
			val = p.next().text
		default:
			return nil, p.errf("expected condition value, got %s", p.cur())
		}
		k := strings.ToLower(key.text)
		switch k {
		case "pos", "regex", "etype", "text", "min", "max":
		default:
			return nil, p.errf("unknown condition key %q", key.text)
		}
		out = append(out, LabelCond{Key: k, Value: val})
		if p.cur().kind == tComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tRBracket, "']'"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseSatisfying() (*SatClause, error) {
	p.next() // consume 'satisfying'
	v, err := p.expect(tIdent, "satisfying variable")
	if err != nil {
		return nil, err
	}
	sc := &SatClause{Var: v.text, Threshold: DefaultThreshold}
	for {
		if _, err := p.expect(tLParen, "'(' opening condition"); err != nil {
			return nil, err
		}
		c, err := p.parseSatCond(true)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, "')' closing condition"); err != nil {
			return nil, err
		}
		sc.Conds = append(sc.Conds, *c)
		if p.acceptKeyword("or") {
			continue
		}
		break
	}
	if p.acceptKeyword("with") {
		if !p.acceptKeyword("threshold") {
			return nil, p.errf("expected 'threshold' after 'with'")
		}
		t, err := p.expect(tNumber, "threshold value")
		if err != nil {
			return nil, err
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad threshold %q", t.text)
		}
		sc.Threshold = f
	}
	return sc, nil
}

// parseSatCond parses one satisfying/excluding condition. withWeight enables
// the trailing "{w}" weight (default 1 when absent).
func (p *parser) parseSatCond(withWeight bool) (*SatCond, error) {
	c := &SatCond{Weight: 1}
	switch {
	case p.isKeyword("str"):
		p.next()
		if _, err := p.expect(tLParen, "'(' after str"); err != nil {
			return nil, err
		}
		v, err := p.expect(tIdent, "variable in str()")
		if err != nil {
			return nil, err
		}
		c.Var = v.text
		if _, err := p.expect(tRParen, "')' after str(var"); err != nil {
			return nil, err
		}
		switch {
		case p.acceptKeyword("contains"):
			c.Kind = CondContains
		case p.acceptKeyword("mentions"):
			c.Kind = CondMentions
		case p.acceptKeyword("matches"):
			c.Kind = CondMatches
		case p.acceptKeyword("similarTo"):
			c.Kind = CondSimilarTo
		case p.cur().kind == tTilde:
			p.next()
			c.Kind = CondSimilarTo
		case p.acceptKeyword("in"):
			if !p.acceptKeyword("dict") {
				return nil, p.errf("expected dict(...) after 'in'")
			}
			if _, err := p.expect(tLParen, "'(' after dict"); err != nil {
				return nil, err
			}
			d, err := p.expect(tString, "dictionary name")
			if err != nil {
				return nil, err
			}
			c.Arg = d.text
			if _, err := p.expect(tRParen, "')' after dict name"); err != nil {
				return nil, err
			}
			c.Kind = CondInDict
			return p.finishWeight(c, withWeight)
		default:
			return nil, p.errf("expected contains/mentions/matches/in after str()")
		}
		s, err := p.expect(tString, "string argument")
		if err != nil {
			return nil, err
		}
		c.Arg = s.text
		return p.finishWeight(c, withWeight)

	case p.cur().kind == tString:
		// "s" x — preceded-by.
		c.Arg = p.next().text
		v, err := p.expect(tIdent, "variable after string")
		if err != nil {
			return nil, err
		}
		c.Var = v.text
		c.Kind = CondPrecededBy
		return p.finishWeight(c, withWeight)

	case p.cur().kind == tDLBracket:
		// [[d]] x — descriptor before x.
		d, err := p.parseDescriptor()
		if err != nil {
			return nil, err
		}
		v, err := p.expect(tIdent, "variable after descriptor")
		if err != nil {
			return nil, err
		}
		c.Kind = CondDescLeft
		c.Arg = d
		c.Var = v.text
		return p.finishWeight(c, withWeight)

	case p.cur().kind == tIdent:
		c.Var = p.next().text
		switch {
		case p.acceptKeyword("near"):
			c.Kind = CondNear
			s, err := p.expect(tString, "string after near")
			if err != nil {
				return nil, err
			}
			c.Arg = s.text
		case p.acceptKeyword("similarTo"):
			c.Kind = CondSimilarTo
			s, err := p.expect(tString, "string after similarTo")
			if err != nil {
				return nil, err
			}
			c.Arg = s.text
		case p.cur().kind == tTilde:
			p.next()
			c.Kind = CondSimilarTo
			s, err := p.expect(tString, "string after ~")
			if err != nil {
				return nil, err
			}
			c.Arg = s.text
		case p.cur().kind == tDLBracket:
			d, err := p.parseDescriptor()
			if err != nil {
				return nil, err
			}
			c.Kind = CondDescRight
			c.Arg = d
		case p.cur().kind == tString:
			c.Kind = CondFollowedBy
			c.Arg = p.next().text
		default:
			return nil, p.errf("expected condition operator after %q", c.Var)
		}
		return p.finishWeight(c, withWeight)
	}
	return nil, p.errf("expected satisfying condition, got %s", p.cur())
}

func (p *parser) parseDescriptor() (string, error) {
	if _, err := p.expect(tDLBracket, "'[['"); err != nil {
		return "", err
	}
	var d string
	if p.cur().kind == tString {
		d = p.next().text
	} else {
		var parts []string
		for p.cur().kind == tIdent {
			parts = append(parts, p.next().text)
		}
		d = strings.Join(parts, " ")
	}
	if d == "" {
		return "", p.errf("empty descriptor")
	}
	if _, err := p.expect(tDRBracket, "']]'"); err != nil {
		return "", err
	}
	return d, nil
}

func (p *parser) finishWeight(c *SatCond, withWeight bool) (*SatCond, error) {
	if withWeight && p.cur().kind == tLBrace {
		p.next()
		t, err := p.expect(tNumber, "weight")
		if err != nil {
			return nil, err
		}
		w, err := strconv.ParseFloat(t.text, 64)
		if err != nil || w < 0 || w > 1 {
			return nil, p.errf("weight must be a number in [0,1], got %q", t.text)
		}
		c.Weight = w
		if _, err := p.expect(tRBrace, "'}' closing weight"); err != nil {
			return nil, err
		}
	}
	return c, nil
}
