package lang

import (
	"strings"
	"testing"
)

// TestParseExample21 pins the structure of the paper's Example 2.1.
func TestParseExample21(t *testing.T) {
	q := MustParse(`
		extract e:Entity, d:Str from input.txt if
		(/ROOT:{
			a = //verb,
			b = a/dobj,
			c = b//"delicious",
			d = (b.subtree)
		} (b) in (e))`)
	if len(q.Outputs) != 2 || q.Outputs[0] != (OutVar{"e", "Entity"}) || q.Outputs[1] != (OutVar{"d", "Str"}) {
		t.Fatalf("outputs = %v", q.Outputs)
	}
	if q.Source != "input.txt" {
		t.Errorf("source = %q", q.Source)
	}
	if len(q.Block) != 4 {
		t.Fatalf("block = %v", q.Block)
	}
	a := q.Block[0]
	if a.Name != "a" || len(a.Expr.Atoms) != 1 {
		t.Fatalf("a = %v", a)
	}
	if at := a.Expr.Atoms[0]; at.Kind != AtomPath || len(at.Steps) != 1 || !at.Steps[0].Desc || at.Steps[0].Label != "verb" {
		t.Errorf("a atom = %+v", at)
	}
	b := q.Block[1].Expr.Atoms[0]
	if b.Kind != AtomPath || b.From != "a" || b.Steps[0].Desc || b.Steps[0].Label != "dobj" {
		t.Errorf("b atom = %+v", b)
	}
	c := q.Block[2].Expr.Atoms[0]
	if c.Kind != AtomPath || c.From != "b" || !c.Steps[0].Desc {
		t.Errorf("c atom = %+v", c)
	}
	if len(c.Steps[0].Conds) != 1 || c.Steps[0].Conds[0] != (LabelCond{"text", "delicious"}) {
		t.Errorf("c conds = %v", c.Steps[0].Conds)
	}
	d := q.Block[3].Expr.Atoms[0]
	if d.Kind != AtomSubtree || d.Var != "b" {
		t.Errorf("d atom = %+v", d)
	}
	if len(q.Constraints) != 1 || q.Constraints[0].Op != OpIn {
		t.Fatalf("constraints = %v", q.Constraints)
	}
	if q.Constraints[0].Left.Atoms[0].Var != "b" || q.Constraints[0].Right.Atoms[0].Var != "e" {
		t.Errorf("constraint sides = %v", q.Constraints[0])
	}
}

// TestParseExample22 parses the similarTo queries Q1/Q2.
func TestParseExample22(t *testing.T) {
	q := MustParse(`
		extract a:GPE from "input.txt" if ()
		satisfying a
		(a SimilarTo "city" {1.0})`)
	if len(q.Satisfying) != 1 {
		t.Fatalf("satisfying = %v", q.Satisfying)
	}
	sc := q.Satisfying[0]
	if sc.Var != "a" || len(sc.Conds) != 1 {
		t.Fatalf("clause = %+v", sc)
	}
	c := sc.Conds[0]
	if c.Kind != CondSimilarTo || c.Arg != "city" || c.Weight != 1.0 {
		t.Errorf("cond = %+v", c)
	}
	if sc.Threshold != DefaultThreshold {
		t.Errorf("threshold = %v", sc.Threshold)
	}
}

// TestParseExample23 parses the cafe query with descriptors, threshold and
// excluding.
func TestParseExample23(t *testing.T) {
	q := MustParse(`
		extract x:Entity from "input.txt" if ()
		satisfying x
		(str(x) contains "Cafe" {1}) or
		(str(x) contains "Roasters" {1}) or
		(x ", a cafe" {1}) or
		(x [["serves coffee"]] {0.5}) or
		(x [["employs baristas"]] {0.5})
		with threshold 0.8
		excluding (str(x) matches "[Ll]a Marzocco")`)
	sc := q.Satisfying[0]
	if len(sc.Conds) != 5 {
		t.Fatalf("conds = %d", len(sc.Conds))
	}
	wantKinds := []SatKind{CondContains, CondContains, CondFollowedBy, CondDescRight, CondDescRight}
	wantWeights := []float64{1, 1, 1, 0.5, 0.5}
	for i, c := range sc.Conds {
		if c.Kind != wantKinds[i] || c.Weight != wantWeights[i] {
			t.Errorf("cond %d = %+v", i, c)
		}
	}
	if sc.Conds[2].Arg != ", a cafe" {
		t.Errorf("followed-by arg = %q", sc.Conds[2].Arg)
	}
	if sc.Conds[3].Arg != "serves coffee" {
		t.Errorf("descriptor arg = %q", sc.Conds[3].Arg)
	}
	if sc.Threshold != 0.8 {
		t.Errorf("threshold = %v", sc.Threshold)
	}
	if len(q.Excluding) != 1 || q.Excluding[0].Kind != CondMatches || q.Excluding[0].Arg != "[Ll]a Marzocco" {
		t.Errorf("excluding = %+v", q.Excluding)
	}
}

// TestParseExample41 parses the query with a horizontal condition.
func TestParseExample41(t *testing.T) {
	q := MustParse(`
		extract a:Str, b:Str, c:Str from input.txt if (
		/ROOT:{
			a = Entity, b = //verb[text="ate"],
			c = b/dobj, d = c//"delicious",
			e = a + ^ + b + ^ + c })`)
	if len(q.Block) != 5 {
		t.Fatalf("block = %d decls", len(q.Block))
	}
	// a = Entity is a bare label.
	a := q.Block[0].Expr.Atoms[0]
	if a.Kind != AtomPath || a.Steps[0].Label != "Entity" || !a.Steps[0].Bare() {
		t.Errorf("a = %+v", a)
	}
	b := q.Block[1].Expr.Atoms[0]
	if len(b.Steps[0].Conds) != 1 || b.Steps[0].Conds[0] != (LabelCond{"text", "ate"}) {
		t.Errorf("b = %+v", b)
	}
	e := q.Block[4].Expr
	if len(e.Atoms) != 5 {
		t.Fatalf("e atoms = %d", len(e.Atoms))
	}
	kinds := []AtomKind{AtomVar, AtomElastic, AtomVar, AtomElastic, AtomVar}
	for i, at := range e.Atoms {
		if at.Kind != kinds[i] {
			t.Errorf("e atom %d kind = %v, want %v", i, at.Kind, kinds[i])
		}
	}
}

// TestParseScaleQueries parses the three §6.3 queries.
func TestParseScaleQueries(t *testing.T) {
	choc := MustParse(`
		extract c:Entity from wiki.article if (
		/ROOT:{
			v = //verb, o = v//pobj[text="chocolate"],
			s = v/nsubj } (s) in (c))
		satisfying v
		(str(v) ~ "is" {1})`)
	if choc.Source != "wiki.article" {
		t.Errorf("source = %q", choc.Source)
	}
	if choc.Satisfying[0].Conds[0].Kind != CondSimilarTo {
		t.Errorf("~ not parsed as similarTo: %+v", choc.Satisfying[0].Conds[0])
	}

	title := MustParse(`
		extract a:Person, b:Str from wiki.article if (
		/ROOT:{
			v = //"called", p = v/propn, b = p.subtree,
			c = a + ^ + v + ^ + b})`)
	v := title.Block[0].Expr.Atoms[0]
	if v.Kind != AtomPath || v.Steps[0].Conds[0] != (LabelCond{"text", "called"}) {
		t.Errorf("v = %+v", v)
	}
	if title.Block[2].Expr.Atoms[0].Kind != AtomSubtree {
		t.Errorf("b = %+v", title.Block[2].Expr.Atoms[0])
	}

	dob := MustParse(`
		extract a:Person, b:Date from wiki.article if (
		/ROOT:{v = verb})
		satisfying v
		(str(v) ~ "born" {1})`)
	if dob.Block[0].Expr.Atoms[0].Steps[0].Label != "verb" {
		t.Errorf("v = %+v", dob.Block[0].Expr.Atoms[0])
	}
	if dob.Satisfying[0].Threshold != DefaultThreshold {
		t.Errorf("default threshold = %v", dob.Satisfying[0].Threshold)
	}
}

// TestParseFig9Fragment parses representative lines of the appendix cafe
// query: preceded-by, near, descriptor-left, dict excluding.
func TestParseFig9Fragment(t *testing.T) {
	q := MustParse(`
		extract x:Entity from "blogs.txt" if ()
		satisfying x
		(str(x) contains "Cafe" {1}) or
		("cafe called" x {1}) or
		(x near ", a cafe" {1}) or
		(x [["sells coffee"]] {0.02}) or
		([["coffee from"]] x {0.015}) or
		(x [["pour-over"]] {0.015})
		with threshold 0.6
		excluding
		(str(x) matches "[a-z 0-9.]+") or
		(str(x) matches "[0-9]+ [0-9A-Z a-z]+ [Ss]treet") or
		(str(x) in dict("Location"))`)
	sc := q.Satisfying[0]
	kinds := []SatKind{CondContains, CondPrecededBy, CondNear, CondDescRight, CondDescLeft, CondDescRight}
	for i, c := range sc.Conds {
		if c.Kind != kinds[i] {
			t.Errorf("cond %d kind = %v, want %v (%+v)", i, c.Kind, kinds[i], c)
		}
	}
	if sc.Conds[1].Arg != "cafe called" || sc.Conds[1].Var != "x" {
		t.Errorf("preceded-by = %+v", sc.Conds[1])
	}
	if sc.Conds[4].Arg != "coffee from" {
		t.Errorf("desc-left = %+v", sc.Conds[4])
	}
	if len(q.Excluding) != 3 {
		t.Fatalf("excluding = %d", len(q.Excluding))
	}
	if q.Excluding[2].Kind != CondInDict || q.Excluding[2].Arg != "Location" {
		t.Errorf("dict excluding = %+v", q.Excluding[2])
	}
}

// TestParseWNUTQueries parses the appendix A.2 queries (Figures 10 and 11).
func TestParseWNUTQueries(t *testing.T) {
	fac := MustParse(`
		extract x:Entity from "tweets.txt" if ()
		satisfying x
		("at" x {1}) or
		([["went to"]] x {0.8}) or
		([["go to"]] x {0.8})
		with threshold 0.6
		excluding
		(str(x) contains "p.m.") or
		(str(x) mentions "@") or
		(str(x) contains "today")`)
	if len(fac.Satisfying[0].Conds) != 3 || len(fac.Excluding) != 3 {
		t.Errorf("facility query: %d conds, %d excluding", len(fac.Satisfying[0].Conds), len(fac.Excluding))
	}
	if fac.Excluding[1].Kind != CondMentions {
		t.Errorf("mentions = %+v", fac.Excluding[1])
	}

	team := MustParse(`
		extract x:Entity from "tweets.txt" if ()
		satisfying x
		(x [["to host"]] {0.9}) or
		(x "vs" {0.9}) or
		("vs" x {0.9}) or
		(x [["soccer"]] {0.9}) or
		("go" x {0.9})
		with threshold 0.6`)
	if len(team.Satisfying[0].Conds) != 5 {
		t.Errorf("team query conds = %d", len(team.Satisfying[0].Conds))
	}
}

// TestParseCurlyQuotesAndUnicode accepts the paper's typography.
func TestParseCurlyQuotesAndUnicode(t *testing.T) {
	q := MustParse("extract e:Entity from input.txt if (/ROOT:{ c = //“delicious”, d = ^ })")
	c := q.Block[0].Expr.Atoms[0]
	if c.Kind != AtomPath || c.Steps[0].Conds[0].Value != "delicious" {
		t.Errorf("curly-quoted token = %+v", c)
	}
	if q.Block[1].Expr.Atoms[0].Kind != AtomElastic {
		t.Errorf("elastic = %+v", q.Block[1].Expr.Atoms[0])
	}
	// The unicode ∧ and ∼ also lex.
	q2 := MustParse("extract a:Str from f.txt if (/ROOT:{ v = //verb, s = v + ∧ + v }) satisfying v (str(v) ∼ \"is\" {1})")
	if q2.Block[1].Expr.Atoms[1].Kind != AtomElastic {
		t.Errorf("unicode wedge = %+v", q2.Block[1].Expr.Atoms[1])
	}
	if q2.Satisfying[0].Conds[0].Kind != CondSimilarTo {
		t.Errorf("unicode sim = %+v", q2.Satisfying[0].Conds[0])
	}
}

func TestParseElasticConds(t *testing.T) {
	q := MustParse(`extract x:Str from f.txt if (/ROOT:{
		v = //verb,
		x = v + ^[etype="Entity"] + ^[min=1, max=3] + ^[regex="a.*"]
	})`)
	atoms := q.Block[1].Expr.Atoms
	if atoms[1].Conds[0] != (LabelCond{"etype", "Entity"}) {
		t.Errorf("etype cond = %+v", atoms[1].Conds)
	}
	if atoms[2].Conds[0] != (LabelCond{"min", "1"}) || atoms[2].Conds[1] != (LabelCond{"max", "3"}) {
		t.Errorf("min/max = %+v", atoms[2].Conds)
	}
	if atoms[3].Conds[0].Key != "regex" {
		t.Errorf("regex = %+v", atoms[3].Conds)
	}
}

func TestParsePosConditionEquivalence(t *testing.T) {
	// /root//noun == /root//*[@pos="noun"] per §2.1.
	q1 := MustParse(`extract x:Str from f.txt if (/ROOT:{ x = /root//*[@pos="noun"] })`)
	st := q1.Block[0].Expr.Atoms[0].Steps[1]
	if st.Label != "*" || st.Conds[0] != (LabelCond{"pos", "noun"}) {
		t.Errorf("pos condition = %+v", st)
	}
	// Multiple conditions separated by comma.
	q2 := MustParse(`extract x:Str from f.txt if (/ROOT:{ x = //*[@pos="noun", etype="Person"] })`)
	conds := q2.Block[0].Expr.Atoms[0].Steps[0].Conds
	if len(conds) != 2 || conds[1] != (LabelCond{"etype", "Person"}) {
		t.Errorf("multi conds = %+v", conds)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select x from y",
		"extract x from f.txt if ()",       // missing type
		"extract x:Entity from f.txt",      // missing if
		"extract x:Entity from f.txt if (", // unclosed
		"extract x:Entity from f.txt if () satisfying x", // no conditions
		`extract x:Entity from f.txt if () satisfying x (str(x) frobs "y" {1})`,
		`extract x:Entity from f.txt if () satisfying x (x [["d"]] {2})`, // weight > 1
		`extract x:Entity from f.txt if (/ROOT:{ a = b/dobj })`,          // undefined anchor
		`extract x:Entity from f.txt if () trailing`,
		`extract x:Entity from "unterminated if ()`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestQueryStringRoundtrip(t *testing.T) {
	src := `extract e:Entity, d:Str from input.txt if (/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e)) satisfying e (str(e) contains "Cafe" {1}) with threshold 0.8`
	q := MustParse(src)
	printed := q.String()
	q2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of %q: %v", printed, err)
	}
	if q2.String() != printed {
		t.Errorf("not a fixpoint:\n%s\n%s", printed, q2.String())
	}
	if !strings.Contains(printed, "satisfying e") {
		t.Errorf("printed = %s", printed)
	}
}
