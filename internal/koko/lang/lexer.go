package lang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tString // quoted string (either ASCII or curly quotes)
	tNumber
	tLParen
	tRParen
	tLBrace
	tRBrace
	tLBracket
	tRBracket
	tDLBracket // [[
	tDRBracket // ]]
	tComma
	tPlus
	tEquals
	tSlash
	tDSlash // //
	tCaret  // ^ or ∧
	tColon
	tDot
	tTilde // ~ or ∼ (similarTo abbreviation)
	tStar
	tAt
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset, for error messages
}

func (t token) String() string {
	if t.kind == tEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes a query string.
func lex(input string) ([]token, error) {
	var toks []token
	runes := []rune(input)
	i := 0
	emit := func(kind tokKind, text string) {
		toks = append(toks, token{kind: kind, text: text, pos: i})
	}
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '"' || r == '“': // " or “
			close := '"'
			if r == '“' {
				close = '”' // ”
			}
			j := i + 1
			var sb strings.Builder
			for j < len(runes) && runes[j] != close && runes[j] != '"' {
				if runes[j] == '\\' && j+1 < len(runes) {
					j++
				}
				sb.WriteRune(runes[j])
				j++
			}
			if j >= len(runes) {
				return nil, fmt.Errorf("koko: unterminated string at offset %d", i)
			}
			emit(tString, sb.String())
			i = j + 1
		case unicode.IsDigit(r) || (r == '.' && i+1 < len(runes) && unicode.IsDigit(runes[i+1])):
			j := i
			seenDot := false
			for j < len(runes) && (unicode.IsDigit(runes[j]) || (runes[j] == '.' && !seenDot)) {
				if runes[j] == '.' {
					// A trailing dot ("5.") would swallow the subtree dot;
					// only accept the dot if a digit follows.
					if j+1 >= len(runes) || !unicode.IsDigit(runes[j+1]) {
						break
					}
					seenDot = true
				}
				j++
			}
			emit(tNumber, string(runes[i:j]))
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(runes) && (unicode.IsLetter(runes[j]) || unicode.IsDigit(runes[j]) || runes[j] == '_' || runes[j] == '-') {
				j++
			}
			emit(tIdent, string(runes[i:j]))
			i = j
		default:
			switch r {
			case '(':
				emit(tLParen, "(")
			case ')':
				emit(tRParen, ")")
			case '{':
				emit(tLBrace, "{")
			case '}':
				emit(tRBrace, "}")
			case '[':
				if i+1 < len(runes) && runes[i+1] == '[' {
					emit(tDLBracket, "[[")
					i++
				} else {
					emit(tLBracket, "[")
				}
			case ']':
				if i+1 < len(runes) && runes[i+1] == ']' {
					emit(tDRBracket, "]]")
					i++
				} else {
					emit(tRBracket, "]")
				}
			case ',':
				emit(tComma, ",")
			case '+':
				emit(tPlus, "+")
			case '=':
				emit(tEquals, "=")
			case '/':
				if i+1 < len(runes) && runes[i+1] == '/' {
					emit(tDSlash, "//")
					i++
				} else {
					emit(tSlash, "/")
				}
			case '^', '∧': // ^ or ∧
				emit(tCaret, "^")
			case ':':
				emit(tColon, ":")
			case '.':
				emit(tDot, ".")
			case '~', '∼': // ~ or ∼
				emit(tTilde, "~")
			case '*':
				emit(tStar, "*")
			case '@':
				emit(tAt, "@")
			case '<', '>':
				// Allow "<InputFile>"-style placeholders: lex the contents
				// as an ident; here just skip the angle brackets.
				i++
				continue
			default:
				return nil, fmt.Errorf("koko: unexpected character %q at offset %d", r, i)
			}
			i++
		}
	}
	toks = append(toks, token{kind: tEOF, pos: len(runes)})
	return toks, nil
}
