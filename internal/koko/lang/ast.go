// Package lang implements the KOKO query language: lexer, recursive-descent
// parser, and AST (paper §2). The concrete syntax follows the paper's
// examples, with ASCII-friendly spellings accepted alongside the paper's
// typography: "^" for the elastic-span ∧, plain double quotes for the curly
// quotes, and "~" for the similarTo operator abbreviation used in §6.3.
package lang

import (
	"fmt"
	"strings"
)

// Query is a parsed KOKO query:
//
//	extract <outputs> from <source> if ( <block & constraints> )
//	[satisfying <var> <weighted conditions> with threshold <t>]...
//	[excluding <conditions>]
type Query struct {
	Outputs     []OutVar
	Source      string
	Block       []Decl
	Constraints []Constraint
	Satisfying  []SatClause
	Excluding   []SatCond
}

// OutVar is one output column: a variable name and its declared type
// (Entity, Person, GPE, Date, Str, ...).
type OutVar struct {
	Name string
	Type string
}

// Decl is a variable definition inside the /ROOT:{...} block.
type Decl struct {
	Name string
	Expr SpanExpr
}

// SpanExpr is a concatenation of atoms (a single-atom expression is a plain
// node/path definition).
type SpanExpr struct {
	Atoms []Atom
}

// AtomKind discriminates Atom.
type AtomKind int

const (
	AtomPath    AtomKind = iota // a path expression, possibly var-anchored
	AtomVar                     // reference to a defined variable
	AtomSubtree                 // x.subtree
	AtomTokens                  // quoted literal token sequence
	AtomElastic                 // ^ (the paper's ∧), with optional conditions
)

// Atom is one component of a span expression.
type Atom struct {
	Kind AtomKind

	// AtomPath: optional anchor variable and steps.
	From  string
	Steps []PathStep

	// AtomVar / AtomSubtree: the referenced variable.
	Var string

	// AtomTokens: the literal words.
	Tokens []string

	// AtomElastic: optional constraints.
	Conds []LabelCond
}

// PathStep is one axis+label step of a path expression.
type PathStep struct {
	Desc  bool // true = descendant axis "//", false = child axis "/"
	Label string
	Conds []LabelCond
	bare  bool // bare-label atom ("v = verb", "a = Entity"): printed without axis
}

// Bare reports whether this step came from a bare-label atom.
func (s PathStep) Bare() bool { return s.bare }

// NewBareStep builds a bare-label step (exported for programmatic query
// construction in tests and benchmarks).
func NewBareStep(label string) PathStep {
	return PathStep{Desc: true, Label: label, bare: true}
}

// LabelCond is a bracketed condition on a step or elastic span:
// [@pos="noun"], [@regex="..."], [etype="Person"], [text="ate"],
// [min=2], [max=5].
type LabelCond struct {
	Key   string // pos | regex | etype | text | min | max
	Value string
}

// ConstraintOp is the relation of a variable constraint.
type ConstraintOp int

const (
	OpIn ConstraintOp = iota // "(x) in (y)": tokens of x among tokens of y
	OpEq                     // "(x) eq (y)": spans identical
)

// Constraint relates two span expressions outside the block.
type Constraint struct {
	Left  SpanExpr
	Op    ConstraintOp
	Right SpanExpr
}

// SatClause is one satisfying clause: a disjunction of weighted conditions
// over a single output variable, with an acceptance threshold.
type SatClause struct {
	Var       string
	Conds     []SatCond
	Threshold float64
}

// SatKind discriminates satisfying/excluding conditions.
type SatKind int

const (
	CondContains   SatKind = iota // str(x) contains "s"
	CondMentions                  // str(x) mentions "s"
	CondMatches                   // str(x) matches <regex>
	CondFollowedBy                // x "s"      — x immediately followed by s
	CondPrecededBy                // "s" x      — x immediately preceded by s
	CondNear                      // x near "s" — proximity, score 1/(1+dist)
	CondDescRight                 // x [[d]]    — descriptor after x
	CondDescLeft                  // [[d]] x    — descriptor before x
	CondSimilarTo                 // x similarTo "s" (also spelled x ~ "s")
	CondInDict                    // str(x) in dict("name")
)

// SatCond is one weighted condition.
type SatCond struct {
	Kind   SatKind
	Var    string
	Arg    string
	Weight float64
}

// --- printing (used by error messages, tests, and the normalizer) ---

func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("extract ")
	for i, o := range q.Outputs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", o.Name, o.Type)
	}
	fmt.Fprintf(&b, " from %q if (", q.Source)
	if len(q.Block) > 0 {
		b.WriteString("/ROOT:{")
		for i, d := range q.Block {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s = %s", d.Name, d.Expr)
		}
		b.WriteString("}")
	}
	for _, c := range q.Constraints {
		op := "in"
		if c.Op == OpEq {
			op = "eq"
		}
		fmt.Fprintf(&b, " (%s) %s (%s)", c.Left, op, c.Right)
	}
	b.WriteString(")")
	for _, sc := range q.Satisfying {
		fmt.Fprintf(&b, " satisfying %s ", sc.Var)
		for i, c := range sc.Conds {
			if i > 0 {
				b.WriteString(" or ")
			}
			fmt.Fprintf(&b, "(%s {%g})", c.condString(), c.Weight)
		}
		fmt.Fprintf(&b, " with threshold %g", sc.Threshold)
	}
	if len(q.Excluding) > 0 {
		b.WriteString(" excluding ")
		for i, c := range q.Excluding {
			if i > 0 {
				b.WriteString(" or ")
			}
			fmt.Fprintf(&b, "(%s)", c.condString())
		}
	}
	return b.String()
}

func (e SpanExpr) String() string {
	parts := make([]string, len(e.Atoms))
	for i, a := range e.Atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, " + ")
}

func (a Atom) String() string {
	switch a.Kind {
	case AtomVar:
		return a.Var
	case AtomSubtree:
		return a.Var + ".subtree"
	case AtomTokens:
		return fmt.Sprintf("%q", strings.Join(a.Tokens, " "))
	case AtomElastic:
		s := "^"
		if len(a.Conds) > 0 {
			s += condsString(a.Conds)
		}
		return s
	default: // AtomPath
		var b strings.Builder
		b.WriteString(a.From)
		for i, st := range a.Steps {
			if i == 0 && a.From == "" && !st.Desc && st.Label != "" && len(a.Steps) == 1 && !strings.Contains(st.Label, "/") && st.bare {
				// Bare label (e.g. "Entity") prints without axis.
				b.WriteString(st.Label)
				b.WriteString(condsString(st.Conds))
				continue
			}
			if st.Desc {
				b.WriteString("//")
			} else {
				b.WriteString("/")
			}
			b.WriteString(st.Label)
			b.WriteString(condsString(st.Conds))
		}
		return b.String()
	}
}

func condsString(conds []LabelCond) string {
	if len(conds) == 0 {
		return ""
	}
	parts := make([]string, len(conds))
	for i, c := range conds {
		parts[i] = fmt.Sprintf("%s=%q", c.Key, c.Value)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Display renders the condition in query syntax (used by extraction
// explanations).
func (c SatCond) Display() string { return c.condString() }

func (c SatCond) condString() string {
	switch c.Kind {
	case CondContains:
		return fmt.Sprintf("str(%s) contains %q", c.Var, c.Arg)
	case CondMentions:
		return fmt.Sprintf("str(%s) mentions %q", c.Var, c.Arg)
	case CondMatches:
		return fmt.Sprintf("str(%s) matches %q", c.Var, c.Arg)
	case CondFollowedBy:
		return fmt.Sprintf("%s %q", c.Var, c.Arg)
	case CondPrecededBy:
		return fmt.Sprintf("%q %s", c.Arg, c.Var)
	case CondNear:
		return fmt.Sprintf("%s near %q", c.Var, c.Arg)
	case CondDescRight:
		return fmt.Sprintf("%s [[%q]]", c.Var, c.Arg)
	case CondDescLeft:
		return fmt.Sprintf("[[%q]] %s", c.Arg, c.Var)
	case CondSimilarTo:
		return fmt.Sprintf("%s similarTo %q", c.Var, c.Arg)
	case CondInDict:
		return fmt.Sprintf("str(%s) in dict(%q)", c.Var, c.Arg)
	}
	return "?"
}
