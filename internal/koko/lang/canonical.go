package lang

import "sort"

// Canonicalize returns a semantically equivalent copy of q with its
// order-independent clauses in a canonical order:
//
//   - block declarations are topologically sorted by variable reference
//     (a declaration referencing another must stay after it), choosing the
//     lexicographically smallest name among the ready declarations;
//   - constraints, satisfying clauses, and excluding conditions sort by
//     their rendered text (conjunction and disjunction order carry no
//     semantics — scores sum and constraints all apply).
//
// Output columns keep their written order (they name result positions).
// Two queries differing only in the order of independent conditions thus
// canonicalize to the same text, so result caches keyed on the canonical
// rendering treat them as one query — and because evaluation runs over the
// canonical AST everywhere (local, sharded, and remote workers re-parsing
// the canonical text), reordered-but-equivalent queries are byte-identical
// end to end. Canonicalize is idempotent.
func (q *Query) Canonicalize() *Query {
	out := *q
	out.Block = canonicalBlock(q.Block)
	out.Constraints = append([]Constraint(nil), q.Constraints...)
	sort.SliceStable(out.Constraints, func(i, j int) bool {
		return constraintKey(out.Constraints[i]) < constraintKey(out.Constraints[j])
	})
	out.Satisfying = canonicalSatisfying(q.Satisfying)
	out.Excluding = canonicalConds(q.Excluding)
	return &out
}

func constraintKey(c Constraint) string {
	op := "in"
	if c.Op == OpEq {
		op = "eq"
	}
	return c.Left.String() + "\x00" + op + "\x00" + c.Right.String()
}

// canonicalBlock topologically sorts declarations by reference: among the
// declarations whose referenced variables are all already emitted (or not
// block-defined), the lexicographically smallest name goes first. A
// reference cycle cannot parse, but if the sort ever stalls the remaining
// declarations keep their written order (still a valid query).
func canonicalBlock(block []Decl) []Decl {
	if len(block) < 2 {
		return block
	}
	idxOf := make(map[string]int, len(block))
	for i, d := range block {
		idxOf[d.Name] = i
	}
	deps := make([][]int, len(block)) // decl -> referenced decl indices
	for i, d := range block {
		seen := map[int]bool{}
		for _, a := range d.Expr.Atoms {
			for _, ref := range []string{a.From, a.Var} {
				if ref == "" {
					continue
				}
				if j, ok := idxOf[ref]; ok && j != i && !seen[j] {
					seen[j] = true
					deps[i] = append(deps[i], j)
				}
			}
		}
	}
	emitted := make([]bool, len(block))
	out := make([]Decl, 0, len(block))
	for len(out) < len(block) {
		pick := -1
		for i, d := range block {
			if emitted[i] {
				continue
			}
			ready := true
			for _, j := range deps[i] {
				if !emitted[j] {
					ready = false
					break
				}
			}
			if ready && (pick < 0 || d.Name < block[pick].Name) {
				pick = i
			}
		}
		if pick < 0 {
			// Stalled (unparseable cycle): append the rest in written order.
			for i, d := range block {
				if !emitted[i] {
					out = append(out, d)
				}
			}
			return out
		}
		emitted[pick] = true
		out = append(out, block[pick])
	}
	return out
}

func canonicalSatisfying(scs []SatClause) []SatClause {
	if len(scs) == 0 {
		return scs
	}
	out := make([]SatClause, len(scs))
	for i, sc := range scs {
		sc.Conds = canonicalConds(sc.Conds)
		out[i] = sc
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Var < out[j].Var })
	return out
}

func canonicalConds(conds []SatCond) []SatCond {
	if len(conds) < 2 {
		return conds
	}
	out := append([]SatCond(nil), conds...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if ka, kb := a.condString(), b.condString(); ka != kb {
			return ka < kb
		}
		return a.Weight < b.Weight
	})
	return out
}
