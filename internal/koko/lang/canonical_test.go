package lang

import "testing"

func TestCanonicalizeOrderInvariant(t *testing.T) {
	// The same conjunction written in three different orders must
	// canonicalize to one text.
	variants := []string{
		`extract d:Str from f if (/ROOT:{ a = ^[min=1], v = //verb, o = v/dobj, d = (o.subtree) } (a) in (d))`,
		`extract d:Str from f if (/ROOT:{ v = //verb, a = ^[min=1], o = v/dobj, d = (o.subtree) } (a) in (d))`,
		`extract d:Str from f if (/ROOT:{ v = //verb, o = v/dobj, d = (o.subtree), a = ^[min=1] } (a) in (d))`,
	}
	var first string
	for i, src := range variants {
		canon := MustParse(src).Canonicalize().String()
		if i == 0 {
			first = canon
			continue
		}
		if canon != first {
			t.Fatalf("variant %d canonicalizes differently:\n%s\nvs\n%s", i, canon, first)
		}
	}
}

func TestCanonicalizeRespectsDependencies(t *testing.T) {
	// Alphabetical order alone would put a before z; the references force
	// z first.
	q := MustParse(`extract b:Str from f if (/ROOT:{ z = //verb, a = z/dobj, b = (a.subtree) })`)
	c := q.Canonicalize()
	pos := map[string]int{}
	for i, dcl := range c.Block {
		pos[dcl.Name] = i
	}
	if !(pos["z"] < pos["a"] && pos["a"] < pos["b"]) {
		t.Fatalf("dependencies violated: %v", c.Block)
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	srcs := []string{
		`extract d:Str from f if (/ROOT:{ a = ^[min=1], v = //verb, o = v/dobj, d = (o.subtree) } (a) in (d))`,
		`extract x:Entity from f if () satisfying x (str(x) contains "b" {1.0}) or (str(x) contains "a" {0.5}) with threshold 0.4 excluding (str(x) contains "z")`,
	}
	for _, src := range srcs {
		once := MustParse(src).Canonicalize().String()
		twice := MustParse(once).Canonicalize().String()
		if once != twice {
			t.Fatalf("not idempotent:\n%s\nvs\n%s", once, twice)
		}
	}
}

func TestCanonicalizeSortsClauses(t *testing.T) {
	a := `extract x:Entity from f if () satisfying x (str(x) contains "b" {1.0}) or (str(x) contains "a" {0.5}) with threshold 0.4`
	b := `extract x:Entity from f if () satisfying x (str(x) contains "a" {0.5}) or (str(x) contains "b" {1.0}) with threshold 0.4`
	if ca, cb := MustParse(a).Canonicalize().String(), MustParse(b).Canonicalize().String(); ca != cb {
		t.Fatalf("satisfying condition order leaks into canonical form:\n%s\nvs\n%s", ca, cb)
	}
	// Output order is meaningful and must survive canonicalization.
	q := MustParse(`extract b:Entity, a:Entity from f if ()`)
	c := q.Canonicalize()
	if c.Outputs[0].Name != "b" || c.Outputs[1].Name != "a" {
		t.Fatalf("output order changed: %v", c.Outputs)
	}
}
