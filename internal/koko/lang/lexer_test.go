package lang

import "testing"

func TestLexerTokens(t *testing.T) {
	toks, err := lex(`extract x:Entity // / [[ ]] [ ] ^ ~ * @ 0.8 "str" + = { } ( ) ,`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokKind{
		tIdent, tIdent, tColon, tIdent, tDSlash, tSlash, tDLBracket,
		tDRBracket, tLBracket, tRBracket, tCaret, tTilde, tStar, tAt,
		tNumber, tString, tPlus, tEquals, tLBrace, tRBrace, tLParen,
		tRParen, tComma, tEOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d (%s): kind %d, want %d", i, toks[i].text, toks[i].kind, k)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex(`"unterminated`); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("`backtick`"); err == nil {
		t.Error("unknown character accepted")
	}
}

func TestLexerNumberVsSubtreeDot(t *testing.T) {
	// "b.subtree" must lex as ident dot ident, while "0.8" is one number.
	toks, err := lex(`b.subtree 0.8 5.`)
	if err != nil {
		t.Fatal(err)
	}
	want := []tokKind{tIdent, tDot, tIdent, tNumber, tNumber, tDot, tEOF}
	for i, k := range want {
		if toks[i].kind != k {
			t.Fatalf("token %d: kind %d, want %d (%v)", i, toks[i].kind, k, toks)
		}
	}
	if toks[3].text != "0.8" || toks[4].text != "5" {
		t.Errorf("number texts: %q %q", toks[3].text, toks[4].text)
	}
}

func TestLexerAngleBracketPlaceholder(t *testing.T) {
	// The appendix writes <InputFile>; angle brackets are skipped.
	toks, err := lex(`from <InputFile> if`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].kind != tIdent || toks[1].text != "InputFile" {
		t.Errorf("placeholder lexed as %v", toks[1])
	}
}
