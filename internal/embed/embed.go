// Package embed is the paraphrase-embedding substrate of the KOKO
// reproduction.
//
// The paper expands descriptor conditions ("x [[serves coffee]]") into
// semantically close phrases using counter-fitted paraphrase word embeddings
// plus an optional domain ontology. Those embeddings are an external trained
// artifact; we substitute a deterministic synthetic model built from an
// explicit paraphrase database: words in the same paraphrase cluster get
// nearly parallel vectors, clusters can declare graded relations to other
// clusters (instance-of, association), and out-of-vocabulary words get
// hash-derived vectors that are near-orthogonal to everything. The model
// reproduces the qualitative behaviour the paper depends on — "serves coffee"
// expands to "sells espresso" with high confidence while "serves tea" scores
// low, and city names score ≈0.4 against the descriptor "city" (Example 2.2)
// — and is exactly reproducible across runs.
package embed

import (
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"
)

// Dim is the embedding dimensionality. High enough that hash-derived vectors
// for unrelated words are near-orthogonal (std of the cosine is ~1/sqrt(Dim)).
const Dim = 160

// cluster is a paraphrase set: members share an anchor direction.
type cluster struct {
	name    string
	members []string
	// relations: name of other cluster -> shared-variance weight in [0,1].
	// A member vector is sqrt(1-Σw)·anchor(self) + Σ sqrt(w_i)·anchor(rel_i),
	// plus per-word noise, normalized.
	relations map[string]float64
	noise     float64 // per-member perturbation magnitude
}

// The paraphrase database. Clusters cover the domains the paper's
// experiments exercise: coffee service, baristas, coffee drinks, cafes,
// geography (city/country instances), food, sports, and biography verbs.
var clusters = []cluster{
	{name: "serve", members: []string{"serves", "serve", "serving", "served", "sells", "sell", "selling", "sold", "offers", "offer", "offering", "pours", "pour", "pouring", "hosts", "host", "hosting"}, noise: 0.30},
	{name: "employ", members: []string{"employs", "employ", "employing", "employed", "hires", "hire", "hiring", "hired", "staffs", "staff"}, noise: 0.30},
	{name: "coffee", members: []string{"coffee", "espresso", "cappuccino", "cappuccinos", "macchiato", "macchiatos", "latte", "lattes", "mocha", "americano", "cortado", "pour-over", "brew", "roast"}, noise: 0.35},
	// "espresso" is the closest paraphrase of "coffee" in counter-fitted
	// embeddings; a second, tighter synset pins that relation.
	{name: "espresso-coffee", members: []string{"coffee", "espresso"}, noise: 0.10},
	{name: "barista", members: []string{"barista", "baristas"}, noise: 0.15},
	{name: "cafe", members: []string{"cafe", "cafes", "café", "coffeehouse", "coffeeshop", "roastery", "roasters"}, noise: 0.30},
	{name: "tea", members: []string{"tea", "teas", "chai", "matcha"}, relations: map[string]float64{"coffee": 0.06}, noise: 0.25},
	{name: "food", members: []string{"food", "cake", "cheesecake", "pie", "pastry", "pastries", "croissant", "dessert", "cookie", "bread"}, noise: 0.35},
	{name: "delicious", members: []string{"delicious", "tasty", "scrumptious", "yummy"}, noise: 0.20},
	{name: "city", members: []string{"city", "cities", "town", "metropolis"}, noise: 0.20},
	{name: "country", members: []string{"country", "countries", "nation", "nations"}, noise: 0.20},
	// Instances: related to their type cluster with weight ≈0.17 so that
	// cos(instance, "city") ≈ 0.35–0.50 — the score band of Example 2.2.
	{name: "city-inst", members: []string{"tokyo", "beijing", "paris", "london", "portland", "seattle", "oakland", "chicago", "boston", "kyoto", "melbourne", "berlin", "rome"}, relations: map[string]float64{"city": 0.17}, noise: 0.45},
	{name: "country-inst", members: []string{"china", "japan", "france", "italy", "spain", "germany", "kenya", "ethiopia", "colombia", "brazil"}, relations: map[string]float64{"country": 0.22}, noise: 0.40},
	{name: "born", members: []string{"born", "birth"}, relations: map[string]float64{"biography": 0.30}, noise: 0.15},
	{name: "biography", members: []string{"is", "was", "became", "been"}, noise: 0.35},
	{name: "called", members: []string{"called", "named", "nicknamed", "dubbed", "known"}, noise: 0.25},
	{name: "team", members: []string{"team", "teams", "club", "squad", "side"}, noise: 0.25},
	{name: "sports", members: []string{"soccer", "football", "basketball", "baseball", "hockey", "match", "game", "versus", "vs"}, noise: 0.40},
	{name: "facility", members: []string{"stadium", "arena", "park", "gym", "field", "court", "venue"}, noise: 0.35},
	{name: "visit", members: []string{"visit", "visited", "visiting", "go", "went", "gone", "going", "stop", "stopped"}, noise: 0.35},
	{name: "great", members: []string{"great", "amazing", "wonderful", "excellent", "fantastic", "outstanding", "superb"}, noise: 0.25},
	{name: "menu", members: []string{"menu", "menus", "list", "selection", "lineup"}, noise: 0.30},
	{name: "champion", members: []string{"champion", "champions", "championship", "winner"}, noise: 0.25},
	{name: "press", members: []string{"press", "siphon", "chemex", "aeropress"}, noise: 0.35},
	{name: "is-a", members: []string{"type", "kind", "sort", "variety", "style"}, noise: 0.25},
}

// Model holds word vectors and answers similarity and expansion queries.
// Out-of-vocabulary vectors are memoized (mu guards the cache); everything
// else is read-only after construction.
type Model struct {
	vecs     map[string][]float64
	vocab    []string            // sorted, for deterministic neighbor order
	ontology map[string][]string // class term -> safe replacements

	mu  sync.Mutex
	oov map[string][]float64
}

// NewModel builds the default deterministic model from the paraphrase
// database.
func NewModel() *Model {
	m := &Model{
		vecs:     map[string][]float64{},
		ontology: map[string][]string{},
		oov:      map[string][]float64{},
	}
	anchors := map[string][]float64{}
	for _, c := range clusters {
		anchors[c.name] = hashVector("cluster::" + c.name)
	}
	for _, c := range clusters {
		selfW := 1.0
		for _, w := range c.relations {
			selfW -= w
		}
		if selfW < 0.05 {
			selfW = 0.05
		}
		base := scale(anchors[c.name], math.Sqrt(selfW))
		relNames := make([]string, 0, len(c.relations))
		for r := range c.relations {
			relNames = append(relNames, r)
		}
		sort.Strings(relNames)
		for _, r := range relNames {
			base = add(base, scale(anchors[r], math.Sqrt(c.relations[r])))
		}
		for _, w := range c.members {
			v := add(base, scale(hashVector("word::"+w), c.noise))
			normalize(v)
			// A word may belong to several clusters (rare); average then.
			if old, ok := m.vecs[w]; ok {
				v = add(old, v)
				normalize(v)
			}
			m.vecs[w] = v
		}
	}
	// Type anchors are themselves words ("city" is in the city cluster), so
	// nothing extra to do. Build the vocab list.
	for w := range m.vecs {
		m.vocab = append(m.vocab, w)
	}
	sort.Strings(m.vocab)
	return m
}

// AddOntology registers a domain ontology class: occurrences of term in a
// descriptor may be safely replaced by any of the related terms (paper
// §4.4.1(a): "different coffee drinks such as cappuccino, macchiato").
func (m *Model) AddOntology(term string, related []string) {
	m.ontology[strings.ToLower(term)] = related
}

// Vector returns the embedding of word (lowercased). Out-of-vocabulary words
// get a deterministic hash vector.
func (m *Model) Vector(word string) []float64 {
	w := strings.ToLower(word)
	if v, ok := m.vecs[w]; ok {
		return v
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.oov[w]; ok {
		return v
	}
	v := hashVector("word::" + w)
	m.oov[w] = v
	return v
}

// Similarity returns the cosine similarity of two words, clamped to [0,1].
func (m *Model) Similarity(a, b string) float64 {
	if strings.EqualFold(a, b) {
		return 1
	}
	s := dot(m.Vector(a), m.Vector(b))
	if s < 0 {
		return 0
	}
	return s
}

// PhraseSimilarity returns the cosine similarity of the mean vectors of two
// token sequences, clamped to [0,1].
func (m *Model) PhraseSimilarity(a, b []string) float64 {
	va := m.mean(a)
	vb := m.mean(b)
	if va == nil || vb == nil {
		return 0
	}
	s := dot(va, vb)
	if s < 0 {
		return 0
	}
	return s
}

func (m *Model) mean(words []string) []float64 {
	if len(words) == 0 {
		return nil
	}
	v := make([]float64, Dim)
	for _, w := range words {
		v = add(v, m.Vector(w))
	}
	normalize(v)
	return v
}

// Scored is a term or phrase with a similarity score.
type Scored struct {
	Text  string
	Score float64
}

// Neighbors returns the k in-vocabulary words most similar to word
// (excluding the word itself), in descending score order with deterministic
// ties.
func (m *Model) Neighbors(word string, k int, minScore float64) []Scored {
	w := strings.ToLower(word)
	var out []Scored
	for _, cand := range m.vocab {
		if cand == w {
			continue
		}
		s := m.Similarity(w, cand)
		if s >= minScore {
			out = append(out, Scored{Text: cand, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Text < out[j].Text
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// DefaultExpansionLimit matches the paper's note that descriptors "default to
// a fixed number of expanded terms" (IKE's comparable operator uses ~20).
const DefaultExpansionLimit = 20

// Expand expands a descriptor phrase into semantically close phrases with
// scores in (0,1], the original phrase first with score 1. Expansion replaces
// content words with embedding neighbors and ontology terms; a phrase's score
// is the product of its per-word substitution scores.
func (m *Model) Expand(descriptor string, limit int) []Scored {
	if limit <= 0 {
		limit = DefaultExpansionLimit
	}
	words := strings.Fields(strings.ToLower(descriptor))
	if len(words) == 0 {
		return nil
	}
	// Per-word candidate lists.
	cands := make([][]Scored, len(words))
	for i, w := range words {
		list := []Scored{{Text: w, Score: 1}}
		if rel, ok := m.ontology[w]; ok {
			for _, r := range rel {
				list = append(list, Scored{Text: strings.ToLower(r), Score: 0.95})
			}
		}
		for _, nb := range m.Neighbors(w, 9, 0.35) {
			list = append(list, nb)
		}
		cands[i] = list
	}
	// Cartesian product, scored by product; bounded breadth-first by score.
	type partial struct {
		words []string
		score float64
	}
	frontier := []partial{{words: nil, score: 1}}
	for i := range cands {
		var next []partial
		for _, p := range frontier {
			for _, c := range cands[i] {
				nw := make([]string, len(p.words)+1)
				copy(nw, p.words)
				nw[len(p.words)] = c.Text
				next = append(next, partial{words: nw, score: p.score * c.Score})
			}
		}
		sort.Slice(next, func(a, b int) bool {
			if next[a].score != next[b].score {
				return next[a].score > next[b].score
			}
			return strings.Join(next[a].words, " ") < strings.Join(next[b].words, " ")
		})
		if len(next) > 4*limit {
			next = next[:4*limit]
		}
		frontier = next
	}
	seen := map[string]bool{}
	var out []Scored
	for _, p := range frontier {
		phrase := strings.Join(p.words, " ")
		if seen[phrase] {
			continue
		}
		seen[phrase] = true
		out = append(out, Scored{Text: phrase, Score: p.score})
		if len(out) >= limit {
			break
		}
	}
	return out
}

// --- vector helpers ---

// hashVector returns a deterministic unit vector derived from seed via a
// splitmix64 generator keyed by FNV-1a.
func hashVector(seed string) []float64 {
	h := fnv.New64a()
	h.Write([]byte(seed))
	state := h.Sum64()
	v := make([]float64, Dim)
	for i := range v {
		u1 := float64(splitmix64(&state)>>11) / float64(1<<53)
		u2 := float64(splitmix64(&state)>>11) / float64(1<<53)
		v[i] = (u1 - 0.5) + (u2 - 0.5)
	}
	normalize(v)
	return v
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func add(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

func scale(a []float64, k float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] * k
	}
	return out
}

func normalize(v []float64) {
	n := math.Sqrt(dot(v, v))
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}
