package embed

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestClusterSimilarity(t *testing.T) {
	m := NewModel()
	// Within-cluster pairs must be much more similar than cross-cluster.
	high := [][2]string{
		{"serves", "sells"},
		{"coffee", "espresso"},
		{"cappuccino", "macchiato"},
		{"employs", "hires"},
		{"called", "named"},
		{"great", "amazing"},
	}
	for _, p := range high {
		if s := m.Similarity(p[0], p[1]); s < 0.70 {
			t.Errorf("sim(%s,%s) = %.3f, want >= 0.70", p[0], p[1], s)
		}
	}
	low := [][2]string{
		{"coffee", "stadium"},
		{"serves", "city"},
		{"barista", "country"},
		{"espresso", "soccer"},
	}
	for _, p := range low {
		if s := m.Similarity(p[0], p[1]); s > 0.30 {
			t.Errorf("sim(%s,%s) = %.3f, want <= 0.30", p[0], p[1], s)
		}
	}
	// "serves tea" must NOT be implied by "serves coffee": tea/coffee are
	// related but weakly.
	if s := m.Similarity("coffee", "tea"); s > 0.45 {
		t.Errorf("sim(coffee,tea) = %.3f, want <= 0.45", s)
	}
}

// TestExample22Band checks the Example 2.2 score band: city instances score
// ≈0.35–0.55 against "city" and country instances against "country", while
// the cross pairs score lower.
func TestExample22Band(t *testing.T) {
	m := NewModel()
	for _, city := range []string{"tokyo", "beijing"} {
		s := m.Similarity(city, "city")
		if s < 0.25 || s > 0.65 {
			t.Errorf("sim(%s, city) = %.3f, want in [0.25,0.65]", city, s)
		}
		if cross := m.Similarity(city, "country"); cross >= s {
			t.Errorf("sim(%s,country)=%.3f >= sim(%s,city)=%.3f", city, cross, city, s)
		}
	}
	for _, c := range []string{"china", "japan"} {
		s := m.Similarity(c, "country")
		if s < 0.25 || s > 0.70 {
			t.Errorf("sim(%s, country) = %.3f, want in [0.25,0.70]", c, s)
		}
		if cross := m.Similarity(c, "city"); cross >= s {
			t.Errorf("sim(%s,city)=%.3f >= sim(%s,country)=%.3f", c, cross, c, s)
		}
	}
}

func TestExpandServesCoffee(t *testing.T) {
	m := NewModel()
	exp := m.Expand("serves coffee", 40)
	if len(exp) == 0 {
		t.Fatal("no expansions")
	}
	if exp[0].Text != "serves coffee" || exp[0].Score != 1 {
		t.Errorf("first expansion = %+v, want original with score 1", exp[0])
	}
	found := map[string]float64{}
	for _, e := range exp {
		found[e.Text] = e.Score
		if e.Score <= 0 || e.Score > 1 {
			t.Errorf("expansion %q has score %v", e.Text, e.Score)
		}
	}
	// The paper's flagship expansion: "sells espresso" and "sells coffee".
	if _, ok := found["sells coffee"]; !ok {
		t.Errorf("missing 'sells coffee' in %v", keysOf(found))
	}
	if _, ok := found["sells espresso"]; !ok {
		t.Errorf("missing 'sells espresso' in %v", keysOf(found))
	}
	// "serves tea" must not outrank "sells espresso".
	if teaScore, ok := found["serves tea"]; ok {
		if teaScore >= found["sells espresso"] {
			t.Errorf("serves tea (%.3f) >= sells espresso (%.3f)", teaScore, found["sells espresso"])
		}
	}
	// Scores must be non-increasing.
	for i := 1; i < len(exp); i++ {
		if exp[i].Score > exp[i-1].Score {
			t.Errorf("expansions out of order at %d", i)
		}
	}
}

func TestExpandWithOntology(t *testing.T) {
	m := NewModel()
	m.AddOntology("coffee", []string{"flat white", "gibraltar"})
	exp := m.Expand("serves coffee", 40)
	var sawFlat bool
	for _, e := range exp {
		if e.Text == "serves flat white" {
			sawFlat = true
			if e.Score < 0.9 {
				t.Errorf("ontology expansion score %.3f, want >= 0.9", e.Score)
			}
		}
	}
	if !sawFlat {
		t.Error("ontology term not expanded")
	}
}

func TestExpandLimit(t *testing.T) {
	m := NewModel()
	exp := m.Expand("serves coffee", 5)
	if len(exp) > 5 {
		t.Errorf("limit ignored: %d expansions", len(exp))
	}
	if got := m.Expand("", 5); got != nil {
		t.Errorf("empty descriptor expanded: %v", got)
	}
}

func TestDeterminism(t *testing.T) {
	a := NewModel()
	b := NewModel()
	words := []string{"coffee", "serves", "tokyo", "nonexistentword", "stadium"}
	for _, w1 := range words {
		for _, w2 := range words {
			if a.Similarity(w1, w2) != b.Similarity(w1, w2) {
				t.Fatalf("nondeterministic similarity %s/%s", w1, w2)
			}
		}
	}
	e1 := a.Expand("serves coffee", 20)
	e2 := b.Expand("serves coffee", 20)
	if len(e1) != len(e2) {
		t.Fatal("nondeterministic expansion length")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("nondeterministic expansion at %d: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestSimilarityProperties(t *testing.T) {
	m := NewModel()
	f := func(a, b string) bool {
		s := m.Similarity(a, b)
		if s < 0 || s > 1 {
			return false
		}
		// Symmetry.
		if math.Abs(s-m.Similarity(b, a)) > 1e-12 {
			return false
		}
		// Identity (case-insensitive).
		return m.Similarity(a, a) == 1 && m.Similarity(strings.ToUpper(a), a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVectorsAreUnit(t *testing.T) {
	m := NewModel()
	for _, w := range []string{"coffee", "serves", "randomoov", "tokyo"} {
		v := m.Vector(w)
		var n float64
		for _, x := range v {
			n += x * x
		}
		if math.Abs(n-1) > 1e-9 {
			t.Errorf("|%s|^2 = %v, want 1", w, n)
		}
	}
}

func keysOf(m map[string]float64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
