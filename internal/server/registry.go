package server

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/koko"
)

// CorpusInfo describes one registry entry.
type CorpusInfo struct {
	Name string `json:"name"`
	// Source is the .koko file the corpus was loaded from, or "" for
	// in-memory corpora.
	Source string `json:"source,omitempty"`
	// Generation is the registry-wide load counter at the time this entry
	// was (re)loaded. It strictly increases across loads, so caches keyed
	// on (name, generation) are implicitly invalidated by a reload.
	Generation uint64 `json:"generation"`
	// Shards is how many doc-range shards serve this corpus (1 = a plain
	// unpartitioned engine). A reload swaps the whole shard set at once.
	Shards    int       `json:"shards"`
	Documents int       `json:"documents"`
	Sentences int       `json:"sentences"`
	LoadedAt  time.Time `json:"loaded_at"`
}

// Registry maps corpus names to query engines — plain or sharded, held
// uniformly as koko.Querier. It supports hot loading: corpora can be added,
// replaced, and reloaded from disk while queries are in flight — in-flight
// queries keep the engine (or whole shard set) they resolved, new queries
// see the new generation. A sharded corpus always swaps atomically as one
// generation; there is never a mixed-generation shard set.
type Registry struct {
	mu      sync.RWMutex
	gen     uint64
	entries map[string]*regEntry
	// loadOpts are the engine options applied to every file load (dicts,
	// ontology, default workers).
	loadOpts *koko.Options
	// defShards > 1 re-partitions plain stores into that many doc-range
	// shards at load time. Stores persisted as sharded manifests keep their
	// on-disk shard count regardless.
	defShards int
	// shardParallel > 0 bounds each sharded entry's per-query shard
	// fan-out at install time (the service sets it from its pool size so
	// concurrent requests don't oversubscribe the CPU).
	shardParallel int
}

type regEntry struct {
	eng  koko.Querier
	info CorpusInfo
}

// NewRegistry creates an empty registry. opts (may be nil) is applied to
// every engine loaded from disk.
func NewRegistry(opts *koko.Options) *Registry {
	return &Registry{entries: map[string]*regEntry{}, loadOpts: opts}
}

// SetDefaultShards makes LoadFile partition plain (non-manifest) stores
// into k doc-range shards (k <= 1 disables re-sharding).
func (r *Registry) SetDefaultShards(k int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.defShards = k
}

// SetShardParallelism bounds the per-query shard fan-out applied to every
// sharded engine installed from now on (n <= 0 leaves the engine default,
// min(shards, GOMAXPROCS)).
func (r *Registry) SetShardParallelism(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shardParallel = n
}

// DefaultName derives a registry name from a .koko path: the base name
// without the extension ("/data/cafes.koko" -> "cafes").
func DefaultName(path string) string {
	return strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
}

// LoadFile loads a persisted store — a plain .koko file or a sharded
// manifest — and registers it under name (DefaultName(path) if name is "").
// With SetDefaultShards(k>1), plain stores are re-partitioned into k
// doc-range shards before registration. An existing entry with the same
// name is replaced at a new generation.
func (r *Registry) LoadFile(name, path string) error {
	if name == "" {
		name = DefaultName(path)
	}
	eng, err := r.open(path)
	if err != nil {
		return fmt.Errorf("load corpus %q: %w", name, err)
	}
	r.install(name, path, eng)
	return nil
}

// open loads a store under the registry's default sharding policy: plain
// stores come up partitioned into defShards doc-range shards, manifests
// keep their on-disk shard count.
func (r *Registry) open(path string) (koko.Querier, error) {
	r.mu.RLock()
	k := r.defShards
	r.mu.RUnlock()
	return koko.OpenWithShards(path, r.loadOpts, k)
}

// Register adds an in-memory engine — plain or sharded — under name,
// replacing any existing entry at a new generation.
func (r *Registry) Register(name string, eng koko.Querier) {
	r.install(name, "", eng)
}

func (r *Registry) install(name, source string, eng koko.Querier) CorpusInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	if se, ok := eng.(*koko.ShardedEngine); ok && r.shardParallel > 0 {
		se.SetParallelism(r.shardParallel)
	}
	r.gen++
	info := CorpusInfo{
		Name:       name,
		Source:     source,
		Generation: r.gen,
		Shards:     eng.NumShards(),
		Documents:  eng.NumDocuments(),
		Sentences:  eng.NumSentences(),
		LoadedAt:   time.Now().UTC(),
	}
	r.entries[name] = &regEntry{eng: eng, info: info}
	return info
}

// Reload re-reads a file-backed corpus from its source path and swaps it in
// at a new generation. In-memory corpora cannot be reloaded.
func (r *Registry) Reload(name string) (CorpusInfo, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	var source string
	if ok {
		source = e.info.Source
	}
	r.mu.RUnlock()
	if !ok {
		return CorpusInfo{}, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	if source == "" {
		return CorpusInfo{}, fmt.Errorf("corpus %q is in-memory and cannot be reloaded: %w", name, ErrNotReloadable)
	}
	// Load outside the lock: index loading is the slow part and must not
	// block concurrent queries against other corpora (or the old engine).
	// For a sharded corpus the whole new shard set is assembled here before
	// install swaps it in — one atomic generation flip, never a mix.
	eng, err := r.open(source)
	if err != nil {
		return CorpusInfo{}, fmt.Errorf("reload corpus %q: %w", name, err)
	}
	return r.install(name, source, eng), nil
}

// Engine resolves a corpus name to its engine (plain or sharded) and
// current generation.
func (r *Registry) Engine(name string) (koko.Querier, uint64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, 0, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	return e.eng, e.info.Generation, nil
}

// Info returns the metadata of one entry.
func (r *Registry) Info(name string) (CorpusInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return CorpusInfo{}, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	return e.info, nil
}

// Stats returns the index statistics of one entry's engine (summed across
// shards for a sharded corpus).
func (r *Registry) Stats(name string) (koko.IndexStats, error) {
	eng, _, err := r.Engine(name)
	if err != nil {
		return koko.IndexStats{}, err
	}
	return eng.Stats(), nil
}

// Describe returns one entry's info, aggregate index stats, and per-shard
// stats as a consistent snapshot: all three come from the same generation,
// even if a reload swaps the entry concurrently. (Entries are immutable
// once installed, so resolving the entry once under the lock suffices.)
// The aggregate is derived from the per-shard stats — one index walk per
// shard, not two.
func (r *Registry) Describe(name string) (CorpusInfo, koko.IndexStats, []koko.ShardStat, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return CorpusInfo{}, koko.IndexStats{}, nil, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	sh := e.eng.ShardStats()
	return e.info, koko.MergeShardStats(sh), sh, nil
}

// List returns all entries sorted by name. The order is deterministic so
// /v1/corpora output and startup logs are stable across runs.
func (r *Registry) List() []CorpusInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]CorpusInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the number of registered corpora.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
