package server

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/koko"
)

// CorpusInfo describes one registry entry.
type CorpusInfo struct {
	Name string `json:"name"`
	// Source is the .koko file the corpus was loaded from, or "" for
	// in-memory corpora.
	Source string `json:"source,omitempty"`
	// Generation is the registry-wide mutation counter at the time this
	// entry's current snapshot was installed. It strictly increases across
	// loads, ingests, and compactions, so caches keyed on (name,
	// generation) are implicitly invalidated by any of them.
	Generation uint64 `json:"generation"`
	// Shards is how many doc-range shards serve this corpus, counting a
	// live delta as one extra shard (1 = a plain unpartitioned engine).
	Shards    int       `json:"shards"`
	Documents int       `json:"documents"`
	Sentences int       `json:"sentences"`
	LoadedAt  time.Time `json:"loaded_at"`
	// DeltaDocs / DeltaSentences size the ingested-but-uncompacted delta;
	// Ingests and Compactions are the entry's lifetime counters.
	DeltaDocs      int    `json:"delta_docs"`
	DeltaSentences int    `json:"delta_sentences"`
	Ingests        uint64 `json:"ingests"`
	Compactions    uint64 `json:"compactions"`
}

// Registry maps corpus names to mutable corpora, each served through an
// immutable koko.Snapshot. It supports hot mutation at two granularities:
// whole-store swaps (load, reload) and live ingestion (one document into
// the corpus's delta index, sealed into a new snapshot) plus compaction
// (delta folded into the base shards). Every mutation installs a new
// snapshot at a new generation while in-flight queries and pinned jobs
// keep the snapshot they resolved; readers are never blocked by writers.
type Registry struct {
	mu      sync.RWMutex
	gen     uint64
	entries map[string]*regEntry
	// loadOpts are the engine options applied to every file load (dicts,
	// ontology, default workers).
	loadOpts *koko.Options
	// defShards > 1 re-partitions plain stores into that many doc-range
	// shards at load time (and is the compaction target for corpora that
	// came up with fewer shards). Stores persisted as sharded manifests
	// keep their on-disk shard count.
	defShards int
	// shardParallel > 0 bounds each sharded entry's per-query shard
	// fan-out at install time (the service sets it from its pool size so
	// concurrent requests don't oversubscribe the CPU).
	shardParallel int
}

// regEntry is one corpus: the mutable lifecycle object plus a mirrored
// (snapshot, seq, info) triple that readers resolve under the registry
// lock. seq is the Mutable's seal sequence of the mirrored snapshot — the
// guard that keeps racing ingest/compact installs from regressing the
// mirror to an older snapshot.
type regEntry struct {
	mut  *koko.Mutable
	eng  *koko.Snapshot
	seq  uint64
	info CorpusInfo
}

// NewRegistry creates an empty registry. opts (may be nil) is applied to
// every engine loaded from disk.
func NewRegistry(opts *koko.Options) *Registry {
	return &Registry{entries: map[string]*regEntry{}, loadOpts: opts}
}

// SetDefaultShards makes LoadFile partition plain (non-manifest) stores
// into k doc-range shards (k <= 1 disables re-sharding).
func (r *Registry) SetDefaultShards(k int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.defShards = k
}

// SetShardParallelism bounds the per-query shard fan-out applied to every
// sharded engine installed from now on (n <= 0 leaves the engine default,
// min(shards, GOMAXPROCS)).
func (r *Registry) SetShardParallelism(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shardParallel = n
}

// DefaultName derives a registry name from a .koko path: the base name
// without the extension ("/data/cafes.koko" -> "cafes").
func DefaultName(path string) string {
	return strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
}

// LoadFile loads a persisted store — a plain .koko file or a sharded
// manifest — and registers it under name (DefaultName(path) if name is "").
// With SetDefaultShards(k>1), plain stores are re-partitioned into k
// doc-range shards before registration. An existing entry with the same
// name is replaced at a new generation (any un-compacted delta documents of
// the old entry are discarded — reload means "what the file says").
func (r *Registry) LoadFile(name, path string) error {
	if name == "" {
		name = DefaultName(path)
	}
	eng, err := r.open(path)
	if err != nil {
		return fmt.Errorf("load corpus %q: %w", name, err)
	}
	r.install(name, path, eng)
	return nil
}

// open loads a store under the registry's default sharding policy: plain
// stores come up partitioned into defShards doc-range shards, manifests
// keep their on-disk shard count.
func (r *Registry) open(path string) (koko.Querier, error) {
	r.mu.RLock()
	k := r.defShards
	r.mu.RUnlock()
	return koko.OpenWithShards(path, r.loadOpts, k)
}

// Register adds an in-memory engine — plain or sharded — under name,
// replacing any existing entry at a new generation. The engine becomes the
// base of a fresh mutable corpus (empty delta), so the entry is immediately
// ingestible. Note that delta engines and compacted bases are built with
// the registry's load options; register engines built with the same options
// if the corpus will be ingested into.
func (r *Registry) Register(name string, eng koko.Querier) {
	r.install(name, "", eng)
}

func (r *Registry) install(name, source string, eng koko.Querier) CorpusInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	mut := koko.NewMutable(eng, r.loadOpts)
	if r.defShards > eng.NumShards() {
		mut.SetCompactShards(r.defShards)
	}
	if r.shardParallel > 0 {
		// Retunes the installed base (sharded engines use atomics, so the
		// already-sealed snapshot picks it up) and every compacted rebuild.
		mut.SetShardParallelism(r.shardParallel)
	}
	snap, _ := mut.Current()
	r.gen++
	e := &regEntry{
		mut: mut,
		info: CorpusInfo{
			Name:     name,
			Source:   source,
			LoadedAt: time.Now().UTC(),
		},
	}
	e.applySnapshot(snap, mut, r.gen)
	r.entries[name] = e
	return e.info
}

// applySnapshot mirrors a snapshot's shape into the entry info at the
// given generation. Caller holds r.mu.
func (e *regEntry) applySnapshot(snap *koko.Snapshot, mut *koko.Mutable, gen uint64) {
	e.eng = snap
	e.seq = snap.Seq()
	e.info.Generation = gen
	e.info.Shards = snap.NumShards()
	e.info.Documents = snap.NumDocuments()
	e.info.Sentences = snap.NumSentences()
	e.info.DeltaDocs = snap.DeltaDocs()
	e.info.DeltaSentences = snap.DeltaSentences()
	e.info.Ingests = mut.Ingests()
	e.info.Compactions = mut.Compactions()
}

// refresh mirrors mut's current snapshot into the named entry at a new
// generation. A stale call (another mutation already installed a newer
// seal) keeps the newer state; a call racing a Delete or replacement of the
// corpus reports ErrNotFound rather than resurrecting the entry.
func (r *Registry) refresh(name string, mut *koko.Mutable) (CorpusInfo, error) {
	snap, _ := mut.Current()
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok || e.mut != mut {
		return CorpusInfo{}, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	if snap.Seq() > e.seq {
		r.gen++
		e.applySnapshot(snap, mut, r.gen)
	}
	return e.info, nil
}

// mutable resolves the entry's lifecycle object.
func (r *Registry) mutable(name string) (*koko.Mutable, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	return e.mut, nil
}

// Ingest parses one document and appends it to the named corpus's delta
// index, sealing a new snapshot at a new generation: the document is
// visible to every query from this call on, while queries and jobs already
// running keep their pinned snapshot. The parse and seal never block
// concurrent readers (or writers of other corpora). The returned doc index
// is the ingested document's global id, taken from the seal in which it is
// the last document — precise even when ingests race (the returned info
// may already reflect later seals).
func (r *Registry) Ingest(name, docName, text string) (CorpusInfo, int, error) {
	mut, err := r.mutable(name)
	if err != nil {
		return CorpusInfo{}, 0, err
	}
	snap, err := mut.AddDocument(docName, text)
	if err != nil {
		return CorpusInfo{}, 0, fmt.Errorf("corpus %q: %w", name, err)
	}
	info, err := r.refresh(name, mut)
	return info, snap.NumDocuments() - 1, err
}

// Compact folds the named corpus's delta into its base shards (see
// koko.Mutable.Compact) and installs the compacted snapshot at a new
// generation. An empty delta is a cheap no-op.
func (r *Registry) Compact(name string) (CorpusInfo, koko.CompactionStats, error) {
	mut, err := r.mutable(name)
	if err != nil {
		return CorpusInfo{}, koko.CompactionStats{}, err
	}
	st, err := mut.Compact()
	if err != nil {
		return CorpusInfo{}, koko.CompactionStats{}, fmt.Errorf("compact corpus %q: %w", name, err)
	}
	info, err := r.refresh(name, mut)
	return info, st, err
}

// Delete unregisters a corpus. New queries, ingests, and job submissions
// against the name fail with ErrNotFound immediately; anything already
// holding the entry's snapshot (running jobs, in-flight queries) finishes
// on it undisturbed.
func (r *Registry) Delete(name string) (CorpusInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return CorpusInfo{}, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	delete(r.entries, name)
	return e.info, nil
}

// Reload re-reads a file-backed corpus from its source path and swaps it in
// at a new generation. In-memory corpora cannot be reloaded. Un-compacted
// delta documents are discarded — the reloaded state is the file's.
func (r *Registry) Reload(name string) (CorpusInfo, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	var source string
	if ok {
		source = e.info.Source
	}
	r.mu.RUnlock()
	if !ok {
		return CorpusInfo{}, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	if source == "" {
		return CorpusInfo{}, fmt.Errorf("corpus %q is in-memory and cannot be reloaded: %w", name, ErrNotReloadable)
	}
	// Load outside the lock: index loading is the slow part and must not
	// block concurrent queries against other corpora (or the old engine).
	// For a sharded corpus the whole new shard set is assembled here before
	// install swaps it in — one atomic generation flip, never a mix.
	eng, err := r.open(source)
	if err != nil {
		return CorpusInfo{}, fmt.Errorf("reload corpus %q: %w", name, err)
	}
	return r.install(name, source, eng), nil
}

// Engine resolves a corpus name to its current snapshot and generation.
// The snapshot is immutable: holding it across later ingests, compactions,
// and reloads is exactly how jobs pin the corpus state they started on.
func (r *Registry) Engine(name string) (koko.Querier, uint64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, 0, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	return e.eng, e.info.Generation, nil
}

// Info returns the metadata of one entry.
func (r *Registry) Info(name string) (CorpusInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return CorpusInfo{}, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	return e.info, nil
}

// Stats returns the index statistics of one entry's engine (summed across
// shards for a sharded corpus, delta included).
func (r *Registry) Stats(name string) (koko.IndexStats, error) {
	eng, _, err := r.Engine(name)
	if err != nil {
		return koko.IndexStats{}, err
	}
	return eng.Stats(), nil
}

// Describe returns one entry's info, aggregate index stats, and per-shard
// stats as a consistent snapshot: all three come from the same generation,
// even if an ingest or reload swaps the entry concurrently. (Snapshots are
// immutable once installed, so resolving the entry once under the lock
// suffices.) The aggregate is derived from the per-shard stats — one index
// walk per shard, not two.
func (r *Registry) Describe(name string) (CorpusInfo, koko.IndexStats, []koko.ShardStat, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	var info CorpusInfo
	var eng *koko.Snapshot
	if ok {
		info, eng = e.info, e.eng
	}
	r.mu.RUnlock()
	if !ok {
		return CorpusInfo{}, koko.IndexStats{}, nil, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	sh := eng.ShardStats()
	return info, koko.MergeShardStats(sh), sh, nil
}

// List returns all entries sorted by name. The order is deterministic so
// /v1/corpora output and startup logs are stable across runs.
func (r *Registry) List() []CorpusInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]CorpusInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the number of registered corpora.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
