package server

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/koko"
)

// CorpusInfo describes one registry entry.
type CorpusInfo struct {
	Name string `json:"name"`
	// Source is the .koko file the corpus was loaded from, or "" for
	// in-memory corpora.
	Source string `json:"source,omitempty"`
	// Generation is the registry-wide load counter at the time this entry
	// was (re)loaded. It strictly increases across loads, so caches keyed
	// on (name, generation) are implicitly invalidated by a reload.
	Generation uint64    `json:"generation"`
	Documents  int       `json:"documents"`
	Sentences  int       `json:"sentences"`
	LoadedAt   time.Time `json:"loaded_at"`
}

// Registry maps corpus names to query engines. It supports hot loading:
// corpora can be added, replaced, and reloaded from disk while queries are
// in flight — in-flight queries keep the engine they resolved, new queries
// see the new generation.
type Registry struct {
	mu      sync.RWMutex
	gen     uint64
	entries map[string]*regEntry
	// loadOpts are the engine options applied to every file load (dicts,
	// ontology, default workers).
	loadOpts *koko.Options
}

type regEntry struct {
	eng  *koko.Engine
	info CorpusInfo
}

// NewRegistry creates an empty registry. opts (may be nil) is applied to
// every engine loaded from disk.
func NewRegistry(opts *koko.Options) *Registry {
	return &Registry{entries: map[string]*regEntry{}, loadOpts: opts}
}

// DefaultName derives a registry name from a .koko path: the base name
// without the extension ("/data/cafes.koko" -> "cafes").
func DefaultName(path string) string {
	return strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
}

// LoadFile loads a persisted .koko store and registers it under name
// (DefaultName(path) if name is ""). An existing entry with the same name
// is replaced at a new generation.
func (r *Registry) LoadFile(name, path string) error {
	if name == "" {
		name = DefaultName(path)
	}
	eng, err := koko.Load(path, r.loadOpts)
	if err != nil {
		return fmt.Errorf("load corpus %q: %w", name, err)
	}
	r.install(name, path, eng)
	return nil
}

// Register adds an in-memory engine under name, replacing any existing
// entry at a new generation.
func (r *Registry) Register(name string, eng *koko.Engine) {
	r.install(name, "", eng)
}

func (r *Registry) install(name, source string, eng *koko.Engine) CorpusInfo {
	c := eng.Corpus()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gen++
	info := CorpusInfo{
		Name:       name,
		Source:     source,
		Generation: r.gen,
		Documents:  c.NumDocuments(),
		Sentences:  c.NumSentences(),
		LoadedAt:   time.Now().UTC(),
	}
	r.entries[name] = &regEntry{eng: eng, info: info}
	return info
}

// Reload re-reads a file-backed corpus from its source path and swaps it in
// at a new generation. In-memory corpora cannot be reloaded.
func (r *Registry) Reload(name string) (CorpusInfo, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	var source string
	if ok {
		source = e.info.Source
	}
	r.mu.RUnlock()
	if !ok {
		return CorpusInfo{}, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	if source == "" {
		return CorpusInfo{}, fmt.Errorf("corpus %q is in-memory and cannot be reloaded: %w", name, ErrNotReloadable)
	}
	// Load outside the lock: index loading is the slow part and must not
	// block concurrent queries against other corpora (or the old engine).
	eng, err := koko.Load(source, r.loadOpts)
	if err != nil {
		return CorpusInfo{}, fmt.Errorf("reload corpus %q: %w", name, err)
	}
	return r.install(name, source, eng), nil
}

// Engine resolves a corpus name to its engine and current generation.
func (r *Registry) Engine(name string) (*koko.Engine, uint64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, 0, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	return e.eng, e.info.Generation, nil
}

// Info returns the metadata of one entry.
func (r *Registry) Info(name string) (CorpusInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return CorpusInfo{}, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	return e.info, nil
}

// Stats returns the index statistics of one entry's engine.
func (r *Registry) Stats(name string) (koko.IndexStats, error) {
	eng, _, err := r.Engine(name)
	if err != nil {
		return koko.IndexStats{}, err
	}
	return eng.Stats(), nil
}

// List returns all entries sorted by name.
func (r *Registry) List() []CorpusInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]CorpusInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the number of registered corpora.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
