package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/koko/wal"
	"repro/koko"
)

// CorpusInfo describes one registry entry.
type CorpusInfo struct {
	Name string `json:"name"`
	// Source is the .koko file the corpus was loaded from, or "" for
	// in-memory corpora.
	Source string `json:"source,omitempty"`
	// Generation is the registry-wide mutation counter at the time this
	// entry's current snapshot was installed. It strictly increases across
	// loads, ingests, and compactions, so caches keyed on (name,
	// generation) are implicitly invalidated by any of them.
	Generation uint64 `json:"generation"`
	// Shards is how many doc-range shards serve this corpus, counting a
	// live delta as one extra shard (1 = a plain unpartitioned engine).
	Shards    int       `json:"shards"`
	Documents int       `json:"documents"`
	Sentences int       `json:"sentences"`
	LoadedAt  time.Time `json:"loaded_at"`
	// DeltaDocs / DeltaSentences size the ingested-but-uncompacted delta;
	// Ingests and Compactions are the entry's lifetime counters.
	DeltaDocs      int    `json:"delta_docs"`
	DeltaSentences int    `json:"delta_sentences"`
	Ingests        uint64 `json:"ingests"`
	Compactions    uint64 `json:"compactions"`
	// Durable marks a corpus backed by an on-disk WAL + shard store;
	// StoreGeneration is its persisted shard set's generation (bumped by
	// every crash-safe compaction swap) and WALBytes the current log size —
	// the quantity the service's WAL-size compaction trigger watches.
	// Tombstones and Deletes track delete/update masking for every corpus,
	// durable or not.
	Durable         bool   `json:"durable,omitempty"`
	StoreGeneration uint64 `json:"store_generation,omitempty"`
	WALBytes        int64  `json:"wal_bytes,omitempty"`
	Tombstones      int    `json:"tombstones"`
	Deletes         uint64 `json:"deletes"`
	// Remote marks a corpus served by remote worker nodes through a
	// coordinator-side routing engine: queryable like any other entry, but
	// not ingestible, compactable, or reloadable here — its state lives on
	// the workers.
	Remote bool `json:"remote,omitempty"`
}

// Registry maps corpus names to mutable corpora, each served through an
// immutable koko.Snapshot. It supports hot mutation at two granularities:
// whole-store swaps (load, reload) and live ingestion (one document into
// the corpus's delta index, sealed into a new snapshot) plus compaction
// (delta folded into the base shards). Every mutation installs a new
// snapshot at a new generation while in-flight queries and pinned jobs
// keep the snapshot they resolved; readers are never blocked by writers.
type Registry struct {
	mu      sync.RWMutex
	gen     uint64
	entries map[string]*regEntry
	// loadOpts are the engine options applied to every file load (dicts,
	// ontology, default workers).
	loadOpts *koko.Options
	// defShards > 1 re-partitions plain stores into that many doc-range
	// shards at load time (and is the compaction target for corpora that
	// came up with fewer shards). Stores persisted as sharded manifests
	// keep their on-disk shard count.
	defShards int
	// shardParallel > 0 bounds each sharded entry's per-query shard
	// fan-out at install time (the service sets it from its pool size so
	// concurrent requests don't oversubscribe the CPU).
	shardParallel int
	// dataDir != "" makes every installed corpus durable: its documents are
	// written through a per-corpus WAL under dataDir/<name> and survive a
	// crash or restart. walSync is the WAL fsync policy applied at open.
	dataDir string
	walSync wal.SyncPolicy
}

// regEntry is one corpus: the mutable lifecycle object plus a mirrored
// (snapshot, seq, info) triple that readers resolve under the registry
// lock. seq is the Mutable's seal sequence of the mirrored snapshot — the
// guard that keeps racing ingest/compact installs from regressing the
// mirror to an older snapshot. Remote corpora have mut == nil (no local
// lifecycle: their state lives on the workers) and eng holding the
// coordinator-side routing engine; every mutation path guards on that.
type regEntry struct {
	mut  *koko.Mutable
	eng  koko.Querier
	seq  uint64
	info CorpusInfo
}

// NewRegistry creates an empty registry. opts (may be nil) is applied to
// every engine loaded from disk.
func NewRegistry(opts *koko.Options) *Registry {
	return &Registry{entries: map[string]*regEntry{}, loadOpts: opts}
}

// SetDefaultShards makes LoadFile partition plain (non-manifest) stores
// into k doc-range shards (k <= 1 disables re-sharding).
func (r *Registry) SetDefaultShards(k int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.defShards = k
}

// SetShardParallelism bounds the per-query shard fan-out applied to every
// sharded engine installed from now on (n <= 0 leaves the engine default,
// min(shards, GOMAXPROCS)).
func (r *Registry) SetShardParallelism(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shardParallel = n
}

// SetDurability makes every subsequently installed corpus durable: its
// WAL and shard store live under dir/<name> with the given fsync policy.
// A corpus whose durable directory already holds state is recovered from
// disk at install, ignoring the registered seed engine.
func (r *Registry) SetDurability(dir string, sync wal.SyncPolicy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dataDir = dir
	r.walSync = sync
}

// durableDir resolves a corpus's durable directory ("" when durability is
// off), rejecting names that would escape the data dir.
func (r *Registry) durableDir(name string) (string, error) {
	r.mu.RLock()
	dir := r.dataDir
	r.mu.RUnlock()
	if dir == "" {
		return "", nil
	}
	if name == "" || name == "." || name == ".." || strings.ContainsAny(name, `/\`) {
		return "", fmt.Errorf("corpus name %q is not usable as a durable directory", name)
	}
	return filepath.Join(dir, name), nil
}

// DefaultName derives a registry name from a .koko path: the base name
// without the extension ("/data/cafes.koko" -> "cafes").
func DefaultName(path string) string {
	return strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
}

// LoadFile loads a persisted store — a plain .koko file or a sharded
// manifest — and registers it under name (DefaultName(path) if name is "").
// With SetDefaultShards(k>1), plain stores are re-partitioned into k
// doc-range shards before registration. An existing entry with the same
// name is replaced at a new generation (any un-compacted delta documents of
// the old entry are discarded — reload means "what the file says").
// When the corpus has durable state on disk (SetDurability + a previous
// run), the durable state wins: the source file is not even opened, because
// the persisted shard set plus WAL replay already reproduce the corpus as
// last served — including ingests and deletes the source file never saw.
func (r *Registry) LoadFile(name, path string) error {
	if name == "" {
		name = DefaultName(path)
	}
	dir, err := r.durableDir(name)
	if err != nil {
		return fmt.Errorf("load corpus %q: %w", name, err)
	}
	var eng koko.Querier
	if dir == "" || !koko.HasDurableState(dir) {
		if eng, err = r.open(path); err != nil {
			return fmt.Errorf("load corpus %q: %w", name, err)
		}
	}
	_, err = r.install(name, path, eng)
	return err
}

// open loads a store under the registry's default sharding policy: plain
// stores come up partitioned into defShards doc-range shards, manifests
// keep their on-disk shard count.
func (r *Registry) open(path string) (koko.Querier, error) {
	r.mu.RLock()
	k := r.defShards
	r.mu.RUnlock()
	return koko.OpenWithShards(path, r.loadOpts, k)
}

// Register adds an in-memory engine — plain or sharded — under name,
// replacing any existing entry at a new generation. The engine becomes the
// base of a fresh mutable corpus (empty delta), so the entry is immediately
// ingestible. With durability enabled the engine seeds the corpus's durable
// directory on first registration; on later runs the recovered disk state
// wins and the engine is ignored. Note that delta engines and compacted
// bases are built with the registry's load options; register engines built
// with the same options if the corpus will be ingested into.
func (r *Registry) Register(name string, eng koko.Querier) error {
	_, err := r.install(name, "", eng)
	return err
}

// install wraps eng in a mutable corpus and swaps it into the registry at a
// new generation. The wrap happens OUTSIDE the registry lock: for a durable
// corpus it persists the seed or replays the WAL (disk IO that must not
// block queries against other corpora).
func (r *Registry) install(name, source string, eng koko.Querier) (CorpusInfo, error) {
	mut, err := r.wrap(name, eng)
	if err != nil {
		return CorpusInfo{}, err
	}
	return r.installMut(name, source, mut), nil
}

// wrap builds the mutable lifecycle object for one corpus: durable (WAL +
// on-disk shard store under the data dir) when durability is configured,
// memory-only otherwise.
func (r *Registry) wrap(name string, eng koko.Querier) (*koko.Mutable, error) {
	dir, err := r.durableDir(name)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	defShards, shardParallel := r.defShards, r.shardParallel
	sync := r.walSync
	opts := r.loadOpts
	r.mu.RUnlock()
	var mut *koko.Mutable
	if dir != "" {
		mut, err = koko.OpenDurable(eng, koko.DurableConfig{Dir: dir, Sync: sync, Opts: opts})
		if err != nil {
			return nil, fmt.Errorf("corpus %q: %w", name, err)
		}
	} else {
		mut = koko.NewMutable(eng, opts)
	}
	mut.SetName(name)
	if defShards > mut.Snapshot().NumShards() {
		mut.SetCompactShards(defShards)
	}
	if shardParallel > 0 {
		// Retunes the installed base (sharded engines use atomics, so the
		// already-sealed snapshot picks it up) and every compacted rebuild.
		mut.SetShardParallelism(shardParallel)
	}
	return mut, nil
}

// installMut swaps mut into the registry under name at a new generation. A
// replaced durable entry's WAL is closed — two writers appending to one log
// file would corrupt it.
func (r *Registry) installMut(name, source string, mut *koko.Mutable) CorpusInfo {
	snap, _ := mut.Current()
	r.mu.Lock()
	old := r.entries[name]
	r.gen++
	e := &regEntry{
		mut: mut,
		info: CorpusInfo{
			Name:     name,
			Source:   source,
			LoadedAt: time.Now().UTC(),
		},
	}
	e.applySnapshot(snap, mut, r.gen)
	r.entries[name] = e
	r.mu.Unlock()
	if old != nil && old.mut != mut {
		old.mut.Close()
	}
	return e.info
}

// applySnapshot mirrors a snapshot's shape into the entry info at the
// given generation. Caller holds r.mu.
func (e *regEntry) applySnapshot(snap *koko.Snapshot, mut *koko.Mutable, gen uint64) {
	e.eng = snap
	e.seq = snap.Seq()
	e.info.Generation = gen
	e.info.Shards = snap.NumShards()
	e.info.Documents = snap.NumDocuments()
	e.info.Sentences = snap.NumSentences()
	e.info.DeltaDocs = snap.DeltaDocs()
	e.info.DeltaSentences = snap.DeltaSentences()
	e.info.Ingests = mut.Ingests()
	e.info.Compactions = mut.Compactions()
	e.info.Tombstones = snap.Tombstones()
	e.info.Deletes = mut.Deletes()
	ds := mut.Durability()
	e.info.Durable = ds.Durable
	e.info.StoreGeneration = ds.Generation
	e.info.WALBytes = ds.WALBytes
}

// refresh mirrors mut's current snapshot into the named entry at a new
// generation. A stale call (another mutation already installed a newer
// seal) keeps the newer state; a call racing a Delete or replacement of the
// corpus reports ErrNotFound rather than resurrecting the entry.
func (r *Registry) refresh(name string, mut *koko.Mutable) (CorpusInfo, error) {
	snap, _ := mut.Current()
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok || e.mut != mut {
		return CorpusInfo{}, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	if snap.Seq() > e.seq {
		r.gen++
		e.applySnapshot(snap, mut, r.gen)
	}
	return e.info, nil
}

// mutable resolves the entry's lifecycle object. Remote corpora have none:
// ingest, delete-document, and compact must happen on the workers that own
// the state.
func (r *Registry) mutable(name string) (*koko.Mutable, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	if e.mut == nil {
		return nil, fmt.Errorf("corpus %q is served by remote workers; mutate it there: %w", name, ErrRemoteCorpus)
	}
	return e.mut, nil
}

// RegisterRemote installs a coordinator-side remote engine under name,
// replacing any existing entry at a new generation. The entry is
// query-only: no mutable wrap, no durable state — the workers own both.
// info fields that describe local lifecycle (delta, WAL, tombstones) stay
// zero.
func (r *Registry) RegisterRemote(name, source string, eng koko.Querier) CorpusInfo {
	r.mu.Lock()
	old := r.entries[name]
	r.gen++
	e := &regEntry{
		eng: eng,
		info: CorpusInfo{
			Name:       name,
			Source:     source,
			Generation: r.gen,
			Shards:     eng.NumShards(),
			Documents:  eng.NumDocuments(),
			Sentences:  eng.NumSentences(),
			LoadedAt:   time.Now().UTC(),
			Remote:     true,
		},
	}
	r.entries[name] = e
	r.mu.Unlock()
	if old != nil && old.mut != nil {
		old.mut.Close()
	}
	return e.info
}

// Ingest parses one document and upserts it into the named corpus's delta
// index, sealing a new snapshot at a new generation: the document is
// visible to every query from this call on, while queries and jobs already
// running keep their pinned snapshot. Re-ingesting an existing document
// name replaces it (the old version is tombstoned; updated reports that).
// The parse and seal never block concurrent readers (or writers of other
// corpora). The returned doc index is the ingested document's global id,
// taken from the seal in which it is the last document — precise even when
// ingests race (the returned info may already reflect later seals).
func (r *Registry) Ingest(name, docName, text string) (info CorpusInfo, doc int, updated bool, err error) {
	mut, err := r.mutable(name)
	if err != nil {
		return CorpusInfo{}, 0, false, err
	}
	snap, updated, err := mut.PutDocument(docName, text)
	if err != nil {
		return CorpusInfo{}, 0, false, fmt.Errorf("corpus %q: %w", name, err)
	}
	info, err = r.refresh(name, mut)
	return info, snap.NumDocuments() - 1, updated, err
}

// DeleteDocument tombstones every live document with the given name in the
// corpus and seals a new snapshot: the document's tuples vanish from every
// query from this call on; the bytes are reclaimed by the next compaction.
// Returns how many documents were masked. A name with no live document
// fails with koko.ErrNoDocument.
func (r *Registry) DeleteDocument(name, doc string) (CorpusInfo, int, error) {
	mut, err := r.mutable(name)
	if err != nil {
		return CorpusInfo{}, 0, err
	}
	_, n, err := mut.DeleteDocument(doc)
	if err != nil {
		return CorpusInfo{}, 0, fmt.Errorf("corpus %q: %w", name, err)
	}
	info, err := r.refresh(name, mut)
	return info, n, err
}

// Compact folds the named corpus's delta into its base shards (see
// koko.Mutable.Compact) and installs the compacted snapshot at a new
// generation. An empty delta is a cheap no-op.
func (r *Registry) Compact(name string) (CorpusInfo, koko.CompactionStats, error) {
	mut, err := r.mutable(name)
	if err != nil {
		return CorpusInfo{}, koko.CompactionStats{}, err
	}
	st, err := mut.Compact()
	if err != nil {
		return CorpusInfo{}, koko.CompactionStats{}, fmt.Errorf("compact corpus %q: %w", name, err)
	}
	info, err := r.refresh(name, mut)
	return info, st, err
}

// Delete unregisters a corpus. New queries, ingests, and job submissions
// against the name fail with ErrNotFound immediately; anything already
// holding the entry's snapshot (running jobs, in-flight queries) finishes
// on it undisturbed. A durable corpus's on-disk state — persisted shard
// files, manifest, and WAL — is removed too: delete means gone, not
// "resurrected at next restart".
func (r *Registry) Delete(name string) (CorpusInfo, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		r.mu.Unlock()
		return CorpusInfo{}, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	delete(r.entries, name)
	r.mu.Unlock()
	if e.mut == nil {
		// Remote entry: unregistering drops only the routing view; the
		// workers keep their state.
		return e.info, nil
	}
	// Close first (stops the WAL sync loop and further appends), then remove
	// the directory.
	dir := e.mut.Dir()
	e.mut.Close()
	if dir != "" {
		if err := os.RemoveAll(dir); err != nil {
			return e.info, fmt.Errorf("delete corpus %q durable state: %w", name, err)
		}
	}
	return e.info, nil
}

// Reload re-reads a file-backed corpus from its source path and swaps it in
// at a new generation. In-memory corpora cannot be reloaded. Un-compacted
// delta documents are discarded — the reloaded state is the file's.
func (r *Registry) Reload(name string) (CorpusInfo, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	var source string
	var remote bool
	if ok {
		source, remote = e.info.Source, e.info.Remote
	}
	r.mu.RUnlock()
	if !ok {
		return CorpusInfo{}, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	if remote {
		return CorpusInfo{}, fmt.Errorf("corpus %q is served by remote workers; reload it there: %w", name, ErrNotReloadable)
	}
	if source == "" {
		return CorpusInfo{}, fmt.Errorf("corpus %q is in-memory and cannot be reloaded: %w", name, ErrNotReloadable)
	}
	if e.mut.Dir() != "" {
		// A durable corpus's authoritative state is its WAL + shard store,
		// not the source file; "reload from file" would silently discard
		// ingests and deletes that were durably acknowledged.
		return CorpusInfo{}, fmt.Errorf("corpus %q is durable; its state comes from the data dir, not the source file: %w", name, ErrNotReloadable)
	}
	// Load outside the lock: index loading is the slow part and must not
	// block concurrent queries against other corpora (or the old engine).
	// For a sharded corpus the whole new shard set is assembled here before
	// install swaps it in — one atomic generation flip, never a mix.
	eng, err := r.open(source)
	if err != nil {
		return CorpusInfo{}, fmt.Errorf("reload corpus %q: %w", name, err)
	}
	return r.install(name, source, eng)
}

// Engine resolves a corpus name to its current snapshot and generation.
// The snapshot is immutable: holding it across later ingests, compactions,
// and reloads is exactly how jobs pin the corpus state they started on.
func (r *Registry) Engine(name string) (koko.Querier, uint64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, 0, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	return e.eng, e.info.Generation, nil
}

// Info returns the metadata of one entry.
func (r *Registry) Info(name string) (CorpusInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return CorpusInfo{}, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	return e.info, nil
}

// Stats returns the index statistics of one entry's engine (summed across
// shards for a sharded corpus, delta included).
func (r *Registry) Stats(name string) (koko.IndexStats, error) {
	eng, _, err := r.Engine(name)
	if err != nil {
		return koko.IndexStats{}, err
	}
	return eng.Stats(), nil
}

// Describe returns one entry's info, aggregate index stats, and per-shard
// stats as a consistent snapshot: all three come from the same generation,
// even if an ingest or reload swaps the entry concurrently. (Snapshots are
// immutable once installed, so resolving the entry once under the lock
// suffices.) The aggregate is derived from the per-shard stats — one index
// walk per shard, not two.
func (r *Registry) Describe(name string) (CorpusInfo, koko.IndexStats, []koko.ShardStat, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	var info CorpusInfo
	var eng koko.Querier
	if ok {
		info, eng = e.info, e.eng
	}
	r.mu.RUnlock()
	if !ok {
		return CorpusInfo{}, koko.IndexStats{}, nil, fmt.Errorf("corpus %q: %w", name, ErrNotFound)
	}
	sh := eng.ShardStats()
	return info, koko.MergeShardStats(sh), sh, nil
}

// List returns all entries sorted by name. The order is deterministic so
// /v1/corpora output and startup logs are stable across runs.
func (r *Registry) List() []CorpusInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]CorpusInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the number of registered corpora.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// LoadDurable recovers every durable corpus directory under the data dir
// that is not already registered, in name order. kokod calls it at startup
// after the explicit -load/-dir/-demo registrations, so corpora created
// purely through the API in a previous run come back after a restart.
// Returns the names recovered.
func (r *Registry) LoadDurable() ([]string, error) {
	r.mu.RLock()
	dataDir := r.dataDir
	r.mu.RUnlock()
	if dataDir == "" {
		return nil, nil
	}
	dirents, err := os.ReadDir(dataDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("scan data dir %s: %w", dataDir, err)
	}
	var names []string
	for _, de := range dirents {
		if !de.IsDir() || !koko.HasDurableState(filepath.Join(dataDir, de.Name())) {
			continue
		}
		names = append(names, de.Name())
	}
	sort.Strings(names)
	var recovered []string
	for _, name := range names {
		r.mu.RLock()
		_, exists := r.entries[name]
		r.mu.RUnlock()
		if exists {
			continue
		}
		// nil seed: the durable state is the corpus.
		if _, err := r.install(name, "", nil); err != nil {
			return recovered, fmt.Errorf("recover corpus %q: %w", name, err)
		}
		recovered = append(recovered, name)
	}
	return recovered, nil
}

// CloseAll closes every corpus's durable resources (WAL handles and sync
// loops). The shutdown path: pending batched WAL writes are fsynced, so a
// clean stop loses nothing even under -wal-sync=batch.
func (r *Registry) CloseAll() {
	r.mu.Lock()
	muts := make([]*koko.Mutable, 0, len(r.entries))
	for _, e := range r.entries {
		if e.mut != nil {
			muts = append(muts, e.mut)
		}
	}
	r.mu.Unlock()
	for _, m := range muts {
		m.Close()
	}
}

// Durability sums durability counters across all corpora (the /v1/metrics
// aggregate). Recovery is the total WAL replay time across corpora at their
// last open.
func (r *Registry) Durability() koko.DurabilityStats {
	r.mu.RLock()
	muts := make([]*koko.Mutable, 0, len(r.entries))
	for _, e := range r.entries {
		if e.mut != nil {
			muts = append(muts, e.mut)
		}
	}
	r.mu.RUnlock()
	var sum koko.DurabilityStats
	for _, m := range muts {
		ds := m.Durability()
		sum.Durable = sum.Durable || ds.Durable
		sum.WALAppends += ds.WALAppends
		sum.WALBytes += ds.WALBytes
		sum.ReplayedDocs += ds.ReplayedDocs
		sum.ReplayedTombs += ds.ReplayedTombs
		sum.TombstonesLive += ds.TombstonesLive
		sum.Swaps += ds.Swaps
		sum.Recovery += ds.Recovery
	}
	return sum
}
