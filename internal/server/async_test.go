package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server/jobs"
	"repro/koko"
)

// The acceptance differential: for each demo corpus, the concatenated
// streamed NDJSON tuples and a completed job's fetched results must be
// byte-identical to the buffered POST /v1/query response, at K ∈ {1, 3}
// shards — plus the HTTP error paths and goroutine-hygiene checks around
// the async surface.

// readStream decodes an NDJSON response body into its events.
func readStream(t *testing.T, body []byte) (tuples []TupleResult, shardEvents []ShardProgress, done *StreamSummary, errLine string) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch {
		case ev.Tuple != nil:
			if done != nil {
				t.Fatalf("tuple after done line: %q", line)
			}
			tuples = append(tuples, *ev.Tuple)
		case ev.Shard != nil:
			shardEvents = append(shardEvents, *ev.Shard)
		case ev.Done != nil:
			done = ev.Done
		case ev.Error != "":
			errLine = ev.Error
		default:
			t.Fatalf("empty stream event: %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return tuples, shardEvents, done, errLine
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func waitJobState(t *testing.T, ts *httptest.Server, id string, want jobs.State) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st jobs.Status
		resp := getJSON(t, ts, "/v1/jobs/"+id, &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job get status %d", resp.StatusCode)
		}
		if st.State == want {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return jobs.Status{}
}

// TestStreamAndJobMatchBuffered is the differential acceptance test: demo
// corpora at K ∈ {1, 3}, streamed tuples and completed-job results
// byte-identical to the buffered response.
func TestStreamAndJobMatchBuffered(t *testing.T) {
	for _, k := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			svc := NewService(Config{CacheSize: -1}) // no cache: force the per-shard path
			RegisterDemoCorpora(svc.Registry(), k)
			ts := httptest.NewServer(svc.Handler())
			defer ts.Close()

			for corpus, query := range DemoQueries {
				// Buffered reference.
				resp, body := postJSON(t, ts, "/v1/query", QueryRequest{Corpus: corpus, Query: query, Explain: true})
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s buffered status %d: %s", corpus, resp.StatusCode, body)
				}
				var buffered QueryResponse
				if err := json.Unmarshal(body, &buffered); err != nil {
					t.Fatal(err)
				}
				if len(buffered.Tuples) == 0 {
					t.Fatalf("%s: buffered query returned no tuples", corpus)
				}
				wantBytes := mustMarshal(t, buffered.Tuples)

				// Streamed NDJSON: same tuples, same encoding, same order.
				resp, body = postJSON(t, ts, "/v1/query?stream=1", QueryRequest{Corpus: corpus, Query: query, Explain: true})
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s stream status %d: %s", corpus, resp.StatusCode, body)
				}
				if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
					t.Errorf("stream content-type = %q", ct)
				}
				tuples, shardEvents, done, errLine := readStream(t, body)
				if errLine != "" {
					t.Fatalf("%s stream error: %s", corpus, errLine)
				}
				if done == nil {
					t.Fatalf("%s stream missing done line", corpus)
				}
				if got := mustMarshal(t, tuples); !bytes.Equal(got, wantBytes) {
					t.Fatalf("%s k=%d: streamed tuples differ from buffered:\n got %s\nwant %s", corpus, k, got, wantBytes)
				}
				wantShards := svcShards(t, svc, corpus)
				if len(shardEvents) != wantShards {
					t.Fatalf("%s k=%d: %d shard events, want %d", corpus, k, len(shardEvents), wantShards)
				}
				if done.Tuples != len(tuples) || done.Candidates != buffered.Candidates || done.Matched != buffered.Matched {
					t.Fatalf("%s done summary %+v vs buffered %d/%d/%d",
						corpus, done, len(buffered.Tuples), buffered.Candidates, buffered.Matched)
				}

				// Async job: submit, run to completion, fetch results.
				resp, body = postJSON(t, ts, "/v1/jobs", jobs.Spec{Corpus: corpus, Queries: []string{query}, Explain: true})
				if resp.StatusCode != http.StatusAccepted {
					t.Fatalf("%s job submit status %d: %s", corpus, resp.StatusCode, body)
				}
				var st jobs.Status
				if err := json.Unmarshal(body, &st); err != nil {
					t.Fatal(err)
				}
				final := waitJobState(t, ts, st.ID, jobs.StateDone)
				if final.ShardsDone != wantShards {
					t.Fatalf("%s job shards_done = %d, want %d", corpus, final.ShardsDone, wantShards)
				}
				var jr jobResultsResponse
				if resp := getJSON(t, ts, "/v1/jobs/"+st.ID+"/results", &jr); resp.StatusCode != http.StatusOK {
					t.Fatalf("job results status %d", resp.StatusCode)
				}
				if len(jr.Queries) != 1 || !jr.Queries[0].Complete {
					t.Fatalf("%s job results = %+v", corpus, jr.Queries)
				}
				if got := mustMarshal(t, jr.Queries[0].Tuples); !bytes.Equal(got, wantBytes) {
					t.Fatalf("%s k=%d: job tuples differ from buffered:\n got %s\nwant %s", corpus, k, got, wantBytes)
				}
				if jr.Queries[0].Candidates != buffered.Candidates || jr.Queries[0].Matched != buffered.Matched {
					t.Fatalf("%s job counts %d/%d vs buffered %d/%d", corpus,
						jr.Queries[0].Candidates, jr.Queries[0].Matched, buffered.Candidates, buffered.Matched)
				}
			}
		})
	}
}

// svcShards resolves how many shards actually serve a corpus (a 1-doc
// corpus asked for 3 shards comes up with 1 shard per doc).
func svcShards(t *testing.T, svc *Service, corpus string) int {
	t.Helper()
	info, err := svc.Registry().Info(corpus)
	if err != nil {
		t.Fatal(err)
	}
	return info.Shards
}

// TestStreamCacheInterplay: a streamed miss populates the cache; the
// follow-up buffered and streamed requests hit it and still return the
// identical tuples.
func TestStreamCacheInterplay(t *testing.T) {
	svc := NewService(Config{CacheSize: 32})
	RegisterDemoCorpora(svc.Registry(), 3)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	q := DemoQueries["demo-cafes"]
	_, body := postJSON(t, ts, "/v1/query?stream=1", QueryRequest{Corpus: "demo-cafes", Query: q})
	tuples, _, done, _ := readStream(t, body)
	if done == nil || done.Cached {
		t.Fatalf("first stream: done=%+v", done)
	}
	var buffered QueryResponse
	_, body = postJSON(t, ts, "/v1/query", QueryRequest{Corpus: "demo-cafes", Query: q})
	if err := json.Unmarshal(body, &buffered); err != nil {
		t.Fatal(err)
	}
	if !buffered.Cached {
		t.Error("buffered follow-up missed the cache populated by the stream")
	}
	if !bytes.Equal(mustMarshal(t, buffered.Tuples), mustMarshal(t, tuples)) {
		t.Fatal("cached buffered tuples differ from streamed")
	}
	_, body = postJSON(t, ts, "/v1/query?stream=1", QueryRequest{Corpus: "demo-cafes", Query: q})
	tuples2, shardEvents, done2, _ := readStream(t, body)
	if done2 == nil || !done2.Cached {
		t.Fatalf("second stream not served from cache: %+v", done2)
	}
	if len(shardEvents) != 0 {
		t.Errorf("cache-hit stream emitted %d shard events, want 0", len(shardEvents))
	}
	if !bytes.Equal(mustMarshal(t, tuples2), mustMarshal(t, tuples)) {
		t.Fatal("cache-hit stream tuples differ")
	}
}

// TestJobHTTPErrorPaths: malformed bodies, unknown ids, over-limit
// submits, and cancelled-job results over real HTTP.
func TestJobHTTPErrorPaths(t *testing.T) {
	svc := NewService(Config{CacheSize: -1, MaxJobs: 1})
	RegisterDemoCorpora(svc.Registry(), 2)
	gate := newGatedQuerier(mustEngine(svc, "demo-cafes"))
	svc.Registry().Register("slow", gate)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	// Malformed job bodies.
	for _, body := range []string{
		`{`,
		`{"queries": ["x"]}`,
		`{"corpus": "demo-cafes"}`,
		`{"corpus": "demo-cafes", "queries": ["extract from if"]}`,
	} {
		if resp, b := post("/v1/jobs", body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d (%s), want 400", body, resp.StatusCode, b)
		}
	}
	// Unknown corpus.
	if resp, _ := post("/v1/jobs", `{"corpus": "nope", "queries": ["`+cafeQuery2()+`"]}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown corpus submit status %d, want 404", resp.StatusCode)
	}
	// Unknown job ids on every job endpoint.
	if resp := getJSON(t, ts, "/v1/jobs/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job get status %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts, "/v1/jobs/nope/results", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job results status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/nope", nil)
	if resp, err := ts.Client().Do(req); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job delete status %d", resp.StatusCode)
	}

	// Submit against the gated corpus, then exceed the active-job limit.
	resp, body := postJSON(t, ts, "/v1/jobs", jobs.Spec{Corpus: "slow", Queries: []string{DemoQueries["demo-cafes"]}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var st jobs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if resp, _ := postJSON(t, ts, "/v1/jobs", jobs.Spec{Corpus: "slow", Queries: []string{DemoQueries["demo-cafes"]}}); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-limit submit status %d, want 429", resp.StatusCode)
	}

	// Cancel the in-flight job; results of a cancelled job stay fetchable
	// (200, state cancelled, incomplete prefix).
	<-gate.started
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cancelled jobs.Status
	if err := json.NewDecoder(dresp.Body).Decode(&cancelled); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || cancelled.State != jobs.StateCancelled {
		t.Fatalf("delete = %d %+v", dresp.StatusCode, cancelled)
	}
	waitJobState(t, ts, st.ID, jobs.StateCancelled)
	var jr jobResultsResponse
	if resp := getJSON(t, ts, "/v1/jobs/"+st.ID+"/results", &jr); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancelled job results status %d, want 200", resp.StatusCode)
	}
	if jr.State != jobs.StateCancelled || jr.Queries[0].Complete {
		t.Fatalf("cancelled job results = %+v", jr)
	}
	close(gate.release)

	// Streaming a malformed query fails with a proper status (nothing was
	// written yet), and jobs listing works.
	if resp, _ := postJSON(t, ts, "/v1/query?stream=1", QueryRequest{Corpus: "demo-cafes", Query: "extract from if"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("stream bad query status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts, "/v1/query?stream=1", QueryRequest{Corpus: "nope", Query: DemoQueries["demo-cafes"]}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("stream unknown corpus status %d, want 404", resp.StatusCode)
	}
	var listing struct {
		Jobs []jobs.Status `json:"jobs"`
	}
	getJSON(t, ts, "/v1/jobs", &listing)
	if len(listing.Jobs) != 1 {
		t.Errorf("jobs listing = %+v, want the cancelled job", listing.Jobs)
	}
}

func cafeQuery2() string {
	return `extract x:Entity from \"blogs\" if () satisfying x (str(x) contains \"Cafe\" {1.0}) with threshold 0.5`
}

func mustEngine(svc *Service, name string) koko.Querier {
	eng, _, err := svc.Registry().Engine(name)
	if err != nil {
		panic(err)
	}
	return eng
}

// gatedQuerier blocks StreamShard (the job executor's per-shard evaluation
// call) until released — the HTTP-level instrument for cancellation tests
// (same idea as the jobs package's internal one).
type gatedQuerier struct {
	koko.Querier
	started chan struct{}
	release chan struct{}
	once    atomic.Bool
}

func newGatedQuerier(q koko.Querier) *gatedQuerier {
	return &gatedQuerier{Querier: q, started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatedQuerier) StreamShard(ctx context.Context, shard int, p *koko.ParsedQuery, qo *koko.QueryOptions, emit func([]koko.Tuple) error) (*koko.Result, error) {
	if g.once.CompareAndSwap(false, true) {
		close(g.started)
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-g.release:
	}
	return g.Querier.StreamShard(ctx, shard, p, qo, emit)
}

// stallQuerier streams a complete first shard, then stalls every later
// shard until the request context dies — the instrument for the
// client-disconnect test. The override sits on StreamShard because that is
// the per-shard call the registry's mutable wrapper fans out to.
type stallQuerier struct {
	koko.Querier
	cancelled chan struct{}
}

func (s *stallQuerier) StreamShard(ctx context.Context, shard int, p *koko.ParsedQuery, qo *koko.QueryOptions, emit func([]koko.Tuple) error) (*koko.Result, error) {
	if shard == 0 {
		return s.Querier.StreamShard(ctx, 0, p, qo, emit)
	}
	<-ctx.Done()
	close(s.cancelled)
	return nil, ctx.Err()
}

// TestStreamClientDisconnect: a client dropping mid-stream cancels the
// shard fan-out and releases the worker slot — the server must not leak
// the evaluation goroutines.
func TestStreamClientDisconnect(t *testing.T) {
	svc := NewService(Config{CacheSize: -1, MaxConcurrent: 1})
	RegisterDemoCorpora(svc.Registry(), 2)
	stall := &stallQuerier{Querier: mustEngine(svc, "demo-cafes"), cancelled: make(chan struct{})}
	svc.Registry().Register("stall", stall)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	b, _ := json.Marshal(QueryRequest{Corpus: "stall", Query: DemoQueries["demo-cafes"]})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query?stream=1", bytes.NewReader(b))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first flushed shard, then walk away.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading first stream line: %v", err)
	}
	cancel()
	resp.Body.Close()

	select {
	case <-stall.cancelled:
	case <-time.After(15 * time.Second):
		t.Fatal("server never cancelled the shard evaluation after client disconnect")
	}
	// The worker slot must come back: the next (buffered) query on the
	// 1-slot pool succeeds promptly.
	deadline := time.Now().Add(15 * time.Second)
	for {
		r, err := svc.Query(context.Background(), QueryRequest{Corpus: "demo-cafes", Query: DemoQueries["demo-cafes"]})
		if err == nil && len(r.Tuples) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool slot never released after disconnect (err=%v)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := svc.Metrics().InFlight; got != 0 {
		t.Errorf("in_flight = %d after disconnect drain, want 0", got)
	}
}

// TestQueryDuringReload: queries served concurrently with hot reloads never
// fail — each request resolves one consistent generation.
func TestQueryDuringReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.koko")
	names := []string{"a.txt", "b.txt", "c.txt", "d.txt"}
	texts := []string{
		"Cafe Vita serves smooth espresso daily.",
		"Cafe Juanita hired a champion barista.",
		"Cafe Umbria opened a second location.",
		"Cafe Ladro roasts beans nightly.",
	}
	if err := koko.NewEngine(koko.NewCorpus(names, texts), nil).Save(path); err != nil {
		t.Fatal(err)
	}
	svc := NewService(Config{CacheSize: 8, Shards: 2})
	if err := svc.Registry().LoadFile("c", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	reloadErrs := make(chan error, 1)
	go func() {
		defer close(reloadErrs)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := svc.Reload("c"); err != nil {
				reloadErrs <- err
				return
			}
		}
	}()

	q := DemoQueries["demo-cafes"]
	for i := 0; i < 25; i++ {
		resp, body := postJSON(t, ts, "/v1/query", QueryRequest{Corpus: "c", Query: q, NoCache: i%2 == 0})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d during reload: status %d: %s", i, resp.StatusCode, body)
		}
		var qr QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		if len(qr.Tuples) != 4 {
			t.Fatalf("query %d during reload: %d tuples, want 4", i, len(qr.Tuples))
		}
	}
	close(stop)
	if err, ok := <-reloadErrs; ok && err != nil {
		t.Fatalf("reload failed: %v", err)
	}
}

// TestCacheTTLEndToEnd: entries expire lazily after the configured TTL,
// per-corpus overrides win, and the unit-level cache honors per-put TTLs.
func TestCacheTTLEndToEnd(t *testing.T) {
	// Unit level.
	c := newResultCache(4, 0)
	r := &koko.Result{}
	c.put("a", r, 25*time.Millisecond)
	c.put("b", r, 0) // no expiry
	if _, ok := c.get("a"); !ok {
		t.Fatal("fresh entry missing")
	}
	time.Sleep(50 * time.Millisecond)
	if _, ok := c.get("a"); ok {
		t.Error("expired entry served")
	}
	if _, ok := c.get("b"); !ok {
		t.Error("no-TTL entry evicted")
	}
	if c.len() != 1 {
		t.Errorf("len = %d after lazy expiry, want 1", c.len())
	}

	// Service level, with a per-corpus override exempting "demo-food".
	svc := NewService(Config{
		CacheSize:         32,
		CacheTTL:          30 * time.Millisecond,
		CacheTTLPerCorpus: map[string]time.Duration{"demo-food": 0},
	})
	RegisterDemoCorpora(svc.Registry(), 1)
	ctx := context.Background()
	for _, corpus := range []string{"demo-cafes", "demo-food"} {
		if _, err := svc.Query(ctx, QueryRequest{Corpus: corpus, Query: DemoQueries[corpus]}); err != nil {
			t.Fatal(err)
		}
	}
	r2, err := svc.Query(ctx, QueryRequest{Corpus: "demo-cafes", Query: DemoQueries["demo-cafes"]})
	if err != nil || !r2.Cached {
		t.Fatalf("within-TTL repeat: cached=%v err=%v", r2 != nil && r2.Cached, err)
	}
	time.Sleep(60 * time.Millisecond)
	r3, err := svc.Query(ctx, QueryRequest{Corpus: "demo-cafes", Query: DemoQueries["demo-cafes"]})
	if err != nil || r3.Cached {
		t.Fatalf("past-TTL repeat: cached=%v err=%v (want fresh evaluation)", r3 != nil && r3.Cached, err)
	}
	r4, err := svc.Query(ctx, QueryRequest{Corpus: "demo-food", Query: DemoQueries["demo-food"]})
	if err != nil || !r4.Cached {
		t.Fatalf("per-corpus no-TTL override: cached=%v err=%v (want cache hit)", r4 != nil && r4.Cached, err)
	}
}

// TestJobsMetricsSnapshot: /v1/metrics carries the jobs-by-state view and
// stream counters.
func TestJobsMetricsSnapshot(t *testing.T) {
	svc := NewService(Config{CacheSize: -1})
	RegisterDemoCorpora(svc.Registry(), 2)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts, "/v1/jobs", jobs.Spec{Corpus: "demo-cafes", Queries: []string{DemoQueries["demo-cafes"]}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var st jobs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, ts, st.ID, jobs.StateDone)
	_, body = postJSON(t, ts, "/v1/query?stream=1", QueryRequest{Corpus: "demo-cafes", Query: DemoQueries["demo-cafes"]})
	if _, _, done, _ := readStream(t, body); done == nil {
		t.Fatal("stream incomplete")
	}

	var m MetricsSnapshot
	getJSON(t, ts, "/v1/metrics", &m)
	if m.Jobs.Submitted != 1 || m.Jobs.Done != 1 || m.Jobs.Retained != 1 {
		t.Errorf("jobs metrics = %+v", m.Jobs)
	}
	if m.StreamsTotal != 1 {
		t.Errorf("streams_total = %d, want 1", m.StreamsTotal)
	}
}
