package server

import (
	"encoding/json"
	"net/http"
)

// Mutable-corpus HTTP surface:
//
//	POST   /v1/corpora/{name}/documents          upsert one document
//	DELETE /v1/corpora/{name}/documents/{doc}    tombstone a document by name
//	POST   /v1/corpora/{name}/compact            fold delta + tombstones into
//	                                             the base shards
//	DELETE /v1/corpora/{name}                    unregister the corpus (and
//	                                             remove its durable state)
//
// Ingestion seals a new generation per document: the response carries the
// corpus info whose Generation the next query will see. Re-ingesting an
// existing document name replaces it (delete-then-add); deletes mask the
// document from every query immediately and compaction reclaims the bytes.
// Compacted results are byte-identical before and after.

// IngestRequest is one document to upsert into a corpus.
type IngestRequest struct {
	// Name is the document's name ("" defaults to "doc<global index>").
	// Re-using an existing name replaces that document.
	Name string `json:"name,omitempty"`
	// Text is the raw document text, parsed by the NLP pipeline on ingest.
	Text string `json:"text"`
}

// IngestResponse reports the corpus state after the ingest.
type IngestResponse struct {
	Corpus CorpusInfo `json:"corpus"`
	// Document is the ingested document's global index (queries attribute
	// tuples from it to this document id).
	Document int `json:"document"`
	// Updated reports that the ingest replaced an existing document with
	// the same name rather than adding a new one.
	Updated bool `json:"updated,omitempty"`
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeBadRequest(w, "invalid JSON body: "+err.Error())
		return
	}
	if req.Text == "" {
		writeBadRequest(w, `"text" is required`)
		return
	}
	info, doc, updated, err := s.Ingest(r.PathValue("name"), req.Name, req.Text)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Corpus: info, Document: doc, Updated: updated})
}

// DocumentDeleteResponse reports a document tombstoning.
type DocumentDeleteResponse struct {
	Corpus CorpusInfo `json:"corpus"`
	// Document is the deleted document's name; Deleted how many live
	// documents carried it (ingesting the same name repeatedly before this
	// endpoint existed could have stacked several).
	Document string `json:"document"`
	Deleted  int    `json:"deleted"`
}

func (s *Service) handleDocumentDelete(w http.ResponseWriter, r *http.Request) {
	info, n, err := s.DeleteDocument(r.PathValue("name"), r.PathValue("doc"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DocumentDeleteResponse{
		Corpus:   info,
		Document: r.PathValue("doc"),
		Deleted:  n,
	})
}

// CompactResponse reports what a manual compaction did.
type CompactResponse struct {
	Corpus CorpusInfo `json:"corpus"`
	// CompactedDocs / CompactedSentences are how many delta documents were
	// folded into the base (0 = the delta was already empty).
	CompactedDocs      int `json:"compacted_docs"`
	CompactedSentences int `json:"compacted_sentences"`
	// Millis is the rebuild wall time.
	Millis float64 `json:"millis"`
}

func (s *Service) handleCompact(w http.ResponseWriter, r *http.Request) {
	info, st, err := s.Compact(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, CompactResponse{
		Corpus:             info,
		CompactedDocs:      st.Docs,
		CompactedSentences: st.Sentences,
		Millis:             ms(st.Elapsed),
	})
}

func (s *Service) handleCorpusDelete(w http.ResponseWriter, r *http.Request) {
	info, err := s.DeleteCorpus(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": info.Name, "corpus": info})
}
