// Package server is the service layer of the KOKO reproduction: it turns
// the one-shot library engine into a long-running, concurrent query service
// (the deployment shape the paper assumes for "an engine behind real
// extraction workloads").
//
// The package is organized in three layers:
//
//   - Registry: a named, versioned collection of corpora. Each entry is a
//     fully built *koko.Engine, either loaded from a persisted .koko store
//     (hot-reloadable) or registered in memory. Every (re)load bumps a
//     registry-wide generation counter, which downstream caches key on.
//
//   - Service: the execution path shared by the HTTP server, the CLI, and
//     the benchmarks. It canonicalizes queries, consults a normalized-query
//     LRU result cache (keyed corpus × generation × canonical text, so a
//     reload invalidates implicitly), and runs cache misses through a
//     bounded worker pool over the engine's concurrency-safe QueryWith.
//
//   - HTTP: a JSON API over the Service — POST /v1/query, POST /v1/validate,
//     GET /v1/corpora, GET /v1/corpora/{name}/stats,
//     POST /v1/corpora/{name}/reload, GET /v1/healthz, GET /v1/metrics —
//     served by cmd/kokod.
package server
