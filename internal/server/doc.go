// Package server is the service layer of the KOKO reproduction: it turns
// the one-shot library engine into a long-running, concurrent query service
// (the deployment shape the paper assumes for "an engine behind real
// extraction workloads").
//
// The package is organized in three layers:
//
//   - Registry: a named, versioned collection of mutable corpora. Each
//     entry wraps its engines in a koko.Mutable — loaded from a persisted
//     .koko store (hot-reloadable) or registered in memory — and mirrors
//     the current immutable koko.Snapshot that queries resolve. Every
//     mutation (load, reload, single-document ingest, compaction) bumps a
//     registry-wide generation counter, which downstream caches key on;
//     readers holding an older snapshot are never disturbed.
//
//   - Service: the execution path shared by the HTTP server, the CLI, and
//     the benchmarks. It canonicalizes queries, consults a normalized-query
//     LRU result cache (keyed corpus × generation × canonical text, so any
//     mutation invalidates implicitly; admission is bounded by size and by
//     a cost floor), and runs cache misses through a bounded worker pool
//     over the snapshot's concurrency-safe QueryWith. It also drives the
//     mutable-corpus lifecycle: ingest, auto- and interval compaction, and
//     corpus deletion.
//
//   - HTTP: a JSON API over the Service — POST /v1/query, POST /v1/validate,
//     GET /v1/corpora, GET /v1/corpora/{name}/stats,
//     POST /v1/corpora/{name}/reload, POST /v1/corpora/{name}/documents,
//     POST /v1/corpora/{name}/compact, DELETE /v1/corpora/{name},
//     the /v1/jobs family, GET /v1/healthz, GET /v1/metrics —
//     served by cmd/kokod.
package server
