package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/koko"
	"repro/koko/remote"
)

// handleShardEval is the worker side of distributed execution:
// POST /v1/internal/shard-eval evaluates exactly one shard of a local
// corpus and returns the partial with its rebasing offsets, the serving
// generation, and a payload checksum. The evaluation claims one slot of
// the same worker pool interactive queries use, so a coordinator fanning
// out cannot oversubscribe a worker that also serves direct traffic.
func (s *Service) handleShardEval(w http.ResponseWriter, r *http.Request) {
	var req remote.ShardEvalRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeBadRequest(w, "invalid JSON body: "+err.Error())
		return
	}
	if req.Corpus == "" || req.Query == "" {
		writeBadRequest(w, `"corpus" and "query" are required`)
		return
	}
	eng, gen, err := s.reg.Engine(req.Corpus)
	if err != nil {
		writeError(w, err)
		return
	}
	if req.Generation != 0 && req.Generation != gen {
		// The coordinator pinned a snapshot this worker no longer serves
		// (reload/ingest/compaction moved the corpus on). Answering with
		// different data would silently break the byte-identical merge.
		writeError(w, fmt.Errorf("corpus %q is at generation %d, request pinned %d: %w",
			req.Corpus, gen, req.Generation, ErrGenerationMoved))
		return
	}
	if req.Shard < 0 || req.Shard >= eng.NumShards() {
		writeBadRequest(w, fmt.Sprintf("shard %d out of range (corpus %q has %d)", req.Shard, req.Corpus, eng.NumShards()))
		return
	}
	parsed, err := koko.ParseQuery(req.Query)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadQuery, err))
		return
	}
	if err := s.Acquire(r.Context()); err != nil {
		writeError(w, err)
		return
	}
	if req.Chunk {
		defer s.Release()
		s.streamShardEval(w, r, eng, gen, &req, parsed)
		return
	}
	part, err := eng.RunShard(r.Context(), req.Shard, parsed, &koko.QueryOptions{
		Explain: req.Explain,
		Workers: s.ShardWorkers(req.Workers),
		Plan:    s.effectivePlan(req.Plan),
	})
	s.Release()
	if err != nil {
		if ctxDone(err) {
			writeError(w, err)
			return
		}
		writeError(w, fmt.Errorf("%w: %v", ErrBadQuery, err))
		return
	}
	s.metrics.shardEvalsServed.Add(1)
	writeJSON(w, http.StatusOK, remote.ShardEvalResponse{
		Result:     part.Res,
		DocOffset:  part.DocOffset,
		SentOffset: part.SentOffset,
		Generation: gen,
		Checksum:   remote.PartialChecksum(part.Res),
	})
}

// streamShardEval is the chunked (ShardEvalRequest.Chunk) delivery mode:
// the shard evaluates through the engine's streaming path and tuple batches
// leave as NDJSON ChunkLines while evaluation is still running, so the
// worker never materializes the shard's full result. Batches are already in
// global corpus coordinates and carry per-batch checksums; the terminal done
// line carries the counters-only summary, the after-Skip tuple count, and
// the end-of-stream checksum the coordinator cross-checks. Skip implements
// retry-resume: evaluation is deterministic and generation-pinned, so
// dropping the first Skip tuples re-creates exactly the suffix a resuming
// coordinator is missing. Errors after the 200 header travel as a terminal
// Error line.
func (s *Service) streamShardEval(w http.ResponseWriter, r *http.Request, eng koko.Querier, gen uint64, req *remote.ShardEvalRequest, parsed *koko.ParsedQuery) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	line := func(l remote.ChunkLine) error {
		if err := enc.Encode(l); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	skip := req.Skip
	sent := 0
	sum, err := eng.StreamShard(r.Context(), req.Shard, parsed, &koko.QueryOptions{
		Explain: req.Explain,
		Workers: s.ShardWorkers(req.Workers),
		Plan:    s.effectivePlan(req.Plan),
	}, func(ts []koko.Tuple) error {
		if skip > 0 {
			if skip >= len(ts) {
				skip -= len(ts)
				return nil
			}
			ts = ts[skip:]
			skip = 0
		}
		if err := line(remote.ChunkLine{Tuples: ts, Checksum: remote.TuplesChecksum(ts)}); err != nil {
			return err
		}
		sent += len(ts)
		return nil
	})
	if err != nil {
		_ = line(remote.ChunkLine{Error: err.Error()})
		return
	}
	s.metrics.shardEvalsServed.Add(1)
	var cand, matched int
	if sum != nil {
		cand, matched = sum.Candidates, sum.Matched
	}
	_ = line(remote.ChunkLine{Done: &remote.ChunkDone{
		Summary:    sum,
		Tuples:     sent,
		Generation: gen,
		Checksum:   remote.CountersChecksum(cand, matched, sent),
	}})
}
