package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/koko"
	"repro/koko/remote"
)

// handleShardEval is the worker side of distributed execution:
// POST /v1/internal/shard-eval evaluates exactly one shard of a local
// corpus and returns the partial with its rebasing offsets, the serving
// generation, and a payload checksum. The evaluation claims one slot of
// the same worker pool interactive queries use, so a coordinator fanning
// out cannot oversubscribe a worker that also serves direct traffic.
func (s *Service) handleShardEval(w http.ResponseWriter, r *http.Request) {
	var req remote.ShardEvalRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	if req.Corpus == "" || req.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: `"corpus" and "query" are required`})
		return
	}
	eng, gen, err := s.reg.Engine(req.Corpus)
	if err != nil {
		writeError(w, err)
		return
	}
	if req.Generation != 0 && req.Generation != gen {
		// The coordinator pinned a snapshot this worker no longer serves
		// (reload/ingest/compaction moved the corpus on). Answering with
		// different data would silently break the byte-identical merge.
		writeError(w, fmt.Errorf("corpus %q is at generation %d, request pinned %d: %w",
			req.Corpus, gen, req.Generation, ErrGenerationMoved))
		return
	}
	if req.Shard < 0 || req.Shard >= eng.NumShards() {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("shard %d out of range (corpus %q has %d)", req.Shard, req.Corpus, eng.NumShards())})
		return
	}
	parsed, err := koko.ParseQuery(req.Query)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadQuery, err))
		return
	}
	if err := s.Acquire(r.Context()); err != nil {
		writeError(w, err)
		return
	}
	part, err := eng.RunShard(r.Context(), req.Shard, parsed, &koko.QueryOptions{
		Explain: req.Explain,
		Workers: s.ShardWorkers(req.Workers),
		Plan:    s.effectivePlan(req.Plan),
	})
	s.Release()
	if err != nil {
		if ctxDone(err) {
			writeError(w, err)
			return
		}
		writeError(w, fmt.Errorf("%w: %v", ErrBadQuery, err))
		return
	}
	s.metrics.shardEvalsServed.Add(1)
	writeJSON(w, http.StatusOK, remote.ShardEvalResponse{
		Result:     part.Res,
		DocOffset:  part.DocOffset,
		SentOffset: part.SentOffset,
		Generation: gen,
		Checksum:   remote.PartialChecksum(part.Res),
	})
}
