package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/koko"
)

// Sentinel errors: the HTTP layer maps these to status codes.
var (
	// ErrNotFound marks an unknown corpus name (404).
	ErrNotFound = errors.New("not found")
	// ErrBadQuery marks a malformed KOKO query (400).
	ErrBadQuery = errors.New("bad query")
	// ErrNotReloadable marks a reload of an in-memory corpus (409).
	ErrNotReloadable = errors.New("not reloadable")
)

// Config sizes a Service.
type Config struct {
	// MaxConcurrent bounds how many queries evaluate at once (the worker
	// pool). Excess requests wait (or fail when their context is done).
	// Default: 2 × GOMAXPROCS.
	MaxConcurrent int
	// CacheSize is the result-cache capacity in entries. 0 means the
	// default (256); negative disables caching.
	CacheSize int
	// CacheMaxTuples bounds the total tuples retained across all cache
	// entries (the dominant memory cost of a cached result). 0 means the
	// default (100000); negative disables the tuple budget, leaving only
	// the entry-count bound.
	CacheMaxTuples int
	// DefaultWorkers is the per-query intra-engine worker count applied
	// when a request does not specify one. Default 1 (sequential): under
	// concurrent load, cross-request parallelism already saturates cores.
	DefaultWorkers int
	// Shards > 1 partitions every corpus loaded from disk (from a plain,
	// non-manifest store) into that many doc-range shards; queries then fan
	// out across shard engines and merge in document order. Stores saved as
	// sharded manifests keep their on-disk shard count.
	Shards int
	// ShardParallel bounds how many shards evaluate concurrently within one
	// query. 0 means auto: the fan-out scales inversely with the worker
	// pool (pool × fan-out ≈ 2 × GOMAXPROCS), so a saturated server keeps
	// total evaluation goroutines near the pre-sharding level and an
	// interactive one (small -pool) gets low-latency wide fan-out.
	// Negative leaves the engine default, min(shards, GOMAXPROCS).
	ShardParallel int
	// LoadOptions is applied to every corpus loaded from disk.
	LoadOptions *koko.Options
}

// Service executes queries against a Registry through a result cache and a
// bounded worker pool. It is the shared execution path of kokod's HTTP
// handlers, the koko CLI, and the kokobench load experiment.
type Service struct {
	reg        *Registry
	cache      *resultCache
	sem        chan struct{}
	metrics    Metrics
	defWorkers int
}

// NewService builds a Service with an empty registry.
func NewService(cfg Config) *Service {
	maxc := cfg.MaxConcurrent
	if maxc <= 0 {
		maxc = 2 * runtime.GOMAXPROCS(0)
	}
	size := cfg.CacheSize
	if size == 0 {
		size = 256
	}
	maxTuples := cfg.CacheMaxTuples
	if maxTuples == 0 {
		maxTuples = 100000
	}
	workers := cfg.DefaultWorkers
	if workers <= 0 {
		workers = 1
	}
	reg := NewRegistry(cfg.LoadOptions)
	reg.SetDefaultShards(cfg.Shards)
	sp := cfg.ShardParallel
	if sp == 0 {
		if sp = 2 * runtime.GOMAXPROCS(0) / maxc; sp < 1 {
			sp = 1
		}
	}
	reg.SetShardParallelism(sp)
	return &Service{
		reg:        reg,
		cache:      newResultCache(size, maxTuples),
		sem:        make(chan struct{}, maxc),
		defWorkers: workers,
	}
}

// Registry exposes the corpus registry for loading and listing.
func (s *Service) Registry() *Registry { return s.reg }

// QueryRequest is one query against a named corpus.
type QueryRequest struct {
	Corpus string `json:"corpus"`
	Query  string `json:"query"`
	// Explain attaches per-condition evidence to every tuple.
	Explain bool `json:"explain,omitempty"`
	// Workers overrides the per-query worker count (0 = service default).
	Workers int `json:"workers,omitempty"`
	// NoCache bypasses the result cache (read and write) for this request.
	NoCache bool `json:"no_cache,omitempty"`
}

// TupleResult is the JSON form of one output tuple.
type TupleResult struct {
	SentenceID int                `json:"sentence_id"`
	Document   int                `json:"document"`
	Values     []string           `json:"values"`
	Scores     map[string]float64 `json:"scores,omitempty"`
	Evidence   []EvidenceResult   `json:"evidence,omitempty"`
}

// EvidenceResult is the JSON form of one explanation row.
type EvidenceResult struct {
	Variable     string  `json:"variable"`
	Condition    string  `json:"condition"`
	Weight       float64 `json:"weight"`
	Confidence   float64 `json:"confidence"`
	Contribution float64 `json:"contribution"`
}

// PhaseMillis is the Table 2 per-phase breakdown in milliseconds.
type PhaseMillis struct {
	Normalize   float64 `json:"normalize_ms"`
	DPLI        float64 `json:"dpli_ms"`
	LoadArticle float64 `json:"load_article_ms"`
	GSP         float64 `json:"gsp_ms"`
	Extract     float64 `json:"extract_ms"`
	Satisfying  float64 `json:"satisfying_ms"`
	Total       float64 `json:"total_ms"`
}

// QueryResponse is the outcome of one QueryRequest.
type QueryResponse struct {
	Corpus     string        `json:"corpus"`
	Generation uint64        `json:"generation"`
	Tuples     []TupleResult `json:"tuples"`
	Candidates int           `json:"candidates"`
	Matched    int           `json:"matched"`
	// Cached reports whether the result came from the result cache; Phases
	// then describes the original (cached) evaluation.
	Cached bool        `json:"cached"`
	Phases PhaseMillis `json:"phases"`
	// ServiceMillis is this request's wall time inside the service,
	// including any wait for a worker slot.
	ServiceMillis float64 `json:"service_ms"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func phasesOf(r *koko.Result) PhaseMillis {
	return PhaseMillis{
		Normalize:   ms(r.Phases.Normalize),
		DPLI:        ms(r.Phases.DPLI),
		LoadArticle: ms(r.Phases.LoadArticle),
		GSP:         ms(r.Phases.GSP),
		Extract:     ms(r.Phases.Extract),
		Satisfying:  ms(r.Phases.Satisfying),
		Total:       ms(r.Elapsed),
	}
}

// Query canonicalizes, consults the cache, and evaluates on miss under the
// worker-pool bound. ctx cancellation is honored while waiting for a slot.
func (s *Service) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	t0 := time.Now()
	s.metrics.queriesTotal.Add(1)

	parsed, err := koko.ParseQuery(req.Query)
	if err != nil {
		s.metrics.queryErrors.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	eng, gen, err := s.reg.Engine(req.Corpus)
	if err != nil {
		s.metrics.queryErrors.Add(1)
		return nil, err
	}

	// Workers changes only scheduling, never results, so it is excluded
	// from the key; Explain changes the tuples' evidence, so it is part
	// of it.
	key := fmt.Sprintf("%s|%d|%t|%s", req.Corpus, gen, req.Explain, parsed.Canonical())
	if !req.NoCache {
		if res, ok := s.cache.get(key); ok {
			s.metrics.cacheHits.Add(1)
			resp := s.respond(req.Corpus, gen, res, true)
			resp.ServiceMillis = ms(time.Since(t0))
			return resp, nil
		}
	}
	s.metrics.cacheMisses.Add(1)

	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.metrics.queryErrors.Add(1)
		return nil, ctx.Err()
	}
	s.metrics.enter()
	res, err := eng.RunParsed(parsed, &koko.QueryOptions{
		Explain: req.Explain,
		Workers: s.workersFor(req.Workers, fanoutOf(eng)),
	})
	s.metrics.exit()
	<-s.sem
	if err != nil {
		s.metrics.queryErrors.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	s.metrics.queryNanos.Add(res.Elapsed.Nanoseconds())
	if !req.NoCache {
		s.cache.put(key, res)
	}
	resp := s.respond(req.Corpus, gen, res, false)
	resp.ServiceMillis = ms(time.Since(t0))
	return resp, nil
}

// fanoutOf reports how many shard evaluations eng actually runs at once
// for one query (1 for a plain engine).
func fanoutOf(eng koko.Querier) int {
	if se, ok := eng.(*koko.ShardedEngine); ok {
		return se.Parallelism()
	}
	return 1
}

func (s *Service) workersFor(reqWorkers, fanout int) int {
	w := s.defWorkers
	if reqWorkers > 0 {
		w = reqWorkers
	}
	// Clamp request-supplied fan-out: a client must not be able to spawn
	// unbounded goroutines per query. Workers applies inside each of the
	// fanout concurrently-evaluating shards, so the budget divides by the
	// engine's effective fan-out (not its shard count — shards that queue
	// behind the fan-out bound cost nothing extra) to keep total per-query
	// parallelism at GOMAXPROCS.
	max := runtime.GOMAXPROCS(0)
	if fanout > 1 {
		max /= fanout
		if max < 1 {
			max = 1
		}
	}
	if w > max {
		w = max
	}
	return w
}

// respond renders a (possibly shared, cached) engine result without
// mutating it.
func (s *Service) respond(corpus string, gen uint64, res *koko.Result, cached bool) *QueryResponse {
	resp := &QueryResponse{
		Corpus:     corpus,
		Generation: gen,
		Tuples:     make([]TupleResult, 0, len(res.Tuples)),
		Candidates: res.Candidates,
		Matched:    res.Matched,
		Cached:     cached,
		Phases:     phasesOf(res),
	}
	s.metrics.tuplesReturned.Add(int64(len(res.Tuples)))
	for _, t := range res.Tuples {
		tr := TupleResult{
			SentenceID: t.SentenceID,
			Document:   t.Document,
			Values:     t.Values,
			Scores:     t.Scores,
		}
		for _, ev := range t.Evidence {
			tr.Evidence = append(tr.Evidence, EvidenceResult{
				Variable:     ev.Variable,
				Condition:    ev.Condition,
				Weight:       ev.Weight,
				Confidence:   ev.Confidence,
				Contribution: ev.Contribution,
			})
		}
		resp.Tuples = append(resp.Tuples, tr)
	}
	return resp
}

// Validate checks query syntax; a nil error means the query parses.
func (s *Service) Validate(query string) error {
	s.metrics.validateTotal.Add(1)
	if err := koko.Validate(query); err != nil {
		return fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	return nil
}

// Reload hot-swaps a file-backed corpus; the generation bump invalidates
// its cache entries.
func (s *Service) Reload(name string) (CorpusInfo, error) {
	info, err := s.reg.Reload(name)
	if err == nil {
		s.metrics.reloadsTotal.Add(1)
	}
	return info, err
}

// Metrics returns a point-in-time counter snapshot.
func (s *Service) Metrics() MetricsSnapshot {
	m := &s.metrics
	return MetricsSnapshot{
		QueriesTotal:     m.queriesTotal.Load(),
		QueryErrors:      m.queryErrors.Load(),
		CacheHits:        m.cacheHits.Load(),
		CacheMisses:      m.cacheMisses.Load(),
		CacheEntries:     s.cache.len(),
		CacheTuples:      s.cache.tupleCount(),
		ValidateTotal:    m.validateTotal.Load(),
		ReloadsTotal:     m.reloadsTotal.Load(),
		TuplesReturned:   m.tuplesReturned.Load(),
		QueryMillisTotal: float64(m.queryNanos.Load()) / 1e6,
		InFlight:         m.inFlight.Load(),
		PeakInFlight:     m.peakInFlight.Load(),
		Corpora:          s.reg.Len(),
	}
}
