package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/koko/index/blockstore"
	"repro/internal/koko/wal"
	"repro/internal/server/jobs"
	"repro/koko"
	"repro/koko/remote"
)

// Sentinel errors: the HTTP layer maps these to status codes.
var (
	// ErrNotFound marks an unknown corpus name (404).
	ErrNotFound = errors.New("not found")
	// ErrBadQuery marks a malformed KOKO query (400).
	ErrBadQuery = errors.New("bad query")
	// ErrNotReloadable marks a reload of an in-memory corpus (409).
	ErrNotReloadable = errors.New("not reloadable")
	// ErrRemoteCorpus marks a local mutation (ingest, document delete,
	// compact) of a corpus served by remote workers (409).
	ErrRemoteCorpus = errors.New("remote corpus")
	// ErrGenerationMoved marks a shard-eval pinned to a generation the
	// worker no longer serves (409): the coordinator must re-discover.
	ErrGenerationMoved = errors.New("generation moved")
)

// Config sizes a Service.
type Config struct {
	// MaxConcurrent bounds how many queries evaluate at once (the worker
	// pool). Excess requests wait (or fail when their context is done).
	// Default: 2 × GOMAXPROCS.
	MaxConcurrent int
	// CacheSize is the result-cache capacity in entries. 0 means the
	// default (256); negative disables caching.
	CacheSize int
	// CacheMaxTuples bounds the total tuples retained across all cache
	// entries (the dominant memory cost of a cached result). 0 means the
	// default (100000); negative disables the tuple budget, leaving only
	// the entry-count bound.
	CacheMaxTuples int
	// DefaultWorkers is the per-query intra-engine worker count applied
	// when a request does not specify one. Default 1 (sequential): under
	// concurrent load, cross-request parallelism already saturates cores.
	DefaultWorkers int
	// Shards > 1 partitions every corpus loaded from disk (from a plain,
	// non-manifest store) into that many doc-range shards; queries then fan
	// out across shard engines and merge in document order. Stores saved as
	// sharded manifests keep their on-disk shard count.
	Shards int
	// ShardParallel bounds how many shards evaluate concurrently within one
	// query. 0 means auto: the fan-out scales inversely with the worker
	// pool (pool × fan-out ≈ 2 × GOMAXPROCS), so a saturated server keeps
	// total evaluation goroutines near the pre-sharding level and an
	// interactive one (small -pool) gets low-latency wide fan-out.
	// Negative leaves the engine default, min(shards, GOMAXPROCS).
	ShardParallel int
	// CacheTTL, when > 0, expires result-cache entries that many seconds'
	// worth of time after they are stored (lazily, at lookup). 0 disables
	// expiry. Per-corpus overrides in CacheTTLPerCorpus win over this
	// default.
	CacheTTL time.Duration
	// CacheMinCost is the cost-aware admission threshold: only results
	// whose evaluation took at least this long are cached, so cheap
	// queries stop evicting expensive warm entries. 0 admits everything.
	CacheMinCost time.Duration
	// MaxDeltaDocs caps how many ingested documents a corpus's delta index
	// may accumulate before a background compaction is kicked off
	// automatically. 0 means the default (256); negative disables
	// auto-compaction (compact via the API or the interval loop).
	MaxDeltaDocs int
	// CacheTTLPerCorpus overrides CacheTTL for named corpora (the
	// time-sensitive ones); a zero value for a name disables expiry for it.
	CacheTTLPerCorpus map[string]time.Duration
	// MaxJobs bounds how many async jobs may be pending or running at once
	// (0 = default 16).
	MaxJobs int
	// JobResultsTTL is how long finished jobs stay fetchable (0 = default
	// 15m, negative = until deleted).
	JobResultsTTL time.Duration
	// JobRetainedTuples bounds the total tuples retained across finished
	// jobs' results; oldest-finished jobs are purged beyond it (0 = default
	// 200000, negative = unbounded).
	JobRetainedTuples int
	// DisablePlan turns off the statistics-free query planner service-wide:
	// queries evaluate conditions in written order unless a request says
	// plan:"on" explicitly (the kokod -plan=off flag).
	DisablePlan bool
	// LoadOptions is applied to every corpus loaded from disk.
	LoadOptions *koko.Options
	// DataDir, when non-empty, makes every corpus durable: ingested
	// documents and deletes are written through a per-corpus WAL under
	// DataDir/<name> and recovered by replay at the next startup.
	DataDir string
	// WALSync is the WAL fsync policy for durable corpora (none, batch
	// group-commit, or always). Ignored without DataDir.
	WALSync wal.SyncPolicy
	// WALMaxBytes, when > 0, kicks a background compaction whenever a
	// corpus's WAL grows past this size — compaction folds the log into the
	// shard files and truncates it, bounding both log size and restart
	// replay time. Ignored without DataDir.
	WALMaxBytes int64
	// StoreCacheBytes sets the process-wide decoded-block cache budget for
	// mmap'd block stores (bytes of decoded posting lists kept resident).
	// 0 keeps the default (256 MiB); negative makes the cache unbounded.
	StoreCacheBytes int64
}

// Service executes queries against a Registry through a result cache and a
// bounded worker pool. It is the shared execution path of kokod's HTTP
// handlers, the koko CLI, the async job executor, and the kokobench load
// experiment.
type Service struct {
	reg          *Registry
	cache        *resultCache
	sem          chan struct{}
	metrics      Metrics
	defWorkers   int
	jobs         *jobs.Manager
	cacheTTL     time.Duration
	cacheTTLBy   map[string]time.Duration
	cacheMinCost time.Duration
	maxDeltaDocs int
	walMaxBytes  int64
	planOff      bool
	// shardPar is the resolved per-query shard fan-out bound, kept so
	// remote engines connected later inherit the same budget as local ones.
	shardPar int
	// rpool is the coordinator-side worker pool (nil unless ConnectWorkers
	// ran); its counters feed the remote_* metrics. Atomic: Metrics() may
	// race ConnectWorkers.
	rpool atomic.Pointer[remote.Pool]
	// compacting tracks corpora with an auto-compaction in flight so a
	// burst of ingests kicks off at most one background fold per corpus.
	compacting sync.Map
}

// NewService builds a Service with an empty registry.
func NewService(cfg Config) *Service {
	maxc := cfg.MaxConcurrent
	if maxc <= 0 {
		maxc = 2 * runtime.GOMAXPROCS(0)
	}
	size := cfg.CacheSize
	if size == 0 {
		size = 256
	}
	maxTuples := cfg.CacheMaxTuples
	if maxTuples == 0 {
		maxTuples = 100000
	}
	workers := cfg.DefaultWorkers
	if workers <= 0 {
		workers = 1
	}
	reg := NewRegistry(cfg.LoadOptions)
	reg.SetDefaultShards(cfg.Shards)
	if cfg.DataDir != "" {
		reg.SetDurability(cfg.DataDir, cfg.WALSync)
	}
	sp := cfg.ShardParallel
	if sp == 0 {
		if sp = 2 * runtime.GOMAXPROCS(0) / maxc; sp < 1 {
			sp = 1
		}
	}
	reg.SetShardParallelism(sp)
	maxDelta := cfg.MaxDeltaDocs
	if maxDelta == 0 {
		maxDelta = 256
	}
	if cfg.StoreCacheBytes > 0 {
		blockstore.SetDefaultBudget(cfg.StoreCacheBytes)
	} else if cfg.StoreCacheBytes < 0 {
		blockstore.SetDefaultBudget(0) // 0 budget = unbounded
	}
	s := &Service{
		reg:          reg,
		cache:        newResultCache(size, maxTuples),
		sem:          make(chan struct{}, maxc),
		defWorkers:   workers,
		cacheTTL:     cfg.CacheTTL,
		cacheTTLBy:   cfg.CacheTTLPerCorpus,
		cacheMinCost: cfg.CacheMinCost,
		maxDeltaDocs: maxDelta,
		walMaxBytes:  cfg.WALMaxBytes,
		planOff:      cfg.DisablePlan,
		shardPar:     sp,
	}
	s.jobs = jobs.New(s, jobs.Config{
		MaxActive:         cfg.MaxJobs,
		ResultsTTL:        cfg.JobResultsTTL,
		MaxRetainedTuples: cfg.JobRetainedTuples,
	})
	return s
}

// Registry exposes the corpus registry for loading and listing.
func (s *Service) Registry() *Registry { return s.reg }

// Jobs exposes the async job manager (the /v1/jobs endpoints and the jobs
// benchmark drive it directly).
func (s *Service) Jobs() *jobs.Manager { return s.jobs }

// The Service is the job executor's runtime: it hands out corpus engines
// and worker-pool slots so batch jobs and interactive queries contend for
// exactly the same bounded resources.
var _ jobs.Runtime = (*Service)(nil)

// Engine resolves a corpus name to its engine and current generation.
func (s *Service) Engine(name string) (koko.Querier, uint64, error) {
	return s.reg.Engine(name)
}

// Acquire claims one worker-pool slot, honoring ctx while waiting.
func (s *Service) Acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot claimed with Acquire.
func (s *Service) Release() { <-s.sem }

// ShardWorkers clamps a requested worker count for a single-shard
// evaluation (jobs evaluate shards one at a time, so the whole per-query
// budget applies).
func (s *Service) ShardWorkers(requested int) int {
	return s.workersFor(requested, 1)
}

// ttlFor resolves the result-cache TTL for a corpus: per-corpus override
// first, then the service default (0 = no expiry).
func (s *Service) ttlFor(corpus string) time.Duration {
	if ttl, ok := s.cacheTTLBy[corpus]; ok {
		return ttl
	}
	return s.cacheTTL
}

// QueryRequest is one query against a named corpus.
type QueryRequest struct {
	Corpus string `json:"corpus"`
	Query  string `json:"query"`
	// Explain attaches per-condition evidence to every tuple.
	Explain bool `json:"explain,omitempty"`
	// Workers overrides the per-query worker count (0 = service default).
	Workers int `json:"workers,omitempty"`
	// Plan selects the query planner for this request: "on" orders
	// conditions by selectivity, "off" evaluates in written order, ""
	// inherits the service default (-plan flag). Tuples are identical
	// either way; only evaluation order (and the plan report) changes.
	Plan string `json:"plan,omitempty"`
	// NoCache bypasses the result cache (read and write) for this request.
	NoCache bool `json:"no_cache,omitempty"`
	// Partial opts into graceful degradation on a remote corpus
	// (?partial=ok): if some shards' every replica is down, the response
	// carries the surviving shards' tuples with Degraded set instead of
	// failing. Ignored for local corpora (local shards don't fail
	// independently) and for streamed responses.
	Partial bool `json:"partial,omitempty"`
}

// TupleResult is the JSON form of one output tuple.
type TupleResult struct {
	SentenceID int                `json:"sentence_id"`
	Document   int                `json:"document"`
	Values     []string           `json:"values"`
	Scores     map[string]float64 `json:"scores,omitempty"`
	Evidence   []EvidenceResult   `json:"evidence,omitempty"`
}

// EvidenceResult is the JSON form of one explanation row.
type EvidenceResult struct {
	Variable     string  `json:"variable"`
	Condition    string  `json:"condition"`
	Weight       float64 `json:"weight"`
	Confidence   float64 `json:"confidence"`
	Contribution float64 `json:"contribution"`
}

// PhaseMillis is the Table 2 per-phase breakdown in milliseconds (plus the
// planner's own phase — planning time is reported, not folded into extract).
type PhaseMillis struct {
	Normalize   float64 `json:"normalize_ms"`
	DPLI        float64 `json:"dpli_ms"`
	Plan        float64 `json:"plan_ms"`
	LoadArticle float64 `json:"load_article_ms"`
	GSP         float64 `json:"gsp_ms"`
	Extract     float64 `json:"extract_ms"`
	Satisfying  float64 `json:"satisfying_ms"`
	Total       float64 `json:"total_ms"`
}

// QueryResponse is the outcome of one QueryRequest.
type QueryResponse struct {
	Corpus     string        `json:"corpus"`
	Generation uint64        `json:"generation"`
	Tuples     []TupleResult `json:"tuples"`
	Candidates int           `json:"candidates"`
	Matched    int           `json:"matched"`
	// Cached reports whether the result came from the result cache; Phases
	// then describes the original (cached) evaluation.
	Cached bool        `json:"cached"`
	Phases PhaseMillis `json:"phases"`
	// Plan reports the planner's chosen condition order with estimated vs
	// actual binding counts (absent when planning is off or the query
	// short-circuited before extraction).
	Plan *koko.PlanInfo `json:"plan,omitempty"`
	// ServiceMillis is this request's wall time inside the service,
	// including any wait for a worker slot.
	ServiceMillis float64 `json:"service_ms"`
	// Degraded marks a partial=ok response that is missing shards whose
	// every replica failed; FailedShards lists them. A degraded result is
	// never admitted to the result cache.
	Degraded     bool  `json:"degraded,omitempty"`
	FailedShards []int `json:"failed_shards,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func phasesOf(r *koko.Result) PhaseMillis {
	return PhaseMillis{
		Normalize:   ms(r.Phases.Normalize),
		DPLI:        ms(r.Phases.DPLI),
		Plan:        ms(r.Phases.Plan),
		LoadArticle: ms(r.Phases.LoadArticle),
		GSP:         ms(r.Phases.GSP),
		Extract:     ms(r.Phases.Extract),
		Satisfying:  ms(r.Phases.Satisfying),
		Total:       ms(r.Elapsed),
	}
}

// prepare is the shared prologue of buffered and streamed evaluation:
// count the query, parse it, resolve the corpus, and derive the cache key.
// Keeping it in one place is what keeps the two modes' error
// classification and cache keying from drifting apart.
func (s *Service) prepare(req QueryRequest) (parsed *koko.ParsedQuery, eng koko.Querier, gen uint64, key, plan string, err error) {
	s.metrics.queriesTotal.Add(1)
	parsed, err = koko.ParseQuery(req.Query)
	if err != nil {
		s.metrics.queryErrors.Add(1)
		return nil, nil, 0, "", "", fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	eng, gen, err = s.reg.Engine(req.Corpus)
	if err != nil {
		s.metrics.queryErrors.Add(1)
		return nil, nil, 0, "", "", err
	}
	plan = s.effectivePlan(req.Plan)
	return parsed, eng, gen, cacheKey(req, gen, parsed, plan), plan, nil
}

// effectivePlan resolves a request's planner selection against the service
// default to exactly "on" or "off" — the normalized form both the cache key
// and the engine option use, so "" and an explicit match of the default
// share one cache entry.
func (s *Service) effectivePlan(req string) string {
	switch req {
	case "on", "off":
		return req
	}
	if s.planOff {
		return "off"
	}
	return "on"
}

// cacheLookup consults the result cache (unless bypassed) and keeps the
// hit/miss counters for both evaluation modes.
func (s *Service) cacheLookup(key string, noCache bool) (*koko.Result, bool) {
	if !noCache {
		if res, ok := s.cache.get(key); ok {
			s.metrics.cacheHits.Add(1)
			return res, true
		}
	}
	s.metrics.cacheMisses.Add(1)
	return nil, false
}

// Query canonicalizes, consults the cache, and evaluates on miss under the
// worker-pool bound. ctx cancellation is honored while waiting for a slot.
func (s *Service) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	t0 := time.Now()
	parsed, eng, gen, key, plan, err := s.prepare(req)
	if err != nil {
		return nil, err
	}
	if res, ok := s.cacheLookup(key, req.NoCache); ok {
		resp := s.respond(req.Corpus, gen, res, true)
		resp.ServiceMillis = ms(time.Since(t0))
		return resp, nil
	}

	if err := s.Acquire(ctx); err != nil {
		s.metrics.queryCancels.Add(1)
		return nil, err
	}
	qo := &koko.QueryOptions{
		Explain: req.Explain,
		Workers: s.workersFor(req.Workers, fanoutOf(eng)),
		Plan:    plan,
		// Engines without failure domains ignore Degraded, so Partial is safe
		// to thread through unconditionally.
		Degraded: req.Partial,
	}
	var res *koko.Result
	var failed []int
	s.metrics.enter()
	seq, err2 := eng.Run(ctx, parsed, qo)
	if err2 == nil {
		res, err2 = seq.Collect()
	}
	if err2 == nil {
		failed = seq.FailedShards()
		if n := seq.NumShards(); len(failed) > 0 && len(failed) == n {
			// Degradation needs survivors; losing every shard is an outage.
			err2 = fmt.Errorf("corpus %q: all %d shards failed: %w", req.Corpus, n, seq.FailedErr())
		}
	}
	s.metrics.exit()
	s.Release()
	if err2 != nil {
		if ctxDone(err2) {
			s.metrics.queryCancels.Add(1)
			return nil, err2
		}
		s.metrics.queryErrors.Add(1)
		if errors.Is(err2, remote.ErrShardUnavailable) {
			// A dead shard set is the backend's failure, not the query's.
			return nil, err2
		}
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err2)
	}
	s.metrics.queryNanos.Add(res.Elapsed.Nanoseconds())
	s.recordPlan(res)
	if len(failed) > 0 {
		// A degraded result is not the query's true answer; caching it
		// would serve the gap long after the workers recover.
		s.metrics.degradedQueries.Add(1)
	} else {
		s.cachePut(key, req, res)
	}
	resp := s.respond(req.Corpus, gen, res, false)
	resp.Degraded = len(failed) > 0
	resp.FailedShards = failed
	resp.ServiceMillis = ms(time.Since(t0))
	return resp, nil
}

// cachePut admits an evaluated result to the cache — unless the request
// bypassed caching, or the evaluation was cheaper than the cost-aware
// admission threshold (re-running it costs less than the warm entries it
// would evict). Buffered and streamed evaluation share this one admission
// path.
func (s *Service) cachePut(key string, req QueryRequest, res *koko.Result) {
	if req.NoCache {
		return
	}
	if s.cacheMinCost > 0 && res.Elapsed < s.cacheMinCost {
		s.metrics.cacheCostSkips.Add(1)
		return
	}
	s.cache.put(key, res, s.ttlFor(req.Corpus))
}

// cacheKey derives the result-cache key for a request: buffered and
// streamed evaluations of the same query MUST share one key derivation so
// the two modes populate and hit one cache, not two. Workers changes only
// scheduling, never results, so it is excluded; Explain changes the
// tuples' evidence, so it is part of it; the generation makes reloads an
// implicit invalidation. The canonical text is plan-invariant (ParseQuery
// canonicalizes condition order), so reordered-but-equivalent conjunctions
// share one entry; plan is the pre-normalized "on"/"off" (the stored
// result's phase/plan report differs between the two, never its tuples).
func cacheKey(req QueryRequest, gen uint64, parsed *koko.ParsedQuery, plan string) string {
	return fmt.Sprintf("%s|%d|%t|%s|%s", req.Corpus, gen, req.Explain, plan, parsed.Canonical())
}

// recordPlan keeps the planner metrics for one evaluated (non-cached)
// query: time spent planning and whether the plan reordered evaluation.
func (s *Service) recordPlan(res *koko.Result) {
	s.metrics.planNanos.Add(res.Phases.Plan.Nanoseconds())
	if res.Plan != nil && res.Plan.Reordered {
		s.metrics.plansReordered.Add(1)
	}
}

// ctxDone reports whether err is a context cancellation/deadline error
// (possibly wrapped with shard attribution) — those are the caller's doing,
// not a bad query.
func ctxDone(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// fanoutOf reports how many shard evaluations eng actually runs at once
// for one query (1 for a plain engine; a mutable-corpus snapshot adds one
// for a live delta).
func fanoutOf(eng koko.Querier) int {
	switch e := eng.(type) {
	case *koko.ShardedEngine:
		return e.Parallelism()
	case *koko.Snapshot:
		return e.Fanout()
	case *remote.Engine:
		// Remote fan-out costs connections, not local cores, but the
		// Workers clamp it feeds divides worker-side CPU instead.
		return e.Parallelism()
	}
	return 1
}

func (s *Service) workersFor(reqWorkers, fanout int) int {
	w := s.defWorkers
	if reqWorkers > 0 {
		w = reqWorkers
	}
	// Clamp request-supplied fan-out: a client must not be able to spawn
	// unbounded goroutines per query. Workers applies inside each of the
	// fanout concurrently-evaluating shards, so the budget divides by the
	// engine's effective fan-out (not its shard count — shards that queue
	// behind the fan-out bound cost nothing extra) to keep total per-query
	// parallelism at GOMAXPROCS.
	max := runtime.GOMAXPROCS(0)
	if fanout > 1 {
		max /= fanout
		if max < 1 {
			max = 1
		}
	}
	if w > max {
		w = max
	}
	return w
}

// respond renders a (possibly shared, cached) engine result without
// mutating it.
func (s *Service) respond(corpus string, gen uint64, res *koko.Result, cached bool) *QueryResponse {
	resp := &QueryResponse{
		Corpus:     corpus,
		Generation: gen,
		Tuples:     make([]TupleResult, 0, len(res.Tuples)),
		Candidates: res.Candidates,
		Matched:    res.Matched,
		Cached:     cached,
		Phases:     phasesOf(res),
		Plan:       res.Plan,
	}
	s.metrics.tuplesReturned.Add(int64(len(res.Tuples)))
	for _, t := range res.Tuples {
		resp.Tuples = append(resp.Tuples, tupleResultOf(t, 0, 0))
	}
	return resp
}

// tupleResultOf renders one engine tuple as its JSON form, rebasing
// shard-local attribution by the given offsets (0,0 for an already-global
// tuple). Buffered responses, NDJSON stream events, and job results all
// encode tuples through this one conversion — that is what makes the three
// surfaces byte-identical.
func tupleResultOf(t koko.Tuple, docOff, sentOff int) TupleResult {
	tr := TupleResult{
		SentenceID: t.SentenceID + sentOff,
		Document:   t.Document + docOff,
		Values:     t.Values,
		Scores:     t.Scores,
	}
	for _, ev := range t.Evidence {
		tr.Evidence = append(tr.Evidence, EvidenceResult{
			Variable:     ev.Variable,
			Condition:    ev.Condition,
			Weight:       ev.Weight,
			Confidence:   ev.Confidence,
			Contribution: ev.Contribution,
		})
	}
	return tr
}

// Validate checks query syntax; a nil error means the query parses.
func (s *Service) Validate(query string) error {
	s.metrics.validateTotal.Add(1)
	if err := koko.Validate(query); err != nil {
		return fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	return nil
}

// Reload hot-swaps a file-backed corpus; the generation bump invalidates
// its cache entries.
func (s *Service) Reload(name string) (CorpusInfo, error) {
	info, err := s.reg.Reload(name)
	if err == nil {
		s.metrics.reloadsTotal.Add(1)
	}
	return info, err
}

// Ingest upserts one document into a corpus's delta index and seals a new
// generation: the document is queryable immediately, the corpus's cache
// entries are invalidated by the generation bump, and queries or jobs
// already running keep their pinned snapshot. Re-ingesting an existing
// document name replaces it. The returned doc index is the ingested
// document's global id. When the delta has grown past the auto-compaction
// threshold — or a durable corpus's WAL past the configured size bound — a
// background fold into the base shards is kicked off (at most one per
// corpus at a time).
func (s *Service) Ingest(corpus, docName, text string) (CorpusInfo, int, bool, error) {
	info, doc, updated, err := s.reg.Ingest(corpus, docName, text)
	if err != nil {
		return CorpusInfo{}, 0, false, err
	}
	s.metrics.ingestsTotal.Add(1)
	if updated {
		s.metrics.documentUpdates.Add(1)
	}
	if s.maxDeltaDocs > 0 && info.DeltaDocs >= s.maxDeltaDocs {
		s.kickCompaction(corpus)
	} else if s.walMaxBytes > 0 && info.WALBytes >= s.walMaxBytes {
		s.kickCompaction(corpus)
	}
	return info, doc, updated, nil
}

// DeleteDocument tombstones a named document in a corpus and seals a new
// generation (the bump invalidates the corpus's cache entries); the bytes
// are reclaimed by the next compaction. Returns how many live documents
// carried the name. Unknown documents map to koko.ErrNoDocument (404).
func (s *Service) DeleteDocument(corpus, doc string) (CorpusInfo, int, error) {
	info, n, err := s.reg.DeleteDocument(corpus, doc)
	if err != nil {
		return CorpusInfo{}, 0, err
	}
	s.metrics.documentDeletes.Add(1)
	return info, n, nil
}

// Compact synchronously folds a corpus's delta into its base shards,
// installing the compacted snapshot at a new generation. An empty delta is
// a cheap no-op (Docs == 0 in the returned stats).
func (s *Service) Compact(name string) (CorpusInfo, koko.CompactionStats, error) {
	info, st, err := s.reg.Compact(name)
	if err == nil && st.Docs > 0 {
		s.metrics.compactionsTotal.Add(1)
	}
	return info, st, err
}

// kickCompaction starts a background compaction of the named corpus unless
// one is already in flight. No caller can see a background failure, so it
// is logged and counted (compaction_errors) rather than swallowed — a
// persistently failing auto-compaction would otherwise let the delta grow
// in silence.
func (s *Service) kickCompaction(name string) {
	if _, inflight := s.compacting.LoadOrStore(name, struct{}{}); inflight {
		return
	}
	go func() {
		defer s.compacting.Delete(name)
		s.compactLogged(name)
	}()
}

// compactLogged runs one compaction on behalf of a background caller,
// logging and counting any failure. A corpus deleted or replaced meanwhile
// surfaces here as ErrNotFound — routine, but still the operator's only
// signal, so it is logged too.
func (s *Service) compactLogged(name string) {
	if _, _, err := s.Compact(name); err != nil {
		s.metrics.compactionErrors.Add(1)
		log.Printf("server: background compaction of corpus %q: %v", name, err)
	}
}

// CompactLoop folds every corpus's pending delta into its base shards each
// interval, until ctx is done. kokod runs this as the background compaction
// loop when -compact-interval is set.
func (s *Service) CompactLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.CompactAll()
		}
	}
}

// CompactAll compacts every corpus with a non-empty delta or live
// tombstones, sequentially (a compaction rebuilds shard indices in parallel
// internally; running corpora back-to-back keeps the CPU pressure bounded).
// Failures are logged and counted per corpus.
func (s *Service) CompactAll() {
	for _, info := range s.reg.List() {
		if info.DeltaDocs > 0 || info.Tombstones > 0 {
			s.compactLogged(info.Name)
		}
	}
}

// DeleteCorpus unregisters a corpus and drops its result-cache entries.
// New queries, ingests, and jobs against the name fail with ErrNotFound;
// running jobs finish on their pinned snapshot.
func (s *Service) DeleteCorpus(name string) (CorpusInfo, error) {
	info, err := s.reg.Delete(name)
	if err != nil {
		return CorpusInfo{}, err
	}
	s.cache.dropCorpus(name)
	s.metrics.deletesTotal.Add(1)
	return info, nil
}

// Close releases every corpus's durable resources (WAL handles, sync
// loops); pending batched WAL writes are fsynced on the way out. The
// service is not usable for mutations afterwards — the kokod shutdown path.
func (s *Service) Close() {
	s.reg.CloseAll()
}

// Metrics returns a point-in-time counter snapshot.
func (s *Service) Metrics() MetricsSnapshot {
	m := &s.metrics
	deltaDocs := 0
	for _, info := range s.reg.List() {
		deltaDocs += info.DeltaDocs
	}
	dur := s.reg.Durability()
	snap := MetricsSnapshot{
		CacheCostSkips:   m.cacheCostSkips.Load(),
		IngestsTotal:     m.ingestsTotal.Load(),
		CompactionsTotal: m.compactionsTotal.Load(),
		CompactionErrors: m.compactionErrors.Load(),
		CorporaDeleted:   m.deletesTotal.Load(),
		DeltaDocs:        deltaDocs,
		QueriesTotal:     m.queriesTotal.Load(),
		QueryErrors:      m.queryErrors.Load(),
		CacheHits:        m.cacheHits.Load(),
		CacheMisses:      m.cacheMisses.Load(),
		CacheEntries:     s.cache.len(),
		CacheTuples:      s.cache.tupleCount(),
		ValidateTotal:    m.validateTotal.Load(),
		ReloadsTotal:     m.reloadsTotal.Load(),
		TuplesReturned:   m.tuplesReturned.Load(),
		QueryMillisTotal: float64(m.queryNanos.Load()) / 1e6,
		InFlight:         m.inFlight.Load(),
		PeakInFlight:     m.peakInFlight.Load(),
		Corpora:          s.reg.Len(),
		StreamsTotal:     m.streamsTotal.Load(),
		QueriesCancelled: m.queryCancels.Load(),
		DocumentDeletes:  m.documentDeletes.Load(),
		DocumentUpdates:  m.documentUpdates.Load(),
		WALAppends:       dur.WALAppends,
		WALBytes:         dur.WALBytes,
		WALReplayedDocs:  dur.ReplayedDocs,
		TombstonesLive:   int64(dur.TombstonesLive),
		CompactionSwaps:  dur.Swaps,
		RecoveryMillis:   ms(dur.Recovery),
		DegradedQueries:  m.degradedQueries.Load(),
		ShardEvalsServed: m.shardEvalsServed.Load(),
		PlansReordered:   m.plansReordered.Load(),
		PlanTimeMicros:   m.planNanos.Load() / 1e3,
		Jobs:             s.jobs.Metrics(),
	}
	bs := blockstore.DefaultStats()
	snap.StoreCacheBytes = bs.UsedBytes
	snap.StoreCacheHits = bs.Hits
	snap.StoreCacheMisses = bs.Misses
	snap.StoreBlockDecodes = bs.Decodes
	snap.StoreEvictions = bs.Evictions
	if p := s.rpool.Load(); p != nil {
		c := p.Counters()
		snap.RemoteAttempts = c.Attempts.Load()
		snap.RemoteRetries = c.Retries.Load()
		snap.RemoteHedgesFired = c.HedgesFired.Load()
		snap.RemoteHedgeWins = c.HedgeWins.Load()
		snap.RemoteCorruptPartials = c.CorruptPartials.Load()
		snap.NodeUnhealthy = c.NodeUnhealthy.Load()
		snap.BreakerOpen = c.BreakerOpen.Load()
	}
	return snap
}
