package server

import (
	"sync/atomic"

	"repro/internal/server/jobs"
)

// Metrics counts service activity. All fields are updated atomically; a
// consistent point-in-time view is obtained with Snapshot.
type Metrics struct {
	queriesTotal atomic.Int64
	queryErrors  atomic.Int64
	// queryCancels counts queries abandoned by their caller (context
	// cancelled, streaming client disconnected) — routine client behavior,
	// kept out of queryErrors so error dashboards track real failures.
	queryCancels   atomic.Int64
	streamsTotal   atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	validateTotal  atomic.Int64
	reloadsTotal   atomic.Int64
	tuplesReturned atomic.Int64
	queryNanos     atomic.Int64
	inFlight       atomic.Int64
	peakInFlight   atomic.Int64
	// cacheCostSkips counts evaluated results refused cache admission
	// because they were cheaper than the configured minimum cost.
	cacheCostSkips atomic.Int64
	// Mutable-corpus lifecycle counters: documents ingested, compactions
	// completed (delta folded into base), background compaction failures,
	// corpora deleted.
	ingestsTotal     atomic.Int64
	compactionsTotal atomic.Int64
	compactionErrors atomic.Int64
	deletesTotal     atomic.Int64
	// Durability lifecycle counters: documents tombstoned via the delete
	// endpoint, and ingests that replaced (updated) an existing document.
	documentDeletes atomic.Int64
	documentUpdates atomic.Int64
	// Distributed-execution counters kept by the service itself:
	// degradedQueries counts partial=ok responses that were actually
	// missing shards; shardEvalsServed counts worker-side
	// /v1/internal/shard-eval evaluations answered. (Attempt/retry/hedge/
	// breaker counters live in the remote pool and are merged into the
	// snapshot.)
	degradedQueries  atomic.Int64
	shardEvalsServed atomic.Int64
	// Planner counters: queries whose statistics-free plan reordered
	// evaluation, and cumulative time spent planning (nanoseconds).
	plansReordered atomic.Int64
	planNanos      atomic.Int64
}

// MetricsSnapshot is the JSON form served by GET /v1/metrics.
type MetricsSnapshot struct {
	QueriesTotal int64 `json:"queries_total"`
	QueryErrors  int64 `json:"query_errors"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`
	// CacheTuples is the total tuples held across cache entries (the
	// quantity the cache's memory budget bounds).
	CacheTuples    int   `json:"cache_tuples"`
	ValidateTotal  int64 `json:"validate_total"`
	ReloadsTotal   int64 `json:"reloads_total"`
	TuplesReturned int64 `json:"tuples_returned"`
	// QueryMillisTotal is summed engine evaluation time over cache misses.
	QueryMillisTotal float64 `json:"query_millis_total"`
	InFlight         int64   `json:"in_flight"`
	PeakInFlight     int64   `json:"peak_in_flight"`
	Corpora          int     `json:"corpora"`
	// StreamsTotal counts queries served in NDJSON streaming mode (a subset
	// of QueriesTotal); QueriesCancelled counts caller-abandoned queries
	// (cancelled contexts, disconnected streaming clients), which are not
	// query errors.
	StreamsTotal     int64 `json:"streams_total"`
	QueriesCancelled int64 `json:"queries_cancelled"`
	// CacheCostSkips counts results evaluated but not cached because their
	// evaluation time fell under the cost-aware admission threshold.
	CacheCostSkips int64 `json:"cache_cost_skips"`
	// Mutable-corpus counters: IngestsTotal documents appended via the
	// ingestion API, CompactionsTotal delta-into-base folds completed,
	// CorporaDeleted corpora unregistered, DeltaDocs the current total of
	// ingested-but-uncompacted documents across all corpora.
	IngestsTotal     int64 `json:"ingests_total"`
	CompactionsTotal int64 `json:"compactions_total"`
	CompactionErrors int64 `json:"compaction_errors"`
	CorporaDeleted   int64 `json:"corpora_deleted"`
	DeltaDocs        int   `json:"delta_docs"`
	// Durability counters: DocumentDeletes documents tombstoned via
	// DELETE .../documents/{doc}, DocumentUpdates ingests that replaced an
	// existing document, WALAppends/WALBytes the write-ahead logs' lifetime
	// appends and current total size, WALReplayedDocs documents recovered by
	// WAL replay at startup, TombstonesLive deleted-but-uncompacted
	// documents still being masked, CompactionSwaps crash-safe manifest
	// swaps completed, RecoveryMillis total startup WAL replay time.
	DocumentDeletes int64   `json:"document_deletes"`
	DocumentUpdates int64   `json:"document_updates"`
	WALAppends      uint64  `json:"wal_appends"`
	WALBytes        int64   `json:"wal_bytes"`
	WALReplayedDocs uint64  `json:"wal_replayed_docs"`
	TombstonesLive  int64   `json:"tombstones_live"`
	CompactionSwaps uint64  `json:"compaction_swaps"`
	RecoveryMillis  float64 `json:"recovery_ms"`
	// Distributed-execution counters. Coordinator side: RemoteAttempts
	// counts every shard-eval attempt against a worker (first tries,
	// retries, and hedges), RemoteRetries the attempts after the first for
	// a shard, RemoteHedgesFired hedge attempts launched after the latency
	// threshold, RemoteHedgeWins hedges whose response was used,
	// RemoteCorruptPartials responses rejected by checksum verification,
	// NodeUnhealthy worker up→down health transitions, BreakerOpen circuit-
	// breaker trips, DegradedQueries partial=ok responses that were missing
	// shards. Worker side: ShardEvalsServed counts shard evaluations
	// answered on /v1/internal/shard-eval.
	RemoteAttempts        int64 `json:"remote_attempts"`
	RemoteRetries         int64 `json:"remote_retries"`
	RemoteHedgesFired     int64 `json:"remote_hedges_fired"`
	RemoteHedgeWins       int64 `json:"remote_hedge_wins"`
	RemoteCorruptPartials int64 `json:"remote_corrupt_partials"`
	NodeUnhealthy         int64 `json:"node_unhealthy"`
	BreakerOpen           int64 `json:"breaker_open"`
	DegradedQueries       int64 `json:"degraded_queries"`
	ShardEvalsServed      int64 `json:"shard_evals_served"`
	// Planner counters: PlansReordered queries whose statistics-free plan
	// changed the evaluation order, PlanTimeMicros cumulative planning time.
	PlansReordered int64 `json:"plans_reordered"`
	PlanTimeMicros int64 `json:"plan_time_us"`
	// Block-store residency counters (process-wide across every mmap'd
	// block store): StoreCacheBytes decoded posting bytes currently resident
	// in the shared block cache, StoreCacheHits/Misses block lookups served
	// from / missing the cache, StoreBlockDecodes blocks actually decoded
	// (misses collapse under singleflight, so decodes <= misses), and
	// StoreEvictions blocks dropped by the CLOCK sweep to hold the budget.
	StoreCacheBytes   int64 `json:"store_cache_bytes"`
	StoreCacheHits    int64 `json:"store_cache_hits"`
	StoreCacheMisses  int64 `json:"store_cache_misses"`
	StoreBlockDecodes int64 `json:"store_block_decodes"`
	StoreEvictions    int64 `json:"store_evictions"`
	// Jobs is the async job subsystem's view: lifetime counters, jobs by
	// state, and queue depth in shard evaluations.
	Jobs jobs.Snapshot `json:"jobs"`
}

func (m *Metrics) enter() {
	n := m.inFlight.Add(1)
	for {
		peak := m.peakInFlight.Load()
		if n <= peak || m.peakInFlight.CompareAndSwap(peak, n) {
			return
		}
	}
}

func (m *Metrics) exit() { m.inFlight.Add(-1) }
